package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato"
	"hotpotato/internal/dynamic"
)

// TestSoakLargeInstances drives the whole stack at sizes an order of
// magnitude above the unit tests: hundreds of packets on thousands of
// nodes, invariants checked throughout. Skipped under -short.
func TestSoakLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}

	t.Run("frame-deep-random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(70))
		net, err := hotpotato.RandomLeveled(rng, 80, 6, 10, 0.35)
		if err != nil {
			t.Fatal(err)
		}
		prob, err := hotpotato.RandomWorkload(net, rng, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if prob.N() < 200 {
			t.Fatalf("instance too small: %s", prob)
		}
		params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
			hotpotato.PracticalConfig{SetCongestion: 5, FrameSlack: 4, RoundFactor: 3})
		res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 70, CheckInvariants: true})
		if !res.Done {
			t.Fatalf("did not complete: %s", res)
		}
		if res.Invariants.IbPathInvalid != 0 || res.Invariants.IeCongestionExceeded != 0 {
			t.Errorf("deterministic invariants broke at scale: %s", res.Invariants.String())
		}
		if res.Engine.UnsafeDeflections() != 0 {
			t.Errorf("unsafe deflections at scale: %v", res.Engine.Deflections)
		}
		t.Logf("soak frame: %s; invariants %s", res, res.Invariants.String())
	})

	t.Run("greedy-butterfly-9", func(t *testing.T) {
		net, err := hotpotato.Butterfly(9) // 5120 nodes
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(71))
		prob, err := hotpotato.FullThroughputWorkload(net, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 71})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("greedy did not complete on butterfly(9)")
		}
		for i, lat := range res.PerPacketLatency {
			if lat < 9 {
				t.Fatalf("packet %d latency %d below depth", i, lat)
			}
		}
		t.Logf("soak greedy: %d packets in %d steps", prob.N(), res.Steps)
	})

	t.Run("chaos-frame-under-flaps", func(t *testing.T) {
		// The frame router itself under a light flap campaign: the
		// schedule has enough slack to absorb sparse outages, and the
		// trace stays reproducible (asserted in internal/sim; here we
		// assert it completes and accounts for the degradation).
		rng := rand.New(rand.NewSource(74))
		net, err := hotpotato.Butterfly(6)
		if err != nil {
			t.Fatal(err)
		}
		prob, err := hotpotato.HotSpotWorkload(net, rng, 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
		res := hotpotato.RouteFrame(prob, params, hotpotato.Options{
			Seed:   74,
			Faults: hotpotato.LinkFlap{Period: 100, Down: 10, Rate: 0.3},
		})
		if !res.Done {
			t.Fatalf("frame did not complete under light flaps: %s", res)
		}
		if res.Engine.FaultBlocked == 0 {
			t.Error("flap campaign never blocked a request; chaos subtest is vacuous")
		}
		t.Logf("chaos frame: %s blocked=%d stalls=%d", res, res.Engine.FaultBlocked, res.Engine.FaultStalls)
	})

	t.Run("sf-bounded-butterfly-8", func(t *testing.T) {
		net, err := hotpotato.Butterfly(8)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(72))
		prob, err := hotpotato.HotSpotWorkload(net, rng, 200, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hotpotato.RouteBaseline(prob, hotpotato.SFFifo, hotpotato.Options{Seed: 72, BufferCap: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatal("bounded SF did not complete at scale")
		}
		if res.SF.MaxQueueLen > 2 {
			t.Errorf("queue cap violated: %d", res.SF.MaxQueueLen)
		}
	})
}

// TestChaosSoakOpenSystem is the chaos smoke: a faulted open-system
// soak under a link-flap campaign with retry/backoff admission. It
// runs even under -short (CI's chaos job executes exactly this test
// under -race) at a reduced horizon; a full run stretches it 10x. It
// asserts the acceptance criteria of the fault subsystem end to end:
// the run completes without error, delivery continues through the
// flaps, retry keeps the admission drop bounded, and the per-window
// availability series actually registers the outages.
func TestChaosSoakOpenSystem(t *testing.T) {
	steps := 60000
	if testing.Short() {
		steps = 6000
	}
	net, err := hotpotato.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	campaign := hotpotato.OverlayFaults(
		hotpotato.LinkFlap{Period: 200, Down: 20, Rate: 0.3},
		hotpotato.FlakyLinks{DownFrac: 0.02, MeanBurst: 5},
	)
	res, err := dynamic.Run(net, dynamic.Config{
		Lambda: 0.15, Steps: steps, Warmup: steps / 10, Seed: 73,
		Faults: campaign.Model(net, 73),
		Retry:  dynamic.RetryPolicy{MaxAttempts: 6, BaseDelay: 1, MaxDelay: 32},
		Window: steps / 30,
	})
	if err != nil {
		t.Fatalf("chaos soak errored: %v", err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under flaps")
	}
	if res.FaultBlocked == 0 {
		t.Error("campaign never blocked a request; flap spec is not biting")
	}
	// Delivery keeps up: the vast majority of admitted packets complete
	// within the horizon even while links flap.
	if float64(res.Delivered) < 0.9*float64(res.Admitted) {
		t.Errorf("delivery collapsed: %d of %d admitted", res.Delivered, res.Admitted)
	}
	// Retry/backoff keeps the shed load bounded.
	if res.DropRate() > 0.05 {
		t.Errorf("drop rate %.3f exceeds 5%% under retry", res.DropRate())
	}
	// Availability is exported per window and registers the outages:
	// some window must dip below 1, and none below the flap floor.
	sawDip := false
	for _, w := range res.Windows {
		if w.Availability < 1 {
			sawDip = true
		}
		if w.Availability < 0.5 || w.Availability > 1 {
			t.Errorf("window@%d availability %.3f out of range", w.Start, w.Availability)
		}
	}
	if !sawDip {
		t.Error("no window registered reduced availability")
	}
	t.Logf("chaos soak: %s windows=%d", res, len(res.Windows))
}
