package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato"
)

// TestSoakLargeInstances drives the whole stack at sizes an order of
// magnitude above the unit tests: hundreds of packets on thousands of
// nodes, invariants checked throughout. Skipped under -short.
func TestSoakLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}

	t.Run("frame-deep-random", func(t *testing.T) {
		rng := rand.New(rand.NewSource(70))
		net, err := hotpotato.RandomLeveled(rng, 80, 6, 10, 0.35)
		if err != nil {
			t.Fatal(err)
		}
		prob, err := hotpotato.RandomWorkload(net, rng, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if prob.N() < 200 {
			t.Fatalf("instance too small: %s", prob)
		}
		params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
			hotpotato.PracticalConfig{SetCongestion: 5, FrameSlack: 4, RoundFactor: 3})
		res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 70, CheckInvariants: true})
		if !res.Done {
			t.Fatalf("did not complete: %s", res)
		}
		if res.Invariants.IbPathInvalid != 0 || res.Invariants.IeCongestionExceeded != 0 {
			t.Errorf("deterministic invariants broke at scale: %s", res.Invariants.String())
		}
		if res.Engine.UnsafeDeflections() != 0 {
			t.Errorf("unsafe deflections at scale: %v", res.Engine.Deflections)
		}
		t.Logf("soak frame: %s; invariants %s", res, res.Invariants.String())
	})

	t.Run("greedy-butterfly-9", func(t *testing.T) {
		net, err := hotpotato.Butterfly(9) // 5120 nodes
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(71))
		prob, err := hotpotato.FullThroughputWorkload(net, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 71})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("greedy did not complete on butterfly(9)")
		}
		for i, lat := range res.PerPacketLatency {
			if lat < 9 {
				t.Fatalf("packet %d latency %d below depth", i, lat)
			}
		}
		t.Logf("soak greedy: %d packets in %d steps", prob.N(), res.Steps)
	})

	t.Run("sf-bounded-butterfly-8", func(t *testing.T) {
		net, err := hotpotato.Butterfly(8)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(72))
		prob, err := hotpotato.HotSpotWorkload(net, rng, 200, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hotpotato.RouteBaseline(prob, hotpotato.SFFifo, hotpotato.Options{Seed: 72, BufferCap: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatal("bounded SF did not complete at scale")
		}
		if res.SF.MaxQueueLen > 2 {
			t.Errorf("queue cap violated: %d", res.SF.MaxQueueLen)
		}
	})
}
