package hotpotato

import (
	"io"
	"math/rand"

	"hotpotato/internal/paths"
	"hotpotato/internal/persist"
	"hotpotato/internal/workload"
)

// Request is a (source, destination) routing request for custom
// workloads.
type Request = paths.Request

// RandomWorkload draws a many-to-one problem: each eligible node
// sources a packet with the given density, destinations are uniform
// over forward-reachable nodes, and paths are uniform random forward
// paths.
func RandomWorkload(g *Network, rng *rand.Rand, density float64) (*Problem, error) {
	return workload.Random(g, rng, density)
}

// HotSpotWorkload routes count packets from distinct sources into a
// small set of top-level destination nodes — the workhorse for driving
// congestion up at fixed depth.
func HotSpotWorkload(g *Network, rng *rand.Rand, count, spots int) (*Problem, error) {
	return workload.HotSpot(g, rng, count, spots)
}

// FullThroughputWorkload sends one packet from every level-0 node to a
// random top-level node.
func FullThroughputWorkload(g *Network, rng *rand.Rand) (*Problem, error) {
	return workload.FullThroughput(g, rng)
}

// TransposeWorkload routes the transpose permutation on a k-dimensional
// butterfly with bit-fixing paths (k must be even).
func TransposeWorkload(g *Network, k int) (*Problem, error) {
	return workload.ButterflyTranspose(g, k)
}

// BitReversalWorkload routes the bit-reversal permutation on a
// k-dimensional butterfly with bit-fixing paths (edge congestion
// 2^(k/2-1)).
func BitReversalWorkload(g *Network, k int) (*Problem, error) {
	return workload.ButterflyBitReversal(g, k)
}

// MeshHardWorkload builds the Section-5 application instance: an n x n
// mesh with path congestion and dilation Θ(n).
func MeshHardWorkload(n int) (*Problem, error) {
	return workload.MeshHard(n)
}

// CustomWorkload builds a problem from explicit requests, choosing
// uniform random forward paths. Each node may source at most one packet
// (the paper's many-to-one class).
func CustomWorkload(name string, g *Network, rng *rand.Rand, reqs []Request) (*Problem, error) {
	set, err := paths.SelectRandom(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return ProblemFromPaths(name, g, set)
}

// ValiantWorkload builds a problem from explicit requests with
// Valiant's random-intermediate path selection: each packet routes
// through a uniform random mid-level node, spreading structured
// workloads on networks with path diversity (e.g. the Beneš network).
func ValiantWorkload(name string, g *Network, rng *rand.Rand, reqs []Request) (*Problem, error) {
	set, err := paths.SelectValiant(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return ProblemFromPaths(name, g, set)
}

// MinCongestionWorkload builds a problem from explicit requests,
// greedily minimizing path congestion.
func MinCongestionWorkload(name string, g *Network, rng *rand.Rand, reqs []Request) (*Problem, error) {
	set, err := paths.SelectMinCongestion(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return ProblemFromPaths(name, g, set)
}

// SaveProblem serializes a problem (network + preselected paths) as
// JSON for bit-exact replay elsewhere.
func SaveProblem(w io.Writer, p *Problem) error { return persist.WriteProblem(w, p) }

// LoadProblem deserializes a problem saved with SaveProblem,
// re-validating the network and paths and recomputing C and D.
func LoadProblem(r io.Reader) (*Problem, error) { return persist.ReadProblem(r) }

// SaveNetwork serializes a network as JSON.
func SaveNetwork(w io.Writer, g *Network) error { return persist.WriteNetwork(w, g) }

// LoadNetwork deserializes a network saved with SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) { return persist.ReadNetwork(r) }

// ProblemFromPaths wraps explicit preselected paths as a Problem after
// validating them (forward paths, one packet per source).
func ProblemFromPaths(name string, g *Network, set *PathSet) (*Problem, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := set.CheckOnePacketPerSource(); err != nil {
		return nil, err
	}
	return &Problem{
		Name: name,
		G:    g,
		Set:  set,
		C:    set.Congestion(),
		D:    set.Dilation(),
	}, nil
}
