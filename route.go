package hotpotato

import (
	"fmt"
	"math"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
)

// Options configure a routing run.
type Options struct {
	// Seed drives all randomness (set assignment, excitation,
	// tie-breaking); runs with equal seeds are identical.
	Seed int64
	// MaxSteps caps the run (0 = a generous multiple of the schedule
	// bound for the frame router, or of C+D+L for baselines).
	MaxSteps int
	// CheckInvariants attaches the Ia-If invariant checker (frame
	// router only).
	CheckInvariants bool
	// BufferCap bounds each edge queue for store-and-forward baselines
	// (0 = unbounded). Full buffers exert backpressure; hot-potato
	// baselines ignore it (they have no buffers at all).
	BufferCap int
	// Profile records per-phase progress into Result.Phases (frame
	// router only).
	Profile bool
	// Workers enables the engine's sharded parallel step path with the
	// given number of goroutines (0 or 1 = sequential). The committed
	// trace is byte-identical for every setting; only wall-clock
	// changes. Applies to the frame router and hot-potato baselines
	// (store-and-forward baselines are always sequential).
	Workers int
	// Shards is the number of contiguous node shards for the parallel
	// step (0 = Workers x 8, oversubscribed for load balance).
	Shards int
	// Probes receive the annotated observability series (per step,
	// round and phase under the frame router's schedule; baselines
	// have no timetable, so their steps carry Phase = Round = -1 and
	// the round/phase callbacks fire once at run end covering the
	// whole run). The series is identical for every Workers setting.
	Probes []Probe
	// Events, if non-nil, receives packet lifecycle events
	// (inject/deflect/stall/absorb from the engines, excite/restore
	// from the frame router). Use a Lifecycle ring, or any EventSink.
	Events EventSink
	// Faults, if non-nil, runs the routing under this outage campaign,
	// bound to the problem's network with Options.Seed (same seed, same
	// outages). Blocked requests deflect around downed edges; a packet
	// with no healthy out-slot stalls in place for the step. Applies to
	// the frame router and hot-potato baselines; store-and-forward
	// baselines have no fault model and silently ignore it.
	Faults FaultCampaign
}

// boundFaults binds the campaign to the problem's network, nil-safe.
func (o Options) boundFaults(p *Problem) sim.FaultModel {
	if o.Faults == nil {
		return nil
	}
	return o.Faults.Model(p.G, o.Seed)
}

// RouteFrame runs the paper's frame algorithm on the problem.
func RouteFrame(p *Problem, params Params, opt Options) *Result {
	return core.Run(p, params, core.RunOptions{
		Seed:     opt.Seed,
		MaxSteps: opt.MaxSteps,
		Check:    opt.CheckInvariants,
		Profile:  opt.Profile,
		Workers:  opt.Workers,
		Shards:   opt.Shards,
		Probes:   opt.Probes,
		Events:   opt.Events,
		Faults:   opt.boundFaults(p),
	})
}

// BaselineKind names a comparison algorithm.
type BaselineKind string

// Available baselines. The Greedy* kinds are bufferless (hot-potato);
// the SF* kinds are store-and-forward with unbounded buffers.
const (
	GreedyHP       BaselineKind = "greedy-hp"
	GreedyFTG      BaselineKind = "greedy-ftg"
	GreedyOldest   BaselineKind = "greedy-oldest"
	RandGreedyHP   BaselineKind = "rand-greedy-hp"
	SFFifo         BaselineKind = "sf-fifo"
	SFRandomDelay  BaselineKind = "sf-randdelay"
	SFFarthestToGo BaselineKind = "sf-farthest"
)

// BaselineResult is a completed baseline run.
type BaselineResult struct {
	Kind  BaselineKind
	Steps int
	Done  bool
	// HP holds engine metrics for hot-potato baselines (nil for SF*).
	HP *Metrics
	// SF holds metrics for store-and-forward baselines (nil for HP*).
	SF *SFMetrics
	// PerPacketLatency lists absorb-inject per packet (-1 if unabsorbed).
	PerPacketLatency []int
}

// String renders a one-line summary.
func (r *BaselineResult) String() string {
	return fmt.Sprintf("%s: steps=%d done=%v", r.Kind, r.Steps, r.Done)
}

// RouteBaseline runs one of the comparison algorithms on the problem.
func RouteBaseline(p *Problem, kind BaselineKind, opt Options) (*BaselineResult, error) {
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultBaselineBudget(p)
	}
	res := &BaselineResult{Kind: kind}
	switch kind {
	case GreedyHP, GreedyFTG, GreedyOldest, RandGreedyHP:
		var r sim.Router
		switch kind {
		case GreedyHP:
			r = baselines.NewGreedy()
		case GreedyFTG:
			r = baselines.NewFarthestToGo()
		case GreedyOldest:
			r = baselines.NewOldestFirst()
		default:
			r = baselines.NewRandGreedy(0.05)
		}
		e := sim.NewEngine(p, r, opt.Seed)
		e.Faults = opt.boundFaults(p)
		if opt.Workers > 1 {
			e.SetParallelism(opt.Workers, opt.Shards)
			defer e.Close()
		}
		coll := attachObs(opt, e.AttachEventSink, func(c *obs.Collector) { c.Attach(e) })
		res.Steps, res.Done = e.Run(maxSteps)
		if coll != nil {
			coll.Flush()
		}
		m := e.M
		res.HP = &m
		res.PerPacketLatency = latencies(e.Packets)
	case SFFifo, SFRandomDelay, SFFarthestToGo:
		var s sim.Scheduler
		switch kind {
		case SFFifo:
			s = baselines.NewFIFO()
		case SFRandomDelay:
			s = baselines.NewRandomDelay(p.C, 1)
		default:
			s = baselines.NewFarthestFirst()
		}
		e := sim.NewSFEngineBuffered(p, s, opt.Seed, opt.BufferCap)
		coll := attachObs(opt, e.AttachEventSink, func(c *obs.Collector) { c.AttachSF(e) })
		res.Steps, res.Done = e.Run(maxSteps)
		if coll != nil {
			coll.Flush()
		}
		m := e.M
		res.SF = &m
		res.PerPacketLatency = latencies(e.Packets)
	default:
		return nil, fmt.Errorf("hotpotato: unknown baseline %q", kind)
	}
	return res, nil
}

// attachObs wires a baseline run's observability: the event sink goes
// straight to the engine, the probes through a schedule-less Collector
// (baselines have no frame timetable). Returns the collector to Flush
// after the run, nil when no probes were given.
func attachObs(opt Options, sink func(sim.EventSink), attach func(*obs.Collector)) *obs.Collector {
	if opt.Events != nil {
		sink(opt.Events)
	}
	if len(opt.Probes) == 0 {
		return nil
	}
	coll := obs.NewCollector(nil, opt.Probes...)
	attach(coll)
	return coll
}

// defaultBaselineBudget returns the default step budget
// 200*(C+D+L)*(1+N/16), computed in int64 and saturated to the
// platform's int range: on large problems (C, D, N in the millions) the
// product overflows int, and a wrapped-negative budget would make
// Run(maxSteps) return instantly as a spurious failure.
func defaultBaselineBudget(p *Problem) int {
	const maxInt = int(^uint(0) >> 1)
	sum := addSat64(addSat64(int64(p.C), int64(p.D)), int64(p.L()))
	scale := 1 + int64(p.N())/16
	if sum > 0 && scale > math.MaxInt64/200/sum {
		return maxInt // the product itself would overflow int64
	}
	b := 200 * sum * scale
	if b < 100000 {
		b = 100000
	}
	if b > int64(maxInt) {
		return maxInt
	}
	return int(b)
}

// addSat64 adds two non-negative int64s, saturating at MaxInt64 (on
// 64-bit platforms C+D+L alone can wrap the accumulator).
func addSat64(a, b int64) int64 {
	if s := a + b; s >= 0 {
		return s
	}
	return math.MaxInt64
}

func latencies(pkts []sim.Packet) []int {
	out := make([]int, len(pkts))
	for i := range pkts {
		out[i] = pkts[i].Latency()
	}
	return out
}

// LowerBound returns the trivial Ω-bound max(C, D) for the problem; any
// routing algorithm, buffered or not, needs at least this many steps.
func LowerBound(p *Problem) int {
	if p.C > p.D {
		return p.C
	}
	return p.D
}
