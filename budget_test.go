package hotpotato

import (
	"math/rand"
	"testing"
)

// budgetProblem builds one small real problem whose C/D fields the
// tests then override to probe the budget arithmetic.
func budgetProblem(t *testing.T) *Problem {
	t.Helper()
	net, err := Butterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := HotSpotWorkload(net, rand.New(rand.NewSource(5)), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultBaselineBudgetFloor(t *testing.T) {
	p := budgetProblem(t)
	// A tiny problem lands on the 100000-step floor: 200*(C+D+L)*(1+N/16)
	// is well under it here.
	if got := defaultBaselineBudget(p); got != 100000 {
		t.Errorf("budget for %s = %d, want the 100000 floor", p, got)
	}
}

func TestDefaultBaselineBudgetFormula(t *testing.T) {
	p := budgetProblem(t)
	p.C, p.D = 5000, 3000
	want := 200 * (5000 + 3000 + p.L()) * (1 + p.N()/16)
	if want <= 100000 {
		t.Fatalf("test instance too small to clear the floor: %d", want)
	}
	if got := defaultBaselineBudget(p); got != want {
		t.Errorf("budget = %d, want 200*(C+D+L)*(1+N/16) = %d", got, want)
	}
}

// TestDefaultBaselineBudgetSaturates pins the overflow guard: with C
// and D in the overflow range the naive int multiplication wraps
// negative, which would make RouteBaseline's Run(maxSteps) return
// instantly as a spurious failure. The budget must instead clamp to
// the maximum int and stay positive.
func TestDefaultBaselineBudgetSaturates(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	p := budgetProblem(t)
	for _, c := range []int{1 << 60, maxInt, maxInt / 200} {
		p.C, p.D = c, c
		got := defaultBaselineBudget(p)
		if got != maxInt {
			t.Errorf("C=D=%d: budget = %d, want saturation at %d", c, got, maxInt)
		}
		if got <= 0 {
			t.Errorf("C=D=%d: budget %d is not positive", c, got)
		}
	}
}
