package hotpotato

import (
	"hotpotato/internal/faults"
	"hotpotato/internal/sim"
)

// Fault injection. A FaultCampaign describes an outage scenario
// (which edges go down, when); binding it to a network and seed yields
// a FaultModel — a pure function of (edge, step) the engines consult
// every step. Campaigns compose with OverlayFaults and parse from
// compact CLI specs with ParseFaults; see docs/FAULTS.md.
type (
	// FaultModel marks edges down per step. It must be a pure function
	// of its arguments: the engines call it concurrently from shard
	// workers and replay it for availability gauges.
	FaultModel = sim.FaultModel
	// FaultCampaign is a reusable, seedable outage scenario.
	FaultCampaign = faults.Campaign
	// LinkDown takes one edge down for a step window.
	LinkDown = faults.LinkDown
	// LinkFlap takes a random subset of edges down periodically.
	LinkFlap = faults.Flap
	// FlakyLinks is a Gilbert–Elliott burst-loss scenario: every edge
	// flips between long healthy stretches and short down bursts.
	FlakyLinks = faults.GilbertElliott
	// NodeOutage takes every edge incident to one node down for a
	// window.
	NodeOutage = faults.NodeOutage
	// LevelBandOutage takes a whole band of levels down for a window —
	// the correlated-failure scenario (a rack, a stage of the network).
	LevelBandOutage = faults.LevelBand
	// RandomFaults is a memoryless per-edge-window outage process.
	RandomFaults = faults.Hash
)

// OverlayFaults composes campaigns: an edge is down when any member
// campaign says so. Members get independent seed streams.
func OverlayFaults(cs ...FaultCampaign) FaultCampaign { return faults.Overlay(cs...) }

// ParseFaults builds a campaign from a compact spec string like
// "flap:period=50,down=5,rate=0.2+node:node=7,from=100,to=200"
// (the -faults syntax of cmd/hotpotato and cmd/openload). An empty
// spec returns (nil, nil).
func ParseFaults(spec string) (FaultCampaign, error) { return faults.Parse(spec) }

// FaultAvailability reports the fraction of healthy edges at one step
// under a bound model (1.0 for nil).
func FaultAvailability(m FaultModel, g *Network, t int) float64 {
	return faults.Availability(m, g, t)
}
