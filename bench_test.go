// Benchmarks: one per experiment of DESIGN.md's index (figures F1-F2
// and E1-E10). Each benchmark runs a scaled-down instance of its
// experiment and reports the headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole suite in miniature;
// `go run ./cmd/experiments` produces the full tables.
package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato"
	"hotpotato/internal/baselines"
	"hotpotato/internal/bench"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// benchExperiment runs a registered experiment end to end.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.Config{Seeds: 1, Scale: 1}
	var bytes int
	for i := 0; i < b.N; i++ {
		out, err := e.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		bytes = len(out)
	}
	b.ReportMetric(float64(bytes), "report-bytes")
}

func BenchmarkF1_TopologyGallery(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2_FramePipeline(b *testing.B)         { benchExperiment(b, "F2") }
func BenchmarkE4_FrontierSetCongestion(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5_DeflectionAudit(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6_Invariants(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7_WaitConvergence(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8_Ablation(b *testing.B)              { benchExperiment(b, "E8") }
func BenchmarkE11_Ensemble(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkE12_Waves(b *testing.B)                { benchExperiment(b, "E12") }
func BenchmarkE13_Levelize(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkE14_BufferSpectrum(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15_DynamicStability(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16_LinkFaults(b *testing.B)           { benchExperiment(b, "E16") }
func BenchmarkE17_ModelCheck(b *testing.B)           { benchExperiment(b, "E17") }
func BenchmarkE18_LatencyDecomposition(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19_ExcitationSuccess(b *testing.B)    { benchExperiment(b, "E19") }
func BenchmarkP1_SimulatorCapacity(b *testing.B)     { benchExperiment(b, "P1") }

// The scaling experiments also report their headline metric directly so
// the bench output shows steps/(C+L) without parsing the report.

func BenchmarkE1_ScalingInC(b *testing.B) {
	g, err := topo.Butterfly(6)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.HotSpot(g, rand.New(rand.NewSource(1)), 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	var last *core.Result
	for i := 0; i < b.N; i++ {
		last = core.Run(p, params, core.RunOptions{Seed: int64(i)})
		if !last.Done {
			b.Fatal("frame did not complete")
		}
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(last.Ratio(), "steps/(C+L)")
}

func BenchmarkE2_ScalingInL(b *testing.B) {
	g, err := topo.Linear(65)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.SingleFile(g, 6)
	if err != nil {
		b.Fatal(err)
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	var last *core.Result
	for i := 0; i < b.N; i++ {
		last = core.Run(p, params, core.RunOptions{Seed: int64(i)})
		if !last.Done {
			b.Fatal("frame did not complete")
		}
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(last.Ratio(), "steps/(C+L)")
}

func BenchmarkE3_Baselines(b *testing.B) {
	g, err := topo.Butterfly(6)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.HotSpot(g, rand.New(rand.NewSource(2)), 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("frame", func(b *testing.B) {
		params := core.ParamsPractical(p.C, p.L(), p.N(),
			core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
		var steps int
		for i := 0; i < b.N; i++ {
			res := core.Run(p, params, core.RunOptions{Seed: int64(i)})
			if !res.Done {
				b.Fatal("did not complete")
			}
			steps = res.Steps
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("greedy-hp", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(p, baselines.NewGreedy(), int64(i))
			s, done := e.Run(1 << 20)
			if !done {
				b.Fatal("did not complete")
			}
			steps = s
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("rand-greedy-hp", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(p, baselines.NewRandGreedy(0.05), int64(i))
			s, done := e.Run(1 << 20)
			if !done {
				b.Fatal("did not complete")
			}
			steps = s
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("sf-fifo", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			e := sim.NewSFEngine(p, baselines.NewFIFO(), int64(i))
			s, done := e.Run(1 << 20)
			if !done {
				b.Fatal("did not complete")
			}
			steps = s
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("sf-randdelay", func(b *testing.B) {
		var steps int
		for i := 0; i < b.N; i++ {
			e := sim.NewSFEngine(p, baselines.NewRandomDelay(p.C, 1), int64(i))
			s, done := e.Run(1 << 20)
			if !done {
				b.Fatal("did not complete")
			}
			steps = s
		}
		b.ReportMetric(float64(steps), "steps")
	})
}

func BenchmarkE9_MeshApplication(b *testing.B) {
	p, err := workload.MeshHard(8)
	if err != nil {
		b.Fatal(err)
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	var last *core.Result
	for i := 0; i < b.N; i++ {
		last = core.Run(p, params, core.RunOptions{Seed: int64(i)})
		if !last.Done {
			b.Fatal("did not complete")
		}
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(last.Ratio(), "steps/(C+L)")
}

func BenchmarkE10_ManyToOne(b *testing.B) {
	g, err := topo.Butterfly(6)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.HotSpot(g, rand.New(rand.NewSource(3)), 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	var last *core.Result
	for i := 0; i < b.N; i++ {
		last = core.Run(p, params, core.RunOptions{Seed: int64(i)})
		if !last.Done {
			b.Fatal("did not complete")
		}
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(float64(last.Engine.TotalDeflections())/float64(p.N()), "defl/pkt")
}

// BenchmarkEngineStep measures the raw cost of one simulator step under
// load — the engine's microbenchmark, independent of any experiment.
func BenchmarkEngineStep(b *testing.B) {
	g, err := topo.Butterfly(8)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.FullThroughput(g, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(p, baselines.NewGreedy(), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			e = sim.NewEngine(p, baselines.NewGreedy(), int64(i))
			b.StartTimer()
		}
		e.Step()
	}
}

// BenchmarkFrameRouterRequest measures the per-packet decision cost of
// the paper's router.
func BenchmarkFrameRouterRequest(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := topo.Random(rng, 40, 3, 6, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	params := hotpotato.PracticalParams(p.C, p.L(), p.N())
	e := sim.NewEngine(p, core.NewFrame(params), 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			e = sim.NewEngine(p, core.NewFrame(params), int64(i))
			b.StartTimer()
		}
		e.Step()
	}
}
