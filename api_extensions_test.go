package hotpotato_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hotpotato"
)

func TestFacadeLevelize(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	edges := hotpotato.RandomDAG(rng, 20, 0.2)
	if len(edges) == 0 {
		t.Fatal("no edges drawn")
	}
	net, ids, err := hotpotato.Levelize("facade-dag", 20, edges)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 {
		t.Errorf("mapped %d nodes", len(ids))
	}
	prob, err := hotpotato.RandomWorkload(net, rng, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
		hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 30})
	if !res.Done {
		t.Errorf("frame did not complete on levelized DAG: %s", res)
	}
}

func TestFacadeSaveLoadProblem(t *testing.T) {
	net, err := hotpotato.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hotpotato.SaveProblem(&buf, prob); err != nil {
		t.Fatal(err)
	}
	prob2, err := hotpotato.LoadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if prob2.C != prob.C || prob2.D != prob.D || prob2.N() != prob.N() {
		t.Errorf("round trip changed problem: %s vs %s", prob2, prob)
	}
	// Routing the loaded problem gives the same deterministic outcome.
	a, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hotpotato.RouteBaseline(prob2, hotpotato.GreedyHP, hotpotato.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Errorf("loaded problem routes differently: %d vs %d", a.Steps, b.Steps)
	}
}

func TestFacadeSaveLoadNetwork(t *testing.T) {
	net, err := hotpotato.Mesh(4, 4, hotpotato.CornerNE)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hotpotato.SaveNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2, err := hotpotato.LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumNodes() != net.NumNodes() || net2.Depth() != net.Depth() {
		t.Error("network round trip mismatch")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	a := hotpotato.NewAnalysis(32, 64, 512)
	if got, floor := a.SuccessProbability(), a.TheoremFloor(); got < floor {
		t.Errorf("success %v below floor %v", got, floor)
	}
	if a.StepBound() <= 0 || a.PolylogFactor() <= 1 {
		t.Errorf("degenerate bound: steps=%d factor=%g", a.StepBound(), a.PolylogFactor())
	}
}

func TestFacadeBufferCap(t *testing.T) {
	net, err := hotpotato.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hotpotato.RouteBaseline(prob, hotpotato.SFFifo, hotpotato.Options{Seed: 3, BufferCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("bounded run did not complete")
	}
	if res.SF.MaxQueueLen > 1 {
		t.Errorf("MaxQueueLen = %d with cap 1", res.SF.MaxQueueLen)
	}
}

func TestFacadeOmega(t *testing.T) {
	net, err := hotpotato.Omega(4)
	if err != nil {
		t.Fatal(err)
	}
	if net.Depth() != 4 || net.NumNodes() != 5*16 {
		t.Errorf("omega stats: %v", net.ComputeStats())
	}
	rng := rand.New(rand.NewSource(33))
	prob, err := hotpotato.FullThroughputWorkload(net, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 1})
	if err != nil || !res.Done {
		t.Fatalf("route: %v %v", err, res)
	}
}

func TestFacadeProfile(t *testing.T) {
	net, err := hotpotato.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(34))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 34, Profile: true})
	if !res.Done {
		t.Fatal("did not complete")
	}
	if len(res.Phases) == 0 {
		t.Error("profile requested but no phases recorded")
	}
	// Latency breakdown is always populated.
	if res.InjectWait.N != prob.N() || res.Transit.N != prob.N() {
		t.Errorf("breakdown N = %d/%d, want %d", res.InjectWait.N, res.Transit.N, prob.N())
	}
}

func TestFacadeRemainingWrappers(t *testing.T) {
	// Exercise the thin façade wrappers not touched by other tests.
	if _, err := hotpotato.Benes(3); err != nil {
		t.Errorf("Benes: %v", err)
	}
	if _, err := hotpotato.ButterflyRadix(2, 3); err != nil {
		t.Errorf("ButterflyRadix: %v", err)
	}
	bf, err := hotpotato.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	if id := hotpotato.ButterflyNode(bf, 4, 3, 2); bf.Node(id).Level != 2 {
		t.Error("ButterflyNode wrong level")
	}
	if id := hotpotato.MeshNode(4, 1, 2); id != 6 {
		t.Errorf("MeshNode = %d", id)
	}
	if p, err := hotpotato.TransposeWorkload(bf, 4); err != nil || p.N() != 16 {
		t.Errorf("TransposeWorkload: %v", err)
	}
	if p, err := hotpotato.BitReversalWorkload(bf, 4); err != nil || p.N() != 16 {
		t.Errorf("BitReversalWorkload: %v", err)
	}
	// Valiant on the Benes network (path diversity at the mid level).
	bn, err := hotpotato.Benes(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	var reqs []hotpotato.Request
	for w := 0; w < 8; w++ {
		reqs = append(reqs, hotpotato.Request{
			Src: hotpotato.NodeID(w),
			Dst: hotpotato.NodeID(6*8 + (w+3)%8),
		})
	}
	vp, err := hotpotato.ValiantWorkload("valiant", bn, rng, reqs)
	if err != nil {
		t.Fatalf("ValiantWorkload: %v", err)
	}
	if vp.D != 6 {
		t.Errorf("Valiant D = %d, want 6", vp.D)
	}
}
