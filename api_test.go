package hotpotato_test

import (
	"math/rand"
	"testing"

	"hotpotato"
)

func TestQuickstartFlow(t *testing.T) {
	net, err := hotpotato.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 1, CheckInvariants: true})
	if !res.Done {
		t.Fatalf("frame did not complete: %s", res)
	}
	if res.Steps < hotpotato.LowerBound(prob) {
		t.Errorf("steps %d below the Ω(max(C,D)) lower bound %d", res.Steps, hotpotato.LowerBound(prob))
	}
	if !res.Invariants.Clean() {
		t.Errorf("invariants: %s", res.Invariants.String())
	}
}

func TestAllTopologiesThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nets := []struct {
		name string
		f    func() (*hotpotato.Network, error)
	}{
		{"butterfly", func() (*hotpotato.Network, error) { return hotpotato.Butterfly(3) }},
		{"mesh", func() (*hotpotato.Network, error) { return hotpotato.Mesh(4, 4, hotpotato.CornerSE) }},
		{"hypercube", func() (*hotpotato.Network, error) { return hotpotato.Hypercube(4) }},
		{"array", func() (*hotpotato.Network, error) { return hotpotato.Array(3, 3) }},
		{"bintree", func() (*hotpotato.Network, error) { return hotpotato.BinaryTree(3) }},
		{"fattree", func() (*hotpotato.Network, error) { return hotpotato.FatTree(3, 2) }},
		{"linear", func() (*hotpotato.Network, error) { return hotpotato.Linear(8) }},
		{"ladder", func() (*hotpotato.Network, error) { return hotpotato.Ladder(5) }},
		{"complete", func() (*hotpotato.Network, error) { return hotpotato.CompleteLeveled(4, 3) }},
		{"random", func() (*hotpotato.Network, error) { return hotpotato.RandomLeveled(rng, 8, 2, 4, 0.5) }},
	}
	for _, n := range nets {
		g, err := n.f()
		if err != nil {
			t.Errorf("%s: %v", n.name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", n.name, err)
		}
	}
}

func TestAllBaselinesThroughFacade(t *testing.T) {
	net, err := hotpotato.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []hotpotato.BaselineKind{
		hotpotato.GreedyHP, hotpotato.GreedyFTG, hotpotato.RandGreedyHP,
		hotpotato.SFFifo, hotpotato.SFRandomDelay, hotpotato.SFFarthestToGo,
	} {
		res, err := hotpotato.RouteBaseline(prob, kind, hotpotato.Options{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Done {
			t.Errorf("%s did not complete", kind)
		}
		if res.Steps < hotpotato.LowerBound(prob) {
			// SF schedulers may finish in exactly max(C,D); less is a bug.
			t.Errorf("%s: steps %d below lower bound %d", kind, res.Steps, hotpotato.LowerBound(prob))
		}
		hp := res.HP != nil
		sf := res.SF != nil
		if hp == sf {
			t.Errorf("%s: exactly one of HP/SF metrics must be set", kind)
		}
		for i, lat := range res.PerPacketLatency {
			if lat < 0 {
				t.Errorf("%s: packet %d unabsorbed", kind, i)
			}
		}
		if res.String() == "" {
			t.Errorf("%s: empty String", kind)
		}
	}
	if _, err := hotpotato.RouteBaseline(prob, "bogus", hotpotato.Options{}); err == nil {
		t.Error("bogus baseline accepted")
	}
}

func TestCustomWorkloadAndBuilder(t *testing.T) {
	b := hotpotato.NewNetworkBuilder("custom")
	var prev hotpotato.NodeID = -1
	var nodes []hotpotato.NodeID
	for l := 0; l < 6; l++ {
		v := b.AddNode(l, "")
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		nodes = append(nodes, v)
		prev = v
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prob, err := hotpotato.CustomWorkload("line", g, rng, []hotpotato.Request{
		{Src: nodes[0], Dst: nodes[5]},
		{Src: nodes[2], Dst: nodes[4]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prob.N() != 2 || prob.D != 5 {
		t.Errorf("custom problem: %s", prob)
	}
	res, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 6})
	if err != nil || !res.Done {
		t.Fatalf("greedy on custom: %v %v", err, res)
	}
}

func TestMinCongestionWorkload(t *testing.T) {
	g, err := hotpotato.CompleteLeveled(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	src := g.Level(0)
	dst := g.Level(2)
	var reqs []hotpotato.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, hotpotato.Request{Src: src[i], Dst: dst[(i+1)%6]})
	}
	prob, err := hotpotato.MinCongestionWorkload("spread", g, rng, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if prob.C > 2 {
		t.Errorf("min-congestion selection gave C=%d on a complete network", prob.C)
	}
}

func TestParamsConstructors(t *testing.T) {
	paper := hotpotato.PaperParams(16, 32, 128)
	if err := paper.Validate(); err != nil {
		t.Errorf("paper params: %v", err)
	}
	prac := hotpotato.PracticalParams(16, 32, 128)
	if err := prac.Validate(); err != nil {
		t.Errorf("practical params: %v", err)
	}
	if paper.W <= prac.W {
		t.Errorf("paper W (%d) should dwarf practical W (%d)", paper.W, prac.W)
	}
	custom := hotpotato.PracticalParamsWith(16, 32, 128, hotpotato.PracticalConfig{RoundFactor: 7})
	if custom.W != 7*custom.M {
		t.Errorf("custom W = %d", custom.W)
	}
}

func TestProblemFromPathsRejectsBadSets(t *testing.T) {
	g, err := hotpotato.Linear(4)
	if err != nil {
		t.Fatal(err)
	}
	// Two packets from the same source violate many-to-one.
	set := &hotpotato.PathSet{G: g, Paths: []hotpotato.Path{{0, 1}, {0}}}
	if _, err := hotpotato.ProblemFromPaths("dup", g, set); err == nil {
		t.Error("duplicate-source set accepted")
	}
}
