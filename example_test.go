package hotpotato_test

import (
	"fmt"
	"math/rand"

	"hotpotato"
)

// ExampleRouteFrame routes a hot-spot workload on a butterfly with the
// paper's algorithm and reports the outcome.
func ExampleRouteFrame() {
	net, _ := hotpotato.Butterfly(5)
	rng := rand.New(rand.NewSource(7))
	prob, _ := hotpotato.HotSpotWorkload(net, rng, 16, 2)
	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 7, CheckInvariants: true})
	fmt.Println("done:", res.Done)
	fmt.Println("invariants clean:", res.Invariants.Clean())
	fmt.Println("unsafe deflections:", res.Engine.UnsafeDeflections())
	// Output:
	// done: true
	// invariants clean: true
	// unsafe deflections: 0
}

// ExampleLowerBound shows the trivial Ω(max(C,D)) bound every router is
// subject to.
func ExampleLowerBound() {
	prob, _ := hotpotato.MeshHardWorkload(6)
	fmt.Println("C:", prob.C)
	fmt.Println("D:", prob.D)
	fmt.Println("lower bound:", hotpotato.LowerBound(prob))
	// Output:
	// C: 6
	// D: 10
	// lower bound: 10
}

// ExampleNewAnalysis evaluates Theorem 4.26's probability bound for an
// instance.
func ExampleNewAnalysis() {
	a := hotpotato.NewAnalysis(32, 64, 512)
	fmt.Printf("floor: %.6f\n", a.TheoremFloor())
	fmt.Println("bound holds:", a.SuccessProbability() >= a.TheoremFloor())
	// Output:
	// floor: 0.999969
	// bound holds: true
}

// ExamplePaperParams contrasts proof-grade and practical constants.
func ExamplePaperParams() {
	paper := hotpotato.PaperParams(16, 32, 128)
	practical := hotpotato.PracticalParams(16, 32, 128)
	fmt.Println("paper sets > practical sets:", paper.NumSets > practical.NumSets)
	fmt.Println("paper W > 1000x practical W:", paper.W > 1000*practical.W)
	// Output:
	// paper sets > practical sets: true
	// paper W > 1000x practical W: true
}
