// Command montecarlo runs a parallel seed ensemble of the frame
// algorithm on one problem and reports the empirical success
// probability and latency distribution — the simulation-side view of
// Theorem 4.26's "with probability at least 1 - 1/LN".
//
// Usage:
//
//	montecarlo -trials 256 -topo random -depth 32
//	montecarlo -trials 64 -budget 1.0    # un-inflated schedule budget
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"hotpotato"
	"hotpotato/internal/mc"
)

func main() {
	var (
		trials  = flag.Int("trials", 128, "number of seeds")
		topoStr = flag.String("topo", "random", "topology: random|butterfly")
		depth   = flag.Int("depth", 32, "depth for -topo random")
		size    = flag.Int("size", 6, "dimension for -topo butterfly")
		density = flag.Float64("density", 0.5, "workload source density")
		budget  = flag.Float64("budget", 0, "step budget as a multiple of the schedule bound (0 = 4x)")
		check   = flag.Bool("check", false, "run the invariant checker in every trial")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var (
		net *hotpotato.Network
		err error
	)
	switch *topoStr {
	case "random":
		net, err = hotpotato.RandomLeveled(rng, *depth, 3, 6, 0.4)
	case "butterfly":
		net, err = hotpotato.Butterfly(*size)
	default:
		err = fmt.Errorf("unknown topology %q", *topoStr)
	}
	fatal(err)
	prob, err := hotpotato.RandomWorkload(net, rng, *density)
	fatal(err)
	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())

	maxSteps := 0
	if *budget > 0 {
		maxSteps = int(*budget * float64(params.TotalSteps(prob.L())))
	}

	fmt.Printf("problem: %s\nparams:  %s (schedule bound %d)\n",
		prob, params, params.TotalSteps(prob.L()))
	fmt.Printf("running %d trials on %d cores...\n", *trials, runtime.GOMAXPROCS(0))

	start := time.Now()
	ens, err := mc.Run(prob, params, mc.Options{
		Trials:   *trials,
		BaseSeed: *seed,
		MaxSteps: maxSteps,
		Check:    *check,
		Workers:  *workers,
	})
	fatal(err)
	elapsed := time.Since(start)

	fmt.Println()
	fmt.Println(ens)
	sum := ens.StepsSummary()
	fmt.Printf("steps: %s\n", sum)
	fmt.Printf("success %.4f vs paper bound %.4f; violation rate %.4f\n",
		ens.SuccessRate(), ens.PaperSuccessBound(), ens.ViolationRate())
	fmt.Printf("wall time %v (%.1f trials/s)\n", elapsed.Round(time.Millisecond),
		float64(*trials)/elapsed.Seconds())

	if ens.SuccessRate() < ens.PaperSuccessBound() {
		fmt.Println("note: empirical success below the paper bound — expected only when the")
		fmt.Println("budget multiplier or the practical parameters are set aggressively.")
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "montecarlo:", err)
		os.Exit(1)
	}
}
