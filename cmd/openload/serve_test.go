package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hotpotato/internal/persist"
	"hotpotato/internal/service"
)

// TestServeGracefulDrain is the end-to-end drain contract for
// openload -serve: a real child process gets real traffic and a real
// SIGTERM, and must (1) write a restorable snapshot, (2) flush the
// final partial window into its exit report, (3) exit cleanly within a
// bound, and (4) leave a snapshot whose state matches the report it
// printed — the pieces a supervisor restart relies on.
func TestServeGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "openload")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	snapPath := filepath.Join(dir, "svc.json")
	cmd := exec.Command(bin,
		"-serve", "-http", addr, "-autostep=false",
		"-lambda", "0", "-window", "25", "-seed", "42",
		"-tenants", "gold:rate=1000,burst=1000;free:rate=1,burst=4",
		"-snapshot", snapPath,
	)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr + "/v1/topologies/butterfly"
	waitReady(t, base)

	// Real traffic: gold within budget, free well over it, then enough
	// manual steps to close at least one window and leave one open.
	postOK(t, base+"/batches", `{"tenant":"gold","random":30}`)
	postOK(t, base+"/batches", `{"tenant":"free","random":30}`)
	postOK(t, base+"/advance", `{"steps":40}`)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGTERM: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drain not bounded: still running 10s after SIGTERM\nstderr: %s", stderr.String())
	}

	// The exit report is the same []TopologyStats /v1/topologies serves.
	var report []service.TopologyStats
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("exit report not JSON: %v\nstdout: %s", err, stdout.String())
	}
	if len(report) != 1 || report[0].Name != "butterfly" {
		t.Fatalf("report: %+v", report)
	}
	rep := report[0]
	// 40 steps at window 25: one closed window plus a partial one that
	// only the drain-order flush can surface.
	if rep.LastWindow == nil {
		t.Error("final partial window was not flushed into the exit report")
	} else if rep.LastWindow.Start != 25 {
		t.Errorf("last window starts at %d, want 25 (the partial window)", rep.LastWindow.Start)
	}
	if rep.Step != 40 {
		t.Errorf("stepped %d, want 40", rep.Step)
	}
	// Quota arithmetic is exact: gold's burst covers its whole batch,
	// free's burst of 4 passes 4 of 30. (Engine-level drops depend on
	// contention, so only the quota ledger is asserted exactly.)
	if g := rep.Tenants["gold"]; g.Offered != 30 || g.QuotaDropped != 0 {
		t.Errorf("gold ledger: %+v", g)
	}
	if f := rep.Tenants["free"]; f.Offered != 30 || f.QuotaDropped != 26 || f.Dropped == 0 {
		t.Errorf("free ledger: %+v", f)
	}

	// The snapshot must exist, validate, and restore into a live service
	// whose digest matches the report — because it was taken BEFORE the
	// flush, at the same step boundary the report describes.
	fh, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	snap, err := persist.ReadServiceSnapshot(fh)
	fh.Close()
	if err != nil {
		t.Fatalf("snapshot unreadable: %v", err)
	}
	svc, err := service.Restore(snap, service.Options{})
	if err != nil {
		t.Fatalf("snapshot does not restore: %v", err)
	}
	defer svc.Close()
	got, err := svc.Stats("butterfly")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != rep.Digest || got.Step != rep.Step {
		t.Errorf("restored digest/step %x/%d, report %x/%d",
			got.Digest, got.Step, rep.Digest, rep.Step)
	}
	if got.Tenants["free"].QuotaDropped != 26 {
		t.Errorf("restored free ledger: %+v", got.Tenants["free"])
	}
}

// freeAddr reserves a localhost port. The listener is closed before the
// child binds it — a small race, tolerated because the child retries
// nothing and waitReady would just fail loudly.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("service never became ready")
}

func postOK(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
}
