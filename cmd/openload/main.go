// Command openload runs the open-system (continuous-arrival) simulator
// and prints either a λ-sweep summary or a single-rate time series as
// CSV — the raw data behind experiment E15.
//
// Usage:
//
//	openload -sweep 0.01,0.05,0.1,0.3          # one row per rate
//	openload -lambda 0.1 -window 200           # CSV time series
//	openload -lambda 0.1 -steps 10000000 -http :8090   # live soak
//
// With -http the process serves expvar under /debug/vars (an
// "openload" map updated at every closed window) and the pprof
// handlers under /debug/pprof/; the simulation goroutine carries
// pprof labels (cmd=openload, lambda=...), so its samples are
// attributable in profiles taken from the endpoint.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"hotpotato"
	"hotpotato/internal/dynamic"
)

func main() {
	var (
		topoStr  = flag.String("topo", "butterfly", "topology: butterfly|random")
		size     = flag.Int("size", 5, "butterfly dimension")
		depth    = flag.Int("depth", 24, "depth for -topo random")
		steps    = flag.Int("steps", 5000, "simulated horizon")
		lambda   = flag.Float64("lambda", 0.1, "per-node per-step arrival rate (single-rate mode)")
		sweep    = flag.String("sweep", "", "comma-separated rates; prints a summary row per rate")
		window   = flag.Int("window", 0, "emit a CSV time series with this window size (single-rate mode)")
		seed     = flag.Int64("seed", 1, "random seed")
		httpAddr = flag.String("http", "", "serve live expvar (/debug/vars) and pprof (/debug/pprof/) on this address during a single-rate run")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var (
		net *hotpotato.Network
		err error
	)
	switch *topoStr {
	case "butterfly":
		net, err = hotpotato.Butterfly(*size)
	case "random":
		net, err = hotpotato.RandomLeveled(rng, *depth, 3, 6, 0.4)
	default:
		err = fmt.Errorf("unknown topology %q", *topoStr)
	}
	fatal(err)

	if *sweep != "" {
		fmt.Println("lambda,offered,admitted,admit_rate,delivered_per_step,lat_p50,lat_p99,avg_inflight")
		for _, s := range strings.Split(*sweep, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			fatal(err)
			res, err := dynamic.Run(net, dynamic.Config{
				Lambda: rate, Steps: *steps, Warmup: *steps / 10, Seed: *seed,
			})
			fatal(err)
			fmt.Printf("%g,%d,%d,%.4f,%.4f,%.0f,%.0f,%.1f\n",
				rate, res.Offered, res.Admitted, res.AdmissionRate(),
				res.Throughput(), res.Latency.Median, res.Latency.P99, res.AvgInFlight)
		}
		return
	}

	win := *window
	if win <= 0 {
		win = *steps / 20
		if win < 1 {
			win = 1
		}
	}
	cfg := dynamic.Config{
		Lambda: *lambda, Steps: *steps, Warmup: *steps / 10, Seed: *seed, Window: win,
	}
	if *httpAddr != "" {
		cfg.OnWindow = liveVars()
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "openload: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "openload: serving /debug/vars and /debug/pprof/ on %s\n", *httpAddr)
	}
	var res *dynamic.Result
	labels := pprof.Labels("cmd", "openload", "lambda", fmt.Sprintf("%g", *lambda))
	pprof.Do(context.Background(), labels, func(context.Context) {
		var err error
		res, err = dynamic.Run(net, cfg)
		fatal(err)
	})
	fmt.Fprintln(os.Stderr, res)
	fmt.Println("window_start,delivered,mean_latency,mean_inflight")
	for _, w := range res.Windows {
		fmt.Printf("%d,%d,%.2f,%.2f\n", w.Start, w.Delivered, w.MeanLatency, w.MeanInFlight)
	}
}

// liveVars publishes an "openload" expvar map and returns the
// dynamic.Config.OnWindow callback that refreshes it as each window
// closes. Gauges (window_*) describe the last closed window; the rest
// are cumulative over the run so far.
func liveVars() func(dynamic.WindowStats, *dynamic.Result) {
	m := expvar.NewMap("openload")
	var (
		winStart, winDelivered       expvar.Int
		winLatency, winInFlight      expvar.Float
		offered, admitted, delivered expvar.Int
		deflections, peak            expvar.Int
	)
	m.Set("window_start", &winStart)
	m.Set("window_delivered", &winDelivered)
	m.Set("window_mean_latency", &winLatency)
	m.Set("window_mean_inflight", &winInFlight)
	m.Set("offered", &offered)
	m.Set("admitted", &admitted)
	m.Set("delivered", &delivered)
	m.Set("deflections", &deflections)
	m.Set("peak_inflight", &peak)
	return func(w dynamic.WindowStats, r *dynamic.Result) {
		winStart.Set(int64(w.Start))
		winDelivered.Set(int64(w.Delivered))
		winLatency.Set(w.MeanLatency)
		winInFlight.Set(w.MeanInFlight)
		offered.Set(int64(r.Offered))
		admitted.Set(int64(r.Admitted))
		delivered.Set(int64(r.Delivered))
		deflections.Set(int64(r.Deflections))
		peak.Set(int64(r.PeakInFlight))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "openload:", err)
		os.Exit(1)
	}
}
