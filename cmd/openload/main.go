// Command openload runs the open-system (continuous-arrival) simulator
// and prints either a λ-sweep summary or a single-rate time series as
// CSV — the raw data behind experiment E15.
//
// Usage:
//
//	openload -sweep 0.01,0.05,0.1,0.3          # one row per rate
//	openload -lambda 0.1 -window 200           # CSV time series
//	openload -lambda 0.1 -steps 10000000 -http :8090   # live soak
//	openload -lambda 0.1 -faults "flap:period=200,down=20,rate=0.3" -retry 6
//
// With -http the process serves expvar under /debug/vars (an
// "openload" map updated at every closed window) and the pprof
// handlers under /debug/pprof/; the simulation goroutine carries
// pprof labels (cmd=openload, lambda=...), so its samples are
// attributable in profiles taken from the endpoint. The server uses a
// ReadHeaderTimeout (no slowloris hangs) and drains gracefully:
// SIGINT/SIGTERM stops the simulation at the next step, flushes the
// final partial window through the expvar map and the CSV output, and
// shuts the listener down before exit.
//
// With -faults the run degrades under the given campaign (spec syntax
// in docs/FAULTS.md); -retry N turns blocked arrivals into bounded
// exponential-backoff retries instead of immediate losses.
//
// With -serve the process becomes routing-as-a-service (docs/SERVICE.md):
// the topology is served over the internal/service HTTP API, tenants
// from -tenants submit packet batches under token-bucket quotas, and
// /debug/vars carries per-tenant ledgers under the "service" var.
// SIGINT/SIGTERM drains gracefully — the in-flight state is frozen to
// -snapshot (taken BEFORE the final window flush, so a process
// restarted with -restore resumes the exact trajectory, trace digest
// and all), the final partial window is flushed, and the listener shuts
// down bounded.
//
//	openload -serve -http :8090 -lambda 0 -window 200 \
//	    -tenants 'gold:rate=200,burst=400;free:rate=20,burst=40' \
//	    -snapshot /tmp/svc.json
//	openload -serve -http :8090 -restore /tmp/svc.json   # resume
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hotpotato"
	"hotpotato/internal/dynamic"
	"hotpotato/internal/faults"
)

func main() {
	var (
		topoStr   = flag.String("topo", "butterfly", "topology: butterfly|random")
		size      = flag.Int("size", 5, "butterfly dimension")
		depth     = flag.Int("depth", 24, "depth for -topo random")
		steps     = flag.Int("steps", 5000, "simulated horizon")
		lambda    = flag.Float64("lambda", 0.1, "per-node per-step arrival rate (single-rate mode)")
		sweep     = flag.String("sweep", "", "comma-separated rates; prints a summary row per rate")
		window    = flag.Int("window", 0, "emit a CSV time series with this window size (single-rate mode)")
		seed      = flag.Int64("seed", 1, "random seed")
		faultSpec = flag.String("faults", "", "fault campaign spec, e.g. 'flap:period=200,down=20,rate=0.3' (see docs/FAULTS.md)")
		retryMax  = flag.Int("retry", 0, "max admission attempts per arrival (0 = no retry, shed blocked arrivals)")
		retryBase = flag.Int("retry-base", 1, "backoff before the first retry, in steps")
		retryCap  = flag.Int("retry-cap", 64, "backoff ceiling, in steps")
		httpAddr  = flag.String("http", "", "serve live expvar (/debug/vars) and pprof (/debug/pprof/) on this address during a single-rate run")

		serve       = flag.Bool("serve", false, "routing-as-a-service mode: serve the topology over the HTTP packet API (requires -http)")
		tenantSpec  = flag.String("tenants", "gold:rate=200,burst=400;free:rate=20,burst=40", "serve mode tenant quota table, 'name:rate=R,burst=B;...' (bare name = unlimited)")
		snapPath    = flag.String("snapshot", "", "serve mode: freeze the service to this file on SIGTERM (before the final window flush)")
		restorePath = flag.String("restore", "", "serve mode: resume from this snapshot file instead of starting fresh")
		autoStep    = flag.Bool("autostep", true, "serve mode: step engines continuously; false = deterministic manual stepping via the /advance endpoint")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var (
		net *hotpotato.Network
		err error
	)
	switch *topoStr {
	case "butterfly":
		net, err = hotpotato.Butterfly(*size)
	case "random":
		net, err = hotpotato.RandomLeveled(rng, *depth, 3, 6, 0.4)
	default:
		err = fmt.Errorf("unknown topology %q", *topoStr)
	}
	fatal(err)

	campaign, err := faults.Parse(*faultSpec)
	fatal(err)
	var model hotpotato.FaultModel
	if campaign != nil {
		model = campaign.Model(net, *seed)
		fmt.Fprintf(os.Stderr, "openload: fault campaign %s\n", campaign.Name())
	}
	retry := dynamic.RetryPolicy{MaxAttempts: *retryMax, BaseDelay: *retryBase, MaxDelay: *retryCap}

	if *serve || *restorePath != "" {
		win := *window
		if win <= 0 {
			win = 200
		}
		runServe(serveConfig{
			addr: *httpAddr, topoName: *topoStr, net: net,
			engine: dynamic.Config{
				Lambda: *lambda, Steps: 0, Seed: *seed, Window: win, Retry: retry,
			},
			faultSpec: *faultSpec, faultSeed: *seed,
			tenantSpec: *tenantSpec, autoStep: *autoStep,
			snapPath: *snapPath, restorePath: *restorePath,
		})
		return
	}

	if *sweep != "" {
		fmt.Println("lambda,offered,admitted,admit_rate,delivered_per_step,lat_p50,lat_p99,avg_inflight,fault_blocked,fault_stalls,retried,dropped")
		for _, s := range strings.Split(*sweep, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			fatal(err)
			res, err := dynamic.Run(net, dynamic.Config{
				Lambda: rate, Steps: *steps, Warmup: *steps / 10, Seed: *seed,
				Faults: model, Retry: retry,
			})
			fatal(err)
			fmt.Printf("%g,%d,%d,%.4f,%.4f,%.0f,%.0f,%.1f,%d,%d,%d,%d\n",
				rate, res.Offered, res.Admitted, res.AdmissionRate(),
				res.Throughput(), res.Latency.Median, res.Latency.P99, res.AvgInFlight,
				res.FaultBlocked, res.FaultStalls, res.Retried, res.Dropped)
		}
		return
	}

	win := *window
	if win <= 0 {
		win = *steps / 20
		if win < 1 {
			win = 1
		}
	}

	// SIGINT/SIGTERM drains the run: the simulation stops at the next
	// step, flushes its final partial window, and the report below
	// still prints.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	cfg := dynamic.Config{
		Lambda: *lambda, Steps: *steps, Warmup: *steps / 10, Seed: *seed, Window: win,
		Faults: model, Retry: retry, Stop: ctx.Done(),
	}
	var server *http.Server
	if *httpAddr != "" {
		cfg.OnWindow = liveVars()
		server = &http.Server{
			Addr:              *httpAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "openload: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "openload: serving /debug/vars and /debug/pprof/ on %s\n", *httpAddr)
	}
	var res *dynamic.Result
	labels := pprof.Labels("cmd", "openload", "lambda", fmt.Sprintf("%g", *lambda))
	pprof.Do(context.Background(), labels, func(context.Context) {
		var err error
		res, err = dynamic.Run(net, cfg)
		fatal(err)
	})
	if res.Interrupted {
		fmt.Fprintf(os.Stderr, "openload: interrupted after %d steps; final window flushed\n", res.ExecutedSteps)
	}
	if server != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := server.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "openload: shutdown:", err)
		}
		cancel()
	}
	fmt.Fprintln(os.Stderr, res)
	fmt.Println("window_start,delivered,mean_latency,mean_inflight,fault_blocked,fault_stalls,dropped,availability")
	for _, w := range res.Windows {
		fmt.Printf("%d,%d,%.2f,%.2f,%d,%d,%d,%.4f\n",
			w.Start, w.Delivered, w.MeanLatency, w.MeanInFlight,
			w.FaultBlocked, w.FaultStalls, w.Dropped, w.Availability)
	}
}

// liveVars publishes an "openload" expvar map and returns the
// dynamic.Config.OnWindow callback that refreshes it as each window
// closes. Gauges (window_*) describe the last closed window; the rest
// are cumulative over the run so far.
func liveVars() func(dynamic.WindowStats, *dynamic.Result) {
	m := expvar.NewMap("openload")
	var (
		winStart, winDelivered       expvar.Int
		winLatency, winInFlight      expvar.Float
		winAvailability              expvar.Float
		offered, admitted, delivered expvar.Int
		deflections, peak            expvar.Int
		faultBlocked, faultStalls    expvar.Int
		retried, dropped             expvar.Int
	)
	m.Set("window_start", &winStart)
	m.Set("window_delivered", &winDelivered)
	m.Set("window_mean_latency", &winLatency)
	m.Set("window_mean_inflight", &winInFlight)
	m.Set("window_availability", &winAvailability)
	m.Set("offered", &offered)
	m.Set("admitted", &admitted)
	m.Set("delivered", &delivered)
	m.Set("deflections", &deflections)
	m.Set("peak_inflight", &peak)
	m.Set("fault_blocked", &faultBlocked)
	m.Set("fault_stalls", &faultStalls)
	m.Set("retried", &retried)
	m.Set("dropped", &dropped)
	return func(w dynamic.WindowStats, r *dynamic.Result) {
		winStart.Set(int64(w.Start))
		winDelivered.Set(int64(w.Delivered))
		winLatency.Set(w.MeanLatency)
		winInFlight.Set(w.MeanInFlight)
		winAvailability.Set(w.Availability)
		offered.Set(int64(r.Offered))
		admitted.Set(int64(r.Admitted))
		delivered.Set(int64(r.Delivered))
		deflections.Set(int64(r.Deflections))
		peak.Set(int64(r.PeakInFlight))
		faultBlocked.Set(int64(r.FaultBlocked))
		faultStalls.Set(int64(r.FaultStalls))
		retried.Set(int64(r.Retried))
		dropped.Set(int64(r.Dropped))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "openload:", err)
		os.Exit(1)
	}
}
