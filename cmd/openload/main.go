// Command openload runs the open-system (continuous-arrival) simulator
// and prints either a λ-sweep summary or a single-rate time series as
// CSV — the raw data behind experiment E15.
//
// Usage:
//
//	openload -sweep 0.01,0.05,0.1,0.3          # one row per rate
//	openload -lambda 0.1 -window 200           # CSV time series
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"hotpotato"
	"hotpotato/internal/dynamic"
)

func main() {
	var (
		topoStr = flag.String("topo", "butterfly", "topology: butterfly|random")
		size    = flag.Int("size", 5, "butterfly dimension")
		depth   = flag.Int("depth", 24, "depth for -topo random")
		steps   = flag.Int("steps", 5000, "simulated horizon")
		lambda  = flag.Float64("lambda", 0.1, "per-node per-step arrival rate (single-rate mode)")
		sweep   = flag.String("sweep", "", "comma-separated rates; prints a summary row per rate")
		window  = flag.Int("window", 0, "emit a CSV time series with this window size (single-rate mode)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var (
		net *hotpotato.Network
		err error
	)
	switch *topoStr {
	case "butterfly":
		net, err = hotpotato.Butterfly(*size)
	case "random":
		net, err = hotpotato.RandomLeveled(rng, *depth, 3, 6, 0.4)
	default:
		err = fmt.Errorf("unknown topology %q", *topoStr)
	}
	fatal(err)

	if *sweep != "" {
		fmt.Println("lambda,offered,admitted,admit_rate,delivered_per_step,lat_p50,lat_p99,avg_inflight")
		for _, s := range strings.Split(*sweep, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			fatal(err)
			res, err := dynamic.Run(net, dynamic.Config{
				Lambda: rate, Steps: *steps, Warmup: *steps / 10, Seed: *seed,
			})
			fatal(err)
			fmt.Printf("%g,%d,%d,%.4f,%.4f,%.0f,%.0f,%.1f\n",
				rate, res.Offered, res.Admitted, res.AdmissionRate(),
				res.Throughput(), res.Latency.Median, res.Latency.P99, res.AvgInFlight)
		}
		return
	}

	win := *window
	if win <= 0 {
		win = *steps / 20
		if win < 1 {
			win = 1
		}
	}
	res, err := dynamic.Run(net, dynamic.Config{
		Lambda: *lambda, Steps: *steps, Warmup: *steps / 10, Seed: *seed, Window: win,
	})
	fatal(err)
	fmt.Fprintln(os.Stderr, res)
	fmt.Println("window_start,delivered,mean_latency,mean_inflight")
	for _, w := range res.Windows {
		fmt.Printf("%d,%d,%.2f,%.2f\n", w.Start, w.Delivered, w.MeanLatency, w.MeanInFlight)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "openload:", err)
		os.Exit(1)
	}
}
