package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/graph"
	"hotpotato/internal/persist"
	"hotpotato/internal/service"
)

type serveConfig struct {
	addr        string
	topoName    string
	net         *graph.Leveled
	engine      dynamic.Config
	faultSpec   string
	faultSeed   int64
	tenantSpec  string
	autoStep    bool
	snapPath    string
	restorePath string
}

// runServe hosts routing-as-a-service until SIGINT/SIGTERM, then drains
// in the documented order: freeze the snapshot first (so the open
// window's accumulators survive into the restored process), flush the
// final partial window for the local report, shut the listener down
// bounded, and stop the engine loops.
func runServe(sc serveConfig) {
	if sc.addr == "" {
		fatal(fmt.Errorf("serve mode requires -http addr"))
	}
	var svc *service.Service
	if sc.restorePath != "" {
		f, err := os.Open(sc.restorePath)
		fatal(err)
		snap, err := persist.ReadServiceSnapshot(f)
		f.Close()
		fatal(err)
		svc, err = service.Restore(snap, service.Options{})
		fatal(err)
		fmt.Fprintf(os.Stderr, "openload: restored %d topology(ies) from %s\n", len(snap.Topologies), sc.restorePath)
	} else {
		tenants, err := service.ParseTenants(sc.tenantSpec)
		fatal(err)
		svc, err = service.New([]service.TopologyConfig{{
			Name:      sc.topoName,
			Network:   sc.net,
			Engine:    sc.engine,
			FaultSpec: sc.faultSpec,
			FaultSeed: sc.faultSeed,
			AutoStep:  sc.autoStep,
			Tenants:   tenants,
		}}, service.Options{})
		fatal(err)
	}
	svc.Publish("service")

	mux := http.NewServeMux()
	mux.Handle("/v1/", svc.Handler())
	mux.Handle("/debug/", http.DefaultServeMux) // expvar + pprof
	server := &http.Server{
		Addr:              sc.addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "openload: http:", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "openload: serving routing API on %s (topologies: %v)\n", sc.addr, svc.Names())

	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "openload: draining")

	// 1. Freeze in-flight state while the window is still open.
	if sc.snapPath != "" {
		if err := writeSnapshotFile(svc, sc.snapPath); err != nil {
			fmt.Fprintln(os.Stderr, "openload: snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "openload: snapshot written to %s\n", sc.snapPath)
	}
	// 2. Close the partial window so the exit report drops nothing.
	if err := svc.FlushWindows(); err != nil {
		fmt.Fprintln(os.Stderr, "openload: flush:", err)
	}
	// 3. Final report: the same stats object /v1/topologies serves.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(svc.AllStats()); err != nil {
		fmt.Fprintln(os.Stderr, "openload: report:", err)
	}
	// 4. Bounded listener shutdown, then stop the loops.
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	if err := server.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "openload: shutdown:", err)
	}
	cancel()
	svc.Close()
}

// writeSnapshotFile writes the snapshot atomically: temp file in the
// destination directory, then rename — a crash mid-write never leaves a
// truncated snapshot where a restore would look for one.
func writeSnapshotFile(svc *service.Service, path string) error {
	snap, err := svc.Snapshot()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.json")
	if err != nil {
		return err
	}
	if err := persist.WriteServiceSnapshot(tmp, snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
