// Command loadgen drives a routing service (openload -serve) over its
// HTTP API with heavy-tailed traffic and reports what the service did
// with it.
//
// Batch sizes are Pareto(α, xm) — heavy-tailed by design, because open
// systems look healthy under uniform load and fall over under bursts;
// α ≤ 2 gives infinite variance, the interesting regime. Each batch is
// assigned to a tenant by weighted draw from -mix, so one run exercises
// several quota classes at once (the over-budget tenant's drops and the
// in-budget tenant's clean ledger in the same report).
//
// The report covers both sides of the API: client-observed request
// latency quantiles with bootstrap confidence intervals
// (stats.BootstrapQuantileCI — the CIs make two loadgen runs
// comparable without eyeballing), and the service's own per-tenant
// admission/drop/delivery ledgers read back from /v1/topologies/{name}.
//
//	loadgen -addr http://localhost:8090 -topo butterfly \
//	    -batches 200 -alpha 1.4 -xm 3 -seed 7 \
//	    -mix 'gold=0.7,free=0.3'
//
// Deterministic per -seed on the client side: batch sizes, tenant draws
// and pacing come from one sequential RNG.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hotpotato/internal/service"
	"hotpotato/internal/stats"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8090", "base URL of the routing service")
		topo    = flag.String("topo", "butterfly", "topology name to target")
		batches = flag.Int("batches", 100, "number of batches to submit")
		alpha   = flag.Float64("alpha", 1.4, "Pareto shape for batch sizes (smaller = heavier tail)")
		xm      = flag.Float64("xm", 2, "Pareto scale: minimum batch size")
		maxB    = flag.Int("max-batch", 512, "cap on a single batch (keeps one tail draw from saturating the engine cap)")
		mix     = flag.String("mix", "gold=0.7,free=0.3", "tenant traffic mix as 'name=weight,...'")
		seed    = flag.Int64("seed", 1, "client RNG seed (sizes, tenant draws, pacing)")
		pace    = flag.Duration("pace", 0, "mean inter-batch gap (0 = as fast as possible; gaps are exponential around the mean)")
		advance = flag.Int("advance", 0, "call /advance with this many steps after each batch (for -autostep=false services)")
		drain   = flag.Duration("drain", 10*time.Second, "after submitting, wait up to this long for the service to drain")
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	tenants, weights, err := parseMix(*mix)
	fatal(err)
	if *alpha <= 0 || *xm < 1 {
		fatal(fmt.Errorf("need alpha > 0 and xm >= 1"))
	}
	if *batches < 1 {
		fatal(fmt.Errorf("need -batches >= 1"))
	}

	rng := rand.New(rand.NewSource(*seed))
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/") + "/v1/topologies/" + *topo

	offered := make(map[string]int)
	admitted := make(map[string]int)
	quotaDropped := make(map[string]int)
	var reqLatencies []float64 // seconds, client-observed

	// The step counter before any load: the report's service-side
	// stepping rate covers only the steps this run drove.
	initial, err := getStats(client, base)
	fatal(err)
	start := time.Now()

	for i := 0; i < *batches; i++ {
		tenant := tenants[weightedDraw(rng, weights)]
		size := paretoSize(rng, *alpha, *xm, *maxB)
		req := service.BatchRequest{Tenant: tenant, Random: size}
		t0 := time.Now()
		res, err := postBatch(client, base+"/batches", req)
		fatal(err)
		reqLatencies = append(reqLatencies, time.Since(t0).Seconds())
		offered[tenant] += res.Offered
		admitted[tenant] += res.Admitted
		quotaDropped[tenant] += res.QuotaDropped
		if *advance > 0 {
			fatal(postAdvance(client, base+"/advance", *advance))
		}
		if *pace > 0 {
			// Exponential gaps: a Poisson batch-arrival process around
			// the requested mean.
			time.Sleep(time.Duration(rng.ExpFloat64() * float64(*pace)))
		}
	}
	submitWall := time.Since(start)

	// Let the service work off the backlog before reading final ledgers.
	var final service.TopologyStats
	deadline := time.Now().Add(*drain)
	for {
		final, err = getStats(client, base)
		fatal(err)
		if final.Live == 0 && final.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "loadgen: drain timeout: %d live, %d queued\n", final.Live, final.QueueDepth)
			break
		}
		if *advance > 0 {
			fatal(postAdvance(client, base+"/advance", *advance))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	wall := time.Since(start)

	report := buildReport(*topo, *batches, submitWall, wall, reqLatencies, tenants, offered, admitted, quotaDropped, initial, final, *seed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(report))
		return
	}
	printReport(report)
}

// Report is the machine-readable result of one loadgen run.
type Report struct {
	Topology   string  `json:"topology"`
	Batches    int     `json:"batches"`
	SubmitSecs float64 `json:"submit_secs"`
	WallSecs   float64 `json:"wall_secs"`
	Throughput float64 `json:"delivered_per_sec"`
	// ServiceSteps is the number of engine steps the service executed
	// during this run (final minus initial step counter) and
	// ServiceStepsPerSec that count over the wall clock — the
	// service-side stepping rate, the end-to-end counterpart of the
	// engine's ns/step in BENCH_dynamic.json.
	ServiceSteps       int                   `json:"service_steps"`
	ServiceStepsPerSec float64               `json:"service_steps_per_sec"`
	ReqP50             stats.QuantileCI      `json:"req_latency_p50_secs"`
	ReqP99             stats.QuantileCI      `json:"req_latency_p99_secs"`
	Tenants            []TenantReport        `json:"tenants"`
	Service            service.TopologyStats `json:"service"`
}

// TenantReport is one tenant's client-vs-service reconciliation.
type TenantReport struct {
	Name            string  `json:"name"`
	Offered         int     `json:"offered"`
	Admitted        int     `json:"admitted"`
	QuotaDropped    int     `json:"quota_dropped"`
	AdmissionRate   float64 `json:"admission_rate"`
	ServiceDropRate float64 `json:"service_drop_rate"`
	Delivered       int     `json:"delivered"`
}

func buildReport(topo string, batches int, submitWall, wall time.Duration, lats []float64,
	tenants []string, offered, admitted, quotaDropped map[string]int,
	initial, final service.TopologyStats, seed int64) Report {
	rep := Report{
		Topology: topo, Batches: batches,
		SubmitSecs: submitWall.Seconds(), WallSecs: wall.Seconds(),
	}
	rep.ServiceSteps = final.Step - initial.Step
	if wall > 0 {
		rep.Throughput = float64(final.Delivered) / wall.Seconds()
		rep.ServiceStepsPerSec = float64(rep.ServiceSteps) / wall.Seconds()
	}
	// Bootstrap CIs make the quantiles comparable across runs; the seed
	// derives from the client seed so the report itself is reproducible.
	rep.ReqP50 = stats.BootstrapQuantileCI(lats, 0.5, 1000, uint64(seed)+1, 0.95)
	rep.ReqP99 = stats.BootstrapQuantileCI(lats, 0.99, 1000, uint64(seed)+2, 0.95)
	for _, name := range tenants {
		tr := TenantReport{
			Name: name, Offered: offered[name],
			Admitted: admitted[name], QuotaDropped: quotaDropped[name],
		}
		if tr.Offered > 0 {
			tr.AdmissionRate = float64(tr.Admitted) / float64(tr.Offered)
		}
		if ts, ok := final.Tenants[name]; ok {
			tr.ServiceDropRate = ts.DropRate
			tr.Delivered = ts.Delivered
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	rep.Service = final
	return rep
}

func printReport(r Report) {
	fmt.Printf("loadgen: %s: %d batches in %.2fs (total wall %.2fs), %.1f delivered/s\n",
		r.Topology, r.Batches, r.SubmitSecs, r.WallSecs, r.Throughput)
	fmt.Printf("request latency p50 %.1fms [%.1f, %.1f]  p99 %.1fms [%.1f, %.1f]  (95%% bootstrap CI)\n",
		1e3*r.ReqP50.Estimate, 1e3*r.ReqP50.Lo, 1e3*r.ReqP50.Hi,
		1e3*r.ReqP99.Estimate, 1e3*r.ReqP99.Lo, 1e3*r.ReqP99.Hi)
	fmt.Println("tenant,offered,admitted,quota_dropped,admission_rate,service_drop_rate,delivered")
	for _, t := range r.Tenants {
		fmt.Printf("%s,%d,%d,%d,%.4f,%.4f,%d\n",
			t.Name, t.Offered, t.Admitted, t.QuotaDropped, t.AdmissionRate, t.ServiceDropRate, t.Delivered)
	}
	fmt.Printf("service totals: offered=%d delivered=%d dropped=%d deflections=%d step=%d (%d steps this run, %.0f steps/s)\n",
		r.Service.Offered, r.Service.Delivered, r.Service.Dropped, r.Service.Deflections, r.Service.Step,
		r.ServiceSteps, r.ServiceStepsPerSec)
}

// paretoSize draws a Pareto(α, xm) batch size, capped.
func paretoSize(rng *rand.Rand, alpha, xm float64, cap int) int {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	n := int(math.Ceil(xm * math.Pow(u, -1/alpha)))
	if n > cap {
		n = cap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// weightedDraw picks an index with probability proportional to weights.
func weightedDraw(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// parseMix parses 'name=weight,...' into parallel name/weight slices
// (names sorted for deterministic draws per seed).
func parseMix(s string) ([]string, []float64, error) {
	byName := make(map[string]float64)
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || name == "" {
			return nil, nil, fmt.Errorf("loadgen: mix entry %q is not name=weight", kv)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return nil, nil, fmt.Errorf("loadgen: mix weight %q invalid", kv)
		}
		if _, dup := byName[name]; dup {
			return nil, nil, fmt.Errorf("loadgen: duplicate tenant %q in mix", name)
		}
		byName[name] = w
	}
	if len(byName) == 0 {
		return nil, nil, fmt.Errorf("loadgen: empty mix")
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	weights := make([]float64, len(names))
	for i, n := range names {
		weights[i] = byName[n]
	}
	return names, weights, nil
}

func postBatch(client *http.Client, url string, req service.BatchRequest) (service.BatchResult, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return service.BatchResult{}, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return service.BatchResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return service.BatchResult{}, fmt.Errorf("loadgen: batch: %s: %s", resp.Status, e.Error)
	}
	var res service.BatchResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	return res, err
}

func postAdvance(client *http.Client, url string, steps int) error {
	body := fmt.Sprintf(`{"steps":%d}`, steps)
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: advance: %s", resp.Status)
	}
	return nil
}

func getStats(client *http.Client, url string) (service.TopologyStats, error) {
	resp, err := client.Get(url)
	if err != nil {
		return service.TopologyStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.TopologyStats{}, fmt.Errorf("loadgen: stats: %s", resp.Status)
	}
	var st service.TopologyStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
