// Command frames animates the frontier-frame pipeline of the paper's
// Figure 2: it prints the frame positions phase by phase, optionally
// overlaid with the live per-level packet census of a real run.
//
// Usage:
//
//	frames                          # static pipeline, paper-style
//	frames -live                    # overlay a real frame-routing run
//	frames -sets 4 -m 3 -depth 16
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/trace"
	"hotpotato/internal/workload"
)

func main() {
	var (
		sets  = flag.Int("sets", 3, "number of frontier-sets")
		m     = flag.Int("m", 4, "frame size (levels per frame = rounds per phase)")
		w     = flag.Int("w", 12, "steps per round")
		depth = flag.Int("depth", 14, "network depth L")
		live  = flag.Bool("live", false, "run the real router and overlay per-level occupancy")
		seed  = flag.Int64("seed", 1, "random seed for -live")
	)
	flag.Parse()

	params := core.Params{NumSets: *sets, M: *m, W: *w, Q: 0.1}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "frames:", err)
		os.Exit(1)
	}
	sched := core.Schedule{P: params}

	if !*live {
		fmt.Printf("frontier-frame pipeline: %d sets, M=%d, depth L=%d\n", *sets, *m, *depth)
		fmt.Printf("(F = frontier, = = frame body, T = round-0 target, . = outside)\n\n")
		last := sched.LastFramePhase(*depth)
		for ph := 0; ph <= last; ph += 2 {
			fmt.Print(trace.RenderFrames(sched, *depth, ph, 0))
			fmt.Println()
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := topo.Random(rng, *depth, 3, 5, 0.4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frames:", err)
		os.Exit(1)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "frames:", err)
		os.Exit(1)
	}
	fmt.Printf("live run: %s, params %s\n\n", p, params)

	router := core.NewFrame(params)
	eng := sim.NewEngine(p, router, *seed)
	rec := trace.NewRecorder(1)
	rec.Attach(eng)
	eng.AddObserver(func(t int, e *sim.Engine) {
		if !sched.IsPhaseEnd(t) {
			return
		}
		ph := sched.PhaseOf(t)
		fmt.Print(trace.RenderFrames(sched, p.L(), ph, sched.RoundOf(t)))
		fmt.Println(trace.RenderOccupancy(rec.Snapshots[len(rec.Snapshots)-1]))
		n, x, wt := router.StateCounts(e)
		fmt.Printf("states: normal=%d excited=%d wait=%d\n\n", n, x, wt)
	})
	steps, done := eng.Run(4 * params.TotalSteps(p.L()))
	fmt.Printf("finished: steps=%d done=%v absorbed=%d/%d deflections=%d\n",
		steps, done, eng.M.Absorbed, p.N(), eng.M.TotalDeflections())
}
