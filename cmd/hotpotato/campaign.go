package main

import (
	"errors"
	"fmt"
	"os"

	"hotpotato/internal/campaign"
)

// campaignConfig carries the -campaign* flags.
type campaignConfig struct {
	out        string // result document path
	grid       string // named grid: smoke|full
	checkpoint string // checkpoint file ("" = no checkpointing)
	workers    int
	trials     int    // 0 = grid default
	seed       int64  // 0 = grid default
	stopAfter  int    // stop after N newly completed cells (resume later)
	stream     string // per-cell CSV stream path
	baseline   string // CompareCampaign gate target
}

// runCampaign executes the -campaign mode end to end: resolve the
// grid, run (or resume) it, write the document, and gate against the
// committed baseline. A -campaign-stop-after interrupt exits 0 — it is
// the CI kill half of the kill-and-resume cycle, not a failure.
func runCampaign(cfg campaignConfig) {
	spec, err := campaign.Grid(cfg.grid)
	fatal(err)
	if cfg.trials > 0 {
		spec.Trials = cfg.trials
	}
	if cfg.seed != 0 {
		spec.BaseSeed = cfg.seed
	}

	rc := campaign.RunConfig{
		Workers:    cfg.workers,
		Checkpoint: cfg.checkpoint,
		StopAfter:  cfg.stopAfter,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if cfg.stream != "" {
		f, err := os.Create(cfg.stream)
		fatal(err)
		defer f.Close()
		rc.Stream = f
	}

	cells, err := spec.Cells()
	fatal(err)
	fmt.Printf("campaign %s: %d cells (trials=%d, spec %s)\n",
		spec.Name, len(cells), spec.Trials, spec.Fingerprint())

	doc, err := campaign.Run(spec, rc)
	if errors.Is(err, campaign.ErrStopped) {
		if cfg.checkpoint == "" {
			fatal(fmt.Errorf("campaign stopped without a checkpoint; progress lost (use -campaign-checkpoint)"))
		}
		fmt.Printf("campaign %s: interrupted; progress checkpointed to %s (rerun to resume)\n",
			spec.Name, cfg.checkpoint)
		return
	}
	fatal(err)

	f, err := os.Create(cfg.out)
	fatal(err)
	err = campaign.WriteDocument(f, doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fatal(err)
	fmt.Printf("wrote campaign document to %s (%d cells)\n", cfg.out, len(doc.Cells))
	if doc.Fit != nil {
		fmt.Printf("scaling fit: %s\n", doc.Fit)
	}

	if cfg.baseline != "" {
		base, err := campaign.LoadDocument(cfg.baseline)
		fatal(err)
		warnings, err := campaign.CompareCampaign(base, doc, campaign.Tolerances{})
		for _, w := range warnings {
			fmt.Printf("warning: %s\n", w)
		}
		fatal(err)
		fmt.Printf("campaign distribution gate passed vs %s\n", cfg.baseline)
	}
}
