// Command hotpotato runs a single routing instance: pick a topology, a
// workload and an algorithm, and print what happened.
//
// Usage examples:
//
//	hotpotato -topo butterfly -size 6 -workload hotspot -packets 64 -algo frame -check
//	hotpotato -topo mesh -size 8 -workload meshhard -algo greedy
//	hotpotato -topo random -depth 40 -workload random -algo frame -compare
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hotpotato"
	"hotpotato/internal/bench"
	"hotpotato/internal/obs"
)

func main() {
	var (
		topoName = flag.String("topo", "butterfly", "topology: butterfly|mesh|hypercube|linear|random")
		size     = flag.Int("size", 6, "topology size (butterfly/hypercube dimension, mesh side)")
		depth    = flag.Int("depth", 32, "depth for -topo random/linear")
		wl       = flag.String("workload", "hotspot", "workload: hotspot|random|fullthroughput|transpose|bitreversal|meshhard|singlefile")
		packets  = flag.Int("packets", 32, "packet count for hotspot/singlefile")
		spots    = flag.Int("spots", 2, "destination count for hotspot")
		density  = flag.Float64("density", 0.5, "source density for random workload")
		algo     = flag.String("algo", "frame", "algorithm: frame|greedy-hp|greedy-ftg|rand-greedy-hp|sf-fifo|sf-randdelay|sf-farthest")
		seed     = flag.Int64("seed", 1, "random seed")
		faultStr = flag.String("faults", "", "fault campaign spec, e.g. 'flap:period=50,down=5,rate=0.2+node:node=7,from=100,to=200' (see docs/FAULTS.md; SF baselines ignore it)")
		check    = flag.Bool("check", false, "attach the invariant checker (frame only)")
		profile  = flag.Bool("profile", false, "print a per-phase progress profile (frame only)")
		compare  = flag.Bool("compare", false, "also run every baseline for comparison")
		paper    = flag.Bool("paper-params", false, "print the paper's proof-grade parameters for this instance")
		saveTo   = flag.String("save", "", "save the generated problem (network + paths) to this JSON file and continue")
		loadFrom = flag.String("load", "", "load the problem from this JSON file instead of generating one")

		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchEngine   = flag.String("bench-engine", "", "write the engine hot-path benchmark (BENCH_engine.json) to this file and exit")
		benchParallel = flag.String("bench-parallel", "", "write only the workers-sweep benchmark (sparse butterfly, no ensemble) to this file and exit — the multi-core CI fast path")
		benchObs      = flag.String("bench-obs", "", "write the observability overhead benchmark (BENCH_obs.json) to this file and exit")
		benchDynamic  = flag.String("bench-dynamic", "", "write the open-system (service) engine benchmark (BENCH_dynamic.json) to this file and exit; -bench-scale/-bench-strict-allocs/-bench-baseline apply")
		benchDynPrePR = flag.String("bench-dynamic-prepr", "", "same-host BENCH_dynamic.json recorded against the pre-SoA engine; stamps pre_pr_ns_per_step/speedup_vs_pre_pr into the fresh rows")
		benchScale    = flag.Int("bench-scale", 1, "engine benchmark scale: 1 = quick, 2 = full")
		benchStrict   = flag.Bool("bench-strict-allocs", false, "fail the engine benchmark if any steady-state row allocates")
		benchBase     = flag.String("bench-baseline", "", "compare the fresh engine benchmark against this committed BENCH_engine.json and fail on >10% ns/step regression for matched valid rows (stale invalid_parallel rows are warned about and skipped)")
		benchSpeedup  = flag.Float64("bench-require-speedup", 0, "fail unless the recorded workers=4 row shows at least this speedup_vs_1 (0 = no gate)")
		workers       = flag.Int("workers", 1, "parallel-step worker goroutines (1 = sequential; trace is identical either way)")
		shards        = flag.Int("shards", 0, "parallel-step node shards (0 = workers x 8)")

		campaignOut       = flag.String("campaign", "", "run an experiment campaign, write its result document (CAMPAIGN json) to this file and exit (see docs/CAMPAIGNS.md)")
		campaignGrid      = flag.String("campaign-grid", "smoke", "named campaign grid: smoke|full")
		campaignCkpt      = flag.String("campaign-checkpoint", "", "checkpoint file: completed cells are appended here and restored on rerun, so interrupted campaigns resume incrementally")
		campaignWorkers   = flag.Int("campaign-workers", 0, "concurrent campaign cells (0 = GOMAXPROCS)")
		campaignTrials    = flag.Int("campaign-trials", 0, "override the grid's trials-per-cell (0 = grid default)")
		campaignSeed      = flag.Int64("campaign-seed", 0, "override the grid's base seed (0 = grid default)")
		campaignStopAfter = flag.Int("campaign-stop-after", 0, "stop (exit 0) after this many newly completed cells — the deterministic interrupt half of the CI kill-and-resume check")
		campaignStream    = flag.String("campaign-stream", "", "stream one CSV row per completed cell to this file (live progress feed)")
		campaignBase      = flag.String("campaign-baseline", "", "compare the finished campaign against this committed CAMPAIGN_baseline.json and fail on quantile or drop-rate shifts beyond tolerance")

		obsOut    = flag.String("obs", "", "write the run's observability time series to this file (.json = steps+rounds+phases document, otherwise CSV; see docs/OBSERVABILITY.md)")
		obsEvery  = flag.Int("obs-every", 1, "per-step sampling interval for -obs (round/phase rows are always kept)")
		eventsOut = flag.String("obs-events", "", "write the packet lifecycle event ring to this CSV file")
		eventsCap = flag.Int("obs-events-cap", 65536, "lifecycle ring capacity for -obs-events (oldest events overwritten beyond it)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fatal(err)
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fatal(err)
		}()
	}

	if *benchEngine != "" || *benchParallel != "" {
		path, parallelOnly := *benchEngine, false
		if *benchParallel != "" {
			path, parallelOnly = *benchParallel, true
		}
		cur, err := bench.WriteEngineBench(path, *benchScale, *benchStrict, parallelOnly)
		fatal(err)
		what := "engine benchmark"
		if parallelOnly {
			what = "workers-sweep benchmark"
		}
		fmt.Printf("wrote %s to %s (gomaxprocs=%d", what, path, cur.GOMAXPROCS)
		if cur.CPUModel != "" {
			fmt.Printf(", cpu=%s", cur.CPUModel)
		}
		if len(cur.SkippedWorkers) > 0 {
			fmt.Printf(", skipped workers %v", cur.SkippedWorkers)
		}
		fmt.Println(")")
		for _, r := range cur.Rows {
			if r.Workers > 1 && r.SpeedupVs1 > 0 {
				fmt.Printf("  %s workers=%d: %.2fx vs workers=1 (efficiency %.2f)\n",
					r.Topology, r.Workers, r.SpeedupVs1, r.ParallelEfficiency)
			}
		}
		if *benchBase != "" {
			base, err := bench.ReadEngineBench(*benchBase)
			fatal(err)
			warnings, err := bench.CompareEngineBench(base, cur, 0.10)
			for _, w := range warnings {
				fmt.Printf("warning: %s\n", w)
			}
			fatal(err)
			fmt.Printf("benchmark regression gate passed vs %s\n", *benchBase)
		}
		if *benchSpeedup > 0 {
			fatal(bench.CheckParallelSpeedup(cur, 4, *benchSpeedup))
			fmt.Printf("parallel speedup gate passed (>=%.2fx at workers=4)\n", *benchSpeedup)
		}
		return
	}
	if *benchDynamic != "" {
		cur, err := bench.WriteDynamicBench(*benchDynamic, *benchScale, *benchStrict, *benchDynPrePR)
		fatal(err)
		fmt.Printf("wrote dynamic engine benchmark to %s (gomaxprocs=%d", *benchDynamic, cur.GOMAXPROCS)
		if cur.CPUModel != "" {
			fmt.Printf(", cpu=%s", cur.CPUModel)
		}
		fmt.Println(")")
		for _, r := range cur.Rows {
			fmt.Printf("  %s: %.0f ns/step (steady %.0f), %.4f allocs/step", r.Topology, r.NsPerStep, r.SteadyNsPerStep, r.AllocsPerStep)
			if r.SpeedupVsPrePR > 0 {
				fmt.Printf(", %.2fx vs pre-SoA", r.SpeedupVsPrePR)
			}
			fmt.Println()
		}
		if *benchBase != "" {
			base, err := bench.ReadDynamicBench(*benchBase)
			fatal(err)
			warnings, err := bench.CompareDynamicBench(base, cur, 0.10)
			for _, w := range warnings {
				fmt.Printf("warning: %s\n", w)
			}
			fatal(err)
			fmt.Printf("dynamic benchmark regression gate passed vs %s\n", *benchBase)
		}
		return
	}
	if *benchObs != "" {
		fatal(bench.WriteObsBench(*benchObs, *benchScale))
		fmt.Printf("wrote observability benchmark to %s\n", *benchObs)
		return
	}
	if *campaignOut != "" {
		runCampaign(campaignConfig{
			out:        *campaignOut,
			grid:       *campaignGrid,
			checkpoint: *campaignCkpt,
			workers:    *campaignWorkers,
			trials:     *campaignTrials,
			seed:       *campaignSeed,
			stopAfter:  *campaignStopAfter,
			stream:     *campaignStream,
			baseline:   *campaignBase,
		})
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	var prob *hotpotato.Problem
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		fatal(err)
		prob, err = hotpotato.LoadProblem(f)
		f.Close()
		fatal(err)
	} else {
		net, err := buildTopo(*topoName, *size, *depth, rng)
		fatal(err)
		prob, err = buildWorkload(*wl, net, rng, *packets, *spots, *density, *size)
		fatal(err)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		fatal(err)
		err = hotpotato.SaveProblem(f, prob)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("saved problem to %s\n", *saveTo)
	}

	fmt.Printf("problem: %s\n", prob)
	fmt.Printf("lower bound max(C,D) = %d\n", hotpotato.LowerBound(prob))

	if *paper {
		pp := hotpotato.PaperParams(prob.C, prob.L(), prob.N())
		fmt.Printf("paper proof-grade parameters: %s (schedule bound %d steps)\n",
			pp, pp.TotalSteps(prob.L()))
		an := hotpotato.NewAnalysis(prob.C, prob.L(), prob.N())
		fmt.Printf("Theorem 4.26 algebra: success >= %.8f (floor 1-1/LN = %.8f), polylog factor %.3g (ln⁹ = %.3g)\n",
			an.SuccessProbability(), an.TheoremFloor(), an.PolylogFactor(), an.Ln9())
	}

	campaign, err := hotpotato.ParseFaults(*faultStr)
	fatal(err)
	if campaign != nil {
		fmt.Printf("fault campaign: %s\n", campaign.Name())
	}

	ob := obsConfig{out: *obsOut, every: *obsEvery, eventsOut: *eventsOut, eventsCap: *eventsCap}
	runOne(prob, *algo, *seed, *check, *profile, *workers, *shards, campaign, ob)
	if *compare {
		for _, k := range []string{"frame", "greedy-hp", "greedy-ftg", "greedy-oldest", "rand-greedy-hp", "sf-fifo", "sf-randdelay", "sf-farthest"} {
			if k == *algo {
				continue
			}
			runOne(prob, k, *seed, false, false, *workers, *shards, campaign, obsConfig{})
		}
	}
}

// obsConfig carries the -obs* flags into runOne.
type obsConfig struct {
	out       string
	every     int
	eventsOut string
	eventsCap int
}

// attach adds the configured probes/sinks to opts, returning the
// exporters to write after the run (nil when off).
func (ob obsConfig) attach(opts *hotpotato.Options) (*hotpotato.TimeSeries, *hotpotato.Lifecycle) {
	var ts *hotpotato.TimeSeries
	var ring *hotpotato.Lifecycle
	if ob.out != "" {
		ts = &hotpotato.TimeSeries{Every: ob.every}
		opts.Probes = append(opts.Probes, ts)
	}
	if ob.eventsOut != "" {
		ring = hotpotato.NewLifecycle(ob.eventsCap)
		opts.Events = ring
	}
	return ts, ring
}

// write exports the collected series/events to the configured files.
func (ob obsConfig) write(ts *hotpotato.TimeSeries, ring *hotpotato.Lifecycle) {
	if ts != nil {
		f, err := os.Create(ob.out)
		fatal(err)
		if strings.HasSuffix(ob.out, ".json") {
			err = ts.WriteJSON(f)
		} else {
			rows := ts.Phases
			if len(rows) == 0 {
				rows = ts.Steps
			}
			err = obs.WriteCSV(f, rows)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("wrote observability series to %s (%d step, %d round, %d phase rows)\n",
			ob.out, len(ts.Steps), len(ts.Rounds), len(ts.Phases))
	}
	if ring != nil {
		f, err := os.Create(ob.eventsOut)
		fatal(err)
		err = ring.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("wrote %d lifecycle events to %s (%d overwritten)\n",
			ring.Len(), ob.eventsOut, ring.Dropped())
	}
}

func runOne(prob *hotpotato.Problem, algo string, seed int64, check, profile bool, workers, shards int, campaign hotpotato.FaultCampaign, ob obsConfig) {
	opts := hotpotato.Options{Seed: seed, Workers: workers, Shards: shards, Faults: campaign}
	ts, ring := ob.attach(&opts)
	defer ob.write(ts, ring)
	if algo == "frame" {
		params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
		fmt.Printf("frame parameters: %s (schedule bound %d steps)\n", params, params.TotalSteps(prob.L()))
		opts.CheckInvariants, opts.Profile = check, profile
		res := hotpotato.RouteFrame(prob, params, opts)
		fmt.Printf("%s\n", res)
		fmt.Printf("  deflections by kind [arrival-rev safe-backwd unsafe-backwd forward]: %v\n", res.Engine.Deflections)
		fmt.Printf("  excitations=%d wait-entries=%d wait-interrupts=%d late-injections=%d\n",
			res.Router.Excitations, res.Router.WaitEntries, res.Router.WaitInterrupts, res.Router.LatePhaseInjections)
		if campaign != nil {
			fmt.Printf("  faults: blocked=%d stalls=%d\n", res.Engine.FaultBlocked, res.Engine.FaultStalls)
		}
		if check {
			fmt.Printf("  invariants: %s clean=%v\n", res.Invariants.String(), res.Invariants.Clean())
		}
		if profile {
			fmt.Println("  phase profile (phase: injected/absorbed/active/waiting):")
			for _, ph := range res.Phases {
				fmt.Printf("    %4d: +%-4d -%-4d =%-4d w%-4d\n", ph.Phase, ph.Injected, ph.Absorbed, ph.Active, ph.Waiting)
			}
		}
		return
	}
	res, err := hotpotato.RouteBaseline(prob, hotpotato.BaselineKind(algo), opts)
	fatal(err)
	fmt.Printf("%s", res)
	if res.HP != nil {
		fmt.Printf("  deflections=%d (unsafe %d)", res.HP.TotalDeflections(), res.HP.UnsafeDeflections())
		if campaign != nil {
			fmt.Printf("  fault-blocked=%d stalls=%d", res.HP.FaultBlocked, res.HP.FaultStalls)
		}
	}
	if res.SF != nil {
		fmt.Printf("  max-queue=%d queue-delay=%d", res.SF.MaxQueueLen, res.SF.QueueDelay)
	}
	fmt.Println()
}

func buildTopo(name string, size, depth int, rng *rand.Rand) (*hotpotato.Network, error) {
	switch name {
	case "butterfly":
		return hotpotato.Butterfly(size)
	case "mesh":
		return hotpotato.Mesh(size, size, hotpotato.CornerNW)
	case "hypercube":
		return hotpotato.Hypercube(size)
	case "linear":
		return hotpotato.Linear(depth + 1)
	case "random":
		return hotpotato.RandomLeveled(rng, depth, 3, 6, 0.4)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func buildWorkload(name string, net *hotpotato.Network, rng *rand.Rand, packets, spots int, density float64, size int) (*hotpotato.Problem, error) {
	switch name {
	case "hotspot":
		return hotpotato.HotSpotWorkload(net, rng, packets, spots)
	case "random":
		return hotpotato.RandomWorkload(net, rng, density)
	case "fullthroughput":
		return hotpotato.FullThroughputWorkload(net, rng)
	case "transpose":
		return hotpotato.TransposeWorkload(net, size)
	case "bitreversal":
		return hotpotato.BitReversalWorkload(net, size)
	case "meshhard":
		return hotpotato.MeshHardWorkload(size)
	case "singlefile":
		return singleFile(net, packets)
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func singleFile(net *hotpotato.Network, k int) (*hotpotato.Problem, error) {
	// The workload package's SingleFile needs a linear array; reuse it
	// through the facade by constructing explicit requests.
	if net.MaxLevelWidth() != 1 {
		return nil, fmt.Errorf("singlefile needs -topo linear")
	}
	if k > net.Depth() {
		k = net.Depth()
	}
	var reqs []hotpotato.Request
	dst := net.Level(net.Depth())[0]
	for i := 0; i < k; i++ {
		reqs = append(reqs, hotpotato.Request{Src: net.Level(i)[0], Dst: dst})
	}
	return hotpotato.CustomWorkload("singlefile", net, rand.New(rand.NewSource(0)), reqs)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotpotato:", err)
		os.Exit(1)
	}
}
