// Command figures writes SVG reproductions of the paper's figures:
// Figure 1 (leveled networks: a generic leveled DAG, the butterfly and
// the mesh) and Figure 2 (the frontier-frame pipeline).
//
// Usage:
//
//	figures -out ./figs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/svg"
	"hotpotato/internal/topo"
	"hotpotato/internal/trace"
	"hotpotato/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	write := func(name, doc string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	// Figure 1: a generic leveled network, the butterfly, the mesh.
	rng := rand.New(rand.NewSource(1))
	generic, err := topo.Random(rng, 6, 2, 4, 0.5)
	fatal(err)
	write("figure1_leveled.svg", svg.RenderNetwork(generic))

	bf, err := topo.Butterfly(3)
	fatal(err)
	write("figure1_butterfly.svg", svg.RenderNetwork(bf))

	mesh, err := topo.Mesh(4, 4, topo.CornerNW)
	fatal(err)
	write("figure1_mesh.svg", svg.RenderNetwork(mesh))

	// Figure 2: the frame pipeline mid-flight (three frames on screen,
	// like the paper's drawing with L=11 and m=3).
	sched := core.Schedule{P: core.Params{NumSets: 5, M: 3, W: 9, Q: 0.1}}
	write("figure2_frames.svg", svg.RenderFramePipeline(sched, 11, 10, 0))
	write("figure2_frames_round2.svg", svg.RenderFramePipeline(sched, 10, 10, 2))

	// Bonus: a time-space diagram of a real frame-routing run — the
	// wait-state oscillation shows as a one-level sawtooth while frames
	// crawl forward.
	rng2 := rand.New(rand.NewSource(2))
	net, err := topo.Random(rng2, 18, 3, 5, 0.4)
	fatal(err)
	prob, err := workload.Random(net, rng2, 0.4)
	fatal(err)
	params := core.ParamsPractical(prob.C, prob.L(), prob.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	router := core.NewFrame(params)
	eng := sim.NewEngine(prob, router, 2)
	ids := []sim.PacketID{0, 1, 2, 3}
	if prob.N() < 4 {
		ids = ids[:prob.N()]
	}
	every := params.TotalSteps(prob.L()) / 1200
	if every < 1 {
		every = 1
	}
	tracer := trace.NewPacketTracer(every, ids)
	tracer.Attach(eng)
	if _, done := eng.Run(4 * params.TotalSteps(prob.L())); !done {
		fatal(fmt.Errorf("time-space run did not complete"))
	}
	series, stepOf := tracer.Series()
	write("timespace.svg", svg.RenderTimeSpace(series, stepOf, prob.L()))

	// Edge-utilization heat map of a congested greedy run.
	heatNet, err := topo.Butterfly(4)
	fatal(err)
	rng3 := rand.New(rand.NewSource(3))
	heatProb, err := workload.HotSpot(heatNet, rng3, 24, 1)
	fatal(err)
	heatEng := sim.NewEngine(heatProb, baselines.NewGreedy(), 3)
	loads := trace.NewEdgeLoadRecorder()
	loads.Attach(heatEng)
	if _, done := heatEng.Run(1 << 20); !done {
		fatal(fmt.Errorf("heat-map run did not complete"))
	}
	write("heatmap.svg", svg.RenderNetworkHeat(heatNet, loads.Total()))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
