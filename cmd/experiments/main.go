// Command experiments regenerates the full experiment suite (figures
// F1-F2 and experiments E1-E10 from DESIGN.md) and prints the report
// that EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-scale N] [-seeds N] [-only ID[,ID...]] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hotpotato/internal/bench"
)

func main() {
	scale := flag.Int("scale", 2, "sweep size: 1 = quick, 2 = full")
	seeds := flag.Int("seeds", 3, "repetitions per cell")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (output order preserved)")
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := bench.Config{Seeds: *seeds, Scale: *scale}
	var selected []bench.Experiment
	if *only == "" {
		selected = bench.Registry()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("# Experiment suite — Õ(C+D) hot-potato routing on leveled networks\n")
	fmt.Printf("# scale=%d seeds=%d, %d experiment(s)\n\n", cfg.Scale, cfg.Seeds, len(selected))
	start := time.Now()
	failures := 0

	type outcome struct {
		out     string
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(selected))
	if *parallel {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				out, err := selected[i].Run(cfg)
				results[i] = outcome{out, err, time.Since(t0)}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range selected {
			t0 := time.Now()
			out, err := selected[i].Run(cfg)
			results[i] = outcome{out, err, time.Since(t0)}
		}
	}
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			failures++
			fmt.Printf("== %s: %s ==\nERROR: %v\n\n", e.ID, e.Title, r.err)
			continue
		}
		fmt.Print(r.out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, r.elapsed.Round(time.Millisecond))
	}
	fmt.Printf("# suite finished in %v, %d failure(s)\n", time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
