// Command selfcheck runs a condensed end-to-end validation of the
// whole stack and prints one PASS/FAIL line per check — a smoke test
// for CI or a fresh checkout, complementary to `go test ./...`.
//
// Exit status is nonzero if any check fails.
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hotpotato"
)

type check struct {
	name string
	f    func() error
}

func main() {
	start := time.Now()
	checks := []check{
		{"topologies validate", topologies},
		{"paths and workloads", workloads},
		{"greedy hot-potato delivers", greedy},
		{"frame router delivers with clean invariants", frame},
		{"store-and-forward (incl. bounded buffers) delivers", storeForward},
		{"Theorem 4.26 algebra holds", algebra},
		{"problem persistence round-trips", persistence},
	}
	failures := 0
	for _, c := range checks {
		if err := c.f(); err != nil {
			failures++
			fmt.Printf("FAIL  %-50s %v\n", c.name, err)
		} else {
			fmt.Printf("ok    %s\n", c.name)
		}
	}
	fmt.Printf("selfcheck: %d/%d passed in %v\n", len(checks)-failures, len(checks), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func topologies() error {
	gens := map[string]func() (*hotpotato.Network, error){
		"butterfly": func() (*hotpotato.Network, error) { return hotpotato.Butterfly(5) },
		"mesh":      func() (*hotpotato.Network, error) { return hotpotato.Mesh(6, 6, hotpotato.CornerSW) },
		"hypercube": func() (*hotpotato.Network, error) { return hotpotato.Hypercube(5) },
		"omega":     func() (*hotpotato.Network, error) { return hotpotato.Omega(5) },
		"benes":     func() (*hotpotato.Network, error) { return hotpotato.Benes(4) },
		"random": func() (*hotpotato.Network, error) {
			return hotpotato.RandomLeveled(rand.New(rand.NewSource(1)), 20, 3, 6, 0.4)
		},
	}
	for name, f := range gens {
		g, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func workloads() error {
	net, err := hotpotato.Butterfly(5)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	p, err := hotpotato.HotSpotWorkload(net, rng, 24, 2)
	if err != nil {
		return err
	}
	if p.C < 1 || p.D < 1 || p.N() != 24 {
		return fmt.Errorf("degenerate problem %s", p)
	}
	return nil
}

func greedy() error {
	net, err := hotpotato.Butterfly(5)
	if err != nil {
		return err
	}
	p, err := hotpotato.HotSpotWorkload(net, rand.New(rand.NewSource(3)), 24, 2)
	if err != nil {
		return err
	}
	res, err := hotpotato.RouteBaseline(p, hotpotato.GreedyHP, hotpotato.Options{Seed: 3})
	if err != nil {
		return err
	}
	if !res.Done {
		return fmt.Errorf("did not complete")
	}
	if res.HP.UnsafeDeflections() != 0 {
		return fmt.Errorf("%d unsafe deflections", res.HP.UnsafeDeflections())
	}
	return nil
}

func frame() error {
	rng := rand.New(rand.NewSource(4))
	net, err := hotpotato.RandomLeveled(rng, 24, 3, 5, 0.4)
	if err != nil {
		return err
	}
	p, err := hotpotato.RandomWorkload(net, rng, 0.5)
	if err != nil {
		return err
	}
	params := hotpotato.PracticalParams(p.C, p.L(), p.N())
	res := hotpotato.RouteFrame(p, params, hotpotato.Options{Seed: 4, CheckInvariants: true})
	if !res.Done {
		return fmt.Errorf("did not complete in %d steps", res.Steps)
	}
	if !res.Invariants.Clean() {
		return fmt.Errorf("invariants: %s", res.Invariants.String())
	}
	return nil
}

func storeForward() error {
	net, err := hotpotato.Butterfly(5)
	if err != nil {
		return err
	}
	p, err := hotpotato.HotSpotWorkload(net, rand.New(rand.NewSource(5)), 24, 1)
	if err != nil {
		return err
	}
	for _, cap := range []int{0, 1} {
		res, err := hotpotato.RouteBaseline(p, hotpotato.SFFifo, hotpotato.Options{Seed: 5, BufferCap: cap})
		if err != nil {
			return err
		}
		if !res.Done {
			return fmt.Errorf("cap=%d did not complete", cap)
		}
	}
	return nil
}

func algebra() error {
	a := hotpotato.NewAnalysis(32, 64, 512)
	if a.SuccessProbability() < a.TheoremFloor() {
		return fmt.Errorf("success %v below floor %v", a.SuccessProbability(), a.TheoremFloor())
	}
	return nil
}

func persistence() error {
	net, err := hotpotato.Butterfly(4)
	if err != nil {
		return err
	}
	p, err := hotpotato.HotSpotWorkload(net, rand.New(rand.NewSource(6)), 10, 2)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := hotpotato.SaveProblem(&buf, p); err != nil {
		return err
	}
	p2, err := hotpotato.LoadProblem(&buf)
	if err != nil {
		return err
	}
	if p2.C != p.C || p2.N() != p.N() {
		return fmt.Errorf("round trip mismatch")
	}
	return nil
}
