// Command sweep runs a parameter sweep over one axis (congestion,
// depth, or a frame parameter) and prints a CSV series suitable for
// plotting — the raw data behind experiments E1, E2 and E8.
//
// Usage examples:
//
//	sweep -axis congestion -values 8,16,32,64,128
//	sweep -axis depth -values 16,32,64,128
//	sweep -axis slack -values 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"hotpotato"
	"hotpotato/internal/stats"
)

func main() {
	var (
		axis   = flag.String("axis", "congestion", "sweep axis: congestion|depth|slack|roundfactor|q")
		values = flag.String("values", "8,16,32", "comma-separated axis values")
		seeds  = flag.Int("seeds", 3, "repetitions per value")
		k      = flag.Int("k", 6, "butterfly dimension for congestion sweeps")
	)
	flag.Parse()

	var vals []float64
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q\n", s)
			os.Exit(1)
		}
		vals = append(vals, v)
	}

	fmt.Println("axis,value,C,L,N,steps_mean,steps_std,ratio_mean,bound")
	var xs, ys []float64
	for _, v := range vals {
		prob, params, err := buildCell(*axis, v, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		var steps []float64
		for s := 0; s < *seeds; s++ {
			res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: int64(s)})
			if !res.Done {
				fmt.Fprintf(os.Stderr, "sweep: run did not complete at %s=%g seed %d\n", *axis, v, s)
				os.Exit(1)
			}
			steps = append(steps, float64(res.Steps))
		}
		sum := stats.Summarize(steps)
		cl := float64(prob.C + prob.L())
		fmt.Printf("%s,%g,%d,%d,%d,%.1f,%.1f,%.2f,%d\n",
			*axis, v, prob.C, prob.L(), prob.N(), sum.Mean, sum.Std, sum.Mean/cl, params.TotalSteps(prob.L()))
		xs = append(xs, axisX(*axis, v, prob))
		ys = append(ys, sum.Mean)
	}
	if len(xs) >= 2 {
		fit := stats.FitLinear(xs, ys)
		fmt.Printf("# linear fit vs %s: %s\n", fitAxisName(*axis), fit)
	}
}

// buildCell constructs the problem and parameters for one sweep cell.
func buildCell(axis string, v float64, k int) (*hotpotato.Problem, hotpotato.Params, error) {
	rng := rand.New(rand.NewSource(int64(v*1000) + 7))
	switch axis {
	case "congestion":
		net, err := hotpotato.Butterfly(k)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		prob, err := hotpotato.HotSpotWorkload(net, rng, int(v), 2)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		return prob, quick(prob), nil
	case "depth":
		net, err := hotpotato.Linear(int(v) + 1)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		var reqs []hotpotato.Request
		dst := net.Level(net.Depth())[0]
		for i := 0; i < 6 && i < net.Depth(); i++ {
			reqs = append(reqs, hotpotato.Request{Src: net.Level(i)[0], Dst: dst})
		}
		prob, err := hotpotato.CustomWorkload("singlefile", net, rng, reqs)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		return prob, quick(prob), nil
	case "slack", "roundfactor", "q":
		net, err := hotpotato.RandomLeveled(rng, 32, 3, 5, 0.4)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		prob, err := hotpotato.RandomWorkload(net, rng, 0.5)
		if err != nil {
			return nil, hotpotato.Params{}, err
		}
		cfg := hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}
		switch axis {
		case "slack":
			cfg.FrameSlack = int(v)
		case "roundfactor":
			cfg.RoundFactor = int(v)
		case "q":
			cfg.Q = v
		}
		return prob, hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(), cfg), nil
	}
	return nil, hotpotato.Params{}, fmt.Errorf("unknown axis %q", axis)
}

func quick(p *hotpotato.Problem) hotpotato.Params {
	return hotpotato.PracticalParamsWith(p.C, p.L(), p.N(),
		hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
}

func axisX(axis string, v float64, p *hotpotato.Problem) float64 {
	switch axis {
	case "congestion":
		return float64(p.C + p.L())
	case "depth":
		return float64(p.L())
	}
	return v
}

func fitAxisName(axis string) string {
	switch axis {
	case "congestion":
		return "C+L"
	case "depth":
		return "L"
	}
	return axis
}
