// Package hotpotato is a library for hot-potato (bufferless, deflection)
// packet routing on leveled networks. It reproduces, as runnable code,
// the algorithm and analysis of:
//
//	Costas Busch. Õ(Congestion + Dilation) Hot-Potato Routing on
//	Leveled Networks. SPAA 2002.
//
// A leveled network partitions its nodes into levels 0..L with edges
// only between consecutive levels. Given N packets with preselected
// forward paths of congestion C (max packets per edge) and dilation D
// (max path length), the paper's randomized algorithm delivers all
// packets in O((C+L)·ln⁹(LN)) steps with probability at least 1-1/LN —
// within polylog factors of the Ω(C+D) lower bound, even though no node
// buffers packets.
//
// The package exposes:
//
//   - topology generators for the leveled networks of the paper's
//     Figure 1 (butterfly, mesh in four orientations, hypercube, trees,
//     arrays, random leveled DAGs);
//   - workload generators with controlled C and D;
//   - the frame-routing algorithm (the paper's contribution) with both
//     proof-grade and simulation-grade parameters;
//   - hot-potato and store-and-forward baselines;
//   - a synchronous simulator with per-step observability and checkers
//     for the paper's invariants Ia-If.
//
// Quick start:
//
//	net, _ := hotpotato.Butterfly(6)
//	prob, _ := hotpotato.HotSpotWorkload(net, rand.New(rand.NewSource(1)), 64, 2)
//	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
//	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 1, CheckInvariants: true})
//	fmt.Println(res) // steps, deflections, invariant report
package hotpotato

import (
	"hotpotato/internal/core"
	"hotpotato/internal/graph"
	"hotpotato/internal/obs"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// Core model types. These are aliases to the implementation packages,
// so values flow freely between the façade and the lower-level APIs.
type (
	// Network is an immutable leveled network.
	Network = graph.Leveled
	// NetworkBuilder constructs custom leveled networks node by node.
	NetworkBuilder = graph.Builder
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// EdgeID identifies an edge.
	EdgeID = graph.EdgeID
	// Path is a sequence of edges (a packet's preselected path).
	Path = graph.Path
	// PathSet is a set of preselected paths with congestion/dilation
	// analysis.
	PathSet = paths.PathSet
	// Problem is a routing problem: network + one path per packet.
	Problem = workload.Problem
	// Params are the frame algorithm's tunables (sets, M, W, Q).
	Params = core.Params
	// PracticalConfig tunes PracticalParamsWith.
	PracticalConfig = core.PracticalConfig
	// Result is a completed frame-routing run.
	Result = core.Result
	// InvariantReport counts violations of the paper's invariants.
	InvariantReport = core.InvariantReport
	// Packet is the dynamic per-packet record during simulation.
	Packet = sim.Packet
	// Metrics are engine-level counters of a hot-potato run.
	Metrics = sim.Metrics
	// SFMetrics are counters of a store-and-forward run.
	SFMetrics = sim.SFMetrics
	// StepStats is the annotated observability record handed to probes
	// (see docs/OBSERVABILITY.md).
	StepStats = obs.StepStats
	// Probe receives the annotated per-step/per-round/per-phase series
	// of a run (attach via Options.Probes).
	Probe = obs.Probe
	// TimeSeries is a Probe recording the series in memory, with
	// CSV/JSON export.
	TimeSeries = obs.TimeSeries
	// Lifecycle is a fixed-capacity packet lifecycle event ring
	// (attach via Options.Events).
	Lifecycle = obs.Lifecycle
	// LifecycleEvent is one recorded lifecycle event.
	LifecycleEvent = obs.Event
	// EventSink receives packet lifecycle events.
	EventSink = sim.EventSink
)

// NewLifecycle builds a lifecycle ring holding up to capacity events.
func NewLifecycle(capacity int) *Lifecycle { return obs.NewLifecycle(capacity) }

// NewNetworkBuilder starts building a custom leveled network.
func NewNetworkBuilder(name string) *NetworkBuilder {
	return graph.NewBuilder(name)
}

// PaperParams returns the proof-grade constants of the paper's
// Section 2.1 for congestion C, depth L and N packets. They are far too
// large to simulate (w alone reaches millions of steps); use them to
// report the theoretical schedule, and PracticalParams to run.
func PaperParams(C, L, N int) Params { return core.ParamsFromPaper(C, L, N) }

// PracticalParams returns simulation-grade parameters preserving the
// algorithm's structure (per-set congestion Θ(ln LN), frame a small
// multiple of it, rounds a small multiple of the frame).
func PracticalParams(C, L, N int) Params { return core.DefaultPractical(C, L, N) }

// PracticalParamsWith is PracticalParams with explicit knobs.
func PracticalParamsWith(C, L, N int, cfg PracticalConfig) Params {
	return core.ParamsPractical(C, L, N, cfg)
}

// Analysis reproduces the paper's probability algebra (p0, p1, the
// per-phase recurrence p(k) and Theorem 4.26's final bound) for an
// instance.
type Analysis = core.Analysis

// NewAnalysis builds the Theorem 4.26 analysis for congestion C, depth
// L and N packets under the reconstructed proof-grade constants.
func NewAnalysis(C, L, N int) Analysis { return core.NewAnalysis(C, L, N) }
