package hotpotato

import (
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/topo"
)

// MeshCorner selects which mesh corner is level 0 (the paper notes the
// mesh is a leveled network in four ways).
type MeshCorner = topo.MeshCorner

// Mesh corner orientations.
const (
	CornerNW = topo.CornerNW
	CornerNE = topo.CornerNE
	CornerSW = topo.CornerSW
	CornerSE = topo.CornerSE
)

// Butterfly returns the k-dimensional butterfly network (depth k,
// (k+1)·2^k nodes) — the canonical leveled network of Figure 1.
func Butterfly(k int) (*Network, error) { return topo.Butterfly(k) }

// Mesh returns the rows x cols mesh leveled by anti-diagonals from the
// chosen corner (depth rows+cols-2).
func Mesh(rows, cols int, corner MeshCorner) (*Network, error) {
	return topo.Mesh(rows, cols, corner)
}

// Hypercube returns the d-dimensional hypercube leveled by Hamming
// weight (depth d).
func Hypercube(d int) (*Network, error) { return topo.Hypercube(d) }

// Array returns the multidimensional array with the given side lengths,
// leveled by coordinate sum.
func Array(sides ...int) (*Network, error) { return topo.Array(sides...) }

// BinaryTree returns the complete binary tree of the given height,
// leveled by depth.
func BinaryTree(height int) (*Network, error) { return topo.BinaryTree(height) }

// FatTree returns a fat-tree of the given height whose link
// multiplicity doubles toward the root (capped at maxMult).
func FatTree(height, maxMult int) (*Network, error) { return topo.FatTree(height, maxMult) }

// Linear returns the n-node path graph (depth n-1).
func Linear(n int) (*Network, error) { return topo.Linear(n) }

// Ladder returns the 2-wide fully-connected leveled network of the
// given depth.
func Ladder(depth int) (*Network, error) { return topo.Ladder(depth) }

// CompleteLeveled returns a leveled network with `width` nodes per
// level and complete bipartite connections between consecutive levels.
func CompleteLeveled(depth, width int) (*Network, error) { return topo.Complete(depth, width) }

// RandomLeveled returns a random leveled network of the given depth
// with level widths in [minWidth, maxWidth] and edge probability p;
// connectivity is repaired so no node is stranded.
func RandomLeveled(rng *rand.Rand, depth, minWidth, maxWidth int, p float64) (*Network, error) {
	return topo.Random(rng, depth, minWidth, maxWidth, p)
}

// Omega returns the k-stage Omega (unrolled shuffle-exchange) network,
// the shuffle-exchange family the paper lists among leveled networks.
func Omega(k int) (*Network, error) { return topo.Omega(k) }

// Benes returns the k-dimensional Beneš network (a butterfly followed
// by its mirror, depth 2k) — rearrangeable, so every permutation
// admits congestion-1 paths.
func Benes(k int) (*Network, error) { return topo.Benes(k) }

// ButterflyRadix returns the radix-r, k-digit butterfly (r^k rows,
// depth k); the binary butterfly is the r=2 case.
func ButterflyRadix(k, r int) (*Network, error) { return topo.ButterflyRadix(k, r) }

// Levelize converts an arbitrary DAG (edge list over nodes 0..n-1)
// into a leveled network by longest-path layering, subdividing
// multi-level edges with relay nodes — the route to "arbitrary network
// topologies" the paper's Discussion suggests. The map gives the
// leveled node of each original DAG node.
func Levelize(name string, n int, dagEdges [][2]int) (*Network, map[int]NodeID, error) {
	return topo.Levelize(name, n, dagEdges)
}

// RandomDAG draws a random DAG edge list over n nodes (each low-to-high
// index pair present with probability p), suitable for Levelize.
func RandomDAG(rng *rand.Rand, n int, p float64) [][2]int {
	return topo.RandomDAG(rng, n, p)
}

// ButterflyNode returns the node at (row w, level l) of a butterfly
// built by Butterfly(k).
func ButterflyNode(g *Network, k, w, l int) NodeID { return topo.ButterflyNode(g, k, w, l) }

// MeshNode returns the node at cell (i, j) of a mesh built with the
// given column count.
func MeshNode(cols, i, j int) NodeID { return topo.MeshNode(cols, i, j) }

// Forward and Backward are the two traversal directions of an edge.
const (
	Forward  = graph.Forward
	Backward = graph.Backward
)
