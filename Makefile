# Standard entry points; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench experiments figures selfcheck cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full experiment report (EXPERIMENTS.md's source data).
experiments:
	$(GO) run ./cmd/experiments -scale 2 -seeds 3 -parallel | tee experiments_report.txt

# Render the SVG reproductions of the paper's figures into figs/.
figures:
	$(GO) run ./cmd/figures -out figs

selfcheck:
	$(GO) run ./cmd/selfcheck

cover:
	$(GO) test -cover ./...

# Brief fuzzing session over the input parsers and the levelizer.
fuzz:
	$(GO) test -fuzz FuzzReadProblem -fuzztime 30s ./internal/persist/
	$(GO) test -fuzz FuzzReadNetwork -fuzztime 30s ./internal/persist/
	$(GO) test -fuzz FuzzLevelize -fuzztime 30s ./internal/topo/

clean:
	rm -rf figs
	$(GO) clean -testcache
