#!/usr/bin/env bash
# End-to-end smoke for routing-as-a-service (docs/SERVICE.md), run by the
# ci service-smoke job and usable locally:
#
#   go build -o openload ./cmd/openload && go build -o loadgen ./cmd/loadgen
#   bash scripts/service_smoke.sh
#
# It proves, through the real binaries and real files (not the Go test
# harness), the three serve-mode contracts:
#
#   1. Per-tenant quota accounting: a tenant offered far over its budget
#      shows quota drops in /debug/vars while a within-budget tenant
#      shows none.
#   2. Kill-and-restore: SIGTERM freezes a snapshot; a new process
#      restored from it and driven through the same remaining script
#      ends at the same trace digest as one uninterrupted run.
#   3. loadgen's report agrees: the over-quota tenant drops, the
#      in-budget tenant admits 100%.
#
# Everything is manual-stepped (-autostep=false) so the trajectory is a
# pure function of the batch/advance sequence — no wall-clock in the
# digest. Quotas never refill mid-script (gold stays inside its burst,
# free is offered only once), so the admitted packet set is identical
# across the interrupted and reference runs regardless of timing.
set -euo pipefail

ADDR=127.0.0.1:18090
BASE="http://$ADDR/v1/topologies/butterfly"
VARS="http://$ADDR/debug/vars"
SNAP=service_smoke.snapshot.json
SERVE=(./openload -serve -http "$ADDR" -autostep=false -lambda 0
  -window 50 -seed 42 -retry 8
  -tenants 'gold:rate=1000,burst=1000;free:rate=1,burst=4')

wait_ready() {
  for _ in $(seq 100); do
    curl -fsS "$BASE" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "service never became ready" >&2
  exit 1
}
batch()   { curl -fsS -X POST "$BASE/batches" -d "{\"tenant\":\"$1\",\"random\":$2}" >/dev/null; }
advance() { curl -fsS -X POST "$BASE/advance" -d "{\"steps\":$1}" >/dev/null; }
stat_of() { curl -fsS "$BASE" | jq -r "$1"; }
# The digest is a uint64; jq parses numbers as float64 and would round
# it, so pull it out of the raw JSON instead.
digest_of() { curl -fsS "$BASE" | grep -o '"digest": *[0-9]*' | grep -o '[0-9]*$'; }

echo "--- phase 1: traffic + quota accounting, then SIGTERM snapshot"
"${SERVE[@]}" -snapshot "$SNAP" &
PID=$!
wait_ready
batch gold 20
batch free 20
advance 30

# Quota ledger via expvar: free (burst 4, offered 20) must show drops,
# gold (burst 1000) must show a spotless quota ledger.
FREE_QDROP=$(curl -fsS "$VARS" | jq -r '.service.butterfly.tenants.free.quota_dropped')
GOLD_QDROP=$(curl -fsS "$VARS" | jq -r '.service.butterfly.tenants.gold.quota_dropped')
GOLD_RATE=$(curl -fsS "$VARS" | jq -r '.service.butterfly.tenants.gold.drop_rate')
echo "expvar: free quota_dropped=$FREE_QDROP gold quota_dropped=$GOLD_QDROP gold drop_rate=$GOLD_RATE"
[ "$FREE_QDROP" -eq 16 ] || { echo "FAIL: free quota_dropped=$FREE_QDROP, want 16" >&2; exit 1; }
[ "$GOLD_QDROP" -eq 0 ] || { echo "FAIL: gold quota_dropped=$GOLD_QDROP, want 0" >&2; exit 1; }
[ "$GOLD_RATE" = "0" ] || { echo "FAIL: gold drop_rate=$GOLD_RATE, want 0" >&2; exit 1; }

kill -TERM "$PID"
wait "$PID"
[ -s "$SNAP" ] || { echo "FAIL: no snapshot at $SNAP" >&2; exit 1; }

echo "--- phase 2: restore and finish the script"
./openload -restore "$SNAP" -http "$ADDR" -autostep=false &
PID=$!
wait_ready
batch gold 10
advance 300
RESUMED_DIGEST=$(digest_of)
RESUMED_LIVE=$(stat_of .live)
kill -TERM "$PID"; wait "$PID"
[ "$RESUMED_LIVE" -eq 0 ] || { echo "FAIL: resumed run did not drain ($RESUMED_LIVE live)" >&2; exit 1; }

echo "--- phase 3: uninterrupted reference run of the whole script"
"${SERVE[@]}" &
PID=$!
wait_ready
batch gold 20
batch free 20
advance 30
batch gold 10
advance 300
REF_DIGEST=$(digest_of)
kill -TERM "$PID"; wait "$PID"

echo "resumed digest=$RESUMED_DIGEST reference digest=$REF_DIGEST"
[ "$RESUMED_DIGEST" = "$REF_DIGEST" ] || {
  echo "FAIL: resumed trajectory diverged from the uninterrupted run" >&2
  exit 1
}

echo "--- phase 4: loadgen report against a fresh instance"
"${SERVE[@]}" &
PID=$!
wait_ready
./loadgen -addr "http://$ADDR" -topo butterfly -batches 40 -alpha 1.4 -xm 3 \
  -seed 7 -mix 'gold=0.7,free=0.3' -advance 5 -drain 30s -json > loadgen_report.json
kill -TERM "$PID"; wait "$PID"
jq . loadgen_report.json >/dev/null
LG_FREE_QDROP=$(jq -r '.tenants[] | select(.name=="free") | .quota_dropped' loadgen_report.json)
LG_GOLD_ADMIT=$(jq -r '.tenants[] | select(.name=="gold") | .admission_rate' loadgen_report.json)
echo "loadgen: free quota_dropped=$LG_FREE_QDROP gold admission_rate=$LG_GOLD_ADMIT"
[ "$LG_FREE_QDROP" -gt 0 ] || { echo "FAIL: loadgen saw no quota drops for free" >&2; exit 1; }
[ "$LG_GOLD_ADMIT" = "1" ] || { echo "FAIL: gold admission_rate=$LG_GOLD_ADMIT, want 1" >&2; exit 1; }

echo "service smoke OK"
