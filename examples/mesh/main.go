// The paper's Section 5 application: routing on the n x n mesh with
// path sets of congestion and dilation Θ(n) (the optimal-path regime of
// Leighton et al. [16]). The frame algorithm routes them in Θ(n) times
// a polylog — this example sweeps n and shows the linear shape.
//
//	go run ./examples/mesh
package main

import (
	"fmt"
	"log"

	"hotpotato"
	"hotpotato/internal/stats"
)

func main() {
	fmt.Println("n x n mesh, every packet through the shared middle column (C = n, D = 2(n-1)):")
	fmt.Println()
	fmt.Printf("%4s %4s %4s %4s %10s %12s %10s\n", "n", "C", "D", "L", "frame", "frame/(C+L)", "greedy")

	var xs, ys []float64
	for _, n := range []int{4, 6, 8, 10, 12} {
		prob, err := hotpotato.MeshHardWorkload(n)
		if err != nil {
			log.Fatal(err)
		}
		params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
			hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
		frame := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 3})
		if !frame.Done {
			log.Fatalf("frame did not complete at n=%d", n)
		}
		greedy, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %4d %4d %4d %10d %12.1f %10d\n",
			n, prob.C, prob.D, prob.L(), frame.Steps, frame.Ratio(), greedy.Steps)
		xs = append(xs, float64(n))
		ys = append(ys, float64(frame.Steps))
	}

	fit := stats.FitLinear(xs, ys)
	fmt.Println()
	fmt.Println("frame steps vs n:", fit)
	fmt.Println("a high R² means the time is linear in n — optimal up to the polylog slope,")
	fmt.Println("exactly the Section-5 claim for the mesh application.")
}
