// Permutation routing on the butterfly: the transpose and bit-reversal
// permutations with classic bit-fixing paths, routed buffered and
// bufferless. Bit reversal is the canonical adversarial permutation for
// oblivious routing (congestion Θ(sqrt(rows)) on bit-fixing paths), so
// it is where losing buffers could plausibly hurt most — the paper says
// the damage is at most polylogarithmic.
//
//	go run ./examples/butterfly
package main

import (
	"fmt"
	"log"

	"hotpotato"
)

func main() {
	const k = 6 // 2^6 = 64 rows, depth 6
	net, err := hotpotato.Butterfly(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.ComputeStats())
	fmt.Println()

	workloads := []struct {
		name string
		f    func() (*hotpotato.Problem, error)
	}{
		{"transpose", func() (*hotpotato.Problem, error) { return hotpotato.TransposeWorkload(net, k) }},
		{"bit-reversal", func() (*hotpotato.Problem, error) { return hotpotato.BitReversalWorkload(net, k) }},
	}

	for _, w := range workloads {
		prob, err := w.f()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s  (lower bound %d)\n", w.name, prob, hotpotato.LowerBound(prob))

		// Buffered reference: FIFO store-and-forward sits near C+D.
		sf, err := hotpotato.RouteBaseline(prob, hotpotato.SFFifo, hotpotato.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}

		// Bufferless: greedy and the paper's frame algorithm.
		greedy, err := hotpotato.RouteBaseline(prob, hotpotato.GreedyHP, hotpotato.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
			hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
		frame := hotpotato.RouteFrame(prob, params, hotpotato.Options{Seed: 7, CheckInvariants: true})
		if !frame.Done {
			log.Fatalf("frame did not complete on %s", w.name)
		}

		fmt.Printf("  sf-fifo    %5d steps (%.2fx lower bound)\n",
			sf.Steps, float64(sf.Steps)/float64(hotpotato.LowerBound(prob)))
		fmt.Printf("  greedy-hp  %5d steps (%.2fx lower bound), %d deflections\n",
			greedy.Steps, float64(greedy.Steps)/float64(hotpotato.LowerBound(prob)),
			greedy.HP.TotalDeflections())
		fmt.Printf("  frame      %5d steps (%.2fx lower bound), invariants clean: %v\n",
			frame.Steps, float64(frame.Steps)/float64(hotpotato.LowerBound(prob)),
			frame.Invariants.Clean())
		fmt.Printf("  bufferless penalty (frame vs sf-fifo): %.1fx — bounded, as the paper predicts\n\n",
			float64(frame.Steps)/float64(sf.Steps))
	}
}
