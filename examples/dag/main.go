// Arbitrary topologies via levelization: the paper's Discussion asks
// about extending the algorithm beyond leveled networks. This example
// takes an arbitrary random DAG (think: a task graph, or an irregular
// switch fabric), levelizes it (longest-path layering + relay nodes for
// level-skipping edges), and routes two waves of traffic through it
// with the frame algorithm — invariants checked throughout.
//
//	go run ./examples/dag
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// An irregular DAG: 40 nodes, each ordered pair an edge w.p. 0.1.
	const n = 40
	edges := hotpotato.RandomDAG(rng, n, 0.1)
	fmt.Printf("input DAG: %d nodes, %d edges\n", n, len(edges))

	net, ids, err := hotpotato.Levelize("taskgraph", n, edges)
	if err != nil {
		log.Fatal(err)
	}
	relays := net.NumNodes() - n
	fmt.Printf("levelized: %s (%d relay nodes inserted)\n", net.ComputeStats(), relays)
	_ = ids

	// Two waves of traffic arriving one after the other, mapped onto
	// consecutive frontier-set blocks so they pipeline.
	wp, err := workload.Waves(net, rng, 2, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic: %s in %d waves (per-wave C: %v)\n", wp.Problem, wp.Waves, wp.PerWaveC)

	const setsPerWave = 2
	params := hotpotato.Params{NumSets: wp.Waves * setsPerWave, M: 8, W: 24, Q: 0.05}
	assign := wp.SetAssignment(rng, setsPerWave)
	router := core.NewFrameWithSets(params, assign)
	eng := sim.NewEngine(wp.Problem, router, 21)
	checker := core.NewInvariantChecker(router)
	checker.Attach(eng)

	steps, done := eng.Run(8 * params.TotalSteps(wp.L()))
	if !done {
		log.Fatalf("did not complete in %d steps", steps)
	}

	fmt.Println()
	fmt.Printf("delivered %d packets in %d steps (schedule bound %d)\n",
		wp.N(), steps, params.TotalSteps(wp.L()))
	fmt.Printf("invariants on the levelized network: %s clean=%v\n",
		checker.Report.String(), checker.Report.Clean())

	// Wave separation: mean injection time per wave.
	sums := make([]float64, wp.Waves)
	counts := make([]int, wp.Waves)
	for i := range eng.Packets {
		sums[wp.WaveOf[i]] += float64(eng.Packets[i].InjectTime)
		counts[wp.WaveOf[i]]++
	}
	for w := 0; w < wp.Waves; w++ {
		fmt.Printf("wave %d: %d packets, mean injection step %.0f\n",
			w, counts[w], sums[w]/float64(counts[w]))
	}
	fmt.Println()
	fmt.Println("the waves pipeline through disjoint frontier-frame blocks — the paper's")
	fmt.Println("machinery applies verbatim to any DAG once it is levelized.")
}
