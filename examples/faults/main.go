// Fault tolerance: deflection routing is inherently adaptive — a packet
// that cannot take its preferred link is deflected and retries, so
// transient link outages slow delivery without losing packets. This
// example sweeps the outage rate on a butterfly and contrasts greedy
// hot-potato (graceful slowdown) with the frame algorithm (delivery
// intact, invariants pay the price).
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato"
	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
)

func main() {
	net, err := hotpotato.Butterfly(6)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 48, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("problem:", prob)
	fmt.Println()
	fmt.Printf("%-14s %12s %10s %8s %14s %10s\n",
		"edge downtime", "greedy steps", "blocked", "stalls", "frame Ic/Id", "frame done")

	for _, rate := range []float64{0, 0.01, 0.03, 0.05, 0.10} {
		// Greedy hot-potato under outages.
		ge := sim.NewEngine(prob, baselines.NewGreedy(), 5)
		if rate > 0 {
			ge.Faults = sim.HashFaults(99, rate, 12)
		}
		gSteps, gDone := ge.Run(1 << 21)
		if !gDone {
			log.Fatalf("greedy failed at rate %.2f", rate)
		}

		// Frame router under the same outages.
		params := hotpotato.PracticalParamsWith(prob.C, prob.L(), prob.N(),
			hotpotato.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
		router := core.NewFrame(params)
		fe := sim.NewEngine(prob, router, 5)
		if rate > 0 {
			fe.Faults = sim.HashFaults(99, rate, 12)
		}
		checker := core.NewInvariantChecker(router)
		checker.Attach(fe)
		_, fDone := fe.Run(32 * params.TotalSteps(prob.L()))

		fmt.Printf("%-14s %12d %10d %8d %7d/%-6d %10v\n",
			fmt.Sprintf("%.0f%%", rate*100), gSteps, ge.M.FaultBlocked, ge.M.FaultStalls,
			checker.Report.IcFrameEscapes, checker.Report.IdForeignMeetings, fDone)
	}

	fmt.Println()
	fmt.Println("greedy reroutes around outages — steps rise smoothly, nothing is dropped.")
	fmt.Println("the frame router still delivers (its retrace mechanics self-heal), but its")
	fmt.Println("invariants assume healthy links: Ic/Id violations are the measurable cost.")
}
