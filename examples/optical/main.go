// Optical-fabric scenario: the paper's motivation is optical networks,
// where buffering a message means converting light to electronics and
// back, so switches are bufferless and every packet in a node must
// leave on the next tick. This example models a multistage optical
// switching fabric as a random leveled network, drives a bursty
// workload through it, and checks the two facts a bufferless fabric
// lives or dies by:
//
//  1. occupancy feasibility — no switch ever holds more packets than it
//     has ports (or the fabric would have to drop light);
//
//  2. bounded delivery — every packet still arrives, within the
//     Õ(C+L) schedule, despite deflections replacing buffers.
//
//     go run ./examples/optical
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	// A 24-stage fabric with 4-8 switches per stage.
	fabric, err := hotpotato.RandomLeveled(rng, 24, 4, 8, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fabric:", fabric.ComputeStats())

	// A bursty workload: 70% of switches source a flow.
	prob, err := hotpotato.RandomWorkload(fabric, rng, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic:", prob)

	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
	router := core.NewFrame(params)
	eng := sim.NewEngine(prob, router, 9)

	// Fact 1: port feasibility, observed every tick.
	maxOcc, portViolations := 0, 0
	eng.AddObserver(func(t int, e *sim.Engine) {
		for v := 0; v < e.G.NumNodes(); v++ {
			occ := len(e.At(hotpotato.NodeID(v)))
			if occ > maxOcc {
				maxOcc = occ
			}
			if occ > e.G.Node(hotpotato.NodeID(v)).Degree() {
				portViolations++
			}
		}
	})

	steps, done := eng.Run(4 * params.TotalSteps(prob.L()))
	if !done {
		log.Fatalf("fabric failed to deliver all flows in %d ticks", steps)
	}

	fmt.Println()
	fmt.Printf("delivered %d/%d flows in %d ticks (schedule bound %d)\n",
		eng.M.Absorbed, prob.N(), steps, params.TotalSteps(prob.L()))
	fmt.Printf("peak switch occupancy: %d packets (max ports %d) — port violations: %d\n",
		maxOcc, fabric.MaxDegree(), portViolations)
	fmt.Printf("deflections: %d total, %d unsafe — in an optical fabric every deflection\n",
		eng.M.TotalDeflections(), eng.M.UnsafeDeflections())
	fmt.Println("is an extra hop of light, never a dropped or buffered packet.")

	// For contrast: what a buffered (electronic) fabric would need.
	sf, err := hotpotato.RouteBaseline(prob, hotpotato.SFFifo, hotpotato.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("electronic reference (store-and-forward): %d ticks, peak queue %d packets\n",
		sf.Steps, sf.SF.MaxQueueLen)
	fmt.Printf("bufferless penalty: %.1fx ticks for zero buffer memory — the paper's\n",
		float64(steps)/float64(sf.Steps))
	fmt.Println("Õ(C+L) guarantee is what makes that trade predictable.")
}
