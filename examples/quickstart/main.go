// Quickstart: route packets through a butterfly network with the
// paper's frame algorithm and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hotpotato"
)

func main() {
	// A 6-dimensional butterfly: 7 levels, 448 nodes — the canonical
	// leveled network (paper, Figure 1).
	net, err := hotpotato.Butterfly(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.ComputeStats())

	// 64 packets from random sources converging on two hot-spot
	// destinations: congestion C well above the depth L.
	rng := rand.New(rand.NewSource(42))
	prob, err := hotpotato.HotSpotWorkload(net, rng, 64, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("problem:", prob)
	fmt.Println("lower bound max(C,D):", hotpotato.LowerBound(prob))

	// Simulation-grade parameters with the paper's structure: packets
	// split into Θ(C/ln LN) frontier-sets, each riding a frame of
	// Θ(ln LN) levels that shifts one level per phase.
	params := hotpotato.PracticalParams(prob.C, prob.L(), prob.N())
	fmt.Println("frame parameters:", params)
	fmt.Println("schedule bound:", params.TotalSteps(prob.L()), "steps")

	// Route, with the paper's invariants Ia-If checked every step.
	res := hotpotato.RouteFrame(prob, params, hotpotato.Options{
		Seed:            1,
		CheckInvariants: true,
	})
	fmt.Println("result:", res)
	fmt.Println("invariants:", res.Invariants.String(), "clean:", res.Invariants.Clean())

	// The same problem under plain greedy hot-potato and under buffered
	// store-and-forward, for perspective.
	for _, kind := range []hotpotato.BaselineKind{hotpotato.GreedyHP, hotpotato.SFFifo} {
		base, err := hotpotato.RouteBaseline(prob, kind, hotpotato.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("baseline:", base)
	}
}
