package baselines

import (
	"math/rand"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func hotspotProblem(t *testing.T, seed int64) *workload.Problem {
	t.Helper()
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	p, err := workload.HotSpot(g, rng, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNames(t *testing.T) {
	if NewGreedy().Name() != "greedy-hp" {
		t.Error("greedy name")
	}
	if NewFarthestToGo().Name() != "greedy-ftg" {
		t.Error("ftg name")
	}
	if NewOldestFirst().Name() != "greedy-oldest" {
		t.Error("oldest name")
	}
	if NewRandGreedy(0).Name() != "rand-greedy-hp" {
		t.Error("randgreedy name")
	}
	if NewFIFO().Name() != "sf-fifo" {
		t.Error("fifo name")
	}
	if NewRandomDelay(5, 1).Name() != "sf-randdelay" {
		t.Error("randdelay name")
	}
	if NewFarthestFirst().Name() != "sf-farthest" {
		t.Error("farthest name")
	}
}

func TestRandGreedyDefaults(t *testing.T) {
	r := NewRandGreedy(0)
	if r.Q != 0.05 {
		t.Errorf("default Q = %g", r.Q)
	}
	r2 := NewRandGreedy(0.2)
	if r2.Q != 0.2 {
		t.Errorf("Q = %g", r2.Q)
	}
}

func TestRandGreedyDemotionOnDeflect(t *testing.T) {
	p := hotspotProblem(t, 1)
	r := NewRandGreedy(1.0) // always excited
	e := sim.NewEngine(p, r, 2)
	if _, done := e.Run(100000); !done {
		t.Fatal("did not complete")
	}
	// With Q=1 every packet excites every step; deflections demote and
	// the next Request re-promotes, so excitations must exceed N.
	if r.Excitations <= p.N() {
		t.Errorf("excitations = %d, want > %d", r.Excitations, p.N())
	}
}

func TestRandomDelayWindow(t *testing.T) {
	p := hotspotProblem(t, 3)
	s := NewRandomDelay(p.C, 2)
	e := sim.NewSFEngine(p, s, 4)
	window := 2 * p.C
	for i := range e.Packets {
		r := s.ReadyAt(&e.Packets[i])
		if r < 0 || r >= window {
			t.Errorf("packet %d delay %d outside [0,%d)", i, r, window)
		}
	}
	if _, done := e.Run(100000); !done {
		t.Fatal("did not complete")
	}
}

func TestRandomDelayClamps(t *testing.T) {
	s := NewRandomDelay(0, -1)
	if s.C != 1 || s.Alpha != 1 {
		t.Errorf("clamps failed: C=%d alpha=%g", s.C, s.Alpha)
	}
}

func TestFIFOPicksHead(t *testing.T) {
	f := NewFIFO()
	q := []sim.PacketID{7, 3, 9}
	if f.Pick(0, 0, q) != 7 {
		t.Error("FIFO must pick the head")
	}
	if f.ReadyAt(nil) != 0 {
		t.Error("FIFO ReadyAt must be 0")
	}
}

func TestFarthestFirstPicksLongestPath(t *testing.T) {
	p := hotspotProblem(t, 5)
	s := NewFarthestFirst()
	e := sim.NewSFEngine(p, s, 6)
	// Before any step, path lists are not yet populated (packets are
	// injected lazily); run one step to populate, then exercise Pick on
	// a synthetic queue.
	e.Step()
	var ids []sim.PacketID
	for i := range e.Packets {
		if e.Packets[i].Active {
			ids = append(ids, e.Packets[i].ID)
		}
	}
	if len(ids) < 2 {
		t.Skip("not enough active packets to compare")
	}
	pick := s.Pick(1, 0, ids)
	for _, id := range ids {
		if len(e.Packets[id].PathList) > len(e.Packets[pick].PathList) {
			t.Errorf("picked %d (len %d) but %d has len %d", pick,
				len(e.Packets[pick].PathList), id, len(e.Packets[id].PathList))
		}
	}
}

func TestGreedyBeatsScheduleBoundOnLightLoad(t *testing.T) {
	// On a conflict-free single packet, greedy hot-potato is exactly
	// the shortest path: steps == D.
	g, err := topo.Linear(20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p, NewGreedy(), 7)
	steps, done := e.Run(1000)
	if !done || steps != p.D {
		t.Errorf("steps = %d done=%v, want %d", steps, done, p.D)
	}
}

func TestAllHotPotatoBaselinesComplete(t *testing.T) {
	p := hotspotProblem(t, 8)
	for _, r := range []sim.Router{NewGreedy(), NewFarthestToGo(), NewOldestFirst(), NewRandGreedy(0.1)} {
		e := sim.NewEngine(p, r, 9)
		if _, done := e.Run(200000); !done {
			t.Errorf("%s did not complete", r.Name())
		}
		// All deflections must be backward for path validity.
		if fw := e.M.Deflections[sim.DeflectForward]; fw != 0 {
			t.Logf("%s: %d forward deflections (allowed but unusual)", r.Name(), fw)
		}
	}
}

func TestAllSchedulersComplete(t *testing.T) {
	p := hotspotProblem(t, 10)
	for _, s := range []sim.Scheduler{NewFIFO(), NewRandomDelay(p.C, 1), NewFarthestFirst()} {
		e := sim.NewSFEngine(p, s, 11)
		if _, done := e.Run(200000); !done {
			t.Errorf("%s did not complete", s.Name())
		}
	}
}

func TestHeadRequestDirection(t *testing.T) {
	// headRequest passes the engine-maintained head direction through.
	pkt := &sim.Packet{Cur: 0, PathList: []graph.EdgeID{0}, HeadDir: graph.Forward}
	req := headRequest(pkt, 5)
	if req.Edge != 0 || req.Dir != graph.Forward || req.Priority != 5 {
		t.Errorf("req = %+v", req)
	}
	// A retrace head (e.g. after a forward deflection) is traversed
	// backward.
	pkt2 := &sim.Packet{Cur: 1, PathList: []graph.EdgeID{0}, HeadDir: graph.Backward}
	req2 := headRequest(pkt2, 0)
	if req2.Dir != graph.Backward {
		t.Errorf("req2 = %+v", req2)
	}
}

func TestOldestFirstNeverStarves(t *testing.T) {
	// The oldest active packet always has the highest priority, so it
	// is never deflected: its latency equals its path length plus its
	// injection wait... on a hotspot instance simply assert the first
	// injected packet has zero deflections.
	p := hotspotProblem(t, 20)
	e := sim.NewEngine(p, NewOldestFirst(), 21)
	if _, done := e.Run(200000); !done {
		t.Fatal("did not complete")
	}
	oldest := 0
	for i := range e.Packets {
		if e.Packets[i].InjectTime < e.Packets[oldest].InjectTime {
			oldest = i
		}
	}
	// Ties at InjectTime 0 can deflect each other; find a strictly
	// oldest packet if any, else check the global minimum-deflection
	// property: at least one earliest packet goes deflection-free.
	minInject := e.Packets[oldest].InjectTime
	free := false
	for i := range e.Packets {
		if e.Packets[i].InjectTime == minInject && e.Packets[i].Deflections == 0 {
			free = true
		}
	}
	if !free {
		t.Error("no earliest packet went deflection-free under oldest-first")
	}
}
