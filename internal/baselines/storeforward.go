package baselines

import (
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// FIFO is the first-in-first-out store-and-forward scheduler: packets
// start immediately and each edge serves its queue in arrival order.
type FIFO struct{}

// NewFIFO returns the FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements sim.Scheduler.
func (*FIFO) Name() string { return "sf-fifo" }

// Init implements sim.Scheduler.
func (*FIFO) Init(*sim.SFEngine) {}

// ReadyAt implements sim.Scheduler.
func (*FIFO) ReadyAt(*sim.Packet) int { return 0 }

// Pick implements sim.Scheduler.
func (*FIFO) Pick(t int, e graph.EdgeID, q []sim.PacketID) sim.PacketID {
	return q[0]
}

// RandomDelay is the Leighton-Maggs-Rao-flavored scheduler [17]: each
// packet waits an independent uniform initial delay in [0, Alpha*C)
// and then proceeds FIFO. With a suitable constant the schedule length
// is O(C + D) with high probability; this is the O(C+D) buffered
// comparator for experiment E3.
type RandomDelay struct {
	// Alpha scales the delay window relative to the congestion C
	// (default 1 if 0).
	Alpha float64
	// C is the congestion of the problem (required, >= 1).
	C int

	rng    *rand.Rand
	delays []int
}

// NewRandomDelay returns a random-delay scheduler for a problem with
// congestion c.
func NewRandomDelay(c int, alpha float64) *RandomDelay {
	if alpha <= 0 {
		alpha = 1
	}
	if c < 1 {
		c = 1
	}
	return &RandomDelay{Alpha: alpha, C: c}
}

// Name implements sim.Scheduler.
func (*RandomDelay) Name() string { return "sf-randdelay" }

// Init implements sim.Scheduler.
func (s *RandomDelay) Init(e *sim.SFEngine) {
	s.rng = e.Rng
	s.delays = make([]int, len(e.Packets))
	window := int(s.Alpha * float64(s.C))
	if window < 1 {
		window = 1
	}
	for i := range s.delays {
		s.delays[i] = s.rng.Intn(window)
	}
}

// ReadyAt implements sim.Scheduler.
func (s *RandomDelay) ReadyAt(p *sim.Packet) int { return s.delays[p.ID] }

// Pick implements sim.Scheduler.
func (*RandomDelay) Pick(t int, e graph.EdgeID, q []sim.PacketID) sim.PacketID {
	return q[0]
}

// FarthestFirst is store-and-forward with longest-remaining-path-first
// service at every edge.
type FarthestFirst struct {
	e *sim.SFEngine
}

// NewFarthestFirst returns the farthest-first scheduler.
func NewFarthestFirst() *FarthestFirst { return &FarthestFirst{} }

// Name implements sim.Scheduler.
func (*FarthestFirst) Name() string { return "sf-farthest" }

// Init implements sim.Scheduler.
func (s *FarthestFirst) Init(e *sim.SFEngine) { s.e = e }

// ReadyAt implements sim.Scheduler.
func (*FarthestFirst) ReadyAt(*sim.Packet) int { return 0 }

// Pick implements sim.Scheduler.
func (s *FarthestFirst) Pick(t int, e graph.EdgeID, q []sim.PacketID) sim.PacketID {
	best := q[0]
	bestLen := len(s.e.Packets[best].PathList)
	for _, pid := range q[1:] {
		if l := len(s.e.Packets[pid].PathList); l > bestLen {
			best, bestLen = pid, l
		}
	}
	return best
}
