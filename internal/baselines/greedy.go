// Package baselines implements the comparison algorithms the paper
// positions against: greedy hot-potato routing (inject as early as
// possible, always chase the current path, deflect on conflict), a
// randomized-greedy variant with excitation priorities in the spirit of
// Busch-Herlihy-Wattenhofer [11], and store-and-forward schedulers
// including a random-delay scheduler in the spirit of
// Leighton-Maggs-Rao [17].
package baselines

import (
	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// Greedy is the plain greedy hot-potato router: every packet is
// injected as soon as its source is free, always requests the head of
// its current path, and all packets have equal priority (conflicts are
// resolved arbitrarily by the engine, as the paper permits). Deflected
// packets retrace via the engine's path mechanics. No bound is known
// for this router on general leveled networks; it is the empirical
// baseline.
type Greedy struct {
	g *graph.Leveled
}

// NewGreedy returns a fresh greedy router.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements sim.Router.
func (*Greedy) Name() string { return "greedy-hp" }

// Init implements sim.Router.
func (r *Greedy) Init(e *sim.Engine) { r.g = e.G }

// WantInject implements sim.Router: inject at the first opportunity.
func (*Greedy) WantInject(int, *sim.Packet) bool { return true }

// InjectStep implements sim.InjectionPlanner: every packet is eligible
// from step 0 (the bound is exact — WantInject is always true).
func (*Greedy) InjectStep(*sim.Packet) int { return 0 }

// Request implements sim.Router: chase the head of the current path.
func (r *Greedy) Request(t int, p *sim.Packet) sim.Request {
	return headRequest(p, 0)
}

// ConcurrentRequests implements sim.ConcurrentRouter: WantInject and
// Request are pure functions of the packet and the immutable graph, so
// the engine's sharded step may call them concurrently.
func (*Greedy) ConcurrentRequests() bool { return true }

// OnDeflect implements sim.Router.
func (*Greedy) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}

// OnMove implements sim.Router.
func (*Greedy) OnMove(int, *sim.Packet) {}

// OnAbsorb implements sim.Router.
func (*Greedy) OnAbsorb(int, *sim.Packet) {}

// EndStep implements sim.Router.
func (*Greedy) EndStep(int, *sim.Engine) {}

// headRequest builds the request traversing the packet's path-list head
// away from its current node: for a valid path this is the forward move
// toward the destination; for a just-deflected packet it retraces the
// deflection edge back onto the path. The direction comes from the
// engine-maintained HeadDir, sparing a graph lookup per request.
func headRequest(p *sim.Packet, prio int64) sim.Request {
	return sim.Request{Edge: p.PathList[0], Dir: p.HeadDir, Priority: prio}
}

// OldestFirst is greedy with age-based conflict resolution: the packet
// injected earliest wins ties, the classic starvation-free deflection
// rule (older packets can only be deflected by even older ones, so the
// oldest packet always advances).
type OldestFirst struct {
	g *graph.Leveled
}

// NewOldestFirst returns a fresh oldest-first router.
func NewOldestFirst() *OldestFirst { return &OldestFirst{} }

// Name implements sim.Router.
func (*OldestFirst) Name() string { return "greedy-oldest" }

// Init implements sim.Router.
func (r *OldestFirst) Init(e *sim.Engine) { r.g = e.G }

// WantInject implements sim.Router.
func (*OldestFirst) WantInject(int, *sim.Packet) bool { return true }

// InjectStep implements sim.InjectionPlanner (exact: always eligible).
func (*OldestFirst) InjectStep(*sim.Packet) int { return 0 }

// Request implements sim.Router: priority = packet age (earlier
// injection wins).
func (r *OldestFirst) Request(t int, p *sim.Packet) sim.Request {
	return headRequest(p, int64(-p.InjectTime))
}

// ConcurrentRequests implements sim.ConcurrentRouter (pure Request, as
// for Greedy).
func (*OldestFirst) ConcurrentRequests() bool { return true }

// OnDeflect implements sim.Router.
func (*OldestFirst) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}

// OnMove implements sim.Router.
func (*OldestFirst) OnMove(int, *sim.Packet) {}

// OnAbsorb implements sim.Router.
func (*OldestFirst) OnAbsorb(int, *sim.Packet) {}

// EndStep implements sim.Router.
func (*OldestFirst) EndStep(int, *sim.Engine) {}

// FarthestToGo is greedy with farthest-to-go conflict resolution: the
// packet with the longest remaining path wins ties, a classic
// deflection-routing heuristic (cf. the greedy potential-function
// analyses of Ben-Dor, Halevi and Schuster [5]).
type FarthestToGo struct {
	g *graph.Leveled
}

// NewFarthestToGo returns a fresh farthest-to-go router.
func NewFarthestToGo() *FarthestToGo { return &FarthestToGo{} }

// Name implements sim.Router.
func (*FarthestToGo) Name() string { return "greedy-ftg" }

// Init implements sim.Router.
func (r *FarthestToGo) Init(e *sim.Engine) { r.g = e.G }

// WantInject implements sim.Router.
func (*FarthestToGo) WantInject(int, *sim.Packet) bool { return true }

// InjectStep implements sim.InjectionPlanner (exact: always eligible).
func (*FarthestToGo) InjectStep(*sim.Packet) int { return 0 }

// Request implements sim.Router: priority = remaining path length.
func (r *FarthestToGo) Request(t int, p *sim.Packet) sim.Request {
	return headRequest(p, int64(len(p.PathList)))
}

// ConcurrentRequests implements sim.ConcurrentRouter (pure Request, as
// for Greedy).
func (*FarthestToGo) ConcurrentRequests() bool { return true }

// OnDeflect implements sim.Router.
func (*FarthestToGo) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}

// OnMove implements sim.Router.
func (*FarthestToGo) OnMove(int, *sim.Packet) {}

// OnAbsorb implements sim.Router.
func (*FarthestToGo) OnAbsorb(int, *sim.Packet) {}

// EndStep implements sim.Router.
func (*FarthestToGo) EndStep(int, *sim.Engine) {}
