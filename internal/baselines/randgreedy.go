package baselines

import (
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// Priorities used by RandGreedy; excited beats normal, mirroring the
// state-priority technique of Busch-Herlihy-Wattenhofer [11] that the
// paper's algorithm also builds on.
const (
	prioNormal  = 0
	prioExcited = 1
)

// RandGreedy is randomized greedy hot-potato routing: packets chase
// their current paths at normal priority; each step a normal packet
// turns excited with probability Q, and excited packets win all
// conflicts against normal packets (ties among excited packets are
// random). An excited packet that is deflected reverts to normal. This
// is the single-frame ancestor of the paper's algorithm and the
// strongest bufferless baseline here.
type RandGreedy struct {
	// Q is the per-step excitation probability (default 0.05 if 0).
	Q float64

	g       *graph.Leveled
	rng     *rand.Rand
	excited []bool
	// Excitations counts state promotions, for reporting.
	Excitations int
}

// NewRandGreedy returns a randomized-greedy router with excitation
// probability q (q<=0 selects the 0.05 default). The router draws its
// randomness from the engine's seeded source, so runs are reproducible.
func NewRandGreedy(q float64) *RandGreedy {
	if q <= 0 {
		q = 0.05
	}
	return &RandGreedy{Q: q}
}

// Name implements sim.Router.
func (*RandGreedy) Name() string { return "rand-greedy-hp" }

// Init implements sim.Router.
func (r *RandGreedy) Init(e *sim.Engine) {
	r.g = e.G
	r.rng = e.Rng
	r.excited = make([]bool, len(e.Packets))
}

// WantInject implements sim.Router.
func (*RandGreedy) WantInject(int, *sim.Packet) bool { return true }

// InjectStep implements sim.InjectionPlanner (exact: always eligible).
func (*RandGreedy) InjectStep(*sim.Packet) int { return 0 }

// Request implements sim.Router.
func (r *RandGreedy) Request(t int, p *sim.Packet) sim.Request {
	if !r.excited[p.ID] && r.rng.Float64() < r.Q {
		r.excited[p.ID] = true
		r.Excitations++
	}
	prio := int64(prioNormal)
	if r.excited[p.ID] {
		prio = prioExcited
	}
	return headRequest(p, prio)
}

// OnDeflect implements sim.Router: deflection demotes to normal.
func (r *RandGreedy) OnDeflect(t int, p *sim.Packet, e graph.EdgeID, kind sim.DeflectKind) {
	r.excited[p.ID] = false
}

// OnMove implements sim.Router.
func (*RandGreedy) OnMove(int, *sim.Packet) {}

// OnAbsorb implements sim.Router.
func (*RandGreedy) OnAbsorb(int, *sim.Packet) {}

// EndStep implements sim.Router.
func (*RandGreedy) EndStep(int, *sim.Engine) {}
