package service

import "testing"

func TestParseTenants(t *testing.T) {
	qs, err := ParseTenants("gold:rate=200,burst=400; free:rate=20,burst=40 ;anon")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("parsed %d tenants: %+v", len(qs), qs)
	}
	if qs[0] != (TenantQuota{Name: "gold", Rate: 200, Burst: 400}) {
		t.Errorf("gold: %+v", qs[0])
	}
	if qs[2] != (TenantQuota{Name: "anon"}) {
		t.Errorf("anon should be unlimited: %+v", qs[2])
	}

	for _, bad := range []string{
		"",
		";;",
		":rate=1,burst=1",                   // no name
		"x:rate=1",                          // burst missing
		"x:burst=1",                         // rate missing
		"x:rate=-1,burst=1",                 // negative
		"x:rate=a,burst=1",                  // not a number
		"x:speed=1",                         // unknown key
		"x:rate",                            // not key=value
		"x:rate=1,burst=1;x:rate=2,burst=2", // duplicate
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
