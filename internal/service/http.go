package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP API (Go 1.22 method+wildcard
// routes, stdlib only):
//
//	GET  /v1/topologies                    — stats for every topology
//	GET  /v1/topologies/{name}             — stats for one topology
//	POST /v1/topologies/{name}/batches     — submit a BatchRequest
//	POST /v1/topologies/{name}/advance     — {"steps": n} manual stepping
//	POST /v1/topologies/{name}/windows     — flush the open window
//
// Everything speaks JSON. Unknown topology → 404, unknown tenant → 403,
// malformed or invalid request → 400.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/topologies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.AllStats())
	})
	mux.HandleFunc("GET /v1/topologies/{name}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Stats(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/topologies/{name}/batches", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		res, err := s.SubmitBatch(r.PathValue("name"), req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/topologies/{name}/advance", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Steps int `json:"steps"`
		}
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		step, err := s.Advance(r.PathValue("name"), req.Steps)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"step": step})
	})
	mux.HandleFunc("POST /v1/topologies/{name}/windows", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		tp := s.topology(name)
		if tp == nil {
			writeErr(w, fmt.Errorf("%w: %q", ErrUnknownTopology, name))
			return
		}
		if err := tp.do(func() { tp.eng.FlushWindow() }); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"flushed": true})
	})
	return mux
}

// Vars returns the service's expvar view: a map of topology name to
// TopologyStats, computed on demand (each read runs on the topology
// loops, so it is always current and race-free). All floats inside are
// finite by construction, which /debug/vars requires.
func (s *Service) Vars() expvar.Var {
	return expvar.Func(func() any {
		out := make(map[string]TopologyStats)
		for _, st := range s.AllStats() {
			out[st.Name] = st
		}
		return out
	})
}

// Publish registers Vars under the given expvar name, once; a second
// service instance reusing the name (tests, restarts within a process)
// is ignored rather than a panic — expvar registration is global and
// permanent by design.
func (s *Service) Publish(name string) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, s.Vars())
	}
}

const maxBodyBytes = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownTopology):
		status = http.StatusNotFound
	case errors.Is(err, ErrUnknownTenant):
		status = http.StatusForbidden
	case errors.Is(err, ErrStopped):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
