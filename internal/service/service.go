// Package service turns the open-system simulator into routing as a
// service: named topologies served concurrently, each backed by one
// dynamic.Engine on its own goroutine, with clients submitting packet
// batches (explicit src→dst pairs, explicit paths, or random draws)
// over the HTTP API in http.go.
//
// Concurrency model: every Topology owns its engine exclusively on a
// single loop goroutine; all access — batch submission, stats reads,
// manual stepping, snapshots — is a closure executed on that goroutine
// between engine steps (Topology.do). There are no locks around engine
// state and no data races by construction, and a snapshot always
// observes the engine quiescent at a step boundary.
//
// Admission is two-stage. A tenant's token bucket (quota.go) gates
// first: the bucket admits a prefix of each batch and counts the rest
// as QuotaDropped, before the engine ever sees them. What passes the
// bucket enters the engine's pending queue and competes for injection
// under the usual retry/backoff machinery; engine-side drops land in
// the tenant's engine ledger. A tenant's reported Dropped is the sum of
// both stages, so "offered 2× your rate" shows up as a nonzero drop
// rate no matter which stage shed the load.
//
// The whole service freezes into a persist.ServiceSnapshot — network,
// engine state (RNG included), fault spec and quota buckets per
// topology — and Restore thaws it in a fresh process; a restored
// topology continues the exact trajectory the snapshotted one would
// have taken (asserted digest-for-digest in the tests).
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/obs"
	"hotpotato/internal/persist"
	"hotpotato/internal/sim"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrUnknownTopology = errors.New("service: unknown topology")
	ErrUnknownTenant   = errors.New("service: unknown tenant")
	ErrStopped         = errors.New("service: topology stopped")
)

// TopologyConfig declares one served topology.
type TopologyConfig struct {
	Name    string
	Network *graph.Leveled
	// Engine configures the backing engine. Steps must be 0 (service
	// engines are unbounded; the horizon belongs to batch runs), Lambda
	// may be 0 (pure batch service) or positive (endogenous background
	// load on top of batches).
	Engine dynamic.Config
	// FaultSpec, when non-empty, is a docs/FAULTS.md campaign spec
	// bound to the network with FaultSeed. The spec string (not the
	// bound closure) is persisted in snapshots, so restores re-bind the
	// identical pure fault function.
	FaultSpec string
	FaultSeed int64
	// AutoStep lets the loop goroutine step the engine whenever it has
	// work (or Lambda > 0). With AutoStep false the engine advances only
	// through Advance — the deterministic mode, where the trajectory is
	// a pure function of the submitted batch/advance sequence.
	AutoStep bool
	// Tenants declares who may submit and their admission budgets.
	Tenants []TenantQuota
}

// Options configures a Service.
type Options struct {
	// Now is the quota clock (nil = time.Now). Tests inject a fake.
	Now func() time.Time
}

// Service is a set of named topologies.
type Service struct {
	now   func() time.Time
	mu    sync.Mutex
	topos map[string]*Topology
	order []string
}

// Topology serves one network. All fields below cmds are owned by the
// loop goroutine.
type Topology struct {
	name      string
	g         *graph.Leveled
	faultSpec string
	faultSeed int64
	autoStep  bool
	lambda    float64
	now       func() time.Time

	cmds     chan func()
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	eng        *dynamic.Engine
	quotas     map[string]*bucket
	err        error // set before done closes
	lastWindow *dynamic.WindowStats
}

// New builds and starts a service. Every topology's loop goroutine is
// running when New returns; Close stops them.
func New(cfgs []TopologyConfig, opts Options) (*Service, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("service: no topologies configured")
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Service{now: now, topos: make(map[string]*Topology, len(cfgs))}
	for _, tc := range cfgs {
		if tc.Name == "" {
			s.Close()
			return nil, fmt.Errorf("service: topology without a name")
		}
		if _, dup := s.topos[tc.Name]; dup {
			s.Close()
			return nil, fmt.Errorf("service: duplicate topology %q", tc.Name)
		}
		tp, err := newTopology(tc, now)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: topology %q: %w", tc.Name, err)
		}
		s.topos[tc.Name] = tp
		s.order = append(s.order, tc.Name)
	}
	sort.Strings(s.order)
	return s, nil
}

func newTopology(tc TopologyConfig, now func() time.Time) (*Topology, error) {
	if tc.Network == nil {
		return nil, fmt.Errorf("no network")
	}
	if tc.Engine.Steps != 0 {
		return nil, fmt.Errorf("service engines are unbounded: Steps must be 0, got %d", tc.Engine.Steps)
	}
	tp := &Topology{
		name: tc.Name, g: tc.Network,
		faultSpec: tc.FaultSpec, faultSeed: tc.FaultSeed,
		autoStep: tc.AutoStep, lambda: tc.Engine.Lambda, now: now,
		cmds: make(chan func()),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	cfg := tc.Engine
	model, err := bindFaults(tc.FaultSpec, tc.Network, tc.FaultSeed)
	if err != nil {
		return nil, err
	}
	if model != nil {
		cfg.Faults = model
	}
	userOW := cfg.OnWindow
	cfg.OnWindow = func(w dynamic.WindowStats, r *dynamic.Result) {
		tp.recordWindow(w, r)
		if userOW != nil {
			userOW(w, r)
		}
	}
	eng, err := dynamic.NewEngine(tc.Network, cfg)
	if err != nil {
		return nil, err
	}
	tp.eng = eng
	tp.quotas = make(map[string]*bucket, len(tc.Tenants))
	for _, q := range tc.Tenants {
		if err := q.validate(); err != nil {
			return nil, err
		}
		if _, dup := tp.quotas[q.Name]; dup {
			return nil, fmt.Errorf("duplicate tenant %q", q.Name)
		}
		tp.quotas[q.Name] = newBucket(q, now())
	}
	go tp.loop()
	return tp, nil
}

// bindFaults parses a campaign spec and binds it to the network.
func bindFaults(spec string, g *graph.Leveled, seed int64) (sim.FaultModel, error) {
	c, err := faults.Parse(spec)
	if err != nil || c == nil {
		return nil, err
	}
	return c.Model(g, seed), nil
}

// recordWindow runs on the loop goroutine (engine OnWindow hook).
func (tp *Topology) recordWindow(w dynamic.WindowStats, _ *dynamic.Result) {
	ww := w
	tp.lastWindow = &ww
}

// loop is the topology's single-threaded owner: it executes submitted
// closures between steps and, in auto-step mode, steps the engine
// whenever it has work.
func (tp *Topology) loop() {
	defer close(tp.done)
	for {
		select {
		case f := <-tp.cmds:
			f()
		case <-tp.stop:
			return
		default:
			if tp.autoStep && (tp.eng.HasWork() || tp.lambda > 0) {
				if err := tp.eng.Step(); err != nil {
					tp.err = err
					return
				}
				continue
			}
			// Idle (or manual mode): block until work arrives.
			select {
			case f := <-tp.cmds:
				f()
			case <-tp.stop:
				return
			}
		}
	}
}

// do executes f on the loop goroutine and waits for it.
func (tp *Topology) do(f func()) error {
	ran := make(chan struct{})
	wrapped := func() { f(); close(ran) }
	select {
	case tp.cmds <- wrapped:
	case <-tp.done:
		return tp.exitErr()
	}
	select {
	case <-ran:
		return nil
	case <-tp.done:
		return tp.exitErr()
	}
}

// exitErr is only called after done is closed (err writes
// happen-before the close).
func (tp *Topology) exitErr() error {
	if tp.err != nil {
		return fmt.Errorf("%w: %v", ErrStopped, tp.err)
	}
	return ErrStopped
}

// halt stops the loop goroutine and waits for it to exit.
func (tp *Topology) halt() {
	tp.stopOnce.Do(func() { close(tp.stop) })
	<-tp.done
}

// topology looks a topology up by name.
func (s *Service) topology(name string) *Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topos[name]
}

// Names returns the served topology names, sorted.
func (s *Service) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Close stops every topology loop. In-flight packets are abandoned
// unless a Snapshot was taken first — the SIGTERM path is
// Snapshot → persist → Close.
func (s *Service) Close() {
	s.mu.Lock()
	topos := make([]*Topology, 0, len(s.topos))
	for _, tp := range s.topos {
		topos = append(topos, tp)
	}
	s.mu.Unlock()
	for _, tp := range topos {
		tp.halt()
	}
}

// Pair is one src→dst packet request.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// BatchRequest is one tenant's packet batch against a topology. Items
// are offered to the quota bucket in order — Pairs, then Paths, then
// Random — and the bucket admits a prefix.
type BatchRequest struct {
	Tenant string  `json:"tenant"`
	Pairs  []Pair  `json:"pairs,omitempty"`
	Paths  [][]int `json:"paths,omitempty"`
	// Random asks for that many packets with engine-drawn random
	// src/dst (drawn at injection time from the engine RNG, so the run
	// stays deterministic per submission sequence).
	Random int `json:"random,omitempty"`
}

// BatchResult reports what happened to a batch at admission time.
// Admitted means "entered the engine's pending queue"; the engine's own
// injection/retry accounting then takes over (see TenantStats).
type BatchResult struct {
	Topology     string   `json:"topology"`
	Tenant       string   `json:"tenant"`
	Offered      int      `json:"offered"`
	Admitted     int      `json:"admitted"`
	QuotaDropped int      `json:"quota_dropped"`
	Rejected     []string `json:"rejected,omitempty"`
	Step         int      `json:"step"`
}

// SubmitBatch submits a batch to the named topology.
func (s *Service) SubmitBatch(topo string, req BatchRequest) (BatchResult, error) {
	tp := s.topology(topo)
	if tp == nil {
		return BatchResult{}, fmt.Errorf("%w: %q", ErrUnknownTopology, topo)
	}
	return tp.submitBatch(req)
}

func (tp *Topology) submitBatch(req BatchRequest) (BatchResult, error) {
	n := len(req.Pairs) + len(req.Paths) + req.Random
	if req.Random < 0 || n <= 0 {
		return BatchResult{}, fmt.Errorf("service: empty or negative batch")
	}
	res := BatchResult{Topology: tp.name, Tenant: req.Tenant}
	var reqErr error
	err := tp.do(func() {
		b := tp.quotas[req.Tenant]
		if b == nil {
			reqErr = fmt.Errorf("%w: %q on topology %q", ErrUnknownTenant, req.Tenant, tp.name)
			return
		}
		k := b.take(n, tp.now())
		res.Offered = n
		res.QuotaDropped = n - k
		admit := func(submit func() error) {
			if k <= 0 {
				return
			}
			k--
			if err := submit(); err != nil {
				res.Rejected = append(res.Rejected, err.Error())
			} else {
				res.Admitted++
			}
		}
		for _, p := range req.Pairs {
			p := p
			admit(func() error {
				return tp.eng.Submit(req.Tenant, graph.NodeID(p.Src), graph.NodeID(p.Dst))
			})
		}
		for _, path := range req.Paths {
			edges := make([]graph.EdgeID, len(path))
			for i, e := range path {
				edges[i] = graph.EdgeID(e)
			}
			admit(func() error { return tp.eng.SubmitPath(req.Tenant, edges) })
		}
		if req.Random > 0 && k > 0 {
			m := req.Random
			if m > k {
				m = k
			}
			if err := tp.eng.SubmitRandom(req.Tenant, m); err != nil {
				res.Rejected = append(res.Rejected, err.Error())
			} else {
				res.Admitted += m
			}
		}
		res.Step = tp.eng.StepCount()
	})
	if err != nil {
		return BatchResult{}, err
	}
	return res, reqErr
}

// Advance steps the named topology's engine n times — the deterministic
// drive for AutoStep=false topologies (it also works on auto-step ones,
// interleaving with the loop's own steps).
func (s *Service) Advance(topo string, n int) (int, error) {
	tp := s.topology(topo)
	if tp == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopology, topo)
	}
	if n < 1 {
		return 0, fmt.Errorf("service: advance needs >= 1 steps, got %d", n)
	}
	var step int
	var stepErr error
	err := tp.do(func() {
		for i := 0; i < n; i++ {
			if stepErr = tp.eng.Step(); stepErr != nil {
				break
			}
		}
		step = tp.eng.StepCount()
	})
	if err != nil {
		return 0, err
	}
	return step, stepErr
}

// FlushWindows closes the open observation window on every topology
// (the drain path's "no dropped final window" guarantee). Harmless
// no-op on topologies with windowing disabled or nothing accumulated.
func (s *Service) FlushWindows() error {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, name := range order {
		tp := s.topology(name)
		if tp == nil {
			continue
		}
		if err := tp.do(func() { tp.eng.FlushWindow() }); err != nil {
			return fmt.Errorf("service: flush %q: %w", name, err)
		}
	}
	return nil
}

// TenantStats merges a tenant's two admission stages into one ledger.
// Every float is finite by construction (obs.Ratio).
type TenantStats struct {
	// Offered counts every packet the tenant ever submitted (quota
	// ledger, includes quota drops and validation rejects).
	Offered int `json:"offered"`
	// Admitted counts engine injections; Retried the backoff
	// re-attempts; Delivered the absorptions.
	Admitted  int `json:"admitted"`
	Retried   int `json:"retried"`
	Delivered int `json:"delivered"`
	// QuotaDropped fell to the token bucket; EngineDropped exhausted
	// admission retries inside the engine; Dropped is their sum.
	QuotaDropped  int     `json:"quota_dropped"`
	EngineDropped int     `json:"engine_dropped"`
	Dropped       int     `json:"dropped"`
	DropRate      float64 `json:"drop_rate"`
}

// TopologyStats is one topology's externally visible state.
type TopologyStats struct {
	Name       string `json:"name"`
	Step       int    `json:"step"`
	Live       int    `json:"live"`
	QueueDepth int    `json:"queue_depth"`

	Offered      int  `json:"offered"`
	Admitted     int  `json:"admitted"`
	Delivered    int  `json:"delivered"`
	Retried      int  `json:"retried"`
	Dropped      int  `json:"dropped"`
	Deflections  int  `json:"deflections"`
	FaultBlocked int  `json:"fault_blocked"`
	FaultStalls  int  `json:"fault_stalls"`
	Saturated    bool `json:"saturated"`

	Digest     uint64                 `json:"digest"`
	LastWindow *dynamic.WindowStats   `json:"last_window,omitempty"`
	Tenants    map[string]TenantStats `json:"tenants"`
}

// Stats reads the named topology's current state.
func (s *Service) Stats(topo string) (TopologyStats, error) {
	tp := s.topology(topo)
	if tp == nil {
		return TopologyStats{}, fmt.Errorf("%w: %q", ErrUnknownTopology, topo)
	}
	var st TopologyStats
	err := tp.do(func() { st = tp.stats() })
	return st, err
}

// stats runs on the loop goroutine.
func (tp *Topology) stats() TopologyStats {
	r := tp.eng.Peek()
	st := TopologyStats{
		Name: tp.name, Step: tp.eng.StepCount(),
		Live: tp.eng.Live(), QueueDepth: tp.eng.QueueDepth(),
		Offered: r.Offered, Admitted: r.Admitted, Delivered: r.Delivered,
		Retried: r.Retried, Dropped: r.Dropped, Deflections: r.Deflections,
		FaultBlocked: r.FaultBlocked, FaultStalls: r.FaultStalls,
		Saturated: r.Saturated,
		Digest:    tp.eng.Digest(),
		Tenants:   make(map[string]TenantStats, len(tp.quotas)),
	}
	if tp.lastWindow != nil {
		w := *tp.lastWindow
		st.LastWindow = &w
	}
	ledgers := tp.eng.Tenants()
	for name, b := range tp.quotas {
		ts := TenantStats{Offered: b.offered, QuotaDropped: b.quotaDropped}
		if tt := ledgers[name]; tt != nil {
			ts.Admitted = tt.Admitted
			ts.Retried = tt.Retried
			ts.Delivered = tt.Delivered
			ts.EngineDropped = tt.Dropped
		}
		ts.Dropped = ts.QuotaDropped + ts.EngineDropped
		ts.DropRate = obs.Ratio(float64(ts.Dropped), float64(ts.Offered))
		st.Tenants[name] = ts
	}
	return st
}

// AllStats reads every topology, sorted by name. A stopped topology
// reports a zero entry with only its name (the error is not fatal to
// the listing).
func (s *Service) AllStats() []TopologyStats {
	names := s.Names()
	out := make([]TopologyStats, 0, len(names))
	for _, name := range names {
		st, err := s.Stats(name)
		if err != nil {
			st = TopologyStats{Name: name}
		}
		out = append(out, st)
	}
	return out
}

// Snapshot freezes the whole service into the versioned wire form. Each
// topology is captured at a step boundary (the capture runs on its loop
// goroutine); topologies are captured sequentially, so the snapshot is
// per-topology consistent, not a cross-topology instant — topologies
// share no state, so that is the strongest consistency there is.
func (s *Service) Snapshot() (*persist.ServiceSnapshot, error) {
	snap := &persist.ServiceSnapshot{
		Version: persist.ServiceSnapshotVersion,
		Kind:    persist.ServiceSnapshotKind,
	}
	for _, name := range s.Names() {
		tp := s.topology(name)
		if tp == nil {
			continue
		}
		var ts persist.TopologyState
		var innerErr error
		err := tp.do(func() {
			es, err := tp.eng.Snapshot()
			if err != nil {
				innerErr = err
				return
			}
			ts = persist.TopologyState{
				Name:      tp.name,
				Network:   persist.SnapshotNetwork(tp.g),
				FaultSpec: tp.faultSpec,
				FaultSeed: tp.faultSeed,
				AutoStep:  tp.autoStep,
				Engine:    *es,
			}
			tnames := make([]string, 0, len(tp.quotas))
			for n := range tp.quotas {
				tnames = append(tnames, n)
			}
			sort.Strings(tnames)
			for _, n := range tnames {
				ts.Tenants = append(ts.Tenants, tp.quotas[n].state(n))
			}
		})
		if err != nil {
			return nil, fmt.Errorf("service: snapshot %q: %w", name, err)
		}
		if innerErr != nil {
			return nil, fmt.Errorf("service: snapshot %q: %w", name, innerErr)
		}
		snap.Topologies = append(snap.Topologies, ts)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// Restore thaws a service snapshot in a fresh process: networks are
// rebuilt and re-validated, fault specs re-bound with their original
// seeds, engines restored RNG-and-all, and quota buckets resume their
// token balances and ledgers (refill clocks restart at now — the dead
// process's wall-clock gap earns no tokens).
func Restore(snap *persist.ServiceSnapshot, opts Options) (*Service, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Topologies) == 0 {
		return nil, fmt.Errorf("service: snapshot serves no topologies")
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Service{now: now, topos: make(map[string]*Topology, len(snap.Topologies))}
	for i := range snap.Topologies {
		ts := &snap.Topologies[i]
		g, err := persist.RestoreNetwork(ts.Network)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: restore %q: %w", ts.Name, err)
		}
		model, err := bindFaults(ts.FaultSpec, g, ts.FaultSeed)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: restore %q: %w", ts.Name, err)
		}
		tp := &Topology{
			name: ts.Name, g: g,
			faultSpec: ts.FaultSpec, faultSeed: ts.FaultSeed,
			autoStep: ts.AutoStep, lambda: ts.Engine.Lambda, now: now,
			cmds: make(chan func()),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		eng, err := dynamic.Restore(g, &ts.Engine, dynamic.Hooks{
			Faults:   model,
			OnWindow: tp.recordWindow,
		})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("service: restore %q: %w", ts.Name, err)
		}
		tp.eng = eng
		tp.quotas = make(map[string]*bucket, len(ts.Tenants))
		for _, q := range ts.Tenants {
			tp.quotas[q.Name] = restoreBucket(q, now())
		}
		go tp.loop()
		s.topos[ts.Name] = tp
		s.order = append(s.order, ts.Name)
	}
	sort.Strings(s.order)
	return s, nil
}
