package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPAPI(t *testing.T) {
	s, err := New([]TopologyConfig{manualCfg(t, "bfly")}, Options{Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Submit a mixed batch over the wire.
	resp := postJSON(t, srv.URL+"/v1/topologies/bfly/batches", BatchRequest{
		Tenant: "gold",
		Pairs:  []Pair{{Src: 0, Dst: 60}},
		Random: 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	br := decodeBody[BatchResult](t, resp)
	if br.Offered != 10 || br.Admitted+len(br.Rejected) != 10 {
		t.Fatalf("batch result: %+v", br)
	}

	// Drive the manual engine over the wire until the batch drains.
	for i := 0; i < 100; i++ {
		resp = postJSON(t, srv.URL+"/v1/topologies/bfly/advance", map[string]int{"steps": 10})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("advance status %d", resp.StatusCode)
		}
		resp.Body.Close()
		get, err := http.Get(srv.URL + "/v1/topologies/bfly")
		if err != nil {
			t.Fatal(err)
		}
		st := decodeBody[TopologyStats](t, get)
		if st.Live == 0 && st.QueueDepth == 0 {
			if st.Delivered != br.Admitted {
				t.Fatalf("delivered %d != admitted %d", st.Delivered, br.Admitted)
			}
			break
		}
		if i == 99 {
			t.Fatal("batch never drained over HTTP")
		}
	}

	// Window flush endpoint.
	resp = postJSON(t, srv.URL+"/v1/topologies/bfly/windows", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
	resp.Body.Close()
	get, err := http.Get(srv.URL + "/v1/topologies/bfly")
	if err != nil {
		t.Fatal(err)
	}
	if st := decodeBody[TopologyStats](t, get); st.LastWindow == nil {
		t.Error("no window after explicit flush")
	}

	// Topology listing.
	get, err = http.Get(srv.URL + "/v1/topologies")
	if err != nil {
		t.Fatal(err)
	}
	if all := decodeBody[[]TopologyStats](t, get); len(all) != 1 || all[0].Name != "bfly" {
		t.Errorf("listing: %+v", all)
	}

	// Error mapping: 404 unknown topology, 403 unknown tenant, 400 bad
	// JSON and bad advance.
	errCases := []struct {
		url  string
		body string
		want int
	}{
		{"/v1/topologies/ghost/batches", `{"tenant":"gold","random":1}`, http.StatusNotFound},
		{"/v1/topologies/bfly/batches", `{"tenant":"ghost","random":1}`, http.StatusForbidden},
		{"/v1/topologies/bfly/batches", `{not json`, http.StatusBadRequest},
		{"/v1/topologies/bfly/batches", `{"tenant":"gold"}`, http.StatusBadRequest},
		{"/v1/topologies/bfly/batches", `{"tenant":"gold","surprise":1}`, http.StatusBadRequest},
		{"/v1/topologies/bfly/advance", `{"steps":0}`, http.StatusBadRequest},
		{"/v1/topologies/ghost/advance", `{"steps":5}`, http.StatusNotFound},
	}
	for _, c := range errCases {
		resp, err := http.Post(srv.URL+c.url, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %s: status %d, want %d", c.url, c.body, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}

	// Unknown topology stats → 404.
	get, err = http.Get(srv.URL + "/v1/topologies/ghost")
	if err != nil {
		t.Fatal(err)
	}
	if get.StatusCode != http.StatusNotFound {
		t.Errorf("ghost stats status %d", get.StatusCode)
	}
	get.Body.Close()
}
