package service

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/persist"
	"hotpotato/internal/topo"
)

// fakeClock is a hand-advanced quota clock for deterministic bucket
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func manualCfg(t *testing.T, name string) TopologyConfig {
	t.Helper()
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	return TopologyConfig{
		Name:    name,
		Network: g,
		Engine: dynamic.Config{
			Lambda: 0, Seed: 42, Window: 25,
			Retry: dynamic.RetryPolicy{MaxAttempts: 6, BaseDelay: 1, MaxDelay: 8},
		},
		AutoStep: false,
		Tenants: []TenantQuota{
			{Name: "gold", Rate: 1000, Burst: 1000},
			{Name: "free", Rate: 1, Burst: 4},
		},
	}
}

// drainManual advances a manual topology until the engine is idle.
func drainManual(t *testing.T, s *Service, name string) TopologyStats {
	t.Helper()
	for i := 0; i < 1000; i++ {
		st, err := s.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Live == 0 && st.QueueDepth == 0 {
			return st
		}
		if _, err := s.Advance(name, 10); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("topology never drained")
	return TopologyStats{}
}

// TestQuotaEnforcement is the acceptance criterion: a tenant offered
// far beyond its budget shows Dropped > 0 and a positive DropRate; a
// tenant within budget shows DropRate == 0. The clock is fake, so the
// free bucket never refills mid-test.
func TestQuotaEnforcement(t *testing.T) {
	clk := newFakeClock()
	s, err := New([]TopologyConfig{manualCfg(t, "bfly")}, Options{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := s.SubmitBatch("bfly", BatchRequest{Tenant: "gold", Random: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 20 || res.QuotaDropped != 0 {
		t.Fatalf("gold within budget: %+v", res)
	}
	res, err = s.SubmitBatch("bfly", BatchRequest{Tenant: "free", Random: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 4 || res.QuotaDropped != 16 {
		t.Fatalf("free 5x over budget: %+v", res)
	}

	st := drainManual(t, s, "bfly")
	gold, free := st.Tenants["gold"], st.Tenants["free"]
	if gold.DropRate != 0 || gold.Dropped != 0 {
		t.Errorf("gold dropped: %+v", gold)
	}
	if free.Dropped == 0 || free.DropRate <= 0 {
		t.Errorf("free not gated: %+v", free)
	}
	if free.Offered != 20 || free.QuotaDropped != 16 {
		t.Errorf("free ledger: %+v", free)
	}
	if gold.Delivered != 20 || free.Delivered != 4 {
		t.Errorf("deliveries: gold=%+v free=%+v", gold, free)
	}

	// Refill: after 2 simulated seconds the free bucket holds 2 tokens.
	clk.advance(2 * time.Second)
	res, err = s.SubmitBatch("bfly", BatchRequest{Tenant: "free", Random: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 || res.QuotaDropped != 1 {
		t.Errorf("refill admitted %d dropped %d, want 2/1", res.Admitted, res.QuotaDropped)
	}

	// Unknown tenant and unknown topology are rejected, not defaulted.
	if _, err := s.SubmitBatch("bfly", BatchRequest{Tenant: "ghost", Random: 1}); err == nil {
		t.Error("unknown tenant accepted")
	}
	if _, err := s.SubmitBatch("nope", BatchRequest{Tenant: "gold", Random: 1}); err == nil {
		t.Error("unknown topology accepted")
	}
}

// TestServiceKillAndRestore is the tentpole contract end to end: a
// service snapshotted mid-run and restored "in a fresh process" (full
// JSON round trip) finishes with the same trace digest and totals as
// the same submission sequence run uninterrupted.
func TestServiceKillAndRestore(t *testing.T) {
	// The deterministic script: two batches, 30 steps, another batch,
	// then drain. run executes it with an optional kill after the
	// partial advance.
	script := func(s *Service) {
		t.Helper()
		mustBatch := func(req BatchRequest) {
			if _, err := s.SubmitBatch("bfly", req); err != nil {
				t.Fatal(err)
			}
		}
		mustBatch(BatchRequest{Tenant: "gold", Random: 15})
		mustBatch(BatchRequest{Tenant: "free", Random: 6}) // 2 quota-dropped
		if _, err := s.Advance("bfly", 30); err != nil {
			t.Fatal(err)
		}
	}
	finish := func(s *Service) TopologyStats {
		t.Helper()
		if _, err := s.SubmitBatch("bfly", BatchRequest{Tenant: "gold", Random: 10}); err != nil {
			t.Fatal(err)
		}
		return drainManual(t, s, "bfly")
	}
	cfg := func() TopologyConfig {
		c := manualCfg(t, "bfly")
		c.FaultSpec = "flap:period=30,down=5,rate=0.25"
		c.FaultSeed = 7
		return c
	}

	// Uninterrupted reference run.
	ref, err := New([]TopologyConfig{cfg()}, Options{Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	script(ref)
	want := finish(ref)
	ref.Close()

	// Interrupted run: same script, then SIGTERM-style freeze.
	s, err := New([]TopologyConfig{cfg()}, Options{Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	script(s)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // the old process dies

	// Cross the process boundary through the real serializer.
	var buf strings.Builder
	if err := persist.WriteServiceSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	thawed, err := persist.ReadServiceSnapshot(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(thawed, Options{Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	got := finish(restored)
	if got.Digest != want.Digest {
		t.Errorf("restored digest %x != uninterrupted %x", got.Digest, want.Digest)
	}
	if got.Delivered != want.Delivered || got.Offered != want.Offered ||
		got.Dropped != want.Dropped || got.Deflections != want.Deflections ||
		got.FaultBlocked != want.FaultBlocked || got.Step != want.Step {
		t.Errorf("restored totals diverged:\n%+v\nvs\n%+v", got, want)
	}
	for name, w := range want.Tenants {
		if g := got.Tenants[name]; g != w {
			t.Errorf("tenant %s diverged: %+v vs %+v", name, g, w)
		}
	}
}

// TestSnapshotWhileAutoStepping: snapshots of a free-running topology
// land on a step boundary and restore cleanly — no torn state under the
// race detector.
func TestSnapshotWhileAutoStepping(t *testing.T) {
	cfg := manualCfg(t, "busy")
	cfg.AutoStep = true
	cfg.Engine.Lambda = 0.2 // endogenous load keeps the loop stepping
	s, err := New([]TopologyConfig{cfg}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SubmitBatch("busy", BatchRequest{Tenant: "gold", Random: 10}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Stats("busy")
		if err != nil {
			t.Fatal(err)
		}
		if st.Step > 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-step loop never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	restored.Close()
}

// TestVarsEncodable: the expvar view must always be JSON-encodable —
// the NaN regression applies to the service surface too, including the
// zero-traffic state where every ratio's denominator is 0.
func TestVarsEncodable(t *testing.T) {
	s, err := New([]TopologyConfig{manualCfg(t, "bfly")}, Options{Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check := func(stage string) {
		v := s.Vars().String() // expvar renders via json.Marshal
		if !json.Valid([]byte(v)) {
			t.Fatalf("%s: expvar output invalid JSON: %s", stage, v)
		}
		if strings.Contains(v, "NaN") || strings.Contains(v, "Inf") {
			t.Fatalf("%s: expvar output poisoned: %s", stage, v)
		}
	}
	check("zero traffic")
	if _, err := s.SubmitBatch("bfly", BatchRequest{Tenant: "free", Random: 10}); err != nil {
		t.Fatal(err)
	}
	drainManual(t, s, "bfly")
	check("after traffic")
}

// TestServiceConfigValidation: bad configurations fail at New, not
// mid-request.
func TestServiceConfigValidation(t *testing.T) {
	base := manualCfg(t, "ok")
	cases := map[string]func() []TopologyConfig{
		"no topologies": func() []TopologyConfig { return nil },
		"unnamed":       func() []TopologyConfig { c := base; c.Name = ""; return []TopologyConfig{c} },
		"duplicate":     func() []TopologyConfig { return []TopologyConfig{base, base} },
		"bounded steps": func() []TopologyConfig { c := base; c.Engine.Steps = 100; return []TopologyConfig{c} },
		"bad fault spec": func() []TopologyConfig {
			c := base
			c.FaultSpec = "warp:factor=9"
			return []TopologyConfig{c}
		},
		"unnamed tenant": func() []TopologyConfig {
			c := base
			c.Tenants = []TenantQuota{{Rate: 1, Burst: 1}}
			return []TopologyConfig{c}
		},
		"half quota": func() []TopologyConfig {
			c := base
			c.Tenants = []TenantQuota{{Name: "x", Rate: 1, Burst: 0}}
			return []TopologyConfig{c}
		},
		"dup tenant": func() []TopologyConfig {
			c := base
			c.Tenants = []TenantQuota{{Name: "x", Rate: 1, Burst: 1}, {Name: "x", Rate: 2, Burst: 2}}
			return []TopologyConfig{c}
		},
	}
	for name, mk := range cases {
		if s, err := New(mk(), Options{}); err == nil {
			s.Close()
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestStoppedTopology: operations against a closed service fail with
// ErrStopped instead of hanging.
func TestStoppedTopology(t *testing.T) {
	s, err := New([]TopologyConfig{manualCfg(t, "bfly")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	done := make(chan error, 1)
	go func() {
		_, err := s.Stats("bfly")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("stats on stopped topology succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stats on stopped topology hung")
	}
}
