package service

import (
	"fmt"
	"math"
	"time"

	"hotpotato/internal/persist"
)

// TenantQuota declares one tenant's admission budget on a topology: a
// token bucket refilled at Rate packets per second up to Burst. Rate 0
// with Burst 0 means unlimited (the bucket never gates). Only declared
// tenants may submit — an unknown tenant name is rejected outright, it
// does not default to unlimited.
type TenantQuota struct {
	Name  string  `json:"name"`
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
}

func (q TenantQuota) validate() error {
	if q.Name == "" {
		return fmt.Errorf("service: tenant without a name")
	}
	if q.Rate < 0 || q.Burst < 0 || math.IsNaN(q.Rate) || math.IsNaN(q.Burst) ||
		math.IsInf(q.Rate, 0) || math.IsInf(q.Burst, 0) {
		return fmt.Errorf("service: tenant %q quota rate=%g burst=%g invalid", q.Name, q.Rate, q.Burst)
	}
	if (q.Rate == 0) != (q.Burst == 0) {
		return fmt.Errorf("service: tenant %q quota needs both rate and burst (or neither for unlimited)", q.Name)
	}
	return nil
}

// bucket is one tenant's live token bucket plus its quota-level ledger.
// It is owned by the topology loop goroutine; no locking.
type bucket struct {
	rate, burst float64
	tokens      float64
	last        time.Time

	offered      int // every packet the tenant tried to submit
	quotaDropped int // packets the bucket rejected before the engine saw them
}

func newBucket(q TenantQuota, now time.Time) *bucket {
	// A fresh bucket starts full: a tenant's first burst is admitted.
	return &bucket{rate: q.Rate, burst: q.Burst, tokens: q.Burst, last: now}
}

// unlimited reports whether the bucket gates at all.
func (b *bucket) unlimited() bool { return b.rate == 0 && b.burst == 0 }

// take offers n packets at time now and returns how many the bucket
// admits (a prefix: callers admit the first k items of the batch).
func (b *bucket) take(n int, now time.Time) int {
	b.offered += n
	if b.unlimited() {
		return n
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens = math.Min(b.burst, b.tokens+el*b.rate)
	}
	b.last = now
	k := int(b.tokens)
	if k > n {
		k = n
	}
	b.tokens -= float64(k)
	b.quotaDropped += n - k
	return k
}

// state freezes the bucket for a service snapshot.
func (b *bucket) state(name string) persist.TenantQuotaState {
	return persist.TenantQuotaState{
		Name: name, Rate: b.rate, Burst: b.burst, Tokens: b.tokens,
		Offered: b.offered, QuotaDropped: b.quotaDropped,
	}
}

// restoreBucket thaws a snapshot bucket. The refill clock restarts at
// now: wall-clock elapsed across the process gap intentionally does not
// refill tokens (the gap did not serve traffic either).
func restoreBucket(st persist.TenantQuotaState, now time.Time) *bucket {
	return &bucket{
		rate: st.Rate, burst: st.Burst, tokens: st.Tokens, last: now,
		offered: st.Offered, quotaDropped: st.QuotaDropped,
	}
}
