package service

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTenants parses the command-line tenant table syntax used by
// openload -serve and loadgen:
//
//	gold:rate=200,burst=400;free:rate=20,burst=40;anon
//
// Tenants are ';'-separated; each is a name optionally followed by
// ':rate=R,burst=B'. A bare name declares an unlimited tenant. The
// syntax deliberately mirrors the fault-spec style in docs/FAULTS.md.
func ParseTenants(spec string) ([]TenantQuota, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("service: empty tenant spec")
	}
	var out []TenantQuota
	seen := make(map[string]bool)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, params, _ := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		q := TenantQuota{Name: name}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("service: tenant %q: %q is not key=value", name, kv)
				}
				x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
				if err != nil {
					return nil, fmt.Errorf("service: tenant %q: %s: %w", name, key, err)
				}
				switch strings.TrimSpace(key) {
				case "rate":
					q.Rate = x
				case "burst":
					q.Burst = x
				default:
					return nil, fmt.Errorf("service: tenant %q: unknown key %q", name, key)
				}
			}
		}
		if err := q.validate(); err != nil {
			return nil, err
		}
		if seen[q.Name] {
			return nil, fmt.Errorf("service: duplicate tenant %q in spec", q.Name)
		}
		seen[q.Name] = true
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: tenant spec %q declares no tenants", spec)
	}
	return out, nil
}
