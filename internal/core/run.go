package core

import (
	"fmt"

	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

// Result is a completed (or budget-exhausted) frame-routing run.
type Result struct {
	// Steps is the number of executed steps; Done is whether every
	// packet was absorbed.
	Steps int
	Done  bool

	// Problem facts.
	C, D, L, N int

	// Params used.
	Params Params

	// Engine metrics, router stats and the invariant report (the
	// report is zero-valued when the run was started without checking).
	Engine     sim.Metrics
	Router     Stats
	Invariants InvariantReport

	// PaperBound is the step bound of Proposition 4.25 for these
	// parameters: (NumSets*M + L) * M * W.
	PaperBound int

	// Latency breakdown. A packet's completion splits into the wait for
	// its frame to arrive (injection time) and the in-network transit
	// (absorb - inject); the sum of the two maxima bounds Steps. The
	// schedule dominates: transit is small compared to injection wait.
	InjectWait stats.Summary // injection times
	Transit    stats.Summary // absorb - inject, per packet

	// Phases profiles the run phase by phase when RunOptions.Profile is
	// set (nil otherwise).
	Phases []PhaseStats
}

// PhaseStats is the per-phase slice of a profiled run.
type PhaseStats struct {
	Phase    int
	Injected int // packets injected during this phase
	Absorbed int // packets absorbed during this phase
	Active   int // active packets at phase end
	Waiting  int // of which in the wait state at phase end
}

// Ratio returns Steps normalized by C+L, the quantity Theorem 4.26
// bounds by a polylog.
func (r *Result) Ratio() float64 {
	return float64(r.Steps) / float64(r.C+r.L)
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("frame: steps=%d done=%v C=%d D=%d L=%d N=%d steps/(C+L)=%.1f defl/pkt=%.2f",
		r.Steps, r.Done, r.C, r.D, r.L, r.N, r.Ratio(),
		float64(r.Engine.TotalDeflections())/float64(r.N))
}

// RunOptions configure Run.
type RunOptions struct {
	// Seed for the engine RNG (set assignment, tie-breaking,
	// excitation).
	Seed int64
	// MaxSteps caps the run; 0 selects 4x the paper bound for the
	// parameters (generous slack for practical-parameter stragglers).
	MaxSteps int
	// Check attaches an InvariantChecker.
	Check bool
	// CongestionEvery/PathCheckEvery tune the checker (see
	// InvariantChecker); zero keeps its defaults.
	CongestionEvery int
	PathCheckEvery  int
	// Observer, if non-nil, is attached to the engine (tracing).
	Observer sim.Observer
	// Probes, if non-empty, are attached through an obs.Collector
	// keyed to the router's schedule: each receives the annotated
	// per-step/per-round/per-phase series, byte-identical for every
	// Workers/Shards setting, with the trailing partial round and
	// phase flushed after the run.
	Probes []obs.Probe
	// Events, if non-nil, receives packet lifecycle events from both
	// the engine (inject/deflect/stall/absorb) and the frame router
	// (excite/restore).
	Events sim.EventSink
	// Profile records per-phase injection/absorption/wait counts into
	// Result.Phases.
	Profile bool
	// Workers/Shards configure the engine's sharded parallel step path
	// (sim.Engine.SetParallelism). Workers <= 1 keeps the sequential
	// path; results are byte-identical either way.
	Workers int
	Shards  int
	// Faults, if non-nil, is installed as the engine's fault model for
	// this run (sim.Engine.Faults): a pure function of (edge, step)
	// marking edges down. Per-run — a Runner reused across seeds gets
	// exactly the model each RunOptions carries, nil clearing it.
	Faults sim.FaultModel
}

// Runner executes frame runs on one problem, reusing the engine and
// router across seeds through sim.Engine.Reset: the flat occupancy
// backing, path arena, slot scratch, worker pool and the router's
// per-packet arrays all survive from run to run, so per-trial cost in
// an ensemble is the routing itself rather than setup. Not safe for
// concurrent use; Monte-Carlo callers keep one Runner per worker.
type Runner struct {
	p      *workload.Problem
	params Params
	router *Frame
	eng    *sim.Engine
}

// NewRunner builds a reusable runner. workers/shards configure the
// engine's parallel step path as in RunOptions (<= 1 disables it).
func NewRunner(p *workload.Problem, params Params, workers, shards int) *Runner {
	router := NewFrame(params)
	eng := sim.NewEngine(p, router, 0)
	if workers > 1 {
		eng.SetParallelism(workers, shards)
	}
	return &Runner{p: p, params: params, router: router, eng: eng}
}

// Close releases the engine's worker pool (no-op when sequential). The
// runner must not be used afterwards.
func (r *Runner) Close() { r.eng.Close() }

// Run executes one seeded run, rewinding the reused engine first. The
// per-run RunOptions fields (Seed, MaxSteps, Check, Observer, Profile)
// apply; Workers/Shards are fixed at construction and ignored here.
func (r *Runner) Run(opt RunOptions) *Result {
	r.eng.Reset(opt.Seed)
	return r.finish(opt)
}

// Run executes the frame algorithm on the problem and returns the
// result.
func Run(p *workload.Problem, params Params, opt RunOptions) *Result {
	r := NewRunner(p, params, opt.Workers, opt.Shards)
	defer r.Close()
	r.eng.Reset(opt.Seed)
	return r.finish(opt)
}

func (r *Runner) finish(opt RunOptions) *Result {
	p, params, router, eng := r.p, r.params, r.router, r.eng
	// Reset does not touch Faults (it is engine configuration, not run
	// state), so install the per-run model explicitly every run.
	eng.Faults = opt.Faults
	var checker *InvariantChecker
	if opt.Check {
		checker = NewInvariantChecker(router)
		if opt.CongestionEvery > 0 {
			checker.CongestionEvery = opt.CongestionEvery
		}
		if opt.PathCheckEvery > 0 {
			checker.PathCheckEvery = opt.PathCheckEvery
		}
		checker.Attach(eng)
	}
	if opt.Observer != nil {
		eng.AddObserver(opt.Observer)
	}
	var coll *obs.Collector
	if len(opt.Probes) > 0 {
		coll = obs.NewCollector(router.Schedule(), opt.Probes...)
		coll.Attach(eng)
	}
	if opt.Events != nil {
		eng.AttachEventSink(opt.Events)
		router.Events = opt.Events
	}
	var phases []PhaseStats
	if opt.Profile {
		sched := router.Schedule()
		prevInjected, prevAbsorbed := 0, 0
		eng.AddObserver(func(t int, e *sim.Engine) {
			if !sched.IsPhaseEnd(t) {
				return
			}
			_, _, waiting := router.StateCounts(e)
			phases = append(phases, PhaseStats{
				Phase:    sched.PhaseOf(t),
				Injected: e.M.Injected - prevInjected,
				Absorbed: e.M.Absorbed - prevAbsorbed,
				Active:   e.M.Injected - e.M.Absorbed,
				Waiting:  waiting,
			})
			prevInjected, prevAbsorbed = e.M.Injected, e.M.Absorbed
		})
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4 * params.TotalSteps(p.L())
	}
	steps, done := eng.Run(maxSteps)
	if coll != nil {
		coll.Flush()
	}
	res := &Result{
		Steps:      steps,
		Done:       done,
		C:          p.C,
		D:          p.D,
		L:          p.L(),
		N:          p.N(),
		Params:     params,
		Engine:     eng.M,
		Router:     router.S,
		PaperBound: params.TotalSteps(p.L()),
	}
	if checker != nil {
		res.Invariants = checker.Report
	}
	var waits, transits []float64
	for i := range eng.Packets {
		pk := &eng.Packets[i]
		if pk.InjectTime >= 0 {
			waits = append(waits, float64(pk.InjectTime))
		}
		if pk.Absorbed {
			transits = append(transits, float64(pk.Latency()))
		}
	}
	res.InjectWait = stats.Summarize(waits)
	res.Transit = stats.Summarize(transits)
	res.Phases = phases
	return res
}
