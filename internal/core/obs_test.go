package core

import (
	"bytes"
	"math/rand"
	"testing"

	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// TestExcitedPriorityMatchesEngine pins the cross-package contract:
// the engine counts StepSnapshot.Excited as requests at or above
// sim.ExcitedPriority, and the frame router's excited state must map
// to exactly that priority (with its other priorities strictly below).
func TestExcitedPriorityMatchesEngine(t *testing.T) {
	if prioExcited != sim.ExcitedPriority {
		t.Fatalf("prioExcited = %d, sim.ExcitedPriority = %d; the engine's excitation census is wrong", prioExcited, sim.ExcitedPriority)
	}
	if prioWait >= sim.ExcitedPriority || prioNormal >= sim.ExcitedPriority {
		t.Fatalf("non-excited priorities (%d, %d) reach the excitation threshold %d", prioWait, prioNormal, sim.ExcitedPriority)
	}
}

// TestObsParallelDeterminism is the observability acceptance
// criterion: with a collector, time series and lifecycle ring
// attached, workers=1 and workers=N runs of the frame router emit
// byte-identical per-step, per-round and per-phase series and the
// identical event stream.
func TestObsParallelDeterminism(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rand.New(rand.NewSource(13)), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	params := ParamsPractical(p.C, p.L(), p.N(),
		PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})

	capture := func(workers, shards int) ([]byte, []byte) {
		ts := &obs.TimeSeries{}
		ring := obs.NewLifecycle(1 << 16)
		res := Run(p, params, RunOptions{
			Seed: 11, Workers: workers, Shards: shards,
			Probes: []obs.Probe{ts}, Events: ring,
		})
		if !res.Done {
			t.Fatalf("workers=%d: run did not complete", workers)
		}
		if ring.Dropped() != 0 {
			t.Fatalf("workers=%d: ring dropped %d events; grow the test ring", workers, ring.Dropped())
		}
		var series bytes.Buffer
		if err := ts.WriteJSON(&series); err != nil {
			t.Fatal(err)
		}
		var events bytes.Buffer
		if err := ring.WriteCSV(&events); err != nil {
			t.Fatal(err)
		}
		if len(ts.Phases) == 0 || ring.Len() == 0 {
			t.Fatalf("workers=%d: empty series (phases=%d events=%d); the scenario is vacuous", workers, len(ts.Phases), ring.Len())
		}
		return series.Bytes(), events.Bytes()
	}

	wantSeries, wantEvents := capture(1, 0)
	for _, cfg := range [][2]int{{2, 0}, {4, 0}, {4, 5}} {
		gotSeries, gotEvents := capture(cfg[0], cfg[1])
		if !bytes.Equal(gotSeries, wantSeries) {
			t.Errorf("workers=%d shards=%d: time series differs from sequential", cfg[0], cfg[1])
		}
		if !bytes.Equal(gotEvents, wantEvents) {
			t.Errorf("workers=%d shards=%d: event stream differs from sequential", cfg[0], cfg[1])
		}
	}
}

// TestRunOptionsObsWiring: RunOptions.Probes sees a flushed trailing
// window and the excite/restore events balance per packet.
func TestRunOptionsObsWiring(t *testing.T) {
	p, err := workload.MeshHard(6)
	if err != nil {
		t.Fatal(err)
	}
	params := ParamsPractical(p.C, p.L(), p.N(),
		PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	ts := &obs.TimeSeries{}
	ring := obs.NewLifecycle(1 << 16)
	res := Run(p, params, RunOptions{Seed: 3, Probes: []obs.Probe{ts}, Events: ring})
	if !res.Done {
		t.Fatal("run did not complete")
	}
	if len(ts.Steps) != res.Steps {
		t.Fatalf("step rows = %d, steps = %d", len(ts.Steps), res.Steps)
	}
	if len(ts.Phases) == 0 {
		t.Fatal("no phase rows; Flush not wired")
	}
	last := ts.Phases[len(ts.Phases)-1]
	if last.Step != res.Steps-1 {
		t.Errorf("trailing phase window ends at step %d, run ended at %d", last.Step, res.Steps-1)
	}

	// Per packet: excites and restores alternate, starting with excite,
	// and balance out by the end (every episode is closed by a restore —
	// target, deflection, boundary reset, or absorption).
	open := map[sim.PacketID]bool{}
	excites, restores := 0, 0
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case sim.EventExcite:
			if open[ev.Packet] {
				t.Fatalf("packet %d excited twice without a restore (t=%d)", ev.Packet, ev.Step)
			}
			open[ev.Packet] = true
			excites++
		case sim.EventRestore:
			if !open[ev.Packet] {
				t.Fatalf("packet %d restored without an open excitation (t=%d)", ev.Packet, ev.Step)
			}
			open[ev.Packet] = false
			restores++
		}
	}
	for pid, o := range open {
		if o {
			t.Errorf("packet %d's excitation episode never closed", pid)
		}
	}
	if excites != restores {
		t.Errorf("%d excites vs %d restores", excites, restores)
	}
	if excites != res.Router.Excitations {
		t.Errorf("event stream saw %d excitations, router stats %d", excites, res.Router.Excitations)
	}
}
