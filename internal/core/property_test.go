package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// Property: across random networks, workloads and parameter draws, the
// frame router always (a) completes within 4x its schedule bound,
// (b) keeps every deflection safe (Lemma 2.1), and (c) never grows
// frontier-set congestion (Lemma 4.10). These two lemmas are
// deterministic consequences of the mechanism — not w.h.p. statements —
// so they must hold on every draw.
func TestFramePropertiesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property soak skipped in -short")
	}
	prop := func(seed int64, depthRaw, scRaw, slackRaw, rfRaw uint8) bool {
		depth := int(depthRaw%24) + 8
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Random(rng, depth, 3, 5, 0.4)
		if err != nil {
			return false
		}
		p, err := workload.Random(g, rng, 0.4)
		if err != nil {
			return true // degenerate draw
		}
		params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{
			SetCongestion: float64(scRaw%6) + 2,
			FrameSlack:    int(slackRaw%6) + 1,
			RoundFactor:   int(rfRaw%4) + 2,
		})
		res := Run(p, params, RunOptions{Seed: seed, Check: true})
		if !res.Done {
			return false
		}
		if res.Engine.UnsafeDeflections() != 0 {
			return false
		}
		if res.Invariants.IbPathInvalid != 0 {
			return false
		}
		if res.Invariants.IeCongestionExceeded != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the schedule bound is respected — completion never exceeds
// TotalSteps for clean (violation-free) runs at default parameters.
func TestFrameWithinScheduleBoundQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property soak skipped in -short")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Random(rng, 20, 3, 5, 0.4)
		if err != nil {
			return false
		}
		p, err := workload.Random(g, rng, 0.4)
		if err != nil {
			return true
		}
		params := DefaultPractical(p.C, p.L(), p.N())
		res := Run(p, params, RunOptions{Seed: seed, Check: true})
		if !res.Done {
			return false
		}
		if res.Invariants.Clean() && res.Steps > res.PaperBound {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
