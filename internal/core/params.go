// Package core implements the paper's contribution: the randomized
// hot-potato routing algorithm for leveled networks with routing time
// O((C+L)·ln⁹(LN)) w.h.p. (Busch, SPAA 2002, Sections 2–4).
//
// Packets are partitioned uniformly at random into frontier-sets; each
// set rides a frontier-frame of M consecutive levels that shifts one
// level forward per phase. A phase is M rounds of W steps. Within a
// round, packets chase a target level that retreats toward the back of
// the frame, enter a wait state at their target nodes, and oscillate
// there until the phase ends. States carry priorities
// (excited > normal > wait); deflections are backward and safe.
package core

import (
	"fmt"
	"math"
)

// Params are the algorithm's tunables. The paper fixes them as
// functions of C, L and N (Section 2.1, reconstructed — see
// ParamsFromPaper); ParamsPractical scales them down to
// simulation-friendly values with the same structure.
type Params struct {
	// NumSets is the number of frontier-sets (the paper's aC).
	NumSets int
	// M is the number of levels in a frontier-frame, which also equals
	// the number of rounds per phase (the paper's m).
	M int
	// W is the number of steps per round (the paper's w).
	W int
	// Q is the per-step probability that a normal packet turns excited
	// (the paper's q).
	Q float64
}

// Validate checks the parameters are usable.
func (p Params) Validate() error {
	if p.NumSets < 1 {
		return fmt.Errorf("core: NumSets must be >= 1, got %d", p.NumSets)
	}
	if p.M < 4 {
		return fmt.Errorf("core: M must be >= 4 (the last three inner-levels must be able to drain), got %d", p.M)
	}
	if p.W < 2 {
		return fmt.Errorf("core: W must be >= 2, got %d", p.W)
	}
	if p.Q <= 0 || p.Q > 1 {
		return fmt.Errorf("core: Q must be in (0,1], got %g", p.Q)
	}
	return nil
}

// StepsPerPhase returns M*W.
func (p Params) StepsPerPhase() int { return p.M * p.W }

// TotalPhases returns the phase at which the last frontier-frame has
// fully left a depth-L network: frame NumSets-1 exits at phase
// (NumSets-1)*M + L + M = NumSets*M + L (Proposition 4.25).
func (p Params) TotalPhases(L int) int {
	return p.NumSets*p.M + L
}

// TotalSteps returns the step bound of Proposition 4.25 for a depth-L
// network: TotalPhases * M * W.
func (p Params) TotalSteps(L int) int {
	return p.TotalPhases(L) * p.StepsPerPhase()
}

// String renders the parameters.
func (p Params) String() string {
	return fmt.Sprintf("sets=%d M=%d W=%d Q=%.4g", p.NumSets, p.M, p.W, p.Q)
}

// lnLN returns ln(L*N) clamped below at 2 so tiny instances do not
// degenerate the formulas.
func lnLN(L, N int) float64 {
	v := math.Log(float64(L) * float64(N))
	if v < 2 {
		v = 2
	}
	return v
}

// ParamsFromPaper returns the proof-grade constants of Section 2.1,
// reconstructed from the proofs (the published text garbles the
// parameter table; see DESIGN.md):
//
//	a  = 2e³ / ln(LN)            so that aC frontier-sets give per-set
//	                             congestion ≤ ln(LN) w.h.p. (Lemma 2.2)
//	m  = ln²(LN) + 5             (frame size; Invariant If needs slack)
//	q  = 1 / (m² ln(LN))         (Lemma 4.3: (1-mq)^{m ln(LN)} ≥ 1/2e)
//	p₁ = 1 / ((amC+L)·2amC·L·N²) (per-round failure budget)
//	w  = 4e·m²·ln(LN)·ln(1/p₁) + 3m + 1
//	                             (Lemma 4.5: enough deflection-retry
//	                             chances per round)
//
// These are intended for the analysis, not for simulation: w runs to
// millions of steps for modest LN. They are exposed so the experiment
// suite can report the paper-faithful bound alongside practical runs.
func ParamsFromPaper(C, L, N int) Params {
	ln := lnLN(L, N)
	a := 2 * math.E * math.E * math.E / ln
	m := math.Ceil(ln*ln + 5)
	q := 1 / (m * m * ln)
	amC := math.Ceil(a * float64(C))
	if amC < 1 {
		amC = 1
	}
	p1 := 1 / ((amC*m + float64(L)) * 2 * amC * m * float64(L) * float64(N) * float64(N))
	// Guard against overflow/degeneracy on absurd inputs.
	if p1 <= 0 || math.IsInf(p1, 0) || math.IsNaN(p1) {
		p1 = 1e-18
	}
	w := math.Ceil(4*math.E*m*m*ln*math.Log(1/p1) + 3*m + 1)
	return Params{
		NumSets: int(amC),
		M:       int(m),
		W:       int(w),
		Q:       q,
	}
}

// PracticalConfig scales the paper's constants down to values a
// simulation can run while preserving the algorithm's structure. Zero
// values select the defaults noted on each field.
type PracticalConfig struct {
	// SetCongestion is the per-frontier-set congestion target; the
	// number of sets is ceil(C / SetCongestion). Default ln(LN).
	SetCongestion float64
	// FrameSlack is added to the frame size beyond what the congestion
	// target needs; M = ceil(SetCongestion) + FrameSlack. Default 6.
	FrameSlack int
	// RoundFactor sets W = RoundFactor * M. Default 4.
	RoundFactor int
	// Q is the excitation probability. Default 1/(4·ln(LN)).
	Q float64
}

// ParamsPractical derives simulation-grade parameters for a problem
// with congestion C on a depth-L network with N packets. The defaults
// follow the paper's shapes with the polylog exponents reduced:
// per-set congestion stays Θ(ln LN), the frame is a small multiple of
// that, and rounds are a small multiple of the frame, so the total time
// remains O((C+L)·polylog) with far smaller constants. Experiment E8
// sweeps these knobs.
func ParamsPractical(C, L, N int, cfg PracticalConfig) Params {
	ln := lnLN(L, N)
	sc := cfg.SetCongestion
	if sc <= 0 {
		sc = ln
	}
	slack := cfg.FrameSlack
	if slack <= 0 {
		slack = 6
	}
	rf := cfg.RoundFactor
	if rf <= 0 {
		rf = 4
	}
	q := cfg.Q
	if q <= 0 {
		q = 1 / (4 * ln)
	}
	if q > 1 {
		q = 1
	}
	sets := int(math.Ceil(float64(C) / sc))
	if sets < 1 {
		sets = 1
	}
	m := int(math.Ceil(sc)) + slack
	if m < 4 {
		m = 4
	}
	return Params{
		NumSets: sets,
		M:       m,
		W:       rf * m,
		Q:       q,
	}
}

// DefaultPractical is ParamsPractical with all defaults.
func DefaultPractical(C, L, N int) Params {
	return ParamsPractical(C, L, N, PracticalConfig{})
}
