package core

import (
	"math/rand"
	"testing"

	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func TestFrameWithSetsPipelinesWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := topo.Random(rng, 20, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := workload.Waves(g, rng, 3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	const setsPerWave = 2
	params := Params{NumSets: 3 * setsPerWave, M: 6, W: 18, Q: 0.05}
	assign := wp.SetAssignment(rng, setsPerWave)
	router := NewFrameWithSets(params, assign)
	eng := sim.NewEngine(wp.Problem, router, 5)

	// Record each packet's injection time; later waves must inject
	// later (their sets' frames arrive later).
	steps, done := eng.Run(8 * params.TotalSteps(wp.L()))
	if !done {
		t.Fatalf("did not complete in %d steps", steps)
	}
	// Router must honor the explicit assignment.
	for i := 0; i < wp.N(); i++ {
		if got := router.Set(sim.PacketID(i)); got != int(assign[i]) {
			t.Fatalf("packet %d in set %d, assigned %d", i, got, assign[i])
		}
	}
	// Mean injection time strictly increases with wave index.
	sums := make([]float64, 3)
	counts := make([]int, 3)
	for i := range eng.Packets {
		w := wp.WaveOf[i]
		sums[w] += float64(eng.Packets[i].InjectTime)
		counts[w]++
	}
	prev := -1.0
	for w := 0; w < 3; w++ {
		mean := sums[w] / float64(counts[w])
		if mean <= prev {
			t.Errorf("wave %d mean injection %.1f not after wave %d (%.1f)", w, mean, w-1, prev)
		}
		prev = mean
	}
}

func TestFrameWithSetsValidation(t *testing.T) {
	params := Params{NumSets: 2, M: 4, W: 8, Q: 0.1}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range set accepted")
			}
		}()
		NewFrameWithSets(params, []int32{0, 5})
	}()

	// Length mismatch panics at Init.
	g, err := topo.Linear(6)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	router := NewFrameWithSets(params, []int32{0}) // problem has 2 packets
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	sim.NewEngine(p, router, 6)
}
