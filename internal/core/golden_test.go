package core

import (
	"testing"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// Golden regression pins: every run below is fully deterministic
// (deterministic workload construction + seeded engine), so any change
// in the engine's conflict resolution, deflection preferences, state
// machine or schedule arithmetic shows up as a changed step count.
// When a deliberate semantic change moves these numbers, re-derive them
// with `go test -run TestGolden -v` and update — the point is that it
// cannot happen silently.
func TestGoldenFrameRuns(t *testing.T) {
	cases := []struct {
		name      string
		mk        func() (*workload.Problem, error)
		params    Params
		seed      int64
		wantSteps int
	}{
		{
			name: "singlefile-linear",
			mk: func() (*workload.Problem, error) {
				g, err := topo.Linear(17)
				if err != nil {
					return nil, err
				}
				return workload.SingleFile(g, 4)
			},
			params:    Params{NumSets: 2, M: 5, W: 15, Q: 0.05},
			seed:      1,
			wantSteps: 1581,
		},
		{
			name:      "meshhard-6",
			mk:        func() (*workload.Problem, error) { return workload.MeshHard(6) },
			params:    Params{NumSets: 2, M: 6, W: 18, Q: 0.05},
			seed:      2,
			wantSteps: 1086,
		},
		{
			name:      "allcorners-8",
			mk:        func() (*workload.Problem, error) { return workload.AllCorners(8) },
			params:    Params{NumSets: 1, M: 6, W: 18, Q: 0.05},
			seed:      3,
			wantSteps: 1409,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			res := Run(p, c.params, RunOptions{Seed: c.seed, Check: true})
			if !res.Done {
				t.Fatalf("did not complete: %s", res)
			}
			if c.wantSteps == 0 {
				t.Logf("golden %s: steps=%d defl=%d", c.name, res.Steps, res.Engine.TotalDeflections())
				return
			}
			if res.Steps != c.wantSteps {
				t.Errorf("steps = %d, golden %d (engine semantics changed?)", res.Steps, c.wantSteps)
			}
			if res.Engine.UnsafeDeflections() != 0 {
				t.Errorf("unsafe deflections: %v", res.Engine.Deflections)
			}
		})
	}
}
