package core

import (
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// endStepFixture builds a one-packet line problem with an eagerly
// injected frame router and steps the engine once, so packet 0 is
// active and the router's per-packet state can be poked directly.
func endStepFixture(t *testing.T) (*Frame, *sim.Engine) {
	t.Helper()
	b := graph.NewBuilder("line6")
	nodes := make([]graph.NodeID, 6)
	for i := range nodes {
		nodes[i] = b.AddNode(i, "")
	}
	var path graph.Path
	for i := 0; i+1 < len(nodes); i++ {
		path = append(path, b.AddEdge(nodes[i], nodes[i+1]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{path})
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &workload.Problem{Name: "line6", G: g, Set: set, C: 1, D: len(path)}

	// Q is effectively zero so the only excited packets are the ones the
	// test plants by hand.
	r := NewFrame(Params{NumSets: 1, M: 4, W: 2, Q: 1e-12})
	r.EagerInjection = true
	e := sim.NewEngine(p, r, 7)
	e.Step()
	if got := e.InFlight(); got != 1 {
		t.Fatalf("in flight after one step = %d, want 1", got)
	}
	return r, e
}

// TestEndStepPhaseEndCountsExcitedFailure pins the phase-boundary
// accounting: an excitation episode that survives to a phase end fails
// there exactly as at a plain round end, so ExcitedFailures must be
// incremented before the blanket reset to normal. The seed reset the
// state without counting, skewing the Lemma 4.3 success-rate estimate
// high at every phase boundary.
func TestEndStepPhaseEndCountsExcitedFailure(t *testing.T) {
	r, e := endStepFixture(t)
	phaseEnd := r.sched.P.StepsPerPhase() - 1
	if !r.sched.IsPhaseEnd(phaseEnd) || !r.sched.IsRoundEnd(phaseEnd) {
		t.Fatalf("step %d should end both its round and its phase", phaseEnd)
	}

	r.st[0] = stateExcited
	before := r.S.ExcitedFailures
	r.EndStep(phaseEnd, e)
	if r.S.ExcitedFailures != before+1 {
		t.Errorf("ExcitedFailures = %d after phase end, want %d", r.S.ExcitedFailures, before+1)
	}
	if r.st[0] != stateNormal {
		t.Errorf("state after phase end = %v, want normal", r.st[0])
	}
}

// TestEndStepRoundEndCountsExcitedFailure covers the plain round-end
// arm of the same reset for symmetry with the phase-end regression.
func TestEndStepRoundEndCountsExcitedFailure(t *testing.T) {
	r, e := endStepFixture(t)
	roundEnd := r.sched.P.W - 1
	if !r.sched.IsRoundEnd(roundEnd) || r.sched.IsPhaseEnd(roundEnd) {
		t.Fatalf("step %d should end its round but not its phase", roundEnd)
	}

	r.st[0] = stateExcited
	before := r.S.ExcitedFailures
	r.EndStep(roundEnd, e)
	if r.S.ExcitedFailures != before+1 {
		t.Errorf("ExcitedFailures = %d after round end, want %d", r.S.ExcitedFailures, before+1)
	}
	if r.st[0] != stateNormal {
		t.Errorf("state after round end = %v, want normal", r.st[0])
	}
}

// TestEndStepPhaseEndClearsWaitWithoutFailure: a waiting packet reset
// at a phase end is neither an excitation failure nor a wait interrupt
// — it is the scheduled end of the parking period.
func TestEndStepPhaseEndClearsWaitWithoutFailure(t *testing.T) {
	r, e := endStepFixture(t)
	phaseEnd := r.sched.P.StepsPerPhase() - 1

	r.st[0] = stateWait
	r.waitNode[0] = e.Packets[0].Cur
	r.waitEdge[0] = 0
	failures, interrupts := r.S.ExcitedFailures, r.S.WaitInterrupts
	r.EndStep(phaseEnd, e)
	if r.st[0] != stateNormal {
		t.Errorf("state after phase end = %v, want normal", r.st[0])
	}
	if r.waitNode[0] != graph.NoNode || r.waitEdge[0] != graph.NoEdge {
		t.Errorf("wait anchor not cleared: node=%d edge=%d", r.waitNode[0], r.waitEdge[0])
	}
	if r.S.ExcitedFailures != failures || r.S.WaitInterrupts != interrupts {
		t.Errorf("phase-end wait reset changed counters: failures %d->%d, interrupts %d->%d",
			failures, r.S.ExcitedFailures, interrupts, r.S.WaitInterrupts)
	}
}

// TestEndStepMidRoundIsNoop: away from round and phase boundaries the
// reset must not fire at all.
func TestEndStepMidRoundIsNoop(t *testing.T) {
	r, e := endStepFixture(t)
	mid := 0 // W=2: step 0 is mid-round, step 1 ends round 0
	if r.sched.IsRoundEnd(mid) || r.sched.IsPhaseEnd(mid) {
		t.Fatalf("step %d should be a plain mid-round step", mid)
	}

	r.st[0] = stateExcited
	before := r.S
	r.EndStep(mid, e)
	if r.st[0] != stateExcited {
		t.Errorf("state after mid-round EndStep = %v, want excited (untouched)", r.st[0])
	}
	if r.S != before {
		t.Errorf("mid-round EndStep changed stats: %+v -> %+v", before, r.S)
	}
}
