package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// Packet states (Section 3). Priorities order conflicts:
// excited > normal > wait.
type state int8

const (
	stateNormal state = iota
	stateExcited
	stateWait
)

// String implements fmt.Stringer.
func (s state) String() string {
	switch s {
	case stateNormal:
		return "normal"
	case stateExcited:
		return "excited"
	case stateWait:
		return "wait"
	}
	return fmt.Sprintf("state(%d)", int8(s))
}

// Engine priorities for each state.
const (
	prioWait    int64 = 0
	prioNormal  int64 = 1
	prioExcited int64 = 2
)

// Stats aggregates router-level counters for one run.
type Stats struct {
	// Excitations counts normal->excited promotions.
	Excitations int
	// WaitEntries counts normal/excited->wait transitions.
	WaitEntries int
	// WaitInterrupts counts wait packets deflected back to normal.
	WaitInterrupts int
	// LatePhaseInjections counts packets injected after the first step
	// of their scheduled injection phase (the paper's "extreme case").
	LatePhaseInjections int
	// ExcitedSuccesses counts excitation episodes that ended with the
	// packet reaching its target (entering wait or being absorbed);
	// ExcitedFailures counts episodes ended by deflection or round end.
	// Lemma 4.3 lower-bounds the per-episode success chance by 1/2e
	// under the paper's q.
	ExcitedSuccesses int
	ExcitedFailures  int
}

// Frame is the paper's routing algorithm as a sim.Router.
type Frame struct {
	P Params

	// DisableWait removes the wait state (ablation): packets keep
	// chasing their targets instead of parking and oscillating. Set
	// before the engine's first step. Expect invariant Ic to break —
	// without parking, a packet that reaches the frontier keeps walking
	// forward out of its frame; the wait state is what pins progress to
	// the frame schedule.
	DisableWait bool

	// EagerInjection removes the staged injection schedule (ablation):
	// packets enter at the first opportunity instead of waiting for
	// their frame to reach their source. Expect invariants Ic and Id to
	// break — early packets sit outside (ahead of) their frames and mix
	// with other sets; the injection schedule is what keeps the frames
	// disjoint.
	EagerInjection bool

	// Events, when non-nil, receives the router's excite/restore
	// lifecycle events (the engine emits inject/deflect/stall/absorb
	// itself). Init clears it — matching the engine's own per-run
	// sinks — so wiring assigns it after each Engine.Reset.
	Events sim.EventSink

	g     *graph.Leveled
	rng   *rand.Rand
	sched Schedule
	S     Stats

	// coinSeed keys the per-(step, packet) excitation coin (see
	// sim.CoinFloat): counter-based rather than drawn from the shared
	// sequential rng, so Request is order-independent and the router
	// can certify sim.ConcurrentRouter. Derived from the run seed at
	// Init.
	coinSeed uint64

	// assign, when non-nil, is the caller-supplied frontier-set
	// assignment applied at Init instead of the random one.
	assign []int32

	// Per-packet algorithm state, indexed by PacketID.
	set      []int32
	st       []state
	waitNode []graph.NodeID
	waitEdge []graph.EdgeID

	// evExcited/evRestore stage this step's excite/restore events per
	// packet. Request may run concurrently on shard workers but is
	// called exactly once per packet per step, so per-packet staging is
	// race-free; the staged events are flushed in deterministic order
	// at the sequential callbacks (OnDeflect, OnAbsorb, EndStep).
	// evRestore holds a sim.Restore* reason, -1 when none staged.
	evExcited []bool
	evRestore []int32

	// Stats cells bumped inside Request, which may run concurrently on
	// shard workers; flushed into S at EndStep. All other callbacks run
	// sequentially and update S directly.
	pendExcitations  atomic.Int64
	pendWaitEntries  atomic.Int64
	pendExcitedWins  atomic.Int64
	pendLateInjected atomic.Int64
}

// frameCoinSalt separates the excitation-coin stream from engine
// arbitration and any other derived stream.
const frameCoinSalt = 0xF4A3C017

// NewFrame returns a frame router with the given parameters. Packets
// are assigned to frontier-sets uniformly at random from the engine's
// seeded source at Init.
func NewFrame(p Params) *Frame {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Frame{P: p, sched: Schedule{p}}
}

// NewFrameWithSets returns a frame router with an explicit frontier-set
// assignment instead of the uniform random one: assign[i] is the set of
// packet i, in [0, P.NumSets). This supports staged (wave) arrivals:
// later sets have later injection phases, so mapping each arrival batch
// to its own block of sets pipelines the batches through the network.
// The slice length must match the packet count at Init.
func NewFrameWithSets(p Params, assign []int32) *Frame {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	for i, s := range assign {
		if s < 0 || int(s) >= p.NumSets {
			panic(fmt.Sprintf("core: set assignment %d of packet %d out of range [0,%d)", s, i, p.NumSets))
		}
	}
	return &Frame{P: p, sched: Schedule{p}, assign: assign}
}

// Name implements sim.Router.
func (r *Frame) Name() string { return "frame" }

// Schedule exposes the router's timetable (for observers and tests).
func (r *Frame) Schedule() Schedule { return r.sched }

// Set returns the frontier-set of a packet.
func (r *Frame) Set(id sim.PacketID) int { return int(r.set[id]) }

// State returns the current state name of a packet (for tracing).
func (r *Frame) State(id sim.PacketID) string { return r.st[id].String() }

// IsWaiting reports whether the packet is in the wait state.
func (r *Frame) IsWaiting(id sim.PacketID) bool { return r.st[id] == stateWait }

// StateCounts tallies the active packets by state (normal, excited,
// wait) — a live-view census for tracing tools.
func (r *Frame) StateCounts(e *sim.Engine) (normal, excited, wait int) {
	for _, i := range e.Active() {
		switch r.st[i] {
		case stateNormal:
			normal++
		case stateExcited:
			excited++
		case stateWait:
			wait++
		}
	}
	return
}

// Init implements sim.Router. It is called again on every Engine.Reset
// and fully rewinds the router — stats zeroed, per-packet state
// re-derived from the engine's (new) seed — reusing the per-packet
// slices when the packet count is unchanged, so an engine+router pair
// can serve many trials without reallocating.
func (r *Frame) Init(e *sim.Engine) {
	r.g = e.G
	r.rng = e.Rng
	r.coinSeed = sim.StreamSeed(e.Seed(), frameCoinSalt)
	r.S = Stats{}
	r.pendExcitations.Store(0)
	r.pendWaitEntries.Store(0)
	r.pendExcitedWins.Store(0)
	r.pendLateInjected.Store(0)
	r.Events = nil
	n := len(e.Packets)
	if len(r.set) != n {
		r.set = make([]int32, n)
		r.st = make([]state, n)
		r.waitNode = make([]graph.NodeID, n)
		r.waitEdge = make([]graph.EdgeID, n)
		r.evExcited = make([]bool, n)
		r.evRestore = make([]int32, n)
	}
	if r.assign != nil && len(r.assign) != n {
		panic(fmt.Sprintf("core: set assignment covers %d packets, problem has %d", len(r.assign), n))
	}
	for i := range e.Packets {
		if r.assign != nil {
			r.set[i] = r.assign[i]
		} else {
			r.set[i] = int32(r.rng.Intn(r.P.NumSets))
		}
		e.Packets[i].Tag = r.set[i]
		r.st[i] = stateNormal
		r.waitNode[i] = graph.NoNode
		r.waitEdge[i] = graph.NoEdge
		r.evExcited[i] = false
		r.evRestore[i] = -1
	}
}

// ConcurrentRequests implements sim.ConcurrentRouter: WantInject reads
// only immutable schedule/graph state, and Request draws its excitation
// coin from a counter-based stream keyed by (step, packet) rather than
// a shared sequential generator, touches per-packet state only, and
// bumps shared counters through atomics. Its behavior is therefore
// independent of call order and safe under the engine's sharded step.
// Neither reads engine occupancy (At/InFlight/Active) — required since
// the barrier-fused step clears a shard's occupancy while other shards'
// requests may still be running; the router's occupancy-shaped reads
// (StateCounts, progress accounting) all live in EndStep, which the
// engine guarantees is sequential.
func (r *Frame) ConcurrentRequests() bool { return true }

// WantInject implements sim.Router: a packet wants in from the start of
// the phase in which its source sits at inner-level M-1 of its frame
// (Section 3, Packet Injection). The engine enforces isolation; if the
// source is occupied the packet retries every later step.
func (r *Frame) WantInject(t int, p *sim.Packet) bool {
	if r.EagerInjection {
		return true
	}
	phase := r.sched.PhaseOf(t)
	want := r.sched.InjectionPhase(int(r.set[p.ID]), r.g.LevelOf(p.Src))
	return phase >= want
}

// InjectStep implements sim.InjectionPlanner. WantInject is monotone in
// t — false before the packet's scheduled injection phase, true from
// its first step on — so the first step of that phase is not merely a
// lower bound but the exact moment the packet becomes eligible: the
// engine's release queue admits each packet to the injection sweep at
// precisely the step the legacy full sweep would first say yes.
// Depends only on the set assignment fixed at Init, as the contract
// requires. Under the EagerInjection ablation every packet is eligible
// immediately.
func (r *Frame) InjectStep(p *sim.Packet) int {
	if r.EagerInjection {
		return 0
	}
	return r.sched.PhaseStart(r.sched.InjectionPhase(int(r.set[p.ID]), r.g.LevelOf(p.Src)))
}

// TargetNode computes the packet's target node for the given step
// (Section 2.5): the node of its current path at the frame's target
// level, or the destination when the path does not cross that level.
// Destination-chasing is clamped at the frontier: Lemma 4.5 states that
// the rightmost target node of any packet is in level f_i, so a packet
// whose destination lies beyond the frontier waits where its path
// crosses the frontier instead of climbing out of its frame. (Without
// the clamp, a packet that misses its round target under scaled-down
// parameters would escape the frame forward.)
func (r *Frame) TargetNode(t int, p *sim.Packet) graph.NodeID {
	phase := r.sched.PhaseOf(t)
	round := r.sched.RoundOf(t)
	set := int(r.set[p.ID])
	tl := r.sched.TargetLevel(set, phase, round)
	if v, ok := r.g.PathContainsLevel(p.PathList, tl); ok && r.g.LevelOf(v) == tl {
		return v
	}
	if f := r.sched.Frontier(set, phase); r.g.LevelOf(p.Dst) > f {
		if v, ok := r.g.PathContainsLevel(p.PathList, f); ok && r.g.LevelOf(v) == f {
			return v
		}
	}
	return p.Dst
}

// Request implements sim.Router.
func (r *Frame) Request(t int, p *sim.Packet) sim.Request {
	id := p.ID
	// A packet's first request comes at its injection step; injection
	// after the start of its scheduled phase is the paper's "extreme
	// case" fallback, worth counting.
	if p.InjectTime == t {
		want := r.sched.InjectionPhase(int(r.set[id]), r.g.LevelOf(p.Src))
		if t > r.sched.PhaseStart(want) {
			r.pendLateInjected.Add(1)
		}
	}
	if r.st[id] == stateWait {
		// Oscillate on the wait edge (Section 3, Wait state). The
		// packet sits at one endpoint; move to the other.
		e := r.waitEdge[id]
		return sim.Request{Edge: e, Dir: r.g.DirectionFrom(e, p.Cur), Priority: prioWait}
	}

	// Normal packets attempt excitation each step with probability Q.
	// The coin is a pure function of (seed, step, packet) — each packet
	// still flips an independent Bernoulli(Q) per step, as Lemma 4.3's
	// analysis requires, but no draw depends on any other packet's.
	if r.st[id] == stateNormal && sim.CoinFloat(r.coinSeed, t, id) < r.P.Q {
		r.st[id] = stateExcited
		r.pendExcitations.Add(1)
		if r.Events != nil {
			r.evExcited[id] = true
		}
	}

	// Reaching the target node begins the wait state, oscillating on
	// the last traversed link.
	if tgt := r.TargetNode(t, p); !r.DisableWait && p.Cur == tgt && p.ArrivalEdge != graph.NoEdge {
		if r.st[id] == stateExcited {
			r.pendExcitedWins.Add(1)
			if r.Events != nil {
				r.evRestore[id] = sim.RestoreTarget
			}
		}
		r.st[id] = stateWait
		r.waitNode[id] = p.Cur
		r.waitEdge[id] = p.ArrivalEdge
		r.pendWaitEntries.Add(1)
		e := p.ArrivalEdge
		return sim.Request{Edge: e, Dir: r.g.DirectionFrom(e, p.Cur), Priority: prioWait}
	}

	// Chase the current path toward the target. An empty path list
	// cannot happen for an active packet — the engine absorbs
	// zero-length-path (source == destination) packets at injection and
	// absorbs en route the moment Cur reaches Dst — so guard with a
	// descriptive panic rather than an index error.
	if len(p.PathList) == 0 {
		panic(fmt.Sprintf("core: packet %d active at node %d with empty path list (source==destination workloads are absorbed at injection)", id, p.Cur))
	}
	prio := prioNormal
	if r.st[id] == stateExcited {
		prio = prioExcited
	}
	return sim.Request{Edge: p.PathList[0], Dir: p.HeadDir, Priority: prio}
}

// OnDeflect implements sim.Router: a deflected excited packet reverts
// to normal; a deflected wait packet is interrupted and reverts to
// normal (Section 3).
func (r *Frame) OnDeflect(t int, p *sim.Packet, e graph.EdgeID, kind sim.DeflectKind) {
	id := p.ID
	if r.Events != nil {
		r.flushEvents(t, id)
		if r.st[id] == stateExcited {
			r.Events.RecordEvent(t, id, sim.EventRestore, sim.RestoreDeflected)
		}
	}
	if r.st[id] == stateWait {
		r.S.WaitInterrupts++
		r.clearWait(id)
	}
	if r.st[id] == stateExcited {
		r.S.ExcitedFailures++
	}
	r.st[id] = stateNormal
}

// OnMove implements sim.Router.
func (r *Frame) OnMove(int, *sim.Packet) {}

// OnAbsorb implements sim.Router.
func (r *Frame) OnAbsorb(t int, p *sim.Packet) {
	if r.Events != nil {
		r.flushEvents(t, p.ID)
		if r.st[p.ID] == stateExcited {
			r.Events.RecordEvent(t, p.ID, sim.EventRestore, sim.RestoreAbsorbed)
		}
	}
	if r.st[p.ID] == stateExcited {
		r.S.ExcitedSuccesses++
	}
	r.clearWait(p.ID)
	r.st[p.ID] = stateNormal
}

// EndStep implements sim.Router: at the end of each round excited
// packets become normal; at the end of each phase wait packets become
// normal (Section 3).
func (r *Frame) EndStep(t int, e *sim.Engine) {
	r.flushPending()
	roundEnd := r.sched.IsRoundEnd(t)
	phaseEnd := r.sched.IsPhaseEnd(t)
	if r.Events != nil {
		// Flush surviving packets' staged events (deflected and
		// absorbed packets flushed theirs at OnDeflect/OnAbsorb) in
		// active-list order, which is maintained sequentially and thus
		// identical for every worker count.
		for _, i := range e.Active() {
			r.flushEvents(t, i)
		}
	}
	if !roundEnd && !phaseEnd {
		return
	}
	for _, i := range e.Active() {
		switch {
		case phaseEnd:
			// A phase end is also a round end: an excitation episode
			// that survives to the boundary fails here exactly as at a
			// plain round end, so it must be counted before the blanket
			// reset (otherwise Lemma 4.3's success-rate estimate is
			// skewed high at every phase boundary).
			if r.st[i] == stateWait {
				r.clearWait(sim.PacketID(i))
			}
			if r.st[i] == stateExcited {
				r.S.ExcitedFailures++
				if r.Events != nil {
					r.Events.RecordEvent(t, i, sim.EventRestore, sim.RestoreRoundEnd)
				}
			}
			r.st[i] = stateNormal
		case roundEnd:
			if r.st[i] == stateExcited {
				r.S.ExcitedFailures++
				if r.Events != nil {
					r.Events.RecordEvent(t, i, sim.EventRestore, sim.RestoreRoundEnd)
				}
				r.st[i] = stateNormal
			}
		}
	}
}

// flushPending folds the atomically-bumped Request-side counters into
// S. Called at the top of EndStep, i.e. once per step, sequentially.
func (r *Frame) flushPending() {
	if v := r.pendExcitations.Swap(0); v != 0 {
		r.S.Excitations += int(v)
	}
	if v := r.pendWaitEntries.Swap(0); v != 0 {
		r.S.WaitEntries += int(v)
	}
	if v := r.pendExcitedWins.Swap(0); v != 0 {
		r.S.ExcitedSuccesses += int(v)
	}
	if v := r.pendLateInjected.Swap(0); v != 0 {
		r.S.LatePhaseInjections += int(v)
	}
}

// flushEvents emits packet id's staged excite/restore events (in that
// order — an excitation precedes any restore within one step) and
// clears the staging. Caller has checked r.Events != nil.
func (r *Frame) flushEvents(t int, id sim.PacketID) {
	if r.evExcited[id] {
		r.evExcited[id] = false
		r.Events.RecordEvent(t, id, sim.EventExcite, 0)
	}
	if reason := r.evRestore[id]; reason >= 0 {
		r.evRestore[id] = -1
		r.Events.RecordEvent(t, id, sim.EventRestore, reason)
	}
}

func (r *Frame) clearWait(id sim.PacketID) {
	r.waitNode[id] = graph.NoNode
	r.waitEdge[id] = graph.NoEdge
}
