package core

// Schedule captures the frontier-frame timetable of Section 2.5: time
// divides into phases of M rounds of W steps; frontier i starts at
// level -i*M at phase 0 and advances one level per phase; frame F_i
// spans the M levels [frontier-M+1, frontier]; the round-j target level
// is inner-level 0 for rounds 0-1 and inner-level j-1 afterwards.
type Schedule struct {
	P Params
}

// PhaseOf returns the phase containing step t.
func (s Schedule) PhaseOf(t int) int { return t / s.P.StepsPerPhase() }

// Sets returns the number of frontier sets (satisfies obs.Schedule).
func (s Schedule) Sets() int { return s.P.NumSets }

// RoundOf returns the round (within its phase) containing step t.
func (s Schedule) RoundOf(t int) int { return (t % s.P.StepsPerPhase()) / s.P.W }

// StepInRound returns t's offset within its round.
func (s Schedule) StepInRound(t int) int { return t % s.P.W }

// PhaseStart returns the first step of the given phase.
func (s Schedule) PhaseStart(phase int) int { return phase * s.P.StepsPerPhase() }

// IsRoundEnd reports whether step t is the last step of its round.
func (s Schedule) IsRoundEnd(t int) bool { return s.StepInRound(t) == s.P.W-1 }

// IsPhaseEnd reports whether step t is the last step of its phase.
func (s Schedule) IsPhaseEnd(t int) bool { return t%s.P.StepsPerPhase() == s.P.StepsPerPhase()-1 }

// Frontier returns the level pointed to by frontier i during the given
// phase: phase - i*M. The value may lie outside [0, L]; only the
// in-network portion of the frame exists (Figure 2 shows partial
// frames at both ends).
func (s Schedule) Frontier(set, phase int) int {
	return phase - set*s.P.M
}

// FrameBack returns the lowest level of frame i during the phase
// (frontier - M + 1).
func (s Schedule) FrameBack(set, phase int) int {
	return s.Frontier(set, phase) - s.P.M + 1
}

// InFrame reports whether a network level lies inside frame i during
// the phase.
func (s Schedule) InFrame(set, phase, level int) bool {
	f := s.Frontier(set, phase)
	return level >= f-s.P.M+1 && level <= f
}

// InnerLevel converts a network level to frame i's inner-level during
// the phase: inner-level k is network level frontier-k, so inner 0 is
// the frontier itself and inner M-1 the back of the frame. The result
// is meaningful only when InFrame holds.
func (s Schedule) InnerLevel(set, phase, level int) int {
	return s.Frontier(set, phase) - level
}

// TargetInner returns the inner-level of the target during the given
// round: inner 0 for rounds 0 and 1, inner j-1 for round j >= 2
// (Section 2.5).
func (s Schedule) TargetInner(round int) int {
	if round <= 1 {
		return 0
	}
	return round - 1
}

// TargetLevel returns the network level targeted by frame i in the
// given phase and round. It may lie outside [0, L] while the frame is
// only partially inside the network.
func (s Schedule) TargetLevel(set, phase, round int) int {
	return s.Frontier(set, phase) - s.TargetInner(round)
}

// InjectionPhase returns the phase at whose beginning a packet of set i
// with source at srcLevel is injected: the phase in which the source
// sits at inner-level M-1 of frame i, i.e. frontier = srcLevel + M - 1.
func (s Schedule) InjectionPhase(set, srcLevel int) int {
	return set*s.P.M + srcLevel + s.P.M - 1
}

// LastFramePhase returns the phase at which the last frame has fully
// left a depth-L network.
func (s Schedule) LastFramePhase(L int) int {
	return s.P.TotalPhases(L)
}

// ActiveBand returns the band of network levels that can hold packets
// during the given phase in a depth-L network, under invariant Ic
// (every packet inside its own frame): the union over all frontier-sets
// of the in-network portion of their frames. Set 0's frontier is the
// highest level any packet can occupy; set NumSets-1's frame back the
// lowest. Both are clamped to [0, L]; when the clamped union is empty
// (all frames still below the network, or all past it) it returns
// (0, -1). The engine's measured window (sim.Engine.Window) is a subset
// of this band on any run in which Ic holds — asserted in the tests —
// which is what makes the schedule-side skipping sound: levels outside
// the band are provably empty, not just observed empty.
func (s Schedule) ActiveBand(phase, L int) (lo, hi int) {
	lo = s.FrameBack(s.P.NumSets-1, phase)
	if lo < 0 {
		lo = 0
	}
	hi = s.Frontier(0, phase)
	if hi > L {
		hi = L
	}
	if lo > hi {
		return 0, -1
	}
	return lo, hi
}
