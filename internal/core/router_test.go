package core

import (
	"math/rand"
	"testing"

	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// deepRandomProblem builds the workhorse test instance: a deep random
// leveled network with a dense many-to-one workload, deep enough that
// several frames are in flight at once.
func deepRandomProblem(t testing.TB, seed int64) *workload.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topo.Random(rng, 30, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFrameCompletesOnDeepRandom(t *testing.T) {
	p := deepRandomProblem(t, 1)
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 2, Check: true})
	if !res.Done {
		t.Fatalf("did not complete: %s", res)
	}
	if res.Steps > res.PaperBound {
		t.Errorf("steps %d exceed schedule bound %d", res.Steps, res.PaperBound)
	}
	if !res.Invariants.Clean() {
		t.Errorf("invariants violated at default params: %s", res.Invariants.String())
	}
	if res.Engine.UnsafeDeflections() != 0 {
		t.Errorf("unsafe deflections: %v", res.Engine.Deflections)
	}
	if res.Router.WaitEntries == 0 {
		t.Error("no wait entries on a deep network; frame machinery inactive")
	}
}

func TestFrameCompletesOnButterflyHotspot(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p, err := workload.HotSpot(g, rng, 14, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 4, Check: true})
	if !res.Done {
		t.Fatalf("did not complete: %s", res)
	}
	if v := res.Invariants.IbPathInvalid; v != 0 {
		t.Errorf("invalid paths: %d", v)
	}
	if v := res.Invariants.IeCongestionExceeded; v != 0 {
		t.Errorf("congestion grew: %d", v)
	}
}

func TestFrameCompletesOnMeshHard(t *testing.T) {
	p, err := workload.MeshHard(5)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 5, Check: true})
	if !res.Done {
		t.Fatalf("did not complete: %s", res)
	}
	if !res.Invariants.Clean() {
		t.Logf("note: invariants at mesh-hard: %s", res.Invariants.String())
	}
}

func TestFrameDeterministic(t *testing.T) {
	p := deepRandomProblem(t, 6)
	params := DefaultPractical(p.C, p.L(), p.N())
	a := Run(p, params, RunOptions{Seed: 7})
	b := Run(p, params, RunOptions{Seed: 7})
	if a.Steps != b.Steps || a.Engine.Deflections != b.Engine.Deflections ||
		a.Router.WaitEntries != b.Router.WaitEntries {
		t.Errorf("same seed diverged: %s vs %s", a, b)
	}
	c := Run(p, params, RunOptions{Seed: 8})
	if a.Steps == c.Steps && a.Engine.Deflections == c.Engine.Deflections &&
		a.Router.Excitations == c.Router.Excitations {
		t.Log("different seeds produced identical runs (possible but unlikely)")
	}
}

func TestFrameInjectionSchedule(t *testing.T) {
	// Every packet must be injected no earlier than the start of its
	// scheduled injection phase.
	p := deepRandomProblem(t, 9)
	params := DefaultPractical(p.C, p.L(), p.N())
	router := NewFrame(params)
	eng := sim.NewEngine(p, router, 10)
	eng.Run(4 * params.TotalSteps(p.L()))
	if !eng.Done() {
		t.Fatal("did not complete")
	}
	sched := router.Schedule()
	for i := range eng.Packets {
		pkt := &eng.Packets[i]
		want := sched.PhaseStart(sched.InjectionPhase(router.Set(pkt.ID), eng.G.Node(pkt.Src).Level))
		if pkt.InjectTime < want {
			t.Errorf("packet %d injected at %d, before its phase start %d", i, pkt.InjectTime, want)
		}
	}
}

func TestFrameSetsAssignedUniformly(t *testing.T) {
	p := deepRandomProblem(t, 11)
	params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{SetCongestion: 4})
	router := NewFrame(params)
	_ = sim.NewEngine(p, router, 12)
	counts := make([]int, params.NumSets)
	for i := 0; i < p.N(); i++ {
		s := router.Set(sim.PacketID(i))
		if s < 0 || s >= params.NumSets {
			t.Fatalf("packet %d in set %d, out of range", i, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 && p.N() > 4*params.NumSets {
			t.Errorf("set %d empty with %d packets over %d sets", s, p.N(), params.NumSets)
		}
	}
}

func TestFrameStatesVisible(t *testing.T) {
	p := deepRandomProblem(t, 13)
	params := DefaultPractical(p.C, p.L(), p.N())
	router := NewFrame(params)
	eng := sim.NewEngine(p, router, 14)
	sawWait, sawNormal := false, false
	eng.AddObserver(func(tt int, e *sim.Engine) {
		for i := range e.Packets {
			if !e.Packets[i].Active {
				continue
			}
			switch router.State(e.Packets[i].ID) {
			case "wait":
				sawWait = true
				if !router.IsWaiting(e.Packets[i].ID) {
					t.Error("State says wait but IsWaiting false")
				}
			case "normal":
				sawNormal = true
			}
		}
	})
	if _, done := eng.Run(4 * params.TotalSteps(p.L())); !done {
		t.Fatal("did not complete")
	}
	if !sawWait || !sawNormal {
		t.Errorf("states observed: wait=%v normal=%v", sawWait, sawNormal)
	}
}

func TestFrameWaitOscillationBounded(t *testing.T) {
	// A waiting packet oscillates between its wait node and the node
	// one inner-level below; while in wait its level never changes by
	// more than 1 from the wait node.
	p := deepRandomProblem(t, 15)
	params := DefaultPractical(p.C, p.L(), p.N())
	router := NewFrame(params)
	eng := sim.NewEngine(p, router, 16)
	eng.AddObserver(func(tt int, e *sim.Engine) {
		for i := range e.Packets {
			pkt := &e.Packets[i]
			if !pkt.Active || !router.IsWaiting(pkt.ID) {
				continue
			}
			wn := router.waitNode[pkt.ID]
			if wn == -1 {
				t.Fatalf("waiting packet %d has no wait node", pkt.ID)
			}
			dl := e.G.Node(pkt.Cur).Level - e.G.Node(wn).Level
			if dl > 0 || dl < -1 {
				t.Fatalf("waiting packet %d drifted: cur level %d, wait level %d",
					pkt.ID, e.G.Node(pkt.Cur).Level, e.G.Node(wn).Level)
			}
		}
	})
	if _, done := eng.Run(4 * params.TotalSteps(p.L())); !done {
		t.Fatal("did not complete")
	}
}

func TestFrameRoundBoundariesDemoteExcited(t *testing.T) {
	// EndStep demotes excited packets at every round end, so with a
	// high Q the same packet is re-promoted across rounds and the
	// excitation counter far exceeds the packet count.
	p := deepRandomProblem(t, 17)
	params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{Q: 0.5})
	res := Run(p, params, RunOptions{Seed: 18})
	if !res.Done {
		t.Fatal("did not complete")
	}
	if res.Router.Excitations <= p.N() {
		t.Errorf("excitations = %d with Q=0.5; expected re-promotions beyond N=%d", res.Router.Excitations, p.N())
	}
}

func TestFrameTargetNodeClamp(t *testing.T) {
	// Build a tiny controlled scenario on a linear network: packet of
	// set 0, frontier mid-path; its destination is beyond the frontier,
	// so the target must clamp to the path node at the frontier.
	g, err := topo.Linear(12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{NumSets: 1, M: 4, W: 8, Q: 0.1}
	router := NewFrame(params)
	eng := sim.NewEngine(p, router, 19)
	_ = eng
	// Packet 0: src level 0, dst level 11. Injection phase = 0*4+0+3 = 3.
	// Walk the engine to a step in phase 5, round 3: frontier = 5,
	// target inner = 2 -> target level 3.
	sched := router.Schedule()
	step := sched.PhaseStart(5) + 3*params.W
	if sched.RoundOf(step) != 3 || sched.PhaseOf(step) != 5 {
		t.Fatalf("test arithmetic wrong: phase %d round %d", sched.PhaseOf(step), sched.RoundOf(step))
	}
	for eng.Now() < step && !eng.Done() {
		eng.Step()
	}
	pkt := &eng.Packets[0]
	if !pkt.Active {
		t.Fatalf("packet not active at step %d (inject %d, absorbed %v)", step, pkt.InjectTime, pkt.Absorbed)
	}
	tgt := router.TargetNode(step, pkt)
	lvl := eng.G.Node(tgt).Level
	cur := eng.G.Node(pkt.Cur).Level
	// Target is the round target level if the packet is below it,
	// otherwise clamped to the frontier (level 5), never the dst (11).
	if lvl > 5 {
		t.Errorf("target level %d beyond frontier 5 (cur %d)", lvl, cur)
	}
}

func TestFrameLateInjectionCounted(t *testing.T) {
	// Force a late injection: a second packet whose source lies on the
	// first packet's route and whose injection phase begins while the
	// first packet occupies that node. On a linear network with one
	// set, packets at levels 0 and 1 inject in phases 3 and 4 (M=4);
	// phase length is M*W steps, so by phase 4 packet A is long gone
	// and no wait occurs — instead drive both into the same injection
	// phase via distinct sets? Simplest deterministic check: the
	// counter stays zero on a conflict-free run.
	g, err := topo.Linear(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{NumSets: 1, M: 4, W: 8, Q: 0.1}
	res := Run(p, params, RunOptions{Seed: 20})
	if !res.Done {
		t.Fatal("did not complete")
	}
	if res.Router.LatePhaseInjections != 0 {
		t.Errorf("unexpected late injections: %d", res.Router.LatePhaseInjections)
	}
}

func TestFramePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFrame accepted invalid params")
		}
	}()
	NewFrame(Params{})
}

func TestResultHelpers(t *testing.T) {
	p := deepRandomProblem(t, 21)
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 22})
	if res.Ratio() <= 0 {
		t.Errorf("Ratio = %g", res.Ratio())
	}
	if res.String() == "" {
		t.Error("String empty")
	}
	if res.C != p.C || res.L != p.L() || res.N != p.N() {
		t.Errorf("problem facts wrong: %+v", res)
	}
}

func TestRunMaxStepsBudget(t *testing.T) {
	p := deepRandomProblem(t, 23)
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 24, MaxSteps: 10})
	if res.Done {
		t.Error("10 steps cannot complete this problem")
	}
	if res.Steps != 10 {
		t.Errorf("Steps = %d, want 10", res.Steps)
	}
}

func TestStateString(t *testing.T) {
	if stateNormal.String() != "normal" || stateExcited.String() != "excited" || stateWait.String() != "wait" {
		t.Error("state strings broken")
	}
	if state(9).String() == "" {
		t.Error("unknown state should render")
	}
}

func TestInvariantCheckerReportFields(t *testing.T) {
	p := deepRandomProblem(t, 25)
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 26, Check: true})
	rep := &res.Invariants
	if rep.StepsChecked != res.Steps {
		t.Errorf("StepsChecked = %d, steps = %d", rep.StepsChecked, res.Steps)
	}
	if len(rep.InitialSetCongestion) != params.NumSets {
		t.Errorf("InitialSetCongestion length %d", len(rep.InitialSetCongestion))
	}
	if rep.IeCongestionChecks == 0 {
		t.Error("congestion never checked")
	}
	if rep.IfPhaseEndChecks == 0 {
		t.Error("phase ends never checked")
	}
	if rep.String() == "" {
		t.Error("String empty")
	}
	// Max congestion never exceeds initial (Lemma 4.10).
	for i := range rep.InitialSetCongestion {
		if rep.MaxSetCongestionSeen[i] > rep.InitialSetCongestion[i] {
			t.Errorf("set %d congestion grew: %d -> %d", i,
				rep.InitialSetCongestion[i], rep.MaxSetCongestionSeen[i])
		}
	}
}

func TestFrameManySeedsAllComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed soak skipped in -short")
	}
	for seed := int64(0); seed < 8; seed++ {
		p := deepRandomProblem(t, 100+seed)
		params := DefaultPractical(p.C, p.L(), p.N())
		res := Run(p, params, RunOptions{Seed: seed, Check: true})
		if !res.Done {
			t.Errorf("seed %d: did not complete: %s", seed, res)
		}
		if res.Invariants.IbPathInvalid != 0 {
			t.Errorf("seed %d: invalid paths: %d", seed, res.Invariants.IbPathInvalid)
		}
		if res.Invariants.IeCongestionExceeded != 0 {
			t.Errorf("seed %d: congestion grew", seed)
		}
		if res.Engine.UnsafeDeflections() != 0 {
			t.Errorf("seed %d: unsafe deflections %v", seed, res.Engine.Deflections)
		}
	}
}

func TestDisableWaitAblation(t *testing.T) {
	// Without the wait state packets outrun their frames: Ic must show
	// escapes that the paper's full algorithm avoids, while delivery
	// still completes (escaped packets chase their destinations).
	p := deepRandomProblem(t, 50)
	params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{SetCongestion: 4, FrameSlack: 4, RoundFactor: 4})

	run := func(disable bool) (*InvariantReport, bool, int) {
		router := NewFrame(params)
		router.DisableWait = disable
		eng := sim.NewEngine(p, router, 51)
		checker := NewInvariantChecker(router)
		checker.Attach(eng)
		_, done := eng.Run(8 * params.TotalSteps(p.L()))
		return &checker.Report, done, router.S.WaitEntries
	}

	full, doneFull, waitsFull := run(false)
	abl, doneAbl, waitsAbl := run(true)
	if !doneFull || !doneAbl {
		t.Fatalf("completion: full=%v ablated=%v", doneFull, doneAbl)
	}
	if waitsFull == 0 || waitsAbl != 0 {
		t.Errorf("wait entries: full=%d ablated=%d", waitsFull, waitsAbl)
	}
	if full.IcFrameEscapes != 0 {
		t.Errorf("full algorithm escaped frames %d times", full.IcFrameEscapes)
	}
	if abl.IcFrameEscapes == 0 {
		t.Error("ablated algorithm never escaped; wait state appears redundant (unexpected)")
	}
}

func TestEagerInjectionAblation(t *testing.T) {
	// Eager injection degenerates toward greedy: much faster on easy
	// instances, but the frame-disjointness invariants collapse.
	p := deepRandomProblem(t, 60)
	params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{SetCongestion: 4, FrameSlack: 4, RoundFactor: 4})

	run := func(eager bool) (*InvariantReport, int, bool) {
		router := NewFrame(params)
		router.EagerInjection = eager
		eng := sim.NewEngine(p, router, 61)
		checker := NewInvariantChecker(router)
		checker.Attach(eng)
		steps, done := eng.Run(8 * params.TotalSteps(p.L()))
		return &checker.Report, steps, done
	}
	sched, schedSteps, doneS := run(false)
	eager, eagerSteps, doneE := run(true)
	if !doneS || !doneE {
		t.Fatalf("completion: scheduled=%v eager=%v", doneS, doneE)
	}
	if sched.IcFrameEscapes != 0 || sched.IdForeignMeetings != 0 {
		t.Errorf("scheduled run violated invariants: %s", sched.String())
	}
	if eager.IcFrameEscapes == 0 {
		t.Error("eager injection never escaped frames (unexpected)")
	}
	if eagerSteps >= schedSteps {
		t.Errorf("eager (%d steps) not faster than scheduled (%d); instance unexpectedly hard", eagerSteps, schedSteps)
	}
}

func TestRunPhaseProfile(t *testing.T) {
	p := deepRandomProblem(t, 80)
	params := ParamsPractical(p.C, p.L(), p.N(), PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	res := Run(p, params, RunOptions{Seed: 80, Profile: true})
	if !res.Done {
		t.Fatal("did not complete")
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phase profile recorded")
	}
	totInj, totAbs := 0, 0
	prevPhase := -1
	for _, ph := range res.Phases {
		if ph.Phase <= prevPhase {
			t.Fatalf("phases out of order: %d after %d", ph.Phase, prevPhase)
		}
		prevPhase = ph.Phase
		totInj += ph.Injected
		totAbs += ph.Absorbed
		if ph.Waiting > ph.Active {
			t.Fatalf("phase %d: waiting %d > active %d", ph.Phase, ph.Waiting, ph.Active)
		}
	}
	// The run ends mid-phase when the last packet is absorbed, so the
	// profiled totals can miss events of the final (unfinished) phase.
	if totInj > p.N() || totInj == 0 {
		t.Errorf("profiled injections %d, want in (0,%d]", totInj, p.N())
	}
	if totAbs > p.N() || totAbs > totInj {
		t.Errorf("profiled absorptions %d inconsistent (inj %d, N %d)", totAbs, totInj, p.N())
	}
	// Without Profile, no phases are recorded.
	res2 := Run(p, params, RunOptions{Seed: 80})
	if res2.Phases != nil {
		t.Error("unprofiled run recorded phases")
	}
}

func TestExcitationEpisodesAccounted(t *testing.T) {
	// Every excitation episode ends exactly once (success or failure),
	// and the empirical success rate clears Lemma 4.3's 1/2e floor by a
	// wide margin at practical parameters.
	p := deepRandomProblem(t, 90)
	params := DefaultPractical(p.C, p.L(), p.N())
	res := Run(p, params, RunOptions{Seed: 90})
	if !res.Done {
		t.Fatal("did not complete")
	}
	s := res.Router
	if s.Excitations == 0 {
		t.Fatal("no excitations")
	}
	if got := s.ExcitedSuccesses + s.ExcitedFailures; got != s.Excitations {
		t.Errorf("episodes accounted %d, excitations %d", got, s.Excitations)
	}
	rate := float64(s.ExcitedSuccesses) / float64(s.Excitations)
	if rate < 1/(2*2.7182818) {
		t.Errorf("excited success rate %.3f below the 1/2e floor", rate)
	}
}
