package core

import (
	"math"
)

// Analysis reproduces the probability bookkeeping of Sections 2.1 and
// 4.3-4.4 for a problem instance: the failure budgets p0 and p1, the
// per-phase success recurrence p(k), and the final bound of
// Theorem 4.26. All quantities use the reconstructed constants of
// ParamsFromPaper.
type Analysis struct {
	C, L, N int
	// A is the frontier-set density a = 2e³/ln(LN); the set count is
	// ceil(A*C) (called aC or amC in the paper's phase arithmetic).
	A float64
	// M, W, Q echo the parameters.
	P Params
}

// NewAnalysis builds the analysis for an instance.
func NewAnalysis(C, L, N int) Analysis {
	ln := lnLN(L, N)
	return Analysis{
		C: C, L: L, N: N,
		A: 2 * math.E * math.E * math.E / ln,
		P: ParamsFromPaper(C, L, N),
	}
}

// P0 is the probability that the initial random partition satisfies
// Lemma 2.2: p0 = 1 - 1/(2LN).
func (a Analysis) P0() float64 {
	return 1 - 1/(2*float64(a.L)*float64(a.N))
}

// P1 is the per-event failure budget of Section 2.1:
// p1 = 1 / ((aCm + L) · 2aCm · L · N²), with aCm the set count times
// the frame size as in the phase arithmetic.
func (a Analysis) P1() float64 {
	amc := float64(a.P.NumSets) * float64(a.P.M)
	return 1 / ((amc + float64(a.L)) * 2 * amc * float64(a.L) * float64(a.N) * float64(a.N))
}

// PhaseFailure is the per-phase failure mass amCN·p1 subtracted in the
// recurrence p(k) = p(k-1)·(1 - amCN·p1).
func (a Analysis) PhaseFailure() float64 {
	amc := float64(a.P.NumSets) * float64(a.P.M)
	return amc * float64(a.N) * a.P1()
}

// PK evaluates the recurrence p(k) = p0 · (1 - amCN·p1)^k. The margin
// of Theorem 4.26 is as thin as 1/(4L²N²), so the power is computed via
// Log1p to keep full precision for large k and tiny failure mass.
func (a Analysis) PK(k int) float64 {
	return a.P0() * math.Exp(float64(k)*math.Log1p(-a.PhaseFailure()))
}

// FinalPhases is the phase count amC + L at which the last frame has
// left the network (Proposition 4.25).
func (a Analysis) FinalPhases() int {
	return a.P.TotalPhases(a.L)
}

// SuccessProbability is the Theorem 4.26 lower bound on the probability
// that all packets are absorbed by the schedule bound: p(amC + L),
// which the theorem lower-bounds by 1 - 1/LN.
func (a Analysis) SuccessProbability() float64 {
	return a.PK(a.FinalPhases())
}

// TheoremFloor is the claimed floor 1 - 1/LN.
func (a Analysis) TheoremFloor() float64 {
	return 1 - 1/(float64(a.L)*float64(a.N))
}

// StepBound is the schedule bound (amC + L)·m·w of Proposition 4.25.
func (a Analysis) StepBound() int {
	return a.P.TotalSteps(a.L)
}

// PolylogFactor reports StepBound / (C + L) — the Õ(·) factor the title
// hides, which Theorem 4.26 bounds by O(ln⁹(LN)).
func (a Analysis) PolylogFactor() float64 {
	return float64(a.StepBound()) / float64(a.C+a.L)
}

// Ln9 is ln⁹(LN), the paper's polylog exponent, for comparison with
// PolylogFactor.
func (a Analysis) Ln9() float64 {
	return math.Pow(lnLN(a.L, a.N), 9)
}
