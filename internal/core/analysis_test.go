package core

import (
	"math"
	"testing"
)

// The heart of Theorem 4.26's final computation: unfolding
// p(amC + L) = p0 · (1 - amCN·p1)^(amC+L) must stay at or above
// 1 - 1/LN for every instance, because (amC+L)·amCN·p1 <= 1/(2LN) by
// the choice of p1. This test verifies the paper's probability algebra
// over a grid of instances.
func TestTheorem426ProbabilityAlgebra(t *testing.T) {
	for _, C := range []int{1, 4, 16, 64, 256} {
		for _, L := range []int{4, 16, 64, 256} {
			for _, N := range []int{4, 32, 256, 2048} {
				a := NewAnalysis(C, L, N)
				got := a.SuccessProbability()
				floor := a.TheoremFloor()
				if got < floor {
					t.Errorf("C=%d L=%d N=%d: p(final)=%.10f below floor %.10f", C, L, N, got, floor)
				}
				if got > 1 {
					t.Errorf("C=%d L=%d N=%d: probability %v > 1", C, L, N, got)
				}
			}
		}
	}
}

// The aggregate per-phase failure mass over the whole schedule is at
// most 1/(2LN), the budget Equation 2 converts into the final bound.
func TestPhaseFailureBudget(t *testing.T) {
	for _, C := range []int{2, 32} {
		for _, L := range []int{8, 128} {
			for _, N := range []int{16, 512} {
				a := NewAnalysis(C, L, N)
				total := float64(a.FinalPhases()) * a.PhaseFailure()
				budget := 1 / (2 * float64(L) * float64(N))
				if total > budget+1e-12 {
					t.Errorf("C=%d L=%d N=%d: total failure mass %.3g exceeds budget %.3g",
						C, L, N, total, budget)
				}
			}
		}
	}
}

func TestPKMonotoneDecreasing(t *testing.T) {
	a := NewAnalysis(16, 64, 256)
	prev := a.PK(0)
	if math.Abs(prev-a.P0()) > 1e-12 {
		t.Errorf("p(0) = %v, want p0 = %v", prev, a.P0())
	}
	for k := 1; k <= a.FinalPhases(); k += 50 {
		cur := a.PK(k)
		if cur > prev {
			t.Errorf("p(%d)=%v > p(previous)=%v", k, cur, prev)
		}
		prev = cur
	}
}

func TestP0P1Shapes(t *testing.T) {
	a := NewAnalysis(8, 32, 128)
	if p0 := a.P0(); p0 <= 0.999 || p0 >= 1 {
		t.Errorf("p0 = %v", p0)
	}
	if p1 := a.P1(); p1 <= 0 || p1 > 1e-6 {
		t.Errorf("p1 = %v", p1)
	}
	// p1 shrinks as the instance grows.
	bigger := NewAnalysis(8, 32, 1024)
	if bigger.P1() >= a.P1() {
		t.Errorf("p1 not decreasing in N: %v vs %v", bigger.P1(), a.P1())
	}
}

// The schedule's polylog factor is Θ(ln⁹ LN): the ratio
// PolylogFactor/ln⁹ stays within a constant band — it neither blows up
// (the bound really is Õ(C+L)) nor vanishes (ln⁹ is the true order of
// the reconstructed constants, matching Theorem 4.26's exponent). The
// constant is large (≈10³, driven by a = 2e³/ln and w's 4e·ln(1/p1)
// factor), which is exactly the paper's "not really practical" caveat.
func TestPolylogFactorIsThetaLn9(t *testing.T) {
	var ratios []float64
	for _, L := range []int{16, 64, 256, 1024} {
		for _, N := range []int{64, 1024, 1 << 14} {
			// D = Θ(L) regime: take C comparable to L.
			a := NewAnalysis(L, L, N)
			ratios = append(ratios, a.PolylogFactor()/a.Ln9())
		}
	}
	for i, r := range ratios {
		if r > 1e5 {
			t.Errorf("instance %d: factor/ln⁹ = %.3g — super-polylog growth", i, r)
		}
		if r < 1 {
			t.Errorf("instance %d: factor/ln⁹ = %.3g — ln⁹ overestimates the order", i, r)
		}
	}
	// The band across two decades of instance size stays within ~100x,
	// i.e. the ln⁹ order is right.
	min, max := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max/min > 100 {
		t.Errorf("factor/ln⁹ band too wide: [%.3g, %.3g]", min, max)
	}
}

// The step bound is linear in C and in L once the polylog is factored
// out: doubling C at most ~doubles the bound (plus the L term).
func TestStepBoundLinearShape(t *testing.T) {
	L, N := 64, 1024
	b1 := NewAnalysis(16, L, N).StepBound()
	b2 := NewAnalysis(32, L, N).StepBound()
	b4 := NewAnalysis(64, L, N).StepBound()
	// Slopes: (b2-b1)/(16) vs (b4-b2)/(32) should agree within 10%.
	s1 := float64(b2-b1) / 16
	s2 := float64(b4-b2) / 32
	if math.Abs(s1-s2)/s1 > 0.1 {
		t.Errorf("step bound not linear in C: slopes %.1f vs %.1f", s1, s2)
	}
}
