package core

import (
	"fmt"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// InvariantReport counts violations of the paper's per-phase invariants
// (Section 4). Under the proof-grade parameters every count is zero
// w.h.p.; under scaled-down practical parameters nonzero counts
// quantify how much of the analysis survives (experiments E5, E6, E8).
type InvariantReport struct {
	// StepsChecked is the number of observed steps.
	StepsChecked int

	// IbPathInvalid counts (packet, step) pairs with an invalid current
	// path (invariant Ib; Lemma 2.1 predicts zero).
	IbPathInvalid int

	// IcFrameEscapes counts (packet, step) pairs in which an active
	// packet sat outside its frontier-frame (invariant Ic).
	IcFrameEscapes int

	// IdForeignMeetings counts (node, step) pairs at which packets of
	// different frontier-sets met (invariant Id).
	IdForeignMeetings int

	// IeCongestionChecks and IeCongestionExceeded track frontier-set
	// congestion: each check recomputes every set's edge congestion and
	// Exceeded counts sets whose congestion rose above its initial
	// value (invariant Ie via Lemma 4.10: congestion never grows).
	IeCongestionChecks   int
	IeCongestionExceeded int
	InitialSetCongestion []int
	MaxSetCongestionSeen []int
	// IeBoundExceeded counts sets whose initial congestion already
	// exceeded the Lemma 2.2 bound ln(LN) (a property of the random
	// partition, not of routing).
	IeBoundExceeded int

	// IfPhaseEndChecks and IfTailOccupied track invariant If: at each
	// phase end, active packets must sit at inner-level <= M-4 of their
	// frame (the last three inner-levels drain before the shift).
	IfPhaseEndChecks int
	IfTailOccupied   int
}

// Clean reports whether no violations were observed.
func (r *InvariantReport) Clean() bool {
	return r.IbPathInvalid == 0 && r.IcFrameEscapes == 0 &&
		r.IdForeignMeetings == 0 && r.IeCongestionExceeded == 0 &&
		r.IfTailOccupied == 0
}

// String renders a compact summary.
func (r *InvariantReport) String() string {
	return fmt.Sprintf("Ib=%d Ic=%d Id=%d Ie=%d/%d If=%d/%d (steps=%d)",
		r.IbPathInvalid, r.IcFrameEscapes, r.IdForeignMeetings,
		r.IeCongestionExceeded, r.IeCongestionChecks,
		r.IfTailOccupied, r.IfPhaseEndChecks, r.StepsChecked)
}

// InvariantChecker observes an engine running a Frame router and fills
// an InvariantReport. Attach with Attach before running.
type InvariantChecker struct {
	Report InvariantReport

	// CongestionEvery controls how often the O(N·L) frontier-set
	// congestion recomputation runs: every k-th round end (default 1 =
	// every round end; 0 disables).
	CongestionEvery int

	// PathCheckEvery controls how often full path-validity checks run
	// (every k steps; default 1; 0 disables).
	PathCheckEvery int

	r        *Frame
	e        *sim.Engine
	rounds   int
	occupied map[graph.NodeID]int32 // node -> set of first packet seen this step
}

// NewInvariantChecker builds a checker for the given frame router.
func NewInvariantChecker(r *Frame) *InvariantChecker {
	return &InvariantChecker{CongestionEvery: 1, PathCheckEvery: 1, r: r}
}

// Attach registers the checker on the engine and snapshots the initial
// frontier-set congestion (after Init has assigned sets).
func (c *InvariantChecker) Attach(e *sim.Engine) {
	c.e = e
	c.occupied = make(map[graph.NodeID]int32)
	c.Report.InitialSetCongestion = c.setCongestion()
	c.Report.MaxSetCongestionSeen = append([]int(nil), c.Report.InitialSetCongestion...)
	bound := lnLN(e.G.Depth(), len(e.Packets))
	for _, ci := range c.Report.InitialSetCongestion {
		if float64(ci) > bound {
			c.Report.IeBoundExceeded++
		}
	}
	e.AddObserver(c.observe)
}

// setCongestion computes, for every frontier-set, the maximum per-edge
// count of current paths of packets in the set (active and not yet
// injected, as the paper's definition of edge congestion requires;
// absorbed packets have empty path lists).
func (c *InvariantChecker) setCongestion() []int {
	counts := make([][]int32, c.r.P.NumSets)
	for i := range counts {
		counts[i] = make([]int32, c.e.G.NumEdges())
	}
	for i := range c.e.Packets {
		p := &c.e.Packets[i]
		set := c.r.set[p.ID]
		var path []graph.EdgeID
		switch {
		case p.Absorbed:
			continue
		case p.Active:
			path = p.PathList
		default:
			path = p.Preselected
		}
		for _, ed := range path {
			counts[set][ed]++
		}
	}
	out := make([]int, c.r.P.NumSets)
	for i, per := range counts {
		m := int32(0)
		for _, v := range per {
			if v > m {
				m = v
			}
		}
		out[i] = int(m)
	}
	return out
}

// observe is the per-step hook.
func (c *InvariantChecker) observe(t int, e *sim.Engine) {
	c.Report.StepsChecked++
	sched := c.r.sched
	// Positions after step t are the state at time t+1.
	phaseNext := sched.PhaseOf(t + 1)
	phaseEnded := sched.IsPhaseEnd(t)
	phaseCur := sched.PhaseOf(t)

	clear(c.occupied)
	for i := range e.Packets {
		p := &e.Packets[i]
		if !p.Active {
			continue
		}
		set := int(c.r.set[p.ID])
		lvl := e.G.Node(p.Cur).Level

		// Ib: current path validity.
		if c.PathCheckEvery > 0 && t%c.PathCheckEvery == 0 {
			if !p.PathValid(e.G) {
				c.Report.IbPathInvalid++
			}
		}

		// Ic: inside own frame (frames at their t+1 position).
		if !sched.InFrame(set, phaseNext, lvl) {
			c.Report.IcFrameEscapes++
		}

		// Id: no two sets share a node.
		if prev, ok := c.occupied[p.Cur]; ok {
			if prev != c.r.set[p.ID] {
				c.Report.IdForeignMeetings++
			}
		} else {
			c.occupied[p.Cur] = c.r.set[p.ID]
		}

		// If: at phase end, the frame's last three inner-levels are
		// empty (inner-level <= M-4), judged at the ending phase's
		// frame position.
		if phaseEnded {
			if inner := sched.InnerLevel(set, phaseCur, lvl); inner > c.r.P.M-4 {
				c.Report.IfTailOccupied++
			}
		}
	}
	if phaseEnded {
		c.Report.IfPhaseEndChecks++
	}

	// Ie: frontier-set congestion never grows.
	if c.CongestionEvery > 0 && sched.IsRoundEnd(t) && c.rounds%c.CongestionEvery == 0 {
		cur := c.setCongestion()
		c.Report.IeCongestionChecks++
		for i, v := range cur {
			if v > c.Report.MaxSetCongestionSeen[i] {
				c.Report.MaxSetCongestionSeen[i] = v
			}
			if v > c.Report.InitialSetCongestion[i] {
				c.Report.IeCongestionExceeded++
			}
		}
	}
	if sched.IsRoundEnd(t) {
		c.rounds++
	}
}
