package core

import (
	"testing"

	"hotpotato/internal/obs"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"

	"math/rand"
)

// bandProbe asserts, at every committed step, that the engine's
// measured active level band is contained in the schedule-derived
// ActiveBand of the step's phase — the containment that makes
// schedule-side level skipping sound (levels outside the band are
// provably empty under Ic, not just observed empty).
type bandProbe struct {
	t        *testing.T
	sched    Schedule
	L        int
	nonEmpty int
	narrowed int // steps whose band excluded at least one level
}

func (b *bandProbe) OnStep(s *obs.StepStats) {
	if s.WindowHi < s.WindowLo {
		return // nothing in flight
	}
	b.nonEmpty++
	lo, hi := b.sched.ActiveBand(s.Phase, b.L)
	if s.WindowLo < lo || s.WindowHi > hi {
		b.t.Errorf("step %d (phase %d): measured window [%d,%d] escapes schedule band [%d,%d]",
			s.Step, s.Phase, s.WindowLo, s.WindowHi, lo, hi)
	}
	if lo > 0 || hi < b.L {
		b.narrowed++
	}
}

func (*bandProbe) OnRound(*obs.StepStats) {}
func (*bandProbe) OnPhase(*obs.StepStats) {}

// TestMeasuredWindowWithinActiveBand pins Schedule.ActiveBand against
// the engine: on clean frame-router runs the measured window must stay
// inside the band every step, and on a deep network the band must
// actually exclude levels for most of the run (otherwise "skipping"
// would be vacuous).
func TestMeasuredWindowWithinActiveBand(t *testing.T) {
	problems := map[string]func() (*workload.Problem, error){
		"butterfly": func() (*workload.Problem, error) {
			g, err := topo.Butterfly(5)
			if err != nil {
				return nil, err
			}
			return workload.Random(g, rand.New(rand.NewSource(13)), 0.3)
		},
		"mesh": func() (*workload.Problem, error) { return workload.MeshHard(6) },
	}
	for name, mk := range problems {
		t.Run(name, func(t *testing.T) {
			p, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			params := ParamsPractical(p.C, p.L(), p.N(),
				PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
			probe := &bandProbe{t: t, sched: Schedule{P: params}, L: p.L()}
			res := Run(p, params, RunOptions{Seed: 5, Probes: []obs.Probe{probe}})
			if !res.Done {
				t.Fatalf("run did not complete: %s", res)
			}
			if probe.nonEmpty == 0 {
				t.Fatal("probe saw no in-flight steps")
			}
			if probe.narrowed == 0 {
				t.Errorf("ActiveBand never excluded a level across %d steps", probe.nonEmpty)
			}
		})
	}
}
