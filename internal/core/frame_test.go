package core

import (
	"testing"
	"testing/quick"
)

func testSchedule() Schedule {
	return Schedule{Params{NumSets: 3, M: 5, W: 10, Q: 0.1}}
}

func TestScheduleTimeDivision(t *testing.T) {
	s := testSchedule() // phase = 50 steps, round = 10 steps
	cases := []struct {
		t, phase, round, inRound int
		roundEnd, phaseEnd       bool
	}{
		{0, 0, 0, 0, false, false},
		{9, 0, 0, 9, true, false},
		{10, 0, 1, 0, false, false},
		{49, 0, 4, 9, true, true},
		{50, 1, 0, 0, false, false},
		{149, 2, 4, 9, true, true},
	}
	for _, c := range cases {
		if got := s.PhaseOf(c.t); got != c.phase {
			t.Errorf("PhaseOf(%d) = %d, want %d", c.t, got, c.phase)
		}
		if got := s.RoundOf(c.t); got != c.round {
			t.Errorf("RoundOf(%d) = %d, want %d", c.t, got, c.round)
		}
		if got := s.StepInRound(c.t); got != c.inRound {
			t.Errorf("StepInRound(%d) = %d, want %d", c.t, got, c.inRound)
		}
		if got := s.IsRoundEnd(c.t); got != c.roundEnd {
			t.Errorf("IsRoundEnd(%d) = %v", c.t, got)
		}
		if got := s.IsPhaseEnd(c.t); got != c.phaseEnd {
			t.Errorf("IsPhaseEnd(%d) = %v", c.t, got)
		}
	}
}

func TestSchedulePhaseStart(t *testing.T) {
	s := testSchedule()
	for phase := 0; phase < 5; phase++ {
		start := s.PhaseStart(phase)
		if s.PhaseOf(start) != phase {
			t.Errorf("PhaseOf(PhaseStart(%d)) = %d", phase, s.PhaseOf(start))
		}
		if start > 0 && s.PhaseOf(start-1) != phase-1 {
			t.Errorf("step before PhaseStart(%d) in phase %d", phase, s.PhaseOf(start-1))
		}
	}
}

func TestScheduleFrontierPipelining(t *testing.T) {
	s := testSchedule()
	// At phase 0, frontier i = -i*M (paper Section 2.5 with the OCR'd
	// minus restored).
	for i := 0; i < 3; i++ {
		if got := s.Frontier(i, 0); got != -i*5 {
			t.Errorf("Frontier(%d, 0) = %d, want %d", i, got, -i*5)
		}
	}
	// Frontier advances one level per phase.
	for ph := 0; ph < 20; ph++ {
		if s.Frontier(1, ph+1)-s.Frontier(1, ph) != 1 {
			t.Errorf("frontier did not advance at phase %d", ph)
		}
	}
	// Frame i reaches level 0 at phase i*M.
	if s.Frontier(2, 10) != 0 {
		t.Errorf("Frontier(2, 10) = %d, want 0", s.Frontier(2, 10))
	}
	// Adjacent frames never overlap: back of frame i-1 is one above
	// frontier of frame i.
	for ph := 0; ph < 30; ph++ {
		for i := 1; i < 3; i++ {
			if s.FrameBack(i-1, ph) != s.Frontier(i, ph)+1 {
				t.Errorf("frames %d and %d overlap at phase %d", i-1, i, ph)
			}
		}
	}
}

func TestScheduleInFrameAndInnerLevel(t *testing.T) {
	s := testSchedule()
	set, phase := 1, 12 // frontier = 12 - 5 = 7, frame levels 3..7
	for lvl := 0; lvl < 12; lvl++ {
		want := lvl >= 3 && lvl <= 7
		if got := s.InFrame(set, phase, lvl); got != want {
			t.Errorf("InFrame(level %d) = %v, want %v", lvl, got, want)
		}
	}
	if s.InnerLevel(set, phase, 7) != 0 {
		t.Errorf("frontier must be inner 0")
	}
	if s.InnerLevel(set, phase, 3) != 4 {
		t.Errorf("back must be inner M-1")
	}
}

func TestScheduleTargets(t *testing.T) {
	s := testSchedule()
	if s.TargetInner(0) != 0 || s.TargetInner(1) != 0 {
		t.Error("rounds 0-1 must target inner 0")
	}
	for j := 2; j < 5; j++ {
		if s.TargetInner(j) != j-1 {
			t.Errorf("TargetInner(%d) = %d, want %d", j, s.TargetInner(j), j-1)
		}
	}
	// TargetLevel = frontier - targetInner.
	if s.TargetLevel(0, 10, 3) != 10-2 {
		t.Errorf("TargetLevel = %d", s.TargetLevel(0, 10, 3))
	}
}

func TestScheduleInjectionPhase(t *testing.T) {
	s := testSchedule()
	// Source at level sl is at inner M-1 when frontier = sl + M - 1,
	// i.e. phase = set*M + sl + M - 1.
	for set := 0; set < 3; set++ {
		for sl := 0; sl < 4; sl++ {
			ph := s.InjectionPhase(set, sl)
			if got := s.Frontier(set, ph); got != sl+s.P.M-1 {
				t.Errorf("set %d src %d: frontier at injection = %d, want %d", set, sl, got, sl+s.P.M-1)
			}
			if s.InnerLevel(set, ph, sl) != s.P.M-1 {
				t.Errorf("source not at inner M-1 at injection phase")
			}
		}
	}
}

func TestScheduleLastFramePhase(t *testing.T) {
	s := testSchedule()
	L := 20
	last := s.LastFramePhase(L)
	// At that phase the last frame's back is above level L.
	if back := s.FrameBack(s.P.NumSets-1, last); back <= L {
		t.Errorf("back of last frame = %d at phase %d, want > %d", back, last, L)
	}
	// One phase earlier it is not fully out.
	if back := s.FrameBack(s.P.NumSets-1, last-1); back > L {
		t.Errorf("last frame already out at phase %d", last-1)
	}
}

// Property: InFrame and InnerLevel agree for arbitrary schedules.
func TestScheduleInFrameInnerConsistency(t *testing.T) {
	f := func(sets, m, w uint8, set, phase, level int16) bool {
		p := Params{
			NumSets: int(sets%5) + 1,
			M:       int(m%10) + 4,
			W:       int(w%20) + 2,
			Q:       0.1,
		}
		s := Schedule{p}
		st := int(set) % p.NumSets
		if st < 0 {
			st = -st
		}
		in := s.InFrame(st, int(phase), int(level))
		inner := s.InnerLevel(st, int(phase), int(level))
		return in == (inner >= 0 && inner < p.M)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
