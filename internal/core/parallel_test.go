package core

import (
	"math/rand"
	"runtime"
	"testing"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// The frame router certifies sim.ConcurrentRouter (counter-based
// excitation coin + atomic stat cells), so the engine runs its full
// request/arbitrate/deflect pipeline on shard workers. Every observable
// of a run — step count, engine metrics, router stats, invariant report
// — must be identical for any worker/shard configuration.
func TestFrameRunParallelMatchesSequential(t *testing.T) {
	problems := map[string]func() (*workload.Problem, error){
		"butterfly": func() (*workload.Problem, error) {
			g, err := topo.Butterfly(5)
			if err != nil {
				return nil, err
			}
			return workload.Random(g, rand.New(rand.NewSource(13)), 0.3)
		},
		"mesh":       func() (*workload.Problem, error) { return workload.MeshHard(6) },
		"allcorners": func() (*workload.Problem, error) { return workload.AllCorners(6) },
	}
	for name, mk := range problems {
		t.Run(name, func(t *testing.T) {
			p, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			params := ParamsPractical(p.C, p.L(), p.N(),
				PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
			want := Run(p, params, RunOptions{Seed: 11, Check: true})
			if !want.Done {
				t.Fatalf("sequential run did not complete: %s", want)
			}
			for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
				if w < 2 {
					continue
				}
				for _, shards := range []int{0, 5} {
					got := Run(p, params, RunOptions{Seed: 11, Check: true, Workers: w, Shards: shards})
					if got.Steps != want.Steps || got.Engine != want.Engine {
						t.Errorf("workers=%d shards=%d: engine result differs:\n got steps=%d %+v\nwant steps=%d %+v",
							w, shards, got.Steps, got.Engine, want.Steps, want.Engine)
					}
					if got.Router != want.Router {
						t.Errorf("workers=%d shards=%d: router stats differ:\n got %+v\nwant %+v",
							w, shards, got.Router, want.Router)
					}
					if got.Invariants.IcFrameEscapes != want.Invariants.IcFrameEscapes ||
						got.Invariants.IdForeignMeetings != want.Invariants.IdForeignMeetings ||
						got.Invariants.IbPathInvalid != want.Invariants.IbPathInvalid {
						t.Errorf("workers=%d shards=%d: invariant report differs", w, shards)
					}
				}
			}
		})
	}
}

// A reused Runner must reproduce one-shot Run results exactly, seed by
// seed, in any interleaving.
func TestRunnerReuseMatchesRun(t *testing.T) {
	p, err := workload.MeshHard(6)
	if err != nil {
		t.Fatal(err)
	}
	params := ParamsPractical(p.C, p.L(), p.N(),
		PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	r := NewRunner(p, params, 1, 0)
	defer r.Close()
	for _, seed := range []int64{3, 1, 3, 8} {
		want := Run(p, params, RunOptions{Seed: seed, Check: true})
		got := r.Run(RunOptions{Seed: seed, Check: true})
		if got.Steps != want.Steps || got.Engine != want.Engine || got.Router != want.Router {
			t.Errorf("seed %d: reused runner differs:\n got steps=%d %+v %+v\nwant steps=%d %+v %+v",
				seed, got.Steps, got.Engine, got.Router, want.Steps, want.Engine, want.Router)
		}
	}
}
