package core

import (
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := Params{NumSets: 2, M: 5, W: 10, Q: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{NumSets: 0, M: 5, W: 10, Q: 0.1},
		{NumSets: 1, M: 3, W: 10, Q: 0.1},
		{NumSets: 1, M: 5, W: 1, Q: 0.1},
		{NumSets: 1, M: 5, W: 10, Q: 0},
		{NumSets: 1, M: 5, W: 10, Q: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestParamsArithmetic(t *testing.T) {
	p := Params{NumSets: 3, M: 4, W: 10, Q: 0.1}
	if p.StepsPerPhase() != 40 {
		t.Errorf("StepsPerPhase = %d", p.StepsPerPhase())
	}
	// TotalPhases(L) = NumSets*M + L = 12 + 20 = 32.
	if p.TotalPhases(20) != 32 {
		t.Errorf("TotalPhases = %d", p.TotalPhases(20))
	}
	if p.TotalSteps(20) != 32*40 {
		t.Errorf("TotalSteps = %d", p.TotalSteps(20))
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestParamsFromPaperShapes(t *testing.T) {
	C, L, N := 32, 64, 512
	p := ParamsFromPaper(C, L, N)
	if err := p.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	ln := math.Log(float64(L) * float64(N))
	// NumSets = ceil(2e^3 C / ln(LN)).
	wantSets := int(math.Ceil(2 * math.E * math.E * math.E * float64(C) / ln))
	if p.NumSets != wantSets {
		t.Errorf("NumSets = %d, want %d", p.NumSets, wantSets)
	}
	// M = ceil(ln^2(LN) + 5).
	if want := int(math.Ceil(ln*ln + 5)); p.M != want {
		t.Errorf("M = %d, want %d", p.M, want)
	}
	// q = 1/(m^2 ln) within float tolerance.
	if want := 1 / (float64(p.M) * float64(p.M) * ln); math.Abs(p.Q-want)/want > 0.2 {
		t.Errorf("Q = %g, want about %g", p.Q, want)
	}
	// w is the dominant polylog: it must dwarf m.
	if p.W < 100*p.M {
		t.Errorf("W = %d suspiciously small vs M = %d", p.W, p.M)
	}
}

func TestParamsFromPaperMonotoneInC(t *testing.T) {
	l, n := 64, 256
	prev := ParamsFromPaper(1, l, n)
	for _, c := range []int{2, 8, 32, 128} {
		cur := ParamsFromPaper(c, l, n)
		if cur.NumSets < prev.NumSets {
			t.Errorf("NumSets not monotone in C: C=%d gives %d < %d", c, cur.NumSets, prev.NumSets)
		}
		prev = cur
	}
}

func TestParamsFromPaperTinyInstance(t *testing.T) {
	// Degenerate inputs must still validate (ln clamp).
	p := ParamsFromPaper(1, 1, 1)
	if err := p.Validate(); err != nil {
		t.Errorf("tiny instance params invalid: %v", err)
	}
}

func TestParamsPracticalDefaults(t *testing.T) {
	C, L, N := 20, 40, 100
	p := DefaultPractical(C, L, N)
	if err := p.Validate(); err != nil {
		t.Fatalf("practical params invalid: %v", err)
	}
	ln := lnLN(L, N)
	wantSets := int(math.Ceil(float64(C) / ln))
	if p.NumSets != wantSets {
		t.Errorf("NumSets = %d, want %d", p.NumSets, wantSets)
	}
	if p.W != 4*p.M {
		t.Errorf("W = %d, want 4*M = %d", p.W, 4*p.M)
	}
	if p.M != int(math.Ceil(ln))+6 {
		t.Errorf("M = %d", p.M)
	}
}

func TestParamsPracticalKnobs(t *testing.T) {
	p := ParamsPractical(10, 20, 50, PracticalConfig{SetCongestion: 5, FrameSlack: 2, RoundFactor: 3, Q: 0.25})
	if p.NumSets != 2 {
		t.Errorf("NumSets = %d, want 2", p.NumSets)
	}
	if p.M != 7 {
		t.Errorf("M = %d, want 7", p.M)
	}
	if p.W != 21 {
		t.Errorf("W = %d, want 21", p.W)
	}
	if p.Q != 0.25 {
		t.Errorf("Q = %g", p.Q)
	}
}

func TestParamsPracticalClamps(t *testing.T) {
	// M floor of 4 and Q cap of 1.
	p := ParamsPractical(1, 2, 2, PracticalConfig{SetCongestion: 1, FrameSlack: 1, Q: 5})
	if p.M < 4 {
		t.Errorf("M = %d, want >= 4", p.M)
	}
	if p.Q > 1 {
		t.Errorf("Q = %g", p.Q)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
}

func TestLnLNClamp(t *testing.T) {
	if lnLN(1, 1) != 2 {
		t.Errorf("lnLN(1,1) = %g, want clamp 2", lnLN(1, 1))
	}
	if v := lnLN(100, 100); math.Abs(v-math.Log(10000)) > 1e-9 {
		t.Errorf("lnLN(100,100) = %g", v)
	}
}
