package dynamic

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/topo"
)

func TestDynamicLowLoadIsStable(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.01, Steps: 2000, Warmup: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("saturated at lambda=0.01")
	}
	if res.Admitted == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic: %s", res)
	}
	// At low load nearly everything offered is admitted and delivered.
	if res.AdmissionRate() < 0.9 {
		t.Errorf("admission rate %.3f at trivial load", res.AdmissionRate())
	}
	if float64(res.Delivered) < 0.9*float64(res.Admitted) {
		t.Errorf("delivered %d of %d admitted", res.Delivered, res.Admitted)
	}
	// Mean latency near the path lengths (depth 5, so a few steps).
	if res.Latency.Mean > 15 {
		t.Errorf("mean latency %.1f at trivial load", res.Latency.Mean)
	}
	if !strings.Contains(res.String(), "dynamic") {
		t.Error("String broken")
	}
}

func TestDynamicThroughputMonotoneThenSaturates(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, lambda := range []float64{0.01, 0.05, 0.2} {
		res, err := Run(g, Config{Lambda: lambda, Steps: 1500, Warmup: 100, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		thpt := res.Throughput()
		if thpt < prev*0.8 {
			t.Errorf("throughput collapsed at lambda=%g: %.3f after %.3f", lambda, thpt, prev)
		}
		prev = thpt
	}
	// Overload: admission throttles (sources occupied), rate < 1.
	over, err := Run(g, Config{Lambda: 0.9, Steps: 1000, Warmup: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if over.AdmissionRate() > 0.9 {
		t.Errorf("admission rate %.3f under overload; expected throttling", over.AdmissionRate())
	}
}

func TestDynamicConservation(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.1, Steps: 800, Warmup: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Delivered <= admitted <= offered; stragglers may remain in
	// flight.
	if res.Delivered > res.Admitted || res.Admitted > res.Offered {
		t.Errorf("conservation broken: %s", res)
	}
	if res.PeakInFlight == 0 {
		t.Error("no packet was ever in flight")
	}
}

func TestDynamicDeterministic(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, Config{Lambda: 0.1, Steps: 500, Warmup: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{Lambda: 0.1, Steps: 500, Warmup: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Deflections != b.Deflections || a.Offered != b.Offered {
		t.Errorf("same seed diverged: %s vs %s", a, b)
	}
}

func TestDynamicConfigValidation(t *testing.T) {
	g, err := topo.Linear(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Config{Lambda: -1, Steps: 10}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := Run(g, Config{Lambda: 0.5, Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Run(g, Config{Lambda: 0.5, Steps: 10, Warmup: 10}); err == nil {
		t.Error("warmup >= steps accepted")
	}
}

func TestDynamicOnRandomLeveled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := topo.Random(rng, 16, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.05, Steps: 1200, Warmup: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatalf("nothing delivered: %s", res)
	}
}

func TestDynamicWindows(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.1, Steps: 1000, Warmup: 0, Seed: 8, Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 10 {
		t.Fatalf("windows = %d, want 10", len(res.Windows))
	}
	totDelivered := 0
	for i, w := range res.Windows {
		if w.Start != i*100 {
			t.Errorf("window %d starts at %d", i, w.Start)
		}
		totDelivered += w.Delivered
		if w.MeanInFlight < 0 {
			t.Errorf("window %d mean in-flight %f", i, w.MeanInFlight)
		}
		if w.Delivered > 0 && w.MeanLatency <= 0 {
			t.Errorf("window %d delivered %d with latency %f", i, w.Delivered, w.MeanLatency)
		}
	}
	if totDelivered != res.Delivered {
		t.Errorf("window deliveries sum to %d, total %d", totDelivered, res.Delivered)
	}
	// Partial final window.
	res2, err := Run(g, Config{Lambda: 0.1, Steps: 250, Warmup: 0, Seed: 8, Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Windows) != 3 {
		t.Fatalf("windows = %d, want 3 (two full + one partial)", len(res2.Windows))
	}
	if res2.Windows[2].Start != 200 {
		t.Errorf("partial window starts at %d", res2.Windows[2].Start)
	}
	// Window disabled: no series.
	res3, err := Run(g, Config{Lambda: 0.1, Steps: 100, Warmup: 0, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Windows != nil {
		t.Error("windows recorded without Window set")
	}
}
