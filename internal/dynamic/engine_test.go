package dynamic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/persist"
	"hotpotato/internal/topo"
)

// TestEngineMatchesRun: driving the Engine step by step reproduces Run
// exactly — Run is a wrapper, not a second implementation.
func TestEngineMatchesRun(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Lambda: 0.3, Steps: 400, Warmup: 40, Seed: 17, Window: 50,
		Retry: RetryPolicy{MaxAttempts: 3}}
	want, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Steps; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Finalize()
	if render(got) != render(want) {
		t.Errorf("engine loop diverged from Run:\n%s\nvs\n%s", render(got), render(want))
	}
	if got.TraceDigest == 0 || got.TraceDigest != want.TraceDigest {
		t.Errorf("digest mismatch: %x vs %x", got.TraceDigest, want.TraceDigest)
	}
}

func render(r *Result) string {
	c := *r
	c.Cfg = Config{}
	return fmt.Sprintf("%+v", c)
}

// TestEngineSnapshotRestoreByteIdentical is the tentpole contract: an
// engine frozen mid-run (through a JSON round-trip, as a real process
// handoff would) and restored in a "fresh process" finishes with a
// result byte-identical to the uninterrupted run — counters, windows,
// latency summary, RNG-dependent trajectory and trace digest included.
func TestEngineSnapshotRestoreByteIdentical(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	model := faults.Flap{Period: 40, Down: 6, Rate: 0.3}.Model(g, 11)
	cfg := Config{
		Lambda: 0.4, Steps: 600, Warmup: 50, Seed: 9,
		Faults: model,
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 8},
		Window: 50,
	}
	uninterrupted, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, 137, 300, 599} {
		e, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		// Cross the process boundary: serialize, parse, re-validate.
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var thawed persist.EngineState
		if err := json.Unmarshal(data, &thawed); err != nil {
			t.Fatal(err)
		}
		r, err := Restore(g, &thawed, Hooks{Faults: model})
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		for r.StepCount() < cfg.Steps {
			if err := r.Step(); err != nil {
				t.Fatal(err)
			}
		}
		resumed := r.Finalize()
		if render(resumed) != render(uninterrupted) {
			t.Errorf("cut %d: resumed run diverged:\n%s\nvs\n%s", cut, render(resumed), render(uninterrupted))
		}
		if resumed.TraceDigest != uninterrupted.TraceDigest {
			t.Errorf("cut %d: digest %x != %x", cut, resumed.TraceDigest, uninterrupted.TraceDigest)
		}
	}
}

// TestEngineSubmitBatches drives the pure service mode (λ=0): packets
// enter only via Submit/SubmitPath/SubmitRandom, tenants are accounted
// separately, and the run drains completely.
func TestEngineSubmitBatches(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Config{Lambda: 0, Steps: 0, Seed: 5, Window: 25,
		Retry: RetryPolicy{MaxAttempts: 8, BaseDelay: 1, MaxDelay: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if e.HasWork() {
		t.Fatal("fresh λ=0 engine claims work")
	}
	// One explicit src/dst pair.
	src := graph.NodeID(0)
	var dst graph.NodeID
	reach := g.ForwardReachableFrom(src)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v != src && reach[v] {
			dst = v
		}
	}
	if err := e.Submit("gold", src, dst); err != nil {
		t.Fatal(err)
	}
	// One explicit path (the first packet's would-be greedy route).
	var path []graph.EdgeID
	cur := src
	for g.Node(cur).Level < g.Depth() {
		ed := g.Node(cur).Up[0]
		path = append(path, ed)
		cur = g.Edge(ed).To
	}
	if err := e.SubmitPath("gold", path); err != nil {
		t.Fatal(err)
	}
	// A random batch for another tenant.
	if err := e.SubmitRandom("free", 30); err != nil {
		t.Fatal(err)
	}
	if !e.HasWork() {
		t.Fatal("engine has pending work but claims idle")
	}
	for e.HasWork() {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.StepCount() > 100000 {
			t.Fatal("batch never drained")
		}
	}
	res := e.Finalize()
	if res.Offered != 32 || res.Admitted+res.Dropped != 32 {
		t.Errorf("accounting: offered=%d admitted=%d dropped=%d", res.Offered, res.Admitted, res.Dropped)
	}
	if res.Delivered != res.Admitted {
		t.Errorf("drained engine delivered %d of %d admitted", res.Delivered, res.Admitted)
	}
	gold, free := e.Tenants()["gold"], e.Tenants()["free"]
	if gold == nil || free == nil {
		t.Fatal("tenant ledgers missing")
	}
	if gold.Submitted != 2 || free.Submitted != 30 {
		t.Errorf("tenant submitted: gold=%d free=%d", gold.Submitted, free.Submitted)
	}
	if gold.Delivered+free.Delivered != res.Delivered {
		t.Errorf("tenant deliveries %d+%d != %d", gold.Delivered, free.Delivered, res.Delivered)
	}
	// Submit validation.
	if err := e.Submit("gold", dst, src); err == nil {
		t.Error("backward src/dst pair accepted")
	}
	if err := e.SubmitPath("gold", nil); err == nil {
		t.Error("empty path accepted")
	}
	if err := e.SubmitRandom("gold", 0); err == nil {
		t.Error("zero-count random batch accepted")
	}
}

// TestWindowStatsNeverNaN is the regression test for NaN/Inf poisoning
// of windowed metrics: a window that closes with zero deliveries (and a
// drain flush on a window with zero span) must report finite fields
// that both CSV and JSON/expvar can encode.
func TestWindowStatsNeverNaN(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	// λ=0 with no submissions: every window has zero deliveries and
	// zero in-flight — the all-empty worst case.
	e, err := NewEngine(g, Config{Lambda: 0, Steps: 0, Seed: 1, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	e.FlushWindow() // partial 5-step window
	e.FlushWindow() // zero-span flush: must not emit or divide
	res := e.Finalize()
	if len(res.Windows) != 4 {
		t.Fatalf("windows = %d, want 3 full + 1 partial", len(res.Windows))
	}
	for i, w := range res.Windows {
		for name, v := range map[string]float64{
			"MeanLatency": w.MeanLatency, "MeanInFlight": w.MeanInFlight, "Availability": w.Availability,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("window %d %s = %v", i, name, v)
			}
		}
		if w.Delivered == 0 && w.MeanLatency != 0 {
			t.Errorf("window %d: empty window with nonzero mean latency %g", i, w.MeanLatency)
		}
	}
	// The whole result must be JSON-encodable (NaN would make Marshal
	// fail) and free of NaN/Inf text in any rendering.
	res.Cfg = Config{} // func fields are not marshalable
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("result not JSON-encodable: %v", err)
	}
	if !json.Valid(data) {
		t.Error("marshaled result is invalid JSON")
	}
	var csv bytes.Buffer
	for _, w := range res.Windows {
		fmt.Fprintf(&csv, "%d,%d,%.2f,%.2f,%d,%d,%d,%.4f\n",
			w.Start, w.Delivered, w.MeanLatency, w.MeanInFlight,
			w.FaultBlocked, w.FaultStalls, w.Dropped, w.Availability)
	}
	if s := csv.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("CSV export poisoned:\n%s", s)
	}
}

// TestRestoreRejectsCorruptState: the restore path re-validates against
// the graph, refusing snapshots that reference unknown nodes/edges or
// carry non-walkable paths.
func TestRestoreRejectsCorruptState(t *testing.T) {
	g, err := topo.Butterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *persist.EngineState {
		e, err := NewEngine(g, Config{Lambda: 0.3, Steps: 100, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		st, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Packets) == 0 {
			t.Fatal("test needs in-flight packets")
		}
		return st
	}

	good := mk()
	if _, err := Restore(g, good, Hooks{}); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	cases := map[string]func(*persist.EngineState){
		"bad version":      func(s *persist.EngineState) { s.Version = 99 },
		"bad kind":         func(s *persist.EngineState) { s.Kind = "campaign-checkpoint" },
		"node range":       func(s *persist.EngineState) { s.Packets[0].Cur = 10_000 },
		"edge range":       func(s *persist.EngineState) { s.Packets[0].Path[0] = 10_000 },
		"empty path":       func(s *persist.EngineState) { s.Packets[0].Path = nil },
		"broken path":      func(s *persist.EngineState) { s.Packets[0].Dst = s.Packets[0].Cur },
		"dup packet id":    func(s *persist.EngineState) { s.Packets = append(s.Packets, s.Packets[0]); s.Admitted++ },
		"count mismatch":   func(s *persist.EngineState) { s.Delivered++ },
		"negative counter": func(s *persist.EngineState) { s.Deflections = -1 },
		"nan latency": func(s *persist.EngineState) {
			s.LatSamples = append(s.LatSamples, math.NaN())
			s.LatCount++
		},
	}
	for name, corrupt := range cases {
		st := mk()
		corrupt(st)
		if _, err := Restore(g, st, Hooks{}); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
	}
}
