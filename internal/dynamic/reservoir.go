package dynamic

import "hotpotato/internal/stats"

// latReservoirCap bounds the retained latency sample. 4096 samples give
// sub-percent quantile error at p99 while keeping snapshots O(1): before
// this bound the engine appended every post-warmup delivery latency
// forever, so a long -serve process grew without limit and every
// snapshot shipped the full history (the v1→v2 persist format bump).
const latReservoirCap = 4096

// latSeedMix decorrelates the reservoir's RNG stream from the engine's
// trajectory stream when both derive from Config.Seed.
const latSeedMix = 0x5ca1ab1e0ddba11

// latReservoir is a bounded uniform sample (Algorithm R) over the
// post-warmup delivery latencies, plus the exact count and sum so Mean
// stays exact no matter how many samples were folded in. It draws from
// its own SplitMix64 stream — never the engine RNG — so sampling
// decisions cannot perturb routing, and the stream state persists so
// restored engines keep sampling identically.
type latReservoir struct {
	count   int
	sum     float64
	samples []float64
	rng     sm64
}

func newLatReservoir(seed int64) latReservoir {
	return latReservoir{
		samples: make([]float64, 0, latReservoirCap),
		rng:     *newSM64(seed ^ latSeedMix),
	}
}

// add folds one latency observation in. Once the reservoir is full,
// observation n (1-based) is kept with probability cap/n, replacing a
// uniformly chosen incumbent — Algorithm R. Exactly one RNG draw per
// overflowing observation, zero while filling.
func (r *latReservoir) add(x float64) {
	r.count++
	r.sum += x
	if len(r.samples) < latReservoirCap {
		r.samples = append(r.samples, x)
		return
	}
	if j := r.rng.Uint64() % uint64(r.count); j < latReservoirCap {
		r.samples[j] = x
	}
}

// summary computes quantiles over the reservoir but reports the exact
// observation count and mean.
func (r *latReservoir) summary() stats.Summary {
	s := summarizeLatencies(r.samples)
	if r.count > 0 {
		s.N = r.count
		s.Mean = r.sum / float64(r.count)
	}
	return s
}

// restore rebuilds the reservoir from persisted state. The backing is
// preallocated at full capacity so post-restore sampling never grows it.
func restoreLatReservoir(count int, sum float64, samples []float64, rngState uint64) latReservoir {
	r := latReservoir{
		count:   count,
		sum:     sum,
		samples: make([]float64, 0, latReservoirCap),
		rng:     sm64{state: rngState},
	}
	r.samples = append(r.samples, samples...)
	return r
}
