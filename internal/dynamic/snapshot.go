package dynamic

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"hotpotato/internal/graph"
	"hotpotato/internal/persist"
	"hotpotato/internal/sim"
)

// Snapshot freezes the engine between two steps into the versioned
// persist wire form. The engine must not have been finalized; it
// remains usable afterwards. Everything the next Step reads is
// captured — packets, queues, the previous-step forward occupancy, the
// open window accumulators, the latency reservoir and the RNG states —
// so a Restore in a fresh process continues the exact same trajectory.
// The wire form is independent of the in-memory layout: the SoA
// columns serialize to the same per-packet records the
// array-of-pointers engine emitted.
func (e *Engine) Snapshot() (*persist.EngineState, error) {
	if e.finalized {
		return nil, fmt.Errorf("dynamic: Snapshot after Finalize")
	}
	st := &persist.EngineState{
		Version: persist.EngineStateVersion,
		Kind:    persist.EngineStateKind,

		Lambda:      e.cfg.Lambda,
		Steps:       e.cfg.Steps,
		Warmup:      e.cfg.Warmup,
		Seed:        e.cfg.Seed,
		MaxInFlight: e.cfg.MaxInFlight,
		Window:      e.cfg.Window,
		Retry: persist.RetryPolicyState{
			MaxAttempts: e.cfg.Retry.MaxAttempts,
			BaseDelay:   e.cfg.Retry.BaseDelay,
			MaxDelay:    e.cfg.Retry.MaxDelay,
		},

		Step:   e.step,
		RNG:    e.src.state,
		NextID: e.nextID,

		Offered:      e.res.Offered,
		Admitted:     e.res.Admitted,
		Delivered:    e.res.Delivered,
		Retried:      e.res.Retried,
		Dropped:      e.res.Dropped,
		FaultBlocked: e.res.FaultBlocked,
		FaultStalls:  e.res.FaultStalls,
		Deflections:  e.res.Deflections,
		PeakInFlight: e.res.PeakInFlight,
		Saturated:    e.res.Saturated,

		InFlightSum:     e.inFlightSum,
		InFlightSamples: e.inFlightSamples,
		LatCount:        e.lat.count,
		LatSum:          e.lat.sum,
		LatSamples:      append([]float64(nil), e.lat.samples...),
		LatRNG:          e.lat.rng.state,

		WDelivered:   e.wDelivered,
		WSpan:        e.wSpan,
		WStart:       e.wStart,
		WLatSum:      e.wLatSum,
		WFlySum:      e.wFlySum,
		WAvailSum:    e.wAvailSum,
		WPrevBlocked: e.wPrevBlocked,
		WPrevStalls:  e.wPrevStalls,
		WPrevDropped: e.wPrevDropped,

		Digest: e.digest,
	}
	for _, w := range e.res.Windows {
		st.Windows = append(st.Windows, persist.WindowState{
			Start: w.Start, Delivered: w.Delivered,
			MeanLatency: w.MeanLatency, MeanInFlight: w.MeanInFlight,
			FaultBlocked: w.FaultBlocked, FaultStalls: w.FaultStalls,
			Dropped: w.Dropped, Availability: w.Availability,
		})
	}
	// Packets in injection order (the order e.live maintains and every
	// commit sweep follows).
	for _, s := range e.live {
		st.Packets = append(st.Packets, persist.PacketState{
			ID: e.pID[s], Tenant: e.tenantName(e.pTenant[s]),
			Cur: e.pCur[s], Dst: e.pDst[s],
			Path:        edgesToWire(e.pBuf[s][e.pHead[s] : e.pHead[s]+e.pLen[s]]),
			ArrivalEdge: e.pArrEdge[s],
			ArrivalDir:  int8(e.pArrDir[s]),
			Inject:      e.pInject[s],
		})
	}
	for _, en := range e.retryQ {
		st.RetryQ = append(st.RetryQ, persist.RetryState{
			Tenant: e.tenantName(en.tenant), Src: int32(en.src), Dst: int32(en.dst),
			Path: edgesToWire(en.path), Attempts: en.attempts, Next: en.next,
		})
	}
	for _, en := range e.pending {
		st.Pending = append(st.Pending, persist.PendingState{
			Tenant: e.tenantName(en.tenant), Random: en.random,
			Src: int32(en.src), Dst: int32(en.dst), Path: edgesToWire(en.path),
		})
	}
	// The dirty list enumerates exactly the set bits of prevFwd; the
	// wire form is ascending edge id, as the dense-scan engine emitted.
	if len(e.prevFwdDirty) > 0 {
		fwd := append([]int32(nil), e.prevFwdDirty...)
		slices.Sort(fwd)
		st.PrevForward = fwd
	}
	if len(e.tenants) > 0 {
		st.Tenants = make(map[string]persist.TenantTotals, len(e.tenants))
		for name, tt := range e.tenants {
			st.Tenants[name] = *tt
		}
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: snapshot failed self-validation: %w", err)
	}
	return st, nil
}

// Hooks carries the function-valued configuration a snapshot cannot
// serialize; Restore re-binds them. The fault model MUST be the same
// pure function the snapshotting engine ran with (same spec, same
// seed), or the restored trajectory diverges — the service stores the
// fault spec string beside the engine state for exactly this reason.
type Hooks struct {
	Faults   sim.FaultModel
	OnWindow func(w WindowStats, r *Result)
}

// Restore thaws an engine state into graph g. The state is re-validated
// both structurally (persist.EngineState.Validate) and against the
// graph: node and edge references must be in range and every packet's
// remaining path must be a chain of incident edges starting at its
// current node.
func Restore(g *graph.Leveled, st *persist.EngineState, hooks Hooks) (*Engine, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	cfg := Config{
		Lambda:      st.Lambda,
		Steps:       st.Steps,
		Warmup:      st.Warmup,
		Seed:        st.Seed,
		MaxInFlight: st.MaxInFlight,
		Window:      st.Window,
		Retry: RetryPolicy{
			MaxAttempts: st.Retry.MaxAttempts,
			BaseDelay:   st.Retry.BaseDelay,
			MaxDelay:    st.Retry.MaxDelay,
		},
		Faults:   hooks.Faults,
		OnWindow: hooks.OnWindow,
	}
	e, err := NewEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	e.src.state = st.RNG
	e.rng = rand.New(e.src)
	e.step = st.Step
	e.nextID = st.NextID

	e.res.Offered = st.Offered
	e.res.Admitted = st.Admitted
	e.res.Delivered = st.Delivered
	e.res.Retried = st.Retried
	e.res.Dropped = st.Dropped
	e.res.FaultBlocked = st.FaultBlocked
	e.res.FaultStalls = st.FaultStalls
	e.res.Deflections = st.Deflections
	e.res.PeakInFlight = st.PeakInFlight
	e.res.Saturated = st.Saturated
	e.res.ExecutedSteps = st.Step

	e.inFlightSum = st.InFlightSum
	e.inFlightSamples = st.InFlightSamples
	e.lat = restoreLatReservoir(st.LatCount, st.LatSum, st.LatSamples, st.LatRNG)

	for _, w := range st.Windows {
		e.res.Windows = append(e.res.Windows, WindowStats{
			Start: w.Start, Delivered: w.Delivered,
			MeanLatency: w.MeanLatency, MeanInFlight: w.MeanInFlight,
			FaultBlocked: w.FaultBlocked, FaultStalls: w.FaultStalls,
			Dropped: w.Dropped, Availability: w.Availability,
		})
	}
	e.wDelivered, e.wSpan, e.wStart = st.WDelivered, st.WSpan, st.WStart
	e.wLatSum, e.wFlySum, e.wAvailSum = st.WLatSum, st.WFlySum, st.WAvailSum
	e.wPrevBlocked, e.wPrevStalls, e.wPrevDropped = st.WPrevBlocked, st.WPrevStalls, st.WPrevDropped
	e.digest = st.Digest

	for i := range st.Packets {
		ps := &st.Packets[i]
		if int(ps.Cur) >= g.NumNodes() || int(ps.Dst) >= g.NumNodes() || ps.Cur < 0 || ps.Dst < 0 {
			return nil, fmt.Errorf("dynamic: restore: packet %d at/for unknown node", ps.ID)
		}
		path, err := wireToEdges(g, ps.Path)
		if err != nil {
			return nil, fmt.Errorf("dynamic: restore: packet %d: %w", ps.ID, err)
		}
		// The remaining path must be walkable from Cur: each edge
		// incident to the position the previous one leads to.
		pos := graph.NodeID(ps.Cur)
		for hop, ed := range path {
			if g.Edge(ed).From != pos && g.Edge(ed).To != pos {
				return nil, fmt.Errorf("dynamic: restore: packet %d path hop %d not incident to node %d", ps.ID, hop, pos)
			}
			pos = g.EndpointAt(ed, g.DirectionFrom(ed, pos))
		}
		if pos != graph.NodeID(ps.Dst) {
			return nil, fmt.Errorf("dynamic: restore: packet %d path ends at %d, not its destination %d", ps.ID, pos, ps.Dst)
		}
		if ps.ArrivalEdge != -1 && (int(ps.ArrivalEdge) >= g.NumEdges() || ps.ArrivalEdge < 0) {
			return nil, fmt.Errorf("dynamic: restore: packet %d arrival edge out of range", ps.ID)
		}
		s := e.allocSlot()
		e.pID[s] = ps.ID
		e.pTenant[s] = e.internTenant(ps.Tenant)
		e.pCur[s] = ps.Cur
		e.pDst[s] = ps.Dst
		e.pArrEdge[s] = ps.ArrivalEdge
		e.pArrDir[s] = uint8(ps.ArrivalDir)
		e.pInject[s] = ps.Inject
		e.setPath(s, path)
		e.live = append(e.live, s)
		e.parkAt(graph.NodeID(ps.Cur), s)
	}
	for _, ed := range st.PrevForward {
		if int(ed) >= g.NumEdges() || ed < 0 {
			return nil, fmt.Errorf("dynamic: restore: prev_forward edge %d out of range", ed)
		}
		// The engine only tests whether a forward move was committed on
		// the edge (the packet that moved may since have been
		// delivered); the bit is the predicate.
		e.prevFwd[ed>>6] |= 1 << (uint(ed) & 63)
		e.prevFwdDirty = append(e.prevFwdDirty, ed)
	}
	for i := range st.RetryQ {
		rs := &st.RetryQ[i]
		path, err := wireToEdges(g, rs.Path)
		if err != nil {
			return nil, fmt.Errorf("dynamic: restore: retry entry %d: %w", i, err)
		}
		if int(rs.Src) >= g.NumNodes() || rs.Src < 0 || int(rs.Dst) >= g.NumNodes() || rs.Dst < 0 {
			return nil, fmt.Errorf("dynamic: restore: retry entry %d references unknown node", i)
		}
		e.retryQ = append(e.retryQ, retryEntry{
			tenant: e.internTenant(rs.Tenant), src: graph.NodeID(rs.Src), dst: graph.NodeID(rs.Dst),
			path: path, attempts: rs.Attempts, next: rs.Next,
		})
	}
	for i := range st.Pending {
		ps := &st.Pending[i]
		en := pendingEntry{tenant: e.internTenant(ps.Tenant), random: ps.Random, src: graph.NodeID(ps.Src), dst: graph.NodeID(ps.Dst)}
		if !ps.Random {
			if int(ps.Src) >= g.NumNodes() || ps.Src < 0 || int(ps.Dst) >= g.NumNodes() || ps.Dst < 0 {
				return nil, fmt.Errorf("dynamic: restore: pending entry %d references unknown node", i)
			}
			if len(ps.Path) > 0 {
				path, err := wireToEdges(g, ps.Path)
				if err != nil {
					return nil, fmt.Errorf("dynamic: restore: pending entry %d: %w", i, err)
				}
				en.path = path
			}
		}
		e.pending = append(e.pending, en)
	}
	for name, tt := range st.Tenants {
		*e.tenantTT[e.internTenant(name)] = tt
	}
	return e, nil
}

// TenantNames returns the tenant names in sorted order (stable
// iteration for exports).
func (e *Engine) TenantNames() []string {
	names := make([]string, 0, len(e.tenants))
	for n := range e.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func edgesToWire(path []graph.EdgeID) []int32 {
	if path == nil {
		return nil
	}
	out := make([]int32, len(path))
	for i, ed := range path {
		out[i] = int32(ed)
	}
	return out
}

func wireToEdges(g *graph.Leveled, wire []int32) ([]graph.EdgeID, error) {
	out := make([]graph.EdgeID, len(wire))
	for i, ed := range wire {
		if int(ed) >= g.NumEdges() || ed < 0 {
			return nil, fmt.Errorf("edge %d out of range", ed)
		}
		out[i] = graph.EdgeID(ed)
	}
	return out, nil
}
