// Package dynamic runs continuous-arrival (open-system) hot-potato
// simulations: packets arrive over time at rate lambda per node per
// step rather than as one preselected batch. This is the dynamic
// deflection-routing setting of Broder-Upfal [9] in the paper's
// related work; the static Õ(C+L) result speaks to each batch, and the
// open system exposes the stability threshold — the arrival rate beyond
// which the bufferless network stops keeping up.
//
// The simulator is an explicit state machine (Engine): Run drives it in
// the classic closed λ-loop, while the routing service
// (internal/service) feeds it externally submitted batches via Submit /
// SubmitPath / SubmitRandom and freezes it between steps with Snapshot
// — restored engines resume byte-identically, RNG stream included.
//
// The open system optionally runs degraded: Config.Faults marks edges
// down per step (same purity contract as sim.FaultModel — see
// internal/faults for campaign constructors), blocked packets deflect
// around outages or stall in place when a fault strands them, and
// Config.Retry turns admission losses into a bounded-exponential-
// backoff retry queue so soak runs degrade gracefully instead of
// silently shedding load. Degradation is measured: FaultBlocked,
// FaultStalls, Retried, Dropped and per-window Availability.
package dynamic

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
)

// RetryPolicy is the source-side admission policy for arrivals that
// find their source occupied (or the in-flight cap reached): instead
// of shedding the packet, it re-attempts admission under bounded
// exponential backoff, then drops.
type RetryPolicy struct {
	// MaxAttempts bounds total admission attempts per packet (the
	// initial try plus retries). 0 or 1 disables retry: blocked
	// arrivals are lost immediately, the classic open-system behavior.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, in steps
	// (<= 0 defaults to 1). Attempt k waits min(BaseDelay<<(k-1),
	// MaxDelay) steps.
	BaseDelay int
	// MaxDelay caps the exponential backoff (<= 0 defaults to 64).
	MaxDelay int
}

// enabled reports whether the policy retries at all.
func (rp RetryPolicy) enabled() bool { return rp.MaxAttempts > 1 }

// backoff returns the delay before retry number k (k >= 1).
func (rp RetryPolicy) backoff(k int) int {
	base := rp.BaseDelay
	if base <= 0 {
		base = 1
	}
	maxD := rp.MaxDelay
	if maxD <= 0 {
		maxD = 64
	}
	d := base
	for i := 1; i < k; i++ {
		d <<= 1
		if d >= maxD {
			return maxD
		}
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// Config parameterizes an open-system run.
type Config struct {
	// Lambda is the per-node per-step arrival probability at every
	// eligible source node (0 disables endogenous arrivals — the pure
	// service mode, where all traffic comes from Submit*).
	Lambda float64
	// Steps is the simulated horizon. Run requires >= 1; NewEngine also
	// accepts 0 for an unbounded (service-driven) engine.
	Steps int
	// Warmup steps are excluded from the reported statistics.
	Warmup int
	// Seed drives arrivals, destinations, path sampling and conflict
	// tie-breaking.
	Seed int64
	// MaxInFlight caps the simultaneously active packets (0 = 4096); a
	// run that hits the cap is saturated.
	MaxInFlight int
	// Faults, when non-nil, marks edges as down per step: a live
	// packet whose requested edge is down loses and deflects among
	// healthy slots, and a packet stranded at a node with no healthy
	// free slot stalls in place for the step. The model must be a pure
	// function of (edge, step) — the sim.FaultModel contract; bind a
	// faults.Campaign for composable outage scenarios. Excluded from
	// JSON (func value): snapshots persist the fault *spec*, not the
	// bound model.
	Faults sim.FaultModel `json:"-"`
	// Retry is the admission retry/backoff policy for blocked
	// arrivals. The zero value disables retry.
	Retry RetryPolicy
	// Window, when > 0, records per-window time series into
	// Result.Windows (deliveries, mean latency, mean in-flight, fault
	// and availability stats per window of that many steps).
	Window int
	// OnWindow, when non-nil (and Window > 0), is called after each
	// window closes with that window's stats and the result so far —
	// the live-export hook for long soak runs (cmd/openload -http).
	// It runs on the simulation goroutine; a slow callback slows the
	// run.
	OnWindow func(w WindowStats, r *Result) `json:"-"`
	// Stop, when non-nil, ends the run early as soon as a receive
	// succeeds (close the channel to fire it): the current partial
	// window is flushed through OnWindow, Result.Interrupted is set,
	// and the statistics cover the executed prefix. The graceful-drain
	// hook for soak processes catching SIGINT/SIGTERM.
	Stop <-chan struct{} `json:"-"`
}

// Result summarizes an open-system run.
type Result struct {
	Cfg Config
	// Offered is the number of packets that arrived (wanted to enter),
	// λ-generated and submitted alike.
	Offered int
	// Admitted is the number injected (source free at arrival or
	// retry); Delivered the number absorbed within the horizon.
	Admitted  int
	Delivered int
	// Retried counts admission re-attempts performed by the retry
	// policy; Dropped counts packets abandoned after exhausting
	// MaxAttempts (plus blocked batch submissions when retry is
	// disabled). Both are 0 when retry is disabled and no batches were
	// submitted.
	Retried int
	Dropped int
	// FaultBlocked counts (packet, step) pairs whose requested edge
	// was down; FaultStalls counts (packet, step) pairs in which an
	// outage left a packet no healthy out-slot and it held in place.
	FaultBlocked int
	FaultStalls  int
	// Latency summarizes absorb-inject over delivered packets
	// (post-warmup injections only).
	Latency stats.Summary
	// AvgInFlight is the time-average number of active packets after
	// warmup.
	AvgInFlight float64
	// PeakInFlight is the maximum active packets at any step.
	PeakInFlight int
	// Deflections counts all deflections over the horizon.
	Deflections int
	// Saturated reports whether the in-flight cap was hit.
	Saturated bool
	// Interrupted reports that Config.Stop fired before the horizon;
	// Steps in derived rates still refers to the configured horizon,
	// ExecutedSteps to the prefix actually simulated.
	Interrupted   bool
	ExecutedSteps int
	// TraceDigest is the FNV-1a digest folded over every delivery
	// (id, destination, inject step, deliver step) — the cheap
	// equality witness for the snapshot/restore and determinism
	// contracts. Stamped by Engine.Finalize.
	TraceDigest uint64
	// Windows holds the per-window time series when Config.Window > 0.
	Windows []WindowStats
}

// WindowStats is one slice of the open-system time series. Every field
// is finite by construction: empty windows report 0 means, never
// NaN/Inf (expvar and JSON cannot encode either).
type WindowStats struct {
	// Start is the window's first step.
	Start int
	// Delivered is the number of packets absorbed during the window.
	Delivered int
	// MeanLatency averages the latency of those deliveries (0 if none).
	MeanLatency float64
	// MeanInFlight is the time-average of active packets over the
	// window.
	MeanInFlight float64
	// FaultBlocked, FaultStalls and Dropped are this window's deltas
	// of the corresponding Result counters.
	FaultBlocked int
	FaultStalls  int
	Dropped      int
	// Availability is the mean fraction of healthy edges over the
	// window (1.0 without a fault model).
	Availability float64
}

// Throughput is delivered packets per step (post-warmup measure over
// the whole horizon; for a stable system it approaches the admitted
// rate).
func (r *Result) Throughput() float64 {
	steps := r.ExecutedSteps
	if steps == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(steps)
}

// AdmissionRate is Admitted/Offered (1.0 when sources are always free).
func (r *Result) AdmissionRate() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Admitted) / float64(r.Offered)
}

// DropRate is Dropped/Offered — the load the retry policy shed.
func (r *Result) DropRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("dynamic(λ=%.3f, %d steps): offered=%d admitted=%d delivered=%d thpt=%.3f/step lat p50=%.0f avg-inflight=%.1f sat=%v",
		r.Cfg.Lambda, r.ExecutedSteps, r.Offered, r.Admitted, r.Delivered,
		r.Throughput(), r.Latency.Median, r.AvgInFlight, r.Saturated)
	if r.Cfg.Faults != nil || r.Cfg.Retry.enabled() {
		s += fmt.Sprintf(" blocked=%d stalls=%d retried=%d dropped=%d",
			r.FaultBlocked, r.FaultStalls, r.Retried, r.Dropped)
	}
	if r.Interrupted {
		s += " (interrupted)"
	}
	return s
}

// retryEntry is a blocked arrival waiting in the source-side backoff
// queue. Its destination and path were drawn at the original arrival,
// so retries consume no randomness and the RNG stream stays a pure
// function of the arrival sequence. The path backing is a pooled
// buffer owned by the engine; tenant is the interned id (-1 for
// anonymous λ-arrivals).
type retryEntry struct {
	tenant   int32
	src      graph.NodeID
	dst      graph.NodeID
	path     []graph.EdgeID
	attempts int // admission attempts so far (>= 1)
	next     int // earliest step of the next attempt
}

// reservoirKeep reports whether the k-th contender (k >= 2) replaces
// the incumbent under reservoir selection: with probability exactly
// 1/k, so each of k contenders ends up winning with probability 1/k —
// the arbitration rule PR 1 established for the batch engine (the
// prior Intn(2) coin let the last contender win with probability 1/2
// regardless of k). Uniformity is chi-square tested in
// arbitration_test.go.
func reservoirKeep(rng *rand.Rand, k int) bool {
	return rng.Intn(k) == 0
}

// summarizeLatencies is the single finalization path for the latency
// sample (kept separate so Engine.Finalize and tests share it).
func summarizeLatencies(xs []float64) stats.Summary { return stats.Summarize(xs) }

// Run executes an open-system greedy hot-potato simulation. The router
// is greedy (chase the path head, equal priorities, backward-safe
// deflections) — the right baseline for dynamic traffic, since the
// frame algorithm's frames presuppose a fixed batch.
//
// Runs are deterministic per (Config, Seed): arrivals, path draws and
// tie-breaks come from one sequential RNG consumed in a fixed order,
// and every sweep (sources, live packets, nodes) iterates in ID or
// injection order — never Go map order.
func Run(g *graph.Leveled, cfg Config) (*Result, error) {
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("dynamic: steps must be >= 1, got %d", cfg.Steps)
	}
	e, err := NewEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	for t := 0; t < cfg.Steps; t++ {
		if cfg.Stop != nil {
			interrupted := false
			select {
			case <-cfg.Stop:
				interrupted = true
			default:
			}
			if interrupted {
				e.res.Interrupted = true
				break
			}
		}
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	return e.Finalize(), nil
}
