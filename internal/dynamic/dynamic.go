// Package dynamic runs continuous-arrival (open-system) hot-potato
// simulations: packets arrive over time at rate lambda per node per
// step rather than as one preselected batch. This is the dynamic
// deflection-routing setting of Broder-Upfal [9] in the paper's
// related work; the static Õ(C+L) result speaks to each batch, and the
// open system exposes the stability threshold — the arrival rate beyond
// which the bufferless network stops keeping up.
//
// The open system optionally runs degraded: Config.Faults marks edges
// down per step (same purity contract as sim.FaultModel — see
// internal/faults for campaign constructors), blocked packets deflect
// around outages or stall in place when a fault strands them, and
// Config.Retry turns admission losses into a bounded-exponential-
// backoff retry queue so soak runs degrade gracefully instead of
// silently shedding load. Degradation is measured: FaultBlocked,
// FaultStalls, Retried, Dropped and per-window Availability.
package dynamic

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
)

// RetryPolicy is the source-side admission policy for arrivals that
// find their source occupied (or the in-flight cap reached): instead
// of shedding the packet, it re-attempts admission under bounded
// exponential backoff, then drops.
type RetryPolicy struct {
	// MaxAttempts bounds total admission attempts per packet (the
	// initial try plus retries). 0 or 1 disables retry: blocked
	// arrivals are lost immediately, the classic open-system behavior.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, in steps
	// (<= 0 defaults to 1). Attempt k waits min(BaseDelay<<(k-1),
	// MaxDelay) steps.
	BaseDelay int
	// MaxDelay caps the exponential backoff (<= 0 defaults to 64).
	MaxDelay int
}

// enabled reports whether the policy retries at all.
func (rp RetryPolicy) enabled() bool { return rp.MaxAttempts > 1 }

// backoff returns the delay before retry number k (k >= 1).
func (rp RetryPolicy) backoff(k int) int {
	base := rp.BaseDelay
	if base <= 0 {
		base = 1
	}
	maxD := rp.MaxDelay
	if maxD <= 0 {
		maxD = 64
	}
	d := base
	for i := 1; i < k; i++ {
		d <<= 1
		if d >= maxD {
			return maxD
		}
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// Config parameterizes an open-system run.
type Config struct {
	// Lambda is the per-node per-step arrival probability at every
	// eligible source node.
	Lambda float64
	// Steps is the simulated horizon.
	Steps int
	// Warmup steps are excluded from the reported statistics.
	Warmup int
	// Seed drives arrivals, destinations, path sampling and conflict
	// tie-breaking.
	Seed int64
	// MaxInFlight caps the simultaneously active packets (0 = 4096); a
	// run that hits the cap is saturated.
	MaxInFlight int
	// Faults, when non-nil, marks edges as down per step: a live
	// packet whose requested edge is down loses and deflects among
	// healthy slots, and a packet stranded at a node with no healthy
	// free slot stalls in place for the step. The model must be a pure
	// function of (edge, step) — the sim.FaultModel contract; bind a
	// faults.Campaign for composable outage scenarios.
	Faults sim.FaultModel
	// Retry is the admission retry/backoff policy for blocked
	// arrivals. The zero value disables retry.
	Retry RetryPolicy
	// Window, when > 0, records per-window time series into
	// Result.Windows (deliveries, mean latency, mean in-flight, fault
	// and availability stats per window of that many steps).
	Window int
	// OnWindow, when non-nil (and Window > 0), is called after each
	// window closes with that window's stats and the result so far —
	// the live-export hook for long soak runs (cmd/openload -http).
	// It runs on the simulation goroutine; a slow callback slows the
	// run.
	OnWindow func(w WindowStats, r *Result)
	// Stop, when non-nil, ends the run early as soon as a receive
	// succeeds (close the channel to fire it): the current partial
	// window is flushed through OnWindow, Result.Interrupted is set,
	// and the statistics cover the executed prefix. The graceful-drain
	// hook for soak processes catching SIGINT/SIGTERM.
	Stop <-chan struct{}
}

// Result summarizes an open-system run.
type Result struct {
	Cfg Config
	// Offered is the number of packets that arrived (wanted to enter).
	Offered int
	// Admitted is the number injected (source free at arrival or
	// retry); Delivered the number absorbed within the horizon.
	Admitted  int
	Delivered int
	// Retried counts admission re-attempts performed by the retry
	// policy; Dropped counts packets the policy abandoned after
	// exhausting MaxAttempts. Both are 0 when retry is disabled.
	Retried int
	Dropped int
	// FaultBlocked counts (packet, step) pairs whose requested edge
	// was down; FaultStalls counts (packet, step) pairs in which an
	// outage left a packet no healthy out-slot and it held in place.
	FaultBlocked int
	FaultStalls  int
	// Latency summarizes absorb-inject over delivered packets
	// (post-warmup injections only).
	Latency stats.Summary
	// AvgInFlight is the time-average number of active packets after
	// warmup.
	AvgInFlight float64
	// PeakInFlight is the maximum active packets at any step.
	PeakInFlight int
	// Deflections counts all deflections over the horizon.
	Deflections int
	// Saturated reports whether the in-flight cap was hit.
	Saturated bool
	// Interrupted reports that Config.Stop fired before the horizon;
	// Steps in derived rates still refers to the configured horizon,
	// ExecutedSteps to the prefix actually simulated.
	Interrupted   bool
	ExecutedSteps int
	// Windows holds the per-window time series when Config.Window > 0.
	Windows []WindowStats
}

// WindowStats is one slice of the open-system time series.
type WindowStats struct {
	// Start is the window's first step.
	Start int
	// Delivered is the number of packets absorbed during the window.
	Delivered int
	// MeanLatency averages the latency of those deliveries (0 if none).
	MeanLatency float64
	// MeanInFlight is the time-average of active packets over the
	// window.
	MeanInFlight float64
	// FaultBlocked, FaultStalls and Dropped are this window's deltas
	// of the corresponding Result counters.
	FaultBlocked int
	FaultStalls  int
	Dropped      int
	// Availability is the mean fraction of healthy edges over the
	// window (1.0 without a fault model).
	Availability float64
}

// Throughput is delivered packets per step (post-warmup measure over
// the whole horizon; for a stable system it approaches the admitted
// rate).
func (r *Result) Throughput() float64 {
	steps := r.ExecutedSteps
	if steps == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(steps)
}

// AdmissionRate is Admitted/Offered (1.0 when sources are always free).
func (r *Result) AdmissionRate() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Admitted) / float64(r.Offered)
}

// DropRate is Dropped/Offered — the load the retry policy shed.
func (r *Result) DropRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("dynamic(λ=%.3f, %d steps): offered=%d admitted=%d delivered=%d thpt=%.3f/step lat p50=%.0f avg-inflight=%.1f sat=%v",
		r.Cfg.Lambda, r.ExecutedSteps, r.Offered, r.Admitted, r.Delivered,
		r.Throughput(), r.Latency.Median, r.AvgInFlight, r.Saturated)
	if r.Cfg.Faults != nil || r.Cfg.Retry.enabled() {
		s += fmt.Sprintf(" blocked=%d stalls=%d retried=%d dropped=%d",
			r.FaultBlocked, r.FaultStalls, r.Retried, r.Dropped)
	}
	if r.Interrupted {
		s += " (interrupted)"
	}
	return s
}

// pkt is a live packet of the open system.
type pkt struct {
	id          int
	cur         graph.NodeID
	dst         graph.NodeID
	path        []graph.EdgeID
	arrivalEdge graph.EdgeID
	arrivalDir  graph.Direction
	inject      int
}

// retryEntry is a blocked arrival waiting in the source-side backoff
// queue. Its destination and path were drawn at the original arrival,
// so retries consume no randomness and the RNG stream stays a pure
// function of the arrival sequence.
type retryEntry struct {
	src      graph.NodeID
	dst      graph.NodeID
	path     []graph.EdgeID
	attempts int // admission attempts so far (>= 1)
	next     int // earliest step of the next attempt
}

// reservoirKeep reports whether the k-th contender (k >= 2) replaces
// the incumbent under reservoir selection: with probability exactly
// 1/k, so each of k contenders ends up winning with probability 1/k —
// the arbitration rule PR 1 established for the batch engine (the
// prior Intn(2) coin let the last contender win with probability 1/2
// regardless of k). Uniformity is chi-square tested in
// arbitration_test.go.
func reservoirKeep(rng *rand.Rand, k int) bool {
	return rng.Intn(k) == 0
}

// Run executes an open-system greedy hot-potato simulation. The router
// is greedy (chase the path head, equal priorities, backward-safe
// deflections) — the right baseline for dynamic traffic, since the
// frame algorithm's frames presuppose a fixed batch.
//
// Runs are deterministic per (Config, Seed): arrivals, path draws and
// tie-breaks come from one sequential RNG consumed in a fixed order,
// and every sweep (sources, live packets, nodes) iterates in ID or
// injection order — never Go map order.
func Run(g *graph.Leveled, cfg Config) (*Result, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("dynamic: lambda must be in [0,1], got %g", cfg.Lambda)
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("dynamic: steps must be >= 1, got %d", cfg.Steps)
	}
	if cfg.Warmup >= cfg.Steps {
		return nil, fmt.Errorf("dynamic: warmup %d >= steps %d", cfg.Warmup, cfg.Steps)
	}
	if cfg.Retry.MaxAttempts < 0 || cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 {
		return nil, fmt.Errorf("dynamic: negative retry policy field: %+v", cfg.Retry)
	}
	maxFly := cfg.MaxInFlight
	if maxFly <= 0 {
		maxFly = 4096
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Cfg: cfg}

	// Eligible sources and their reachable destination lists.
	var sources []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Node(v).Level < g.Depth() && len(g.Node(v).Up) > 0 {
			sources = append(sources, v)
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("dynamic: network has no eligible sources")
	}
	dstsOf := make([][]graph.NodeID, g.NumNodes())
	for _, s := range sources {
		reach := g.ForwardReachableFrom(s)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v != s && reach[v] {
				dstsOf[s] = append(dstsOf[s], v)
			}
		}
	}

	// at[v] lists the live packets at node v; indexed by node ID so
	// every sweep below runs in ID order (Go map iteration order would
	// make same-seed runs diverge).
	at := make([][]*pkt, g.NumNodes())
	var live []*pkt
	var retryQ []retryEntry
	nextID := 0
	var latencies []float64
	inFlightSum := 0.0
	inFlightSamples := 0

	type slot struct {
		e graph.EdgeID
		d graph.Direction
	}
	prevForward := make([]*pkt, g.NumEdges())
	curForward := make([]*pkt, g.NumEdges())

	down := func(e graph.EdgeID, t int) bool {
		return cfg.Faults != nil && cfg.Faults(e, t)
	}

	// inject admits a packet at src if the source is free and the
	// in-flight cap allows, returning success.
	inject := func(t int, src, dst graph.NodeID, path []graph.EdgeID) bool {
		if len(at[src]) > 0 || len(live) >= maxFly {
			if len(live) >= maxFly {
				res.Saturated = true
			}
			return false
		}
		p := &pkt{id: nextID, cur: src, dst: dst, path: path, arrivalEdge: graph.NoEdge, inject: t}
		nextID++
		at[src] = append(at[src], p)
		live = append(live, p)
		res.Admitted++
		return true
	}

	// Window accumulators. closeWindow flushes the window covering
	// steps [wStart, endStep] (span steps accumulated so far).
	var wDelivered, wSpan, wStart int
	var wLatSum, wFlySum, wAvailSum float64
	var wPrevBlocked, wPrevStalls, wPrevDropped int
	closeWindow := func() {
		if cfg.Window <= 0 || wSpan == 0 {
			return
		}
		ws := WindowStats{
			Start:        wStart,
			Delivered:    wDelivered,
			MeanInFlight: wFlySum / float64(wSpan),
			FaultBlocked: res.FaultBlocked - wPrevBlocked,
			FaultStalls:  res.FaultStalls - wPrevStalls,
			Dropped:      res.Dropped - wPrevDropped,
			Availability: wAvailSum / float64(wSpan),
		}
		if wDelivered > 0 {
			ws.MeanLatency = wLatSum / float64(wDelivered)
		}
		res.Windows = append(res.Windows, ws)
		if cfg.OnWindow != nil {
			cfg.OnWindow(ws, res)
		}
		wDelivered, wSpan = 0, 0
		wLatSum, wFlySum, wAvailSum = 0, 0, 0
		wPrevBlocked, wPrevStalls, wPrevDropped = res.FaultBlocked, res.FaultStalls, res.Dropped
		wStart = res.ExecutedSteps
	}

	for t := 0; t < cfg.Steps; t++ {
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				res.Interrupted = true
			default:
			}
			if res.Interrupted {
				break
			}
		}

		// Retry admissions first: waiting packets get the source slot
		// ahead of fresh arrivals (no new packet starves a backlogged
		// one). The queue is FIFO and consumes no randomness.
		if len(retryQ) > 0 {
			keep := retryQ[:0]
			for i := range retryQ {
				en := retryQ[i]
				if en.next > t {
					keep = append(keep, en)
					continue
				}
				res.Retried++
				if inject(t, en.src, en.dst, en.path) {
					continue
				}
				en.attempts++
				if en.attempts >= cfg.Retry.MaxAttempts {
					res.Dropped++
					continue
				}
				en.next = t + cfg.Retry.backoff(en.attempts)
				keep = append(keep, en)
			}
			retryQ = keep
		}

		// Arrivals: each source draws; blocked arrivals enter the
		// retry queue (or are lost when retry is disabled).
		for _, s := range sources {
			if rng.Float64() >= cfg.Lambda {
				continue
			}
			res.Offered++
			cands := dstsOf[s]
			if len(cands) == 0 {
				continue
			}
			dst := cands[rng.Intn(len(cands))]
			path, err := paths.RandomForwardPath(g, rng, s, dst)
			if err != nil {
				return nil, err
			}
			if inject(t, s, dst, path) {
				continue
			}
			if cfg.Retry.enabled() {
				retryQ = append(retryQ, retryEntry{
					src: s, dst: dst, path: path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			}
		}

		// Requests: every live packet chases its head; equal-priority
		// conflicts resolve by reservoir selection (1/k per
		// contender). A request for a downed edge is fault-blocked and
		// falls through to the deflection pass.
		winners := make(map[slot]*pkt, len(live))
		contenders := make(map[slot]int, len(live))
		for _, p := range live {
			e := p.path[0]
			if down(e, t) {
				res.FaultBlocked++
				continue
			}
			s := slot{e, g.DirectionFrom(e, p.cur)}
			k := contenders[s] + 1
			contenders[s] = k
			if k == 1 || reservoirKeep(rng, k) {
				winners[s] = p
			}
		}
		used := make(map[slot]bool, len(winners))
		granted := make(map[*pkt]slot, len(live))
		for s, p := range winners {
			used[s] = true
			granted[p] = s
		}
		// Deflect losers per node, in node-ID order (determinism).
		stalled := make(map[*pkt]bool)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			ps := at[v]
			if len(ps) == 0 {
				continue
			}
			node := g.Node(v)
			free := func(s slot) bool {
				return !used[s] && !down(s.e, t)
			}
			for _, p := range ps {
				if _, ok := granted[p]; ok {
					continue
				}
				assigned := false
				if p.arrivalEdge != graph.NoEdge {
					s := slot{p.arrivalEdge, p.arrivalDir.Reverse()}
					if free(s) {
						granted[p], used[s] = s, true
						assigned = true
					}
				}
				if !assigned {
					for _, ed := range node.Down {
						s := slot{ed, graph.Backward}
						if free(s) && prevForward[ed] != nil {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					for _, ed := range node.Down {
						s := slot{ed, graph.Backward}
						if free(s) {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					for _, ed := range node.Up {
						s := slot{ed, graph.Forward}
						if free(s) {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					if cfg.Faults != nil {
						// An outage consumed the node's slack: hold in
						// place for one step, the bufferless model's
						// local escape hatch under faults.
						stalled[p] = true
						res.FaultStalls++
						continue
					}
					return nil, fmt.Errorf("dynamic: step %d: node %d over capacity", t, v)
				}
				res.Deflections++
			}
		}

		// Commit.
		for i := range curForward {
			curForward[i] = nil
		}
		survivors := live[:0]
		for i := range at {
			at[i] = at[i][:0]
		}
		for _, p := range live {
			if stalled[p] {
				survivors = append(survivors, p)
				at[p.cur] = append(at[p.cur], p)
				continue
			}
			s := granted[p]
			dest := g.EndpointAt(s.e, s.d)
			if len(p.path) > 0 && p.path[0] == s.e {
				p.path = p.path[1:]
			} else {
				p.path = append([]graph.EdgeID{s.e}, p.path...)
			}
			p.cur = dest
			p.arrivalEdge, p.arrivalDir = s.e, s.d
			if s.d == graph.Forward {
				curForward[s.e] = p
			}
			if p.cur == p.dst {
				res.Delivered++
				if p.inject >= cfg.Warmup {
					latencies = append(latencies, float64(t+1-p.inject))
				}
				if cfg.Window > 0 {
					wDelivered++
					wLatSum += float64(t + 1 - p.inject)
				}
				continue
			}
			survivors = append(survivors, p)
			at[p.cur] = append(at[p.cur], p)
		}
		live = survivors
		prevForward, curForward = curForward, prevForward
		res.ExecutedSteps = t + 1

		if t >= cfg.Warmup {
			inFlightSum += float64(len(live))
			inFlightSamples++
		}
		if len(live) > res.PeakInFlight {
			res.PeakInFlight = len(live)
		}
		if cfg.Window > 0 {
			wFlySum += float64(len(live))
			if cfg.Faults == nil {
				wAvailSum++
			} else {
				downEdges := 0
				for e := 0; e < g.NumEdges(); e++ {
					if cfg.Faults(graph.EdgeID(e), t) {
						downEdges++
					}
				}
				wAvailSum += 1 - float64(downEdges)/float64(g.NumEdges())
			}
			wSpan++
			if (t+1)%cfg.Window == 0 || t == cfg.Steps-1 {
				closeWindow()
			}
		}
	}
	closeWindow() // flush the partial window of an interrupted run
	res.Latency = stats.Summarize(latencies)
	if inFlightSamples > 0 {
		res.AvgInFlight = inFlightSum / float64(inFlightSamples)
	}
	return res, nil
}
