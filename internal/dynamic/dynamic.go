// Package dynamic runs continuous-arrival (open-system) hot-potato
// simulations: packets arrive over time at rate lambda per node per
// step rather than as one preselected batch. This is the dynamic
// deflection-routing setting of Broder-Upfal [9] in the paper's
// related work; the static Õ(C+L) result speaks to each batch, and the
// open system exposes the stability threshold — the arrival rate beyond
// which the bufferless network stops keeping up.
package dynamic

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/stats"
)

// Config parameterizes an open-system run.
type Config struct {
	// Lambda is the per-node per-step arrival probability at every
	// eligible source node.
	Lambda float64
	// Steps is the simulated horizon.
	Steps int
	// Warmup steps are excluded from the reported statistics.
	Warmup int
	// Seed drives arrivals, destinations, path sampling and conflict
	// tie-breaking.
	Seed int64
	// MaxInFlight caps the simultaneously active packets (0 = 4096); a
	// run that hits the cap is saturated.
	MaxInFlight int
	// Window, when > 0, records per-window time series into
	// Result.Windows (deliveries, mean latency and mean in-flight per
	// window of that many steps).
	Window int
	// OnWindow, when non-nil (and Window > 0), is called after each
	// window closes with that window's stats and the result so far —
	// the live-export hook for long soak runs (cmd/openload -http).
	// It runs on the simulation goroutine; a slow callback slows the
	// run.
	OnWindow func(w WindowStats, r *Result)
}

// Result summarizes an open-system run.
type Result struct {
	Cfg Config
	// Offered is the number of packets that arrived (wanted to enter).
	Offered int
	// Admitted is the number injected (source free at arrival or
	// retry); Delivered the number absorbed within the horizon.
	Admitted  int
	Delivered int
	// Latency summarizes absorb-inject over delivered packets
	// (post-warmup injections only).
	Latency stats.Summary
	// AvgInFlight is the time-average number of active packets after
	// warmup.
	AvgInFlight float64
	// PeakInFlight is the maximum active packets at any step.
	PeakInFlight int
	// Deflections counts all deflections over the horizon.
	Deflections int
	// Saturated reports whether the in-flight cap was hit.
	Saturated bool
	// Windows holds the per-window time series when Config.Window > 0.
	Windows []WindowStats
}

// WindowStats is one slice of the open-system time series.
type WindowStats struct {
	// Start is the window's first step.
	Start int
	// Delivered is the number of packets absorbed during the window.
	Delivered int
	// MeanLatency averages the latency of those deliveries (0 if none).
	MeanLatency float64
	// MeanInFlight is the time-average of active packets over the
	// window.
	MeanInFlight float64
}

// Throughput is delivered packets per step (post-warmup measure over
// the whole horizon; for a stable system it approaches the admitted
// rate).
func (r *Result) Throughput() float64 {
	if r.Cfg.Steps == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Cfg.Steps)
}

// AdmissionRate is Admitted/Offered (1.0 when sources are always free).
func (r *Result) AdmissionRate() float64 {
	if r.Offered == 0 {
		return 1
	}
	return float64(r.Admitted) / float64(r.Offered)
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("dynamic(λ=%.3f, %d steps): offered=%d admitted=%d delivered=%d thpt=%.3f/step lat p50=%.0f avg-inflight=%.1f sat=%v",
		r.Cfg.Lambda, r.Cfg.Steps, r.Offered, r.Admitted, r.Delivered,
		r.Throughput(), r.Latency.Median, r.AvgInFlight, r.Saturated)
}

// pkt is a live packet of the open system.
type pkt struct {
	id          int
	cur         graph.NodeID
	dst         graph.NodeID
	path        []graph.EdgeID
	arrivalEdge graph.EdgeID
	arrivalDir  graph.Direction
	inject      int
}

// Run executes an open-system greedy hot-potato simulation. The router
// is greedy (chase the path head, equal priorities, backward-safe
// deflections) — the right baseline for dynamic traffic, since the
// frame algorithm's frames presuppose a fixed batch.
func Run(g *graph.Leveled, cfg Config) (*Result, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("dynamic: lambda must be in [0,1], got %g", cfg.Lambda)
	}
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("dynamic: steps must be >= 1, got %d", cfg.Steps)
	}
	if cfg.Warmup >= cfg.Steps {
		return nil, fmt.Errorf("dynamic: warmup %d >= steps %d", cfg.Warmup, cfg.Steps)
	}
	maxFly := cfg.MaxInFlight
	if maxFly <= 0 {
		maxFly = 4096
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Cfg: cfg}

	// Eligible sources and their reachable destination lists.
	var sources []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Node(v).Level < g.Depth() && len(g.Node(v).Up) > 0 {
			sources = append(sources, v)
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("dynamic: network has no eligible sources")
	}
	dstsOf := make(map[graph.NodeID][]graph.NodeID, len(sources))
	for _, s := range sources {
		reach := g.ForwardReachableFrom(s)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v != s && reach[v] {
				dstsOf[s] = append(dstsOf[s], v)
			}
		}
	}

	at := make(map[graph.NodeID][]*pkt, g.NumNodes())
	var live []*pkt
	nextID := 0
	var latencies []float64
	inFlightSum := 0.0
	inFlightSamples := 0
	var wDelivered int
	var wLatSum, wFlySum float64

	type slot struct {
		e graph.EdgeID
		d graph.Direction
	}
	prevForward := make([]*pkt, g.NumEdges())
	curForward := make([]*pkt, g.NumEdges())

	for t := 0; t < cfg.Steps; t++ {
		// Arrivals: each source draws; blocked if occupied or at cap.
		for _, s := range sources {
			if rng.Float64() >= cfg.Lambda {
				continue
			}
			res.Offered++
			if len(at[s]) > 0 || len(live) >= maxFly {
				if len(live) >= maxFly {
					res.Saturated = true
				}
				continue
			}
			cands := dstsOf[s]
			if len(cands) == 0 {
				continue
			}
			dst := cands[rng.Intn(len(cands))]
			path, err := paths.RandomForwardPath(g, rng, s, dst)
			if err != nil {
				return nil, err
			}
			p := &pkt{id: nextID, cur: s, dst: dst, path: path, arrivalEdge: graph.NoEdge, inject: t}
			nextID++
			at[s] = append(at[s], p)
			live = append(live, p)
			res.Admitted++
		}

		// Requests: every live packet chases its head.
		winners := make(map[slot]*pkt, len(live))
		for _, p := range live {
			e := p.path[0]
			s := slot{e, g.DirectionFrom(e, p.cur)}
			if cur, ok := winners[s]; !ok || rng.Intn(2) == 0 {
				_ = cur
				winners[s] = p
			}
		}
		used := make(map[slot]bool, len(winners))
		granted := make(map[*pkt]slot, len(live))
		for s, p := range winners {
			used[s] = true
			granted[p] = s
		}
		// Deflect losers per node.
		for v, ps := range at {
			if len(ps) == 0 {
				continue
			}
			node := g.Node(v)
			for _, p := range ps {
				if _, ok := granted[p]; ok {
					continue
				}
				assigned := false
				if p.arrivalEdge != graph.NoEdge {
					s := slot{p.arrivalEdge, p.arrivalDir.Reverse()}
					if !used[s] {
						granted[p], used[s] = s, true
						assigned = true
					}
				}
				if !assigned {
					for _, ed := range node.Down {
						s := slot{ed, graph.Backward}
						if !used[s] && prevForward[ed] != nil {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					for _, ed := range node.Down {
						s := slot{ed, graph.Backward}
						if !used[s] {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					for _, ed := range node.Up {
						s := slot{ed, graph.Forward}
						if !used[s] {
							granted[p], used[s] = s, true
							assigned = true
							break
						}
					}
				}
				if !assigned {
					return nil, fmt.Errorf("dynamic: step %d: node %d over capacity", t, v)
				}
				res.Deflections++
			}
		}

		// Commit.
		for i := range curForward {
			curForward[i] = nil
		}
		survivors := live[:0]
		clear(at)
		for _, p := range live {
			s := granted[p]
			dest := g.EndpointAt(s.e, s.d)
			if len(p.path) > 0 && p.path[0] == s.e {
				p.path = p.path[1:]
			} else {
				p.path = append([]graph.EdgeID{s.e}, p.path...)
			}
			p.cur = dest
			p.arrivalEdge, p.arrivalDir = s.e, s.d
			if s.d == graph.Forward {
				curForward[s.e] = p
			}
			if p.cur == p.dst {
				res.Delivered++
				if p.inject >= cfg.Warmup {
					latencies = append(latencies, float64(t+1-p.inject))
				}
				if cfg.Window > 0 {
					wDelivered++
					wLatSum += float64(t + 1 - p.inject)
				}
				continue
			}
			survivors = append(survivors, p)
			at[p.cur] = append(at[p.cur], p)
		}
		live = survivors
		prevForward, curForward = curForward, prevForward

		if t >= cfg.Warmup {
			inFlightSum += float64(len(live))
			inFlightSamples++
		}
		if len(live) > res.PeakInFlight {
			res.PeakInFlight = len(live)
		}
		if cfg.Window > 0 {
			wFlySum += float64(len(live))
			if (t+1)%cfg.Window == 0 || t == cfg.Steps-1 {
				span := cfg.Window
				if rem := (t + 1) % cfg.Window; rem != 0 {
					span = rem
				}
				ws := WindowStats{
					Start:        t + 1 - span,
					Delivered:    wDelivered,
					MeanInFlight: wFlySum / float64(span),
				}
				if wDelivered > 0 {
					ws.MeanLatency = wLatSum / float64(wDelivered)
				}
				res.Windows = append(res.Windows, ws)
				if cfg.OnWindow != nil {
					cfg.OnWindow(ws, res)
				}
				wDelivered, wLatSum, wFlySum = 0, 0, 0
			}
		}
	}
	res.Latency = stats.Summarize(latencies)
	if inFlightSamples > 0 {
		res.AvgInFlight = inFlightSum / float64(inFlightSamples)
	}
	return res, nil
}
