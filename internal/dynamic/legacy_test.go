package dynamic

// This file carries a reference copy of the pre-SoA (array-of-pointers)
// open-system engine, ported verbatim from the implementation the SoA
// rebuild replaced, with one retrofit: the unbounded latency slice is
// replaced by the same bounded reservoir the live engine uses, so both
// produce byte-identical v2 snapshots. TestDynamicSoAMatchesLegacy
// drives the two implementations in lockstep over seeds × faults ×
// retry configs and asserts the step digests and snapshot bytes never
// diverge — the dynamic-engine mirror of the batch engine's
// TestDifferentialInjectionTraces (PR 6).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/persist"
	"hotpotato/internal/topo"
)

type lpkt struct {
	id          int
	tenant      string
	cur         graph.NodeID
	dst         graph.NodeID
	path        []graph.EdgeID
	arrivalEdge graph.EdgeID
	arrivalDir  graph.Direction
	inject      int
}

type lretryEntry struct {
	tenant   string
	src      graph.NodeID
	dst      graph.NodeID
	path     []graph.EdgeID
	attempts int
	next     int
}

type lpendingEntry struct {
	tenant string
	random bool
	src    graph.NodeID
	dst    graph.NodeID
	path   []graph.EdgeID
}

type lslot struct {
	e graph.EdgeID
	d graph.Direction
}

var lfwdSentinel = &lpkt{id: -1}

type legacyEngine struct {
	g   *graph.Leveled
	cfg Config
	res *Result

	src *sm64
	rng *rand.Rand

	sources []graph.NodeID
	dstsOf  [][]graph.NodeID

	at      [][]*lpkt
	live    []*lpkt
	retryQ  []lretryEntry
	pending []lpendingEntry
	nextID  int

	lat             latReservoir
	inFlightSum     float64
	inFlightSamples int

	prevForward, curForward []*lpkt

	wDelivered, wSpan, wStart               int
	wLatSum, wFlySum, wAvailSum             float64
	wPrevBlocked, wPrevStalls, wPrevDropped int

	step      int
	digest    uint64
	tenants   map[string]*TenantTotals
	finalized bool
}

func newLegacyEngine(g *graph.Leveled, cfg Config) (*legacyEngine, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("dynamic: lambda must be in [0,1], got %g", cfg.Lambda)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	e := &legacyEngine{
		g:       g,
		cfg:     cfg,
		res:     &Result{Cfg: cfg},
		src:     newSM64(cfg.Seed),
		lat:     newLatReservoir(cfg.Seed),
		tenants: make(map[string]*TenantTotals),
	}
	e.rng = rand.New(e.src)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Node(v).Level < g.Depth() && len(g.Node(v).Up) > 0 {
			e.sources = append(e.sources, v)
		}
	}
	if len(e.sources) == 0 {
		return nil, fmt.Errorf("dynamic: network has no eligible sources")
	}
	e.dstsOf = make([][]graph.NodeID, g.NumNodes())
	for _, s := range e.sources {
		reach := g.ForwardReachableFrom(s)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v != s && reach[v] {
				e.dstsOf[s] = append(e.dstsOf[s], v)
			}
		}
	}
	e.at = make([][]*lpkt, g.NumNodes())
	e.prevForward = make([]*lpkt, g.NumEdges())
	e.curForward = make([]*lpkt, g.NumEdges())
	return e, nil
}

func (e *legacyEngine) tenant(name string) *TenantTotals {
	if name == "" {
		return nil
	}
	tt := e.tenants[name]
	if tt == nil {
		tt = &TenantTotals{}
		e.tenants[name] = tt
	}
	return tt
}

func (e *legacyEngine) Submit(tenant string, src, dst graph.NodeID) error {
	reachable := false
	for _, d := range e.dstsOf[src] {
		if d == dst {
			reachable = true
			break
		}
	}
	if !reachable {
		return fmt.Errorf("dynamic: submit: unreachable pair")
	}
	e.offerPending(lpendingEntry{tenant: tenant, src: src, dst: dst})
	return nil
}

func (e *legacyEngine) SubmitPath(tenant string, path []graph.EdgeID) error {
	src := e.g.Edge(path[0]).From
	dst := e.g.Edge(path[len(path)-1]).To
	e.offerPending(lpendingEntry{
		tenant: tenant, src: src, dst: dst,
		path: append([]graph.EdgeID(nil), path...),
	})
	return nil
}

func (e *legacyEngine) SubmitRandom(tenant string, n int) error {
	for i := 0; i < n; i++ {
		e.offerPending(lpendingEntry{tenant: tenant, random: true, src: graph.NoNode, dst: graph.NoNode})
	}
	return nil
}

func (e *legacyEngine) offerPending(en lpendingEntry) {
	e.res.Offered++
	if tt := e.tenant(en.tenant); tt != nil {
		tt.Submitted++
	}
	e.pending = append(e.pending, en)
}

func (e *legacyEngine) inject(t int, tenant string, src, dst graph.NodeID, path []graph.EdgeID) bool {
	if len(e.at[src]) > 0 || len(e.live) >= e.cfg.MaxInFlight {
		if len(e.live) >= e.cfg.MaxInFlight {
			e.res.Saturated = true
		}
		return false
	}
	p := &lpkt{id: e.nextID, tenant: tenant, cur: src, dst: dst, path: path, arrivalEdge: graph.NoEdge, inject: t}
	e.nextID++
	e.at[src] = append(e.at[src], p)
	e.live = append(e.live, p)
	e.res.Admitted++
	if tt := e.tenant(tenant); tt != nil {
		tt.Admitted++
	}
	return true
}

func (e *legacyEngine) closeWindow() {
	if e.cfg.Window <= 0 || e.wSpan == 0 {
		return
	}
	ws := WindowStats{
		Start:        e.wStart,
		Delivered:    e.wDelivered,
		MeanInFlight: safeMean(e.wFlySum, e.wSpan),
		FaultBlocked: e.res.FaultBlocked - e.wPrevBlocked,
		FaultStalls:  e.res.FaultStalls - e.wPrevStalls,
		Dropped:      e.res.Dropped - e.wPrevDropped,
		Availability: safeMean(e.wAvailSum, e.wSpan),
		MeanLatency:  safeMean(e.wLatSum, e.wDelivered),
	}
	e.res.Windows = append(e.res.Windows, ws)
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(ws, e.res)
	}
	e.wDelivered, e.wSpan = 0, 0
	e.wLatSum, e.wFlySum, e.wAvailSum = 0, 0, 0
	e.wPrevBlocked, e.wPrevStalls, e.wPrevDropped = e.res.FaultBlocked, e.res.FaultStalls, e.res.Dropped
	e.wStart = e.res.ExecutedSteps
}

func (e *legacyEngine) down(ed graph.EdgeID, t int) bool {
	return e.cfg.Faults != nil && e.cfg.Faults(ed, t)
}

func (e *legacyEngine) HasWork() bool {
	return len(e.live) > 0 || len(e.pending) > 0 || len(e.retryQ) > 0
}

func (e *legacyEngine) Digest() uint64 { return e.digest }

func (e *legacyEngine) dropPacket(tenant string) {
	e.res.Dropped++
	if tt := e.tenant(tenant); tt != nil {
		tt.Dropped++
	}
}

func (e *legacyEngine) Step() error {
	t := e.step
	cfg := &e.cfg
	res := e.res

	if len(e.retryQ) > 0 {
		keep := e.retryQ[:0]
		for i := range e.retryQ {
			en := e.retryQ[i]
			if en.next > t {
				keep = append(keep, en)
				continue
			}
			res.Retried++
			if tt := e.tenant(en.tenant); tt != nil {
				tt.Retried++
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				continue
			}
			en.attempts++
			if en.attempts >= cfg.Retry.MaxAttempts {
				e.dropPacket(en.tenant)
				continue
			}
			en.next = t + cfg.Retry.backoff(en.attempts)
			keep = append(keep, en)
		}
		e.retryQ = keep
	}

	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for i := range e.pending {
			en := e.pending[i]
			if en.random {
				s := e.sources[e.rng.Intn(len(e.sources))]
				cands := e.dstsOf[s]
				if len(cands) == 0 {
					e.dropPacket(en.tenant)
					continue
				}
				en.src, en.dst = s, cands[e.rng.Intn(len(cands))]
				en.random = false
			}
			if en.path == nil {
				path, err := paths.RandomForwardPath(e.g, e.rng, en.src, en.dst)
				if err != nil {
					return fmt.Errorf("dynamic: step %d: pending path draw: %w", t, err)
				}
				en.path = path
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, lretryEntry{
					tenant: en.tenant, src: en.src, dst: en.dst, path: en.path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			} else {
				e.dropPacket(en.tenant)
			}
		}
		e.pending = keep
	}

	if cfg.Lambda > 0 {
		for _, s := range e.sources {
			if e.rng.Float64() >= cfg.Lambda {
				continue
			}
			res.Offered++
			cands := e.dstsOf[s]
			if len(cands) == 0 {
				continue
			}
			dst := cands[e.rng.Intn(len(cands))]
			path, err := paths.RandomForwardPath(e.g, e.rng, s, dst)
			if err != nil {
				return err
			}
			if e.inject(t, "", s, dst, path) {
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, lretryEntry{
					src: s, dst: dst, path: path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			}
		}
	}

	winners := make(map[lslot]*lpkt, len(e.live))
	contenders := make(map[lslot]int, len(e.live))
	for _, p := range e.live {
		ed := p.path[0]
		if e.down(ed, t) {
			res.FaultBlocked++
			continue
		}
		s := lslot{ed, e.g.DirectionFrom(ed, p.cur)}
		k := contenders[s] + 1
		contenders[s] = k
		if k == 1 || reservoirKeep(e.rng, k) {
			winners[s] = p
		}
	}
	used := make(map[lslot]bool, len(winners))
	granted := make(map[*lpkt]lslot, len(e.live))
	for s, p := range winners {
		used[s] = true
		granted[p] = s
	}
	stalled := make(map[*lpkt]bool)
	for v := graph.NodeID(0); int(v) < e.g.NumNodes(); v++ {
		ps := e.at[v]
		if len(ps) == 0 {
			continue
		}
		node := e.g.Node(v)
		free := func(s lslot) bool {
			return !used[s] && !e.down(s.e, t)
		}
		for _, p := range ps {
			if _, ok := granted[p]; ok {
				continue
			}
			assigned := false
			if p.arrivalEdge != graph.NoEdge {
				s := lslot{p.arrivalEdge, p.arrivalDir.Reverse()}
				if free(s) {
					granted[p], used[s] = s, true
					assigned = true
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					s := lslot{ed, graph.Backward}
					if free(s) && e.prevForward[ed] != nil {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					s := lslot{ed, graph.Backward}
					if free(s) {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Up {
					s := lslot{ed, graph.Forward}
					if free(s) {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				if cfg.Faults != nil {
					stalled[p] = true
					res.FaultStalls++
					continue
				}
				return fmt.Errorf("dynamic: step %d: node %d over capacity", t, v)
			}
			res.Deflections++
		}
	}

	for i := range e.curForward {
		e.curForward[i] = nil
	}
	survivors := e.live[:0]
	for i := range e.at {
		e.at[i] = e.at[i][:0]
	}
	for _, p := range e.live {
		if stalled[p] {
			survivors = append(survivors, p)
			e.at[p.cur] = append(e.at[p.cur], p)
			continue
		}
		s := granted[p]
		dest := e.g.EndpointAt(s.e, s.d)
		if len(p.path) > 0 && p.path[0] == s.e {
			p.path = p.path[1:]
		} else {
			p.path = append([]graph.EdgeID{s.e}, p.path...)
		}
		p.cur = dest
		p.arrivalEdge, p.arrivalDir = s.e, s.d
		if s.d == graph.Forward {
			e.curForward[s.e] = p
		}
		if p.cur == p.dst {
			res.Delivered++
			if tt := e.tenant(p.tenant); tt != nil {
				tt.Delivered++
			}
			e.digest = foldDigest(e.digest, uint64(p.id))
			e.digest = foldDigest(e.digest, uint64(p.dst))
			e.digest = foldDigest(e.digest, uint64(p.inject))
			e.digest = foldDigest(e.digest, uint64(t+1))
			if p.inject >= cfg.Warmup {
				e.lat.add(float64(t + 1 - p.inject))
			}
			if cfg.Window > 0 {
				e.wDelivered++
				e.wLatSum += float64(t + 1 - p.inject)
			}
			continue
		}
		survivors = append(survivors, p)
		e.at[p.cur] = append(e.at[p.cur], p)
	}
	e.live = survivors
	e.prevForward, e.curForward = e.curForward, e.prevForward
	e.step = t + 1
	res.ExecutedSteps = e.step

	if t >= cfg.Warmup {
		e.inFlightSum += float64(len(e.live))
		e.inFlightSamples++
	}
	if len(e.live) > res.PeakInFlight {
		res.PeakInFlight = len(e.live)
	}
	if cfg.Window > 0 {
		e.wFlySum += float64(len(e.live))
		if cfg.Faults == nil {
			e.wAvailSum++
		} else {
			downEdges := 0
			for ed := 0; ed < e.g.NumEdges(); ed++ {
				if cfg.Faults(graph.EdgeID(ed), t) {
					downEdges++
				}
			}
			e.wAvailSum += 1 - float64(downEdges)/float64(e.g.NumEdges())
		}
		e.wSpan++
		if (t+1)%cfg.Window == 0 || (cfg.Steps > 0 && t == cfg.Steps-1) {
			e.closeWindow()
		}
	}
	return nil
}

// Snapshot mirrors the live engine's Snapshot against the v2 persist
// schema, emitting field-identical state from the legacy layout.
func (e *legacyEngine) Snapshot() (*persist.EngineState, error) {
	st := &persist.EngineState{
		Version: persist.EngineStateVersion,
		Kind:    persist.EngineStateKind,

		Lambda:      e.cfg.Lambda,
		Steps:       e.cfg.Steps,
		Warmup:      e.cfg.Warmup,
		Seed:        e.cfg.Seed,
		MaxInFlight: e.cfg.MaxInFlight,
		Window:      e.cfg.Window,
		Retry: persist.RetryPolicyState{
			MaxAttempts: e.cfg.Retry.MaxAttempts,
			BaseDelay:   e.cfg.Retry.BaseDelay,
			MaxDelay:    e.cfg.Retry.MaxDelay,
		},

		Step:   e.step,
		RNG:    e.src.state,
		NextID: e.nextID,

		Offered:      e.res.Offered,
		Admitted:     e.res.Admitted,
		Delivered:    e.res.Delivered,
		Retried:      e.res.Retried,
		Dropped:      e.res.Dropped,
		FaultBlocked: e.res.FaultBlocked,
		FaultStalls:  e.res.FaultStalls,
		Deflections:  e.res.Deflections,
		PeakInFlight: e.res.PeakInFlight,
		Saturated:    e.res.Saturated,

		InFlightSum:     e.inFlightSum,
		InFlightSamples: e.inFlightSamples,
		LatCount:        e.lat.count,
		LatSum:          e.lat.sum,
		LatSamples:      append([]float64(nil), e.lat.samples...),
		LatRNG:          e.lat.rng.state,

		WDelivered:   e.wDelivered,
		WSpan:        e.wSpan,
		WStart:       e.wStart,
		WLatSum:      e.wLatSum,
		WFlySum:      e.wFlySum,
		WAvailSum:    e.wAvailSum,
		WPrevBlocked: e.wPrevBlocked,
		WPrevStalls:  e.wPrevStalls,
		WPrevDropped: e.wPrevDropped,

		Digest: e.digest,
	}
	for _, w := range e.res.Windows {
		st.Windows = append(st.Windows, persist.WindowState{
			Start: w.Start, Delivered: w.Delivered,
			MeanLatency: w.MeanLatency, MeanInFlight: w.MeanInFlight,
			FaultBlocked: w.FaultBlocked, FaultStalls: w.FaultStalls,
			Dropped: w.Dropped, Availability: w.Availability,
		})
	}
	for _, p := range e.live {
		st.Packets = append(st.Packets, persist.PacketState{
			ID: p.id, Tenant: p.tenant,
			Cur: int32(p.cur), Dst: int32(p.dst),
			Path:        edgesToWire(p.path),
			ArrivalEdge: int32(p.arrivalEdge),
			ArrivalDir:  int8(p.arrivalDir),
			Inject:      p.inject,
		})
	}
	for _, en := range e.retryQ {
		st.RetryQ = append(st.RetryQ, persist.RetryState{
			Tenant: en.tenant, Src: int32(en.src), Dst: int32(en.dst),
			Path: edgesToWire(en.path), Attempts: en.attempts, Next: en.next,
		})
	}
	for _, en := range e.pending {
		st.Pending = append(st.Pending, persist.PendingState{
			Tenant: en.tenant, Random: en.random,
			Src: int32(en.src), Dst: int32(en.dst), Path: edgesToWire(en.path),
		})
	}
	for ed, p := range e.prevForward {
		if p != nil {
			st.PrevForward = append(st.PrevForward, int32(ed))
		}
	}
	if len(e.tenants) > 0 {
		st.Tenants = make(map[string]persist.TenantTotals, len(e.tenants))
		for name, tt := range e.tenants {
			st.Tenants[name] = *tt
		}
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: legacy snapshot failed self-validation: %w", err)
	}
	return st, nil
}

// driveDifferential runs the SoA and legacy engines in lockstep under a
// mixed service workload and asserts step digests and snapshot bytes
// never diverge. Midway it also round-trips the SoA engine through its
// own snapshot (as a process handoff would) and keeps comparing — the
// restored SoA engine must still track the never-restored legacy one.
func driveDifferential(t *testing.T, g *graph.Leveled, cfg Config, steps int) {
	t.Helper()
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	leg, err := newLegacyEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-draw a few valid explicit paths and (src, dst) pairs from a
	// workload RNG independent of both engines.
	wrng := rand.New(newSM64(cfg.Seed ^ 0x77))
	var explicit [][]graph.EdgeID
	var pairs [][2]graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes() && len(pairs) < 8; v++ {
		if len(g.Node(v).Up) == 0 {
			continue
		}
		reach := g.ForwardReachableFrom(v)
		for d := graph.NodeID(0); int(d) < g.NumNodes(); d++ {
			if d != v && reach[d] {
				pairs = append(pairs, [2]graph.NodeID{v, d})
				p, err := paths.RandomForwardPath(g, wrng, v, d)
				if err != nil {
					t.Fatal(err)
				}
				explicit = append(explicit, p)
				break
			}
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no usable (src, dst) pairs")
	}

	submitBoth := func(s int) {
		switch s % 4 {
		case 0:
			if err := eng.SubmitRandom("gold", 3); err != nil {
				t.Fatal(err)
			}
			if err := leg.SubmitRandom("gold", 3); err != nil {
				t.Fatal(err)
			}
		case 1:
			pr := pairs[s%len(pairs)]
			if err := eng.Submit("free", pr[0], pr[1]); err != nil {
				t.Fatal(err)
			}
			if err := leg.Submit("free", pr[0], pr[1]); err != nil {
				t.Fatal(err)
			}
		case 2:
			p := explicit[s%len(explicit)]
			if err := eng.SubmitPath("gold", p); err != nil {
				t.Fatal(err)
			}
			if err := leg.SubmitPath("gold", p); err != nil {
				t.Fatal(err)
			}
		}
	}

	compareSnapshots := func(s int) {
		t.Helper()
		stNew, err := eng.Snapshot()
		if err != nil {
			t.Fatalf("step %d: SoA snapshot: %v", s, err)
		}
		stLeg, err := leg.Snapshot()
		if err != nil {
			t.Fatalf("step %d: legacy snapshot: %v", s, err)
		}
		bNew, err := json.Marshal(stNew)
		if err != nil {
			t.Fatal(err)
		}
		bLeg, err := json.Marshal(stLeg)
		if err != nil {
			t.Fatal(err)
		}
		if string(bNew) != string(bLeg) {
			t.Fatalf("step %d: snapshot bytes diverge:\nsoa:    %s\nlegacy: %s", s, bNew, bLeg)
		}
	}

	for s := 0; s < steps; s++ {
		submitBoth(s)
		if err := eng.Step(); err != nil {
			t.Fatalf("step %d: SoA: %v", s, err)
		}
		if err := leg.Step(); err != nil {
			t.Fatalf("step %d: legacy: %v", s, err)
		}
		if eng.Digest() != leg.Digest() {
			t.Fatalf("step %d: digest diverged: soa=%#x legacy=%#x", s, eng.Digest(), leg.Digest())
		}
		if eng.Live() != len(leg.live) || eng.QueueDepth() != len(leg.pending)+len(leg.retryQ) {
			t.Fatalf("step %d: occupancy diverged: live %d vs %d, queue %d vs %d",
				s, eng.Live(), len(leg.live), eng.QueueDepth(), len(leg.pending)+len(leg.retryQ))
		}
		if s%16 == 7 {
			compareSnapshots(s)
		}
		if s == steps/2 {
			// Round-trip the SoA engine through its own snapshot.
			st, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back persist.EngineState
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatal(err)
			}
			eng, err = Restore(g, &back, Hooks{Faults: cfg.Faults})
			if err != nil {
				t.Fatalf("step %d: restore: %v", s, err)
			}
		}
	}
	compareSnapshots(steps)
}

// TestDynamicSoAMatchesLegacy pins the SoA rebuild to the legacy
// engine: identical (seed, workload, faults, retry) configs must yield
// identical trace digests at every step and byte-identical snapshots at
// every checkpoint, across seeds × faults × retry.
func TestDynamicSoAMatchesLegacy(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42} {
		for _, faulted := range []bool{false, true} {
			for _, retry := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/faulted=%v/retry=%v", seed, faulted, retry)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						Lambda:      0.12,
						Steps:       0,
						Warmup:      2,
						Seed:        seed,
						MaxInFlight: 64,
						Window:      8,
					}
					if faulted {
						cfg.Faults = faults.Flap{Period: 16, Down: 4, Rate: 0.25}.Model(g, seed+5)
					}
					if retry {
						cfg.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 8}
					}
					driveDifferential(t, g, cfg, 96)
				})
			}
		}
	}
}
