package dynamic

// sm64 is a SplitMix64 rand.Source64. The open-system engine draws all
// of its randomness through it (wrapped in math/rand.Rand) instead of
// the runtime's default source because its entire state is one uint64 —
// the property the snapshot/restore contract rests on: persist an
// engine mid-run, restore it in a fresh process, and the RNG stream
// continues exactly where it stopped. The same generator backs
// stats.BootstrapQuantileCI for the same reason (byte-identical
// campaign summaries).
type sm64 struct{ state uint64 }

// newSM64 seeds the source. The seed passes through one mixing round so
// small consecutive seeds (1, 2, 3…) do not yield correlated streams.
func newSM64(seed int64) *sm64 {
	s := &sm64{state: uint64(seed)}
	s.Uint64()
	return s
}

// Uint64 implements rand.Source64.
func (s *sm64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *sm64) Seed(seed int64) { *s = *newSM64(seed) }
