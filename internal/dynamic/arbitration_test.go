package dynamic

import (
	"math/rand"
	"testing"

	"hotpotato/internal/topo"
)

// chi2Uniform computes the chi-square statistic of observed counts
// against a uniform expectation (mirrors internal/sim/rng_test.go).
func chi2Uniform(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// Critical chi-square values at p=0.001. The draws come from a fixed
// seed, so a pass is permanent — the cutoffs guard against a biased
// arbitration rule, not sampling noise.
var chi2Crit = map[int]float64{
	1: 10.83, // df=1
	2: 13.82, // df=2
	3: 16.27, // df=3
	7: 24.32, // df=7
}

// TestReservoirArbitrationUniform replays the engine's winner-selection
// loop — first contender seeds the slot, the k-th replaces it when
// reservoirKeep(rng, k) — over many independent conflicts and
// chi-square tests that each of k contenders wins with probability 1/k.
// The prior Intn(2) coin gave the LAST contender probability 1/2
// regardless of k (and starved the middle of a 3-way conflict down to
// 1/4); at these sample sizes that bias fails by orders of magnitude.
func TestReservoirArbitrationUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{2, 3, 4, 8} {
		counts := make([]int, k)
		const trials = 40000
		for trial := 0; trial < trials; trial++ {
			winner := 0
			for c := 1; c < k; c++ {
				if reservoirKeep(rng, c+1) {
					winner = c
				}
			}
			counts[winner]++
		}
		crit := chi2Crit[k-1]
		if chi2 := chi2Uniform(counts, trials); chi2 > crit {
			t.Errorf("k=%d: winner counts %v, chi-square %.1f exceeds %.1f (df=%d, p=0.001); arbitration is not 1/k-uniform",
				k, counts, chi2, crit, k-1)
		} else {
			t.Logf("k=%d: chi-square %.1f (df=%d)", k, chi2, k-1)
		}
	}
}

// TestReservoirArbitrationEndToEnd drives the real request loop: many
// sources contending for the same structural conflict keep long-run
// deflection counts seed-stable but — more to the point here —
// sanity-checks that the reservoir rule is actually reachable from Run
// (a conflict with k>2 contenders occurs and resolves without error).
func TestReservoirArbitrationEndToEnd(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.9, Steps: 400, Warmup: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deflections == 0 {
		t.Fatal("no deflections under heavy load; conflicts never happened")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}
