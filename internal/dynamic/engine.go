package dynamic

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/persist"
)

// TenantTotals is the engine-side per-tenant ledger (see
// persist.TenantTotals for field semantics).
type TenantTotals = persist.TenantTotals

// pendingEntry is a submitted-but-not-yet-injected packet request from
// a service batch. Random entries draw src/dst/path from the engine RNG
// at injection time; src/dst entries draw only the path; explicit-path
// entries consume no randomness. Drawing late keeps the RNG stream a
// pure function of the injection sequence, which is what makes a
// snapshot-restored run replay byte-identically.
type pendingEntry struct {
	tenant string
	random bool
	src    graph.NodeID // NoNode when random
	dst    graph.NodeID
	path   []graph.EdgeID // nil unless explicit
}

// Engine is the open-system simulator as an explicit state machine:
// NewEngine seeds it, Step advances it one slotted step, Submit* feed
// it externally-requested packets (the routing-service path), Snapshot
// freezes it between steps and Restore thaws it in another process.
// Run wraps it for the classic closed-loop λ-arrival simulation.
//
// An Engine is not safe for concurrent use; the service serializes all
// access through each topology's goroutine.
type Engine struct {
	g   *graph.Leveled
	cfg Config
	res *Result

	src *sm64
	rng *rand.Rand

	sources []graph.NodeID
	dstsOf  [][]graph.NodeID

	at      [][]*pkt
	live    []*pkt
	retryQ  []retryEntry
	pending []pendingEntry
	nextID  int

	latencies       []float64
	inFlightSum     float64
	inFlightSamples int

	prevForward, curForward []*pkt

	// Window accumulators (the open partial window).
	wDelivered, wSpan, wStart               int
	wLatSum, wFlySum, wAvailSum             float64
	wPrevBlocked, wPrevStalls, wPrevDropped int

	step      int
	digest    uint64
	tenants   map[string]*TenantTotals
	finalized bool
}

type slot struct {
	e graph.EdgeID
	d graph.Direction
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// foldDigest folds one 64-bit word into the FNV-1a running digest.
func foldDigest(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// NewEngine validates the configuration and builds a ready engine.
// Unlike Run, Steps may be 0: the engine then has no horizon and steps
// for as long as the caller keeps calling Step (the service mode).
func NewEngine(g *graph.Leveled, cfg Config) (*Engine, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("dynamic: lambda must be in [0,1], got %g", cfg.Lambda)
	}
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("dynamic: steps must be >= 0, got %d", cfg.Steps)
	}
	if cfg.Steps > 0 && cfg.Warmup >= cfg.Steps {
		return nil, fmt.Errorf("dynamic: warmup %d >= steps %d", cfg.Warmup, cfg.Steps)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("dynamic: negative warmup %d", cfg.Warmup)
	}
	if cfg.Retry.MaxAttempts < 0 || cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 {
		return nil, fmt.Errorf("dynamic: negative retry policy field: %+v", cfg.Retry)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	e := &Engine{
		g:       g,
		cfg:     cfg,
		res:     &Result{Cfg: cfg},
		src:     newSM64(cfg.Seed),
		tenants: make(map[string]*TenantTotals),
	}
	e.rng = rand.New(e.src)

	// Eligible sources and their reachable destination lists.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Node(v).Level < g.Depth() && len(g.Node(v).Up) > 0 {
			e.sources = append(e.sources, v)
		}
	}
	if len(e.sources) == 0 {
		return nil, fmt.Errorf("dynamic: network has no eligible sources")
	}
	e.dstsOf = make([][]graph.NodeID, g.NumNodes())
	for _, s := range e.sources {
		reach := g.ForwardReachableFrom(s)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v != s && reach[v] {
				e.dstsOf[s] = append(e.dstsOf[s], v)
			}
		}
	}
	e.at = make([][]*pkt, g.NumNodes())
	e.prevForward = make([]*pkt, g.NumEdges())
	e.curForward = make([]*pkt, g.NumEdges())
	return e, nil
}

// tenant returns (allocating) the ledger of a named tenant; the
// anonymous tenant "" (λ-generated arrivals) has no ledger.
func (e *Engine) tenant(name string) *TenantTotals {
	if name == "" {
		return nil
	}
	tt := e.tenants[name]
	if tt == nil {
		tt = &TenantTotals{}
		e.tenants[name] = tt
	}
	return tt
}

// Submit enqueues one src→dst packet request for injection. The path is
// drawn (uniformly over forward paths) from the engine RNG when the
// packet is injected. Validation is immediate: an unreachable pair is
// rejected here, never mid-run.
func (e *Engine) Submit(tenant string, src, dst graph.NodeID) error {
	if int(src) < 0 || int(src) >= e.g.NumNodes() || int(dst) < 0 || int(dst) >= e.g.NumNodes() {
		return fmt.Errorf("dynamic: submit: node out of range")
	}
	reachable := false
	for _, d := range e.dstsOf[src] {
		if d == dst {
			reachable = true
			break
		}
	}
	if !reachable {
		return fmt.Errorf("dynamic: submit: node %d cannot reach %d forward (or %d is not an eligible source)", src, dst, src)
	}
	e.offerPending(pendingEntry{tenant: tenant, src: src, dst: dst})
	return nil
}

// SubmitPath enqueues a packet with a fully pre-computed forward path
// (the hop-constrained / oblivious-routing client shape). The path must
// be a contiguous forward edge sequence.
func (e *Engine) SubmitPath(tenant string, path []graph.EdgeID) error {
	if len(path) == 0 {
		return fmt.Errorf("dynamic: submit: empty path")
	}
	for i, ed := range path {
		if int(ed) < 0 || int(ed) >= e.g.NumEdges() {
			return fmt.Errorf("dynamic: submit: path edge %d out of range", i)
		}
		if i > 0 && e.g.Edge(path[i]).From != e.g.Edge(path[i-1]).To {
			return fmt.Errorf("dynamic: submit: path not contiguous at hop %d", i)
		}
	}
	src := e.g.Edge(path[0]).From
	dst := e.g.Edge(path[len(path)-1]).To
	e.offerPending(pendingEntry{
		tenant: tenant, src: src, dst: dst,
		path: append([]graph.EdgeID(nil), path...),
	})
	return nil
}

// SubmitRandom enqueues n packets whose src/dst pairs and paths are
// drawn from the engine RNG at injection time — the deterministic
// load-generation shape (the whole run is a pure function of the
// submission sequence and the seed).
func (e *Engine) SubmitRandom(tenant string, n int) error {
	if n < 1 {
		return fmt.Errorf("dynamic: submit: random count %d < 1", n)
	}
	for i := 0; i < n; i++ {
		e.offerPending(pendingEntry{tenant: tenant, random: true, src: graph.NoNode, dst: graph.NoNode})
	}
	return nil
}

func (e *Engine) offerPending(en pendingEntry) {
	e.res.Offered++
	if tt := e.tenant(en.tenant); tt != nil {
		tt.Submitted++
	}
	e.pending = append(e.pending, en)
}

// inject admits a packet at src if the source is free and the in-flight
// cap allows, returning success.
func (e *Engine) inject(t int, tenant string, src, dst graph.NodeID, path []graph.EdgeID) bool {
	if len(e.at[src]) > 0 || len(e.live) >= e.cfg.MaxInFlight {
		if len(e.live) >= e.cfg.MaxInFlight {
			e.res.Saturated = true
		}
		return false
	}
	p := &pkt{id: e.nextID, tenant: tenant, cur: src, dst: dst, path: path, arrivalEdge: graph.NoEdge, inject: t}
	e.nextID++
	e.at[src] = append(e.at[src], p)
	e.live = append(e.live, p)
	e.res.Admitted++
	if tt := e.tenant(tenant); tt != nil {
		tt.Admitted++
	}
	return true
}

// closeWindow flushes the open window (no-op when windowing is off or
// the window is empty). Every mean is guarded against its empty case,
// so no exported WindowStats field can be NaN or Inf — expvar cannot
// encode either, and a single poisoned window used to break the whole
// /debug/vars endpoint.
func (e *Engine) closeWindow() {
	if e.cfg.Window <= 0 || e.wSpan == 0 {
		return
	}
	ws := WindowStats{
		Start:        e.wStart,
		Delivered:    e.wDelivered,
		MeanInFlight: safeMean(e.wFlySum, e.wSpan),
		FaultBlocked: e.res.FaultBlocked - e.wPrevBlocked,
		FaultStalls:  e.res.FaultStalls - e.wPrevStalls,
		Dropped:      e.res.Dropped - e.wPrevDropped,
		Availability: safeMean(e.wAvailSum, e.wSpan),
		MeanLatency:  safeMean(e.wLatSum, e.wDelivered),
	}
	e.res.Windows = append(e.res.Windows, ws)
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(ws, e.res)
	}
	e.wDelivered, e.wSpan = 0, 0
	e.wLatSum, e.wFlySum, e.wAvailSum = 0, 0, 0
	e.wPrevBlocked, e.wPrevStalls, e.wPrevDropped = e.res.FaultBlocked, e.res.FaultStalls, e.res.Dropped
	e.wStart = e.res.ExecutedSteps
}

// safeMean is sum/n with the empty case pinned to 0 — the NaN guard for
// every exported windowed mean.
func safeMean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FlushWindow closes the open partial window immediately (fires
// OnWindow). The graceful-drain hook: a terminating service flushes its
// last window into the live export before snapshotting.
func (e *Engine) FlushWindow() { e.closeWindow() }

func (e *Engine) down(ed graph.EdgeID, t int) bool {
	return e.cfg.Faults != nil && e.cfg.Faults(ed, t)
}

// HasWork reports whether anything is in flight or queued — the
// service's idle test (λ-driven engines always have work until their
// horizon ends).
func (e *Engine) HasWork() bool {
	return len(e.live) > 0 || len(e.pending) > 0 || len(e.retryQ) > 0
}

// StepCount returns the number of executed steps.
func (e *Engine) StepCount() int { return e.step }

// Live returns the number of in-flight packets.
func (e *Engine) Live() int { return len(e.live) }

// QueueDepth returns pending + retrying packets not yet in flight.
func (e *Engine) QueueDepth() int { return len(e.pending) + len(e.retryQ) }

// Digest returns the running trace digest: an FNV-1a hash folded over
// every delivery (id, destination, inject step, deliver step). Two runs
// with the same digest delivered the same packets at the same times —
// the equality the kill-and-restore contract is asserted with.
func (e *Engine) Digest() uint64 { return e.digest }

// Tenants returns the per-tenant ledgers (live map of live values; the
// caller must not mutate and must copy across steps).
func (e *Engine) Tenants() map[string]*TenantTotals { return e.tenants }

// Peek returns the result accumulated so far without finalizing. The
// Latency summary and AvgInFlight are only computed by Finalize.
func (e *Engine) Peek() Result { return *e.res }

// Step advances the simulation one slotted step: retries, pending
// injections, λ-arrivals, request arbitration, deflections, commit,
// window bookkeeping. It is an error to step a finalized engine.
func (e *Engine) Step() error {
	if e.finalized {
		return fmt.Errorf("dynamic: Step after Finalize")
	}
	t := e.step
	cfg := &e.cfg
	res := e.res

	// Retry admissions first: waiting packets get the source slot ahead
	// of fresh arrivals (no new packet starves a backlogged one). The
	// queue is FIFO and consumes no randomness.
	if len(e.retryQ) > 0 {
		keep := e.retryQ[:0]
		for i := range e.retryQ {
			en := e.retryQ[i]
			if en.next > t {
				keep = append(keep, en)
				continue
			}
			res.Retried++
			if tt := e.tenant(en.tenant); tt != nil {
				tt.Retried++
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				continue
			}
			en.attempts++
			if en.attempts >= cfg.Retry.MaxAttempts {
				e.dropPacket(en.tenant)
				continue
			}
			en.next = t + cfg.Retry.backoff(en.attempts)
			keep = append(keep, en)
		}
		e.retryQ = keep
	}

	// Pending service submissions: FIFO, one injection attempt each;
	// blocked entries fall into the retry queue (or are dropped when
	// retry is disabled — unlike λ-arrivals, a submitted packet is
	// always accounted for as admitted or dropped).
	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for i := range e.pending {
			en := e.pending[i]
			if en.random {
				s := e.sources[e.rng.Intn(len(e.sources))]
				cands := e.dstsOf[s]
				if len(cands) == 0 {
					// A source with no forward-reachable destination is
					// excluded from e.sources only if it has no Up edges;
					// levelized builders guarantee candidates, but guard.
					e.dropPacket(en.tenant)
					continue
				}
				en.src, en.dst = s, cands[e.rng.Intn(len(cands))]
				en.random = false
			}
			if en.path == nil {
				path, err := paths.RandomForwardPath(e.g, e.rng, en.src, en.dst)
				if err != nil {
					return fmt.Errorf("dynamic: step %d: pending path draw: %w", t, err)
				}
				en.path = path
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, retryEntry{
					tenant: en.tenant, src: en.src, dst: en.dst, path: en.path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			} else {
				e.dropPacket(en.tenant)
			}
		}
		e.pending = keep
	}

	// λ-arrivals: each source draws; blocked arrivals enter the retry
	// queue (or are lost when retry is disabled). Skipped entirely at
	// λ=0 (the pure service mode) so no randomness is consumed.
	if cfg.Lambda > 0 {
		for _, s := range e.sources {
			if e.rng.Float64() >= cfg.Lambda {
				continue
			}
			res.Offered++
			cands := e.dstsOf[s]
			if len(cands) == 0 {
				continue
			}
			dst := cands[e.rng.Intn(len(cands))]
			path, err := paths.RandomForwardPath(e.g, e.rng, s, dst)
			if err != nil {
				return err
			}
			if e.inject(t, "", s, dst, path) {
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, retryEntry{
					src: s, dst: dst, path: path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			}
		}
	}

	// Requests: every live packet chases its head; equal-priority
	// conflicts resolve by reservoir selection (1/k per contender). A
	// request for a downed edge is fault-blocked and falls through to
	// the deflection pass.
	winners := make(map[slot]*pkt, len(e.live))
	contenders := make(map[slot]int, len(e.live))
	for _, p := range e.live {
		ed := p.path[0]
		if e.down(ed, t) {
			res.FaultBlocked++
			continue
		}
		s := slot{ed, e.g.DirectionFrom(ed, p.cur)}
		k := contenders[s] + 1
		contenders[s] = k
		if k == 1 || reservoirKeep(e.rng, k) {
			winners[s] = p
		}
	}
	used := make(map[slot]bool, len(winners))
	granted := make(map[*pkt]slot, len(e.live))
	for s, p := range winners {
		used[s] = true
		granted[p] = s
	}
	// Deflect losers per node, in node-ID order (determinism).
	stalled := make(map[*pkt]bool)
	for v := graph.NodeID(0); int(v) < e.g.NumNodes(); v++ {
		ps := e.at[v]
		if len(ps) == 0 {
			continue
		}
		node := e.g.Node(v)
		free := func(s slot) bool {
			return !used[s] && !e.down(s.e, t)
		}
		for _, p := range ps {
			if _, ok := granted[p]; ok {
				continue
			}
			assigned := false
			if p.arrivalEdge != graph.NoEdge {
				s := slot{p.arrivalEdge, p.arrivalDir.Reverse()}
				if free(s) {
					granted[p], used[s] = s, true
					assigned = true
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					s := slot{ed, graph.Backward}
					if free(s) && e.prevForward[ed] != nil {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					s := slot{ed, graph.Backward}
					if free(s) {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Up {
					s := slot{ed, graph.Forward}
					if free(s) {
						granted[p], used[s] = s, true
						assigned = true
						break
					}
				}
			}
			if !assigned {
				if cfg.Faults != nil {
					// An outage consumed the node's slack: hold in place
					// for one step, the bufferless model's local escape
					// hatch under faults.
					stalled[p] = true
					res.FaultStalls++
					continue
				}
				return fmt.Errorf("dynamic: step %d: node %d over capacity", t, v)
			}
			res.Deflections++
		}
	}

	// Commit.
	for i := range e.curForward {
		e.curForward[i] = nil
	}
	survivors := e.live[:0]
	for i := range e.at {
		e.at[i] = e.at[i][:0]
	}
	for _, p := range e.live {
		if stalled[p] {
			survivors = append(survivors, p)
			e.at[p.cur] = append(e.at[p.cur], p)
			continue
		}
		s := granted[p]
		dest := e.g.EndpointAt(s.e, s.d)
		if len(p.path) > 0 && p.path[0] == s.e {
			p.path = p.path[1:]
		} else {
			p.path = append([]graph.EdgeID{s.e}, p.path...)
		}
		p.cur = dest
		p.arrivalEdge, p.arrivalDir = s.e, s.d
		if s.d == graph.Forward {
			e.curForward[s.e] = p
		}
		if p.cur == p.dst {
			res.Delivered++
			if tt := e.tenant(p.tenant); tt != nil {
				tt.Delivered++
			}
			e.digest = foldDigest(e.digest, uint64(p.id))
			e.digest = foldDigest(e.digest, uint64(p.dst))
			e.digest = foldDigest(e.digest, uint64(p.inject))
			e.digest = foldDigest(e.digest, uint64(t+1))
			if p.inject >= cfg.Warmup {
				e.latencies = append(e.latencies, float64(t+1-p.inject))
			}
			if cfg.Window > 0 {
				e.wDelivered++
				e.wLatSum += float64(t + 1 - p.inject)
			}
			continue
		}
		survivors = append(survivors, p)
		e.at[p.cur] = append(e.at[p.cur], p)
	}
	e.live = survivors
	e.prevForward, e.curForward = e.curForward, e.prevForward
	e.step = t + 1
	res.ExecutedSteps = e.step

	if t >= cfg.Warmup {
		e.inFlightSum += float64(len(e.live))
		e.inFlightSamples++
	}
	if len(e.live) > res.PeakInFlight {
		res.PeakInFlight = len(e.live)
	}
	if cfg.Window > 0 {
		e.wFlySum += float64(len(e.live))
		if cfg.Faults == nil {
			e.wAvailSum++
		} else {
			downEdges := 0
			for ed := 0; ed < e.g.NumEdges(); ed++ {
				if cfg.Faults(graph.EdgeID(ed), t) {
					downEdges++
				}
			}
			e.wAvailSum += 1 - float64(downEdges)/float64(e.g.NumEdges())
		}
		e.wSpan++
		if (t+1)%cfg.Window == 0 || (cfg.Steps > 0 && t == cfg.Steps-1) {
			e.closeWindow()
		}
	}
	return nil
}

// dropPacket records an abandoned packet against the engine and the
// tenant ledger.
func (e *Engine) dropPacket(tenant string) {
	e.res.Dropped++
	if tt := e.tenant(tenant); tt != nil {
		tt.Dropped++
	}
}

// Finalize flushes the trailing partial window, computes the latency
// summary and time-averages, stamps the trace digest, and returns the
// result. Idempotent; the engine cannot step afterwards.
func (e *Engine) Finalize() *Result {
	if !e.finalized {
		e.closeWindow()
		e.res.Latency = summarizeLatencies(e.latencies)
		e.res.AvgInFlight = safeMean(e.inFlightSum, e.inFlightSamples)
		e.res.TraceDigest = e.digest
		e.finalized = true
	}
	return e.res
}
