package dynamic

import (
	"fmt"
	"math/rand"
	"slices"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/persist"
)

// TenantTotals is the engine-side per-tenant ledger (see
// persist.TenantTotals for field semantics).
type TenantTotals = persist.TenantTotals

// pendingEntry is a submitted-but-not-yet-injected packet request from
// a service batch. Random entries draw src/dst/path from the engine RNG
// at injection time; src/dst entries draw only the path; explicit-path
// entries consume no randomness. Drawing late keeps the RNG stream a
// pure function of the injection sequence, which is what makes a
// snapshot-restored run replay byte-identically. The path backing, when
// non-nil, is a pooled buffer owned by the engine.
type pendingEntry struct {
	tenant int32 // interned; -1 anonymous
	random bool
	src    graph.NodeID // NoNode when random
	dst    graph.NodeID
	path   []graph.EdgeID // nil unless explicit or already drawn
}

// Engine is the open-system simulator as an explicit state machine:
// NewEngine seeds it, Step advances it one slotted step, Submit* feed
// it externally-requested packets (the routing-service path), Snapshot
// freezes it between steps and Restore thaws it in another process.
// Run wraps it for the classic closed-loop λ-arrival simulation.
//
// The hot path is structure-of-arrays, the design the batch engine
// proved out (internal/sim, PRs 6/7): packet state lives in flat
// parallel columns indexed by a free-listed packet slot, per-node
// occupancy is counts+offsets carved from one arena sized by the
// occ(v) <= deg(v) invariant, and the per-step request/grant/deflect
// bookkeeping is epoch-stamped scratch keyed by transmission slot
// (edge, direction) — no maps, no per-step allocation once warm. Paths
// sit in per-slot pooled buffers with prepend headroom so a deflection
// retreats in place instead of copy-prepending.
//
// An Engine is not safe for concurrent use; the service serializes all
// access through each topology's goroutine.
type Engine struct {
	g   *graph.Leveled
	cfg Config
	res *Result

	src *sm64
	rng *rand.Rand

	sources []graph.NodeID
	dstsOf  [][]graph.NodeID

	// sampler reuses one forward-path-count scratch across all path
	// draws (λ-arrivals and pending injections).
	sampler paths.ForwardPathSampler

	// pathCnt[d] is the precomputed paths.CountsTo table for eligible
	// destination d (nil = not precomputed; drawPath then falls back to
	// the counting sampler). The table depends only on d, so computing
	// the rows once at construction takes the O(V+E) counting pass off
	// the injection hot path.
	pathCnt [][]int64

	// Packet columns, indexed by slot. A slot is recycled through free
	// when its packet delivers; its path buffer stays with the slot so
	// a warm engine re-injects without allocating.
	pID      []int
	pTenant  []int32 // interned tenant id; -1 anonymous (λ-arrivals)
	pCur     []int32
	pDst     []int32
	pArrEdge []int32 // -1 = never moved
	pArrDir  []uint8
	pInject  []int
	pBuf     [][]graph.EdgeID // pooled path backing with headroom
	pHead    []int32          // index of the path head within pBuf
	pLen     []int32          // remaining path length

	free []int32 // recycled packet slots
	live []int32 // live slots in injection order

	// Per-node occupancy: atList[atOff[v]:atOff[v]+atN[v]] are the
	// slots parked at node v, in arrival order. The arena holds exactly
	// sum(deg(v)) = 2|E| entries: occupancy can never exceed degree —
	// after an injection occ(v) <= 1 (the source must be empty), and in
	// a step where any packet stays at v every healthy out-slot of v
	// carries a mover away while arrivals only come over healthy edges,
	// so arrivals <= departures and occ(v) never grows past deg(v).
	atOff    []int32 // node -> arena offset (prefix sums of degree), len N+1
	atN      []int32 // node -> current occupancy
	atList   []int32 // the arena
	occupied []int32 // nodes with atN > 0; rebuilt each commit

	// Per-transmission-slot scratch (slot si = edge<<1 | direction),
	// epoch-stamped so steps never clear it: a stamp != epoch means
	// "untouched this step".
	slotEpoch  []uint32
	slotCount  []int32 // request contenders this step
	slotWinner []int32 // surviving contender (reservoir selection)
	usedEpoch  []uint32
	winSlots   []int32 // slots that saw >= 1 request this step
	epoch      uint32

	// Per-packet-slot step scratch, same epoch discipline.
	grantEpoch []uint32
	grantSlot  []int32
	stallEpoch []uint32

	// Forward-memory bitsets (was a forward move committed on edge e
	// last step?) with dirty lists so clears cost O(moves), not O(E).
	prevFwd, curFwd           []uint64
	prevFwdDirty, curFwdDirty []int32

	// qBufPool recycles path backings of pending/retry entries.
	qBufPool [][]graph.EdgeID

	retryQ  []retryEntry
	pending []pendingEntry
	nextID  int

	lat             latReservoir
	inFlightSum     float64
	inFlightSamples int

	// Window accumulators (the open partial window).
	wDelivered, wSpan, wStart               int
	wLatSum, wFlySum, wAvailSum             float64
	wPrevBlocked, wPrevStalls, wPrevDropped int

	step   int
	digest uint64

	// Tenant interning: the hot path carries int32 ids and indexes
	// tenantTT; the name-keyed map is maintained for the Tenants() API
	// and snapshots. All three share the same *TenantTotals values.
	tenantID    map[string]int32
	tenantNames []string
	tenantTT    []*TenantTotals
	tenants     map[string]*TenantTotals

	finalized bool
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// pathHeadroom is the slack reserved on each side of a freshly
// installed path so the first deflections prepend in place.
const pathHeadroom = 8

// maxPathCntEntries caps the per-destination path-count arena (int64
// entries, so 32 MB): beyond it, path draws recount per draw instead
// of indexing precomputed tables.
const maxPathCntEntries = 1 << 22

// foldDigest folds one 64-bit word into the FNV-1a running digest.
func foldDigest(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// NewEngine validates the configuration and builds a ready engine.
// Unlike Run, Steps may be 0: the engine then has no horizon and steps
// for as long as the caller keeps calling Step (the service mode).
func NewEngine(g *graph.Leveled, cfg Config) (*Engine, error) {
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("dynamic: lambda must be in [0,1], got %g", cfg.Lambda)
	}
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("dynamic: steps must be >= 0, got %d", cfg.Steps)
	}
	if cfg.Steps > 0 && cfg.Warmup >= cfg.Steps {
		return nil, fmt.Errorf("dynamic: warmup %d >= steps %d", cfg.Warmup, cfg.Steps)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("dynamic: negative warmup %d", cfg.Warmup)
	}
	if cfg.Retry.MaxAttempts < 0 || cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 {
		return nil, fmt.Errorf("dynamic: negative retry policy field: %+v", cfg.Retry)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	e := &Engine{
		g:        g,
		cfg:      cfg,
		res:      &Result{Cfg: cfg},
		src:      newSM64(cfg.Seed),
		lat:      newLatReservoir(cfg.Seed),
		tenantID: make(map[string]int32, 8),
		tenants:  make(map[string]*TenantTotals, 8),
	}
	e.rng = rand.New(e.src)

	// Eligible sources and their reachable destination lists.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if g.Node(v).Level < g.Depth() && len(g.Node(v).Up) > 0 {
			e.sources = append(e.sources, v)
		}
	}
	if len(e.sources) == 0 {
		return nil, fmt.Errorf("dynamic: network has no eligible sources")
	}
	e.dstsOf = make([][]graph.NodeID, g.NumNodes())
	for _, s := range e.sources {
		reach := g.ForwardReachableFrom(s)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if v != s && reach[v] {
				e.dstsOf[s] = append(e.dstsOf[s], v)
			}
		}
	}

	nn, ne := g.NumNodes(), g.NumEdges()

	// Per-destination forward-path-count tables: path draws weight each
	// hop by the number of forward paths through it, and the table
	// depends only on the destination — recomputing it per draw (an
	// O(V+E) counting pass) dominated the injection phase. Precompute
	// one row per eligible destination, carved from a single arena,
	// unless the arena would exceed maxPathCntEntries (then drawPath
	// falls back to the per-draw counting sampler).
	eligibleDst := make([]bool, nn)
	rows := 0
	for _, s := range e.sources {
		for _, d := range e.dstsOf[s] {
			if !eligibleDst[d] {
				eligibleDst[d] = true
				rows++
			}
		}
	}
	e.pathCnt = make([][]int64, nn)
	if entries := rows * nn; entries > 0 && entries <= maxPathCntEntries {
		arena := make([]int64, entries)
		row := 0
		for d, ok := range eligibleDst {
			if !ok {
				continue
			}
			e.pathCnt[d] = paths.CountsTo(g, graph.NodeID(d), arena[row*nn:(row+1)*nn])
			row++
		}
	}

	e.atOff = make([]int32, nn+1)
	for v := 0; v < nn; v++ {
		e.atOff[v+1] = e.atOff[v] + int32(g.Node(graph.NodeID(v)).Degree())
	}
	e.atN = make([]int32, nn)
	e.atList = make([]int32, e.atOff[nn])
	e.occupied = make([]int32, 0, nn)
	e.slotEpoch = make([]uint32, 2*ne)
	e.slotCount = make([]int32, 2*ne)
	e.slotWinner = make([]int32, 2*ne)
	e.usedEpoch = make([]uint32, 2*ne)
	e.winSlots = make([]int32, 0, 2*ne)
	words := (ne + 63) / 64
	e.prevFwd = make([]uint64, words)
	e.curFwd = make([]uint64, words)
	e.prevFwdDirty = make([]int32, 0, ne)
	e.curFwdDirty = make([]int32, 0, ne)

	// Preallocate every hard-bounded backing so a warm engine's Step
	// never allocates. Live packets are bounded by both the admission
	// cap and the occupancy invariant (sum over v of occ(v) <= deg(v)
	// is 2|E|), so the packet columns can be built at full size up
	// front, every slot pre-fitted with a path buffer that holds a
	// maximal forward path (depth edges) plus deflection headroom.
	maxSlots := cfg.MaxInFlight
	if bound := 2 * ne; bound < maxSlots {
		maxSlots = bound
	}
	pathCap := g.Depth() + 2*pathHeadroom
	e.pID = make([]int, maxSlots)
	e.pTenant = make([]int32, maxSlots)
	e.pCur = make([]int32, maxSlots)
	e.pDst = make([]int32, maxSlots)
	e.pArrEdge = make([]int32, maxSlots)
	e.pArrDir = make([]uint8, maxSlots)
	e.pInject = make([]int, maxSlots)
	e.pBuf = make([][]graph.EdgeID, maxSlots)
	e.pHead = make([]int32, maxSlots)
	e.pLen = make([]int32, maxSlots)
	e.grantEpoch = make([]uint32, maxSlots)
	e.grantSlot = make([]int32, maxSlots)
	e.stallEpoch = make([]uint32, maxSlots)
	e.free = make([]int32, 0, maxSlots)
	for s := maxSlots - 1; s >= 0; s-- {
		e.pArrEdge[s] = -1
		e.pTenant[s] = -1
		e.pBuf[s] = make([]graph.EdgeID, pathCap)
		e.free = append(e.free, int32(s)) // pops yield 0, 1, 2, ...
	}
	e.live = make([]int32, 0, maxSlots)

	// The queue backings and the entry-path pool have no hard bound
	// (retry depth is workload-dependent), so seed them generously:
	// exceeding these is a rare cold-path growth, not a steady leak.
	e.retryQ = make([]retryEntry, 0, 64)
	e.pending = make([]pendingEntry, 0, 64)
	e.qBufPool = make([][]graph.EdgeID, 0, 128)
	for i := 0; i < 64; i++ {
		e.qBufPool = append(e.qBufPool, make([]graph.EdgeID, 0, 16))
	}
	return e, nil
}

// internTenant maps a tenant name to its dense id, allocating the
// ledger on first sight. The anonymous tenant "" (λ-generated
// arrivals) is id -1 and has no ledger.
func (e *Engine) internTenant(name string) int32 {
	if name == "" {
		return -1
	}
	if id, ok := e.tenantID[name]; ok {
		return id
	}
	id := int32(len(e.tenantNames))
	tt := &TenantTotals{}
	e.tenantID[name] = id
	e.tenantNames = append(e.tenantNames, name)
	e.tenantTT = append(e.tenantTT, tt)
	e.tenants[name] = tt
	return id
}

// ledger returns the ledger of an interned tenant id (nil for the
// anonymous tenant) without touching a map.
func (e *Engine) ledger(id int32) *TenantTotals {
	if id < 0 {
		return nil
	}
	return e.tenantTT[id]
}

// tenantName is the inverse of internTenant, for snapshots.
func (e *Engine) tenantName(id int32) string {
	if id < 0 {
		return ""
	}
	return e.tenantNames[id]
}

// Submit enqueues one src→dst packet request for injection. The path is
// drawn (uniformly over forward paths) from the engine RNG when the
// packet is injected. Validation is immediate: an unreachable pair is
// rejected here, never mid-run.
func (e *Engine) Submit(tenant string, src, dst graph.NodeID) error {
	if int(src) < 0 || int(src) >= e.g.NumNodes() || int(dst) < 0 || int(dst) >= e.g.NumNodes() {
		return fmt.Errorf("dynamic: submit: node out of range")
	}
	reachable := false
	for _, d := range e.dstsOf[src] {
		if d == dst {
			reachable = true
			break
		}
	}
	if !reachable {
		return fmt.Errorf("dynamic: submit: node %d cannot reach %d forward (or %d is not an eligible source)", src, dst, src)
	}
	e.offerPending(pendingEntry{tenant: e.internTenant(tenant), src: src, dst: dst})
	return nil
}

// SubmitPath enqueues a packet with a fully pre-computed forward path
// (the hop-constrained / oblivious-routing client shape). The path must
// be a contiguous forward edge sequence. The caller's slice is copied
// into a pooled buffer, never retained.
func (e *Engine) SubmitPath(tenant string, path []graph.EdgeID) error {
	if len(path) == 0 {
		return fmt.Errorf("dynamic: submit: empty path")
	}
	for i, ed := range path {
		if int(ed) < 0 || int(ed) >= e.g.NumEdges() {
			return fmt.Errorf("dynamic: submit: path edge %d out of range", i)
		}
		if i > 0 && e.g.Edge(path[i]).From != e.g.Edge(path[i-1]).To {
			return fmt.Errorf("dynamic: submit: path not contiguous at hop %d", i)
		}
	}
	src := e.g.Edge(path[0]).From
	dst := e.g.Edge(path[len(path)-1]).To
	e.offerPending(pendingEntry{
		tenant: e.internTenant(tenant), src: src, dst: dst,
		path: append(e.borrowQBuf(), path...),
	})
	return nil
}

// SubmitRandom enqueues n packets whose src/dst pairs and paths are
// drawn from the engine RNG at injection time — the deterministic
// load-generation shape (the whole run is a pure function of the
// submission sequence and the seed).
func (e *Engine) SubmitRandom(tenant string, n int) error {
	if n < 1 {
		return fmt.Errorf("dynamic: submit: random count %d < 1", n)
	}
	id := e.internTenant(tenant)
	for i := 0; i < n; i++ {
		e.offerPending(pendingEntry{tenant: id, random: true, src: graph.NoNode, dst: graph.NoNode})
	}
	return nil
}

func (e *Engine) offerPending(en pendingEntry) {
	e.res.Offered++
	if tt := e.ledger(en.tenant); tt != nil {
		tt.Submitted++
	}
	e.pending = append(e.pending, en)
}

// drawPath samples a forward src→dst path into a pooled buffer — the
// RNG consumption of paths.RandomForwardPath, minus its counting pass
// whenever dst has a precomputed table.
func (e *Engine) drawPath(src, dst graph.NodeID) ([]graph.EdgeID, error) {
	if cnt := e.pathCnt[dst]; cnt != nil {
		return paths.AppendPathCounted(e.g, e.rng, src, dst, cnt, e.borrowQBuf())
	}
	return e.sampler.AppendPath(e.g, e.rng, src, dst, e.borrowQBuf())
}

// borrowQBuf takes a pooled path backing for a pending/retry entry.
func (e *Engine) borrowQBuf() []graph.EdgeID {
	if n := len(e.qBufPool); n > 0 {
		b := e.qBufPool[n-1]
		e.qBufPool = e.qBufPool[:n-1]
		return b[:0]
	}
	return make([]graph.EdgeID, 0, 16)
}

// returnQBuf puts an entry's path backing back in the pool.
func (e *Engine) returnQBuf(b []graph.EdgeID) {
	if cap(b) > 0 {
		e.qBufPool = append(e.qBufPool, b)
	}
}

// allocSlot takes a packet slot from the free list, growing the columns
// when none are available. Recycled slots keep their path buffer.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	s := int32(len(e.pID))
	e.pID = append(e.pID, 0)
	e.pTenant = append(e.pTenant, -1)
	e.pCur = append(e.pCur, 0)
	e.pDst = append(e.pDst, 0)
	e.pArrEdge = append(e.pArrEdge, -1)
	e.pArrDir = append(e.pArrDir, 0)
	e.pInject = append(e.pInject, 0)
	e.pBuf = append(e.pBuf, nil)
	e.pHead = append(e.pHead, 0)
	e.pLen = append(e.pLen, 0)
	e.grantEpoch = append(e.grantEpoch, 0)
	e.grantSlot = append(e.grantSlot, 0)
	e.stallEpoch = append(e.stallEpoch, 0)
	return s
}

// setPath installs a path into slot s's buffer, centered so both
// prepends (deflection retreats) and head pops advance in place. The
// buffer only ever grows, so a warm slot installs without allocating.
func (e *Engine) setPath(s int32, path []graph.EdgeID) {
	need := len(path) + 2*pathHeadroom
	buf := e.pBuf[s]
	if cap(buf) < need {
		buf = make([]graph.EdgeID, need)
	} else {
		buf = buf[:cap(buf)]
	}
	head := (len(buf) - len(path)) / 2
	copy(buf[head:], path)
	e.pBuf[s] = buf
	e.pHead[s] = int32(head)
	e.pLen[s] = int32(len(path))
}

// prependEdge pushes one edge in front of slot s's path head: the
// in-place replacement for the old copy-prepend on every deflection.
// When the left headroom is exhausted it recenters within the buffer
// (pops free space on the left over time) or grows it.
func (e *Engine) prependEdge(s int32, ed graph.EdgeID) {
	if e.pHead[s] == 0 {
		buf, n := e.pBuf[s], int(e.pLen[s])
		if n < len(buf) {
			shift := (len(buf) - n + 1) / 2
			copy(buf[shift:shift+n], buf[:n])
			e.pHead[s] = int32(shift)
		} else {
			nbuf := make([]graph.EdgeID, 2*len(buf)+2*pathHeadroom)
			head := (len(nbuf) - n) / 2
			copy(nbuf[head:], buf[:n])
			e.pBuf[s] = nbuf
			e.pHead[s] = int32(head)
		}
	}
	e.pHead[s]--
	e.pBuf[s][e.pHead[s]] = ed
	e.pLen[s]++
}

// parkAt appends slot s to node v's occupancy list. Overflow past
// deg(v) is impossible by the occupancy invariant (see the atOff field
// comment); it panics rather than corrupt a neighbor's list.
func (e *Engine) parkAt(v graph.NodeID, s int32) {
	n := e.atN[v]
	off := e.atOff[v]
	if off+n >= e.atOff[v+1] {
		panic(fmt.Sprintf("dynamic: node %d occupancy exceeds degree %d", v, e.atOff[v+1]-off))
	}
	if n == 0 {
		e.occupied = append(e.occupied, int32(v))
	}
	e.atList[off+n] = s
	e.atN[v] = n + 1
}

// inject admits a packet at src if the source is free and the in-flight
// cap allows, returning success. The path is copied into the slot's
// pooled buffer; the caller keeps ownership of the argument.
func (e *Engine) inject(t int, tenant int32, src, dst graph.NodeID, path []graph.EdgeID) bool {
	if e.atN[src] > 0 || len(e.live) >= e.cfg.MaxInFlight {
		if len(e.live) >= e.cfg.MaxInFlight {
			e.res.Saturated = true
		}
		return false
	}
	s := e.allocSlot()
	e.pID[s] = e.nextID
	e.nextID++
	e.pTenant[s] = tenant
	e.pCur[s] = int32(src)
	e.pDst[s] = int32(dst)
	e.pArrEdge[s] = -1
	e.pArrDir[s] = 0
	e.pInject[s] = t
	e.setPath(s, path)
	e.parkAt(src, s)
	e.live = append(e.live, s)
	e.res.Admitted++
	if tt := e.ledger(tenant); tt != nil {
		tt.Admitted++
	}
	return true
}

// closeWindow flushes the open window (no-op when windowing is off or
// the window is empty). Every mean is guarded against its empty case,
// so no exported WindowStats field can be NaN or Inf — expvar cannot
// encode either, and a single poisoned window used to break the whole
// /debug/vars endpoint.
func (e *Engine) closeWindow() {
	if e.cfg.Window <= 0 || e.wSpan == 0 {
		return
	}
	ws := WindowStats{
		Start:        e.wStart,
		Delivered:    e.wDelivered,
		MeanInFlight: safeMean(e.wFlySum, e.wSpan),
		FaultBlocked: e.res.FaultBlocked - e.wPrevBlocked,
		FaultStalls:  e.res.FaultStalls - e.wPrevStalls,
		Dropped:      e.res.Dropped - e.wPrevDropped,
		Availability: safeMean(e.wAvailSum, e.wSpan),
		MeanLatency:  safeMean(e.wLatSum, e.wDelivered),
	}
	e.res.Windows = append(e.res.Windows, ws)
	if e.cfg.OnWindow != nil {
		e.cfg.OnWindow(ws, e.res)
	}
	e.wDelivered, e.wSpan = 0, 0
	e.wLatSum, e.wFlySum, e.wAvailSum = 0, 0, 0
	e.wPrevBlocked, e.wPrevStalls, e.wPrevDropped = e.res.FaultBlocked, e.res.FaultStalls, e.res.Dropped
	e.wStart = e.res.ExecutedSteps
}

// safeMean is sum/n with the empty case pinned to 0 — the NaN guard for
// every exported windowed mean.
func safeMean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FlushWindow closes the open partial window immediately (fires
// OnWindow). The graceful-drain hook: a terminating service flushes its
// last window into the live export before snapshotting.
func (e *Engine) FlushWindow() { e.closeWindow() }

func (e *Engine) down(ed graph.EdgeID, t int) bool {
	return e.cfg.Faults != nil && e.cfg.Faults(ed, t)
}

// HasWork reports whether anything is in flight or queued — the
// service's idle test (λ-driven engines always have work until their
// horizon ends).
func (e *Engine) HasWork() bool {
	return len(e.live) > 0 || len(e.pending) > 0 || len(e.retryQ) > 0
}

// StepCount returns the number of executed steps.
func (e *Engine) StepCount() int { return e.step }

// Live returns the number of in-flight packets.
func (e *Engine) Live() int { return len(e.live) }

// QueueDepth returns pending + retrying packets not yet in flight.
func (e *Engine) QueueDepth() int { return len(e.pending) + len(e.retryQ) }

// Digest returns the running trace digest: an FNV-1a hash folded over
// every delivery (id, destination, inject step, deliver step). Two runs
// with the same digest delivered the same packets at the same times —
// the equality the kill-and-restore contract is asserted with.
func (e *Engine) Digest() uint64 { return e.digest }

// Tenants returns the per-tenant ledgers (live map of live values; the
// caller must not mutate and must copy across steps).
func (e *Engine) Tenants() map[string]*TenantTotals { return e.tenants }

// Peek returns the result accumulated so far without finalizing. The
// Latency summary and AvgInFlight are only computed by Finalize.
func (e *Engine) Peek() Result { return *e.res }

// Step advances the simulation one slotted step: retries, pending
// injections, λ-arrivals, request arbitration, deflections, commit,
// window bookkeeping. It is an error to step a finalized engine.
func (e *Engine) Step() error {
	if e.finalized {
		return fmt.Errorf("dynamic: Step after Finalize")
	}
	t := e.step
	cfg := &e.cfg
	res := e.res

	// Retry admissions first: waiting packets get the source slot ahead
	// of fresh arrivals (no new packet starves a backlogged one). The
	// queue is FIFO and consumes no randomness.
	if len(e.retryQ) > 0 {
		keep := e.retryQ[:0]
		for i := range e.retryQ {
			en := e.retryQ[i]
			if en.next > t {
				keep = append(keep, en)
				continue
			}
			res.Retried++
			if tt := e.ledger(en.tenant); tt != nil {
				tt.Retried++
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				e.returnQBuf(en.path)
				continue
			}
			en.attempts++
			if en.attempts >= cfg.Retry.MaxAttempts {
				e.dropPacket(en.tenant)
				e.returnQBuf(en.path)
				continue
			}
			en.next = t + cfg.Retry.backoff(en.attempts)
			keep = append(keep, en)
		}
		e.retryQ = keep
	}

	// Pending service submissions: FIFO, one injection attempt each;
	// blocked entries fall into the retry queue (or are dropped when
	// retry is disabled — unlike λ-arrivals, a submitted packet is
	// always accounted for as admitted or dropped).
	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for i := range e.pending {
			en := e.pending[i]
			if en.random {
				s := e.sources[e.rng.Intn(len(e.sources))]
				cands := e.dstsOf[s]
				if len(cands) == 0 {
					// A source with no forward-reachable destination is
					// excluded from e.sources only if it has no Up edges;
					// levelized builders guarantee candidates, but guard.
					e.dropPacket(en.tenant)
					continue
				}
				en.src, en.dst = s, cands[e.rng.Intn(len(cands))]
				en.random = false
			}
			if en.path == nil {
				path, err := e.drawPath(en.src, en.dst)
				if err != nil {
					return fmt.Errorf("dynamic: step %d: pending path draw: %w", t, err)
				}
				en.path = path
			}
			if e.inject(t, en.tenant, en.src, en.dst, en.path) {
				e.returnQBuf(en.path)
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, retryEntry{
					tenant: en.tenant, src: en.src, dst: en.dst, path: en.path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			} else {
				e.dropPacket(en.tenant)
				e.returnQBuf(en.path)
			}
		}
		e.pending = keep
	}

	// λ-arrivals: each source draws; blocked arrivals enter the retry
	// queue (or are lost when retry is disabled). Skipped entirely at
	// λ=0 (the pure service mode) so no randomness is consumed.
	if cfg.Lambda > 0 {
		for _, s := range e.sources {
			if e.rng.Float64() >= cfg.Lambda {
				continue
			}
			res.Offered++
			cands := e.dstsOf[s]
			if len(cands) == 0 {
				continue
			}
			dst := cands[e.rng.Intn(len(cands))]
			path, err := e.drawPath(s, dst)
			if err != nil {
				return err
			}
			if e.inject(t, -1, s, dst, path) {
				e.returnQBuf(path)
				continue
			}
			if cfg.Retry.enabled() {
				e.retryQ = append(e.retryQ, retryEntry{
					tenant: -1, src: s, dst: dst, path: path,
					attempts: 1, next: t + cfg.Retry.backoff(1),
				})
			} else {
				e.returnQBuf(path)
			}
		}
	}

	// Requests: every live packet chases its head; equal-priority
	// conflicts resolve by reservoir selection (1/k per contender, in
	// live order — the exact RNG consumption of the map-based engine).
	// A request for a downed edge is fault-blocked and falls through to
	// the deflection pass.
	e.epoch++
	ep := e.epoch
	e.winSlots = e.winSlots[:0]
	for _, s := range e.live {
		ed := e.pBuf[s][e.pHead[s]]
		if e.down(ed, t) {
			res.FaultBlocked++
			continue
		}
		d := e.g.DirectionFrom(ed, graph.NodeID(e.pCur[s]))
		si := int32(ed)<<1 | int32(d)
		k := int32(1)
		if e.slotEpoch[si] == ep {
			k = e.slotCount[si] + 1
		} else {
			e.slotEpoch[si] = ep
			e.winSlots = append(e.winSlots, si)
		}
		e.slotCount[si] = k
		if k == 1 || reservoirKeep(e.rng, int(k)) {
			e.slotWinner[si] = s
		}
	}
	for _, si := range e.winSlots {
		e.usedEpoch[si] = ep
		w := e.slotWinner[si]
		e.grantEpoch[w] = ep
		e.grantSlot[w] = si
	}

	// Deflect losers per node, in node-ID order (determinism): arrival
	// reversal first, then safe-backward (an edge that carried a
	// forward move last step), then any backward, then any forward.
	slices.Sort(e.occupied)
	for _, vi := range e.occupied {
		v := graph.NodeID(vi)
		lst := e.atList[e.atOff[v] : e.atOff[v]+e.atN[v]]
		node := e.g.Node(v)
		for _, s := range lst {
			if e.grantEpoch[s] == ep {
				continue
			}
			assigned := false
			if ae := e.pArrEdge[s]; ae != -1 {
				rd := graph.Direction(e.pArrDir[s]).Reverse()
				si := ae<<1 | int32(rd)
				if e.usedEpoch[si] != ep && !e.down(graph.EdgeID(ae), t) {
					e.usedEpoch[si], e.grantEpoch[s], e.grantSlot[s] = ep, ep, si
					assigned = true
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					si := int32(ed)<<1 | int32(graph.Backward)
					if e.usedEpoch[si] != ep && !e.down(ed, t) &&
						e.prevFwd[ed>>6]&(1<<(uint(ed)&63)) != 0 {
						e.usedEpoch[si], e.grantEpoch[s], e.grantSlot[s] = ep, ep, si
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Down {
					si := int32(ed)<<1 | int32(graph.Backward)
					if e.usedEpoch[si] != ep && !e.down(ed, t) {
						e.usedEpoch[si], e.grantEpoch[s], e.grantSlot[s] = ep, ep, si
						assigned = true
						break
					}
				}
			}
			if !assigned {
				for _, ed := range node.Up {
					si := int32(ed)<<1 | int32(graph.Forward)
					if e.usedEpoch[si] != ep && !e.down(ed, t) {
						e.usedEpoch[si], e.grantEpoch[s], e.grantSlot[s] = ep, ep, si
						assigned = true
						break
					}
				}
			}
			if !assigned {
				if cfg.Faults != nil {
					// An outage consumed the node's slack: hold in place
					// for one step, the bufferless model's local escape
					// hatch under faults.
					e.stallEpoch[s] = ep
					res.FaultStalls++
					continue
				}
				return fmt.Errorf("dynamic: step %d: node %d over capacity", t, v)
			}
			res.Deflections++
		}
	}

	// Commit: clear occupancy (O(occupied), not O(N)) and re-park every
	// survivor in live order — the same arrival order the map engine's
	// append-per-node sweep produced.
	survivors := e.live[:0]
	for _, vi := range e.occupied {
		e.atN[vi] = 0
	}
	e.occupied = e.occupied[:0]
	for _, s := range e.live {
		if e.stallEpoch[s] == ep {
			survivors = append(survivors, s)
			e.parkAt(graph.NodeID(e.pCur[s]), s)
			continue
		}
		si := e.grantSlot[s]
		ed := graph.EdgeID(si >> 1)
		d := graph.Direction(si & 1)
		dest := e.g.EndpointAt(ed, d)
		if e.pLen[s] > 0 && e.pBuf[s][e.pHead[s]] == ed {
			e.pHead[s]++
			e.pLen[s]--
		} else {
			e.prependEdge(s, ed)
		}
		e.pCur[s] = int32(dest)
		e.pArrEdge[s] = int32(ed)
		e.pArrDir[s] = uint8(d)
		if d == graph.Forward {
			e.curFwd[ed>>6] |= 1 << (uint(ed) & 63)
			e.curFwdDirty = append(e.curFwdDirty, int32(ed))
		}
		if dest == graph.NodeID(e.pDst[s]) {
			res.Delivered++
			if tt := e.ledger(e.pTenant[s]); tt != nil {
				tt.Delivered++
			}
			e.digest = foldDigest(e.digest, uint64(e.pID[s]))
			e.digest = foldDigest(e.digest, uint64(e.pDst[s]))
			e.digest = foldDigest(e.digest, uint64(e.pInject[s]))
			e.digest = foldDigest(e.digest, uint64(t+1))
			if e.pInject[s] >= cfg.Warmup {
				e.lat.add(float64(t + 1 - e.pInject[s]))
			}
			if cfg.Window > 0 {
				e.wDelivered++
				e.wLatSum += float64(t + 1 - e.pInject[s])
			}
			e.free = append(e.free, s)
			continue
		}
		survivors = append(survivors, s)
		e.parkAt(dest, s)
	}
	e.live = survivors
	// Swap the forward-memory bitsets and wipe the stale side through
	// its dirty list.
	e.prevFwd, e.curFwd = e.curFwd, e.prevFwd
	e.prevFwdDirty, e.curFwdDirty = e.curFwdDirty, e.prevFwdDirty
	for _, ed := range e.curFwdDirty {
		e.curFwd[ed>>6] &^= 1 << (uint(ed) & 63)
	}
	e.curFwdDirty = e.curFwdDirty[:0]
	e.step = t + 1
	res.ExecutedSteps = e.step

	if t >= cfg.Warmup {
		e.inFlightSum += float64(len(e.live))
		e.inFlightSamples++
	}
	if len(e.live) > res.PeakInFlight {
		res.PeakInFlight = len(e.live)
	}
	if cfg.Window > 0 {
		e.wFlySum += float64(len(e.live))
		if cfg.Faults == nil {
			e.wAvailSum++
		} else {
			downEdges := 0
			for ed := 0; ed < e.g.NumEdges(); ed++ {
				if cfg.Faults(graph.EdgeID(ed), t) {
					downEdges++
				}
			}
			e.wAvailSum += 1 - float64(downEdges)/float64(e.g.NumEdges())
		}
		e.wSpan++
		if (t+1)%cfg.Window == 0 || (cfg.Steps > 0 && t == cfg.Steps-1) {
			e.closeWindow()
		}
	}
	return nil
}

// dropPacket records an abandoned packet against the engine and the
// tenant ledger.
func (e *Engine) dropPacket(tenant int32) {
	e.res.Dropped++
	if tt := e.ledger(tenant); tt != nil {
		tt.Dropped++
	}
}

// Finalize flushes the trailing partial window, computes the latency
// summary and time-averages, stamps the trace digest, and returns the
// result. Idempotent; the engine cannot step afterwards.
func (e *Engine) Finalize() *Result {
	if !e.finalized {
		e.closeWindow()
		e.res.Latency = e.lat.summary()
		e.res.AvgInFlight = safeMean(e.inFlightSum, e.inFlightSamples)
		e.res.TraceDigest = e.digest
		e.finalized = true
	}
	return e.res
}
