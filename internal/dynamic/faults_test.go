package dynamic

import (
	"fmt"
	"testing"

	"hotpotato/internal/faults"
	"hotpotato/internal/topo"
)

// TestDynamicSameSeedByteIdentical is the regression test for the
// map-order nondeterminism bug: the deflection pass used to iterate
// `for v, ps := range at` over a Go map, so identical seeds could
// produce different Deflections and latency series. Two runs of the
// same config must now agree on every field, windows included —
// compared as formatted bytes, not just headline counters.
func TestDynamicSameSeedByteIdentical(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	model := faults.Flap{Period: 40, Down: 6, Rate: 0.3}.Model(g, 11)
	cfg := Config{
		Lambda: 0.4, Steps: 600, Warmup: 50, Seed: 9,
		Faults: model,
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 8},
		Window: 50,
	}
	render := func() string {
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Strip Cfg (contains func values whose formatting is an
		// address) and render everything observable.
		res.Cfg = Config{}
		return fmt.Sprintf("%+v", *res)
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same seed, different run:\n%s\nvs\n%s", a, b)
	}
}

// TestDynamicFaultedRunDegradesGracefully drives the open system
// through a full mid-run outage: every edge down for a band of steps.
// Packets must block, stall in place, and resume — no over-capacity
// error, deliveries on both sides of the outage, and the degradation
// counters populated.
func TestDynamicFaultedRunDegradesGracefully(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	model := faults.LevelBand{Lo: 0, Hi: 100, From: 100, To: 120}.Model(g, 1)
	res, err := Run(g, Config{
		Lambda: 0.3, Steps: 600, Warmup: 0, Seed: 3,
		Faults: model, Window: 20,
	})
	if err != nil {
		t.Fatalf("faulted run errored: %v", err)
	}
	if res.FaultBlocked == 0 {
		t.Error("no requests blocked during a full outage")
	}
	if res.FaultStalls == 0 {
		t.Error("no stalls during a full outage; escape hatch untested")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Availability series: 0 during the outage window, 1 outside it.
	for _, w := range res.Windows {
		switch {
		case w.Start >= 100 && w.Start+20 <= 120:
			if w.Availability != 0 {
				t.Errorf("window@%d availability %g during full outage, want 0", w.Start, w.Availability)
			}
			if w.FaultBlocked == 0 && w.FaultStalls == 0 {
				t.Errorf("window@%d shows no fault activity during outage", w.Start)
			}
		case w.Start+20 <= 100 || w.Start >= 120:
			if w.Availability != 1 {
				t.Errorf("window@%d availability %g outside outage, want 1", w.Start, w.Availability)
			}
		}
	}
}

// TestDynamicStallsOnlyUnderFaults: without a fault model the engine
// must keep its over-capacity invariant (a node can always place all
// its packets) rather than silently stalling.
func TestDynamicStallsOnlyUnderFaults(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Lambda: 0.5, Steps: 500, Warmup: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultBlocked != 0 || res.FaultStalls != 0 {
		t.Errorf("fault counters nonzero without a fault model: %s", res)
	}
}

// TestRetryBackoffAdmission: under overload, the retry policy converts
// immediate losses into delayed admissions — Retried grows, exhausted
// packets are Dropped, and conservation holds (every offered packet is
// admitted, dropped, or still waiting in the queue).
func TestRetryBackoffAdmission(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Lambda: 0.9, Steps: 800, Warmup: 0, Seed: 4, MaxInFlight: 8}
	plain, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Retried != 0 || plain.Dropped != 0 {
		t.Errorf("retry counters nonzero with retry disabled: %s", plain)
	}
	cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 2, MaxDelay: 16}
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried == 0 {
		t.Error("overloaded run never retried")
	}
	if res.Dropped == 0 {
		t.Error("bounded retry under sustained overload never dropped")
	}
	if res.Admitted+res.Dropped > res.Offered {
		t.Errorf("conservation broken: admitted %d + dropped %d > offered %d",
			res.Admitted, res.Dropped, res.Offered)
	}
	// Retrying contends for the same source slots as fresh arrivals, so
	// totals shift a little — but not collapse.
	if float64(res.Admitted) < 0.9*float64(plain.Admitted) {
		t.Errorf("retry admitted %d, far below no-retry %d", res.Admitted, plain.Admitted)
	}
	if res.DropRate() <= 0 || res.DropRate() >= 1 {
		t.Errorf("drop rate %g out of (0,1)", res.DropRate())
	}
}

// TestRetryBackoffSchedule pins the bounded-exponential schedule.
func TestRetryBackoffSchedule(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 8, BaseDelay: 2, MaxDelay: 16}
	for k, want := range map[int]int{1: 2, 2: 4, 3: 8, 4: 16, 5: 16, 9: 16} {
		if got := rp.backoff(k); got != want {
			t.Errorf("backoff(%d) = %d, want %d", k, got, want)
		}
	}
	// Defaults: BaseDelay 1, MaxDelay 64.
	def := RetryPolicy{MaxAttempts: 10}
	if def.backoff(1) != 1 || def.backoff(7) != 64 || def.backoff(20) != 64 {
		t.Errorf("default schedule wrong: %d %d %d", def.backoff(1), def.backoff(7), def.backoff(20))
	}
	if (RetryPolicy{}).enabled() || (RetryPolicy{MaxAttempts: 1}).enabled() {
		t.Error("MaxAttempts <= 1 should disable retry")
	}
	// Negative policy fields are rejected up front.
	g, err := topo.Butterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Config{Lambda: 0.1, Steps: 10, Retry: RetryPolicy{MaxAttempts: -1}}); err == nil {
		t.Error("negative MaxAttempts accepted")
	}
}

// TestDynamicStopInterrupts: a fired Stop channel ends the run early
// with Interrupted set and the statistics covering the executed prefix.
func TestDynamicStopInterrupts(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	pre := make(chan struct{})
	close(pre)
	res, err := Run(g, Config{Lambda: 0.1, Steps: 500, Warmup: 0, Seed: 1, Stop: pre})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.ExecutedSteps != 0 {
		t.Errorf("pre-closed stop: interrupted=%v executed=%d", res.Interrupted, res.ExecutedSteps)
	}

	// Stop fired from the first window callback: the run ends at the
	// next step boundary, having flushed that window.
	stop := make(chan struct{})
	res2, err := Run(g, Config{
		Lambda: 0.1, Steps: 500, Warmup: 0, Seed: 1, Window: 25, Stop: stop,
		OnWindow: func(w WindowStats, r *Result) {
			select {
			case <-stop:
			default:
				close(stop)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Interrupted {
		t.Error("stop during run did not interrupt")
	}
	if res2.ExecutedSteps != 25 {
		t.Errorf("executed %d steps, want 25 (stop checked at next step)", res2.ExecutedSteps)
	}
	if len(res2.Windows) != 1 {
		t.Errorf("windows = %d, want the one flushed before stop", len(res2.Windows))
	}
}
