package faults

import (
	"math"
	"math/rand"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
)

func ladder(t *testing.T, depth int) *graph.Leveled {
	t.Helper()
	g, err := topo.Ladder(depth)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// assertPure spot-checks the engine's fault contract: the model's
// answer for a (edge, step) tuple never changes across repeated and
// out-of-order calls.
func assertPure(t *testing.T, g *graph.Leveled, m sim.FaultModel, horizon int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	type key struct {
		e graph.EdgeID
		t int
	}
	seen := map[key]bool{}
	for i := 0; i < 2000; i++ {
		k := key{graph.EdgeID(rng.Intn(g.NumEdges())), rng.Intn(horizon)}
		v := m(k.e, k.t)
		if prev, ok := seen[k]; ok && prev != v {
			t.Fatalf("model impure at (%d,%d): %v then %v", k.e, k.t, prev, v)
		}
		seen[k] = v
	}
}

func TestLinkDownWindow(t *testing.T) {
	g := ladder(t, 4)
	m := LinkDown{Edge: 2, From: 10, To: 20}.Model(g, 1)
	for _, tc := range []struct {
		e    graph.EdgeID
		t    int
		want bool
	}{
		{2, 9, false}, {2, 10, true}, {2, 19, true}, {2, 20, false}, {3, 15, false},
	} {
		if got := m(tc.e, tc.t); got != tc.want {
			t.Errorf("m(%d,%d) = %v, want %v", tc.e, tc.t, got, tc.want)
		}
	}
	// Out-of-range edge and empty window bind to the never-firing model.
	if m := (LinkDown{Edge: 9999, From: 0, To: 10}).Model(g, 1); m(0, 5) {
		t.Error("out-of-range edge fired")
	}
	if m := (LinkDown{Edge: 1, From: 10, To: 10}).Model(g, 1); m(1, 10) {
		t.Error("empty window fired")
	}
}

func TestFlapPeriodAndRate(t *testing.T) {
	g := ladder(t, 30)
	m := Flap{Period: 20, Down: 5, Rate: 1}.Model(g, 7)
	assertPure(t, g, m, 400)
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		down := 0
		for step := 0; step < 400; step++ {
			if m(e, step) {
				down++
			}
		}
		// Every edge flaps at rate=1: exactly Down out of every Period.
		if down != 400/20*5 {
			t.Fatalf("edge %d down %d/400 steps, want %d", e, down, 400/20*5)
		}
		// And flaps are periodic.
		for step := 0; step < 50; step++ {
			if m(e, step) != m(e, step+20) {
				t.Fatalf("edge %d not periodic at step %d", e, step)
			}
		}
	}
	// Rate selects roughly that fraction of edges.
	sel := Flap{Period: 20, Down: 5, Rate: 0.3}.Model(g, 7)
	flapping := 0
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		for step := 0; step < 20; step++ {
			if sel(e, step) {
				flapping++
				break
			}
		}
	}
	frac := float64(flapping) / float64(g.NumEdges())
	if frac < 0.1 || frac > 0.55 {
		t.Errorf("flapping fraction %.2f, want near 0.3", frac)
	}
	// Phases differ across edges (not lockstep).
	lockstep := true
	for e := graph.EdgeID(1); int(e) < g.NumEdges(); e++ {
		for step := 0; step < 20; step++ {
			if m(0, step) != m(e, step) {
				lockstep = false
			}
		}
	}
	if lockstep {
		t.Error("all edges flap in lockstep; phases are not derived per edge")
	}
}

func TestGilbertElliottStationaryFractionAndBursts(t *testing.T) {
	g := ladder(t, 50)
	const downFrac, meanBurst = 0.1, 6
	m := GilbertElliott{DownFrac: downFrac, MeanBurst: meanBurst}.Model(g, 3)
	assertPure(t, g, m, 5000)
	down, total := 0, 0
	var bursts []int
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		run := 0
		for step := 0; step < 3000; step++ {
			total++
			if m(e, step) {
				down++
				run++
			} else if run > 0 {
				bursts = append(bursts, run)
				run = 0
			}
		}
	}
	frac := float64(down) / float64(total)
	if math.Abs(frac-downFrac) > 0.04 {
		t.Errorf("stationary down fraction %.3f, want near %.2f", frac, downFrac)
	}
	if len(bursts) == 0 {
		t.Fatal("no bursts observed")
	}
	sum := 0
	for _, b := range bursts {
		sum += b
	}
	mean := float64(sum) / float64(len(bursts))
	if mean < 2 || mean > 2*meanBurst {
		t.Errorf("mean burst length %.1f, want near %d", mean, meanBurst)
	}
}

func TestNodeOutageCoversIncidentEdges(t *testing.T) {
	g := ladder(t, 4)
	var v graph.NodeID = g.Level(2)[0]
	m := NodeOutage{Node: v, From: 5, To: 15}.Model(g, 1)
	n := g.Node(v)
	for _, e := range append(append([]graph.EdgeID{}, n.Up...), n.Down...) {
		if !m(e, 10) {
			t.Errorf("incident edge %d not down during outage", e)
		}
		if m(e, 4) || m(e, 15) {
			t.Errorf("incident edge %d down outside window", e)
		}
	}
	// A non-incident edge stays up.
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		ed := g.Edge(e)
		if ed.From != v && ed.To != v && m(e, 10) {
			t.Errorf("non-incident edge %d down", e)
		}
	}
}

func TestLevelBandCorrelatedOutage(t *testing.T) {
	g := ladder(t, 6)
	m := LevelBand{Lo: 2, Hi: 4, From: 10, To: 20}.Model(g, 1)
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		l := g.Node(g.Edge(e).From).Level
		want := l >= 2 && l < 4
		if m(e, 12) != want {
			t.Errorf("edge %d (level %d->%d): down=%v, want %v", e, l, l+1, m(e, 12), want)
		}
		if m(e, 9) || m(e, 20) {
			t.Errorf("edge %d down outside window", e)
		}
	}
	// Empty band binds to the never-firing model.
	if m := (LevelBand{Lo: 40, Hi: 50, From: 0, To: 10}).Model(g, 1); m(0, 5) {
		t.Error("empty band fired")
	}
}

func TestOverlayORsAndDerivesMemberSeeds(t *testing.T) {
	g := ladder(t, 6)
	c := Overlay(
		LinkDown{Edge: 1, From: 0, To: 10},
		LinkDown{Edge: 2, From: 5, To: 15},
		nil,
	)
	m := c.Model(g, 1)
	if !m(1, 3) || !m(2, 7) {
		t.Error("overlay missed a member window")
	}
	if m(1, 12) || m(3, 3) {
		t.Error("overlay invented a fault")
	}
	// Two identical stochastic members must not mirror each other:
	// their overlay fires strictly more often than one member alone.
	one := Hash{Rate: 0.2, Window: 4}
	both := Overlay(one, one).Model(g, 9)
	single := one.Model(g, 9)
	moreDown, singleDown := 0, 0
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		for step := 0; step < 400; step++ {
			if both(e, step) {
				moreDown++
			}
			if single(e, step) {
				singleDown++
			}
		}
	}
	if moreDown <= singleDown {
		t.Errorf("overlay of two independent members fired %d <= single %d; member seeds are not derived",
			moreDown, singleDown)
	}
	if Overlay(one) != Campaign(one) {
		t.Error("single-member overlay should collapse to the member")
	}
}

func TestAvailabilityGauge(t *testing.T) {
	g := ladder(t, 4)
	if a := Availability(nil, g, 0); a != 1 {
		t.Errorf("nil model availability %g, want 1", a)
	}
	m := LevelBand{Lo: 0, Hi: 100, From: 0, To: 10}.Model(g, 1) // everything
	if a := Availability(m, g, 5); a != 0 {
		t.Errorf("full outage availability %g, want 0", a)
	}
	if a := Availability(m, g, 10); a != 1 {
		t.Errorf("post-window availability %g, want 1", a)
	}
	one := LinkDown{Edge: 0, From: 0, To: 10}.Model(g, 1)
	want := 1 - 1/float64(g.NumEdges())
	if a := Availability(one, g, 5); math.Abs(a-want) > 1e-12 {
		t.Errorf("single-edge availability %g, want %g", a, want)
	}
}

func TestParseSpecs(t *testing.T) {
	g := ladder(t, 6)
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"", true},
		{"linkdown:edge=1,from=0,to=10", true},
		{"flap:period=50,down=5,rate=0.2", true},
		{"ge:down=0.05,burst=8", true},
		{"node:node=3,from=0,to=100", true},
		{"band:lo=1,hi=3,from=10,to=20,rate=0.5", true},
		{"hash:rate=0.05,window=8", true},
		{"flap:period=50,down=5+node:node=3,from=0,to=100", true},
		{"bogus:x=1", false},
		{"flap:down=5", false},                  // missing period
		{"linkdown:edge=1,to=10,typo=3", false}, // unknown key
		{"flap:period=abc", false},              // bad int
		{"hash:rate=nope", false},               // bad float
	} {
		c, err := Parse(tc.spec)
		if tc.ok && err != nil {
			t.Errorf("Parse(%q) failed: %v", tc.spec, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("Parse(%q) accepted", tc.spec)
			}
			continue
		}
		if tc.spec == "" {
			if c != nil {
				t.Error("empty spec returned a campaign")
			}
			continue
		}
		if c == nil {
			t.Errorf("Parse(%q) returned nil campaign", tc.spec)
			continue
		}
		if c.Name() == "" {
			t.Errorf("Parse(%q): empty name", tc.spec)
		}
		m := c.Model(g, 42)
		if m == nil {
			t.Errorf("Parse(%q): nil model", tc.spec)
			continue
		}
		assertPure(t, g, m, 300)
	}
	// Overlay spec ORs its clauses.
	c, err := Parse("linkdown:edge=1,from=0,to=10+linkdown:edge=2,from=20,to=30")
	if err != nil {
		t.Fatal(err)
	}
	m := c.Model(g, 1)
	if !m(1, 5) || !m(2, 25) || m(1, 25) || m(2, 5) {
		t.Error("overlay spec semantics wrong")
	}
}

func TestModelsAreSeedDeterministic(t *testing.T) {
	g := ladder(t, 10)
	for _, c := range []Campaign{
		Flap{Period: 30, Down: 4, Rate: 0.5},
		GilbertElliott{DownFrac: 0.1, MeanBurst: 5},
		LevelBand{Lo: 1, Hi: 5, From: 0, To: 50, Rate: 0.5},
		Hash{Rate: 0.1, Window: 6},
		Overlay(Flap{Period: 30, Down: 4, Rate: 0.5}, Hash{Rate: 0.1, Window: 6}),
	} {
		a, b := c.Model(g, 11), c.Model(g, 11)
		diff := c.Model(g, 12)
		same, differs := true, false
		for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
			for step := 0; step < 200; step++ {
				if a(e, step) != b(e, step) {
					same = false
				}
				if a(e, step) != diff(e, step) {
					differs = true
				}
			}
		}
		if !same {
			t.Errorf("%s: same seed, different model", c.Name())
		}
		if !differs {
			t.Errorf("%s: seed has no effect", c.Name())
		}
	}
}
