// Package faults builds deterministic, composable fault-injection
// campaigns for the simulator's engines. A Campaign is a declarative
// description of an outage process — a scheduled link-down window, a
// periodic flap, a Gilbert–Elliott flaky link, a node outage, a
// correlated level-band outage — that binds to a concrete network and
// seed to yield a sim.FaultModel.
//
// Every model produced here honors the engine's fault contract
// (internal/sim/faults.go): it is a pure function of (edge, step),
// safe to call concurrently from shard workers, with no mutable state.
// All randomness is counter-based (the SplitMix64 finalizer over
// (seed, edge, window) tuples), so the same campaign + seed + network
// reproduce the same outage trace on every run, for every worker and
// shard count — chaos experiments stay replayable.
//
// Campaigns overlay with Overlay (an edge is down when any member says
// so), and parse from compact CLI specs with Parse (see spec.go and
// docs/FAULTS.md).
package faults

import (
	"fmt"
	"math"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// Campaign is a declarative fault process. Model binds it to a network
// and seed; the returned sim.FaultModel is pure and deterministic in
// (edge, step), per the engine's fault contract. A campaign referring
// to entities the network does not have (an edge or node ID out of
// range, an empty level band) binds to a model that never fires rather
// than erroring — campaigns are reusable across topologies.
type Campaign interface {
	// Name identifies the campaign in reports and specs.
	Name() string
	// Model binds the campaign to a network and seed.
	Model(g *graph.Leveled, seed int64) sim.FaultModel
}

// mix is the SplitMix64 finalizer — the same counter-mode mixer the
// engine's arbitration RNG uses (sim/rng.go).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash01 maps a (seed, edge, salt) tuple to a uniform float64 in [0,1).
func hash01(seed int64, e graph.EdgeID, salt uint64) float64 {
	h := mix(uint64(seed) ^ mix(uint64(e)+0x9E3779B97F4A7C15) ^ salt)
	return float64(h>>11) / (1 << 53)
}

// hashN maps a (seed, edge, window, salt) tuple to a uniform uint64.
func hashN(seed int64, e graph.EdgeID, w uint64, salt uint64) uint64 {
	return mix(uint64(seed) ^ mix(uint64(e)+0x9E3779B97F4A7C15) ^ mix(w+salt))
}

// LinkDown takes one specific edge down during the window [From, To).
// The simplest scheduled outage: a cable cut at From, repaired at To.
type LinkDown struct {
	Edge     graph.EdgeID
	From, To int
}

// Name implements Campaign.
func (c LinkDown) Name() string {
	return fmt.Sprintf("linkdown(edge=%d,[%d,%d))", c.Edge, c.From, c.To)
}

// Model implements Campaign.
func (c LinkDown) Model(g *graph.Leveled, _ int64) sim.FaultModel {
	if int(c.Edge) < 0 || int(c.Edge) >= g.NumEdges() || c.To <= c.From {
		return sim.NoFaults
	}
	edge, from, to := c.Edge, c.From, c.To
	return func(e graph.EdgeID, t int) bool {
		return e == edge && t >= from && t < to
	}
}

// Flap is a periodic link-flap process: each edge is independently
// selected with probability Rate (per seed), and every selected edge
// goes down for Down steps out of every Period, at a per-edge phase
// offset derived from the seed — so selected links flap out of sync
// rather than in lockstep.
type Flap struct {
	// Period is the flap cycle length in steps (>= 2).
	Period int
	// Down is the downtime per cycle in steps (clamped to [1, Period-1]
	// so a flapping link is never permanently down).
	Down int
	// Rate is the fraction of edges that flap (0 < Rate <= 1; 1 = all).
	Rate float64
}

// Name implements Campaign.
func (c Flap) Name() string {
	return fmt.Sprintf("flap(period=%d,down=%d,rate=%g)", c.Period, c.Down, c.Rate)
}

// Model implements Campaign.
func (c Flap) Model(_ *graph.Leveled, seed int64) sim.FaultModel {
	period, down, rate := c.Period, c.Down, c.Rate
	if period < 2 || rate <= 0 {
		return sim.NoFaults
	}
	if down < 1 {
		down = 1
	}
	if down >= period {
		down = period - 1
	}
	const selectSalt, phaseSalt = 0xF1A9, 0xF1AB
	return func(e graph.EdgeID, t int) bool {
		if rate < 1 && hash01(seed, e, selectSalt) >= rate {
			return false
		}
		phase := int(hashN(seed, e, 0, phaseSalt) % uint64(period))
		return (t+phase)%period < down
	}
}

// GilbertElliott is a flaky-link process: every edge alternates
// between a good state and a bad (down) burst, with geometric burst
// lengths of mean MeanBurst and a stationary down fraction DownFrac —
// the classic two-state Gilbert–Elliott loss chain, discretized as a
// frame-renewal process so the state at step t is a pure function of
// (edge, t): time is cut into frames of length round(MeanBurst /
// DownFrac); each (edge, frame) pair draws one geometric burst length
// and a uniform burst position from the counter hash, and the edge is
// down exactly inside that burst. Within a frame the burst is one
// contiguous outage (the chain's bad sojourn); across frames bursts
// are independent (the chain's memorylessness at renewal points).
type GilbertElliott struct {
	// DownFrac is the stationary fraction of time an edge is down
	// (0 < DownFrac < 1).
	DownFrac float64
	// MeanBurst is the mean outage burst length in steps (>= 1).
	MeanBurst int
}

// Name implements Campaign.
func (c GilbertElliott) Name() string {
	return fmt.Sprintf("ge(down=%g,burst=%d)", c.DownFrac, c.MeanBurst)
}

// Model implements Campaign.
func (c GilbertElliott) Model(_ *graph.Leveled, seed int64) sim.FaultModel {
	downFrac, meanBurst := c.DownFrac, c.MeanBurst
	if downFrac <= 0 || meanBurst < 1 {
		return sim.NoFaults
	}
	if downFrac >= 1 {
		return func(graph.EdgeID, int) bool { return true }
	}
	frame := int(float64(meanBurst)/downFrac + 0.5)
	if frame < 2 {
		frame = 2
	}
	// Geometric burst lengths via inverse CDF on the counter hash:
	// B = 1 + floor(log(1-u) / log(1-1/mean)), clamped to the frame.
	const lenSalt, posSalt = 0x6E01, 0x6E02
	return func(e graph.EdgeID, t int) bool {
		w := uint64(t/frame) + 1
		u := float64(hashN(seed, e, w, lenSalt)>>11) / (1 << 53)
		burst := geomLen(u, meanBurst)
		if burst >= frame {
			burst = frame - 1
		}
		off := int(hashN(seed, e, w, posSalt) % uint64(frame-burst+1))
		phase := t % frame
		return phase >= off && phase < off+burst
	}
}

// geomLen inverts the geometric CDF: the number of failures until the
// first success of a Bernoulli(1/mean) trial, shifted to support {1,
// 2, ...} with mean ~mean.
func geomLen(u float64, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	// 1 + floor(ln(1-u)/ln(1-p)); both logs negative, ratio positive.
	n := 1 + int(math.Log1p(-u)/math.Log1p(-p))
	if n < 1 {
		n = 1
	}
	return n
}

// NodeOutage takes a node out during [From, To): every edge incident
// to Node is down, modeling a router crash. Packets caught at the node
// stall in place (the engine's escape hatch) until repair.
type NodeOutage struct {
	Node     graph.NodeID
	From, To int
}

// Name implements Campaign.
func (c NodeOutage) Name() string {
	return fmt.Sprintf("node(%d,[%d,%d))", c.Node, c.From, c.To)
}

// Model implements Campaign.
func (c NodeOutage) Model(g *graph.Leveled, _ int64) sim.FaultModel {
	if int(c.Node) < 0 || int(c.Node) >= g.NumNodes() || c.To <= c.From {
		return sim.NoFaults
	}
	incident := make([]bool, g.NumEdges())
	n := g.Node(c.Node)
	for _, e := range n.Up {
		incident[e] = true
	}
	for _, e := range n.Down {
		incident[e] = true
	}
	from, to := c.From, c.To
	return func(e graph.EdgeID, t int) bool {
		return t >= from && t < to && incident[e]
	}
}

// LevelBand is a correlated outage: during [From, To), every selected
// edge leaving a level in [Lo, Hi) is down simultaneously — a shared
// power domain or switch-plane failure cutting a band of the network.
// Rate selects the fraction of band edges that participate (per seed);
// Rate >= 1 (or 0, the zero value's convenience default) takes the
// whole band.
type LevelBand struct {
	// Lo and Hi bound the band: an edge from level l to l+1 is in the
	// band when Lo <= l < Hi.
	Lo, Hi   int
	From, To int
	Rate     float64
}

// Name implements Campaign.
func (c LevelBand) Name() string {
	return fmt.Sprintf("band(levels=[%d,%d),[%d,%d),rate=%g)", c.Lo, c.Hi, c.From, c.To, c.Rate)
}

// Model implements Campaign.
func (c LevelBand) Model(g *graph.Leveled, seed int64) sim.FaultModel {
	if c.To <= c.From || c.Hi <= c.Lo {
		return sim.NoFaults
	}
	rate := c.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	const bandSalt = 0xBA4D
	member := make([]bool, g.NumEdges())
	any := false
	for id := 0; id < g.NumEdges(); id++ {
		l := g.Node(g.Edge(graph.EdgeID(id)).From).Level
		if l >= c.Lo && l < c.Hi && (rate >= 1 || hash01(seed, graph.EdgeID(id), bandSalt) < rate) {
			member[id] = true
			any = true
		}
	}
	if !any {
		return sim.NoFaults
	}
	from, to := c.From, c.To
	return func(e graph.EdgeID, t int) bool {
		return t >= from && t < to && member[e]
	}
}

// Hash is the memoryless per-edge process of sim.HashFaults lifted to
// a campaign: each edge is independently down for whole windows of
// Window steps with probability Rate per (edge, window).
type Hash struct {
	Rate   float64
	Window int
}

// Name implements Campaign.
func (c Hash) Name() string { return fmt.Sprintf("hash(rate=%g,window=%d)", c.Rate, c.Window) }

// Model implements Campaign.
func (c Hash) Model(_ *graph.Leveled, seed int64) sim.FaultModel {
	if c.Rate <= 0 {
		return sim.NoFaults
	}
	return sim.HashFaults(seed, c.Rate, c.Window)
}

// overlay is the Overlay combinator's campaign.
type overlay []Campaign

// Overlay combines campaigns: an edge is down at a step when any
// member campaign says so. Members bind with distinct derived seeds so
// overlapping stochastic campaigns stay independent.
func Overlay(cs ...Campaign) Campaign {
	flat := make(overlay, 0, len(cs))
	for _, c := range cs {
		if c == nil {
			continue
		}
		if o, ok := c.(overlay); ok {
			flat = append(flat, o...)
			continue
		}
		flat = append(flat, c)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

// Name implements Campaign.
func (o overlay) Name() string {
	s := "overlay("
	for i, c := range o {
		if i > 0 {
			s += " + "
		}
		s += c.Name()
	}
	return s + ")"
}

// Model implements Campaign.
func (o overlay) Model(g *graph.Leveled, seed int64) sim.FaultModel {
	models := make([]sim.FaultModel, 0, len(o))
	for i, c := range o {
		// Derive a distinct member seed so two stochastic members never
		// mirror each other's draws.
		ms := int64(mix(uint64(seed) + uint64(i)*0x9E3779B97F4A7C15))
		if m := c.Model(g, ms); m != nil {
			models = append(models, m)
		}
	}
	switch len(models) {
	case 0:
		return sim.NoFaults
	case 1:
		return models[0]
	}
	return sim.ComposeFaults(models...)
}

// Availability returns the fraction of the network's edges that are
// healthy at step t under the model (1.0 for a nil model) — the
// instantaneous degradation gauge exported through the observability
// layer.
func Availability(m sim.FaultModel, g *graph.Leveled, t int) float64 {
	if m == nil || g.NumEdges() == 0 {
		return 1
	}
	down := 0
	for e := 0; e < g.NumEdges(); e++ {
		if m(graph.EdgeID(e), t) {
			down++
		}
	}
	return 1 - float64(down)/float64(g.NumEdges())
}
