package faults

import (
	"fmt"
	"strconv"
	"strings"

	"hotpotato/internal/graph"
)

// Parse builds a campaign from a compact CLI spec: one or more clauses
// joined with "+", each "kind:key=val,key=val". The clauses overlay
// (an edge is down when any clause says so). Kinds and keys:
//
//	linkdown:edge=E,from=T0,to=T1      one edge down during [T0,T1)
//	flap:period=P,down=D[,rate=R]      periodic flaps (R of edges, default 1)
//	ge:down=F,burst=B                  Gilbert–Elliott flaky links
//	node:node=V,from=T0,to=T1          node outage (all incident edges)
//	band:lo=L0,hi=L1,from=T0,to=T1[,rate=R]  correlated level-band outage
//	hash:rate=R[,window=W]             memoryless per-edge windows (W default 8)
//
// Example: "flap:period=50,down=5,rate=0.2+node:node=7,from=100,to=200".
// An empty spec returns (nil, nil): no campaign.
func Parse(spec string) (Campaign, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var members []Campaign
	for _, clause := range strings.Split(spec, "+") {
		c, err := parseClause(strings.TrimSpace(clause))
		if err != nil {
			return nil, err
		}
		members = append(members, c)
	}
	return Overlay(members...), nil
}

// parseClause parses one "kind:key=val,..." clause.
func parseClause(clause string) (Campaign, error) {
	kind, rest, _ := strings.Cut(clause, ":")
	kind = strings.TrimSpace(kind)
	kv, err := parseKV(rest)
	if err != nil {
		return nil, fmt.Errorf("faults: clause %q: %v", clause, err)
	}
	var c Campaign
	switch kind {
	case "linkdown":
		c = LinkDown{
			Edge: graph.EdgeID(kv.geti("edge", -1)),
			From: kv.geti("from", 0),
			To:   kv.geti("to", 0),
		}
		err = kv.require("edge", "to")
	case "flap":
		c = Flap{
			Period: kv.geti("period", 0),
			Down:   kv.geti("down", 1),
			Rate:   kv.getf("rate", 1),
		}
		err = kv.require("period")
	case "ge":
		c = GilbertElliott{
			DownFrac:  kv.getf("down", 0),
			MeanBurst: kv.geti("burst", 4),
		}
		err = kv.require("down")
	case "node":
		c = NodeOutage{
			Node: graph.NodeID(kv.geti("node", -1)),
			From: kv.geti("from", 0),
			To:   kv.geti("to", 0),
		}
		err = kv.require("node", "to")
	case "band":
		c = LevelBand{
			Lo:   kv.geti("lo", 0),
			Hi:   kv.geti("hi", 0),
			From: kv.geti("from", 0),
			To:   kv.geti("to", 0),
			Rate: kv.getf("rate", 1),
		}
		err = kv.require("hi", "to")
	case "hash":
		c = Hash{
			Rate:   kv.getf("rate", 0),
			Window: kv.geti("window", 8),
		}
		err = kv.require("rate")
	default:
		return nil, fmt.Errorf("faults: unknown campaign kind %q (want linkdown|flap|ge|node|band|hash)", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("faults: clause %q: %v", clause, err)
	}
	if err := kv.unused(); err != nil {
		return nil, fmt.Errorf("faults: clause %q: %v", clause, err)
	}
	return c, nil
}

// kvSet is a parsed key=value list tracking which keys were consumed,
// so typos surface as errors instead of silently defaulting.
type kvSet struct {
	vals map[string]string
	used map[string]bool
	err  error
}

func parseKV(s string) (*kvSet, error) {
	kv := &kvSet{vals: map[string]string{}, used: map[string]bool{}}
	s = strings.TrimSpace(s)
	if s == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("malformed pair %q (want key=value)", pair)
		}
		kv.vals[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return kv, nil
}

func (kv *kvSet) geti(key string, def int) int {
	v, ok := kv.vals[key]
	if !ok {
		return def
	}
	kv.used[key] = true
	n, err := strconv.Atoi(v)
	if err != nil && kv.err == nil {
		kv.err = fmt.Errorf("key %s: %v", key, err)
	}
	return n
}

func (kv *kvSet) getf(key string, def float64) float64 {
	v, ok := kv.vals[key]
	if !ok {
		return def
	}
	kv.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && kv.err == nil {
		kv.err = fmt.Errorf("key %s: %v", key, err)
	}
	return f
}

// require reports the first missing mandatory key, or any value parse
// error accumulated by the getters.
func (kv *kvSet) require(keys ...string) error {
	if kv.err != nil {
		return kv.err
	}
	for _, k := range keys {
		if _, ok := kv.vals[k]; !ok {
			return fmt.Errorf("missing required key %q", k)
		}
	}
	return nil
}

// unused reports keys that no getter consumed (typos).
func (kv *kvSet) unused() error {
	for k := range kv.vals {
		if !kv.used[k] {
			return fmt.Errorf("unknown key %q", k)
		}
	}
	return nil
}
