package trace

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func testProblem(t *testing.T) *workload.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g, err := topo.Random(rng, 15, 2, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecorderSamples(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 2)
	r := NewRecorder(1)
	r.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	if len(r.Snapshots) != steps {
		t.Errorf("snapshots = %d, steps = %d", len(r.Snapshots), steps)
	}
	// Final snapshot has no active packets... the last step absorbs the
	// last packet, so its snapshot shows 0 active.
	last := r.Snapshots[len(r.Snapshots)-1]
	if last.Active != 0 {
		t.Errorf("final active = %d", last.Active)
	}
	// Census adds up.
	for _, s := range r.Snapshots {
		sum := 0
		for _, c := range s.PerLevel {
			sum += c
		}
		if sum != s.Active {
			t.Fatalf("snapshot %d: per-level sum %d != active %d", s.Step, sum, s.Active)
		}
	}
}

func TestRecorderEvery(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 3)
	r := NewRecorder(10)
	r.Attach(e)
	steps, _ := e.Run(100000)
	want := (steps + 9) / 10
	if len(r.Snapshots) != want {
		t.Errorf("snapshots = %d, want %d", len(r.Snapshots), want)
	}
	if NewRecorder(0).Every != 1 {
		t.Error("Every not clamped")
	}
}

// TestRecorderComposes is the regression test for Attach overwriting:
// a second attached observer must chain after the first, so both see
// the complete identical series. (The old Recorder installed itself
// with a raw observer slot; attaching anything else silenced it.)
func TestRecorderComposes(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 2)
	r1, r2 := NewRecorder(1), NewRecorder(1)
	r1.Attach(e)
	r2.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	if len(r1.Snapshots) != steps {
		t.Fatalf("first recorder: %d snapshots, %d steps — second attach silenced it", len(r1.Snapshots), steps)
	}
	if len(r2.Snapshots) != steps {
		t.Fatalf("second recorder: %d snapshots, %d steps", len(r2.Snapshots), steps)
	}
	for i := range r1.Snapshots {
		a, b := r1.Snapshots[i], r2.Snapshots[i]
		if a.Step != b.Step || a.Active != b.Active {
			t.Fatalf("snapshot %d differs between chained recorders: %+v vs %+v", i, a, b)
		}
		for l := range a.PerLevel {
			if a.PerLevel[l] != b.PerLevel[l] {
				t.Fatalf("snapshot %d level %d differs: %d vs %d", i, l, a.PerLevel[l], b.PerLevel[l])
			}
		}
	}

	// Attachments are per-run: Reset clears them, so a re-run without
	// re-attaching records nothing new.
	before := len(r1.Snapshots)
	e.Reset(2)
	if _, done := e.Run(100000); !done {
		t.Fatal("re-run did not complete")
	}
	if len(r1.Snapshots) != before {
		t.Errorf("recorder kept sampling after Reset: %d -> %d snapshots", before, len(r1.Snapshots))
	}
}

func TestWriteCSV(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 4)
	r := NewRecorder(5)
	r.Attach(e)
	e.Run(100000)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(r.Snapshots)+1 {
		t.Errorf("csv lines = %d, want %d", len(lines), len(r.Snapshots)+1)
	}
	if !strings.HasPrefix(lines[0], "step,active,l0,") {
		t.Errorf("header = %q", lines[0])
	}
	// Empty recorder still writes a header.
	var eb strings.Builder
	if err := NewRecorder(1).WriteCSV(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "step") {
		t.Error("empty CSV lacks header")
	}
}

func TestRenderFrames(t *testing.T) {
	sched := core.Schedule{P: core.Params{NumSets: 2, M: 4, W: 8, Q: 0.1}}
	L := 12
	// Phase 8: frontier 0 at level 8 (frame 5..8), frontier 1 at level
	// 4 (frame 1..4).
	out := RenderFrames(sched, L, 8, 0)
	if !strings.Contains(out, "frame 0") || !strings.Contains(out, "frame 1") {
		t.Fatalf("missing frames:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var f0 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "frame 0") {
			f0 = ln[9:]
		}
	}
	if len(f0) != L+1 {
		t.Fatalf("frame row length %d, want %d: %q", len(f0), L+1, f0)
	}
	// Round 0 target = frontier, so level 8 renders 'T', 5..7 '='.
	if f0[8] != 'T' {
		t.Errorf("frontier cell = %c, want T (target at frontier in round 0)", f0[8])
	}
	if f0[5] != '=' || f0[7] != '=' {
		t.Errorf("frame body wrong: %q", f0)
	}
	if f0[0] != '.' || f0[12] != '.' {
		t.Errorf("outside-frame cells wrong: %q", f0)
	}
	// Round 2 target shifts back one level.
	out2 := RenderFrames(sched, L, 8, 2)
	for _, ln := range strings.Split(out2, "\n") {
		if strings.HasPrefix(ln, "frame 0") {
			row := ln[9:]
			if row[7] != 'T' || row[8] != 'F' {
				t.Errorf("round 2 row wrong: %q", row)
			}
		}
	}
}

func TestRenderFramesSkipsOffscreen(t *testing.T) {
	sched := core.Schedule{P: core.Params{NumSets: 3, M: 4, W: 8, Q: 0.1}}
	// Phase 0: frame 0 partially entering at level 0; frames 1,2 fully
	// below level 0.
	out := RenderFrames(sched, 10, 0, 0)
	if strings.Contains(out, "frame 1") || strings.Contains(out, "frame 2") {
		t.Errorf("offscreen frames rendered:\n%s", out)
	}
}

func TestRenderOccupancy(t *testing.T) {
	s := Snapshot{Step: 7, PerLevel: []int{0, 3, 12}, Active: 15}
	out := RenderOccupancy(s)
	if !strings.Contains(out, ".3*") {
		t.Errorf("occupancy render = %q", out)
	}
	if !strings.Contains(out, "15 active") {
		t.Errorf("missing census: %q", out)
	}
}

func TestPipelineMovie(t *testing.T) {
	sched := core.Schedule{P: core.Params{NumSets: 2, M: 4, W: 8, Q: 0.1}}
	out := PipelineMovie(sched, 10, []int{4, 5, 6})
	if strings.Count(out, "phase") != 3 {
		t.Errorf("movie frames = %d, want 3", strings.Count(out, "phase"))
	}
}
