package trace

import (
	"strings"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
)

func TestPacketTracerAll(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 5)
	tr := NewPacketTracer(1, nil)
	tr.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	if tr.Samples() != steps {
		t.Errorf("samples = %d, steps = %d", tr.Samples(), steps)
	}
	var csv strings.Builder
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != steps+1 {
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,p0") {
		t.Errorf("header = %q", lines[0])
	}
	g := tr.Gantt()
	if strings.Count(g, "\n") != p.N() {
		t.Errorf("gantt rows = %d, want %d", strings.Count(g, "\n"), p.N())
	}
	// A packet that was absorbed shows '.' at the end of its row.
	row := strings.SplitN(g, "\n", 2)[0]
	if !strings.HasSuffix(row, ".") {
		t.Errorf("absorbed packet row should end inactive: %q", row)
	}
}

func TestPacketTracerSubset(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 6)
	tr := NewPacketTracer(2, []sim.PacketID{0, 2})
	tr.Attach(e)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	var csv strings.Builder
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if header != "step,p0,p2" {
		t.Errorf("header = %q", header)
	}
	if NewPacketTracer(0, nil).Every != 1 {
		t.Error("Every not clamped")
	}
}

func TestWriteLatenciesCSV(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 7)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	var b strings.Builder
	if err := WriteLatenciesCSV(&b, e); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != p.N()+1 {
		t.Errorf("lines = %d, want %d", len(lines), p.N()+1)
	}
	if !strings.HasPrefix(lines[0], "packet,src,dst") {
		t.Errorf("header = %q", lines[0])
	}
	// Each data row has 10 fields.
	for _, ln := range lines[1:] {
		if strings.Count(ln, ",") != 9 {
			t.Errorf("row %q has %d commas", ln, strings.Count(ln, ","))
		}
	}
}

func TestEdgeLoadRecorder(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 8)
	r := NewEdgeLoadRecorder()
	r.Attach(e)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	// Total traversals equal the engine's move count.
	sum := 0
	for _, v := range r.Total() {
		sum += v
	}
	if sum != e.M.Moves {
		t.Errorf("recorded %d traversals, engine moved %d", sum, e.M.Moves)
	}
	// Forward dominates (greedy deflects rarely on this instance).
	fwd, back := 0, 0
	for i := range r.Forward {
		fwd += r.Forward[i]
		back += r.Backward[i]
	}
	if fwd <= back {
		t.Errorf("forward=%d backward=%d; forward should dominate", fwd, back)
	}
}
