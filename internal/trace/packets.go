package trace

import (
	"fmt"
	"io"
	"strings"

	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
)

// PacketTracer records per-packet trajectories: the level of each
// tracked packet at every sampled step, plus its lifecycle events. For
// all packets pass nil ids; for a subset pass their IDs (full traces of
// large runs are memory-hungry).
type PacketTracer struct {
	Every int

	g       *graph.Leveled
	track   map[sim.PacketID]bool
	byStep  []packetSample
	tracked []sim.PacketID
}

type packetSample struct {
	step   int
	levels map[sim.PacketID]int8 // -1 = not active
}

// NewPacketTracer traces the given packets (nil = all) every `every`
// steps.
func NewPacketTracer(every int, ids []sim.PacketID) *PacketTracer {
	if every < 1 {
		every = 1
	}
	t := &PacketTracer{Every: every}
	if ids != nil {
		t.track = make(map[sim.PacketID]bool, len(ids))
		for _, id := range ids {
			t.track[id] = true
		}
		t.tracked = append([]sim.PacketID(nil), ids...)
	}
	return t
}

// Attach registers the tracer on an engine.
func (t *PacketTracer) Attach(e *sim.Engine) {
	t.g = e.G
	if t.track == nil {
		t.tracked = make([]sim.PacketID, len(e.Packets))
		for i := range e.Packets {
			t.tracked[i] = sim.PacketID(i)
		}
	}
	e.AddObserver(t.observe)
}

func (t *PacketTracer) observe(step int, e *sim.Engine) {
	if step%t.Every != 0 {
		return
	}
	s := packetSample{step: step, levels: make(map[sim.PacketID]int8, len(t.tracked))}
	for _, id := range t.tracked {
		p := &e.Packets[id]
		if p.Active {
			s.levels[id] = int8(e.G.Node(p.Cur).Level)
		} else {
			s.levels[id] = -1
		}
	}
	t.byStep = append(t.byStep, s)
}

// Samples returns the number of recorded samples.
func (t *PacketTracer) Samples() int { return len(t.byStep) }

// WriteCSV emits step-by-step levels: step, then one column per tracked
// packet (-1 when not active).
func (t *PacketTracer) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("step")
	for _, id := range t.tracked {
		fmt.Fprintf(&b, ",p%d", id)
	}
	b.WriteByte('\n')
	for _, s := range t.byStep {
		fmt.Fprintf(&b, "%d", s.step)
		for _, id := range t.tracked {
			fmt.Fprintf(&b, ",%d", s.levels[id])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series exports the recorded trajectories as one level-row per
// tracked packet (-1 = not active) plus a sample-index-to-step mapper,
// the input shape of svg.RenderTimeSpace.
func (t *PacketTracer) Series() ([][]int8, func(int) int) {
	out := make([][]int8, len(t.tracked))
	for pi, id := range t.tracked {
		row := make([]int8, len(t.byStep))
		for i, s := range t.byStep {
			row[i] = s.levels[id]
		}
		out[pi] = row
	}
	steps := make([]int, len(t.byStep))
	for i, s := range t.byStep {
		steps[i] = s.step
	}
	return out, func(i int) int { return steps[i] }
}

// Gantt renders each tracked packet's life as a row: '.' before
// injection/after absorption, digits for its level (mod 10) while
// active. One column per sample.
func (t *PacketTracer) Gantt() string {
	var b strings.Builder
	for _, id := range t.tracked {
		fmt.Fprintf(&b, "p%-4d ", id)
		for _, s := range t.byStep {
			lvl := s.levels[id]
			if lvl < 0 {
				b.WriteByte('.')
			} else {
				b.WriteByte("0123456789"[lvl%10])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// EdgeLoadRecorder counts traversals per edge (both directions) over a
// run — the raw data of a utilization heat map.
type EdgeLoadRecorder struct {
	// Forward and Backward hold per-edge traversal counts.
	Forward  []int
	Backward []int

	lastStepSeen int
}

// NewEdgeLoadRecorder builds a recorder; Attach wires it to an engine.
func NewEdgeLoadRecorder() *EdgeLoadRecorder {
	return &EdgeLoadRecorder{lastStepSeen: -1}
}

// Attach registers the recorder on an engine.
func (r *EdgeLoadRecorder) Attach(e *sim.Engine) {
	r.Forward = make([]int, e.G.NumEdges())
	r.Backward = make([]int, e.G.NumEdges())
	e.AddObserver(func(t int, en *sim.Engine) {
		// Each active or just-absorbed packet moved exactly once this
		// step; its arrival edge/direction is the traversal. Absorbed
		// packets' final hops are counted via their records too.
		for i := range en.Packets {
			p := &en.Packets[i]
			// Every packet active after this step moved during it (the
			// hot-potato invariant), including ones injected this step;
			// packets absorbed this step made their final hop too.
			moved := p.Active || (p.Absorbed && p.AbsorbTime == t+1)
			if !moved || p.ArrivalEdge == graph.NoEdge {
				continue
			}
			if p.ArrivalDir == graph.Forward {
				r.Forward[p.ArrivalEdge]++
			} else {
				r.Backward[p.ArrivalEdge]++
			}
		}
		r.lastStepSeen = t
	})
}

// Total returns combined per-edge loads.
func (r *EdgeLoadRecorder) Total() []int {
	out := make([]int, len(r.Forward))
	for i := range out {
		out[i] = r.Forward[i] + r.Backward[i]
	}
	return out
}

// WriteLatenciesCSV emits per-packet lifecycle facts from a finished
// engine: id, source, destination, path length, inject, absorb,
// latency, deflections.
func WriteLatenciesCSV(w io.Writer, e *sim.Engine) error {
	var b strings.Builder
	b.WriteString("packet,src,dst,path_len,inject,absorb,latency,deflections,forward,backward\n")
	for i := range e.Packets {
		p := &e.Packets[i]
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.ID, p.Src, p.Dst, len(p.Preselected),
			p.InjectTime, p.AbsorbTime, p.Latency(),
			p.Deflections, p.ForwardMoves, p.BackwardMoves)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
