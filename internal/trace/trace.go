// Package trace records and renders what a routing run looks like:
// per-level occupancy time series, CSV export, and an ASCII rendering
// of the frontier-frame pipeline that reproduces the paper's Figure 2.
package trace

import (
	"fmt"
	"io"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
)

// Snapshot is the per-level active-packet census at one step.
type Snapshot struct {
	Step     int
	PerLevel []int
	Active   int
}

// Recorder samples level occupancy from an engine every Every steps.
// It implements sim.Probe: the census comes straight from the engine's
// per-step snapshot (which the engine maintains from its occupied-node
// list) rather than a full packet rescan, so a sample costs one slice
// copy.
type Recorder struct {
	Every     int
	Snapshots []Snapshot
}

// NewRecorder builds a recorder sampling every `every` steps (min 1).
func NewRecorder(every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{Every: every}
}

// Attach registers the recorder on an engine. Probes compose at the
// engine (sim.Engine.AttachProbe): attaching a second recorder — or
// any other probe — chains after the first instead of replacing it.
// Attachments are per-run; Engine.Reset clears them, so re-attach
// after a reset.
func (r *Recorder) Attach(e *sim.Engine) { e.AttachProbe(r) }

// OnStep implements sim.Probe.
func (r *Recorder) OnStep(_ *sim.Engine, s *sim.StepSnapshot) {
	if s.Step%r.Every != 0 {
		return
	}
	r.Snapshots = append(r.Snapshots, Snapshot{
		Step:     s.Step,
		PerLevel: append([]int(nil), s.Occupancy...),
		Active:   s.Active,
	})
}

// WriteCSV emits the recorded series as CSV: step, active, level0..L.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if len(r.Snapshots) == 0 {
		_, err := fmt.Fprintln(w, "step,active")
		return err
	}
	var b strings.Builder
	b.WriteString("step,active")
	for l := range r.Snapshots[0].PerLevel {
		fmt.Fprintf(&b, ",l%d", l)
	}
	b.WriteByte('\n')
	for _, s := range r.Snapshots {
		fmt.Fprintf(&b, "%d,%d", s.Step, s.Active)
		for _, c := range s.PerLevel {
			fmt.Fprintf(&b, ",%d", c)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderFrames draws the frontier-frame pipeline at the given phase,
// reproducing Figure 2: one row per frontier-set, columns are network
// levels 0..L; 'F' marks the frontier, '=' the rest of the frame, 'T'
// the round's target level, '.' everything else. Only in-network
// portions are drawn (partial frames appear truncated, as in the
// figure).
func RenderFrames(sched core.Schedule, L, phase, round int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase %d, round %d (target inner-level %d)\n", phase, round, sched.TargetInner(round))
	b.WriteString("level    ")
	for l := 0; l <= L; l++ {
		b.WriteByte("0123456789"[l%10])
	}
	b.WriteByte('\n')
	for set := 0; set < sched.P.NumSets; set++ {
		f := sched.Frontier(set, phase)
		back := sched.FrameBack(set, phase)
		tl := sched.TargetLevel(set, phase, round)
		if f < 0 || back > L {
			continue // frame entirely outside the network
		}
		fmt.Fprintf(&b, "frame %-3d", set)
		for l := 0; l <= L; l++ {
			switch {
			case l == tl && l >= back && l <= f:
				b.WriteByte('T')
			case l == f:
				b.WriteByte('F')
			case l >= back && l < f:
				b.WriteByte('=')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderOccupancy draws packet counts per level as a single row of
// digits ('.' for zero, '9'-capped counts, '*' for >=10).
func RenderOccupancy(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-6d ", s.Step)
	for _, c := range s.PerLevel {
		switch {
		case c == 0:
			b.WriteByte('.')
		case c < 10:
			b.WriteByte(byte('0' + c))
		default:
			b.WriteByte('*')
		}
	}
	fmt.Fprintf(&b, "  (%d active)", s.Active)
	return b.String()
}

// PipelineMovie renders the frame pipeline at the start of each of the
// given phases — the moving version of Figure 2.
func PipelineMovie(sched core.Schedule, L int, phases []int) string {
	var b strings.Builder
	for _, ph := range phases {
		b.WriteString(RenderFrames(sched, L, ph, 0))
		b.WriteByte('\n')
	}
	return b.String()
}
