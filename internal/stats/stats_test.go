package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Median, 3) {
		t.Errorf("median = %g", s.Median)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Errorf("std = %g", s.Std)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || !almost(s.Mean, 7) || s.Std != 0 || !almost(s.Median, 7) {
		t.Errorf("single summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Error("CI95 of single sample should be 0")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
		{1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

// TestQuantilePanicsUnsorted pins the enforced caller contract: an
// unsorted sample used to return silently-wrong quantiles; now it
// panics so the bug class cannot recur.
func TestQuantilePanicsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile accepted an unsorted sample")
		}
	}()
	Quantile([]float64{10, 30, 20, 40}, 0.5)
}

func TestQuantileUnsorted(t *testing.T) {
	xs := []float64{40, 10, 30, 20}
	if got := QuantileUnsorted(xs, 0.5); !almost(got, 25) {
		t.Errorf("QuantileUnsorted(0.5) = %g, want 25", got)
	}
	// The input must not be mutated (callers keep arrival order).
	if xs[0] != 40 || xs[1] != 10 || xs[2] != 30 || xs[3] != 20 {
		t.Errorf("QuantileUnsorted mutated its input: %v", xs)
	}
	// Ties and equal runs are legal sorted input, not a contract breach.
	if got := Quantile([]float64{5, 5, 5}, 0.9); got != 5 {
		t.Errorf("Quantile of constant sample = %g", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(xs, ys)
	if !almost(f.Slope, 2) || !almost(f.Intercept, 3) || !almost(f.R2, 1) {
		t.Errorf("fit = %+v", f)
	}
	if !strings.Contains(f.String(), "R²") {
		t.Errorf("String = %q", f.String())
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// Vertical scatter: all x equal.
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || !almost(f.Intercept, 2) {
		t.Errorf("degenerate fit = %+v", f)
	}
	// Horizontal: all y equal.
	f2 := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(f2.Slope, 0) || !almost(f2.Intercept, 4) || !almost(f2.R2, 1) {
		t.Errorf("horizontal fit = %+v", f2)
	}
}

func TestFitLinearPanics(t *testing.T) {
	for _, c := range []struct{ xs, ys []float64 }{
		{[]float64{1}, []float64{1, 2}},
		{[]float64{1}, []float64{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", c)
				}
			}()
			FitLinear(c.xs, c.ys)
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 5, 5}, 5)
	if h.Total != 8 {
		t.Errorf("total = %d", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 8 {
		t.Errorf("counts sum = %d", sum)
	}
	// Max value lands in the last bin.
	if h.Counts[4] < 3 {
		t.Errorf("last bin = %d, want >= 3", h.Counts[4])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String has no bars")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(nil, 3)
	if h.Total != 0 {
		t.Errorf("empty total = %d", h.Total)
	}
	// Constant sample.
	hc := NewHistogram([]float64{2, 2, 2}, 4)
	if hc.Total != 3 || hc.Counts[0] != 3 {
		t.Errorf("constant histogram = %+v", hc)
	}
	// bins < 1 clamps to 1.
	h1 := NewHistogram([]float64{1, 2}, 0)
	if len(h1.Counts) != 1 {
		t.Errorf("bins = %d", len(h1.Counts))
	}
	if h1.Bar(0, 10) == "" {
		t.Error("Bar empty for populated bin")
	}
}

func TestMeanAndHelpers(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if MaxInt([]int{3, 9, 2}) != 9 {
		t.Error("MaxInt wrong")
	}
	if MaxInt(nil) != 0 {
		t.Error("MaxInt(nil) != 0")
	}
	fs := Floats([]int{1, 2})
	if len(fs) != 2 || fs[1] != 2 {
		t.Error("Floats wrong")
	}
}

// Property: for any sample, Min <= Median <= Max and Mean within
// [Min, Max]; quantiles are monotone in q.
func TestSummaryPropertyQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Median <= s.P90+1e-9 && s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitLinear recovers any exact line.
func TestFitLinearPropertyQuick(t *testing.T) {
	f := func(a, b int8, n uint8) bool {
		m := int(n%20) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = float64(i)
			ys[i] = float64(a)*xs[i] + float64(b)
		}
		fit := FitLinear(xs, ys)
		return math.Abs(fit.Slope-float64(a)) < 1e-6 && math.Abs(fit.Intercept-float64(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
