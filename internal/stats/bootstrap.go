package stats

import (
	"fmt"
	"math"
	"sort"
)

// splitmix64 advances the SplitMix64 state and returns the mixed
// output. The bootstrap uses it instead of math/rand so resampling is
// a pure function of the seed — campaign summaries containing bootstrap
// intervals must be byte-identical across runs, Go versions and
// machines.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// QuantileCI is a bootstrap confidence interval for one quantile.
type QuantileCI struct {
	Q        float64 `json:"q"`
	Estimate float64 `json:"estimate"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
}

// BootstrapQuantileCI estimates the conf-level percentile-bootstrap
// confidence interval of the q-quantile of xs, using iters resamples
// drawn deterministically from seed. The point estimate is the sample
// quantile itself. Returns a degenerate interval [x, x] for samples of
// size < 2. Panics on empty xs, q outside [0,1] or conf outside (0,1).
func BootstrapQuantileCI(xs []float64, q float64, iters int, seed uint64, conf float64) QuantileCI {
	if len(xs) == 0 {
		panic("stats: BootstrapQuantileCI of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: BootstrapQuantileCI quantile %g outside [0,1]", q))
	}
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stats: BootstrapQuantileCI confidence %g outside (0,1)", conf))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	est := Quantile(sorted, q)
	if len(xs) < 2 {
		return QuantileCI{Q: q, Estimate: est, Lo: est, Hi: est}
	}
	if iters < 1 {
		iters = 1000
	}
	state := seed
	n := len(sorted)
	resample := make([]float64, n)
	estimates := make([]float64, iters)
	for b := 0; b < iters; b++ {
		for i := 0; i < n; i++ {
			// Rejection-free bounded draw: the modulo bias over a 64-bit
			// stream is far below any quantile resolution at realistic n.
			resample[i] = sorted[splitmix64(&state)%uint64(n)]
		}
		sort.Float64s(resample)
		estimates[b] = Quantile(resample, q)
	}
	sort.Float64s(estimates)
	alpha := (1 - conf) / 2
	return QuantileCI{
		Q:        q,
		Estimate: est,
		Lo:       Quantile(estimates, alpha),
		Hi:       Quantile(estimates, 1-alpha),
	}
}

// PolylogFit is the least-squares fit of measured delivery times
// against the paper's shape T ≈ a · (C+L) · ln^k(LN) + b, over the
// polylog exponent k that maximizes R². The residuals (y - fitted) are
// recorded per point so a regression gate — or a reader of the
// committed campaign document — can see where the shape breaks, not
// just that it does.
type PolylogFit struct {
	// Exponent is the selected k in (C+L)·ln^k(LN).
	Exponent  int     `json:"exponent"`
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
	// Residuals[i] = ys[i] - (Slope·xs[i] + Intercept) in the selected
	// exponent's regressor, in input order.
	Residuals []float64 `json:"residuals"`
	// RMSE and MaxAbsResidual summarize the residuals; NormalizedRMSE is
	// RMSE over the mean of ys (scale-free, comparable across grids).
	RMSE           float64 `json:"rmse"`
	MaxAbsResidual float64 `json:"max_abs_residual"`
	NormalizedRMSE float64 `json:"normalized_rmse"`
}

// FitPolylog fits ys (measured steps) against base[i]·lnln[i]^k for
// k = 0..maxExp, where base[i] is the cell's C+L and lnln[i] its
// ln(L·N), and returns the best fit by R². It panics on length
// mismatches and needs at least two points.
func FitPolylog(base, lnln, ys []float64, maxExp int) PolylogFit {
	if len(base) != len(ys) || len(lnln) != len(ys) {
		panic("stats: FitPolylog length mismatch")
	}
	if len(ys) < 2 {
		panic("stats: FitPolylog needs at least two points")
	}
	if maxExp < 0 {
		maxExp = 0
	}
	best := PolylogFit{R2: -1}
	xs := make([]float64, len(ys))
	for k := 0; k <= maxExp; k++ {
		for i := range xs {
			xs[i] = base[i] * math.Pow(lnln[i], float64(k))
		}
		lf := FitLinear(xs, ys)
		if lf.R2 <= best.R2 {
			continue
		}
		fit := PolylogFit{Exponent: k, Slope: lf.Slope, Intercept: lf.Intercept, R2: lf.R2}
		fit.Residuals = make([]float64, len(ys))
		var ss, sy float64
		for i := range ys {
			r := ys[i] - (lf.Slope*xs[i] + lf.Intercept)
			fit.Residuals[i] = r
			ss += r * r
			sy += ys[i]
			if a := math.Abs(r); a > fit.MaxAbsResidual {
				fit.MaxAbsResidual = a
			}
		}
		fit.RMSE = math.Sqrt(ss / float64(len(ys)))
		if mean := sy / float64(len(ys)); mean != 0 {
			fit.NormalizedRMSE = fit.RMSE / math.Abs(mean)
		}
		best = fit
	}
	return best
}

// String renders the fit on one line.
func (f PolylogFit) String() string {
	return fmt.Sprintf("steps = %.3f·(C+L)·ln^%d(LN) + %.3f (R²=%.3f, nRMSE=%.3f)",
		f.Slope, f.Exponent, f.Intercept, f.R2, f.NormalizedRMSE)
}
