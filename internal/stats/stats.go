// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, histograms, and least-squares fits
// used to check scaling shapes (e.g. routing time linear in C+L).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P90, P99  float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of a sorted sample using
// linear interpolation. It panics if the sample is empty or not in
// ascending order: an unsorted sample silently returns garbage
// quantiles, which poisoned downstream regression gates before this
// contract was enforced. Callers with raw samples use QuantileUnsorted.
// The order check is a single O(n) pass — noise next to the sort every
// caller already paid for.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			panic(fmt.Sprintf("stats: Quantile of unsorted sample (xs[%d]=%g < xs[%d]=%g)",
				i, sorted[i], i-1, sorted[i-1]))
		}
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileUnsorted returns the q-quantile of a raw sample: it sorts a
// private copy (the input is never mutated) and delegates to Quantile.
// Use this at call sites that hold samples in arrival order; use
// Quantile directly when the slice is already sorted and the copy would
// be waste.
func QuantileUnsorted(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, q)
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// CI95 returns the half-width of the 95% normal-approximation
// confidence interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// LinearFit is the least-squares line y = Slope*x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLinear computes the least-squares fit of ys against xs. It panics
// if the slices differ in length or hold fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: FitLinear needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: 0, Intercept: my, R2: 0}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys equal and perfectly predicted by slope 0
	}
	return fit
}

// String renders the fit.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.3f*x + %.3f (R²=%.3f)", f.Slope, f.Intercept, f.R2)
}

// Histogram is a fixed-bin-width histogram.
type Histogram struct {
	Min, Width float64
	Counts     []int
	Total      int
}

// NewHistogram builds a histogram of xs with the given number of bins
// spanning [min(xs), max(xs)]. An empty sample yields an empty
// histogram.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		h.Width = 1
		return h
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h.Min = lo
	h.Width = (hi - lo) / float64(bins)
	if h.Width == 0 {
		h.Width = 1
	}
	for _, x := range xs {
		b := int((x - lo) / h.Width)
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// Bar renders bin i as a bar of at most width characters, scaled to the
// largest bin.
func (h *Histogram) Bar(i, width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	n := h.Counts[i] * width / max
	out := make([]byte, n)
	for j := range out {
		out[j] = '#'
	}
	return string(out)
}

// String renders the histogram, one bin per line.
func (h *Histogram) String() string {
	out := ""
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.Width
		out += fmt.Sprintf("[%8.2f, %8.2f) %6d %s\n", lo, lo+h.Width, c, h.Bar(i, 40))
	}
	return out
}

// Mean is a convenience for the mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaxInt returns the maximum of an int slice (0 for empty).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Floats converts ints to float64s.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
