package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestBootstrapQuantileCIDeterminism: identical inputs and seed must
// give byte-identical intervals — campaign resume depends on it.
func TestBootstrapQuantileCIDeterminism(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9}
	a := BootstrapQuantileCI(xs, 0.5, 500, 42, 0.95)
	b := BootstrapQuantileCI(xs, 0.5, 500, 42, 0.95)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different intervals: %+v vs %+v", a, b)
	}
	c := BootstrapQuantileCI(xs, 0.5, 500, 43, 0.95)
	if a.Lo == c.Lo && a.Hi == c.Hi {
		t.Fatalf("different seeds gave identical interval endpoints %+v", a)
	}
	// The input slice must not be mutated (the engine reuses trial slices).
	if !reflect.DeepEqual(xs, []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9}) {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestBootstrapQuantileCIBasicShape(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	ci := BootstrapQuantileCI(xs, 0.5, 1000, 7, 0.95)
	if ci.Lo > ci.Estimate || ci.Estimate > ci.Hi {
		t.Fatalf("estimate outside its own interval: %+v", ci)
	}
	if ci.Lo < 10 || ci.Hi > 100 {
		t.Fatalf("interval escapes sample range: %+v", ci)
	}
	// Degenerate single-point sample.
	one := BootstrapQuantileCI([]float64{7}, 0.99, 100, 1, 0.95)
	if one.Lo != 7 || one.Hi != 7 || one.Estimate != 7 {
		t.Fatalf("single sample must degenerate to a point: %+v", one)
	}
	// Constant sample: all resamples identical.
	flat := BootstrapQuantileCI([]float64{4, 4, 4, 4, 4}, 0.5, 200, 1, 0.95)
	if flat.Lo != 4 || flat.Hi != 4 {
		t.Fatalf("constant sample must give zero-width interval: %+v", flat)
	}
}

// TestBootstrapQuantileCICoverage draws many synthetic samples from a
// uniform distribution with a known median and checks the empirical
// coverage of the 95% interval. Percentile-bootstrap coverage on n=40
// is approximate, so the acceptance band is deliberately wide — the
// test catches gross mis-implementation (coverage near 0 or blown-out
// intervals covering always), not second-order bootstrap error.
func TestBootstrapQuantileCICoverage(t *testing.T) {
	const (
		trials = 300
		n      = 40
	)
	trueMedian := 0.5 // U(0,1)
	state := uint64(12345)
	covered := 0
	for tr := 0; tr < trials; tr++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(splitmix64(&state)) / float64(math.MaxUint64)
		}
		ci := BootstrapQuantileCI(xs, 0.5, 400, splitmix64(&state), 0.95)
		if ci.Lo <= trueMedian && trueMedian <= ci.Hi {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.80 || cov > 1.0 {
		t.Fatalf("95%% interval covered the true median %.1f%% of the time", 100*cov)
	}
	t.Logf("empirical coverage: %.1f%% (%d/%d)", 100*cov, covered, trials)
}

func TestBootstrapQuantileCIPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { BootstrapQuantileCI(nil, 0.5, 10, 1, 0.95) },
		"bad q":    func() { BootstrapQuantileCI([]float64{1, 2}, 1.5, 10, 1, 0.95) },
		"bad conf": func() { BootstrapQuantileCI([]float64{1, 2}, 0.5, 10, 1, 1.0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestFitPolylogExact: data generated exactly from a·(C+L)·ln^k(LN)+b
// must be recovered with the right exponent and near-zero residuals,
// for every exponent in the search range.
func TestFitPolylogExact(t *testing.T) {
	base := []float64{5, 8, 12, 20, 33, 50, 81, 120}
	lnln := []float64{2.1, 2.7, 3.2, 3.9, 4.4, 5.0, 5.6, 6.3}
	for k := 0; k <= 4; k++ {
		const a, b = 17.5, -42.0
		ys := make([]float64, len(base))
		for i := range ys {
			ys[i] = a*base[i]*math.Pow(lnln[i], float64(k)) + b
		}
		fit := FitPolylog(base, lnln, ys, 9)
		if fit.Exponent != k {
			t.Fatalf("k=%d: recovered exponent %d (fit %+v)", k, fit.Exponent, fit)
		}
		if math.Abs(fit.Slope-a) > 1e-6 || math.Abs(fit.Intercept-b) > 1e-4 {
			t.Fatalf("k=%d: recovered a=%g b=%g", k, fit.Slope, fit.Intercept)
		}
		if fit.R2 < 1-1e-9 {
			t.Fatalf("k=%d: R²=%v on exact data", k, fit.R2)
		}
		if len(fit.Residuals) != len(ys) {
			t.Fatalf("k=%d: %d residuals for %d points", k, len(fit.Residuals), len(ys))
		}
		if fit.MaxAbsResidual > 1e-6*math.Abs(ys[len(ys)-1]) {
			t.Fatalf("k=%d: residuals not near zero on exact data: max %g", k, fit.MaxAbsResidual)
		}
		if fit.RMSE > fit.MaxAbsResidual {
			t.Fatalf("k=%d: RMSE %g above max residual %g", k, fit.RMSE, fit.MaxAbsResidual)
		}
	}
}

// TestFitPolylogNoisy: with noise added, the fit must record honest
// residuals (nonzero RMSE, R² < 1) rather than claiming a perfect fit.
func TestFitPolylogNoisy(t *testing.T) {
	base := []float64{5, 8, 12, 20, 33, 50, 81, 120}
	lnln := []float64{2.1, 2.7, 3.2, 3.9, 4.4, 5.0, 5.6, 6.3}
	noise := []float64{30, -25, 18, -40, 22, -15, 35, -28}
	ys := make([]float64, len(base))
	for i := range ys {
		ys[i] = 10*base[i]*lnln[i] + noise[i]
	}
	fit := FitPolylog(base, lnln, ys, 9)
	if fit.RMSE == 0 || fit.R2 >= 1 {
		t.Fatalf("noisy data reported as exact: %+v", fit)
	}
	if fit.NormalizedRMSE <= 0 {
		t.Fatalf("normalized RMSE not recorded: %+v", fit)
	}
	var ss float64
	for _, r := range fit.Residuals {
		ss += r * r
	}
	if got := math.Sqrt(ss / float64(len(ys))); math.Abs(got-fit.RMSE) > 1e-9 {
		t.Fatalf("RMSE %g inconsistent with recorded residuals (%g)", fit.RMSE, got)
	}
}

func TestFitPolylogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FitPolylog([]float64{1}, []float64{1, 2}, []float64{1, 2}, 3)
}
