package topo

import (
	"fmt"
	"math/bits"

	"hotpotato/internal/graph"
)

// Hypercube returns the d-dimensional hypercube leveled by Hamming
// weight: node x sits at level popcount(x), and every hypercube edge
// (x, x|2^b with bit b clear in x) connects consecutive levels. Depth
// L = d. Forward paths exist from x to y exactly when x's bit set is a
// subset of y's; workload generators respect this.
func Hypercube(d int) (*graph.Leveled, error) {
	if d < 1 {
		return nil, fmt.Errorf("topo: Hypercube needs d >= 1, got %d", d)
	}
	if d > 20 {
		return nil, fmt.Errorf("topo: Hypercube d=%d too large (max 20)", d)
	}
	n := 1 << d
	b := graph.NewBuilder(fmt.Sprintf("hypercube(%d)", d))
	ids := make([]graph.NodeID, n)
	for x := 0; x < n; x++ {
		ids[x] = b.AddNode(bits.OnesCount(uint(x)), fmt.Sprintf("%0*b", d, x))
	}
	for x := 0; x < n; x++ {
		for bit := 0; bit < d; bit++ {
			if x&(1<<bit) == 0 {
				b.AddEdge(ids[x], ids[x|(1<<bit)])
			}
		}
	}
	return b.Build()
}

// HypercubeNode returns the NodeID of the vertex with the given word in
// a hypercube built by Hypercube(d) (construction order is word order).
func HypercubeNode(x int) graph.NodeID { return graph.NodeID(x) }

// HypercubeBitFixPath returns the forward path from src to dst that
// sets missing bits lowest-first. dst must be a bit-superset of src.
func HypercubeBitFixPath(g *graph.Leveled, d, src, dst int) (graph.Path, error) {
	if src&^dst != 0 {
		return nil, fmt.Errorf("topo: hypercube forward path needs src subset of dst: %b vs %b", src, dst)
	}
	p := make(graph.Path, 0, bits.OnesCount(uint(dst^src)))
	x := src
	for bit := 0; bit < d; bit++ {
		mask := 1 << bit
		if dst&mask != 0 && x&mask == 0 {
			e := g.EdgeBetween(HypercubeNode(x), HypercubeNode(x|mask))
			if e == graph.NoEdge {
				return nil, fmt.Errorf("topo: missing hypercube edge %b-%b", x, x|mask)
			}
			p = append(p, e)
			x |= mask
		}
	}
	return p, nil
}

// BinaryTree returns the complete binary tree of the given height,
// leveled by depth (root at level 0). Depth L = height. Forward paths
// run root-to-leaves only, so workloads route downward.
func BinaryTree(height int) (*graph.Leveled, error) {
	if height < 1 {
		return nil, fmt.Errorf("topo: BinaryTree needs height >= 1, got %d", height)
	}
	if height > 22 {
		return nil, fmt.Errorf("topo: BinaryTree height=%d too large (max 22)", height)
	}
	b := graph.NewBuilder(fmt.Sprintf("bintree(%d)", height))
	// Node i (1-based heap index) at level floor(log2(i)).
	n := (1 << (height + 1)) - 1
	ids := make([]graph.NodeID, n+1)
	for i := 1; i <= n; i++ {
		ids[i] = b.AddNode(bits.Len(uint(i))-1, fmt.Sprintf("t%d", i))
	}
	for i := 1; i <= n; i++ {
		if 2*i <= n {
			b.AddEdge(ids[i], ids[2*i])
			b.AddEdge(ids[i], ids[2*i+1])
		}
	}
	return b.Build()
}

// FatTree returns a fat-tree of the given height, leveled by depth with
// the root at level 0: a complete binary tree in which the link
// multiplicity doubles toward the root (capacity c at depth l is
// 2^(height-l), capped at maxMult). Multiplicity is modeled with
// parallel edges, which the graph package permits.
func FatTree(height, maxMult int) (*graph.Leveled, error) {
	if height < 1 {
		return nil, fmt.Errorf("topo: FatTree needs height >= 1, got %d", height)
	}
	if height > 16 {
		return nil, fmt.Errorf("topo: FatTree height=%d too large (max 16)", height)
	}
	if maxMult < 1 {
		return nil, fmt.Errorf("topo: FatTree needs maxMult >= 1, got %d", maxMult)
	}
	b := graph.NewBuilder(fmt.Sprintf("fattree(%d,%d)", height, maxMult))
	n := (1 << (height + 1)) - 1
	ids := make([]graph.NodeID, n+1)
	for i := 1; i <= n; i++ {
		ids[i] = b.AddNode(bits.Len(uint(i))-1, fmt.Sprintf("f%d", i))
	}
	for i := 1; i <= n; i++ {
		if 2*i > n {
			continue
		}
		depth := bits.Len(uint(i)) - 1 // parent depth
		mult := 1 << (height - 1 - depth)
		if mult > maxMult {
			mult = maxMult
		}
		if mult < 1 {
			mult = 1
		}
		for m := 0; m < mult; m++ {
			b.AddEdge(ids[i], ids[2*i])
			b.AddEdge(ids[i], ids[2*i+1])
		}
	}
	return b.Build()
}
