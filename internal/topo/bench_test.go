package topo

import (
	"math/rand"
	"testing"
)

func BenchmarkButterfly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Butterfly(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Mesh(32, 32, CornerNW); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypercube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Hypercube(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomLeveled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := Random(rng, 64, 4, 8, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevelize(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	edges := RandomDAG(rng, 64, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Levelize("bench", 64, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOmegaRoutePath(b *testing.B) {
	g, err := Omega(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OmegaRoutePath(g, 8, i%256, (i*37)%256); err != nil {
			b.Fatal(err)
		}
	}
}
