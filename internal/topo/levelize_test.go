package topo

import (
	"math/rand"
	"testing"

	"hotpotato/internal/graph"
)

func TestLevelizeChain(t *testing.T) {
	// 0 -> 1 -> 2: already leveled, no relays.
	g, ids, err := Levelize("chain", 3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 || g.Depth() != 2 {
		t.Errorf("chain: %v", g.ComputeStats())
	}
	for v := 0; v < 3; v++ {
		if g.Node(ids[v]).Level != v {
			t.Errorf("node %d at level %d", v, g.Node(ids[v]).Level)
		}
	}
}

func TestLevelizeSubdividesLongEdges(t *testing.T) {
	// Diamond with a shortcut: 0->1->2->3 and 0->3. The shortcut spans
	// 3 levels and needs 2 relays.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	g, ids, err := Levelize("shortcut", 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4+2 {
		t.Errorf("nodes = %d, want 6", g.NumNodes())
	}
	if g.NumEdges() != 3+3 {
		t.Errorf("edges = %d, want 6", g.NumEdges())
	}
	if g.Node(ids[3]).Level != 3 {
		t.Errorf("sink at level %d", g.Node(ids[3]).Level)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The shortcut must still be traversable: a forward path 0 -> 3 of
	// length 3 through the relays exists.
	reach := g.Reachable(ids[3])
	if !reach[ids[0]] {
		t.Error("source cannot reach sink after levelization")
	}
}

func TestLevelizeErrors(t *testing.T) {
	if _, _, err := Levelize("bad", 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := Levelize("bad", 2, [][2]int{{0, 5}}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, _, err := Levelize("bad", 2, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, _, err := Levelize("bad", 2, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestLevelizeRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(20)
		edges := RandomDAG(rng, n, 0.25)
		if len(edges) == 0 {
			continue
		}
		g, ids, err := Levelize("rdag", n, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every original edge is realizable as a forward path.
		for _, e := range edges {
			reach := g.Reachable(ids[e[1]])
			if !reach[ids[e[0]]] {
				t.Fatalf("trial %d: original edge (%d,%d) lost", trial, e[0], e[1])
			}
		}
		// Levelization preserves originals: every original node mapped.
		if len(ids) != n {
			t.Fatalf("trial %d: %d mapped nodes, want %d", trial, len(ids), n)
		}
	}
}

func TestRandomDAGAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := RandomDAG(rng, 30, 0.3)
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not low-to-high", e)
		}
	}
	// p=1 gives the complete DAG.
	full := RandomDAG(rng, 5, 1)
	if len(full) != 10 {
		t.Errorf("complete DAG edges = %d, want 10", len(full))
	}
	if RandomDAG(rng, 5, 0) != nil {
		t.Error("p=0 should give no edges")
	}
}

// Levelized networks must be routable end to end.
func TestLevelizeRoutable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := RandomDAG(rng, 24, 0.2)
	g, _, err := Levelize("route", 24, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Sample a forward path between some reachable pair.
	var src, dst graph.NodeID = graph.NoNode, graph.NoNode
	for v := 0; v < g.NumNodes() && src == graph.NoNode; v++ {
		id := graph.NodeID(v)
		if g.Node(id).Level != 0 {
			continue
		}
		reach := g.ForwardReachableFrom(id)
		for w := 0; w < g.NumNodes(); w++ {
			if reach[w] && g.Node(graph.NodeID(w)).Level >= 2 {
				src, dst = id, graph.NodeID(w)
				break
			}
		}
	}
	if src == graph.NoNode {
		t.Skip("no deep pair in this draw")
	}
	cnt := g.CountForwardPaths(dst, 0)
	if cnt[src] < 1 {
		t.Error("no forward path despite reachability")
	}
}
