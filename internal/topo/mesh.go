package topo

import (
	"fmt"

	"hotpotato/internal/graph"
)

// MeshCorner selects which corner of the mesh is level 0; the paper
// notes the mesh can be viewed in four different ways as a leveled
// network according to which corner node is level 0 (Section 1.1).
type MeshCorner int

const (
	// CornerNW puts (0,0) at level 0; level(i,j) = i + j.
	CornerNW MeshCorner = iota
	// CornerNE puts (0,cols-1) at level 0; level(i,j) = i + (cols-1-j).
	CornerNE
	// CornerSW puts (rows-1,0) at level 0; level(i,j) = (rows-1-i) + j.
	CornerSW
	// CornerSE puts (rows-1,cols-1) at level 0.
	CornerSE
)

// String implements fmt.Stringer.
func (c MeshCorner) String() string {
	switch c {
	case CornerNW:
		return "NW"
	case CornerNE:
		return "NE"
	case CornerSW:
		return "SW"
	case CornerSE:
		return "SE"
	}
	return fmt.Sprintf("MeshCorner(%d)", int(c))
}

// meshLevel computes the anti-diagonal level of cell (i,j) for the
// chosen corner.
func meshLevel(c MeshCorner, rows, cols, i, j int) int {
	switch c {
	case CornerNW:
		return i + j
	case CornerNE:
		return i + (cols - 1 - j)
	case CornerSW:
		return (rows - 1 - i) + j
	default: // CornerSE
		return (rows - 1 - i) + (cols - 1 - j)
	}
}

// Mesh returns the rows x cols grid leveled by anti-diagonals from the
// chosen corner. Depth L = rows + cols - 2. Grid edges connect cells
// whose levels differ by exactly one, so every mesh edge is a legal
// leveled edge.
func Mesh(rows, cols int, corner MeshCorner) (*graph.Leveled, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: Mesh needs rows,cols >= 1, got %d,%d", rows, cols)
	}
	b := graph.NewBuilder(fmt.Sprintf("mesh(%dx%d,%s)", rows, cols, corner))
	ids := make([]graph.NodeID, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			ids[i*cols+j] = b.AddNode(meshLevel(corner, rows, cols, i, j), fmt.Sprintf("r%dc%d", i, j))
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i+1 < rows {
				b.AddEdge(ids[i*cols+j], ids[(i+1)*cols+j])
			}
			if j+1 < cols {
				b.AddEdge(ids[i*cols+j], ids[i*cols+j+1])
			}
		}
	}
	return b.Build()
}

// MeshNode returns the NodeID of cell (i,j) in a mesh built by Mesh.
// It relies on the generator's row-major construction order.
func MeshNode(cols, i, j int) graph.NodeID {
	return graph.NodeID(i*cols + j)
}

// MeshCell recovers (row, col) of a mesh node.
func MeshCell(cols int, id graph.NodeID) (int, int) {
	return int(id) / cols, int(id) % cols
}

// MeshDimOrderPath returns the row-first dimension-order path from
// (si,sj) to (di,dj) on a CornerNW-leveled mesh: first walk rows, then
// columns. Both coordinates of the destination must be >= the source's
// (the path must be level-monotone toward higher levels).
func MeshDimOrderPath(g *graph.Leveled, cols int, si, sj, di, dj int) (graph.Path, error) {
	if di < si || dj < sj {
		return nil, fmt.Errorf("topo: dim-order path needs di>=si and dj>=sj, got (%d,%d)->(%d,%d)", si, sj, di, dj)
	}
	p := make(graph.Path, 0, (di-si)+(dj-sj))
	i, j := si, sj
	for i < di {
		e := g.EdgeBetween(MeshNode(cols, i, j), MeshNode(cols, i+1, j))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing mesh edge (%d,%d)-(%d,%d)", i, j, i+1, j)
		}
		p = append(p, e)
		i++
	}
	for j < dj {
		e := g.EdgeBetween(MeshNode(cols, i, j), MeshNode(cols, i, j+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing mesh edge (%d,%d)-(%d,%d)", i, j, i, j+1)
		}
		p = append(p, e)
		j++
	}
	return p, nil
}

// Array returns the d-dimensional array (multidimensional mesh) with
// the given side lengths, leveled by coordinate sum (the origin corner
// is level 0). Depth L = sum(sides[i]-1). Generalizes Mesh/CornerNW.
func Array(sides ...int) (*graph.Leveled, error) {
	if len(sides) == 0 {
		return nil, fmt.Errorf("topo: Array needs at least one dimension")
	}
	total := 1
	for _, s := range sides {
		if s < 1 {
			return nil, fmt.Errorf("topo: Array sides must be >= 1, got %v", sides)
		}
		total *= s
		if total > 1<<22 {
			return nil, fmt.Errorf("topo: Array too large: %v", sides)
		}
	}
	b := graph.NewBuilder(fmt.Sprintf("array%v", sides))
	ids := make([]graph.NodeID, total)
	coord := make([]int, len(sides))
	for idx := 0; idx < total; idx++ {
		lvl := 0
		for _, c := range coord {
			lvl += c
		}
		ids[idx] = b.AddNode(lvl, fmt.Sprintf("%v", append([]int(nil), coord...)))
		incCoord(coord, sides)
	}
	// Edges: +1 in each dimension.
	for i := range coord {
		coord[i] = 0
	}
	stride := make([]int, len(sides))
	s := 1
	for d := len(sides) - 1; d >= 0; d-- {
		stride[d] = s
		s *= sides[d]
	}
	for idx := 0; idx < total; idx++ {
		for d := 0; d < len(sides); d++ {
			if coord[d]+1 < sides[d] {
				b.AddEdge(ids[idx], ids[idx+stride[d]])
			}
		}
		incCoord(coord, sides)
	}
	return b.Build()
}

// incCoord advances a mixed-radix counter (last dimension fastest),
// matching row-major index order.
func incCoord(coord, sides []int) {
	for d := len(coord) - 1; d >= 0; d-- {
		coord[d]++
		if coord[d] < sides[d] {
			return
		}
		coord[d] = 0
	}
}
