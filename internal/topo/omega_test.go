package topo

import (
	"testing"
)

func TestOmegaStructure(t *testing.T) {
	k := 4
	g := mustValidate(t)(Omega(k))
	rows := 1 << k
	if g.NumNodes() != (k+1)*rows {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != k*rows*2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.Depth() != k {
		t.Errorf("depth = %d", g.Depth())
	}
	if _, err := Omega(0); err == nil {
		t.Error("Omega(0) accepted")
	}
	if _, err := Omega(25); err == nil {
		t.Error("Omega(25) accepted")
	}
}

func TestShuffle(t *testing.T) {
	// k=3: 0b110 -> 0b101 (rotate left).
	if shuffle(0b110, 3) != 0b101 {
		t.Errorf("shuffle(110) = %03b", shuffle(0b110, 3))
	}
	if shuffle(0b001, 3) != 0b010 {
		t.Errorf("shuffle(001) = %03b", shuffle(0b001, 3))
	}
	// Rotating k times is the identity.
	w := 0b1011
	x := w
	for i := 0; i < 4; i++ {
		x = shuffle(x, 4)
	}
	if x != w {
		t.Errorf("shuffle^4 != id: %04b", x)
	}
}

func TestOmegaRoutePathAllPairs(t *testing.T) {
	k := 4
	g := mustValidate(t)(Omega(k))
	rows := 1 << k
	for src := 0; src < rows; src++ {
		for dst := 0; dst < rows; dst++ {
			p, err := OmegaRoutePath(g, k, src, dst)
			if err != nil {
				t.Fatalf("route(%d,%d): %v", src, dst, err)
			}
			if len(p) != k {
				t.Fatalf("route length %d", len(p))
			}
			if err := g.ValidatePath(p); err != nil {
				t.Fatalf("invalid path: %v", err)
			}
			if g.PathSource(p) != OmegaNode(k, src, 0) {
				t.Fatalf("wrong source")
			}
			if g.PathDest(p) != OmegaNode(k, dst, k) {
				t.Fatalf("route(%d,%d) ends at %d, want %d", src, dst, g.PathDest(p), OmegaNode(k, dst, k))
			}
		}
	}
	if _, err := OmegaRoutePath(g, k, -1, 0); err == nil {
		t.Error("negative row accepted")
	}
}

func TestOmegaSelfRoutingIsUnique(t *testing.T) {
	// The Omega network is blocking: identity routing uses each
	// straight wire once, giving congestion exactly 1.
	k := 3
	g := mustValidate(t)(Omega(k))
	rows := 1 << k
	loads := make(map[int32]int)
	for w := 0; w < rows; w++ {
		p, err := OmegaRoutePath(g, k, w, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range p {
			loads[int32(e)]++
		}
	}
	for e, c := range loads {
		if c != 1 {
			t.Errorf("identity permutation loads edge %d with %d", e, c)
		}
	}
}
