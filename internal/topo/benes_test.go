package topo

import (
	"math/rand"
	"testing"
)

func TestBenesStructure(t *testing.T) {
	k := 3
	g := mustValidate(t)(Benes(k))
	rows := 1 << k
	if g.NumNodes() != (2*k+1)*rows {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2*k*rows*2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.Depth() != 2*k {
		t.Errorf("depth = %d", g.Depth())
	}
	if _, err := Benes(0); err == nil {
		t.Error("Benes(0) accepted")
	}
	if _, err := Benes(99); err == nil {
		t.Error("Benes(99) accepted")
	}
}

func TestBenesLoopbackPathAllPairsViaRandomMid(t *testing.T) {
	k := 3
	g := mustValidate(t)(Benes(k))
	rows := 1 << k
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < rows; src++ {
		for dst := 0; dst < rows; dst++ {
			mid := rng.Intn(rows)
			p, err := BenesLoopbackPath(g, k, src, mid, dst)
			if err != nil {
				t.Fatalf("path(%d,%d,%d): %v", src, mid, dst, err)
			}
			if len(p) != 2*k {
				t.Fatalf("length %d, want %d", len(p), 2*k)
			}
			if err := g.ValidatePath(p); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if g.PathSource(p) != BenesNode(k, src, 0) || g.PathDest(p) != BenesNode(k, dst, 2*k) {
				t.Fatalf("endpoints wrong for (%d,%d,%d)", src, mid, dst)
			}
			// The path passes through the chosen intermediate row at the
			// middle level.
			nodes := g.PathNodes(p)
			if nodes[k] != BenesNode(k, mid, k) {
				t.Fatalf("middle node %d, want row %d", nodes[k], mid)
			}
		}
	}
	if _, err := BenesLoopbackPath(g, k, -1, 0, 0); err == nil {
		t.Error("bad row accepted")
	}
}

func TestBenesValiantPermutationLowCongestion(t *testing.T) {
	// Random-intermediate (Valiant) routing of a permutation on the
	// Beneš network yields low congestion w.h.p.; with 2^k packets over
	// 2^(k+1)k edges expect C well below k.
	k := 5
	g := mustValidate(t)(Benes(k))
	rows := 1 << k
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(rows)
	loads := make([]int, g.NumEdges())
	maxLoad := 0
	for src, dst := range perm {
		p, err := BenesLoopbackPath(g, k, src, rng.Intn(rows), dst)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range p {
			loads[e]++
			if loads[e] > maxLoad {
				maxLoad = loads[e]
			}
		}
	}
	if maxLoad > k {
		t.Errorf("Valiant congestion %d > k = %d (unlikely)", maxLoad, k)
	}
}
