// Package topo provides generators for the leveled-network families the
// paper names (Section 1.1 and Figure 1): butterfly, mesh (in its four
// leveled orientations), hypercube (leveled by Hamming weight),
// multidimensional array, trees and fat-trees, plus linear arrays,
// complete leveled networks and random leveled networks used for
// stress-testing generality.
package topo

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
)

// Generator constructs a leveled network from a compact parameter set.
// All generators are deterministic except Random*, which take an
// explicit *rand.Rand.
type Generator func() (*graph.Leveled, error)

// Linear returns the path graph with n nodes: levels 0..n-1 with one
// node per level. The simplest leveled network; depth L = n-1.
func Linear(n int) (*graph.Leveled, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: Linear needs n >= 1, got %d", n)
	}
	b := graph.NewBuilder(fmt.Sprintf("linear(%d)", n))
	prev := graph.NoNode
	for i := 0; i < n; i++ {
		v := b.AddNode(i, fmt.Sprintf("v%d", i))
		if i > 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	return b.Build()
}

// Ladder returns a 2-wide leveled network of the given depth: two nodes
// per level, fully bipartitely connected between consecutive levels.
// Depth L = depth. Handy for deflection tests: every node has an
// alternative link.
func Ladder(depth int) (*graph.Leveled, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topo: Ladder needs depth >= 1, got %d", depth)
	}
	b := graph.NewBuilder(fmt.Sprintf("ladder(%d)", depth))
	var prev [2]graph.NodeID
	for l := 0; l <= depth; l++ {
		var cur [2]graph.NodeID
		for r := 0; r < 2; r++ {
			cur[r] = b.AddNode(l, fmt.Sprintf("l%dr%d", l, r))
		}
		if l > 0 {
			for _, u := range prev {
				for _, w := range cur {
					b.AddEdge(u, w)
				}
			}
		}
		prev = cur
	}
	return b.Build()
}

// Complete returns a leveled network with `width` nodes at each of the
// levels 0..depth and a complete bipartite graph between consecutive
// levels. Maximum path diversity; useful as a best-case substrate.
func Complete(depth, width int) (*graph.Leveled, error) {
	if depth < 1 || width < 1 {
		return nil, fmt.Errorf("topo: Complete needs depth,width >= 1, got %d,%d", depth, width)
	}
	b := graph.NewBuilder(fmt.Sprintf("complete(%d,%d)", depth, width))
	prev := make([]graph.NodeID, 0, width)
	cur := make([]graph.NodeID, 0, width)
	for l := 0; l <= depth; l++ {
		cur = cur[:0]
		for r := 0; r < width; r++ {
			cur = append(cur, b.AddNode(l, fmt.Sprintf("l%dr%d", l, r)))
		}
		if l > 0 {
			for _, u := range prev {
				for _, w := range cur {
					b.AddEdge(u, w)
				}
			}
		}
		prev, cur = cur, prev
	}
	return b.Build()
}

// Random returns a random leveled network with the given depth, level
// widths drawn uniformly from [minWidth, maxWidth], and each
// consecutive-level node pair connected independently with probability
// p. Connectivity is repaired afterwards: every node is guaranteed at
// least one Up edge (unless at the last level) and one Down edge
// (unless at level 0), so no packet can be stranded.
func Random(rng *rand.Rand, depth, minWidth, maxWidth int, p float64) (*graph.Leveled, error) {
	if depth < 1 {
		return nil, fmt.Errorf("topo: Random needs depth >= 1, got %d", depth)
	}
	if minWidth < 1 || maxWidth < minWidth {
		return nil, fmt.Errorf("topo: Random needs 1 <= minWidth <= maxWidth, got %d,%d", minWidth, maxWidth)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topo: Random needs p in [0,1], got %g", p)
	}
	b := graph.NewBuilder(fmt.Sprintf("random(L=%d,w=[%d,%d],p=%.2f)", depth, minWidth, maxWidth, p))
	levels := make([][]graph.NodeID, depth+1)
	for l := 0; l <= depth; l++ {
		w := minWidth + rng.Intn(maxWidth-minWidth+1)
		levels[l] = make([]graph.NodeID, w)
		for r := 0; r < w; r++ {
			levels[l][r] = b.AddNode(l, fmt.Sprintf("l%dr%d", l, r))
		}
	}
	for l := 0; l < depth; l++ {
		lo, hi := levels[l], levels[l+1]
		hasUp := make([]bool, len(lo))
		hasDown := make([]bool, len(hi))
		for i, u := range lo {
			for j, w := range hi {
				if rng.Float64() < p {
					b.AddEdge(u, w)
					hasUp[i] = true
					hasDown[j] = true
				}
			}
		}
		for i, u := range lo {
			if !hasUp[i] {
				j := rng.Intn(len(hi))
				b.AddEdge(u, hi[j])
				hasDown[j] = true
			}
		}
		for j, w := range hi {
			if !hasDown[j] {
				b.AddEdge(lo[rng.Intn(len(lo))], w)
			}
		}
	}
	return b.Build()
}
