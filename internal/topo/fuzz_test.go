package topo

import (
	"testing"
)

// FuzzLevelize feeds arbitrary edge lists to the levelizer; it must
// never panic, and every accepted result must be a valid leveled
// network whose original nodes keep forward connectivity along every
// input edge.
func FuzzLevelize(f *testing.F) {
	f.Add(4, []byte{0, 1, 1, 2, 2, 3, 0, 3})
	f.Add(2, []byte{0, 1, 1, 0}) // cycle
	f.Add(3, []byte{0, 0})       // self-loop
	f.Add(1, []byte{})
	f.Add(5, []byte{0, 9}) // out of range

	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 || n > 64 {
			return
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]), int(raw[i+1])})
		}
		g, ids, err := Levelize("fuzz", n, edges)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
		if len(ids) != n {
			t.Fatalf("mapped %d of %d nodes", len(ids), n)
		}
		for _, e := range edges {
			reach := g.Reachable(ids[e[1]])
			if !reach[ids[e[0]]] {
				t.Fatalf("edge (%d,%d) lost in levelization", e[0], e[1])
			}
		}
	})
}
