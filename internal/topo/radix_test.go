package topo

import (
	"testing"
)

func TestButterflyRadixStructure(t *testing.T) {
	k, r := 3, 3
	g := mustValidate(t)(ButterflyRadix(k, r))
	rows := 27
	if g.NumNodes() != (k+1)*rows {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Each node at levels 0..k-1 has r up-edges.
	if g.NumEdges() != k*rows*r {
		t.Errorf("edges = %d, want %d", g.NumEdges(), k*rows*r)
	}
	if g.Depth() != k {
		t.Errorf("depth = %d", g.Depth())
	}
	if _, err := ButterflyRadix(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ButterflyRadix(3, 1); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := ButterflyRadix(30, 4); err == nil {
		t.Error("oversized accepted")
	}
}

func TestButterflyRadix2MatchesBinary(t *testing.T) {
	// The r=2 case has the same node/edge counts as the binary
	// butterfly (the cross wiring differs in labeling only).
	k := 4
	bin := mustValidate(t)(Butterfly(k))
	rad := mustValidate(t)(ButterflyRadix(k, 2))
	if bin.NumNodes() != rad.NumNodes() || bin.NumEdges() != rad.NumEdges() || bin.Depth() != rad.Depth() {
		t.Errorf("r=2 mismatch: %v vs %v", rad.ComputeStats(), bin.ComputeStats())
	}
}

func TestButterflyRadixPathAllPairs(t *testing.T) {
	k, r := 2, 4
	g := mustValidate(t)(ButterflyRadix(k, r))
	rows := 16
	for src := 0; src < rows; src++ {
		for dst := 0; dst < rows; dst++ {
			p, err := ButterflyRadixPath(g, k, r, src, dst)
			if err != nil {
				t.Fatalf("path(%d,%d): %v", src, dst, err)
			}
			if len(p) != k {
				t.Fatalf("length %d", len(p))
			}
			if err := g.ValidatePath(p); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if g.PathDest(p) != ButterflyRadixNode(rows, dst, k) {
				t.Fatalf("path(%d,%d) ends wrong", src, dst)
			}
		}
	}
	if _, err := ButterflyRadixPath(g, k, r, -1, 0); err == nil {
		t.Error("bad row accepted")
	}
}

func TestButterflyRadixRoutable(t *testing.T) {
	// End-to-end: a full-throughput workload routes on a radix-4
	// butterfly (exercise via reachability — any level-0 node reaches
	// any level-k node).
	k, r := 2, 4
	g := mustValidate(t)(ButterflyRadix(k, r))
	reach := g.Reachable(ButterflyRadixNode(16, 7, k))
	for w := 0; w < 16; w++ {
		if !reach[ButterflyRadixNode(16, w, 0)] {
			t.Errorf("row %d cannot reach row 7 at the top", w)
		}
	}
}
