package topo

import (
	"math/rand"
	"testing"

	"hotpotato/internal/graph"
)

func mustValidate(t *testing.T) func(*graph.Leveled, error) *graph.Leveled {
	t.Helper()
	return func(g *graph.Leveled, err error) *graph.Leveled {
		t.Helper()
		if err != nil {
			t.Fatalf("generator error: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate(%s): %v", g.Name(), err)
		}
		return g
	}
}

func TestLinear(t *testing.T) {
	g := mustValidate(t)(Linear(5))
	if g.NumNodes() != 5 || g.NumEdges() != 4 || g.Depth() != 4 {
		t.Errorf("linear(5): nodes=%d edges=%d depth=%d", g.NumNodes(), g.NumEdges(), g.Depth())
	}
	if _, err := Linear(0); err == nil {
		t.Error("Linear(0) accepted")
	}
}

func TestLadder(t *testing.T) {
	g := mustValidate(t)(Ladder(3))
	if g.NumNodes() != 8 || g.NumEdges() != 12 || g.Depth() != 3 {
		t.Errorf("ladder(3): nodes=%d edges=%d depth=%d", g.NumNodes(), g.NumEdges(), g.Depth())
	}
	if _, err := Ladder(0); err == nil {
		t.Error("Ladder(0) accepted")
	}
}

func TestComplete(t *testing.T) {
	g := mustValidate(t)(Complete(3, 4))
	if g.NumNodes() != 16 || g.NumEdges() != 3*16 || g.Depth() != 3 {
		t.Errorf("complete(3,4): nodes=%d edges=%d depth=%d", g.NumNodes(), g.NumEdges(), g.Depth())
	}
	if _, err := Complete(0, 4); err == nil {
		t.Error("Complete(0,4) accepted")
	}
	if _, err := Complete(3, 0); err == nil {
		t.Error("Complete(3,0) accepted")
	}
}

func TestButterfly(t *testing.T) {
	k := 3
	g := mustValidate(t)(Butterfly(k))
	rows := 1 << k
	if g.NumNodes() != (k+1)*rows {
		t.Errorf("butterfly nodes = %d, want %d", g.NumNodes(), (k+1)*rows)
	}
	if g.NumEdges() != k*rows*2 {
		t.Errorf("butterfly edges = %d, want %d", g.NumEdges(), k*rows*2)
	}
	if g.Depth() != k {
		t.Errorf("butterfly depth = %d, want %d", g.Depth(), k)
	}
	// Every non-boundary node has degree 4 (2 up + 2 down).
	id := ButterflyNode(g, k, 0, 1)
	if g.Node(id).Degree() != 4 {
		t.Errorf("interior butterfly degree = %d, want 4", g.Node(id).Degree())
	}
	if _, err := Butterfly(0); err == nil {
		t.Error("Butterfly(0) accepted")
	}
	if _, err := Butterfly(99); err == nil {
		t.Error("Butterfly(99) accepted")
	}
}

func TestButterflyBitFixPath(t *testing.T) {
	k := 4
	g := mustValidate(t)(Butterfly(k))
	for src := 0; src < 1<<k; src += 3 {
		for dst := 0; dst < 1<<k; dst += 5 {
			p, err := ButterflyBitFixPath(g, k, src, dst)
			if err != nil {
				t.Fatalf("bitfix(%d,%d): %v", src, dst, err)
			}
			if len(p) != k {
				t.Fatalf("bitfix path length = %d, want %d", len(p), k)
			}
			if err := g.ValidatePath(p); err != nil {
				t.Fatalf("bitfix path invalid: %v", err)
			}
			if g.PathSource(p) != ButterflyNode(g, k, src, 0) {
				t.Fatalf("bitfix source wrong")
			}
			if g.PathDest(p) != ButterflyNode(g, k, dst, k) {
				t.Fatalf("bitfix dest wrong: got %d want %d", g.PathDest(p), ButterflyNode(g, k, dst, k))
			}
		}
	}
	if _, err := ButterflyBitFixPath(g, k, -1, 0); err == nil {
		t.Error("negative row accepted")
	}
}

func TestButterflyRowRoundTrip(t *testing.T) {
	k := 3
	g := mustValidate(t)(Butterfly(k))
	for l := 0; l <= k; l++ {
		for w := 0; w < 1<<k; w++ {
			id := ButterflyNode(g, k, w, l)
			if g.Node(id).Level != l {
				t.Fatalf("ButterflyNode(%d,%d) at level %d", w, l, g.Node(id).Level)
			}
			if ButterflyRow(g, k, id) != w {
				t.Fatalf("ButterflyRow mismatch")
			}
		}
	}
}

func TestMeshAllCorners(t *testing.T) {
	for _, c := range []MeshCorner{CornerNW, CornerNE, CornerSW, CornerSE} {
		g := mustValidate(t)(Mesh(4, 5, c))
		if g.NumNodes() != 20 {
			t.Errorf("%s: nodes = %d", c, g.NumNodes())
		}
		if g.NumEdges() != 3*5+4*4 {
			t.Errorf("%s: edges = %d, want %d", c, g.NumEdges(), 3*5+4*4)
		}
		if g.Depth() != 4+5-2 {
			t.Errorf("%s: depth = %d, want 7", c, g.Depth())
		}
	}
	if _, err := Mesh(0, 3, CornerNW); err == nil {
		t.Error("Mesh(0,3) accepted")
	}
}

func TestMeshCornerLevels(t *testing.T) {
	rows, cols := 3, 4
	cases := []struct {
		c          MeshCorner
		i, j, want int
	}{
		{CornerNW, 0, 0, 0},
		{CornerNW, 2, 3, 5},
		{CornerNE, 0, 3, 0},
		{CornerNE, 2, 0, 5},
		{CornerSW, 2, 0, 0},
		{CornerSE, 2, 3, 0},
		{CornerSE, 0, 0, 5},
	}
	for _, cse := range cases {
		g := mustValidate(t)(Mesh(rows, cols, cse.c))
		id := MeshNode(cols, cse.i, cse.j)
		if got := g.Node(id).Level; got != cse.want {
			t.Errorf("%s (%d,%d): level = %d, want %d", cse.c, cse.i, cse.j, got, cse.want)
		}
	}
}

func TestMeshCellRoundTrip(t *testing.T) {
	cols := 7
	for i := 0; i < 5; i++ {
		for j := 0; j < cols; j++ {
			r, c := MeshCell(cols, MeshNode(cols, i, j))
			if r != i || c != j {
				t.Fatalf("MeshCell round-trip (%d,%d) -> (%d,%d)", i, j, r, c)
			}
		}
	}
}

func TestMeshDimOrderPath(t *testing.T) {
	g := mustValidate(t)(Mesh(5, 5, CornerNW))
	p, err := MeshDimOrderPath(g, 5, 1, 1, 3, 4)
	if err != nil {
		t.Fatalf("dim-order: %v", err)
	}
	if len(p) != (3-1)+(4-1) {
		t.Errorf("dim-order length = %d, want 5", len(p))
	}
	if err := g.ValidatePath(p); err != nil {
		t.Errorf("dim-order invalid: %v", err)
	}
	if g.PathDest(p) != MeshNode(5, 3, 4) {
		t.Errorf("dim-order dest wrong")
	}
	if _, err := MeshDimOrderPath(g, 5, 3, 3, 1, 4); err == nil {
		t.Error("non-monotone dim-order accepted")
	}
}

func TestMeshCornerString(t *testing.T) {
	if CornerNW.String() != "NW" || CornerSE.String() != "SE" {
		t.Error("MeshCorner.String broken")
	}
	if MeshCorner(9).String() == "" {
		t.Error("unknown corner should still render")
	}
}

func TestArray(t *testing.T) {
	g := mustValidate(t)(Array(3, 3, 3))
	if g.NumNodes() != 27 {
		t.Errorf("array nodes = %d", g.NumNodes())
	}
	if g.Depth() != 6 {
		t.Errorf("array depth = %d, want 6", g.Depth())
	}
	// edges: 3 dims * 2*3*3 per dim = 54
	if g.NumEdges() != 54 {
		t.Errorf("array edges = %d, want 54", g.NumEdges())
	}
	// Array(rows, cols) must agree with Mesh CornerNW shape.
	m := mustValidate(t)(Mesh(4, 6, CornerNW))
	a := mustValidate(t)(Array(4, 6))
	if a.NumNodes() != m.NumNodes() || a.NumEdges() != m.NumEdges() || a.Depth() != m.Depth() {
		t.Errorf("Array(4,6) != Mesh(4,6): %v vs %v", a.ComputeStats(), m.ComputeStats())
	}
	if _, err := Array(); err == nil {
		t.Error("Array() accepted")
	}
	if _, err := Array(0, 3); err == nil {
		t.Error("Array(0,3) accepted")
	}
}

func TestHypercube(t *testing.T) {
	d := 4
	g := mustValidate(t)(Hypercube(d))
	if g.NumNodes() != 1<<d {
		t.Errorf("hypercube nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != d*(1<<(d-1)) {
		t.Errorf("hypercube edges = %d, want %d", g.NumEdges(), d*(1<<(d-1)))
	}
	if g.Depth() != d {
		t.Errorf("hypercube depth = %d", g.Depth())
	}
	// Level widths are binomial coefficients.
	want := []int{1, 4, 6, 4, 1}
	for l, w := range want {
		if g.LevelWidth(l) != w {
			t.Errorf("level %d width = %d, want %d", l, g.LevelWidth(l), w)
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) accepted")
	}
}

func TestHypercubeBitFixPath(t *testing.T) {
	d := 5
	g := mustValidate(t)(Hypercube(d))
	src, dst := 0b00101, 0b10111
	p, err := HypercubeBitFixPath(g, d, src, dst)
	if err != nil {
		t.Fatalf("bitfix: %v", err)
	}
	if len(p) != 2 {
		t.Errorf("path length = %d, want 2", len(p))
	}
	if err := g.ValidatePath(p); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if g.PathSource(p) != HypercubeNode(src) || g.PathDest(p) != HypercubeNode(dst) {
		t.Errorf("endpoints wrong")
	}
	if _, err := HypercubeBitFixPath(g, d, 0b11, 0b01); err == nil {
		t.Error("non-superset dst accepted")
	}
}

func TestBinaryTree(t *testing.T) {
	g := mustValidate(t)(BinaryTree(3))
	if g.NumNodes() != 15 || g.NumEdges() != 14 || g.Depth() != 3 {
		t.Errorf("bintree(3): %v", g.ComputeStats())
	}
	if g.LevelWidth(0) != 1 || g.LevelWidth(3) != 8 {
		t.Errorf("bintree widths wrong")
	}
	if _, err := BinaryTree(0); err == nil {
		t.Error("BinaryTree(0) accepted")
	}
}

func TestFatTree(t *testing.T) {
	g := mustValidate(t)(FatTree(3, 4))
	// Depth-0 parent multiplicity = min(2^(3-1-0), 4) = 4 -> 8 edges at top tier.
	// Depth-1: mult 2, 4 parents? depth-1 has 2 nodes, each 2 children * 2 mult = 8.
	// Depth-2: mult 1, 4 nodes * 2 children = 8.
	if g.NumEdges() != 8+8+8 {
		t.Errorf("fattree edges = %d, want 24", g.NumEdges())
	}
	if g.Depth() != 3 {
		t.Errorf("fattree depth = %d", g.Depth())
	}
	if _, err := FatTree(0, 1); err == nil {
		t.Error("FatTree(0,1) accepted")
	}
	if _, err := FatTree(3, 0); err == nil {
		t.Error("FatTree(3,0) accepted")
	}
}

func TestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := mustValidate(t)(Random(rng, 10, 2, 6, 0.3))
	if g.Depth() != 10 {
		t.Errorf("random depth = %d", g.Depth())
	}
	// Connectivity repair: every non-sink has an Up edge, every non-source
	// a Down edge.
	for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Level < g.Depth() && len(n.Up) == 0 {
			t.Errorf("node %d at level %d has no Up edge", id, n.Level)
		}
		if n.Level > 0 && len(n.Down) == 0 {
			t.Errorf("node %d at level %d has no Down edge", id, n.Level)
		}
	}
	if _, err := Random(rng, 0, 1, 2, 0.5); err == nil {
		t.Error("Random depth 0 accepted")
	}
	if _, err := Random(rng, 3, 0, 2, 0.5); err == nil {
		t.Error("Random minWidth 0 accepted")
	}
	if _, err := Random(rng, 3, 3, 2, 0.5); err == nil {
		t.Error("Random maxWidth < minWidth accepted")
	}
	if _, err := Random(rng, 3, 1, 2, 1.5); err == nil {
		t.Error("Random p>1 accepted")
	}
}

func TestRandomExtremeProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// p=0: repair must still connect everything.
	g := mustValidate(t)(Random(rng, 5, 2, 3, 0))
	for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Level < g.Depth() && len(n.Up) == 0 {
			t.Fatalf("p=0: node %d stranded", id)
		}
	}
	// p=1: complete bipartite between levels.
	g1 := mustValidate(t)(Random(rng, 4, 2, 2, 1))
	if g1.NumEdges() != 4*2*2 {
		t.Errorf("p=1 edges = %d, want 16", g1.NumEdges())
	}
}
