package topo

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
)

// Levelize converts an arbitrary DAG into a leveled network, the
// direction the paper's Discussion points at ("it is interesting to
// extend our work for arbitrary network topologies"): nodes are layered
// by longest path from the sources, and every DAG edge spanning k > 1
// levels is subdivided with k-1 relay nodes, so the result satisfies
// the leveled-network condition exactly. The returned map gives the
// leveled NodeID of each original DAG node (relay nodes have no
// preimage). Edges must reference nodes in [0, n); cycles are an error.
func Levelize(name string, n int, dagEdges [][2]int) (*graph.Leveled, map[int]graph.NodeID, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("topo: Levelize needs n >= 1, got %d", n)
	}
	adj := make([][]int, n)
	indeg := make([]int, n)
	for i, e := range dagEdges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, nil, fmt.Errorf("topo: Levelize edge %d references unknown node (%d,%d)", i, u, v)
		}
		if u == v {
			return nil, nil, fmt.Errorf("topo: Levelize edge %d is a self-loop at %d", i, u)
		}
		adj[u] = append(adj[u], v)
		indeg[v]++
	}

	// Longest-path layering via Kahn topological order.
	level := make([]int, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		processed++
		for _, v := range adj[u] {
			if level[u]+1 > level[v] {
				level[v] = level[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed != n {
		return nil, nil, fmt.Errorf("topo: Levelize input contains a cycle (%d of %d nodes ordered)", processed, n)
	}

	b := graph.NewBuilder(name)
	ids := make(map[int]graph.NodeID, n)
	for v := 0; v < n; v++ {
		ids[v] = b.AddNode(level[v], fmt.Sprintf("d%d", v))
	}
	// Subdivide long edges with relay chains.
	relays := 0
	for _, e := range dagEdges {
		u, v := e[0], e[1]
		span := level[v] - level[u]
		if span < 1 {
			return nil, nil, fmt.Errorf("topo: internal: edge (%d,%d) spans %d levels", u, v, span)
		}
		prev := ids[u]
		for l := level[u] + 1; l < level[v]; l++ {
			relay := b.AddNode(l, fmt.Sprintf("r%d.%d", relays, l))
			relays++
			b.AddEdge(prev, relay)
			prev = relay
		}
		b.AddEdge(prev, ids[v])
	}
	// Levels with no nodes can occur only if some level index was
	// skipped entirely, which longest-path layering never does for a
	// connected layer range; Build validates regardless.
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}

// RandomDAG draws a random DAG over n nodes: each pair (i, j) with
// i < j is an edge with probability p (orientation low-to-high index,
// guaranteeing acyclicity). Returns the edge list for Levelize.
func RandomDAG(rng *rand.Rand, n int, p float64) [][2]int {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return edges
}
