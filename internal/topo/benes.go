package topo

import (
	"fmt"

	"hotpotato/internal/graph"
)

// Benes returns the k-dimensional Beneš network: a k-level butterfly
// followed by its mirror image, 2k+1 levels of 2^k rows in total. The
// Beneš network is rearrangeable — every permutation admits
// edge-disjoint paths (congestion 1) — which makes it the natural
// leveled network for testing the C = 1 extreme of the paper's bound.
func Benes(k int) (*graph.Leveled, error) {
	if k < 1 {
		return nil, fmt.Errorf("topo: Benes needs k >= 1, got %d", k)
	}
	if k > 16 {
		return nil, fmt.Errorf("topo: Benes k=%d too large (max 16)", k)
	}
	rows := 1 << k
	b := graph.NewBuilder(fmt.Sprintf("benes(%d)", k))
	ids := make([][]graph.NodeID, 2*k+1)
	for l := 0; l <= 2*k; l++ {
		ids[l] = make([]graph.NodeID, rows)
		for w := 0; w < rows; w++ {
			ids[l][w] = b.AddNode(l, fmt.Sprintf("w%0*b.l%d", k, w, l))
		}
	}
	// First half: butterfly flipping bit k-1-l at level l (MSB first).
	for l := 0; l < k; l++ {
		bit := 1 << (k - 1 - l)
		for w := 0; w < rows; w++ {
			b.AddEdge(ids[l][w], ids[l+1][w])
			b.AddEdge(ids[l][w], ids[l+1][w^bit])
		}
	}
	// Second half: mirrored (LSB first).
	for l := k; l < 2*k; l++ {
		bit := 1 << (l - k)
		for w := 0; w < rows; w++ {
			b.AddEdge(ids[l][w], ids[l+1][w])
			b.AddEdge(ids[l][w], ids[l+1][w^bit])
		}
	}
	return b.Build()
}

// BenesNode returns the NodeID of row w at level l of a Beneš network
// built by Benes(k).
func BenesNode(k, w, l int) graph.NodeID {
	return graph.NodeID(l*(1<<k) + w)
}

// BenesLoopbackPath returns the forward path from row src at level 0 to
// row dst at level 2k that fixes source bits in the first half (descend
// to row dst? no — any intermediate row m works; this helper uses the
// "Valiant trick": route to the given intermediate row mid at level k,
// then to dst). Both halves use their bit-fixing structure, so the path
// is unique given mid.
func BenesLoopbackPath(g *graph.Leveled, k, src, mid, dst int) (graph.Path, error) {
	rows := 1 << k
	if src < 0 || src >= rows || dst < 0 || dst >= rows || mid < 0 || mid >= rows {
		return nil, fmt.Errorf("topo: benes rows out of range (src=%d mid=%d dst=%d rows=%d)", src, mid, dst, rows)
	}
	p := make(graph.Path, 0, 2*k)
	w := src
	for l := 0; l < k; l++ {
		bit := 1 << (k - 1 - l)
		next := w
		if (w^mid)&bit != 0 {
			next = w ^ bit
		}
		e := g.EdgeBetween(BenesNode(k, w, l), BenesNode(k, next, l+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing benes edge at level %d", l)
		}
		p = append(p, e)
		w = next
	}
	for l := k; l < 2*k; l++ {
		bit := 1 << (l - k)
		next := w
		if (w^dst)&bit != 0 {
			next = w ^ bit
		}
		e := g.EdgeBetween(BenesNode(k, w, l), BenesNode(k, next, l+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing benes edge at level %d", l)
		}
		p = append(p, e)
		w = next
	}
	if w != dst {
		return nil, fmt.Errorf("topo: benes routing reached %d, want %d", w, dst)
	}
	return p, nil
}
