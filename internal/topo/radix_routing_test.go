package topo_test

import (
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// TestButterflyRadixEndToEndRouting routes a full permutation on a
// radix-4 butterfly with digit-fixing paths through the hot-potato
// engine — structural generators must also be routable. (External test
// package: workload imports topo, so this cannot live inside it.)
func TestButterflyRadixEndToEndRouting(t *testing.T) {
	k, r := 2, 4
	g, err := topo.ButterflyRadix(k, r)
	if err != nil {
		t.Fatal(err)
	}
	rows := 16
	ps := make([]graph.Path, 0, rows)
	for w := 0; w < rows; w++ {
		p, err := topo.ButterflyRadixPath(g, k, r, w, (w*5+3)%rows)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := set.CheckOnePacketPerSource(); err != nil {
		t.Fatal(err)
	}
	prob := &workload.Problem{Name: "radix-perm", G: g, Set: set,
		C: set.Congestion(), D: set.Dilation()}
	e := sim.NewEngine(prob, baselines.NewGreedy(), 1)
	steps, done := e.Run(10000)
	if !done {
		t.Fatalf("did not complete in %d steps", steps)
	}
	if e.M.UnsafeDeflections() != 0 {
		t.Errorf("unsafe deflections: %v", e.M.Deflections)
	}
}
