package topo

import (
	"fmt"

	"hotpotato/internal/graph"
)

// Butterfly returns the k-dimensional butterfly: levels 0..k, each with
// 2^k nodes indexed by a k-bit row word. Node (w, l) at level l<k
// connects to (w, l+1) (the "straight" edge) and (w XOR 2^(k-1-l), l+1)
// (the "cross" edge, flipping bit l counted from the most significant
// bit). Depth L = k; this is the canonical leveled network of Figure 1.
func Butterfly(k int) (*graph.Leveled, error) {
	if k < 1 {
		return nil, fmt.Errorf("topo: Butterfly needs k >= 1, got %d", k)
	}
	if k > 20 {
		return nil, fmt.Errorf("topo: Butterfly k=%d too large (max 20)", k)
	}
	rows := 1 << k
	b := graph.NewBuilder(fmt.Sprintf("butterfly(%d)", k))
	ids := make([][]graph.NodeID, k+1)
	for l := 0; l <= k; l++ {
		ids[l] = make([]graph.NodeID, rows)
		for w := 0; w < rows; w++ {
			ids[l][w] = b.AddNode(l, fmt.Sprintf("w%0*b.l%d", k, w, l))
		}
	}
	for l := 0; l < k; l++ {
		bit := 1 << (k - 1 - l)
		for w := 0; w < rows; w++ {
			b.AddEdge(ids[l][w], ids[l+1][w])
			b.AddEdge(ids[l][w], ids[l+1][w^bit])
		}
	}
	return b.Build()
}

// ButterflyNode returns the NodeID of row w at level l in a butterfly
// built by Butterfly(k). It relies on the generator's construction
// order (level-major, then row).
func ButterflyNode(g *graph.Leveled, k, w, l int) graph.NodeID {
	return graph.NodeID(l*(1<<k) + w)
}

// ButterflyRow recovers the row word of a butterfly node.
func ButterflyRow(g *graph.Leveled, k int, id graph.NodeID) int {
	return int(id) % (1 << k)
}

// ButterflyBitFixPath returns the unique forward path from row src at
// level 0 to row dst at level k that fixes bits most-significant-first:
// at level l it takes the straight edge if bit l of src and dst agree,
// else the cross edge. This is the standard greedy butterfly path.
func ButterflyBitFixPath(g *graph.Leveled, k, src, dst int) (graph.Path, error) {
	rows := 1 << k
	if src < 0 || src >= rows || dst < 0 || dst >= rows {
		return nil, fmt.Errorf("topo: butterfly rows out of range: src=%d dst=%d rows=%d", src, dst, rows)
	}
	p := make(graph.Path, 0, k)
	w := src
	for l := 0; l < k; l++ {
		bit := 1 << (k - 1 - l)
		next := w
		if (w^dst)&bit != 0 {
			next = w ^ bit
		}
		e := g.EdgeBetween(ButterflyNode(g, k, w, l), ButterflyNode(g, k, next, l+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing butterfly edge at level %d rows %d->%d", l, w, next)
		}
		p = append(p, e)
		w = next
	}
	return p, nil
}
