package topo

import (
	"fmt"

	"hotpotato/internal/graph"
)

// ButterflyRadix returns the radix-r, k-digit butterfly: levels 0..k,
// each with r^k nodes indexed by a k-digit base-r word; node (w, l)
// connects to the r nodes at level l+1 whose words agree with w except
// possibly at digit l (most-significant first). The binary butterfly is
// the r=2 case; higher radices model switches with more ports per
// stage (fewer, fatter stages for the same endpoint count).
func ButterflyRadix(k, r int) (*graph.Leveled, error) {
	if k < 1 || r < 2 {
		return nil, fmt.Errorf("topo: ButterflyRadix needs k >= 1, r >= 2, got k=%d r=%d", k, r)
	}
	rows := 1
	for i := 0; i < k; i++ {
		rows *= r
		if rows > 1<<20 {
			return nil, fmt.Errorf("topo: ButterflyRadix(%d,%d) too large", k, r)
		}
	}
	b := graph.NewBuilder(fmt.Sprintf("butterfly(k=%d,r=%d)", k, r))
	ids := make([][]graph.NodeID, k+1)
	for l := 0; l <= k; l++ {
		ids[l] = make([]graph.NodeID, rows)
		for w := 0; w < rows; w++ {
			ids[l][w] = b.AddNode(l, fmt.Sprintf("w%d.l%d", w, l))
		}
	}
	// digitStride[d] is r^(k-1-d): the place value of digit d
	// (most-significant first).
	stride := make([]int, k)
	s := 1
	for d := k - 1; d >= 0; d-- {
		stride[d] = s
		s *= r
	}
	for l := 0; l < k; l++ {
		for w := 0; w < rows; w++ {
			cur := (w / stride[l]) % r
			for digit := 0; digit < r; digit++ {
				next := w + (digit-cur)*stride[l]
				b.AddEdge(ids[l][w], ids[l+1][next])
			}
		}
	}
	return b.Build()
}

// ButterflyRadixNode returns the NodeID of row w at level l of a
// ButterflyRadix(k, r) network with the given row count r^k.
func ButterflyRadixNode(rows, w, l int) graph.NodeID {
	return graph.NodeID(l*rows + w)
}

// ButterflyRadixPath returns the unique digit-fixing path from row src
// at level 0 to row dst at level k: at level l the path fixes digit l
// of the row word to dst's digit.
func ButterflyRadixPath(g *graph.Leveled, k, r, src, dst int) (graph.Path, error) {
	rows := 1
	for i := 0; i < k; i++ {
		rows *= r
	}
	if src < 0 || src >= rows || dst < 0 || dst >= rows {
		return nil, fmt.Errorf("topo: rows out of range: src=%d dst=%d rows=%d", src, dst, rows)
	}
	stride := make([]int, k)
	s := 1
	for d := k - 1; d >= 0; d-- {
		stride[d] = s
		s *= r
	}
	p := make(graph.Path, 0, k)
	w := src
	for l := 0; l < k; l++ {
		cur := (w / stride[l]) % r
		want := (dst / stride[l]) % r
		next := w + (want-cur)*stride[l]
		e := g.EdgeBetween(ButterflyRadixNode(rows, w, l), ButterflyRadixNode(rows, next, l+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing radix-butterfly edge at level %d", l)
		}
		p = append(p, e)
		w = next
	}
	return p, nil
}
