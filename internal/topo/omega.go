package topo

import (
	"fmt"

	"hotpotato/internal/graph"
)

// Omega returns the k-stage Omega network — the unrolled
// shuffle-exchange network the paper lists among leveled networks
// (Section 1.1). Levels 0..k each hold 2^k nodes indexed by a k-bit
// word; node (w, l) connects to (shuffle(w), l+1) and
// (shuffle(w) XOR 1, l+1), where shuffle rotates the word left by one
// bit. Depth L = k.
func Omega(k int) (*graph.Leveled, error) {
	if k < 1 {
		return nil, fmt.Errorf("topo: Omega needs k >= 1, got %d", k)
	}
	if k > 20 {
		return nil, fmt.Errorf("topo: Omega k=%d too large (max 20)", k)
	}
	rows := 1 << k
	b := graph.NewBuilder(fmt.Sprintf("omega(%d)", k))
	ids := make([][]graph.NodeID, k+1)
	for l := 0; l <= k; l++ {
		ids[l] = make([]graph.NodeID, rows)
		for w := 0; w < rows; w++ {
			ids[l][w] = b.AddNode(l, fmt.Sprintf("w%0*b.l%d", k, w, l))
		}
	}
	for l := 0; l < k; l++ {
		for w := 0; w < rows; w++ {
			s := shuffle(w, k)
			b.AddEdge(ids[l][w], ids[l+1][s])
			b.AddEdge(ids[l][w], ids[l+1][s^1])
		}
	}
	return b.Build()
}

// shuffle rotates a k-bit word left by one bit.
func shuffle(w, k int) int {
	msb := (w >> (k - 1)) & 1
	return ((w << 1) | msb) & (1<<k - 1)
}

// OmegaNode returns the NodeID of row w at level l in an Omega network
// built by Omega(k).
func OmegaNode(k, w, l int) graph.NodeID {
	return graph.NodeID(l*(1<<k) + w)
}

// OmegaRoutePath returns the unique self-routing path from row src at
// level 0 to row dst at level k: after the l-th shuffle the incoming
// bit (the old MSB) is replaced by bit k-1-l of dst via the exchange
// choice, which is the classic destination-tag routing of the Omega
// network.
func OmegaRoutePath(g *graph.Leveled, k, src, dst int) (graph.Path, error) {
	rows := 1 << k
	if src < 0 || src >= rows || dst < 0 || dst >= rows {
		return nil, fmt.Errorf("topo: omega rows out of range: src=%d dst=%d rows=%d", src, dst, rows)
	}
	p := make(graph.Path, 0, k)
	w := src
	for l := 0; l < k; l++ {
		s := shuffle(w, k)
		// Destination tag: bit k-1-l of dst becomes the new LSB.
		next := (s &^ 1) | ((dst >> (k - 1 - l)) & 1)
		e := g.EdgeBetween(OmegaNode(k, w, l), OmegaNode(k, next, l+1))
		if e == graph.NoEdge {
			return nil, fmt.Errorf("topo: missing omega edge at level %d rows %d->%d", l, w, next)
		}
		p = append(p, e)
		w = next
	}
	if w != dst {
		return nil, fmt.Errorf("topo: omega routing reached row %d, want %d", w, dst)
	}
	return p, nil
}
