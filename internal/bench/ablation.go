package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Ablation of the design parameters (a, m, w, q)",
		Claim: "Section 2.1: each parameter serves a distinct role — set count a controls per-set congestion, frame size m the drift headroom, round length w the retry budget, q the excitation rate; weakening any one degrades invariants or time",
		Run:   runE8,
	})
}

func runE8(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E8", "Parameter ablation", "Section 2.1 parameter roles"))

	p, err := invariantProblem("E8", 0, 36)
	if err != nil {
		return "", err
	}
	base := core.PracticalConfig{SetCongestion: 4, FrameSlack: 4, RoundFactor: 4}

	type variant struct {
		name string
		cfg  core.PracticalConfig
	}
	sweep := func(title string, variants []variant) error {
		t := NewTable(title,
			"variant", "sets", "M", "W", "Q", "steps", "done", "defl/pkt", "Ic+Id+If")
		for _, v := range variants {
			params := core.ParamsPractical(p.C, p.L(), p.N(), v.cfg)
			res := core.Run(p, params, core.RunOptions{Seed: 8, Check: true, MaxSteps: 8 * params.TotalSteps(p.L())})
			viol := res.Invariants.IcFrameEscapes + res.Invariants.IdForeignMeetings + res.Invariants.IfTailOccupied
			t.AddRowf(v.name, params.NumSets, params.M, params.W,
				fmt.Sprintf("%.3f", params.Q), res.Steps, res.Done,
				fmt.Sprintf("%.2f", float64(res.Engine.TotalDeflections())/float64(p.N())), viol)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
		return nil
	}

	// (a) set count via per-set congestion target.
	scs := []float64{2, 4, 8}
	if cfg.Scale >= 2 {
		scs = []float64{1, 2, 4, 8, 16}
	}
	var vs []variant
	for _, sc := range scs {
		c := base
		c.SetCongestion = sc
		vs = append(vs, variant{fmt.Sprintf("per-set congestion %.0f", sc), c})
	}
	if err := sweep(fmt.Sprintf("(a) frontier-set count — %s:", p), vs); err != nil {
		return "", err
	}

	// (m) frame slack.
	slacks := []int{2, 4, 8}
	if cfg.Scale >= 2 {
		slacks = []int{1, 2, 4, 8, 12}
	}
	vs = vs[:0]
	for _, sl := range slacks {
		c := base
		c.FrameSlack = sl
		vs = append(vs, variant{fmt.Sprintf("frame slack %d", sl), c})
	}
	if err := sweep("(m) frame size:", vs); err != nil {
		return "", err
	}

	// (w) round length.
	rfs := []int{2, 4, 8}
	if cfg.Scale >= 2 {
		rfs = []int{1, 2, 4, 8, 12}
	}
	vs = vs[:0]
	for _, rf := range rfs {
		c := base
		c.RoundFactor = rf
		vs = append(vs, variant{fmt.Sprintf("round factor %d", rf), c})
	}
	if err := sweep("(w) round length:", vs); err != nil {
		return "", err
	}

	// (q) excitation probability.
	qs := []float64{0.005, 0.05, 0.5}
	if cfg.Scale >= 2 {
		qs = []float64{0.001, 0.01, 0.05, 0.2, 0.8}
	}
	vs = vs[:0]
	for _, q := range qs {
		c := base
		c.Q = q
		vs = append(vs, variant{fmt.Sprintf("q = %.3f", q), c})
	}
	if err := sweep("(q) excitation probability:", vs); err != nil {
		return "", err
	}

	// (wait) the wait state itself: the parking mechanism that pins
	// packets to their frames.
	tw := NewTable("(wait) wait-state ablation:",
		"variant", "steps", "done", "Ic escapes", "Id meets", "wait entries")
	for _, disable := range []bool{false, true} {
		params := core.ParamsPractical(p.C, p.L(), p.N(), base)
		router := core.NewFrame(params)
		router.DisableWait = disable
		eng := sim.NewEngine(p, router, 9)
		checker := core.NewInvariantChecker(router)
		checker.Attach(eng)
		steps, done := eng.Run(8 * params.TotalSteps(p.L()))
		name := "wait enabled (paper)"
		if disable {
			name = "wait disabled"
		}
		tw.AddRowf(name, steps, done, checker.Report.IcFrameEscapes,
			checker.Report.IdForeignMeetings, router.S.WaitEntries)
	}
	b.WriteString(tw.String())
	b.WriteByte('\n')

	// (inject) the staged injection schedule: what keeps frames
	// disjoint.
	ti := NewTable("(inject) injection-schedule ablation:",
		"variant", "steps", "done", "Ic escapes", "Id meets")
	for _, eager := range []bool{false, true} {
		params := core.ParamsPractical(p.C, p.L(), p.N(), base)
		router := core.NewFrame(params)
		router.EagerInjection = eager
		eng := sim.NewEngine(p, router, 10)
		checker := core.NewInvariantChecker(router)
		checker.Attach(eng)
		steps, done := eng.Run(8 * params.TotalSteps(p.L()))
		name := "scheduled (paper)"
		if eager {
			name = "eager (inject ASAP)"
		}
		ti.AddRowf(name, steps, done, checker.Report.IcFrameEscapes,
			checker.Report.IdForeignMeetings)
	}
	b.WriteString(ti.String())
	b.WriteByte('\n')

	b.WriteString("expected: more sets / larger frames / longer rounds reduce violations at a\n")
	b.WriteString("linear cost in steps (the schedule is (sets·M + L)·M·W); q trades conflict\n")
	b.WriteString("breaking against excited-vs-excited collisions, flattest in the middle;\n")
	b.WriteString("removing the wait state floods Ic/Id — parking is what keeps packets riding\n")
	b.WriteString("their frames rather than outrunning them.\n")
	return b.String(), nil
}
