package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Online wave arrivals: batches pipelined through frontier-set blocks",
		Claim: "Section 1.2: the algorithm is online — frames are pipelined one after the other, so successive arrival batches ride later frames and the makespan grows additively, one set-block per wave",
		Run:   runE12,
	})
}

func runE12(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E12", "Online wave arrivals", "pipelined frontier-frames (Section 1.2, 2.5)"))

	waveCounts := []int{1, 2, 4}
	if cfg.Scale >= 2 {
		waveCounts = []int{1, 2, 4, 8}
	}

	t := NewTable("random(L=28) network, equal-density waves mapped to frontier-set blocks:",
		"waves", "N", "C", "maxWaveC", "sets", "steps", "steps/wave-sets", "Id meets", "done")
	var prevSteps float64
	additive := true
	for i, waves := range waveCounts {
		rng := rngFor("E12", i)
		g, err := topo.Random(rng, 28, 3, 5, 0.4)
		if err != nil {
			return "", err
		}
		wp, err := workload.Waves(g, rng, waves, 0.15)
		if err != nil {
			return "", err
		}
		setsPerWave := 2
		params := core.Params{
			NumSets: waves * setsPerWave,
			M:       8,
			W:       24,
			Q:       0.05,
		}
		assign := wp.SetAssignment(rng, setsPerWave)
		router := core.NewFrameWithSets(params, assign)
		eng := sim.NewEngine(wp.Problem, router, int64(200+i))
		checker := core.NewInvariantChecker(router)
		checker.Attach(eng)
		steps, done := eng.Run(8 * params.TotalSteps(wp.L()))
		if !done {
			return "", fmt.Errorf("E12: %d waves did not complete", waves)
		}
		maxWaveC := 0
		for _, c := range wp.PerWaveC {
			if c > maxWaveC {
				maxWaveC = c
			}
		}
		perSet := float64(steps) / float64(params.NumSets)
		t.AddRowf(waves, wp.N(), wp.C, maxWaveC, params.NumSets, steps,
			fmt.Sprintf("%.0f", perSet), checker.Report.IdForeignMeetings, done)
		if i > 0 {
			// Makespan must grow sub-linearly vs naive sequential runs:
			// each extra wave adds one set-block of phases, not a full
			// schedule.
			growth := float64(steps) / prevSteps
			if growth > 2.5*float64(waveCounts[i])/float64(waveCounts[i-1]) {
				additive = false
			}
		}
		prevSteps = float64(steps)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nadditive pipelining observed: %v\n", additive)
	b.WriteString("expected: steps grow by one set-block of phases per extra wave — the\n")
	b.WriteString("schedule is (waves·setsPerWave·M + L)·M·W, linear in the wave count with\n")
	b.WriteString("the L·M·W term amortized across waves; foreign-set meetings stay zero, so\n")
	b.WriteString("waves never interfere.\n")
	return b.String(), nil
}
