package bench

import (
	"fmt"
	"math"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Excitation success probability (Lemma 4.3)",
		Claim: "an excited packet reaches its target uninterrupted with probability at least 1/2e — excitation is the mechanism that guarantees per-round progress",
		Run:   runE19,
	})
}

func runE19(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E19", "Excitation success probability", "Lemma 4.3"))

	floor := 1 / (2 * math.E)
	gens := []struct {
		name string
		f    func() (*workload.Problem, error)
	}{
		{"random-deep", func() (*workload.Problem, error) { return invariantProblem("E19", 0, 32) }},
		{"bfly-hotspot", func() (*workload.Problem, error) {
			g, err := topo.Butterfly(6)
			if err != nil {
				return nil, err
			}
			return workload.HotSpot(g, rngFor("E19", 1), 32, 2)
		}},
		{"mesh-hard(8)", func() (*workload.Problem, error) { return workload.MeshHard(8) }},
	}

	t := NewTable(fmt.Sprintf("frame router; Lemma 4.3 floor = 1/2e = %.3f:", floor),
		"workload", "excitations", "successes", "failures", "success rate", "above floor")
	for _, gen := range gens {
		p, err := gen.f()
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		var exc, succ, fail int
		for s := 0; s < cfg.Seeds; s++ {
			res := core.Run(p, params, core.RunOptions{Seed: int64(1900 + s)})
			if !res.Done {
				return "", fmt.Errorf("E19: %s did not complete", gen.name)
			}
			exc += res.Router.Excitations
			succ += res.Router.ExcitedSuccesses
			fail += res.Router.ExcitedFailures
		}
		rate := 0.0
		if exc > 0 {
			rate = float64(succ) / float64(exc)
		}
		t.AddRowf(gen.name, exc, succ, fail,
			fmt.Sprintf("%.3f", rate), rate >= floor)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: the measured per-episode success rate clears the 1/2e floor on\n")
	b.WriteString("every workload — usually by a lot, since the floor is a worst case over all\n")
	b.WriteString("in-frame conflict patterns; this is the engine behind Lemma 4.4's per-round\n")
	b.WriteString("progress and, through Lemmas 4.19-4.21, invariant If.\n")
	return b.String(), nil
}
