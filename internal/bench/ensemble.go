package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/mc"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Probabilistic guarantee: success rate and tail latency over seed ensembles",
		Claim: "Theorem 4.26: all packets are absorbed within the bound with probability at least 1 - 1/LN; the failure probability is a tail event, not a typical case",
		Run:   runE11,
	})
}

func runE11(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E11", "Success probability and tail latency", "Theorem 4.26"))

	trials := 32 * cfg.Seeds
	if cfg.Scale >= 2 {
		trials = 128 * cfg.Seeds
	}
	p, err := invariantProblem("E11", 0, 32)
	if err != nil {
		return "", err
	}

	t := NewTable(fmt.Sprintf("%s, %d seeds per row, parallel ensemble:", p, trials),
		"parameters", "budget", "success", "paper bound", "p50 steps", "p99 steps", "p99/p50", "unsafe")
	rows := []struct {
		name   string
		pc     core.PracticalConfig
		budget float64 // multiple of the schedule bound (0 = default 4x)
	}{
		{"tight, 1.0x schedule budget", core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}, 1.0},
		{"tight, 4x schedule budget", core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}, 0},
		{"default, 1.0x schedule budget", core.PracticalConfig{}, 1.0},
	}
	for _, r := range rows {
		params := core.ParamsPractical(p.C, p.L(), p.N(), r.pc)
		maxSteps := 0
		if r.budget > 0 {
			maxSteps = int(r.budget * float64(params.TotalSteps(p.L())))
		}
		ens, err := mc.Run(p, params, mc.Options{Trials: trials, MaxSteps: maxSteps})
		if err != nil {
			return "", err
		}
		p99p50 := 0.0
		if p50 := ens.StepsQuantile(0.5); p50 > 0 {
			p99p50 = ens.StepsQuantile(0.99) / p50
		}
		t.AddRowf(r.name, fmtBudget(r.budget),
			fmt.Sprintf("%.3f", ens.SuccessRate()),
			fmt.Sprintf("%.4f", ens.PaperSuccessBound()),
			ens.StepsQuantile(0.5), ens.StepsQuantile(0.99), p99p50,
			ens.TotalUnsafe())
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: success rate at or above the paper's 1 - 1/LN bound even within the\n")
	b.WriteString("un-inflated schedule budget, and a tight tail (p99/p50 near 1): the completion\n")
	b.WriteString("time is schedule-dominated, so randomness moves it very little — the\n")
	b.WriteString("probabilistic guarantee is conservative.\n")
	return b.String(), nil
}

func fmtBudget(mult float64) string {
	if mult <= 0 {
		return "4x bound"
	}
	return fmt.Sprintf("%.1fx bound", mult)
}
