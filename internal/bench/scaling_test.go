package bench

import (
	"runtime"
	"testing"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// TestParallelStepScaling measures ns/step of the sharded parallel step
// on the sparse butterfly(12) workload at 1/2/4/8 workers and asserts
// real speedup at 4 workers. It needs actual cores, so it first raises
// GOMAXPROCS to NumCPU (a low ambient GOMAXPROCS — e.g. from a
// container limit or the test runner — must not silently turn the gate
// into a skip) and only skips when the hardware truly has fewer than 4
// CPUs, where workers time-slice and no speedup is possible (the
// recorded BENCH_engine.json rows still document that honestly). Also
// skipped under -short.
func TestParallelStepScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement is slow; skipped under -short")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("NumCPU = %d < 4: hardware cannot show parallel speedup", n)
	} else if runtime.GOMAXPROCS(0) < n {
		old := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(old)
		t.Logf("raised GOMAXPROCS %d -> %d for the scaling gate", old, n)
	}

	g, err := topo.Butterfly(12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.FullThroughput(g, rngFor("scaling-sparse", 12))
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p, &staggeredGreedy{Greedy: baselines.NewGreedy(), rate: 16}, 1)
	defer e.Close()

	nsPerStep := map[int]float64{}
	for _, w := range []int{1, 2, 4, 8} {
		e.SetParallelism(w, 0)
		// Warm, then measure the best of two runs to damp scheduler
		// noise.
		e.Reset(1)
		if _, done := e.Run(1 << 22); !done {
			t.Fatalf("workers=%d: warmup did not complete", w)
		}
		best := 0.0
		for rep := 0; rep < 2; rep++ {
			e.Reset(1)
			start := time.Now()
			steps, done := e.Run(1 << 22)
			wall := time.Since(start)
			if !done {
				t.Fatalf("workers=%d: run did not complete", w)
			}
			ns := float64(wall.Nanoseconds()) / float64(steps)
			if best == 0 || ns < best {
				best = ns
			}
		}
		nsPerStep[w] = best
		t.Logf("workers=%d: %.0f ns/step", w, best)
	}

	if speedup := nsPerStep[1] / nsPerStep[4]; speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx on sparse butterfly(12), want >= 1.5x (1w=%.0f ns/step, 4w=%.0f ns/step)",
			speedup, nsPerStep[1], nsPerStep[4])
	}
}

// TestParallelEfficiencyRecorded runs the recorded workers sweep (the
// exact code path behind -bench-parallel and the committed artifact)
// and asserts the workers=4 row carries a populated parallel_efficiency
// of at least 0.5 — i.e. ≥2x steady speedup over workers=1. Like the
// scaling gate above, it raises GOMAXPROCS to NumCPU first and skips
// only when the hardware truly has fewer than 4 CPUs.
func TestParallelEfficiencyRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("recorded sweep is slow; skipped under -short")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("NumCPU = %d < 4: hardware cannot show parallel efficiency", n)
	} else if runtime.GOMAXPROCS(0) < n {
		old := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(old)
		t.Logf("raised GOMAXPROCS %d -> %d for the efficiency gate", old, n)
	}

	b, err := RunEngineBenchParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range b.Rows {
		if r.Workers != 4 {
			continue
		}
		found = true
		if r.InvalidParallel {
			t.Fatalf("workers=4 row invalid despite GOMAXPROCS=%d", b.GOMAXPROCS)
		}
		if r.SpeedupVs1 <= 0 || r.ParallelEfficiency <= 0 {
			t.Fatalf("workers=4 row missing speedup annotation: %+v", r)
		}
		t.Logf("workers=4: %.2fx vs workers=1, efficiency %.2f", r.SpeedupVs1, r.ParallelEfficiency)
		if r.ParallelEfficiency < 0.5 {
			t.Errorf("parallel_efficiency %.2f at workers=4, want >= 0.5 (speedup %.2fx)",
				r.ParallelEfficiency, r.SpeedupVs1)
		}
	}
	if !found {
		t.Errorf("sweep recorded no workers=4 row (gomaxprocs=%d, skipped %v)", b.GOMAXPROCS, b.SkippedWorkers)
	}
}
