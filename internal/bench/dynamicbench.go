package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/topo"
)

// DynamicBenchRow is one scripted-workload measurement of the open-
// system (service) engine's stepping cost: a batch/advance/drain script
// in the shape of scripts/service_smoke.sh, replayed on a warmed
// engine.
type DynamicBenchRow struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Packets is the number of packets submitted per measured rep
	// (Batches batches of BatchSize via SubmitRandom, AdvancePer steps
	// apart), after which the engine is stepped until it drains.
	Packets   int `json:"packets"`
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// Faulted marks rows run under a flap fault campaign; RetryMax is
	// the admission retry budget (the service-smoke default is 8).
	Faulted  bool `json:"faulted,omitempty"`
	RetryMax int  `json:"retry_max_attempts"`
	// Gomaxprocs/NumCPU/CPUModel stamp the recording host (the dynamic
	// engine is single-threaded by contract — the service serializes all
	// access through one goroutine per topology — so no workers column).
	Gomaxprocs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Steps      int    `json:"steps"`
	// WallNS covers one full measured rep (submission ramp + drain) on a
	// warmed engine: construction, first-touch growth of every arena and
	// queue backing, and the pre-measure GC all happen before the clock
	// starts. Fastest-of-benchReps by ns/step; AllocsPerStep is the max
	// across reps so best-of timing never hides an allocating rep.
	WallNS      int64   `json:"wall_ns"`
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
	TimingBasis string  `json:"timing_basis"`
	// RampSteps/RampNS time the submission phase (batches still being
	// submitted and injected); SteadyNsPerStep isolates the post-
	// submission drain, the pure stepping regime a long-running service
	// spends most of its life in. It is the fastest drain across all
	// measured reps that had one (a rep can drain exactly at the last
	// advance step and contribute no drain sample), so it can come from
	// a different rep than the ns_per_step figure.
	RampSteps       int     `json:"ramp_steps"`
	RampNS          int64   `json:"ramp_ns"`
	SteadyNsPerStep float64 `json:"steady_ns_per_step,omitempty"`
	// AllocsPerStep averages heap allocations over the whole measured
	// rep of a warmed engine. SteadyState rows must record exactly 0
	// (the CheckDynamicStrictAllocs CI gate); the faulted row is
	// reported but not gated, since fault-model closures are outside the
	// engine's allocation contract.
	AllocsPerStep float64 `json:"allocs_per_step"`
	SteadyState   bool    `json:"steady_state"`
	PeakInFlight  int     `json:"peak_in_flight"`
	// PrePRNsPerStep/SpeedupVsPrePR relate this row to the same-host
	// recording taken against the pointer-chasing engine before the SoA
	// rebuild (AnnotateDynamicPrePR; see DynamicBench.PrePRBasis for
	// provenance).
	PrePRNsPerStep float64 `json:"pre_pr_ns_per_step,omitempty"`
	SpeedupVsPrePR float64 `json:"speedup_vs_pre_pr,omitempty"`
}

// DynamicBench is the BENCH_dynamic.json document: open-system engine
// stepping cost on the service-smoke topology (and scaled-up variants)
// under the scripted batch/advance/drain workload.
type DynamicBench struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Scale      int    `json:"scale"`
	// PrePRBasis documents where the rows' pre_pr_ns_per_step numbers
	// come from when AnnotateDynamicPrePR stamped them.
	PrePRBasis string            `json:"pre_pr_basis,omitempty"`
	Rows       []DynamicBenchRow `json:"rows"`
}

// dynScript is the scripted service workload one row measures.
type dynScript struct {
	name      string
	build     func() (*graph.Leveled, error)
	batches   int
	batchSize int
	advance   int
	faultSpec func(g *graph.Leveled) dynamic.Config
	strict    bool
}

// dynDrainBudget bounds the drain loop of one rep; a run that cannot
// drain within it is broken, not slow.
const dynDrainBudget = 1 << 20

// RunDynamicBench measures the dynamic engine on the service-smoke
// butterfly (scale 1) plus a larger butterfly and a faulted variant
// (scale 2) — the same manual-stepped batch/advance/drain shape
// scripts/service_smoke.sh drives through the HTTP API, minus the HTTP.
func RunDynamicBench(scale int) (*DynamicBench, error) {
	if scale < 1 {
		scale = 1
	}
	out := &DynamicBench{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Scale:      scale,
	}

	base := dynamic.Config{
		Lambda: 0, Steps: 0, Seed: 42,
		Retry: dynamic.RetryPolicy{MaxAttempts: 8},
	}
	scripts := []dynScript{
		{
			// The service-smoke shape: openload -serve defaults to
			// butterfly(5), manual stepping, retry 8.
			name:    "butterfly(5)-service",
			build:   func() (*graph.Leveled, error) { return topo.Butterfly(5) },
			batches: 24, batchSize: 16, advance: 5,
			faultSpec: func(*graph.Leveled) dynamic.Config { return base },
			strict:    true,
		},
	}
	if scale >= 2 {
		scripts = append(scripts,
			dynScript{
				name:    "butterfly(7)-service",
				build:   func() (*graph.Leveled, error) { return topo.Butterfly(7) },
				batches: 48, batchSize: 32, advance: 5,
				faultSpec: func(*graph.Leveled) dynamic.Config { return base },
				strict:    true,
			},
			dynScript{
				name:    "butterfly(5)-service-faulted",
				build:   func() (*graph.Leveled, error) { return topo.Butterfly(5) },
				batches: 24, batchSize: 16, advance: 5,
				faultSpec: func(g *graph.Leveled) dynamic.Config {
					cfg := base
					cfg.Faults = faults.Flap{Period: 40, Down: 6, Rate: 0.3}.Model(g, 11)
					return cfg
				},
				strict: false,
			},
		)
	}

	for _, sc := range scripts {
		g, err := sc.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", sc.name, err)
		}
		row, err := measureDynamicScript(sc, g)
		if err != nil {
			return nil, err
		}
		row.CPUModel = out.CPUModel
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// measureDynamicScript replays the batch/advance/drain script benchReps
// times on one engine. The first (unmeasured) rep pays every startup
// transient — slot-buffer growth, queue backings, tenant interning,
// reservoir fill-up — so measured reps see the steady state a long-
// running service operates in. The fastest rep by ns/step is recorded;
// the allocation figure is the max across reps.
func measureDynamicScript(sc dynScript, g *graph.Leveled) (DynamicBenchRow, error) {
	cfg := sc.faultSpec(g)
	e, err := dynamic.NewEngine(g, cfg)
	if err != nil {
		return DynamicBenchRow{}, fmt.Errorf("bench: %s: %w", sc.name, err)
	}

	runScript := func() (rampSteps int, ramp time.Duration, steps int, wall time.Duration, err error) {
		start := time.Now()
		steps0 := e.StepCount()
		for b := 0; b < sc.batches; b++ {
			if err = e.SubmitRandom("bench", sc.batchSize); err != nil {
				return
			}
			for a := 0; a < sc.advance; a++ {
				if err = e.Step(); err != nil {
					return
				}
			}
		}
		rampSteps = e.StepCount() - steps0
		ramp = time.Since(start)
		for i := 0; ; i++ {
			if !e.HasWork() {
				break
			}
			if i >= dynDrainBudget {
				err = fmt.Errorf("bench: %s did not drain within budget", sc.name)
				return
			}
			if err = e.Step(); err != nil {
				return
			}
		}
		steps = e.StepCount() - steps0
		wall = time.Since(start)
		return
	}

	// Warm rep: unmeasured, grows every backing.
	if _, _, _, _, err := runScript(); err != nil {
		return DynamicBenchRow{}, err
	}

	var row DynamicBenchRow
	maxAllocs, bestSteady := 0.0, 0.0
	for rep := 0; rep < benchReps; rep++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		rampSteps, ramp, steps, wall, err := runScript()
		runtime.ReadMemStats(&after)
		if err != nil {
			return DynamicBenchRow{}, err
		}
		if steps == 0 {
			return DynamicBenchRow{}, fmt.Errorf("bench: %s executed no steps", sc.name)
		}
		if allocs := float64(after.Mallocs-before.Mallocs) / float64(steps); allocs > maxAllocs {
			maxAllocs = allocs
		}
		if drain := steps - rampSteps; drain > 0 {
			steady := float64(wall.Nanoseconds()-ramp.Nanoseconds()) / float64(drain)
			if bestSteady == 0 || steady < bestSteady {
				bestSteady = steady
			}
		}
		nsPerStep := float64(wall.Nanoseconds()) / float64(steps)
		if rep > 0 && nsPerStep >= row.NsPerStep {
			continue
		}
		row = DynamicBenchRow{
			Topology:     sc.name,
			Nodes:        g.NumNodes(),
			Edges:        g.NumEdges(),
			Packets:      sc.batches * sc.batchSize,
			Batches:      sc.batches,
			BatchSize:    sc.batchSize,
			Faulted:      cfg.Faults != nil,
			RetryMax:     cfg.Retry.MaxAttempts,
			Gomaxprocs:   runtime.GOMAXPROCS(0),
			NumCPU:       runtime.NumCPU(),
			Steps:        steps,
			WallNS:       wall.Nanoseconds(),
			NsPerStep:    nsPerStep,
			StepsPerSec:  float64(steps) / wall.Seconds(),
			TimingBasis:  "warmed-rep",
			RampSteps:    rampSteps,
			RampNS:       ramp.Nanoseconds(),
			SteadyState:  sc.strict,
			PeakInFlight: e.Peek().PeakInFlight,
		}
	}
	row.SteadyNsPerStep = bestSteady
	row.AllocsPerStep = maxAllocs
	return row, nil
}

// CheckDynamicStrictAllocs is the zero-allocation CI gate for the
// dynamic engine: every steady-state row of a warmed engine must record
// exactly 0 allocs/step, ramp included — a long-running service's whole
// hot loop, not just its drain tail.
func CheckDynamicStrictAllocs(b *DynamicBench) error {
	for _, r := range b.Rows {
		if r.SteadyState && r.AllocsPerStep > 0 {
			return fmt.Errorf("bench: dynamic steady-state row %s allocated %.4f allocs/step; want 0",
				r.Topology, r.AllocsPerStep)
		}
	}
	return nil
}

// ReadDynamicBench loads a previously recorded BENCH_dynamic.json.
func ReadDynamicBench(path string) (*DynamicBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b DynamicBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// CompareDynamicBench is the dynamic-engine regression gate: every row
// matched by topology between the committed baseline and the current
// document must not regress ns_per_step by more than tolerance
// (fractional; 0.10 = 10%). Rows only on one side are ignored, as are
// baselines recorded at a different scale.
func CompareDynamicBench(baseline, current *DynamicBench, tolerance float64) ([]string, error) {
	var warnings []string
	if baseline.Scale != current.Scale {
		warnings = append(warnings,
			fmt.Sprintf("baseline scale %d != current scale %d; nothing compared", baseline.Scale, current.Scale))
		return warnings, nil
	}
	base := make(map[string]DynamicBenchRow)
	for _, r := range baseline.Rows {
		base[r.Topology] = r
	}
	for _, r := range current.Rows {
		b, ok := base[r.Topology]
		if !ok || b.NsPerStep <= 0 {
			continue
		}
		if r.NsPerStep > b.NsPerStep*(1+tolerance) {
			return warnings, fmt.Errorf("bench: dynamic regression on %s: %.2f ns/step vs baseline %.2f (+%.1f%%, tolerance %.0f%%)",
				r.Topology, r.NsPerStep, b.NsPerStep,
				100*(r.NsPerStep/b.NsPerStep-1), 100*tolerance)
		}
	}
	return warnings, nil
}

// AnnotateDynamicPrePR stamps each current row with the matching
// (by topology) ns/step from a recording taken before the SoA rebuild,
// so the committed document carries its own speedup evidence. basis
// documents the provenance of the pre-PR numbers.
func AnnotateDynamicPrePR(current, prePR *DynamicBench, basis string) {
	old := make(map[string]DynamicBenchRow)
	for _, r := range prePR.Rows {
		old[r.Topology] = r
	}
	for i := range current.Rows {
		r := &current.Rows[i]
		if o, ok := old[r.Topology]; ok && o.NsPerStep > 0 && r.NsPerStep > 0 {
			r.PrePRNsPerStep = o.NsPerStep
			r.SpeedupVsPrePR = o.NsPerStep / r.NsPerStep
		}
	}
	current.PrePRBasis = basis
}

// WriteDynamicBench runs the dynamic benchmark and writes the JSON
// document to path. With strict set, it fails if any steady-state row
// recorded heap allocations. prePRPath, when non-empty, names a
// recording taken against the pre-rebuild engine on the same host; its
// per-topology ns/step is stamped into the fresh rows as the speedup
// denominator.
func WriteDynamicBench(path string, scale int, strict bool, prePRPath string) (*DynamicBench, error) {
	b, err := RunDynamicBench(scale)
	if err != nil {
		return nil, err
	}
	if prePRPath != "" {
		old, err := ReadDynamicBench(prePRPath)
		if err != nil {
			return nil, err
		}
		AnnotateDynamicPrePR(b, old,
			fmt.Sprintf("same-host recording of the pre-SoA engine (%s)", prePRPath))
	}
	if strict {
		if err := CheckDynamicStrictAllocs(b); err != nil {
			return nil, err
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
