// Package bench is the experiment harness: it regenerates every figure
// and theoretical claim of the paper as a formatted report
// (see DESIGN.md's experiment index F1-F2, E1-E19, P1). cmd/experiments
// drives the full suite; bench_test.go at the repository root runs
// scaled-down versions as Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls how heavy each experiment runs.
type Config struct {
	// Seeds is the number of repetitions averaged per cell (>=1).
	Seeds int
	// Scale selects the sweep size: 1 = quick (benchmarks), 2 = full
	// (cmd/experiments).
	Scale int
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Seeds < 1 {
		c.Seeds = 1
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	return c
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper claim being reproduced.
	Claim string
	// Run produces the report text.
	Run func(cfg Config) (string, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry lists all experiments in ID order.
func Registry() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

// idKey orders figures (F*) first, experiments (E*) numerically next,
// and any other series (e.g. performance P*) last.
func idKey(id string) string {
	if len(id) < 2 {
		return id
	}
	rank := '2'
	switch id[0] {
	case 'F':
		rank = '0'
	case 'E':
		rank = '1'
	}
	return fmt.Sprintf("%c%02s", rank, id[1:])
}

// ByID fetches one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table is a simple aligned-text table.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; missing cells render empty, extras panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("bench: row has %d cells, table has %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		case float32:
			out[i] = fmt.Sprintf("%.2f", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first). Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// section formats an experiment report header.
func section(id, title, claim string) string {
	return fmt.Sprintf("== %s: %s ==\npaper claim: %s\n\n", id, title, claim)
}
