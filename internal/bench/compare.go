package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Hot-potato vs store-and-forward: the cost of losing buffers",
		Claim: "Section 1.2: the benefit from using buffers is no more than polylogarithmic on leveled networks",
		Run:   runE3,
	})
}

func runE3(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E3", "Algorithm comparison", "buffers buy at most a polylog factor"))

	type workloadGen struct {
		name string
		f    func() (*workload.Problem, error)
	}
	k := 6
	gens := []workloadGen{
		{"bfly-transpose", func() (*workload.Problem, error) {
			g, err := topo.Butterfly(k)
			if err != nil {
				return nil, err
			}
			return workload.ButterflyTranspose(g, k)
		}},
		{"bfly-hotspot", func() (*workload.Problem, error) {
			g, err := topo.Butterfly(k)
			if err != nil {
				return nil, err
			}
			return workload.HotSpot(g, rngFor("E3", 1), 32, 2)
		}},
		{"mesh-hard(8)", func() (*workload.Problem, error) {
			return workload.MeshHard(8)
		}},
		{"random-deep", func() (*workload.Problem, error) {
			rng := rngFor("E3", 2)
			g, err := topo.Random(rng, 24, 3, 5, 0.4)
			if err != nil {
				return nil, err
			}
			return workload.Random(g, rng, 0.5)
		}},
	}
	if cfg.Scale >= 2 {
		gens = append(gens,
			workloadGen{"bfly-bitreversal", func() (*workload.Problem, error) {
				g, err := topo.Butterfly(k)
				if err != nil {
					return nil, err
				}
				return workload.ButterflyBitReversal(g, k)
			}},
			workloadGen{"bfly-fullthroughput", func() (*workload.Problem, error) {
				g, err := topo.Butterfly(k)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("E3", 3))
			}},
			workloadGen{"benes-valiant", func() (*workload.Problem, error) {
				g, err := topo.Benes(5)
				if err != nil {
					return nil, err
				}
				return workload.BenesValiant(g, rngFor("E3", 4), 5)
			}},
		)
	}

	for _, gen := range gens {
		p, err := gen.f()
		if err != nil {
			return "", fmt.Errorf("E3: %s: %w", gen.name, err)
		}
		results, err := compareAll(cfg, p)
		if err != nil {
			return "", fmt.Errorf("E3: %s: %w", gen.name, err)
		}
		t := NewTable(fmt.Sprintf("%s  (lower bound max(C,D)=%d):", p, max(p.C, p.D)),
			"algorithm", "steps(mean)", "steps/(C+D)", "vs sf-fifo")
		var sfFifo float64
		for _, r := range results {
			if r.Name == "sf-fifo" {
				sfFifo = r.Steps.Mean
			}
		}
		for _, r := range results {
			ratio := ""
			if sfFifo > 0 {
				ratio = fmt.Sprintf("%.2fx", r.Steps.Mean/sfFifo)
			}
			t.AddRowf(r.Name, r.Steps.Mean, r.Steps.Mean/float64(p.C+p.D), ratio)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString("expected: store-and-forward schedulers sit near the Ω(C+D) lower bound;\n")
	b.WriteString("greedy hot-potato pays a small constant over them; the frame router pays its\n")
	b.WriteString("structural polylog (pipelined frames dominate its time) — bounded, never the\n")
	b.WriteString("unbounded blow-up a buffered-vs-bufferless gap could in principle show.\n")
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
