package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestEngineBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benchmark is slow; skipped under -short")
	}
	b, err := RunEngineBench(1)
	if err != nil {
		t.Fatal(err)
	}
	// Four topology rows, plus the sparse butterfly swept at the
	// workers>1 counts GOMAXPROCS can schedule; counts it cannot are
	// recorded in SkippedWorkers instead of as invalid rows.
	wantPar := 0
	for _, w := range []int{2, 4, 8} {
		if w <= b.GOMAXPROCS {
			wantPar++
		}
	}
	if len(b.Rows) != 4+wantPar {
		t.Fatalf("rows = %d, want %d (dense, sparse x {1 + %d parallel} workers, mesh, random)",
			len(b.Rows), 4+wantPar, wantPar)
	}
	if got := len(b.SkippedWorkers); got != 3-wantPar {
		t.Errorf("skipped_workers = %v, want %d entries", b.SkippedWorkers, 3-wantPar)
	}
	for _, w := range b.SkippedWorkers {
		if w <= b.GOMAXPROCS {
			t.Errorf("worker count %d skipped despite GOMAXPROCS=%d", w, b.GOMAXPROCS)
		}
	}
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Errorf("missing environment header: %+v", b)
	}
	if b.NumCPU <= 0 || b.GOMAXPROCS <= 0 {
		t.Errorf("missing CPU header: %+v", b)
	}
	seqRows, parRows := 0, 0
	for _, r := range b.Rows {
		if r.Steps <= 0 || r.WallNS <= 0 || r.NsPerStep <= 0 || r.StepsPerSec <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Topology, r)
		}
		if r.AllocsPerStep < 0 {
			t.Errorf("%s: negative allocs/step %g", r.Topology, r.AllocsPerStep)
		}
		if r.MaxInFlight <= 0 || r.MaxInFlight > r.Packets {
			t.Errorf("%s: max in flight %d outside (0, %d]", r.Topology, r.MaxInFlight, r.Packets)
		}
		if r.Workers < 1 || r.Shards < 1 {
			t.Errorf("%s: bad parallelism %d/%d", r.Topology, r.Workers, r.Shards)
		}
		if r.SteadyState != (r.Workers == 1) {
			t.Errorf("%s: steady-state flag %v at workers=%d", r.Topology, r.SteadyState, r.Workers)
		}
		if r.Gomaxprocs != b.GOMAXPROCS || r.NumCPU != b.NumCPU || r.CPUModel != b.CPUModel {
			t.Errorf("%s: row CPU stamp %d/%d/%q differs from header %d/%d/%q",
				r.Topology, r.Gomaxprocs, r.NumCPU, r.CPUModel, b.GOMAXPROCS, b.NumCPU, b.CPUModel)
		}
		if r.InvalidParallel {
			t.Errorf("%s: fresh recording emitted an invalid_parallel row (workers=%d, gomaxprocs=%d)",
				r.Topology, r.Workers, r.Gomaxprocs)
		}
		if r.Workers > 1 {
			if r.SpeedupVs1 <= 0 || r.ParallelEfficiency <= 0 {
				t.Errorf("%s: workers=%d row missing speedup annotation: speedup=%g efficiency=%g",
					r.Topology, r.Workers, r.SpeedupVs1, r.ParallelEfficiency)
			}
		} else if r.SpeedupVs1 != 0 || r.ParallelEfficiency != 0 {
			t.Errorf("%s: workers=1 row carries speedup annotation: %+v", r.Topology, r)
		}
		if r.TimingBasis != "steady-run" {
			t.Errorf("%s: timing basis %q", r.Topology, r.TimingBasis)
		}
		if r.RampSteps < 0 || r.RampSteps > r.Steps || r.RampNS < 0 || r.RampNS > r.WallNS {
			t.Errorf("%s: ramp segment %d steps / %d ns outside run %d steps / %d ns",
				r.Topology, r.RampSteps, r.RampNS, r.Steps, r.WallNS)
		}
		if r.SteadyState {
			seqRows++
		} else {
			parRows++
		}
	}
	if seqRows != 4 || parRows != wantPar {
		t.Errorf("row split %d sequential / %d parallel, want 4/%d", seqRows, parRows, wantPar)
	}
	// The zero-alloc claim: a warmed, Reset-rewound engine must not
	// allocate on the sequential stepping path.
	if err := CheckStrictAllocs(b); err != nil {
		t.Error(err)
	}
	if b.Ensemble == nil {
		t.Fatal("missing ensemble reuse row")
	}
	if b.Ensemble.FreshTrialsPerSec <= 0 || b.Ensemble.ReusedTrialsPerSec <= 0 ||
		b.Ensemble.ReuseSpeedup <= 0 {
		t.Errorf("bad ensemble row: %+v", b.Ensemble)
	}
}

func TestWriteEngineBenchRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benchmark is slow; skipped under -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	// parallelOnly exercises the -bench-parallel fast path: sparse
	// butterfly sweep only, no ensemble row.
	written, err := WriteEngineBench(path, 1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b EngineBench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("BENCH_engine.json is not valid JSON: %v", err)
	}
	if b.Scale != 1 || len(b.Rows) == 0 || len(b.Rows) != len(written.Rows) {
		t.Errorf("round-tripped document: %+v", b)
	}
	if b.Ensemble != nil {
		t.Error("parallel-only document recorded an ensemble row")
	}
	for _, r := range b.Rows {
		if r.Topology != "butterfly(10)-sparse" {
			t.Errorf("parallel-only document recorded %s", r.Topology)
		}
	}
}

func TestCompareEngineBench(t *testing.T) {
	base := &EngineBench{Scale: 1, Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, Gomaxprocs: 4, NsPerStep: 1000},
		{Topology: "a", Workers: 4, Gomaxprocs: 4, NsPerStep: 500},
	}}
	cur := &EngineBench{Scale: 1, Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, Gomaxprocs: 4, NsPerStep: 1050},
		{Topology: "a", Workers: 4, Gomaxprocs: 4, NsPerStep: 520},
		// Rows with no baseline counterpart are ignored.
		{Topology: "unmatched", Workers: 1, Gomaxprocs: 4, NsPerStep: 9999},
	}}
	if warnings, err := CompareEngineBench(base, cur, 0.10); err != nil || len(warnings) != 0 {
		t.Errorf("within-tolerance document tripped the gate: %v (warnings %v)", err, warnings)
	}
	cur.Rows[0].NsPerStep = 1200
	if _, err := CompareEngineBench(base, cur, 0.10); err == nil {
		t.Error("20% workers=1 regression did not trip the 10% gate")
	}
	cur.Rows[0].NsPerStep = 1050

	// Valid parallel rows gate too when GOMAXPROCS matches.
	cur.Rows[1].NsPerStep = 800
	if _, err := CompareEngineBench(base, cur, 0.10); err == nil {
		t.Error("60% workers=4 regression did not trip the 10% gate")
	}
	// ...but a GOMAXPROCS mismatch downgrades the parallel comparison to
	// a warning (the machines differ, not the code).
	cur.Rows[1].Gomaxprocs = 8
	warnings, err := CompareEngineBench(base, cur, 0.10)
	if err != nil {
		t.Errorf("cross-machine parallel row gated: %v", err)
	}
	if len(warnings) != 1 {
		t.Errorf("cross-machine parallel skip produced %d warnings, want 1: %v", len(warnings), warnings)
	}
	cur.Rows[1].Gomaxprocs = 4
	cur.Rows[1].NsPerStep = 520

	// Stale invalid_parallel baseline rows are pruned with a warning
	// instead of silently gating nothing.
	base.Rows[1].InvalidParallel = true
	warnings, err = CompareEngineBench(base, cur, 0.10)
	if err != nil {
		t.Errorf("stale invalid_parallel baseline row gated: %v", err)
	}
	if len(warnings) != 1 {
		t.Errorf("invalid_parallel pruning produced %d warnings, want 1: %v", len(warnings), warnings)
	}
	base.Rows[1].InvalidParallel = false

	// Different -bench-scale documents measure different topologies and
	// must not be compared (warned, not errored).
	cur.Scale = 2
	warnings, err = CompareEngineBench(base, cur, 0.10)
	if err != nil {
		t.Errorf("cross-scale comparison must be a no-op: %v", err)
	}
	if len(warnings) != 1 {
		t.Errorf("cross-scale comparison produced %d warnings, want 1: %v", len(warnings), warnings)
	}
}

func TestAnnotateParallelEfficiency(t *testing.T) {
	b := &EngineBench{Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, NsPerStep: 1200, SteadyNsPerStep: 1000},
		{Topology: "a", Workers: 4, NsPerStep: 700, SteadyNsPerStep: 500},
		{Topology: "a", Workers: 8, InvalidParallel: true, NsPerStep: 5000},
		{Topology: "lonely", Workers: 2, NsPerStep: 100},
	}}
	annotateParallelEfficiency(b)
	if got := b.Rows[1].SpeedupVs1; got != 2.0 {
		t.Errorf("speedup_vs_1 = %g, want 2.0 (steady 1000 vs 500)", got)
	}
	if got := b.Rows[1].ParallelEfficiency; got != 0.5 {
		t.Errorf("parallel_efficiency = %g, want 0.5", got)
	}
	if b.Rows[2].SpeedupVs1 != 0 {
		t.Errorf("invalid_parallel row annotated: %+v", b.Rows[2])
	}
	if b.Rows[3].SpeedupVs1 != 0 {
		t.Errorf("row without a workers=1 counterpart annotated: %+v", b.Rows[3])
	}
}

func TestCheckParallelSpeedup(t *testing.T) {
	b := &EngineBench{GOMAXPROCS: 4, Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, NsPerStep: 1000},
		{Topology: "a", Workers: 4, NsPerStep: 500, SpeedupVs1: 2.0, ParallelEfficiency: 0.5},
	}}
	if err := CheckParallelSpeedup(b, 4, 1.5); err != nil {
		t.Errorf("2.0x speedup failed the 1.5x gate: %v", err)
	}
	if err := CheckParallelSpeedup(b, 4, 2.5); err == nil {
		t.Error("2.0x speedup passed the 2.5x gate")
	}
	if err := CheckParallelSpeedup(b, 2, 1.5); err == nil {
		t.Error("gate passed with no workers=2 row recorded")
	}
	b.Rows[1].InvalidParallel = true
	if err := CheckParallelSpeedup(b, 4, 1.5); err == nil {
		t.Error("gate passed on an invalid_parallel row")
	}
}

func TestCheckStrictAllocs(t *testing.T) {
	b := &EngineBench{Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, SteadyState: true, AllocsPerStep: 0},
		{Topology: "b", Workers: 4, SteadyState: false, AllocsPerStep: 0.25},
	}}
	if err := CheckStrictAllocs(b); err != nil {
		t.Errorf("parallel-row allocs must not trip the gate: %v", err)
	}
	b.Rows[0].AllocsPerStep = 0.01
	if err := CheckStrictAllocs(b); err == nil {
		t.Error("steady-state allocs did not trip the gate")
	}
}
