package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestEngineBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benchmark is slow; skipped under -short")
	}
	b, err := RunEngineBench(1)
	if err != nil {
		t.Fatal(err)
	}
	// Four topology rows, plus the sparse butterfly swept at 2/4/8
	// workers.
	if len(b.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (dense, sparse x {1,2,4,8} workers, mesh, random)", len(b.Rows))
	}
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Errorf("missing environment header: %+v", b)
	}
	if b.NumCPU <= 0 || b.GOMAXPROCS <= 0 {
		t.Errorf("missing CPU header: %+v", b)
	}
	seqRows, parRows := 0, 0
	for _, r := range b.Rows {
		if r.Steps <= 0 || r.WallNS <= 0 || r.NsPerStep <= 0 || r.StepsPerSec <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Topology, r)
		}
		if r.AllocsPerStep < 0 {
			t.Errorf("%s: negative allocs/step %g", r.Topology, r.AllocsPerStep)
		}
		if r.MaxInFlight <= 0 || r.MaxInFlight > r.Packets {
			t.Errorf("%s: max in flight %d outside (0, %d]", r.Topology, r.MaxInFlight, r.Packets)
		}
		if r.Workers < 1 || r.Shards < 1 {
			t.Errorf("%s: bad parallelism %d/%d", r.Topology, r.Workers, r.Shards)
		}
		if r.SteadyState != (r.Workers == 1) {
			t.Errorf("%s: steady-state flag %v at workers=%d", r.Topology, r.SteadyState, r.Workers)
		}
		if r.Gomaxprocs != b.GOMAXPROCS || r.NumCPU != b.NumCPU {
			t.Errorf("%s: row CPU stamp %d/%d differs from header %d/%d",
				r.Topology, r.Gomaxprocs, r.NumCPU, b.GOMAXPROCS, b.NumCPU)
		}
		if r.InvalidParallel != (r.Workers > r.Gomaxprocs) {
			t.Errorf("%s: invalid_parallel=%v at workers=%d, gomaxprocs=%d",
				r.Topology, r.InvalidParallel, r.Workers, r.Gomaxprocs)
		}
		if r.TimingBasis != "steady-run" {
			t.Errorf("%s: timing basis %q", r.Topology, r.TimingBasis)
		}
		if r.RampSteps < 0 || r.RampSteps > r.Steps || r.RampNS < 0 || r.RampNS > r.WallNS {
			t.Errorf("%s: ramp segment %d steps / %d ns outside run %d steps / %d ns",
				r.Topology, r.RampSteps, r.RampNS, r.Steps, r.WallNS)
		}
		if r.SteadyState {
			seqRows++
		} else {
			parRows++
		}
	}
	if seqRows != 4 || parRows != 3 {
		t.Errorf("row split %d sequential / %d parallel, want 4/3", seqRows, parRows)
	}
	// The zero-alloc claim: a warmed, Reset-rewound engine must not
	// allocate on the sequential stepping path.
	if err := CheckStrictAllocs(b); err != nil {
		t.Error(err)
	}
	if b.Ensemble == nil {
		t.Fatal("missing ensemble reuse row")
	}
	if b.Ensemble.FreshTrialsPerSec <= 0 || b.Ensemble.ReusedTrialsPerSec <= 0 ||
		b.Ensemble.ReuseSpeedup <= 0 {
		t.Errorf("bad ensemble row: %+v", b.Ensemble)
	}
}

func TestWriteEngineBenchRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("engine benchmark is slow; skipped under -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := WriteEngineBench(path, 1, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b EngineBench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("BENCH_engine.json is not valid JSON: %v", err)
	}
	if b.Scale != 1 || len(b.Rows) == 0 {
		t.Errorf("round-tripped document: %+v", b)
	}
}

func TestCompareEngineBench(t *testing.T) {
	base := &EngineBench{Scale: 1, Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, NsPerStep: 1000},
		{Topology: "a", Workers: 4, NsPerStep: 500},
	}}
	cur := &EngineBench{Scale: 1, Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, NsPerStep: 1050},
		// Parallel rows never gate (machine-dependent), and rows with no
		// baseline counterpart are ignored.
		{Topology: "a", Workers: 4, NsPerStep: 5000},
		{Topology: "unmatched", Workers: 1, NsPerStep: 9999},
	}}
	if err := CompareEngineBench(base, cur, 0.10); err != nil {
		t.Errorf("within-tolerance document tripped the gate: %v", err)
	}
	cur.Rows[0].NsPerStep = 1200
	if err := CompareEngineBench(base, cur, 0.10); err == nil {
		t.Error("20% workers=1 regression did not trip the 10% gate")
	}
	// Different -bench-scale documents measure different topologies and
	// must not be compared.
	cur.Scale = 2
	if err := CompareEngineBench(base, cur, 0.10); err != nil {
		t.Errorf("cross-scale comparison must be a no-op: %v", err)
	}
}

func TestCheckStrictAllocs(t *testing.T) {
	b := &EngineBench{Rows: []EngineBenchRow{
		{Topology: "a", Workers: 1, SteadyState: true, AllocsPerStep: 0},
		{Topology: "b", Workers: 4, SteadyState: false, AllocsPerStep: 0.25},
	}}
	if err := CheckStrictAllocs(b); err != nil {
		t.Errorf("parallel-row allocs must not trip the gate: %v", err)
	}
	b.Rows[0].AllocsPerStep = 0.01
	if err := CheckStrictAllocs(b); err == nil {
		t.Error("steady-state allocs did not trip the gate")
	}
}
