package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestEngineBenchQuick(t *testing.T) {
	b, err := RunEngineBench(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (dense, sparse, mesh, random)", len(b.Rows))
	}
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Errorf("missing environment header: %+v", b)
	}
	for _, r := range b.Rows {
		if r.Steps <= 0 || r.WallNS <= 0 || r.NsPerStep <= 0 || r.StepsPerSec <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", r.Topology, r)
		}
		if r.AllocsPerStep < 0 {
			t.Errorf("%s: negative allocs/step %g", r.Topology, r.AllocsPerStep)
		}
		if r.MaxInFlight <= 0 || r.MaxInFlight > r.Packets {
			t.Errorf("%s: max in flight %d outside (0, %d]", r.Topology, r.MaxInFlight, r.Packets)
		}
	}
}

func TestWriteEngineBenchRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := WriteEngineBench(path, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b EngineBench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("BENCH_engine.json is not valid JSON: %v", err)
	}
	if b.Scale != 1 || len(b.Rows) == 0 {
		t.Errorf("round-tripped document: %+v", b)
	}
}
