package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/trace"
	"hotpotato/internal/workload"

	"hotpotato/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Leveled-network gallery (Figure 1)",
		Claim: "butterfly, mesh (four corner orientations) and general leveled DAGs are leveled networks; shuffle-exchange-class networks, hypercubes, arrays and fat-trees can be treated as leveled networks",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "Frontier-frame pipeline (Figure 2)",
		Claim: "frames of m consecutive levels are pipelined without overlapping and all shift forward one level per phase; the target level retreats one inner-level per round",
		Run:   runF2,
	})
}

func runF1(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("F1", "Leveled-network gallery (Figure 1)",
		"every generated topology is a valid leveled network"))

	gens := []struct {
		name string
		f    func() (*graph.Leveled, error)
	}{
		{"butterfly(3)", func() (*graph.Leveled, error) { return topo.Butterfly(3) }},
		{"butterfly(6)", func() (*graph.Leveled, error) { return topo.Butterfly(6) }},
		{"mesh(6x6,NW)", func() (*graph.Leveled, error) { return topo.Mesh(6, 6, topo.CornerNW) }},
		{"mesh(6x6,NE)", func() (*graph.Leveled, error) { return topo.Mesh(6, 6, topo.CornerNE) }},
		{"mesh(6x6,SW)", func() (*graph.Leveled, error) { return topo.Mesh(6, 6, topo.CornerSW) }},
		{"mesh(6x6,SE)", func() (*graph.Leveled, error) { return topo.Mesh(6, 6, topo.CornerSE) }},
		{"hypercube(6)", func() (*graph.Leveled, error) { return topo.Hypercube(6) }},
		{"array(4,4,4)", func() (*graph.Leveled, error) { return topo.Array(4, 4, 4) }},
		{"bintree(5)", func() (*graph.Leveled, error) { return topo.BinaryTree(5) }},
		{"fattree(5,8)", func() (*graph.Leveled, error) { return topo.FatTree(5, 8) }},
		{"omega(5)", func() (*graph.Leveled, error) { return topo.Omega(5) }},
		{"butterfly(k=3,r=4)", func() (*graph.Leveled, error) { return topo.ButterflyRadix(3, 4) }},
		{"benes(4)", func() (*graph.Leveled, error) { return topo.Benes(4) }},
		{"linear(32)", func() (*graph.Leveled, error) { return topo.Linear(32) }},
		{"ladder(16)", func() (*graph.Leveled, error) { return topo.Ladder(16) }},
		{"complete(8,4)", func() (*graph.Leveled, error) { return topo.Complete(8, 4) }},
		{"random(L=24)", func() (*graph.Leveled, error) { return topo.Random(rngFor("F1", 0), 24, 2, 6, 0.35) }},
	}

	t := NewTable("", "topology", "nodes", "edges", "depth L", "width", "maxdeg", "leveled?")
	for _, g := range gens {
		net, err := g.f()
		if err != nil {
			return "", fmt.Errorf("F1: %s: %w", g.name, err)
		}
		st := net.ComputeStats()
		ok := "yes"
		if err := net.Validate(); err != nil {
			ok = "NO: " + err.Error()
		}
		t.AddRowf(g.name, st.Nodes, st.Edges, st.Depth,
			fmt.Sprintf("[%d,%d]", st.MinWidth, st.MaxWidth), st.MaxDegree, ok)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: all rows leveled (edges connect consecutive levels only); mesh depth\n")
	b.WriteString("is rows+cols-2 in all four corner orientations, matching Figure 1.\n")
	return b.String(), nil
}

func runF2(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("F2", "Frontier-frame pipeline (Figure 2)",
		"frames shift forward one level per phase without overlapping; packets ride inside their frames"))

	// Static pipeline rendering at three consecutive phases (the moving
	// Figure 2).
	params := core.Params{NumSets: 3, M: 3, W: 9, Q: 0.1}
	sched := core.Schedule{P: params}
	L := 11
	b.WriteString("frame pipeline over a depth-11 network (M=3, 3 frontier-sets):\n\n")
	b.WriteString(trace.PipelineMovie(sched, L, []int{8, 9, 10}))

	// Dynamic: run the real router and show that active packets of each
	// set stay within their frame's level span.
	rng := rngFor("F2", 1)
	g, err := topo.Random(rng, 24, 3, 5, 0.4)
	if err != nil {
		return "", err
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		return "", err
	}
	fp := quickParams(cfg, p.C, p.L(), p.N())
	router := core.NewFrame(fp)
	eng := sim.NewEngine(p, router, 42)
	rsched := router.Schedule()

	type span struct{ lo, hi, frameLo, frameHi, active int }
	var samples []span
	eng.AddObserver(func(t int, e *sim.Engine) {
		if !rsched.IsPhaseEnd(t) {
			return
		}
		ph := rsched.PhaseOf(t)
		lo, hi, n := 1<<30, -1<<30, 0
		for i := range e.Packets {
			pk := &e.Packets[i]
			if !pk.Active || router.Set(pk.ID) != 0 {
				continue
			}
			lvl := e.G.Node(pk.Cur).Level
			if lvl < lo {
				lo = lvl
			}
			if lvl > hi {
				hi = lvl
			}
			n++
		}
		if n > 0 {
			samples = append(samples, span{lo, hi, rsched.FrameBack(0, ph), rsched.Frontier(0, ph), n})
		}
	})
	if _, done := eng.Run(4 * fp.TotalSteps(p.L())); !done {
		return "", fmt.Errorf("F2: frame run did not complete")
	}

	t := NewTable(fmt.Sprintf("\nset-0 packet span vs frame span at each phase end (%s, params %s):", p, fp),
		"phase-end #", "active", "packet levels", "frame levels", "inside?")
	for i, s := range samples {
		inside := "yes"
		if s.lo < s.frameLo || s.hi > s.frameHi {
			inside = "NO"
		}
		t.AddRowf(i, s.active,
			fmt.Sprintf("[%d,%d]", s.lo, s.hi),
			fmt.Sprintf("[%d,%d]", s.frameLo, s.frameHi), inside)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: every row 'inside?' = yes (invariant Ic), i.e. the packets shift\n")
	b.WriteString("with their frame exactly as Figure 2 depicts.\n")
	return b.String(), nil
}
