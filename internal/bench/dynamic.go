package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/topo"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Open-system stability: throughput and latency vs arrival rate",
		Claim: "related work [9] (Broder-Upfal, dynamic deflection routing): a bufferless network sustains a constant arrival rate with bounded latency; beyond the stability threshold admission throttles and latency climbs",
		Run:   runE15,
	})
}

func runE15(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E15", "Open-system stability", "dynamic deflection routing [9]"))

	g, err := topo.Butterfly(5)
	if err != nil {
		return "", err
	}
	lambdas := []float64{0.01, 0.05, 0.1, 0.3}
	steps := 2000
	if cfg.Scale >= 2 {
		lambdas = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8}
		steps = 5000
	}

	t := NewTable(fmt.Sprintf("butterfly(5), greedy hot-potato, %d steps (warmup %d), per-node arrival rate λ:", steps, steps/10),
		"λ", "offered", "admitted", "admit rate", "delivered/step", "lat p50", "lat p99", "avg in-flight", "defl/pkt")
	for _, lambda := range lambdas {
		// The horizon is long enough that a single seed is already an
		// average over thousands of arrivals.
		agg, err := dynamic.Run(g, dynamic.Config{
			Lambda: lambda,
			Steps:  steps,
			Warmup: steps / 10,
			Seed:   5000,
		})
		if err != nil {
			return "", err
		}
		dpp := 0.0
		if agg.Delivered > 0 {
			dpp = float64(agg.Deflections) / float64(agg.Delivered)
		}
		t.AddRowf(fmt.Sprintf("%.3f", lambda), agg.Offered, agg.Admitted,
			fmt.Sprintf("%.3f", agg.AdmissionRate()),
			fmt.Sprintf("%.3f", agg.Throughput()),
			agg.Latency.Median, agg.Latency.P99,
			fmt.Sprintf("%.1f", agg.AvgInFlight), dpp)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: throughput tracks the offered load while λ is below the stability\n")
	b.WriteString("threshold, then flattens as source occupancy throttles admission; latency and\n")
	b.WriteString("deflections-per-packet climb smoothly — the bufferless system degrades by\n")
	b.WriteString("admission control, never by dropping packets.\n")
	return b.String(), nil
}
