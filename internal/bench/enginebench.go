package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// EngineBenchRow is one topology's hot-path measurement.
type EngineBenchRow struct {
	Topology    string  `json:"topology"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Packets     int     `json:"packets"`
	Steps       int     `json:"steps"`
	WallNS      int64   `json:"wall_ns"`
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// AllocsPerStep averages heap allocations over the whole run
	// (construction excluded). The steady state allocates nothing, so
	// the value is the startup transient amortized over the run; the
	// sim package's TestStepSteadyStateAllocs* pin the exact zero.
	AllocsPerStep float64 `json:"allocs_per_step"`
	MaxInFlight   int     `json:"max_in_flight"`
}

// EngineBench is the BENCH_engine.json document: engine hot-path
// throughput across representative topologies and load shapes.
type EngineBench struct {
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	Scale     int              `json:"scale"`
	Rows      []EngineBenchRow `json:"rows"`
}

// staggeredGreedy admits packet i only from step i/rate, keeping a few
// percent of a large workload in flight at once — the sparse regime the
// active-set bookkeeping exists for (a full sweep would pay for every
// node and packet per step regardless of activity).
type staggeredGreedy struct {
	*baselines.Greedy
	rate int
}

func (s *staggeredGreedy) WantInject(t int, p *sim.Packet) bool {
	return t >= int(p.ID)/s.rate
}

// RunEngineBench measures the hot-potato engine's per-step cost on
// dense and sparse butterflies, the hard mesh workload, and a random
// leveled network. Scale 1 is the quick CI shape; scale 2 grows the
// butterflies to the sizes quoted in docs/ALGORITHM.md.
func RunEngineBench(scale int) (*EngineBench, error) {
	if scale < 1 {
		scale = 1
	}
	denseK, sparseK, meshN := 7, 10, 12
	if scale >= 2 {
		denseK, sparseK, meshN = 8, 12, 16
	}

	out := &EngineBench{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     scale,
	}

	type bcase struct {
		name  string
		build func() (*workload.Problem, error)
		route func() sim.Router
	}
	cases := []bcase{
		{
			name: fmt.Sprintf("butterfly(%d)-dense", denseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(denseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-dense", denseK))
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: fmt.Sprintf("butterfly(%d)-sparse", sparseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(sparseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-sparse", sparseK))
			},
			route: func() sim.Router { return &staggeredGreedy{Greedy: baselines.NewGreedy(), rate: 16} },
		},
		{
			name:  fmt.Sprintf("mesh(%d)-hard", meshN),
			build: func() (*workload.Problem, error) { return workload.MeshHard(meshN) },
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: "random(depth=24)",
			build: func() (*workload.Problem, error) {
				g, err := topo.Random(rngFor("bench-engine-random", 0), 24, 4, 8, 0.5)
				if err != nil {
					return nil, err
				}
				return workload.Random(g, rngFor("bench-engine-random", 1), 0.5)
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
	}

	for _, c := range cases {
		p, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		e := sim.NewEngine(p, c.route(), 1)

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		steps, done := e.Run(1 << 22)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if !done {
			return nil, fmt.Errorf("bench: %s did not complete within budget", c.name)
		}

		out.Rows = append(out.Rows, EngineBenchRow{
			Topology:      c.name,
			Nodes:         p.G.NumNodes(),
			Edges:         p.G.NumEdges(),
			Packets:       p.N(),
			Steps:         steps,
			WallNS:        wall.Nanoseconds(),
			NsPerStep:     float64(wall.Nanoseconds()) / float64(steps),
			StepsPerSec:   float64(steps) / wall.Seconds(),
			AllocsPerStep: float64(after.Mallocs-before.Mallocs) / float64(steps),
			MaxInFlight:   e.M.MaxInFlight,
		})
	}
	return out, nil
}

// WriteEngineBench runs the engine benchmark and writes the JSON
// document to path.
func WriteEngineBench(path string, scale int) error {
	b, err := RunEngineBench(scale)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
