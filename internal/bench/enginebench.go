package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/mc"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// EngineBenchRow is one (topology, parallelism) measurement of the
// hot-potato engine's stepping cost.
type EngineBenchRow struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Packets  int    `json:"packets"`
	// Workers and Shards are the engine's parallel-step configuration
	// (1/1 = the plain sequential path). The committed trace is
	// identical across configurations; only wall-clock differs.
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Gomaxprocs and NumCPU stamp the scheduler configuration the row
	// was measured under. A workers>1 row taken with GOMAXPROCS below
	// the worker count cannot show parallel speedup — only coordination
	// overhead — and is marked InvalidParallel so downstream consumers
	// (docs, regression gates) never read it as a scaling result.
	Gomaxprocs      int  `json:"gomaxprocs"`
	NumCPU          int  `json:"num_cpu"`
	InvalidParallel bool `json:"invalid_parallel,omitempty"`
	Steps           int  `json:"steps"`
	// WallNS covers only the measured Run of a warmed, Reset-rewound
	// engine: construction, injection-arena setup, warmup and the
	// pre-measure GC all happen before the clock starts.
	WallNS      int64   `json:"wall_ns"`
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// TimingBasis documents what wall_ns covers ("steady-run": the
	// post-warmup measured run only).
	TimingBasis string `json:"timing_basis"`
	// RampSteps/RampNS time the admission ramp — the prefix of the run
	// during which the workload is still injecting packets. Sparse
	// staggered workloads spend most of their steps there, so the
	// whole-run NsPerStep (kept as the headline, comparable across
	// recordings) mixes ramp and drain; SteadyNsPerStep isolates the
	// post-injection remainder when one exists.
	RampSteps       int     `json:"ramp_steps"`
	RampNS          int64   `json:"ramp_ns"`
	SteadyNsPerStep float64 `json:"steady_ns_per_step,omitempty"`
	// AllocsPerStep averages heap allocations over a full run of a
	// warmed, Reset-rewound engine — the steady state, with the startup
	// transient (scratch growth, pool goroutines) paid by a prior
	// unmeasured run. Sequential rows must record exactly 0 (the
	// CheckStrictAllocs CI gate); parallel rows are reported but not
	// gated, since scheduler activity on loaded CI machines can charge
	// stray runtime allocations to the process.
	AllocsPerStep float64 `json:"allocs_per_step"`
	// SteadyState marks rows subject to the zero-alloc gate.
	SteadyState bool `json:"steady_state"`
	MaxInFlight int  `json:"max_in_flight"`
}

// EnsembleBenchRow compares Monte-Carlo ensemble throughput with
// per-worker engine reuse (core.Runner, the default) against rebuilding
// every engine from scratch (mc.Options.FreshEngines) on the same
// trials.
type EnsembleBenchRow struct {
	Problem            string  `json:"problem"`
	Trials             int     `json:"trials"`
	Workers            int     `json:"workers"`
	FreshWallNS        int64   `json:"fresh_wall_ns"`
	ReusedWallNS       int64   `json:"reused_wall_ns"`
	FreshTrialsPerSec  float64 `json:"fresh_trials_per_sec"`
	ReusedTrialsPerSec float64 `json:"reused_trials_per_sec"`
	ReuseSpeedup       float64 `json:"reuse_speedup"`
}

// EngineBench is the BENCH_engine.json document: engine hot-path
// throughput across representative topologies and load shapes, the
// sharded parallel step at increasing worker counts, and ensemble
// throughput with and without engine reuse. NumCPU and GOMAXPROCS
// record the machine the numbers were taken on — single-core hosts
// cannot show parallel speedup, only the (small) coordination overhead.
type EngineBench struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Scale      int               `json:"scale"`
	Rows       []EngineBenchRow  `json:"rows"`
	Ensemble   *EnsembleBenchRow `json:"ensemble,omitempty"`
}

// staggeredGreedy admits packet i only from step i/rate, keeping a few
// percent of a large workload in flight at once — the sparse regime the
// active-set bookkeeping exists for (a full sweep would pay for every
// node and packet per step regardless of activity).
type staggeredGreedy struct {
	*baselines.Greedy
	rate int
}

func (s *staggeredGreedy) WantInject(t int, p *sim.Packet) bool {
	return t >= int(p.ID)/s.rate
}

// InjectStep overrides the embedded Greedy's step-0 bound with the
// wrapper's exact admission step, so the engine's release queue sweeps
// only the packets at the admission edge instead of the whole workload
// — on the sparse butterfly this removes the O(N)-pending scan that
// dominated the old per-step cost.
func (s *staggeredGreedy) InjectStep(p *sim.Packet) int { return int(p.ID) / s.rate }

// ConcurrentRequests certifies the wrapper like the wrapped Greedy:
// the admission schedule is a pure function of (t, packet ID).
func (s *staggeredGreedy) ConcurrentRequests() bool { return true }

// engineWorkerCounts is the parallel-step sweep recorded for the sparse
// butterfly: sequential, then 2/4/8 workers.
var engineWorkerCounts = []int{1, 2, 4, 8}

// RunEngineBench measures the hot-potato engine's per-step cost on
// dense and sparse butterflies, the hard mesh workload, and a random
// leveled network; sweeps the sparse butterfly over 1/2/4/8 workers;
// and measures ensemble throughput with vs without engine reuse.
// Scale 1 is the quick CI shape; scale 2 grows the butterflies to the
// sizes quoted in docs/ALGORITHM.md.
func RunEngineBench(scale int) (*EngineBench, error) {
	if scale < 1 {
		scale = 1
	}
	denseK, sparseK, meshN := 7, 10, 12
	if scale >= 2 {
		denseK, sparseK, meshN = 8, 12, 16
	}

	out := &EngineBench{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}

	type bcase struct {
		name  string
		build func() (*workload.Problem, error)
		route func() sim.Router
		// workerSweep additionally records the row at each worker
		// count beyond 1, reusing the engine via Reset.
		workerSweep bool
	}
	cases := []bcase{
		{
			name: fmt.Sprintf("butterfly(%d)-dense", denseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(denseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-dense", denseK))
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: fmt.Sprintf("butterfly(%d)-sparse", sparseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(sparseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-sparse", sparseK))
			},
			route:       func() sim.Router { return &staggeredGreedy{Greedy: baselines.NewGreedy(), rate: 16} },
			workerSweep: true,
		},
		{
			name:  fmt.Sprintf("mesh(%d)-hard", meshN),
			build: func() (*workload.Problem, error) { return workload.MeshHard(meshN) },
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: "random(depth=24)",
			build: func() (*workload.Problem, error) {
				g, err := topo.Random(rngFor("bench-engine-random", 0), 24, 4, 8, 0.5)
				if err != nil {
					return nil, err
				}
				return workload.Random(g, rngFor("bench-engine-random", 1), 0.5)
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
	}

	for _, c := range cases {
		p, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		e := sim.NewEngine(p, c.route(), 1)
		workerCounts := []int{1}
		if c.workerSweep {
			workerCounts = engineWorkerCounts
		}
		for _, w := range workerCounts {
			if w > 1 {
				e.SetParallelism(w, 0)
			}
			row, err := measureEngineRun(c.name, p, e)
			if err != nil {
				e.Close()
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
		e.Close()
	}

	ens, err := measureEnsembleReuse(scale)
	if err != nil {
		return nil, err
	}
	out.Ensemble = ens
	return out, nil
}

// measureEngineRun times one full run of the engine at its current
// parallelism. The engine is warmed with an unmeasured run first, then
// rewound with Reset, so the measured run sees only steady-state work —
// no scratch growth, no pool spin-up, no first-touch allocation, and no
// injection-arena setup (the release queue is rebuilt by Reset, outside
// the clock). The measured run itself is split at the last injection:
// the admission ramp is timed separately so sparse workloads with long
// staggered injection tails also report a post-injection steady rate.
func measureEngineRun(name string, p *workload.Problem, e *sim.Engine) (EngineBenchRow, error) {
	workers, shards := e.Parallelism()

	e.Reset(1)
	if _, done := e.Run(1 << 22); !done {
		return EngineBenchRow{}, fmt.Errorf("bench: %s (warmup, workers=%d) did not complete within budget", name, workers)
	}
	e.Reset(1)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	// Ramp segment: step until every packet has been injected (or the
	// run drains first). Stepping here is the same Step loop Run uses,
	// so the trace is unaffected.
	n := p.N()
	rampSteps := 0
	for e.M.Injected < n && !e.Done() && rampSteps < 1<<22 {
		e.Step()
		rampSteps++
	}
	ramp := time.Since(start)
	steps, done := e.Run(1 << 22)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if !done {
		return EngineBenchRow{}, fmt.Errorf("bench: %s (workers=%d) did not complete within budget", name, workers)
	}

	row := EngineBenchRow{
		Topology:        name,
		Nodes:           p.G.NumNodes(),
		Edges:           p.G.NumEdges(),
		Packets:         p.N(),
		Workers:         workers,
		Shards:          shards,
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		InvalidParallel: workers > runtime.GOMAXPROCS(0),
		Steps:           steps,
		WallNS:          wall.Nanoseconds(),
		NsPerStep:       float64(wall.Nanoseconds()) / float64(steps),
		StepsPerSec:     float64(steps) / wall.Seconds(),
		TimingBasis:     "steady-run",
		RampSteps:       rampSteps,
		RampNS:          ramp.Nanoseconds(),
		AllocsPerStep:   float64(after.Mallocs-before.Mallocs) / float64(steps),
		SteadyState:     workers == 1,
		MaxInFlight:     e.M.MaxInFlight,
	}
	if drain := steps - rampSteps; drain > 0 {
		row.SteadyNsPerStep = float64(wall.Nanoseconds()-ramp.Nanoseconds()) / float64(drain)
	}
	return row, nil
}

// measureEnsembleReuse times the same Monte-Carlo ensemble twice: once
// rebuilding every engine (FreshEngines) and once with the default
// per-worker engine reuse.
func measureEnsembleReuse(scale int) (*EnsembleBenchRow, error) {
	const meshN = 8
	p, err := workload.MeshHard(meshN)
	if err != nil {
		return nil, err
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	trials := 64 * scale

	run := func(fresh bool) (time.Duration, error) {
		start := time.Now()
		_, err := mc.Run(p, params, mc.Options{Trials: trials, FreshEngines: fresh})
		return time.Since(start), err
	}
	// Warm both paths once (JIT-free, but page faults and lazily built
	// topology caches are real), then measure.
	if _, err := run(true); err != nil {
		return nil, err
	}
	freshWall, err := run(true)
	if err != nil {
		return nil, err
	}
	reusedWall, err := run(false)
	if err != nil {
		return nil, err
	}

	return &EnsembleBenchRow{
		Problem:            fmt.Sprintf("mesh(%d)-hard", meshN),
		Trials:             trials,
		Workers:            runtime.GOMAXPROCS(0),
		FreshWallNS:        freshWall.Nanoseconds(),
		ReusedWallNS:       reusedWall.Nanoseconds(),
		FreshTrialsPerSec:  float64(trials) / freshWall.Seconds(),
		ReusedTrialsPerSec: float64(trials) / reusedWall.Seconds(),
		ReuseSpeedup:       freshWall.Seconds() / reusedWall.Seconds(),
	}, nil
}

// CheckStrictAllocs verifies the zero-allocation claim on every
// steady-state row — the CI gate: a regression that makes the warmed
// engine allocate on the stepping path fails the build.
func CheckStrictAllocs(b *EngineBench) error {
	for _, r := range b.Rows {
		if r.SteadyState && r.AllocsPerStep > 0 {
			return fmt.Errorf("bench: steady-state row %s (workers=%d) allocated %.4f allocs/step; want 0",
				r.Topology, r.Workers, r.AllocsPerStep)
		}
	}
	return nil
}

// ReadEngineBench loads a previously recorded BENCH_engine.json.
func ReadEngineBench(path string) (*EngineBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b EngineBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// CompareEngineBench is the benchmark regression gate: every workers=1
// row that appears (by topology name) in both the committed baseline
// and the current document must not regress ns_per_step by more than
// tolerance (fractional; 0.10 = 10%). Parallel rows are excluded — on
// heterogeneous CI machines their wall-clock depends on core count, and
// rows stamped InvalidParallel carry no scaling signal at all. Rows
// only present on one side are ignored (topologies scale with
// -bench-scale), as are baselines from a different Scale.
func CompareEngineBench(baseline, current *EngineBench, tolerance float64) error {
	if baseline.Scale != current.Scale {
		return nil
	}
	base := make(map[string]EngineBenchRow)
	for _, r := range baseline.Rows {
		if r.Workers == 1 {
			base[r.Topology] = r
		}
	}
	for _, r := range current.Rows {
		if r.Workers != 1 {
			continue
		}
		b, ok := base[r.Topology]
		if !ok || b.NsPerStep <= 0 {
			continue
		}
		if r.NsPerStep > b.NsPerStep*(1+tolerance) {
			return fmt.Errorf("bench: regression on %s (workers=1): %.2f ns/step vs baseline %.2f (+%.1f%%, tolerance %.0f%%)",
				r.Topology, r.NsPerStep, b.NsPerStep,
				100*(r.NsPerStep/b.NsPerStep-1), 100*tolerance)
		}
	}
	return nil
}

// WriteEngineBench runs the engine benchmark and writes the JSON
// document to path. With strict set, it fails if any steady-state row
// recorded heap allocations.
func WriteEngineBench(path string, scale int, strict bool) error {
	b, err := RunEngineBench(scale)
	if err != nil {
		return err
	}
	if strict {
		if err := CheckStrictAllocs(b); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
