package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/mc"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// EngineBenchRow is one (topology, parallelism) measurement of the
// hot-potato engine's stepping cost.
type EngineBenchRow struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Packets  int    `json:"packets"`
	// Workers and Shards are the engine's parallel-step configuration
	// (1/1 = the plain sequential path). The committed trace is
	// identical across configurations; only wall-clock differs.
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Gomaxprocs and NumCPU stamp the scheduler configuration the row
	// was measured under, CPUModel the recording host's processor when
	// the platform exposes it. A workers>1 row taken with GOMAXPROCS
	// below the worker count cannot show parallel speedup — only
	// coordination overhead — and is marked InvalidParallel so
	// downstream consumers (docs, regression gates) never read it as a
	// scaling result; fresh recordings no longer emit such rows at all
	// (the sweep skips worker counts above GOMAXPROCS, noted in the
	// header's SkippedWorkers), so the flag survives only for reading
	// artifacts recorded before that.
	Gomaxprocs      int    `json:"gomaxprocs"`
	NumCPU          int    `json:"num_cpu"`
	CPUModel        string `json:"cpu_model,omitempty"`
	InvalidParallel bool   `json:"invalid_parallel,omitempty"`
	Steps           int    `json:"steps"`
	// WallNS covers only the measured Run of a warmed, Reset-rewound
	// engine: construction, injection-arena setup, warmup and the
	// pre-measure GC all happen before the clock starts. The recorded
	// run is the fastest of benchReps back-to-back measured runs (short
	// rows drain in tens of microseconds, where single-shot timing is
	// weather); AllocsPerStep is the max across the reps, so best-of
	// never hides an allocating run.
	WallNS      int64   `json:"wall_ns"`
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// TimingBasis documents what wall_ns covers ("steady-run": the
	// post-warmup measured run only).
	TimingBasis string `json:"timing_basis"`
	// RampSteps/RampNS time the admission ramp — the prefix of the run
	// during which the workload is still injecting packets. Sparse
	// staggered workloads spend most of their steps there, so the
	// whole-run NsPerStep (kept as the headline, comparable across
	// recordings) mixes ramp and drain; SteadyNsPerStep isolates the
	// post-injection remainder when one exists.
	RampSteps       int     `json:"ramp_steps"`
	RampNS          int64   `json:"ramp_ns"`
	SteadyNsPerStep float64 `json:"steady_ns_per_step,omitempty"`
	// AllocsPerStep averages heap allocations over a full run of a
	// warmed, Reset-rewound engine — the steady state, with the startup
	// transient (scratch growth, pool goroutines) paid by a prior
	// unmeasured run. Sequential rows must record exactly 0 (the
	// CheckStrictAllocs CI gate); parallel rows are reported but not
	// gated, since scheduler activity on loaded CI machines can charge
	// stray runtime allocations to the process.
	AllocsPerStep float64 `json:"allocs_per_step"`
	// SteadyState marks rows subject to the zero-alloc gate.
	SteadyState bool `json:"steady_state"`
	MaxInFlight int  `json:"max_in_flight"`
	// SpeedupVs1 and ParallelEfficiency relate a workers>1 row to the
	// workers=1 row of the same topology in the same document:
	// speedup = steady ns/step(1w) / steady ns/step(Nw) (whole-run
	// ns/step when a row has no post-injection segment) and
	// efficiency = speedup / workers. Populated only on valid parallel
	// rows — the committed multi-core artifact is where the scaling
	// claim lives, and CheckParallelSpeedup gates on it in CI.
	SpeedupVs1         float64 `json:"speedup_vs_1,omitempty"`
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

// EnsembleBenchRow compares Monte-Carlo ensemble throughput with
// per-worker engine reuse (core.Runner, the default) against rebuilding
// every engine from scratch (mc.Options.FreshEngines) on the same
// trials.
type EnsembleBenchRow struct {
	Problem            string  `json:"problem"`
	Trials             int     `json:"trials"`
	Workers            int     `json:"workers"`
	FreshWallNS        int64   `json:"fresh_wall_ns"`
	ReusedWallNS       int64   `json:"reused_wall_ns"`
	FreshTrialsPerSec  float64 `json:"fresh_trials_per_sec"`
	ReusedTrialsPerSec float64 `json:"reused_trials_per_sec"`
	ReuseSpeedup       float64 `json:"reuse_speedup"`
}

// EngineBench is the BENCH_engine.json document: engine hot-path
// throughput across representative topologies and load shapes, the
// sharded parallel step at increasing worker counts, and ensemble
// throughput with and without engine reuse. NumCPU and GOMAXPROCS
// record the machine the numbers were taken on — single-core hosts
// cannot show parallel speedup, only the (small) coordination overhead.
type EngineBench struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel names the recording host's processor when the platform
	// exposes it (/proc/cpuinfo on linux); empty otherwise.
	CPUModel string `json:"cpu_model,omitempty"`
	Scale    int    `json:"scale"`
	// SkippedWorkers lists worker counts the sweep did not record
	// because GOMAXPROCS could not schedule them — such rows would be
	// invalid_parallel noise, so the document states the omission
	// instead of committing unusable rows.
	SkippedWorkers []int             `json:"skipped_workers,omitempty"`
	Rows           []EngineBenchRow  `json:"rows"`
	Ensemble       *EnsembleBenchRow `json:"ensemble,omitempty"`
}

// cpuModel best-effort-identifies the host processor. Linux exposes it
// in /proc/cpuinfo; elsewhere (or in stripped containers) the empty
// string is recorded and consumers fall back to num_cpu/gomaxprocs.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// staggeredGreedy admits packet i only from step i/rate, keeping a few
// percent of a large workload in flight at once — the sparse regime the
// active-set bookkeeping exists for (a full sweep would pay for every
// node and packet per step regardless of activity).
type staggeredGreedy struct {
	*baselines.Greedy
	rate int
}

func (s *staggeredGreedy) WantInject(t int, p *sim.Packet) bool {
	return t >= int(p.ID)/s.rate
}

// InjectStep overrides the embedded Greedy's step-0 bound with the
// wrapper's exact admission step, so the engine's release queue sweeps
// only the packets at the admission edge instead of the whole workload
// — on the sparse butterfly this removes the O(N)-pending scan that
// dominated the old per-step cost.
func (s *staggeredGreedy) InjectStep(p *sim.Packet) int { return int(p.ID) / s.rate }

// ConcurrentRequests certifies the wrapper like the wrapped Greedy:
// the admission schedule is a pure function of (t, packet ID).
func (s *staggeredGreedy) ConcurrentRequests() bool { return true }

// engineWorkerCounts is the parallel-step sweep recorded for the sparse
// butterfly: sequential, then 2/4/8 workers.
var engineWorkerCounts = []int{1, 2, 4, 8}

// RunEngineBench measures the hot-potato engine's per-step cost on
// dense and sparse butterflies, the hard mesh workload, and a random
// leveled network; sweeps the sparse butterfly over the worker counts
// GOMAXPROCS can schedule; and measures ensemble throughput with vs
// without engine reuse. Scale 1 is the quick CI shape; scale 2 grows
// the butterflies to the sizes quoted in docs/ALGORITHM.md.
func RunEngineBench(scale int) (*EngineBench, error) {
	return runEngineBench(scale, false)
}

// RunEngineBenchParallel records only the sparse-butterfly workers
// sweep — the fast path for the multi-core CI job, whose sole output
// of interest is the speedup/parallel_efficiency evidence. No dense,
// mesh, random or ensemble rows are measured.
func RunEngineBenchParallel(scale int) (*EngineBench, error) {
	return runEngineBench(scale, true)
}

func runEngineBench(scale int, parallelOnly bool) (*EngineBench, error) {
	if scale < 1 {
		scale = 1
	}
	denseK, sparseK, meshN := 7, 10, 12
	if scale >= 2 {
		denseK, sparseK, meshN = 8, 12, 16
	}

	out := &EngineBench{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Scale:      scale,
	}

	type bcase struct {
		name  string
		build func() (*workload.Problem, error)
		route func() sim.Router
		// workerSweep additionally records the row at each worker
		// count beyond 1, reusing the engine via Reset.
		workerSweep bool
	}
	cases := []bcase{
		{
			name: fmt.Sprintf("butterfly(%d)-dense", denseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(denseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-dense", denseK))
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: fmt.Sprintf("butterfly(%d)-sparse", sparseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(sparseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-engine-sparse", sparseK))
			},
			route:       func() sim.Router { return &staggeredGreedy{Greedy: baselines.NewGreedy(), rate: 16} },
			workerSweep: true,
		},
		{
			name:  fmt.Sprintf("mesh(%d)-hard", meshN),
			build: func() (*workload.Problem, error) { return workload.MeshHard(meshN) },
			route: func() sim.Router { return baselines.NewGreedy() },
		},
		{
			name: "random(depth=24)",
			build: func() (*workload.Problem, error) {
				g, err := topo.Random(rngFor("bench-engine-random", 0), 24, 4, 8, 0.5)
				if err != nil {
					return nil, err
				}
				return workload.Random(g, rngFor("bench-engine-random", 1), 0.5)
			},
			route: func() sim.Router { return baselines.NewGreedy() },
		},
	}

	for _, c := range cases {
		if parallelOnly && !c.workerSweep {
			continue
		}
		p, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		e := sim.NewEngine(p, c.route(), 1)
		workerCounts := []int{1}
		if c.workerSweep {
			workerCounts = workerCounts[:0]
			for _, w := range engineWorkerCounts {
				if w > 1 && w > out.GOMAXPROCS {
					out.SkippedWorkers = append(out.SkippedWorkers, w)
					continue
				}
				workerCounts = append(workerCounts, w)
			}
		}
		for _, w := range workerCounts {
			if w > 1 {
				e.SetParallelism(w, 0)
			}
			row, err := measureEngineRun(c.name, p, e)
			if err != nil {
				e.Close()
				return nil, err
			}
			row.CPUModel = out.CPUModel
			out.Rows = append(out.Rows, row)
		}
		e.Close()
	}
	annotateParallelEfficiency(out)

	if parallelOnly {
		return out, nil
	}
	ens, err := measureEnsembleReuse(scale)
	if err != nil {
		return nil, err
	}
	out.Ensemble = ens
	return out, nil
}

// benchStepCost is the per-step figure used for speedup comparisons:
// the post-injection steady rate when the run has a drain segment, the
// whole-run rate otherwise.
func benchStepCost(r EngineBenchRow) float64 {
	if r.SteadyNsPerStep > 0 {
		return r.SteadyNsPerStep
	}
	return r.NsPerStep
}

// annotateParallelEfficiency fills SpeedupVs1 and ParallelEfficiency on
// every valid workers>1 row from the workers=1 row of the same
// topology in the same document.
func annotateParallelEfficiency(b *EngineBench) {
	seq := make(map[string]float64)
	for _, r := range b.Rows {
		if r.Workers == 1 {
			seq[r.Topology] = benchStepCost(r)
		}
	}
	for i := range b.Rows {
		r := &b.Rows[i]
		if r.Workers <= 1 || r.InvalidParallel {
			continue
		}
		base, ok := seq[r.Topology]
		if !ok || base <= 0 {
			continue
		}
		if cost := benchStepCost(*r); cost > 0 {
			r.SpeedupVs1 = base / cost
			r.ParallelEfficiency = r.SpeedupVs1 / float64(r.Workers)
		}
	}
}

// benchReps is how many measured runs each row takes; the fastest is
// recorded. Short rows (the dense butterfly drains in ~14 steps) last
// tens of microseconds, where a single shot is dominated by scheduler
// and cache noise — 2x swings between recordings were routine and the
// >10% CI regression gate fired on weather. Best-of damps exactly that
// one-sided noise (nothing makes a run spuriously fast), while the
// allocation count is taken as the max across reps so best-of timing
// can never hide an allocating rep from the strict-allocs gate.
const benchReps = 3

// measureEngineRun times full runs of the engine at its current
// parallelism and keeps the fastest of benchReps. The engine is warmed
// with an unmeasured run first, then rewound with Reset, so measured
// runs see only steady-state work — no scratch growth, no pool
// spin-up, no first-touch allocation, and no injection-arena setup
// (the release queue is rebuilt by Reset, outside the clock). Each
// measured run is split at the last injection: the admission ramp is
// timed separately so sparse workloads with long staggered injection
// tails also report a post-injection steady rate.
func measureEngineRun(name string, p *workload.Problem, e *sim.Engine) (EngineBenchRow, error) {
	workers, shards := e.Parallelism()

	e.Reset(1)
	if _, done := e.Run(1 << 22); !done {
		return EngineBenchRow{}, fmt.Errorf("bench: %s (warmup, workers=%d) did not complete within budget", name, workers)
	}

	var row EngineBenchRow
	maxAllocs := 0.0
	for rep := 0; rep < benchReps; rep++ {
		e.Reset(1)
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		// Ramp segment: step until every packet has been injected (or
		// the run drains first). Stepping here is the same Step loop Run
		// uses, so the trace is unaffected.
		n := p.N()
		rampSteps := 0
		for e.M.Injected < n && !e.Done() && rampSteps < 1<<22 {
			e.Step()
			rampSteps++
		}
		ramp := time.Since(start)
		steps, done := e.Run(1 << 22)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if !done {
			return EngineBenchRow{}, fmt.Errorf("bench: %s (workers=%d) did not complete within budget", name, workers)
		}
		if allocs := float64(after.Mallocs-before.Mallocs) / float64(steps); allocs > maxAllocs {
			maxAllocs = allocs
		}
		if rep > 0 && float64(wall.Nanoseconds())/float64(steps) >= row.NsPerStep {
			continue
		}
		row = EngineBenchRow{
			Topology:        name,
			Nodes:           p.G.NumNodes(),
			Edges:           p.G.NumEdges(),
			Packets:         p.N(),
			Workers:         workers,
			Shards:          shards,
			Gomaxprocs:      runtime.GOMAXPROCS(0),
			NumCPU:          runtime.NumCPU(),
			InvalidParallel: workers > runtime.GOMAXPROCS(0),
			Steps:           steps,
			WallNS:          wall.Nanoseconds(),
			NsPerStep:       float64(wall.Nanoseconds()) / float64(steps),
			StepsPerSec:     float64(steps) / wall.Seconds(),
			TimingBasis:     "steady-run",
			RampSteps:       rampSteps,
			RampNS:          ramp.Nanoseconds(),
			SteadyState:     workers == 1,
			MaxInFlight:     e.M.MaxInFlight,
		}
		if drain := steps - rampSteps; drain > 0 {
			row.SteadyNsPerStep = float64(wall.Nanoseconds()-ramp.Nanoseconds()) / float64(drain)
		}
	}
	row.AllocsPerStep = maxAllocs
	return row, nil
}

// measureEnsembleReuse times the same Monte-Carlo ensemble twice: once
// rebuilding every engine (FreshEngines) and once with the default
// per-worker engine reuse.
func measureEnsembleReuse(scale int) (*EnsembleBenchRow, error) {
	const meshN = 8
	p, err := workload.MeshHard(meshN)
	if err != nil {
		return nil, err
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	trials := 64 * scale

	run := func(fresh bool) (time.Duration, error) {
		start := time.Now()
		_, err := mc.Run(p, params, mc.Options{Trials: trials, FreshEngines: fresh})
		return time.Since(start), err
	}
	// Warm both paths once (JIT-free, but page faults and lazily built
	// topology caches are real), then measure.
	if _, err := run(true); err != nil {
		return nil, err
	}
	freshWall, err := run(true)
	if err != nil {
		return nil, err
	}
	reusedWall, err := run(false)
	if err != nil {
		return nil, err
	}

	return &EnsembleBenchRow{
		Problem:            fmt.Sprintf("mesh(%d)-hard", meshN),
		Trials:             trials,
		Workers:            runtime.GOMAXPROCS(0),
		FreshWallNS:        freshWall.Nanoseconds(),
		ReusedWallNS:       reusedWall.Nanoseconds(),
		FreshTrialsPerSec:  float64(trials) / freshWall.Seconds(),
		ReusedTrialsPerSec: float64(trials) / reusedWall.Seconds(),
		ReuseSpeedup:       freshWall.Seconds() / reusedWall.Seconds(),
	}, nil
}

// CheckStrictAllocs verifies the zero-allocation claim on every
// steady-state row — the CI gate: a regression that makes the warmed
// engine allocate on the stepping path fails the build.
func CheckStrictAllocs(b *EngineBench) error {
	for _, r := range b.Rows {
		if r.SteadyState && r.AllocsPerStep > 0 {
			return fmt.Errorf("bench: steady-state row %s (workers=%d) allocated %.4f allocs/step; want 0",
				r.Topology, r.Workers, r.AllocsPerStep)
		}
	}
	return nil
}

// ReadEngineBench loads a previously recorded BENCH_engine.json.
func ReadEngineBench(path string) (*EngineBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b EngineBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// CompareEngineBench is the benchmark regression gate: every row that
// appears (by topology and worker count) in both the committed baseline
// and the current document must not regress ns_per_step by more than
// tolerance (fractional; 0.10 = 10%). Rows stamped InvalidParallel on
// either side carry no scaling signal — a 1-CPU baseline used to
// silently gate nothing on workers>1 rows — so they are pruned from the
// comparison with a returned warning instead of being compared. Valid
// parallel rows gate only when the two documents agree on GOMAXPROCS
// (otherwise their wall-clock difference is the machine, not the code;
// a warning notes the skip). Rows only present on one side are ignored
// (topologies scale with -bench-scale), as are baselines from a
// different Scale.
func CompareEngineBench(baseline, current *EngineBench, tolerance float64) ([]string, error) {
	var warnings []string
	if baseline.Scale != current.Scale {
		warnings = append(warnings,
			fmt.Sprintf("baseline scale %d != current scale %d; nothing compared", baseline.Scale, current.Scale))
		return warnings, nil
	}
	key := func(r EngineBenchRow) string {
		return fmt.Sprintf("%s/workers=%d", r.Topology, r.Workers)
	}
	base := make(map[string]EngineBenchRow)
	for _, r := range baseline.Rows {
		if r.InvalidParallel {
			warnings = append(warnings,
				fmt.Sprintf("baseline row %s is stale invalid_parallel (gomaxprocs=%d); pruned from comparison", key(r), r.Gomaxprocs))
			continue
		}
		base[key(r)] = r
	}
	for _, r := range current.Rows {
		if r.InvalidParallel {
			warnings = append(warnings,
				fmt.Sprintf("current row %s is invalid_parallel (gomaxprocs=%d); skipped", key(r), r.Gomaxprocs))
			continue
		}
		b, ok := base[key(r)]
		if !ok || b.NsPerStep <= 0 {
			continue
		}
		if r.Workers > 1 && b.Gomaxprocs != r.Gomaxprocs {
			warnings = append(warnings,
				fmt.Sprintf("row %s: baseline gomaxprocs=%d vs current %d; parallel wall-clock not comparable, skipped", key(r), b.Gomaxprocs, r.Gomaxprocs))
			continue
		}
		if r.NsPerStep > b.NsPerStep*(1+tolerance) {
			return warnings, fmt.Errorf("bench: regression on %s: %.2f ns/step vs baseline %.2f (+%.1f%%, tolerance %.0f%%)",
				key(r), r.NsPerStep, b.NsPerStep,
				100*(r.NsPerStep/b.NsPerStep-1), 100*tolerance)
		}
	}
	return warnings, nil
}

// CheckParallelSpeedup is the multi-core CI gate: the document must
// contain a valid workers=workers row whose SpeedupVs1 meets
// minSpeedup. Errors when no valid pair exists (e.g. the sweep was
// recorded on a machine that could not schedule that many workers) so a
// misconfigured runner cannot silently pass the gate.
func CheckParallelSpeedup(b *EngineBench, workers int, minSpeedup float64) error {
	found := false
	for _, r := range b.Rows {
		if r.Workers != workers || r.InvalidParallel {
			continue
		}
		found = true
		if r.SpeedupVs1 <= 0 {
			return fmt.Errorf("bench: row %s (workers=%d) has no speedup_vs_1 (missing workers=1 counterpart?)",
				r.Topology, r.Workers)
		}
		if r.SpeedupVs1 < minSpeedup {
			return fmt.Errorf("bench: %s at workers=%d reached only %.2fx vs workers=1 (efficiency %.2f); gate requires ≥%.2fx",
				r.Topology, r.Workers, r.SpeedupVs1, r.ParallelEfficiency, minSpeedup)
		}
	}
	if !found {
		return fmt.Errorf("bench: no valid workers=%d row recorded (gomaxprocs=%d, skipped_workers=%v); cannot certify parallel speedup",
			workers, b.GOMAXPROCS, b.SkippedWorkers)
	}
	return nil
}

// WriteEngineBench runs the engine benchmark and writes the JSON
// document to path. With strict set, it fails if any steady-state row
// recorded heap allocations. With parallelOnly set, only the sparse
// butterfly workers sweep is recorded (the multi-core CI fast path).
func WriteEngineBench(path string, scale int, strict, parallelOnly bool) (*EngineBench, error) {
	b, err := runEngineBench(scale, parallelOnly)
	if err != nil {
		return nil, err
	}
	if strict {
		if err := CheckStrictAllocs(b); err != nil {
			return nil, err
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
