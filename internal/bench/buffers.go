package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "The buffer-size spectrum: unbounded -> constant -> zero",
		Claim: "Section 1.3 / [16]: leveled networks route in O(C+L+log N) with constant-size buffers; the paper closes the gap at zero buffers with a polylog penalty — the spectrum between the regimes is smooth",
		Run:   runE14,
	})
}

func runE14(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E14", "Buffer-size spectrum", "constant-buffer routing [16] vs zero buffers"))

	g, err := topo.Butterfly(6)
	if err != nil {
		return "", err
	}
	p, err := workload.HotSpot(g, rngFor("E14", 0), 48, 1)
	if err != nil {
		return "", err
	}

	caps := []int{0, 16, 4, 2, 1}
	t := NewTable(fmt.Sprintf("%s — store-and-forward FIFO with bounded edge buffers:", p),
		"buffer cap", "steps(mean)", "steps/(C+D)", "blocked moves", "max queue")
	for _, cap := range caps {
		var steps, blocked, maxq float64
		for s := 0; s < cfg.Seeds; s++ {
			e := sim.NewSFEngineBuffered(p, baselines.NewFIFO(), int64(4000+s), cap)
			st, done := e.Run(greedyBudget(p))
			if !done {
				return "", fmt.Errorf("E14: cap=%d did not complete", cap)
			}
			steps += float64(st)
			blocked += float64(e.M.Blocked)
			maxq += float64(e.M.MaxQueueLen)
		}
		n := float64(cfg.Seeds)
		label := fmt.Sprint(cap)
		if cap == 0 {
			label = "unbounded"
		}
		t.AddRowf(label, steps/n, (steps/n)/float64(p.C+p.D), blocked/n, maxq/n)
	}
	b.WriteString(t.String())

	// The zero-buffer end of the spectrum: greedy hot-potato and the
	// frame router.
	t2 := NewTable("\nzero buffers (hot-potato):",
		"algorithm", "steps(mean)", "steps/(C+D)")
	gr, err := hotPotatoSteps(cfg, p, func() sim.Router { return baselines.NewGreedy() }, greedyBudget(p))
	if err != nil {
		return "", err
	}
	t2.AddRowf("greedy-hp", gr.Mean, gr.Mean/float64(p.C+p.D))
	params := quickParams(cfg, p.C, p.L(), p.N())
	fr, err := frameSteps(cfg, p, params)
	if err != nil {
		return "", err
	}
	t2.AddRowf("frame (paper)", fr.Mean, fr.Mean/float64(p.C+p.D))
	b.WriteString(t2.String())

	b.WriteString("\nexpected: shrinking buffers raises blocked moves but barely moves the\n")
	b.WriteString("makespan — on leveled networks the top-level-first drain lets even cap-1\n")
	b.WriteString("buffers sustain full bottleneck throughput, matching [16]'s constant-buffer\n")
	b.WriteString("O(C+L+log N); backpressure cannot deadlock (forward-only waits on a DAG).\n")
	b.WriteString("Zero-buffer greedy lands within a small factor of cap-1; the frame router\n")
	b.WriteString("pays its schedule polylog for the guarantee without any buffers.\n")
	return b.String(), nil
}
