package bench

import (
	"fmt"
	"strings"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "P1",
		Title: "Simulator capacity: packet-steps per second vs network size",
		Claim: "(systems table, no paper counterpart) the synchronous engine scales to full-throughput butterflies of thousands of nodes at millions of packet-steps per second on one core",
		Run:   runP1,
	})
}

func runP1(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("P1", "Simulator capacity", "engine throughput (no paper counterpart)"))

	dims := []int{6, 8}
	if cfg.Scale >= 2 {
		dims = []int{6, 8, 10}
	}
	t := NewTable("full-throughput butterfly workloads, greedy router, single run each:",
		"network", "nodes", "edges", "packets", "steps", "wall time", "Mpkt-steps/s", "ns/packet-step")
	for _, k := range dims {
		g, err := topo.Butterfly(k)
		if err != nil {
			return "", err
		}
		p, err := workload.FullThroughput(g, rngFor("P1", k))
		if err != nil {
			return "", err
		}
		e := sim.NewEngine(p, baselines.NewGreedy(), 1)
		// Packet-steps: each active packet costs one unit per step.
		pktSteps := 0
		e.AddObserver(func(tt int, en *sim.Engine) {
			pktSteps += en.M.Injected - en.M.Absorbed
		})
		start := time.Now()
		steps, done := e.Run(1 << 22)
		wall := time.Since(start)
		if !done {
			return "", fmt.Errorf("P1: butterfly(%d) did not complete", k)
		}
		// Account for packets absorbed mid-run (the observer undercounts
		// slightly at boundaries); it's a capacity estimate, not a
		// ledger.
		if pktSteps == 0 {
			pktSteps = steps * p.N()
		}
		rate := float64(pktSteps) / wall.Seconds() / 1e6
		nsPer := float64(wall.Nanoseconds()) / float64(pktSteps)
		t.AddRowf(fmt.Sprintf("butterfly(%d)", k), g.NumNodes(), g.NumEdges(), p.N(),
			steps, wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", rate), fmt.Sprintf("%.0f", nsPer))
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: millions of packet-steps per second, roughly flat in network size\n")
	b.WriteString("(per-step cost is linear in active packets plus touched nodes) — enough to\n")
	b.WriteString("run every experiment in this suite in seconds on a laptop core.\n")
	return b.String(), nil
}
