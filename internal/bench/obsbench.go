package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"hotpotato/internal/baselines"
	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// ObsBenchRow is one measurement of the observability layer's per-step
// cost: the same warmed engine and run, with progressively more
// instrumentation attached.
type ObsBenchRow struct {
	Topology string `json:"topology"`
	// Mode is "disabled" (no probe or sink — the baseline the 0
	// allocs/step gate protects), "probe" (an obs.Collector feeding a
	// summing probe), or "probe+lifecycle" (additionally a 4096-event
	// lifecycle ring receiving every engine event).
	Mode          string  `json:"mode"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	// OverheadPct is this row's ns/step relative to the disabled row
	// of the same topology (0 for the disabled row itself).
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsBench is the BENCH_obs.json document: the observability layer's
// measured overhead, the source of docs/OBSERVABILITY.md's table.
type ObsBench struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	Rows       []ObsBenchRow `json:"rows"`
}

// summingProbe consumes the series without allocating, so the rows
// measure the probe path itself rather than a consumer's copies.
type summingProbe struct {
	steps, rounds, phases int
	deflections           int
}

func (p *summingProbe) OnStep(s *obs.StepStats) {
	p.steps++
	for _, d := range s.Deflections {
		p.deflections += d
	}
}
func (p *summingProbe) OnRound(*obs.StepStats) { p.rounds++ }
func (p *summingProbe) OnPhase(*obs.StepStats) { p.phases++ }

// RunObsBench measures the instrumentation overhead on the dense
// butterfly (the steady-state zero-alloc shape) and the hard mesh.
// Each mode is warmed with an unmeasured attached run first, so the
// collector's reusable backings exist before measurement — steady
// state for the probe path, exactly as for the engine itself.
func RunObsBench(scale int) (*ObsBench, error) {
	if scale < 1 {
		scale = 1
	}
	denseK, meshN := 7, 12
	if scale >= 2 {
		denseK, meshN = 8, 16
	}

	out := &ObsBench{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}

	cases := []struct {
		name  string
		build func() (*workload.Problem, error)
	}{
		{
			name: fmt.Sprintf("butterfly(%d)-dense", denseK),
			build: func() (*workload.Problem, error) {
				g, err := topo.Butterfly(denseK)
				if err != nil {
					return nil, err
				}
				return workload.FullThroughput(g, rngFor("bench-obs-dense", denseK))
			},
		},
		{
			name:  fmt.Sprintf("mesh(%d)-hard", meshN),
			build: func() (*workload.Problem, error) { return workload.MeshHard(meshN) },
		},
	}

	for _, c := range cases {
		p, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		e := sim.NewEngine(p, baselines.NewGreedy(), 1)
		coll := obs.NewCollector(nil, &summingProbe{})
		ring := obs.NewLifecycle(4096)
		modes := []struct {
			name   string
			attach func(*sim.Engine)
		}{
			{"disabled", func(*sim.Engine) {}},
			{"probe", func(e *sim.Engine) { coll.Attach(e) }},
			{"probe+lifecycle", func(e *sim.Engine) {
				coll.Attach(e)
				ring.Attach(e)
			}},
		}
		var base float64
		for _, m := range modes {
			row, err := measureObsRun(c.name, e, m.attach)
			if err != nil {
				return nil, err
			}
			row.Mode = m.name
			if m.name == "disabled" {
				base = row.NsPerStep
			} else if base > 0 {
				row.OverheadPct = 100 * (row.NsPerStep - base) / base
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// measureObsRun mirrors measureEngineRun with an attachment hook:
// warm attached (grows the collector's backings), then repeat
// Reset + re-attach + run until enough steps accumulate for a stable
// per-step figure — the problems here complete in tens of steps, far
// too short for a single-run measurement. Only the runs are timed;
// the resets happen identically in every mode anyway.
func measureObsRun(name string, e *sim.Engine, attach func(*sim.Engine)) (ObsBenchRow, error) {
	const minSteps = 1 << 14
	for warm := 0; warm < minSteps/2; {
		e.Reset(1)
		attach(e)
		steps, done := e.Run(1 << 22)
		if !done {
			return ObsBenchRow{}, fmt.Errorf("bench: %s (obs warmup) did not complete within budget", name)
		}
		warm += steps
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	totalSteps := 0
	var wall time.Duration
	for totalSteps < minSteps {
		e.Reset(1)
		attach(e)
		start := time.Now()
		steps, done := e.Run(1 << 22)
		wall += time.Since(start)
		if !done {
			return ObsBenchRow{}, fmt.Errorf("bench: %s (obs) did not complete within budget", name)
		}
		totalSteps += steps
	}
	runtime.ReadMemStats(&after)
	return ObsBenchRow{
		Topology:      name,
		Steps:         totalSteps,
		NsPerStep:     float64(wall.Nanoseconds()) / float64(totalSteps),
		AllocsPerStep: float64(after.Mallocs-before.Mallocs) / float64(totalSteps),
	}, nil
}

// WriteObsBench runs the observability benchmark and writes the JSON
// document to path.
func WriteObsBench(path string, scale int) error {
	b, err := RunObsBench(scale)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
