package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Arbitrary DAGs via levelization (Discussion)",
		Claim: "Section 5: \"it is interesting to extend our work for arbitrary network topologies\" — levelizing a DAG (longest-path layering + relay subdivision) makes the algorithm and its invariants apply verbatim",
		Run:   runE13,
	})
}

func runE13(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E13", "Arbitrary DAGs via levelization", "Discussion (Section 5)"))

	sizes := []int{24, 48}
	if cfg.Scale >= 2 {
		sizes = []int{24, 48, 96}
	}
	t := NewTable("random DAGs, levelized, frame router with default practical parameters:",
		"DAG nodes", "DAG edges", "leveled nodes", "relays", "L", "N", "C", "steps", "done", "invariants clean")
	for i, n := range sizes {
		rng := rngFor("E13", i)
		edges := topo.RandomDAG(rng, n, 0.12)
		g, _, err := topo.Levelize(fmt.Sprintf("rdag(%d)", n), n, edges)
		if err != nil {
			return "", err
		}
		p, err := workload.Random(g, rng, 0.4)
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		res := core.Run(p, params, core.RunOptions{Seed: int64(i), Check: true})
		if !res.Done {
			return "", fmt.Errorf("E13: n=%d did not complete", n)
		}
		t.AddRowf(n, len(edges), g.NumNodes(), g.NumNodes()-n, p.L(), p.N(), p.C,
			res.Steps, res.Done, res.Invariants.Clean())
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: the algorithm runs unmodified on the levelized networks and the\n")
	b.WriteString("invariants hold — levelization is a drop-in bridge from arbitrary DAG\n")
	b.WriteString("topologies to the paper's model (relay nodes only stretch D, never C).\n")
	return b.String(), nil
}
