package bench

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

// quickParams returns frame parameters tight enough to finish fast in
// benchmark configs while keeping the full frame structure; at Scale>=2
// the defaults (closer to the paper's shapes) are used instead.
func quickParams(cfg Config, C, L, N int) core.Params {
	if cfg.Scale >= 2 {
		return core.DefaultPractical(C, L, N)
	}
	return core.ParamsPractical(C, L, N, core.PracticalConfig{
		SetCongestion: 4,
		FrameSlack:    3,
		RoundFactor:   3,
	})
}

// frameSteps runs the frame router over several seeds and returns the
// step-count summary. It fails the run (returns an error) if any seed
// does not complete within 4x the schedule bound.
func frameSteps(cfg Config, p *workload.Problem, params core.Params) (stats.Summary, error) {
	xs := make([]float64, 0, cfg.Seeds)
	for s := 0; s < cfg.Seeds; s++ {
		res := core.Run(p, params, core.RunOptions{Seed: int64(1000 + s)})
		if !res.Done {
			return stats.Summary{}, fmt.Errorf("frame did not complete on %s (seed %d, %d steps)", p.Name, s, res.Steps)
		}
		xs = append(xs, float64(res.Steps))
	}
	return stats.Summarize(xs), nil
}

// hotPotatoSteps runs a bufferless baseline over several seeds.
func hotPotatoSteps(cfg Config, p *workload.Problem, mk func() sim.Router, budget int) (stats.Summary, error) {
	xs := make([]float64, 0, cfg.Seeds)
	for s := 0; s < cfg.Seeds; s++ {
		e := sim.NewEngine(p, mk(), int64(2000+s))
		steps, done := e.Run(budget)
		if !done {
			return stats.Summary{}, fmt.Errorf("%s did not complete on %s within %d steps", mk().Name(), p.Name, budget)
		}
		xs = append(xs, float64(steps))
	}
	return stats.Summarize(xs), nil
}

// sfSteps runs a store-and-forward scheduler over several seeds.
func sfSteps(cfg Config, p *workload.Problem, mk func() sim.Scheduler, budget int) (stats.Summary, error) {
	xs := make([]float64, 0, cfg.Seeds)
	for s := 0; s < cfg.Seeds; s++ {
		e := sim.NewSFEngine(p, mk(), int64(3000+s))
		steps, done := e.Run(budget)
		if !done {
			return stats.Summary{}, fmt.Errorf("%s did not complete on %s within %d steps", mk().Name(), p.Name, budget)
		}
		xs = append(xs, float64(steps))
	}
	return stats.Summarize(xs), nil
}

// greedyBudget is a generous completion budget for baselines on a
// problem: far above any observed greedy completion time.
func greedyBudget(p *workload.Problem) int {
	b := 200 * (p.C + p.D + p.L()) * (1 + p.N()/16)
	if b < 100000 {
		b = 100000
	}
	return b
}

// rngFor derives a deterministic RNG for an experiment cell.
func rngFor(id string, cell int) *rand.Rand {
	seed := int64(len(id)*7919 + cell*104729 + 17)
	for _, c := range id {
		seed = seed*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

// frameBaseline returns the canonical comparison set: the frame router
// factory plus each baseline, with display names.
type algoResult struct {
	Name  string
	Steps stats.Summary
}

// compareAll runs the frame algorithm and every baseline on the
// problem.
func compareAll(cfg Config, p *workload.Problem) ([]algoResult, error) {
	var out []algoResult
	params := quickParams(cfg, p.C, p.L(), p.N())
	fr, err := frameSteps(cfg, p, params)
	if err != nil {
		return nil, err
	}
	out = append(out, algoResult{"frame (paper)", fr})
	budget := greedyBudget(p)
	for _, mk := range []struct {
		name string
		f    func() sim.Router
	}{
		{"greedy-hp", func() sim.Router { return baselines.NewGreedy() }},
		{"greedy-ftg", func() sim.Router { return baselines.NewFarthestToGo() }},
		{"greedy-oldest", func() sim.Router { return baselines.NewOldestFirst() }},
		{"rand-greedy-hp", func() sim.Router { return baselines.NewRandGreedy(0.05) }},
	} {
		s, err := hotPotatoSteps(cfg, p, mk.f, budget)
		if err != nil {
			return nil, err
		}
		out = append(out, algoResult{mk.name, s})
	}
	for _, mk := range []struct {
		name string
		f    func() sim.Scheduler
	}{
		{"sf-fifo", func() sim.Scheduler { return baselines.NewFIFO() }},
		{"sf-randdelay", func() sim.Scheduler { return baselines.NewRandomDelay(p.C, 1) }},
		{"sf-farthest", func() sim.Scheduler { return baselines.NewFarthestFirst() }},
	} {
		s, err := sfSteps(cfg, p, mk.f, budget)
		if err != nil {
			return nil, err
		}
		out = append(out, algoResult{mk.name, s})
	}
	return out, nil
}
