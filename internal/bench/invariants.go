package bench

import (
	"fmt"
	"math"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Frontier-set congestion bound (Lemma 2.2)",
		Claim: "splitting packets uniformly over aC frontier-sets gives per-set congestion <= ln(LN) with probability >= p0",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Deflection audit (Lemma 2.1)",
		Claim: "with injection in isolation, all deflections are backward and safe, and current paths stay valid",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Invariants Ic/Id/Ie/If vs parameter scale",
		Claim: "Section 4: the per-phase invariants hold w.h.p. under the paper's constants; violation counts vanish as the scaled-down constants grow toward them",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Wait-state convergence within a phase (Lemmas 4.19-4.21)",
		Claim: "each round, at least a 1/ln(LN) fraction of the non-waiting packets enters the wait state, so |B_j| decays geometrically and the high inner-levels drain",
		Run:   runE7,
	})
}

// invariantProblem builds the standard invariant-test instance.
func invariantProblem(id string, cell int, depth int) (*workload.Problem, error) {
	rng := rngFor(id, cell)
	g, err := topo.Random(rng, depth, 3, 5, 0.4)
	if err != nil {
		return nil, err
	}
	return workload.Random(g, rng, 0.6)
}

func runE4(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E4", "Frontier-set congestion bound", "Lemma 2.2"))

	trials := 20 * cfg.Seeds
	if cfg.Scale >= 2 {
		trials = 100 * cfg.Seeds
	}
	p, err := invariantProblem("E4", 0, 30)
	if err != nil {
		return "", err
	}
	lnBound := math.Log(float64(p.L()) * float64(p.N()))

	// Two set counts: the paper's aC = 2e³·C/ln(LN) (what Lemma 2.2 is
	// about — the bound must then hold essentially always) and the
	// practical C/ln(LN) (per-set congestion is *targeted* at ln(LN),
	// so the maximum over sets hovers at and above the bound).
	paperSets := core.ParamsFromPaper(p.C, p.L(), p.N()).NumSets
	practSets := core.DefaultPractical(p.C, p.L(), p.N()).NumSets

	measure := func(numSets int) (stats.Summary, int, []float64) {
		// Only the set assignment matters here, so run zero steps with
		// the checker attached (it snapshots congestion at Attach).
		params := core.Params{NumSets: numSets, M: 6, W: 12, Q: 0.1}
		var maxima []float64
		within := 0
		for s := 0; s < trials; s++ {
			res := core.Run(p, params, core.RunOptions{Seed: int64(s), MaxSteps: 1, Check: true})
			m := stats.MaxInt(res.Invariants.InitialSetCongestion)
			maxima = append(maxima, float64(m))
			if float64(m) <= lnBound {
				within++
			}
		}
		return stats.Summarize(maxima), within, maxima
	}
	paperSum, paperWithin, paperMax := measure(paperSets)
	practSum, practWithin, _ := measure(practSets)

	t := NewTable(fmt.Sprintf("%s, %d random partitions each (bound ln(LN) = %.2f):", p, trials, lnBound),
		"set count", "sets", "max_i C_i mean", "p99", "max", "within bound")
	t.AddRowf("paper aC = 2e³C/ln(LN)", paperSets, paperSum.Mean, paperSum.P99, paperSum.Max,
		fmt.Sprintf("%d/%d", paperWithin, trials))
	t.AddRowf("practical C/ln(LN)", practSets, practSum.Mean, practSum.P99, practSum.Max,
		fmt.Sprintf("%d/%d", practWithin, trials))
	b.WriteString(t.String())
	b.WriteString("\ndistribution of max_i C_i under the paper's set count:\n")
	b.WriteString(stats.NewHistogram(paperMax, 8).String())
	b.WriteString("expected: under the paper's set count every partition satisfies\n")
	b.WriteString("max_i C_i <= ln(LN) (Lemma 2.2: probability >= 1 - 1/(2LN)); the practical\n")
	b.WriteString("count deliberately targets per-set congestion ~ ln(LN), so its maximum\n")
	b.WriteString("hovers at the bound — the price of a 2e³-fold smaller schedule.\n")
	return b.String(), nil
}

func runE5(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E5", "Deflection audit", "Lemma 2.1"))

	t := NewTable("frame router, invariant checker attached:",
		"workload", "deflections", "arrival-rev", "safe-backwd", "unsafe-backwd", "forward", "invalid paths")
	gens := []struct {
		name string
		f    func() (*workload.Problem, error)
	}{
		{"random-deep", func() (*workload.Problem, error) { return invariantProblem("E5", 0, 30) }},
		{"mesh-hard(6)", func() (*workload.Problem, error) { return workload.MeshHard(6) }},
		{"bfly-hotspot", func() (*workload.Problem, error) {
			g, err := topo.Butterfly(5)
			if err != nil {
				return nil, err
			}
			return workload.HotSpot(g, rngFor("E5", 1), 24, 2)
		}},
	}
	for _, gen := range gens {
		p, err := gen.f()
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		res := core.Run(p, params, core.RunOptions{Seed: 5, Check: true})
		if !res.Done {
			return "", fmt.Errorf("E5: %s did not complete", gen.name)
		}
		d := res.Engine.Deflections
		t.AddRowf(gen.name, res.Engine.TotalDeflections(),
			d[sim.DeflectArrivalReverse], d[sim.DeflectSafeBackward],
			d[sim.DeflectUnsafeBackward], d[sim.DeflectForward],
			res.Invariants.IbPathInvalid)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: zero unsafe-backward, zero forward, zero invalid paths — every\n")
	b.WriteString("deflection either reverses the loser's own arrival or recycles an edge another\n")
	b.WriteString("packet traversed forward the step before (Lemma 2.1).\n")
	return b.String(), nil
}

func runE6(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E6", "Invariants vs parameter scale", "Section 4 invariants Ia-If"))

	p, err := invariantProblem("E6", 0, 40)
	if err != nil {
		return "", err
	}
	type knob struct {
		name string
		cfg  core.PracticalConfig
	}
	knobs := []knob{
		{"tight (SC=3, slack=2, RF=3)", core.PracticalConfig{SetCongestion: 3, FrameSlack: 2, RoundFactor: 3}},
		{"small (SC=4, slack=3, RF=3)", core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}},
		{"default (SC=ln, slack=6, RF=4)", core.PracticalConfig{}},
	}
	if cfg.Scale >= 2 {
		knobs = append(knobs, knob{"roomy (SC=ln, slack=10, RF=6)", core.PracticalConfig{FrameSlack: 10, RoundFactor: 6}})
	}

	t := NewTable(fmt.Sprintf("%s:", p),
		"parameters", "M", "W", "sets", "steps", "Ib invalid", "Ic escapes", "Id meets", "Ie grew", "If tail")
	for _, k := range knobs {
		params := core.ParamsPractical(p.C, p.L(), p.N(), k.cfg)
		res := core.Run(p, params, core.RunOptions{Seed: 7, Check: true})
		if !res.Done {
			return "", fmt.Errorf("E6: %s did not complete", k.name)
		}
		iv := res.Invariants
		t.AddRowf(k.name, params.M, params.W, params.NumSets, res.Steps,
			iv.IbPathInvalid, iv.IcFrameEscapes, iv.IdForeignMeetings,
			iv.IeCongestionExceeded, iv.IfTailOccupied)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: Ib and Ie hold at every scale (they are consequences of safe backward\n")
	b.WriteString("deflections, Lemmas 2.1/4.10); Ic, Id and If violations shrink to zero as the\n")
	b.WriteString("constants grow toward the paper's proof-grade values.\n")
	return b.String(), nil
}

func runE7(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E7", "Wait-state convergence", "Lemmas 4.19-4.21"))

	p, err := invariantProblem("E7", 0, 30)
	if err != nil {
		return "", err
	}
	params := quickParams(cfg, p.C, p.L(), p.N())
	router := core.NewFrame(params)
	eng := sim.NewEngine(p, router, 11)
	sched := router.Schedule()

	// For every round index j, average over phases the fraction of
	// active packets not in wait at the round's end (a proxy for
	// |B_{j+1}| / active).
	sumFrac := make([]float64, params.M)
	cnt := make([]int, params.M)
	eng.AddObserver(func(t int, e *sim.Engine) {
		if !sched.IsRoundEnd(t) {
			return
		}
		j := sched.RoundOf(t)
		active, nonWait := 0, 0
		for i := range e.Packets {
			if !e.Packets[i].Active {
				continue
			}
			active++
			if !router.IsWaiting(e.Packets[i].ID) {
				nonWait++
			}
		}
		if active > 0 {
			sumFrac[j] += float64(nonWait) / float64(active)
			cnt[j]++
		}
	})
	if _, done := eng.Run(4 * params.TotalSteps(p.L())); !done {
		return "", fmt.Errorf("E7: run did not complete")
	}

	t := NewTable(fmt.Sprintf("%s, params %s — non-waiting fraction at each round end (mean over phases):", p, params),
		"round j", "phases sampled", "non-wait fraction")
	prev := -1.0
	decays := 0
	for j := 0; j < params.M; j++ {
		if cnt[j] == 0 {
			continue
		}
		f := sumFrac[j] / float64(cnt[j])
		if prev >= 0 && f <= prev {
			decays++
		}
		prev = f
		t.AddRowf(j, cnt[j], fmt.Sprintf("%.3f", f))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nmonotone-decay transitions: %d\n", decays)
	b.WriteString("expected: the non-waiting fraction shrinks across rounds within a phase —\n")
	b.WriteString("each round converts a Θ(1/ln LN) share of stragglers into waiters (Lemma 4.20),\n")
	b.WriteString("which is what empties the high inner-levels by phase end (invariant If).\n")
	return b.String(), nil
}
