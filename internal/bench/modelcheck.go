package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/exhaustive"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Model checking the deflection rules on tiny instances",
		Claim: "Lemma 2.1's mechanism is choice-independent: for every resolution of every conflict and every deflection-slot assignment, all packets are delivered — verified exhaustively, not sampled",
		Run:   runE17,
	})
}

func runE17(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E17", "Exhaustive model checking", "Lemma 2.1, all branches"))

	type instance struct {
		name   string
		mk     func() (*workload.Problem, error)
		budget int
	}
	instances := []instance{
		{"2-packet merge", mkMerge, 12},
		{"3-packet funnel", func() (*workload.Problem, error) { return mkFunnel(3) }, 20},
		{"2-packet ladder overlap", mkLadderPair, 16},
		{"3-packet single-file line", func() (*workload.Problem, error) {
			g, err := topo.Linear(6)
			if err != nil {
				return nil, err
			}
			return workload.SingleFile(g, 3)
		}, 24},
	}
	if cfg.Scale >= 2 {
		instances = append(instances,
			instance{"4-packet funnel", func() (*workload.Problem, error) { return mkFunnel(4) }, 28},
			instance{"4-packet single-file line", func() (*workload.Problem, error) {
				g, err := topo.Linear(7)
				if err != nil {
					return nil, err
				}
				return workload.SingleFile(g, 4)
			}, 32},
		)
	}

	t := NewTable("greedy hot-potato dynamics, all nondeterministic branches explored:",
		"instance", "N", "C", "budget", "states", "branches", "deepest", "all delivered")
	for _, inst := range instances {
		p, err := inst.mk()
		if err != nil {
			return "", fmt.Errorf("E17: %s: %w", inst.name, err)
		}
		res, err := exhaustive.Verify(p, inst.budget)
		if err != nil {
			return "", fmt.Errorf("E17: %s: %w", inst.name, err)
		}
		verdict := fmt.Sprint(res.Delivered)
		if !res.Delivered {
			verdict = "NO: " + res.Counterexample
		}
		t.AddRowf(inst.name, p.N(), p.C, inst.budget, res.States, res.Branches, res.MaxSteps, verdict)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: every instance delivers on every branch — Lemma 2.1's safety does\n")
	b.WriteString("not depend on how ties are broken; the seeded engine's executions are single\n")
	b.WriteString("paths through these verified trees.\n")
	return b.String(), nil
}

func mkMerge() (*workload.Problem, error) {
	b := graph.NewBuilder("merge")
	a := b.AddNode(0, "a")
	bb := b.AddNode(0, "b")
	m := b.AddNode(1, "m")
	x := b.AddNode(2, "x")
	eam := b.AddEdge(a, m)
	ebm := b.AddEdge(bb, m)
	emx := b.AddEdge(m, x)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	set := paths.NewPathSet(g, []graph.Path{{eam, emx}, {ebm, emx}})
	return &workload.Problem{Name: "merge", G: g, Set: set, C: 2, D: 2}, nil
}

func mkFunnel(n int) (*workload.Problem, error) {
	b := graph.NewBuilder("funnel")
	var l0, l1 []graph.NodeID
	for i := 0; i < n; i++ {
		l0 = append(l0, b.AddNode(0, fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < 2; i++ {
		l1 = append(l1, b.AddNode(1, fmt.Sprintf("m%d", i)))
	}
	sink := b.AddNode(2, "t")
	for _, u := range l0 {
		for _, m := range l1 {
			b.AddEdge(u, m)
		}
	}
	for _, m := range l1 {
		b.AddEdge(m, sink)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ps := make([]graph.Path, n)
	for k := 0; k < n; k++ {
		mid := l1[k%2]
		ps[k] = graph.Path{g.EdgeBetween(l0[k], mid), g.EdgeBetween(mid, sink)}
	}
	set := paths.NewPathSet(g, ps)
	return &workload.Problem{Name: "funnel", G: g, Set: set, C: set.Congestion(), D: 2}, nil
}

func mkLadderPair() (*workload.Problem, error) {
	g, err := topo.Ladder(3)
	if err != nil {
		return nil, err
	}
	var p0 graph.Path
	for l := 0; l < 3; l++ {
		p0 = append(p0, g.EdgeBetween(g.Level(l)[0], g.Level(l + 1)[0]))
	}
	p1 := append(graph.Path{g.EdgeBetween(g.Level(0)[1], g.Level(1)[0])}, p0[1:]...)
	set := paths.NewPathSet(g, []graph.Path{p0, p1})
	return &workload.Problem{Name: "ladderpair", G: g, Set: set, C: 2, D: 3}, nil
}
