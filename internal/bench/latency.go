package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Latency decomposition: schedule wait vs in-network transit",
		Claim: "the Õ(·) factor lives in the schedule, not the network: a packet's life is dominated by waiting for its frame's injection phase, while its transit (injection to absorption) is near its path length",
		Run:   runE18,
	})
}

func runE18(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E18", "Latency decomposition", "where the polylog factor lives"))

	gens := []struct {
		name string
		f    func() (*workload.Problem, error)
	}{
		{"random-deep", func() (*workload.Problem, error) { return invariantProblem("E18", 0, 32) }},
		{"bfly-hotspot", func() (*workload.Problem, error) {
			g, err := topo.Butterfly(6)
			if err != nil {
				return nil, err
			}
			return workload.HotSpot(g, rngFor("E18", 1), 32, 2)
		}},
		{"mesh-hard(8)", func() (*workload.Problem, error) { return workload.MeshHard(8) }},
	}

	t := NewTable("frame router; wait = injection step, transit = absorb - inject:",
		"workload", "steps", "wait mean", "wait max", "transit mean", "transit max", "D", "transit/D")
	for _, gen := range gens {
		p, err := gen.f()
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		res := core.Run(p, params, core.RunOptions{Seed: 18})
		if !res.Done {
			return "", fmt.Errorf("E18: %s did not complete", gen.name)
		}
		t.AddRowf(gen.name, res.Steps,
			res.InjectWait.Mean, res.InjectWait.Max,
			res.Transit.Mean, res.Transit.Max,
			p.D, res.Transit.Mean/float64(p.D))
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: wait dwarfs transit everywhere — most of a packet's life is spent\n")
	b.WriteString("outside the network waiting for its frame. Transit itself splits by depth:\n")
	b.WriteString("when D <= M the destination is already inside the frame at injection and\n")
	b.WriteString("transit is a small multiple of the path length (bfly row, transit/D < 1);\n")
	b.WriteString("when D > M the packet parks in wait state while its frame crawls one level\n")
	b.WriteString("per phase, so transit grows to ~(D-M)·M·W (deep rows). Either way the time is\n")
	b.WriteString("schedule, not congestion suffered in flight — deflections stay rare (E5).\n")
	return b.String(), nil
}
