package bench

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("title", "a", "long-header", "c")
	tb.AddRow("1", "2")
	tb.AddRowf(3, 4.5, "x")
	out := tb.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "long-header") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "4.50") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRejectsWideRows(t *testing.T) {
	tb := NewTable("", "only")
	defer func() {
		if recover() == nil {
			t.Error("no panic for too-wide row")
		}
	}()
	tb.AddRow("a", "b")
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Seeds != 1 || c.Scale != 1 {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{Seeds: 3, Scale: 2}.Normalize()
	if c2.Seeds != 3 || c2.Scale != 2 {
		t.Errorf("normalize clobbered = %+v", c2)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "P1"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	// Ordering: figures first, then E1..E10 numerically.
	if reg[0].ID != "F1" || reg[1].ID != "F2" || reg[2].ID != "E1" {
		t.Errorf("ordering wrong: %s %s %s", reg[0].ID, reg[1].ID, reg[2].ID)
	}
	if reg[len(reg)-1].ID != "P1" {
		t.Errorf("last = %s, want P1", reg[len(reg)-1].ID)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found something")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	cfg := Config{Seeds: 1, Scale: 1}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if !strings.Contains(out, e.ID+":") {
				t.Errorf("%s output lacks its header:\n%.200s", e.ID, out)
			}
			if !strings.Contains(out, "expected:") {
				t.Errorf("%s output lacks the paper-expectation note", e.ID)
			}
			if len(out) < 200 {
				t.Errorf("%s output suspiciously short (%d bytes)", e.ID, len(out))
			}
		})
	}
}

func TestE5ReportsAllSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	out, err := runE5(Config{Seeds: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The unsafe columns must be all-zero: check no row has a nonzero
	// value in the "unsafe" columns by scanning the rendered table...
	// simpler and robust: the deflection audit asserts its own claim in
	// core tests; here just confirm the table rendered rows.
	if strings.Count(out, "\n") < 8 {
		t.Errorf("E5 output too short:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", `needs,"quoting"`)
	tb.AddRow("2", "plain")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `1,"needs,""quoting"""` {
		t.Errorf("quoted row = %q", lines[1])
	}
	if lines[2] != "2,plain" {
		t.Errorf("plain row = %q", lines[2])
	}
}
