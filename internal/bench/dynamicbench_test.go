package bench

import (
	"testing"

	"hotpotato/internal/dynamic"
	"hotpotato/internal/topo"
)

// BenchmarkDynamicStep measures the open-system engine's per-step cost
// under the sustained service workload (a SubmitRandom batch every few
// steps, the scripted shape RunDynamicBench replays): the go-bench
// counterpart of the butterfly(5)-service row in BENCH_dynamic.json.
// On a warmed engine it must report 0 allocs/op.
func BenchmarkDynamicStep(b *testing.B) {
	g, err := topo.Butterfly(5)
	if err != nil {
		b.Fatal(err)
	}
	e, err := dynamic.NewEngine(g, dynamic.Config{
		Seed:  42,
		Retry: dynamic.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	step := func() {
		if err := e.Step(); err != nil {
			b.Fatal(err)
		}
	}
	// Warm rep: one full batch/advance/drain script grows every backing
	// (slot columns, path buffers, queue arenas, the tenant ledger).
	for batch := 0; batch < 24; batch++ {
		if err := e.SubmitRandom("bench", 16); err != nil {
			b.Fatal(err)
		}
		for a := 0; a < 5; a++ {
			step()
		}
	}
	for e.HasWork() {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%5 == 0 {
			if err := e.SubmitRandom("bench", 16); err != nil {
				b.Fatal(err)
			}
		}
		step()
	}
}
