package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Transient link faults: delivery under edge outages",
		Claim: "(robustness extension, no paper counterpart) deflection routing reroutes around transient outages with graceful slowdown; the frame router self-heals at the cost of invariant violations",
		Run:   runE16,
	})
}

func runE16(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E16", "Transient link faults", "robustness extension"))

	rng := rngFor("E16", 0)
	g, err := topo.Random(rng, 20, 3, 5, 0.4)
	if err != nil {
		return "", err
	}
	p, err := workload.Random(g, rng, 0.4)
	if err != nil {
		return "", err
	}

	rates := []float64{0, 0.02, 0.05}
	if cfg.Scale >= 2 {
		rates = []float64{0, 0.01, 0.02, 0.05, 0.1}
	}

	t := NewTable(fmt.Sprintf("%s, HashFaults with 10-step outage windows:", p),
		"edge downtime", "greedy steps", "blocked", "stalls", "frame steps", "frame Ic", "frame done")
	for _, rate := range rates {
		// Greedy under faults.
		ge := sim.NewEngine(p, baselines.NewGreedy(), 16)
		if rate > 0 {
			ge.Faults = sim.HashFaults(77, rate, 10)
		}
		gSteps, gDone := ge.Run(1 << 21)
		if !gDone {
			return "", fmt.Errorf("E16: greedy did not complete at rate %.2f", rate)
		}

		// Frame router under the same faults.
		params := quickParams(cfg, p.C, p.L(), p.N())
		router := core.NewFrame(params)
		fe := sim.NewEngine(p, router, 16)
		if rate > 0 {
			fe.Faults = sim.HashFaults(77, rate, 10)
		}
		checker := core.NewInvariantChecker(router)
		checker.Attach(fe)
		fSteps, fDone := fe.Run(32 * params.TotalSteps(p.L()))

		t.AddRowf(fmt.Sprintf("%.0f%%", rate*100), gSteps,
			ge.M.FaultBlocked, ge.M.FaultStalls,
			fSteps, checker.Report.IcFrameEscapes, fDone)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: greedy reroutes around outages with a mild step increase (deflection\n")
	b.WriteString("routing is inherently adaptive); the frame router still delivers by retracing,\n")
	b.WriteString("but faults knock packets out of their frames — the schedule's invariants assume\n")
	b.WriteString("healthy links, so Ic grows with the fault rate. Stalls appear only when an\n")
	b.WriteString("outage strands more packets at a node than it has healthy ports.\n")
	return b.String(), nil
}
