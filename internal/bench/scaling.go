package bench

import (
	"fmt"
	"strings"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Routing time linear in C at fixed L",
		Claim: "Theorem 4.26: all packets absorbed in O((C+L)·polylog) steps; at fixed L time grows linearly in C",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Routing time linear in L at fixed C",
		Claim: "Theorem 4.26: at fixed C time grows linearly in the depth L",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Mesh application: C,D = Θ(n) paths on the n x n mesh",
		Claim: "Section 5: with the mesh path sets of congestion and dilation Θ(n), the algorithm routes in time near-optimal up to polylog factors (Θ(n·polylog))",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Many-to-one fan-in stress",
		Claim: "Section 1.1: the algorithm handles many-to-one problems (each node sources at most one packet, destinations arbitrary); time stays O((C+L)·polylog) as fan-in grows",
		Run:   runE10,
	})
}

func runE1(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E1", "Routing time linear in C at fixed L", "Theorem 4.26"))

	k := 6
	counts := []int{8, 16, 32}
	if cfg.Scale >= 2 {
		counts = []int{8, 16, 32, 64, 128}
	}
	g, err := topo.Butterfly(k)
	if err != nil {
		return "", err
	}

	t := NewTable(fmt.Sprintf("butterfly(%d), hot-spot workloads, frame router:", k),
		"N", "C", "L", "C+L", "steps(mean)", "steps/(C+L)", "sched bound")
	var xs, ys []float64
	for i, n := range counts {
		p, err := workload.HotSpot(g, rngFor("E1", i), n, 2)
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		sum, err := frameSteps(cfg, p, params)
		if err != nil {
			return "", err
		}
		cl := float64(p.C + p.L())
		xs = append(xs, cl)
		ys = append(ys, sum.Mean)
		t.AddRowf(p.N(), p.C, p.L(), p.C+p.L(), sum.Mean, sum.Mean/cl, params.TotalSteps(p.L()))
	}
	b.WriteString(t.String())
	fit := stats.FitLinear(xs, ys)
	fmt.Fprintf(&b, "\nlinear fit of steps against C+L: %s\n", fit)
	b.WriteString("expected: high R² (time linear in C at fixed L); the slope is the measured\n")
	b.WriteString("polylog factor, far below the paper's proof-grade ln⁹(LN) but of the same form.\n")
	return b.String(), nil
}

func runE2(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E2", "Routing time linear in L at fixed C", "Theorem 4.26"))

	depths := []int{16, 32, 64}
	if cfg.Scale >= 2 {
		depths = []int{16, 32, 64, 128, 256}
	}
	const k = 6 // fixed congestion: k single-file packets share the last edge

	t := NewTable(fmt.Sprintf("linear array, single-file workload (C=%d fixed), frame router:", k),
		"L", "C", "C+L", "steps(mean)", "steps/(C+L)", "sched bound")
	var xs, ys []float64
	for _, n := range depths {
		g, err := topo.Linear(n + 1)
		if err != nil {
			return "", err
		}
		p, err := workload.SingleFile(g, k)
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		sum, err := frameSteps(cfg, p, params)
		if err != nil {
			return "", err
		}
		cl := float64(p.C + p.L())
		xs = append(xs, float64(p.L()))
		ys = append(ys, sum.Mean)
		t.AddRowf(p.L(), p.C, p.C+p.L(), sum.Mean, sum.Mean/cl, params.TotalSteps(p.L()))
	}
	b.WriteString(t.String())
	fit := stats.FitLinear(xs, ys)
	fmt.Fprintf(&b, "\nlinear fit of steps against L: %s\n", fit)
	b.WriteString("expected: high R² — at fixed C the routing time is linear in the depth.\n")
	return b.String(), nil
}

func runE9(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E9", "Mesh application with C,D = Θ(n)", "Section 5 / [16]"))

	sizes := []int{4, 6, 8}
	if cfg.Scale >= 2 {
		sizes = []int{4, 6, 8, 12, 16}
	}
	t := NewTable("n x n mesh, all paths through the shared middle column:",
		"n", "C", "D", "L", "frame steps", "greedy steps", "sf-fifo steps", "frame/(C+L)")
	var xs, ys []float64
	for _, n := range sizes {
		p, err := workload.MeshHard(n)
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		fr, err := frameSteps(cfg, p, params)
		if err != nil {
			return "", err
		}
		budget := greedyBudget(p)
		gr, err := hotPotatoSteps(cfg, p, func() sim.Router { return baselines.NewGreedy() }, budget)
		if err != nil {
			return "", err
		}
		sf, err := sfSteps(cfg, p, func() sim.Scheduler { return baselines.NewFIFO() }, budget)
		if err != nil {
			return "", err
		}
		xs = append(xs, float64(n))
		ys = append(ys, fr.Mean)
		t.AddRowf(n, p.C, p.D, p.L(), fr.Mean, gr.Mean, sf.Mean, fr.Mean/float64(p.C+p.L()))
	}
	b.WriteString(t.String())
	fit := stats.FitLinear(xs, ys)
	fmt.Fprintf(&b, "\nlinear fit of frame steps against n: %s\n", fit)
	b.WriteString("expected: frame time Θ(n·polylog) (linear in n with the polylog slope);\n")
	b.WriteString("sf-fifo tracks the Θ(n) lower bound; greedy sits between.\n")
	return b.String(), nil
}

func runE10(cfg Config) (string, error) {
	cfg = cfg.Normalize()
	var b strings.Builder
	b.WriteString(section("E10", "Many-to-one fan-in stress", "Section 1.1 problem class"))

	k := 6
	counts := []int{8, 16, 32}
	if cfg.Scale >= 2 {
		counts = []int{8, 16, 32, 64, 128}
	}
	g, err := topo.Butterfly(k)
	if err != nil {
		return "", err
	}
	t := NewTable(fmt.Sprintf("butterfly(%d), single hot-spot destination:", k),
		"N", "C", "C+L", "frame steps", "frame/(C+L)", "greedy steps", "greedy/(C+L)")
	for i, n := range counts {
		p, err := workload.HotSpot(g, rngFor("E10", i), n, 1)
		if err != nil {
			return "", err
		}
		params := quickParams(cfg, p.C, p.L(), p.N())
		fr, err := frameSteps(cfg, p, params)
		if err != nil {
			return "", err
		}
		gr, err := hotPotatoSteps(cfg, p, func() sim.Router { return baselines.NewGreedy() }, greedyBudget(p))
		if err != nil {
			return "", err
		}
		cl := float64(p.C + p.L())
		t.AddRowf(p.N(), p.C, p.C+p.L(), fr.Mean, fr.Mean/cl, gr.Mean, gr.Mean/cl)
	}
	b.WriteString(t.String())
	b.WriteString("\nexpected: both ratios stay bounded as fan-in grows; the frame ratio is the\n")
	b.WriteString("structural polylog overhead, constant across C.\n")
	return b.String(), nil
}
