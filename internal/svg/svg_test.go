package svg

import (
	"encoding/xml"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/topo"
)

// wellFormed checks the output parses as XML end to end.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("not well-formed XML: %v\n%s", err, doc[:min(300, len(doc))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDocPrimitives(t *testing.T) {
	d := New(100, 50)
	d.Line(0, 0, 10, 10, "black", 1)
	d.Circle(5, 5, 2, "red")
	d.Rect(1, 1, 8, 8, "none", "blue")
	d.Text(2, 2, 10, `a<b>&"c"`)
	out := d.String()
	wellFormed(t, out)
	for _, want := range []string{"<line", "<circle", "<rect", "<text", "&lt;b&gt;", "&quot;c&quot;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderNetworkButterfly(t *testing.T) {
	g, err := topo.Butterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderNetwork(g)
	wellFormed(t, out)
	if n := strings.Count(out, "<circle"); n != g.NumNodes() {
		t.Errorf("circles = %d, want %d nodes", n, g.NumNodes())
	}
	if n := strings.Count(out, "<line"); n != g.NumEdges() {
		t.Errorf("lines = %d, want %d edges", n, g.NumEdges())
	}
}

func TestRenderNetworkMesh(t *testing.T) {
	g, err := topo.Mesh(4, 4, topo.CornerNW)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderNetwork(g)
	wellFormed(t, out)
	if !strings.Contains(out, "mesh(4x4,NW)") {
		t.Error("title missing")
	}
}

func TestRenderFramePipeline(t *testing.T) {
	sched := core.Schedule{P: core.Params{NumSets: 3, M: 4, W: 8, Q: 0.1}}
	out := RenderFramePipeline(sched, 14, 9, 2)
	wellFormed(t, out)
	// Frames 0 and 1 are on screen at phase 9; frame 2 starts at level
	// 9-8=1... frontier(2,9) = 9-8 = 1 >= 0, so all three render.
	if n := strings.Count(out, "<rect"); n < 3 {
		t.Errorf("frame bands = %d, want >= 3", n)
	}
	if !strings.Contains(out, "F0") || !strings.Contains(out, "F1") {
		t.Error("frame labels missing")
	}
	// Offscreen frames are skipped.
	early := RenderFramePipeline(sched, 14, 0, 0)
	wellFormed(t, early)
	if strings.Contains(early, "F2") {
		t.Error("offscreen frame rendered")
	}
}

func TestRenderTimeSpace(t *testing.T) {
	series := [][]int8{
		{-1, 0, 1, 2, 2, 1, 2, 3, -1}, // climbs, oscillates, absorbed
		{0, 1, -1, -1, 2, 3, 4, -1, -1},
	}
	out := RenderTimeSpace(series, func(i int) int { return 10 + i }, 5)
	wellFormed(t, out)
	// Two packets, second one has a gap -> at least 3 polylines.
	if n := strings.Count(out, "<polyline"); n < 3 {
		t.Errorf("polylines = %d, want >= 3", n)
	}
	if !strings.Contains(out, "steps 10..18") {
		t.Errorf("missing step range:\n%s", out)
	}
	// Empty input renders without panicking.
	wellFormed(t, RenderTimeSpace(nil, func(int) int { return 0 }, 3))
}

func TestRenderNetworkHeat(t *testing.T) {
	g, err := topo.Butterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int, g.NumEdges())
	loads[0] = 10
	loads[1] = 5
	out := RenderNetworkHeat(g, loads)
	wellFormed(t, out)
	if !strings.Contains(out, "#cc2222") {
		t.Error("hottest edge not rendered red")
	}
	if !strings.Contains(out, "#dddddd") {
		t.Error("idle edges not rendered gray")
	}
	// Zero loads degrade gracefully.
	wellFormed(t, RenderNetworkHeat(g, make([]int, g.NumEdges())))
}
