// Package svg renders leveled networks and the frontier-frame pipeline
// as standalone SVG documents — graphical reproductions of the paper's
// Figure 1 (leveled networks) and Figure 2 (frontier-frames). Stdlib
// only: documents are built as strings and are well-formed XML.
package svg

import (
	"fmt"
	"strings"

	"hotpotato/internal/core"
	"hotpotato/internal/graph"
)

// Doc accumulates SVG elements.
type Doc struct {
	W, H int
	b    strings.Builder
}

// New starts a document of the given pixel size.
func New(w, h int) *Doc {
	d := &Doc{W: w, H: h}
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	d.b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	return d
}

// Line draws a line.
func (d *Doc) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Circle draws a filled circle with a thin outline.
func (d *Doc) Circle(cx, cy, r float64, fill string) {
	fmt.Fprintf(&d.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
		cx, cy, r, fill)
}

// Rect draws a rectangle.
func (d *Doc) Rect(x, y, w, h float64, fill, stroke string) {
	fmt.Fprintf(&d.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s"/>`+"\n",
		x, y, w, h, fill, stroke)
}

// Text places a label (escaped).
func (d *Doc) Text(x, y float64, size int, s string) {
	fmt.Fprintf(&d.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, escape(s))
}

// String finalizes and returns the document.
func (d *Doc) String() string {
	return d.b.String() + "</svg>\n"
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// RenderNetwork draws a leveled network with levels as columns (level 0
// leftmost, as in Figure 1) and nodes stacked vertically within each
// level; every edge is a straight segment between consecutive columns.
func RenderNetwork(g *graph.Leveled) string {
	const (
		margin = 40.0
		colGap = 70.0
		rowGap = 26.0
		radius = 5.0
	)
	maxW := g.MaxLevelWidth()
	w := int(2*margin + colGap*float64(g.Depth()))
	h := int(2*margin + rowGap*float64(maxW-1) + 30)
	d := New(w, h)
	d.Text(margin, 20, 13, fmt.Sprintf("%s — levels 0..%d (Figure 1 style)", g.Name(), g.Depth()))

	pos := make([]struct{ x, y float64 }, g.NumNodes())
	for l := 0; l <= g.Depth(); l++ {
		ids := g.Level(l)
		span := rowGap * float64(len(ids)-1)
		top := margin + (rowGap*float64(maxW-1)-span)/2 + 20
		for i, id := range ids {
			pos[id] = struct{ x, y float64 }{
				x: margin + colGap*float64(l),
				y: top + rowGap*float64(i),
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		p1, p2 := pos[ed.From], pos[ed.To]
		d.Line(p1.x, p1.y, p2.x, p2.y, "#888888", 1)
	}
	for v := 0; v < g.NumNodes(); v++ {
		p := pos[v]
		d.Circle(p.x, p.y, radius, "#4477cc")
	}
	for l := 0; l <= g.Depth(); l++ {
		p := pos[g.Level(l)[0]]
		d.Text(p.x-4, float64(h)-12, 11, fmt.Sprint(l))
	}
	return d.String()
}

// RenderNetworkHeat draws the network like RenderNetwork but colors and
// thickens each edge by its load (loads[e], e.g. traversal counts from
// a trace.EdgeLoadRecorder): cold gray for idle edges through warm reds
// for the busiest — a utilization heat map.
func RenderNetworkHeat(g *graph.Leveled, loads []int) string {
	const (
		margin = 40.0
		colGap = 70.0
		rowGap = 26.0
		radius = 4.0
	)
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	maxW := g.MaxLevelWidth()
	w := int(2*margin + colGap*float64(g.Depth()))
	h := int(2*margin + rowGap*float64(maxW-1) + 30)
	d := New(w, h)
	d.Text(margin, 20, 13, fmt.Sprintf("%s — edge utilization (max %d traversals)", g.Name(), maxLoad))

	pos := make([]struct{ x, y float64 }, g.NumNodes())
	for l := 0; l <= g.Depth(); l++ {
		ids := g.Level(l)
		span := rowGap * float64(len(ids)-1)
		top := margin + (rowGap*float64(maxW-1)-span)/2 + 20
		for i, id := range ids {
			pos[id] = struct{ x, y float64 }{margin + colGap*float64(l), top + rowGap*float64(i)}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		p1, p2 := pos[ed.From], pos[ed.To]
		load := 0
		if e < len(loads) {
			load = loads[e]
		}
		color, width := heatStyle(load, maxLoad)
		d.Line(p1.x, p1.y, p2.x, p2.y, color, width)
	}
	for v := 0; v < g.NumNodes(); v++ {
		p := pos[v]
		d.Circle(p.x, p.y, radius, "#dddddd")
	}
	return d.String()
}

// heatStyle maps a load fraction to a stroke color and width.
func heatStyle(load, max int) (string, float64) {
	if max == 0 || load == 0 {
		return "#dddddd", 0.8
	}
	f := float64(load) / float64(max)
	switch {
	case f < 0.25:
		return "#9999bb", 1.0
	case f < 0.5:
		return "#7777dd", 1.6
	case f < 0.75:
		return "#dd7744", 2.2
	default:
		return "#cc2222", 3.0
	}
}

// RenderTimeSpace draws packet trajectories as a time-space diagram:
// x = step, y = network level (level 0 at the bottom). Waiting packets
// show as a one-level sawtooth (the oscillation on the wait edge);
// deflections as downward spikes; absorption ends the polyline. Series
// is one row per packet: series[p][i] is the packet's level at sample i
// (-1 when not active); stepOf maps sample index to step number.
func RenderTimeSpace(series [][]int8, stepOf func(int) int, L int) string {
	const (
		margin = 46.0
		wPer   = 3.0
		hPer   = 14.0
	)
	samples := 0
	for _, s := range series {
		if len(s) > samples {
			samples = len(s)
		}
	}
	w := int(2*margin + wPer*float64(samples))
	h := int(2*margin + hPer*float64(L))
	d := New(w, h)
	d.Text(margin, 20, 13, "time-space diagram: x = step, y = level")
	y := func(level int8) float64 { return float64(h) - margin - hPer*float64(level) }
	x := func(i int) float64 { return margin + wPer*float64(i) }

	// Level gridlines.
	for l := 0; l <= L; l++ {
		d.Line(margin, y(int8(l)), float64(w)-margin, y(int8(l)), "#eeeeee", 1)
		d.Text(8, y(int8(l))+4, 9, fmt.Sprint(l))
	}

	colors := []string{"#4477cc", "#cc4444", "#44aa66", "#aa7722", "#8844aa", "#22aaaa"}
	for pi, s := range series {
		color := colors[pi%len(colors)]
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.2"/>`+"\n",
					strings.Join(pts, " "), color)
			}
			pts = pts[:0]
		}
		for i, lvl := range s {
			if lvl < 0 {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(lvl)))
		}
		flush()
	}
	if samples > 0 {
		d.Text(margin, float64(h)-8, 10,
			fmt.Sprintf("steps %d..%d, %d packets", stepOf(0), stepOf(samples-1), len(series)))
	}
	return d.String()
}

// RenderFramePipeline draws the frontier-frame pipeline at a phase:
// the level axis runs left to right, each frontier-set's frame is a
// shaded band with its frontier edge emphasized and the round's target
// level marked — the paper's Figure 2.
func RenderFramePipeline(sched core.Schedule, L, phase, round int) string {
	const (
		margin = 40.0
		cell   = 28.0
		rowH   = 34.0
	)
	sets := sched.P.NumSets
	w := int(2*margin + cell*float64(L+1))
	h := int(2*margin + rowH*float64(sets) + 40)
	d := New(w, h)
	d.Text(margin, 20, 13, fmt.Sprintf("frontier-frames at phase %d, round %d (M=%d, %d sets) — Figure 2 style",
		phase, round, sched.P.M, sets))

	// Level axis.
	axisY := margin + 20.0
	for l := 0; l <= L; l++ {
		x := margin + cell*float64(l)
		d.Text(x+cell*0.3, axisY, 10, fmt.Sprint(l))
	}

	drawn := 0
	for set := 0; set < sets; set++ {
		f := sched.Frontier(set, phase)
		back := sched.FrameBack(set, phase)
		if f < 0 || back > L {
			continue
		}
		y := axisY + 14 + rowH*float64(drawn)
		drawn++
		lo, hi := back, f
		if lo < 0 {
			lo = 0
		}
		if hi > L {
			hi = L
		}
		x0 := margin + cell*float64(lo)
		x1 := margin + cell*float64(hi+1)
		d.Rect(x0, y, x1-x0, rowH-10, "#cfe3ff", "#4477cc")
		// Frontier marker (right edge of frame when inside the axis).
		if f <= L {
			fx := margin + cell*float64(f+1)
			d.Line(fx, y-2, fx, y+rowH-8, "#d33", 2.5)
		}
		// Target level marker.
		tl := sched.TargetLevel(set, phase, round)
		if tl >= lo && tl <= hi {
			tx := margin + cell*(float64(tl)+0.5)
			d.Circle(tx, y+(rowH-10)/2, 5, "#d33")
		}
		d.Text(8, y+(rowH-10)/2+4, 11, fmt.Sprintf("F%d", set))
	}
	d.Text(margin, float64(h)-10, 10, "band = frame; red line = frontier; red dot = round target level")
	return d.String()
}
