package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hotpotato/internal/persist"
)

// tinySpec is a 4-cell grid small enough for per-test execution.
func tinySpec() *Spec {
	return &Spec{
		Name:     "tiny",
		Topos:    []string{"butterfly:3"},
		Loads:    []string{"hotspot:6x2"},
		Faults:   []string{"", "flap:period=30,down=3,rate=0.2"},
		Routers:  []string{"frame", "greedy-hp"},
		Trials:   3,
		BaseSeed: 7,
	}
}

func TestSpecCellsCanonicalOrder(t *testing.T) {
	cells, err := tinySpec().Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"butterfly:3/hotspot:6x2//frame",
		"butterfly:3/hotspot:6x2//greedy-hp",
		"butterfly:3/hotspot:6x2/flap:period=30,down=3,rate=0.2/frame",
		"butterfly:3/hotspot:6x2/flap:period=30,down=3,rate=0.2/greedy-hp",
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Key() != want[i] {
			t.Fatalf("cell %d = %s, want %s", i, c.Key(), want[i])
		}
	}
}

// TestSpecCellsCompatSkip: transpose only exists on even-dimension
// butterflies, so mixing it into a mesh axis skips, not errors.
func TestSpecCellsCompatSkip(t *testing.T) {
	s := tinySpec()
	s.Topos = []string{"butterfly:4", "butterfly:3", "mesh:4"}
	s.Loads = []string{"transpose", "random:0.5"}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Load == "transpose" && c.Topo != "butterfly:4" {
			t.Fatalf("transpose paired with %s", c.Topo)
		}
	}
	// random:0.5 runs on all three topos, transpose only on butterfly:4:
	// (3 + 1) topo-load pairs × 2 faults × 2 routers.
	if len(cells) != 16 {
		t.Fatalf("got %d cells, want 16", len(cells))
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"no name":        func(s *Spec) { s.Name = "" },
		"empty axis":     func(s *Spec) { s.Routers = nil },
		"zero trials":    func(s *Spec) { s.Trials = 0 },
		"bad topo":       func(s *Spec) { s.Topos = []string{"torus:4"} },
		"bad topo arg":   func(s *Spec) { s.Topos = []string{"mesh:x"} },
		"bad load":       func(s *Spec) { s.Loads = []string{"hotspot:abc"} },
		"bad fault":      func(s *Spec) { s.Faults = []string{"nope:1"} },
		"bad router":     func(s *Spec) { s.Routers = []string{"dijkstra"} },
		"sf router":      func(s *Spec) { s.Routers = []string{"sf-greedy"} },
		"bad density":    func(s *Spec) { s.Loads = []string{"random:1.5"} },
		"transpose args": func(s *Spec) { s.Loads = []string{"transpose:2"} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := tinySpec()
			mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := tinySpec(), tinySpec()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs, different fingerprints")
	}
	b.Trials++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different specs, same fingerprint")
	}
}

// TestCellSeedIndependentOfGridPosition: the seed is a function of the
// key alone, so axis reordering cannot move a cell's ensemble.
func TestCellSeedIndependentOfGridPosition(t *testing.T) {
	a := tinySpec()
	b := tinySpec()
	b.Routers = []string{"greedy-hp", "frame"} // reordered axis
	key := "butterfly:3/hotspot:6x2//frame"
	if a.cellSeed(key) != b.cellSeed(key) {
		t.Fatal("cell seed depends on axis order")
	}
	if a.cellSeed(key) == a.cellSeed("butterfly:3/hotspot:6x2//greedy-hp") {
		t.Fatal("distinct keys collided")
	}
	c := tinySpec()
	c.BaseSeed = 8
	if a.cellSeed(key) == c.cellSeed(key) {
		t.Fatal("BaseSeed does not perturb cell seeds")
	}
}

// TestExecuteCellDeterminism: the summary must be a pure function of
// (spec, cell) — this is the substrate of byte-identical resume.
func TestExecuteCellDeterminism(t *testing.T) {
	spec := tinySpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		a, err := ExecuteCell(spec, c)
		if err != nil {
			t.Fatalf("%s: %v", c.Key(), err)
		}
		b, err := ExecuteCell(spec, c)
		if err != nil {
			t.Fatalf("%s: %v", c.Key(), err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: two executions differ:\n%s\n%s", c.Key(), ja, jb)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: summary fails its own invariants: %v", c.Key(), err)
		}
		if a.Trials != spec.Trials || a.Expected != spec.Trials*a.Packets {
			t.Fatalf("%s: accounting wrong: %+v", c.Key(), a)
		}
	}
}

// TestExecuteCellSharedInstanceAcrossFaultRouterAxes: fault and router
// members must see the identical problem instance (same C/D/L and
// packet count), so cells differ only in the quantity under test.
func TestExecuteCellSharedInstanceAcrossFaultRouterAxes(t *testing.T) {
	spec := tinySpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	var first *struct{ c, d, l, packets int }
	for _, c := range cells {
		s, err := ExecuteCell(spec, c)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = &struct{ c, d, l, packets int }{s.C, s.D, s.L, s.Packets}
			continue
		}
		if s.C != first.c || s.D != first.d || s.L != first.l || s.Packets != first.packets {
			t.Fatalf("cell %s ran a different instance: %+v vs %+v", c.Key(), s, *first)
		}
	}
}

func runTiny(t *testing.T) *Document {
	t.Helper()
	doc, err := Run(tinySpec(), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestCompareCampaignPassesOnIdentical(t *testing.T) {
	doc := runTiny(t)
	warnings, err := CompareCampaign(doc, doc, Tolerances{})
	if err != nil {
		t.Fatalf("identical documents failed the gate: %v", err)
	}
	if len(warnings) != 0 {
		t.Fatalf("identical documents warned: %v", warnings)
	}
}

// TestCompareCampaignFailsOnShiftedQuantile is the acceptance
// criterion: a synthetically shifted p50 must demonstrably fail.
func TestCompareCampaignFailsOnShiftedQuantile(t *testing.T) {
	base := runTiny(t)
	shifted := runTiny(t)
	shifted.Cells = append([]persist.CampaignCell(nil), shifted.Cells...)
	i := 0
	shifted.Cells[i].StepsP50 *= 1.25 // 25% shift vs 10% tolerance
	if shifted.Cells[i].StepsP90 < shifted.Cells[i].StepsP50 {
		shifted.Cells[i].StepsP90 = shifted.Cells[i].StepsP50
	}
	_, err := CompareCampaign(base, shifted, Tolerances{})
	if err == nil {
		t.Fatal("25% p50 shift passed the 10% gate")
	}
	if !strings.Contains(err.Error(), "p50 shifted") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
}

// TestCompareCampaignFailsOnDropRateShift: the under-faults degradation
// figure gates absolutely.
func TestCompareCampaignFailsOnDropRateShift(t *testing.T) {
	base := runTiny(t)
	shifted := runTiny(t)
	shifted.Cells = append([]persist.CampaignCell(nil), shifted.Cells...)
	shifted.Cells[1].DropRate += 0.2
	_, err := CompareCampaign(base, shifted, Tolerances{})
	if err == nil {
		t.Fatal("0.2 drop-rate shift passed the 0.05 gate")
	}
	if !strings.Contains(err.Error(), "drop rate shifted") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
}

// TestCompareCampaignZeroBaselineQuantile covers the degenerate
// relative-gate cases the absolute floor exists for. Before the floor,
// a baseline quantile of 0 made the relative shift |cur-0|/0 = +Inf, so
// ANY nonzero current failed, and 0 vs 0 evaluated NaN > tol = false,
// so that comparison was vacuous by accident rather than by decision.
func TestCompareCampaignZeroBaselineQuantile(t *testing.T) {
	mk := func(p50, p99 float64) *Document {
		doc := runTiny(t)
		doc.Cells = append([]persist.CampaignCell(nil), doc.Cells...)
		doc.Cells[0].StepsP50 = p50
		doc.Cells[0].StepsP90 = p99
		doc.Cells[0].StepsP99 = p99
		return doc
	}

	// Direction 1: zero baseline, tiny current — must PASS (the old
	// Inf gate failed this spuriously).
	if _, err := CompareCampaign(mk(0, 0), mk(0.05, 0.05), Tolerances{}); err != nil {
		t.Errorf("tiny shift off zero baseline failed the gate: %v", err)
	}
	// Zero on both sides — must PASS, now by decision rather than by
	// NaN comparing false.
	if _, err := CompareCampaign(mk(0, 0), mk(0, 0), Tolerances{}); err != nil {
		t.Errorf("identical zero quantiles failed the gate: %v", err)
	}
	// Direction 2: zero baseline, large current — must FAIL on the
	// absolute fallback, with the near-zero wording.
	_, err := CompareCampaign(mk(0, 0), mk(5, 5), Tolerances{})
	if err == nil {
		t.Fatal("large shift off zero baseline passed the gate")
	}
	if !strings.Contains(err.Error(), "near zero baseline") {
		t.Fatalf("gate failed for the wrong reason: %v", err)
	}
	// And symmetrically: near-zero CURRENT against a sub-floor baseline
	// still gates absolutely (regression in the shrinking direction).
	if _, err := CompareCampaign(mk(0.5, 0.5), mk(0, 0), Tolerances{}); err == nil {
		t.Fatal("0.5 -> 0 collapse under the floor passed the gate")
	}
	// A baseline above the floor keeps the plain relative gate.
	if _, err := CompareCampaign(mk(100, 100), mk(105, 105), Tolerances{}); err != nil {
		t.Errorf("5%% shift on healthy baseline failed the 10%% gate: %v", err)
	}
}

// TestCompareCampaignWarnsOnOneSidedCells: disjoint cells warn without
// failing; the intersection still gates.
func TestCompareCampaignWarnsOnOneSidedCells(t *testing.T) {
	base := runTiny(t)
	cur := runTiny(t)
	cur.Cells = cur.Cells[:len(cur.Cells)-1]
	warnings, err := CompareCampaign(base, cur, Tolerances{})
	if err != nil {
		t.Fatalf("missing cell must warn, not fail: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "only in baseline") {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestDocumentRoundTripAndTamperRejection(t *testing.T) {
	doc := runTiny(t)
	var buf bytes.Buffer
	if err := WriteDocument(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocument(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(doc)
	jb, _ := json.Marshal(got)
	if !bytes.Equal(ja, jb) {
		t.Fatal("document round-trip changed content")
	}

	// Hand-editing the spec inside the document breaks the fingerprint.
	tampered := strings.Replace(buf.String(), `"trials": 3`, `"trials": 4`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper target not found in serialized document")
	}
	if _, err := ReadDocument(strings.NewReader(tampered)); err == nil {
		t.Fatal("tampered document accepted")
	}

	// An invalid cell is rejected even with a matching fingerprint.
	bad := *got
	bad.Cells = append([]persist.CampaignCell(nil), got.Cells...)
	bad.Cells[0].Succeeded = bad.Cells[0].Trials + 1
	var buf2 bytes.Buffer
	if err := WriteDocument(&buf2, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDocument(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("document with invalid cell accepted")
	}
}

// TestRunDocumentShape: the document lists cells in canonical grid
// order and carries a fit when ≥2 fault-free frame cells exist.
func TestRunDocumentShape(t *testing.T) {
	s := tinySpec()
	s.Topos = []string{"butterfly:3", "mesh:3"} // two frame fit points
	doc, err := Run(s, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := s.Cells()
	if len(doc.Cells) != len(cells) {
		t.Fatalf("document has %d cells, grid has %d", len(doc.Cells), len(cells))
	}
	for i, c := range cells {
		if doc.Cells[i].Key != c.Key() {
			t.Fatalf("document order broken at %d: %s vs %s", i, doc.Cells[i].Key, c.Key())
		}
	}
	if doc.Fit == nil {
		t.Fatal("fit missing despite two fault-free frame cells")
	}
	if len(doc.Fit.Residuals) != 2 {
		t.Fatalf("fit has %d residuals, want 2", len(doc.Fit.Residuals))
	}
}
