package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"hotpotato/internal/core"
	"hotpotato/internal/faults"
	"hotpotato/internal/mc"
	"hotpotato/internal/obs"
	"hotpotato/internal/persist"
	"hotpotato/internal/stats"
)

// ErrStopped is returned when a campaign was interrupted (Stop channel
// or StopAfter) before every cell completed. All cells finished by then
// — including in-flight ones, which are drained, not abandoned — are in
// the checkpoint; rerunning with the same checkpoint resumes.
var ErrStopped = errors.New("campaign: stopped before completion")

// RunConfig configures one campaign execution.
type RunConfig struct {
	// Workers bounds cell-level concurrency (0 = GOMAXPROCS). Each cell
	// runs its Monte-Carlo ensemble sequentially (mc Workers=1), so the
	// unit of parallelism — and of checkpointing — is the cell.
	Workers int
	// Checkpoint is the checkpoint file path ("" disables
	// checkpointing). An existing file is resumed: its cells are
	// restored, only missing cells run. A checkpoint written under a
	// different spec fingerprint is rejected.
	Checkpoint string
	// Stream, when non-nil, receives one CSV row per newly completed
	// cell (completion order) through the obs table exporter — the live
	// progress feed.
	Stream io.Writer
	// Stop requests a graceful stop when closed: no new cells start,
	// in-flight cells finish and are checkpointed, Run returns
	// ErrStopped.
	Stop <-chan struct{}
	// StopAfter stops the campaign after this many newly completed
	// cells (0 = run to completion) — the deterministic interrupt the
	// CI kill-and-resume job uses.
	StopAfter int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DocumentVersion identifies the campaign result document schema.
const DocumentVersion = 1

// Document is a completed campaign: every cell summary in canonical
// grid order plus the scaling fit. This is the committed
// CAMPAIGN_baseline.json shape and CompareCampaign's input.
type Document struct {
	Version  int                    `json:"version"`
	Name     string                 `json:"name"`
	SpecHash string                 `json:"spec_hash"`
	Spec     Spec                   `json:"spec"`
	Cells    []persist.CampaignCell `json:"cells"`
	// Fit regresses fault-free frame-cell mean delivery steps on
	// (C+L)·ln^k(LN); nil when fewer than two such cells exist.
	Fit *stats.PolylogFit `json:"fit,omitempty"`
}

// streamCols is the per-cell CSV layout of RunConfig.Stream.
var streamCols = []string{
	"key", "topo", "load", "fault", "router",
	"packets", "c", "d", "l", "trials", "succeeded", "drop_rate",
	"steps_mean", "steps_p50", "steps_p90", "steps_p99",
	"p50_lo", "p50_hi", "p99_lo", "p99_hi",
	"deflects_per_packet", "fault_blocked", "fault_stalls",
}

func streamRow(t *obs.Table, c *persist.CampaignCell) error {
	return t.Row(c.Key, c.Topo, c.Load, c.Fault, c.Router,
		c.Packets, c.C, c.D, c.L, c.Trials, c.Succeeded, c.DropRate,
		c.StepsMean, c.StepsP50, c.StepsP90, c.StepsP99,
		c.P50Lo, c.P50Hi, c.P99Lo, c.P99Hi,
		c.DeflectsPerPacket, c.FaultBlocked, c.FaultStalls)
}

// Run executes the campaign. It returns the completed document, or
// (nil, ErrStopped) when interrupted — with everything completed so far
// checkpointed for resume — or (nil, err) on the first cell failure.
func Run(spec *Spec, cfg RunConfig) (*Document, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hash := spec.Fingerprint()

	done := make(map[string]persist.CampaignCell)
	var ckpt *persist.CampaignWriter
	if cfg.Checkpoint != "" {
		restored, w, err := openCheckpoint(cfg.Checkpoint, spec, hash)
		if err != nil {
			return nil, err
		}
		defer w.Close()
		ckpt, err = persist.NewCampaignWriter(w, persist.CampaignHeader{
			Version:  persist.CampaignFormatVersion,
			Kind:     persist.CampaignKind,
			Name:     spec.Name,
			SpecHash: hash,
		}, len(restored) == 0)
		if err != nil {
			return nil, err
		}
		for _, c := range restored {
			done[c.Key] = c
		}
		if len(restored) > 0 {
			logf("campaign %s: resumed %d checkpointed cells from %s", spec.Name, len(restored), cfg.Checkpoint)
		}
	}

	var stream *obs.Table
	if cfg.Stream != nil {
		stream = obs.NewTable(cfg.Stream, streamCols...)
	}

	var pending []Cell
	for _, c := range cells {
		if _, ok := done[c.Key()]; !ok {
			pending = append(pending, c)
		}
	}

	stopped := false
	if len(pending) > 0 {
		stopped, err = runPending(spec, cfg, pending, done, ckpt, stream, logf)
		if err != nil {
			return nil, err
		}
	}
	if stopped {
		logf("campaign %s: stopped with %d/%d cells complete", spec.Name, len(done), len(cells))
		return nil, ErrStopped
	}

	doc := &Document{Version: DocumentVersion, Name: spec.Name, SpecHash: hash, Spec: *spec}
	for _, c := range cells {
		doc.Cells = append(doc.Cells, done[c.Key()])
	}
	doc.Fit = fitScaling(doc.Cells)
	return doc, nil
}

// runPending fans the missing cells over a worker pool, checkpointing
// and streaming each completion. Returns stopped=true when interrupted
// by Stop/StopAfter before exhausting pending.
func runPending(spec *Spec, cfg RunConfig, pending []Cell,
	done map[string]persist.CampaignCell, ckpt *persist.CampaignWriter,
	stream *obs.Table, logf func(string, ...any)) (bool, error) {

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	type cellResult struct {
		cell    Cell
		summary persist.CampaignCell
		err     error
	}
	jobs := make(chan Cell)
	results := make(chan cellResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				s, err := ExecuteCell(spec, c)
				results <- cellResult{cell: c, summary: s, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The feeder races new cells against both stop signals; closing
	// jobs lets in-flight cells drain through results.
	stopFeed := make(chan struct{})
	go func() {
		defer close(jobs)
		for _, c := range pending {
			select {
			case jobs <- c:
			case <-stopFeed:
				return
			case <-cfg.Stop:
				return
			}
		}
	}()

	total := len(done) + len(pending)
	// requestStop closes stopFeed exactly once; every stop site below
	// goes through it, since a StopAfter close can be followed by an
	// error in a drained in-flight result (or vice versa). Only this
	// goroutine calls it, so a plain bool guard suffices.
	stopRequested := false
	requestStop := func() {
		if !stopRequested {
			stopRequested = true
			close(stopFeed)
		}
	}
	newly := 0
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("campaign: cell %s: %w", r.cell.Key(), r.err)
				requestStop()
			}
			continue
		}
		if ckpt != nil {
			if err := ckpt.Append(&r.summary); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("campaign: checkpoint %s: %w", cfg.Checkpoint, err)
				requestStop()
				continue
			}
		}
		if stream != nil {
			if err := streamRow(stream, &r.summary); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("campaign: stream: %w", err)
				requestStop()
				continue
			}
		}
		done[r.cell.Key()] = r.summary
		newly++
		logf("campaign %s: cell %s done (%d newly completed)", spec.Name, r.cell.Key(), newly)
		if cfg.StopAfter > 0 && newly >= cfg.StopAfter {
			requestStop()
		}
	}
	if firstErr != nil {
		return false, firstErr
	}
	// A stop signal that arrived after the feeder had already handed
	// out every cell interrupts nothing: the drain completed the grid.
	return len(done) < total, nil
}

// openCheckpoint restores an existing checkpoint (validating its spec
// fingerprint) and returns the restored cells plus an append-mode file.
// A torn trailing line — the partial write of a killed append — is
// physically truncated away before appending resumes, so a new cell
// line is never glued onto the fragment (which would weld them into one
// complete-but-invalid line and poison every later resume). A file torn
// inside its very first line (killed during the header write) has no
// complete lines at all and is started over.
func openCheckpoint(path string, spec *Spec, hash string) ([]persist.CampaignCell, *os.File, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	// keep is the byte length of the complete (newline-terminated)
	// prefix; everything after the last newline is a torn tail.
	keep := 0
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		keep = i + 1
	}
	if len(bytes.TrimSpace(data[:keep])) == 0 {
		keep = 0
	}
	var restored []persist.CampaignCell
	if keep > 0 {
		h, cells, err := persist.ReadCampaignCheckpoint(bytes.NewReader(data[:keep]))
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
		}
		if h.SpecHash != hash {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s belongs to spec %s, not %s (%s); refusing to mix grids",
				path, h.SpecHash, spec.Name, hash)
		}
		// Keep only cells the current grid contains — with the hash
		// match this filters nothing today, but it keeps document
		// assembly total if the fingerprint ever loosens.
		cs, err := spec.Cells()
		if err != nil {
			return nil, nil, err
		}
		valid := make(map[string]bool, len(cs))
		for _, c := range cs {
			valid[c.Key()] = true
		}
		for _, c := range cells {
			if valid[c.Key] {
				restored = append(restored, c)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	size := int64(keep)
	if len(restored) == 0 {
		// Start the file over: it was empty, missing, torn inside the
		// header, or held only cells filtered out above.
		size = 0
	}
	// Drop the torn tail (or the whole file) before the first append;
	// with O_APPEND, later writes land at the truncated end.
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, nil, err
	}
	return restored, f, nil
}

// ExecuteCell runs one cell's ensemble and summarizes it. Exported so
// tests (and future distributed drivers) can run single cells; every
// output field is a pure function of (spec, cell).
func ExecuteCell(spec *Spec, c Cell) (persist.CampaignCell, error) {
	p, err := spec.buildProblem(c)
	if err != nil {
		return persist.CampaignCell{}, err
	}
	fc, err := faults.Parse(c.Fault)
	if err != nil {
		return persist.CampaignCell{}, err
	}
	key := c.Key()
	seed := spec.cellSeed(key)
	opt := mc.Options{
		Trials:   spec.Trials,
		BaseSeed: seed,
		Workers:  1,
		Faults:   fc,
	}
	var params core.Params
	if factory, err := routerFactory(c.Router); err != nil {
		return persist.CampaignCell{}, err
	} else if factory != nil {
		opt.Router = factory
		opt.MaxSteps = baselineBudget(p)
	} else {
		params = cellParams(p)
	}
	ens, err := mc.Run(p, params, opt)
	if err != nil {
		return persist.CampaignCell{}, err
	}

	out := persist.CampaignCell{
		Key: key, Topo: c.Topo, Load: c.Load, Fault: c.Fault, Router: c.Router,
		Nodes: p.G.NumNodes(), Edges: p.G.NumEdges(), Packets: p.N(),
		C: p.C, D: p.D, L: p.L(),
		Trials:   spec.Trials,
		Expected: spec.Trials * p.N(),
	}
	var steps []float64
	deflects := 0
	for _, t := range ens.Trials {
		if t.Done {
			out.Succeeded++
			steps = append(steps, float64(t.Steps))
		}
		out.Absorbed += t.Absorbed
		out.FaultBlocked += t.FaultBlocked
		out.FaultStalls += t.FaultStalls
		deflects += t.Deflects
	}
	out.DropRate = 1 - float64(out.Absorbed)/float64(out.Expected)
	out.DeflectsPerPacket = float64(deflects) / float64(out.Expected)
	if len(steps) == 0 {
		out.StepsMean, out.StepsP50, out.StepsP90, out.StepsP99 = -1, -1, -1, -1
		out.P50Lo, out.P50Hi, out.P99Lo, out.P99Hi = -1, -1, -1, -1
		return out, nil
	}
	sum := stats.Summarize(steps)
	out.StepsMean = sum.Mean
	out.StepsP50, out.StepsP90, out.StepsP99 = sum.Median, sum.P90, sum.P99
	// Bootstrap seeds derive from the cell seed, keeping intervals
	// byte-identical across resumes and worker assignments.
	p50 := stats.BootstrapQuantileCI(steps, 0.5, bootstrapIters, uint64(seed)+1, 0.95)
	p99 := stats.BootstrapQuantileCI(steps, 0.99, bootstrapIters, uint64(seed)+2, 0.95)
	out.P50Lo, out.P50Hi = p50.Lo, p50.Hi
	out.P99Lo, out.P99Hi = p99.Lo, p99.Hi
	return out, nil
}

// bootstrapIters is the per-quantile resample count: enough for stable
// 95% intervals on ensemble-sized samples, cheap next to the trials.
const bootstrapIters = 500

// fitScaling regresses fault-free frame-cell mean delivery steps on
// (C+L)·ln^k(LN) over k = 0..maxFitExponent, recording residuals. The
// paper's bound has k = 9; the practical parameters the cells run with
// flatten most of that polylog, so the selected exponent is typically
// small — the committed document records which.
func fitScaling(cells []persist.CampaignCell) *stats.PolylogFit {
	var base, lnln, ys []float64
	for _, c := range cells {
		if c.Router != "frame" || c.Fault != "" || c.Succeeded == 0 {
			continue
		}
		base = append(base, float64(c.C+c.L))
		lnln = append(lnln, math.Log(float64(c.L)*float64(c.Packets)))
		ys = append(ys, c.StepsMean)
	}
	if len(ys) < 2 {
		return nil
	}
	fit := stats.FitPolylog(base, lnln, ys, maxFitExponent)
	return &fit
}

// maxFitExponent caps the polylog exponent search; the paper's ln⁹ is
// included so proof-grade-parameter campaigns can select it.
const maxFitExponent = 9
