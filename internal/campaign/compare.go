package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Tolerances bound how far a current campaign may drift from the
// committed baseline before the gate fails. Zero values select the
// defaults noted per field.
type Tolerances struct {
	// Quantile is the allowed relative shift of per-cell p50/p99
	// delivery-step quantiles, two-sided — an unexplained speedup is as
	// much a distribution change as a slowdown, and either invalidates
	// the recorded science until the baseline is re-recorded. Default
	// 0.10 (10%).
	Quantile float64
	// DropRate is the allowed absolute shift of the per-cell
	// packet-drop rate (the under-faults degradation figure). Default
	// 0.05.
	DropRate float64
	// QuantileFloor switches the quantile gate from relative to
	// absolute below this baseline magnitude. A relative gate is
	// meaningless near zero: baseline 0 divides to +Inf (everything
	// fails) and 0 vs 0 divides to NaN (every comparison is vacuously
	// true, so anything passes). Below the floor the gate instead
	// requires |cur-base| <= QuantileFloor*Quantile — the same
	// proportional slack, anchored at the floor. Default 1.0 (one
	// delivery step).
	QuantileFloor float64
}

func (t Tolerances) normalize() Tolerances {
	if t.Quantile <= 0 {
		t.Quantile = 0.10
	}
	if t.DropRate <= 0 {
		t.DropRate = 0.05
	}
	if t.QuantileFloor <= 0 {
		t.QuantileFloor = 1.0
	}
	return t
}

// CompareCampaign is the distribution-level regression gate, the
// campaign analogue of bench.CompareEngineBench: every cell present in
// both documents must agree on its delivery-time quantiles (relative,
// per Tolerances.Quantile) and its drop rate (absolute, per
// Tolerances.DropRate). Cells on only one side produce warnings, as
// does a spec-fingerprint mismatch (the intersection still gates). All
// violations are collected into one error so a shifted grid reports
// every broken cell, not just the first.
func CompareCampaign(baseline, current *Document, tol Tolerances) ([]string, error) {
	tol = tol.normalize()
	var warnings, violations []string
	if baseline.SpecHash != current.SpecHash {
		warnings = append(warnings,
			fmt.Sprintf("baseline spec %s != current spec %s; gating only the intersection of cells",
				baseline.SpecHash, current.SpecHash))
	}
	base := make(map[string]int, len(baseline.Cells))
	for i, c := range baseline.Cells {
		base[c.Key] = i
	}
	seen := make(map[string]bool, len(current.Cells))
	for _, cur := range current.Cells {
		seen[cur.Key] = true
		bi, ok := base[cur.Key]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("cell %s only in current document; not gated", cur.Key))
			continue
		}
		b := baseline.Cells[bi]
		for _, q := range []struct {
			name      string
			base, cur float64
		}{
			{"p50", b.StepsP50, cur.StepsP50},
			{"p99", b.StepsP99, cur.StepsP99},
		} {
			switch {
			case q.base < 0 && q.cur < 0:
				// No successful trials on either side: nothing to compare
				// (the drop-rate check still gates the failure pattern).
			case q.base < 0 || q.cur < 0:
				violations = append(violations,
					fmt.Sprintf("cell %s: %s existence flipped (baseline %g, current %g)", cur.Key, q.name, q.base, q.cur))
			case math.Abs(q.base) < tol.QuantileFloor:
				// Near-zero baseline: the relative gate degenerates
				// (0 → Inf fails everything; 0 vs 0 → NaN passes
				// everything). Gate on absolute shift instead.
				if shift := math.Abs(q.cur - q.base); shift > tol.QuantileFloor*tol.Quantile {
					violations = append(violations,
						fmt.Sprintf("cell %s: %s shifted %g near zero baseline (baseline %g, current %g, absolute tolerance %g)",
							cur.Key, q.name, shift, q.base, q.cur, tol.QuantileFloor*tol.Quantile))
				}
			default:
				if shift := math.Abs(q.cur-q.base) / q.base; shift > tol.Quantile {
					violations = append(violations,
						fmt.Sprintf("cell %s: %s shifted %.1f%% (baseline %g, current %g, tolerance %.0f%%)",
							cur.Key, q.name, 100*shift, q.base, q.cur, 100*tol.Quantile))
				}
			}
		}
		if shift := math.Abs(cur.DropRate - b.DropRate); shift > tol.DropRate {
			violations = append(violations,
				fmt.Sprintf("cell %s: drop rate shifted %.3f (baseline %.3f, current %.3f, tolerance %.3f)",
					cur.Key, shift, b.DropRate, cur.DropRate, tol.DropRate))
		}
	}
	for _, b := range baseline.Cells {
		if !seen[b.Key] {
			warnings = append(warnings, fmt.Sprintf("cell %s only in baseline document; not gated", b.Key))
		}
	}
	if len(violations) > 0 {
		return warnings, fmt.Errorf("campaign: distribution gate failed (%d cells):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	return warnings, nil
}

// WriteDocument serializes a completed campaign document (indented,
// trailing newline — the committed-artifact convention).
func WriteDocument(w io.Writer, d *Document) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadDocument deserializes and validates a campaign document: schema
// version, per-cell invariants (via the persist validators), unique
// keys, and the spec-fingerprint integrity check.
func ReadDocument(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("campaign: decode document: %w", err)
	}
	if d.Version != DocumentVersion {
		return nil, fmt.Errorf("campaign: unsupported document version %d (want %d)", d.Version, DocumentVersion)
	}
	if got := d.Spec.Fingerprint(); got != d.SpecHash {
		return nil, fmt.Errorf("campaign: document spec hash %s does not match its spec (%s); edited by hand?", d.SpecHash, got)
	}
	seen := make(map[string]bool, len(d.Cells))
	for i := range d.Cells {
		c := &d.Cells[i]
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: document cell %d: %w", i, err)
		}
		if seen[c.Key] {
			return nil, fmt.Errorf("campaign: document has duplicate cell %q", c.Key)
		}
		seen[c.Key] = true
	}
	return &d, nil
}

// LoadDocument reads a document from a file.
func LoadDocument(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDocument(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
