// Package campaign runs resumable experiment campaigns: a topology ×
// load × fault × router grid sharded into cells, each cell a seeded
// Monte-Carlo ensemble (internal/mc) summarized into delivery-time
// quantiles with bootstrap confidence intervals. Completed cells are
// checkpointed through internal/persist, so an interrupted campaign
// resumes incrementally and reproduces the uninterrupted result byte
// for byte; the finished document carries a least-squares fit of
// measured steps against the paper's (C+L)·polylog(LN) shape and feeds
// the CompareCampaign distribution-regression gate.
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// Spec declares a campaign grid. The cell set is the cartesian product
// of the four axes; every per-cell quantity (problem instance, trial
// seeds, bootstrap resamples) derives deterministically from the cell's
// key and BaseSeed, never from grid position — so reordering an axis or
// appending new members leaves existing cell summaries unchanged.
type Spec struct {
	Name string `json:"name"`
	// Topos are "kind:arg" topology specs: butterfly:K, mesh:N,
	// hypercube:D, random:DEPTH.
	Topos []string `json:"topos"`
	// Loads are workload specs: hotspot:NxS, random:DENSITY,
	// fullthroughput, transpose (butterfly topologies only).
	Loads []string `json:"loads"`
	// Faults are internal/faults.Parse specs; "" is the fault-free
	// member of the axis.
	Faults []string `json:"faults"`
	// Routers are "frame" plus the hot-potato baselines: greedy-hp,
	// greedy-ftg, greedy-oldest, rand-greedy-hp. (Store-and-forward
	// baselines are excluded: they ignore fault models, which would
	// make the drop-rate gate vacuous on their cells.)
	Routers []string `json:"routers"`
	// Trials is the ensemble size per cell (>= 1).
	Trials int `json:"trials"`
	// BaseSeed perturbs every derived seed; two campaigns differing
	// only in BaseSeed are independent replicates of the same grid.
	BaseSeed int64 `json:"base_seed"`
}

// Cell is one grid point.
type Cell struct {
	Topo, Load, Fault, Router string
}

// Key is the cell's stable identity. None of the axis grammars use
// '/', so the joined form parses back unambiguously.
func (c Cell) Key() string {
	return c.Topo + "/" + c.Load + "/" + c.Fault + "/" + c.Router
}

// Validate checks the spec's axes without building anything heavy.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Topos) == 0 || len(s.Loads) == 0 || len(s.Faults) == 0 || len(s.Routers) == 0 {
		return fmt.Errorf("campaign: spec %s: every axis needs at least one member (use \"\" for no faults)", s.Name)
	}
	if s.Trials < 1 {
		return fmt.Errorf("campaign: spec %s: trials %d < 1", s.Name, s.Trials)
	}
	for _, t := range s.Topos {
		if _, err := parseTopoSpec(t); err != nil {
			return err
		}
	}
	for _, l := range s.Loads {
		if err := checkLoadSpec(l); err != nil {
			return err
		}
	}
	for _, f := range s.Faults {
		if _, err := faults.Parse(f); err != nil {
			return err
		}
	}
	for _, r := range s.Routers {
		if _, err := routerFactory(r); err != nil {
			return err
		}
	}
	return nil
}

// Cells enumerates the grid in canonical (topo, load, fault, router)
// order, skipping combinations that are structurally impossible (e.g.
// transpose on a mesh) — a skip, not an error, so one load axis can
// serve mixed topology axes.
func (s *Spec) Cells() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cells []Cell
	for _, t := range s.Topos {
		ts, _ := parseTopoSpec(t)
		for _, l := range s.Loads {
			if !loadCompatible(ts, l) {
				continue
			}
			for _, f := range s.Faults {
				for _, r := range s.Routers {
					cells = append(cells, Cell{Topo: t, Load: l, Fault: f, Router: r})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: spec %s: no compatible (topo, load) pairs", s.Name)
	}
	return cells, nil
}

// Fingerprint hashes the spec's canonical JSON; checkpoints and
// documents carry it so cells are never resumed into a different grid.
func (s *Spec) Fingerprint() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: fingerprint: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// mix64 is the SplitMix64 finalizer (same mixer as sim's arbitration
// RNG), used to turn cell keys into well-spread seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// cellSeed derives the cell's trial base seed from its key and the
// spec's BaseSeed, masked to 62 bits so BaseSeed+Trials can never trip
// mc.Run's overflow guard.
func (s *Spec) cellSeed(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(mix64(h.Sum64()^uint64(s.BaseSeed)*0x9e3779b97f4a7c15) & (1<<62 - 1))
}

// topoSpec is a parsed topology axis member.
type topoSpec struct {
	kind string
	arg  int
}

func parseTopoSpec(spec string) (topoSpec, error) {
	kind, argStr, ok := strings.Cut(spec, ":")
	if !ok {
		return topoSpec{}, fmt.Errorf("campaign: topology spec %q: want kind:arg", spec)
	}
	arg, err := strconv.Atoi(argStr)
	if err != nil || arg < 1 {
		return topoSpec{}, fmt.Errorf("campaign: topology spec %q: bad argument", spec)
	}
	switch kind {
	case "butterfly", "mesh", "hypercube", "random":
		return topoSpec{kind: kind, arg: arg}, nil
	}
	return topoSpec{}, fmt.Errorf("campaign: unknown topology kind %q", kind)
}

// buildTopo constructs the network; rng feeds only the random kind.
func buildTopo(ts topoSpec, rng *rand.Rand) (*graph.Leveled, error) {
	switch ts.kind {
	case "butterfly":
		return topo.Butterfly(ts.arg)
	case "mesh":
		return topo.Mesh(ts.arg, ts.arg, topo.CornerNW)
	case "hypercube":
		return topo.Hypercube(ts.arg)
	case "random":
		return topo.Random(rng, ts.arg, 3, 6, 0.4)
	}
	return nil, fmt.Errorf("campaign: unknown topology kind %q", ts.kind)
}

func checkLoadSpec(spec string) error {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "fullthroughput", "transpose":
		if arg != "" {
			return fmt.Errorf("campaign: load spec %q takes no argument", spec)
		}
		return nil
	case "hotspot":
		nStr, sStr, ok := strings.Cut(arg, "x")
		if !ok {
			return fmt.Errorf("campaign: load spec %q: want hotspot:NxS", spec)
		}
		n, err1 := strconv.Atoi(nStr)
		s, err2 := strconv.Atoi(sStr)
		if err1 != nil || err2 != nil || n < 1 || s < 1 {
			return fmt.Errorf("campaign: load spec %q: bad counts", spec)
		}
		return nil
	case "random":
		d, err := strconv.ParseFloat(arg, 64)
		if err != nil || d <= 0 || d > 1 {
			return fmt.Errorf("campaign: load spec %q: density must be in (0,1]", spec)
		}
		return nil
	}
	return fmt.Errorf("campaign: unknown load kind %q", kind)
}

// loadCompatible reports whether the load can be generated on the
// topology kind (transpose needs a butterfly with even dimension).
func loadCompatible(ts topoSpec, load string) bool {
	if strings.HasPrefix(load, "transpose") {
		return ts.kind == "butterfly" && ts.arg%2 == 0
	}
	return true
}

// buildLoad generates the problem on g.
func buildLoad(spec string, ts topoSpec, g *graph.Leveled, rng *rand.Rand) (*workload.Problem, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "fullthroughput":
		return workload.FullThroughput(g, rng)
	case "transpose":
		return workload.ButterflyTranspose(g, ts.arg)
	case "hotspot":
		nStr, sStr, _ := strings.Cut(arg, "x")
		n, _ := strconv.Atoi(nStr)
		s, _ := strconv.Atoi(sStr)
		return workload.HotSpot(g, rng, n, s)
	case "random":
		d, _ := strconv.ParseFloat(arg, 64)
		return workload.Random(g, rng, d)
	}
	return nil, fmt.Errorf("campaign: unknown load kind %q", kind)
}

// buildProblem deterministically constructs the cell's problem
// instance: the generator RNG is a pure function of (BaseSeed, topo,
// load), shared across the fault and router axes so those compare on
// the identical instance.
func (s *Spec) buildProblem(c Cell) (*workload.Problem, error) {
	ts, err := parseTopoSpec(c.Topo)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.cellSeed(c.Topo + "/" + c.Load)))
	g, err := buildTopo(ts, rng)
	if err != nil {
		return nil, err
	}
	return buildLoad(c.Load, ts, g, rng)
}

// routerFactory maps a router axis member to an engine router factory;
// nil factory means the frame algorithm (which runs through core.Run,
// not a plain engine router).
func routerFactory(name string) (func() sim.Router, error) {
	switch name {
	case "frame":
		return nil, nil
	case "greedy-hp":
		return func() sim.Router { return baselines.NewGreedy() }, nil
	case "greedy-ftg":
		return func() sim.Router { return baselines.NewFarthestToGo() }, nil
	case "greedy-oldest":
		return func() sim.Router { return baselines.NewOldestFirst() }, nil
	case "rand-greedy-hp":
		return func() sim.Router { return baselines.NewRandGreedy(0.05) }, nil
	}
	return nil, fmt.Errorf("campaign: unknown router %q (store-and-forward baselines ignore faults and are not campaignable)", name)
}

// cellParams are the frame parameters used for campaign cells: the
// quick practical shape (identical to the bench suite's scale-1
// configuration), keeping CI grids fast while preserving the frame
// structure the fit measures.
func cellParams(p *workload.Problem) core.Params {
	return core.ParamsPractical(p.C, p.L(), p.N(), core.PracticalConfig{
		SetCongestion: 4,
		FrameSlack:    3,
		RoundFactor:   3,
	})
}

// baselineBudget is the step budget for baseline-router cells (frame
// cells derive theirs from the schedule): generous enough that healthy
// greedy runs always finish, so budget exhaustion measures faults, not
// stinginess. Same shape as the bench suite's greedy budget.
func baselineBudget(p *workload.Problem) int {
	b := 200 * (p.C + p.D + p.L()) * (1 + p.N()/16)
	if b < 100000 {
		b = 100000
	}
	return b
}

// Smoke is the CI grid: small butterfly and mesh instances, two load
// shapes, a fault-free and a flapping column, frame vs greedy — 16
// cells that run in seconds yet exercise every moving part (frame
// schedule, baseline budget, fault drops, bootstrap intervals).
func Smoke() *Spec {
	return &Spec{
		Name:     "smoke",
		Topos:    []string{"butterfly:4", "mesh:4"},
		Loads:    []string{"hotspot:12x2", "random:0.5"},
		Faults:   []string{"", "flap:period=40,down=4,rate=0.2"},
		Routers:  []string{"frame", "greedy-hp"},
		Trials:   6,
		BaseSeed: 1,
	}
}

// Full is the offline grid: the sizes EXPERIMENTS.md quotes, three
// fault columns and the full hot-potato router family. Not run in CI.
func Full() *Spec {
	return &Spec{
		Name:     "full",
		Topos:    []string{"butterfly:6", "mesh:8", "hypercube:4", "random:24"},
		Loads:    []string{"hotspot:48x2", "random:0.5", "fullthroughput", "transpose"},
		Faults:   []string{"", "flap:period=50,down=5,rate=0.2", "ge:down=0.05,burst=4"},
		Routers:  []string{"frame", "greedy-hp", "greedy-ftg", "rand-greedy-hp"},
		Trials:   32,
		BaseSeed: 1,
	}
}

// Grid resolves a named grid.
func Grid(name string) (*Spec, error) {
	switch name {
	case "smoke":
		return Smoke(), nil
	case "full":
		return Full(), nil
	}
	return nil, fmt.Errorf("campaign: unknown grid %q (want smoke or full)", name)
}
