package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hotpotato/internal/persist"
)

// docBytes canonicalizes a document for byte-identity comparison.
func docBytes(t *testing.T, d *Document) []byte {
	t.Helper()
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runToCompletion runs the spec with no checkpoint as the reference.
func runToCompletion(t *testing.T, spec *Spec) *Document {
	t.Helper()
	doc, err := Run(spec, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestResumeAfterStopAfterIsByteIdentical is the satellite contract:
// kill a campaign mid-grid, resume it from the checkpoint, and the
// final document must be byte-identical to an uninterrupted run —
// including bootstrap interval endpoints.
func TestResumeAfterStopAfterIsByteIdentical(t *testing.T) {
	// An 8-cell grid so StopAfter 2 always lands before the feeder has
	// handed out the whole grid (a stop arriving after that completes
	// the campaign instead — the documented drain semantic).
	spec := tinySpec()
	spec.Topos = []string{"butterfly:3", "mesh:3"}
	want := docBytes(t, runToCompletion(t, spec))

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	_, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt, StopAfter: 2})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("StopAfter run returned %v, want ErrStopped", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	_, cells, err := persist.ReadCampaignCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("checkpoint unreadable after interrupt: %v", err)
	}
	if len(cells) < 2 || len(cells) >= 8 {
		t.Fatalf("interrupt checkpointed %d cells, want 2..7 (in-flight cells drain)", len(cells))
	}

	doc, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := docBytes(t, doc); !bytes.Equal(got, want) {
		t.Fatalf("resumed document differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
}

// TestResumeAfterChaosStopIsByteIdentical kills the campaign at an
// arbitrary wall-clock moment via the Stop channel — the chaos version
// of the interrupt. Whatever subset completed, the resumed document
// must be byte-identical to the uninterrupted run. Repeating with
// different delays varies the kill point; under -race this also
// exercises the drain path for races.
func TestResumeAfterChaosStopIsByteIdentical(t *testing.T) {
	spec := tinySpec()
	spec.Topos = []string{"butterfly:3", "mesh:3"} // 8 cells: room to interrupt
	want := docBytes(t, runToCompletion(t, spec))

	for _, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
		stop := make(chan struct{})
		go func() {
			time.Sleep(delay)
			close(stop)
		}()
		_, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt, Stop: stop})
		if err != nil && !errors.Is(err, ErrStopped) {
			t.Fatalf("delay %v: %v", delay, err)
		}
		// err == nil means the stop landed after the grid drained — the
		// checkpointed-complete case; resume must still reproduce.
		doc, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
		if err != nil {
			t.Fatalf("delay %v: resume: %v", delay, err)
		}
		if got := docBytes(t, doc); !bytes.Equal(got, want) {
			t.Fatalf("delay %v: resumed document differs from uninterrupted run", delay)
		}
	}
}

// TestResumeSkipsCompletedCells: a second run over a complete
// checkpoint executes nothing and still reproduces the document.
func TestResumeSkipsCompletedCells(t *testing.T) {
	spec := tinySpec()
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	doc1, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	doc2, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt,
		Logf: func(format string, args ...any) { ran++ }})
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("fully resumed run rewrote the checkpoint")
	}
	if !bytes.Equal(docBytes(t, doc1), docBytes(t, doc2)) {
		t.Fatal("full resume changed the document")
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint from a different
// grid must be refused, not silently mixed in.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := Run(tinySpec(), RunConfig{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	other := tinySpec()
	other.BaseSeed = 99
	if _, err := Run(other, RunConfig{Workers: 2, Checkpoint: ckpt}); err == nil {
		t.Fatal("checkpoint accepted under a different spec fingerprint")
	}
}

// TestResumeToleratesTornTail: simulate a kill mid-append by
// truncating the checkpoint inside its last line; the resume must drop
// that cell, re-run it, and still converge byte-identically. The
// resumed checkpoint must itself stay parseable — the torn fragment is
// truncated away, not glued to the re-run cell's appended line — so a
// second resume over it works too.
func TestResumeToleratesTornTail(t *testing.T) {
	spec := tinySpec()
	want := docBytes(t, runToCompletion(t, spec))

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if got := docBytes(t, doc); !bytes.Equal(got, want) {
		t.Fatal("torn-tail resume differs from uninterrupted run")
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, cells, err := persist.ReadCampaignCheckpoint(bytes.NewReader(after)); err != nil {
		t.Fatalf("checkpoint corrupt after torn-tail resume: %v", err)
	} else if len(cells) != 4 {
		t.Fatalf("checkpoint holds %d cells after torn-tail resume, want 4", len(cells))
	}
	doc, err = Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("second resume over repaired checkpoint: %v", err)
	}
	if got := docBytes(t, doc); !bytes.Equal(got, want) {
		t.Fatal("second torn-tail resume differs from uninterrupted run")
	}
}

// TestResumeStartsOverTornHeader: a checkpoint killed during its very
// first write holds only a partial header line — no complete lines at
// all. Resume must start the file over, not fail.
func TestResumeStartsOverTornHeader(t *testing.T) {
	spec := tinySpec()
	want := docBytes(t, runToCompletion(t, spec))

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(ckpt, []byte(`{"version":1,"kind":"campai`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := Run(spec, RunConfig{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("resume over torn header: %v", err)
	}
	if got := docBytes(t, doc); !bytes.Equal(got, want) {
		t.Fatal("torn-header restart differs from uninterrupted run")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, cells, err := persist.ReadCampaignCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("restarted checkpoint unreadable: %v", err)
	} else if len(cells) != 4 {
		t.Fatalf("restarted checkpoint holds %d cells, want 4", len(cells))
	}
}

// failAfterFirstWrite errors every Write after the first — a stream
// sink that dies mid-campaign.
type failAfterFirstWrite struct{ writes int }

func (w *failAfterFirstWrite) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("stream sink full")
	}
	return len(p), nil
}

// TestStopAfterThenErrorDoesNotPanic: StopAfter fires first (closing
// the feed), then a drained in-flight result hits the stream-error
// branch — which must not close the feed a second time. Workers equal
// to the cell count so every cell is in flight before the first result
// drains, making the post-stop error deterministic.
func TestStopAfterThenErrorDoesNotPanic(t *testing.T) {
	spec := tinySpec()
	spec.Topos = []string{"butterfly:3", "mesh:3"} // 8 cells
	for attempt := 0; attempt < 5; attempt++ {
		_, err := Run(spec, RunConfig{Workers: 8, StopAfter: 1, Stream: &failAfterFirstWrite{}})
		if err == nil {
			t.Fatal("stream error after StopAfter was swallowed")
		}
		if !errors.Is(err, ErrStopped) {
			return // the stream error surfaced, no double-close panic
		}
		// ErrStopped means no in-flight result drained after the stop —
		// the race the test needs didn't engage this attempt; retry.
	}
	t.Fatal("no attempt drained an erroring in-flight result after StopAfter")
}

// TestRunStreamEmitsEveryNewCell: the CSV stream carries one row per
// newly executed cell plus the header.
func TestRunStreamEmitsEveryNewCell(t *testing.T) {
	spec := tinySpec()
	var buf bytes.Buffer
	if _, err := Run(spec, RunConfig{Workers: 2, Stream: &buf}); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	cells, _ := spec.Cells()
	if lines != len(cells)+1 {
		t.Fatalf("stream has %d lines, want %d cells + header", lines, len(cells))
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("key,topo,load,fault,router")) {
		t.Fatalf("stream header missing: %q", buf.Bytes()[:40])
	}
}
