package workload

import (
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/topo"
)

func must(t *testing.T) func(*Problem, error) *Problem {
	t.Helper()
	return func(p *Problem, err error) *Problem {
		t.Helper()
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		return p
	}
}

func mustG(t *testing.T) func(*graph.Leveled, error) *graph.Leveled {
	t.Helper()
	return func(g *graph.Leveled, err error) *graph.Leveled {
		t.Helper()
		if err != nil {
			t.Fatalf("topo: %v", err)
		}
		return g
	}
}

func TestRandomWorkload(t *testing.T) {
	g := mustG(t)(topo.Butterfly(4))
	rng := rand.New(rand.NewSource(11))
	p := must(t)(Random(g, rng, 0.5))
	if p.N() == 0 {
		t.Fatal("no packets")
	}
	if p.C < 1 || p.D < 1 {
		t.Errorf("C=%d D=%d", p.C, p.D)
	}
	if p.D > g.Depth() {
		t.Errorf("D=%d exceeds L=%d", p.D, g.Depth())
	}
	if p.L() != g.Depth() {
		t.Errorf("L() = %d", p.L())
	}
	if !strings.Contains(p.String(), "random") {
		t.Errorf("String() = %q", p.String())
	}
	if _, err := Random(g, rng, 0); err == nil {
		t.Error("density 0 accepted")
	}
	if _, err := Random(g, rng, 1.5); err == nil {
		t.Error("density > 1 accepted")
	}
}

func TestRandomManyToOneConstraint(t *testing.T) {
	g := mustG(t)(topo.Mesh(5, 5, topo.CornerNW))
	rng := rand.New(rand.NewSource(13))
	p := must(t)(Random(g, rng, 1.0))
	if err := p.Set.CheckOnePacketPerSource(); err != nil {
		t.Errorf("many-to-one violated: %v", err)
	}
}

func TestHotSpot(t *testing.T) {
	g := mustG(t)(topo.Butterfly(4))
	rng := rand.New(rand.NewSource(17))
	p := must(t)(HotSpot(g, rng, 30, 2))
	if p.N() != 30 {
		t.Errorf("N = %d, want 30", p.N())
	}
	// All destinations at top level, at most 2 distinct.
	dsts := map[graph.NodeID]bool{}
	for _, d := range p.Set.Destinations() {
		dsts[d] = true
		if g.Node(d).Level != g.Depth() {
			t.Errorf("destination %d not at top level", d)
		}
	}
	if len(dsts) > 2 {
		t.Errorf("%d distinct destinations, want <= 2", len(dsts))
	}
	// Fan-in of 30 packets into <=2 top nodes with in-degree 2 forces
	// last-edge congestion >= ceil(30/4).
	if p.C < 8 {
		t.Errorf("hotspot C = %d, want >= 8", p.C)
	}
	if _, err := HotSpot(g, rng, 0, 1); err == nil {
		t.Error("count 0 accepted")
	}
}

func TestHotSpotClampsCount(t *testing.T) {
	g := mustG(t)(topo.Linear(4))
	rng := rand.New(rand.NewSource(19))
	p := must(t)(HotSpot(g, rng, 100, 5))
	if p.N() > 3 {
		t.Errorf("N = %d on a 4-node line, want <= 3", p.N())
	}
}

func TestFullThroughput(t *testing.T) {
	g := mustG(t)(topo.Butterfly(3))
	rng := rand.New(rand.NewSource(23))
	p := must(t)(FullThroughput(g, rng))
	if p.N() != 8 {
		t.Errorf("N = %d, want 8", p.N())
	}
	for _, pp := range p.Set.Paths {
		if len(pp) != 3 {
			t.Errorf("path length %d, want 3", len(pp))
		}
	}
}

func TestButterflyTranspose(t *testing.T) {
	k := 4
	g := mustG(t)(topo.Butterfly(k))
	p := must(t)(ButterflyTranspose(g, k))
	if p.N() != 1<<k {
		t.Errorf("N = %d", p.N())
	}
	if p.D != k {
		t.Errorf("D = %d, want %d", p.D, k)
	}
	// Transpose concentrates paths: C must exceed 1.
	if p.C < 2 {
		t.Errorf("C = %d, want >= 2", p.C)
	}
	if _, err := ButterflyTranspose(g, 3); err == nil {
		t.Error("odd k accepted")
	}
}

func TestButterflyBitReversal(t *testing.T) {
	k := 4
	g := mustG(t)(topo.Butterfly(k))
	p := must(t)(ButterflyBitReversal(g, k))
	if p.N() != 1<<k {
		t.Errorf("N = %d", p.N())
	}
	// Bit reversal on bit-fixing paths has edge congestion
	// 2^(k/2-1) = sqrt(rows)/2 (node congestion sqrt(rows), split over
	// the node's two in-edges).
	if want := 1 << (k/2 - 1); p.C != want {
		t.Errorf("C = %d, want %d", p.C, want)
	}
	// And the congestion grows with k as sqrt(rows).
	g6 := mustG(t)(topo.Butterfly(6))
	p6 := must(t)(ButterflyBitReversal(g6, 6))
	if p6.C <= p.C {
		t.Errorf("C(k=6) = %d not > C(k=4) = %d", p6.C, p.C)
	}
	// Fixed points (palindromic rows) keep length k paths too.
	for _, pp := range p.Set.Paths {
		if len(pp) != k {
			t.Errorf("path length %d, want %d", len(pp), k)
		}
	}
}

func TestMeshHard(t *testing.T) {
	n := 6
	p := must(t)(MeshHard(n))
	if p.N() != n {
		t.Errorf("N = %d, want %d", p.N(), n)
	}
	if p.C != n {
		t.Errorf("C = %d, want %d", p.C, n)
	}
	if p.D != 2*(n-1) {
		t.Errorf("D = %d, want %d", p.D, 2*(n-1))
	}
	if p.L() != 2*(n-1) {
		t.Errorf("L = %d, want %d", p.L(), 2*(n-1))
	}
	if _, err := MeshHard(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestSingleFile(t *testing.T) {
	g := mustG(t)(topo.Linear(6))
	p := must(t)(SingleFile(g, 3))
	if p.N() != 3 {
		t.Errorf("N = %d", p.N())
	}
	if p.C != 3 {
		t.Errorf("C = %d, want 3 (all paths share the last edge)", p.C)
	}
	if p.D != 5 {
		t.Errorf("D = %d, want 5", p.D)
	}
	if _, err := SingleFile(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SingleFile(g, 99); err == nil {
		t.Error("k too large accepted")
	}
	wide := mustG(t)(topo.Ladder(3))
	if _, err := SingleFile(wide, 1); err == nil {
		t.Error("non-linear network accepted")
	}
}

// Property: every generator yields a structurally valid many-to-one
// problem for arbitrary seeds.
func TestGeneratorsValidQuick(t *testing.T) {
	gens := []struct {
		name string
		f    func(seed int64) (*Problem, error)
	}{
		{"random", func(seed int64) (*Problem, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.Random(rng, 12+int(seed%8), 2, 5, 0.4)
			if err != nil {
				return nil, err
			}
			return Random(g, rng, 0.4)
		}},
		{"hotspot", func(seed int64) (*Problem, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.Butterfly(4 + int(seed%2))
			if err != nil {
				return nil, err
			}
			return HotSpot(g, rng, 10+int(seed%20), 1+int(seed%3))
		}},
		{"fullthroughput", func(seed int64) (*Problem, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.Omega(4)
			if err != nil {
				return nil, err
			}
			return FullThroughput(g, rng)
		}},
		{"concentrator", func(seed int64) (*Problem, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.Butterfly(5)
			if err != nil {
				return nil, err
			}
			return Concentrator(g, rng, 4+int(seed%8))
		}},
		{"waves", func(seed int64) (*Problem, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.Random(rng, 16, 3, 5, 0.4)
			if err != nil {
				return nil, err
			}
			wp, err := Waves(g, rng, 2, 0.2)
			if err != nil {
				return nil, err
			}
			return wp.Problem, nil
		}},
	}
	for _, gen := range gens {
		for seed := int64(0); seed < 8; seed++ {
			p, err := gen.f(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", gen.name, seed, err)
			}
			if err := p.Set.Validate(); err != nil {
				t.Errorf("%s seed %d: invalid paths: %v", gen.name, seed, err)
			}
			if err := p.Set.CheckOnePacketPerSource(); err != nil {
				t.Errorf("%s seed %d: %v", gen.name, seed, err)
			}
			if p.C != p.Set.Congestion() || p.D != p.Set.Dilation() {
				t.Errorf("%s seed %d: cached C/D stale", gen.name, seed)
			}
			if p.D > p.L() {
				t.Errorf("%s seed %d: D %d exceeds L %d", gen.name, seed, p.D, p.L())
			}
		}
	}
}
