package workload

import (
	"math/rand"
	"testing"

	"hotpotato/internal/topo"
)

func TestWavesBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := mustG(t)(topo.Random(rng, 20, 3, 5, 0.4))
	wp, err := Waves(g, rng, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Waves != 3 {
		t.Errorf("Waves = %d", wp.Waves)
	}
	if len(wp.WaveOf) != wp.N() {
		t.Fatalf("WaveOf length %d, N %d", len(wp.WaveOf), wp.N())
	}
	// Wave indices in range; every wave nonempty.
	seen := make([]int, 3)
	for _, w := range wp.WaveOf {
		if w < 0 || w >= 3 {
			t.Fatalf("wave index %d out of range", w)
		}
		seen[w]++
	}
	for k, n := range seen {
		if n == 0 {
			t.Errorf("wave %d empty", k)
		}
	}
	// Many-to-one across all waves.
	if err := wp.Set.CheckOnePacketPerSource(); err != nil {
		t.Errorf("source reuse across waves: %v", err)
	}
	// Per-wave congestion never exceeds total.
	for k, c := range wp.PerWaveC {
		if c > wp.C || c < 1 {
			t.Errorf("wave %d congestion %d vs total %d", k, c, wp.C)
		}
	}
}

func TestWavesSetAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := mustG(t)(topo.Random(rng, 16, 3, 5, 0.4))
	wp, err := Waves(g, rng, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	assign := wp.SetAssignment(rng, 3)
	if len(assign) != wp.N() {
		t.Fatalf("assignment length %d", len(assign))
	}
	for i, s := range assign {
		lo := int32(wp.WaveOf[i] * 3)
		if s < lo || s >= lo+3 {
			t.Errorf("packet %d (wave %d) assigned set %d outside block [%d,%d)",
				i, wp.WaveOf[i], s, lo, lo+3)
		}
	}
}

func TestWavesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := mustG(t)(topo.Linear(4))
	if _, err := Waves(g, rng, 0, 0.5); err == nil {
		t.Error("waves=0 accepted")
	}
	if _, err := Waves(g, rng, 1, 0); err == nil {
		t.Error("density=0 accepted")
	}
	if _, err := Waves(g, rng, 1, 2); err == nil {
		t.Error("density=2 accepted")
	}
	// More waves than eligible sources.
	if _, err := Waves(g, rng, 50, 0.9); err == nil {
		t.Error("oversubscribed waves accepted")
	}
}
