package workload

import (
	"math/rand"
	"testing"

	"hotpotato/internal/topo"
)

func TestConcentratorControlsCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := mustG(t)(topo.Butterfly(6))
	// A level-3 node of butterfly(6) has 8+4+2 = 14 strict ancestors,
	// so up to c=14 the congestion is exactly controlled; beyond that
	// the generator clamps.
	for _, c := range []int{2, 8, 14} {
		p := must(t)(Concentrator(g, rng, c))
		if p.C < c {
			t.Errorf("requested C>=%d, got %d", c, p.C)
		}
		if p.N() != c {
			t.Errorf("N = %d, want %d", p.N(), c)
		}
		if err := p.Set.CheckOnePacketPerSource(); err != nil {
			t.Errorf("source reuse: %v", err)
		}
	}
	clamped := must(t)(Concentrator(g, rng, 100))
	if clamped.N() != 14 {
		t.Errorf("clamped N = %d, want 14", clamped.N())
	}
	if _, err := Concentrator(g, rng, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestConcentratorClampsToSources(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := mustG(t)(topo.Linear(8))
	// Only mid/2... a linear array has exactly (mid) upstream sources.
	p := must(t)(Concentrator(g, rng, 100))
	if p.N() > 8 {
		t.Errorf("N = %d on a tiny line", p.N())
	}
	if p.C != p.N() {
		t.Errorf("line concentrator: C=%d N=%d", p.C, p.N())
	}
}

func TestLongThin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := mustG(t)(topo.Butterfly(6))
	p := must(t)(LongThin(g, rng, 3))
	if p.D != g.Depth() {
		t.Errorf("D = %d, want full depth %d", p.D, g.Depth())
	}
	if p.C < 2 {
		t.Errorf("C = %d, want >= 2 at the pinch", p.C)
	}
	if _, err := LongThin(g, rng, 0); err == nil {
		t.Error("c=0 accepted")
	}
}

func TestAllCorners(t *testing.T) {
	p := must(t)(AllCorners(8))
	if p.N() != 4 {
		t.Errorf("N = %d", p.N())
	}
	if err := p.Set.Validate(); err != nil {
		t.Errorf("paths invalid: %v", err)
	}
	// Deterministic: two builds agree exactly.
	p2 := must(t)(AllCorners(8))
	if p.C != p2.C || p.D != p2.D {
		t.Error("AllCorners not deterministic")
	}
	if _, err := AllCorners(3); err == nil {
		t.Error("n=3 accepted")
	}
}

func TestBenesValiant(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k := 4
	g := mustG(t)(topo.Benes(k))
	p := must(t)(BenesValiant(g, rng, k))
	if p.N() != 1<<k {
		t.Errorf("N = %d", p.N())
	}
	if p.D != 2*k {
		t.Errorf("D = %d, want %d", p.D, 2*k)
	}
	// Valiant routing keeps congestion small on the rearrangeable
	// Benes network.
	if p.C > k {
		t.Errorf("C = %d > k = %d (unlikely under Valiant routing)", p.C, k)
	}
	// Wrong network rejected.
	bf := mustG(t)(topo.Butterfly(4))
	if _, err := BenesValiant(bf, rng, 4); err == nil {
		t.Error("butterfly accepted as Benes")
	}
}
