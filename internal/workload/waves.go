package workload

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
)

// WaveProblem is a Problem whose packets arrive in successive waves —
// the online/dynamic extension of the paper's one-shot setting. WaveOf
// records each packet's wave index; routed with
// core.NewFrameWithSets, wave k is mapped onto frontier-set block k so
// the batches pipeline through the network back to back.
type WaveProblem struct {
	*Problem
	// WaveOf[i] is the wave index of packet i.
	WaveOf []int
	// Waves is the number of waves.
	Waves int
	// PerWaveC[k] is the congestion of wave k's paths alone.
	PerWaveC []int
}

// SetAssignment maps packets to frontier sets so that wave k occupies
// sets [k*setsPerWave, (k+1)*setsPerWave), assigning uniformly within
// the block. The total set count is Waves*setsPerWave.
func (w *WaveProblem) SetAssignment(rng *rand.Rand, setsPerWave int) []int32 {
	out := make([]int32, w.N())
	for i, wave := range w.WaveOf {
		out[i] = int32(wave*setsPerWave + rng.Intn(setsPerWave))
	}
	return out
}

// Waves builds a wave workload: `waves` batches of random many-to-one
// traffic on the same network, with globally distinct sources (the
// paper's one-packet-per-node restriction applies across the whole
// run). density is the per-wave fraction of eligible nodes sourcing a
// packet; it is capped so that all waves fit.
func Waves(g *graph.Leveled, rng *rand.Rand, waves int, density float64) (*WaveProblem, error) {
	if waves < 1 {
		return nil, fmt.Errorf("workload: Waves needs waves >= 1, got %d", waves)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("workload: density must be in (0,1], got %g", density)
	}
	// Eligible sources: below top level with at least one up edge.
	var eligible []graph.NodeID
	for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Level < g.Depth() && len(n.Up) > 0 {
			eligible = append(eligible, id)
		}
	}
	perWave := int(density * float64(len(eligible)))
	if perWave < 1 {
		perWave = 1
	}
	if perWave*waves > len(eligible) {
		perWave = len(eligible) / waves
		if perWave < 1 {
			return nil, fmt.Errorf("workload: %d waves cannot fit on %d eligible sources", waves, len(eligible))
		}
	}
	perm := rng.Perm(len(eligible))
	var reqs []paths.Request
	var waveOf []int
	idx := 0
	for k := 0; k < waves; k++ {
		placed := 0
		for placed < perWave && idx < len(perm) {
			src := eligible[perm[idx]]
			idx++
			reach := g.ForwardReachableFrom(src)
			var cands []graph.NodeID
			for w := graph.NodeID(0); int(w) < g.NumNodes(); w++ {
				if w != src && reach[w] {
					cands = append(cands, w)
				}
			}
			if len(cands) == 0 {
				continue
			}
			reqs = append(reqs, paths.Request{Src: src, Dst: cands[rng.Intn(len(cands))]})
			waveOf = append(waveOf, k)
			placed++
		}
		if placed == 0 {
			return nil, fmt.Errorf("workload: wave %d placed no packets", k)
		}
	}
	set, err := paths.SelectRandom(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	base, err := finish(fmt.Sprintf("waves(%d,d=%.2f)", waves, density), g, set)
	if err != nil {
		return nil, err
	}
	wp := &WaveProblem{Problem: base, WaveOf: waveOf, Waves: waves}
	wp.PerWaveC = make([]int, waves)
	loads := make([]int, g.NumEdges())
	for k := 0; k < waves; k++ {
		for i := range loads {
			loads[i] = 0
		}
		m := 0
		for i, p := range set.Paths {
			if waveOf[i] != k {
				continue
			}
			for _, e := range p {
				loads[e]++
				if loads[e] > m {
					m = loads[e]
				}
			}
		}
		wp.PerWaveC[k] = m
	}
	return wp, nil
}
