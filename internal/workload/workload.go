// Package workload generates routing problems — sets of packets with
// preselected forward paths — over leveled networks. It covers the
// paper's problem class (many-to-one: each node sources at most one
// packet, destinations arbitrary) with generators of controlled
// congestion C and dilation D.
package workload

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/topo"
)

// Problem is a complete routing problem: a network plus a preselected
// path per packet.
type Problem struct {
	Name string
	G    *graph.Leveled
	Set  *paths.PathSet
	// C and D are cached congestion and dilation of Set.
	C, D int
}

// N returns the number of packets.
func (p *Problem) N() int { return len(p.Set.Paths) }

// L returns the network depth.
func (p *Problem) L() int { return p.G.Depth() }

// finish computes cached metrics and validates the problem.
func finish(name string, g *graph.Leveled, set *paths.PathSet) (*Problem, error) {
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	if err := set.CheckOnePacketPerSource(); err != nil {
		return nil, fmt.Errorf("workload %s: %w", name, err)
	}
	return &Problem{
		Name: name,
		G:    g,
		Set:  set,
		C:    set.Congestion(),
		D:    set.Dilation(),
	}, nil
}

// String summarizes the problem.
func (p *Problem) String() string {
	return fmt.Sprintf("%s on %s: N=%d C=%d D=%d L=%d", p.Name, p.G.Name(), p.N(), p.C, p.D, p.L())
}

// Random draws a many-to-one problem: each node at a level below the
// top is independently a source with probability density (clamped so at
// most one packet per node), destination drawn uniformly among
// forward-reachable nodes at strictly higher levels. Paths are sampled
// uniformly at random among forward paths.
func Random(g *graph.Leveled, rng *rand.Rand, density float64) (*Problem, error) {
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("workload: density must be in (0,1], got %g", density)
	}
	var reqs []paths.Request
	for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Level >= g.Depth() || len(n.Up) == 0 {
			continue
		}
		if rng.Float64() >= density {
			continue
		}
		reach := g.ForwardReachableFrom(id)
		var cands []graph.NodeID
		for w := graph.NodeID(0); int(w) < g.NumNodes(); w++ {
			if w != id && reach[w] {
				cands = append(cands, w)
			}
		}
		if len(cands) == 0 {
			continue
		}
		reqs = append(reqs, paths.Request{Src: id, Dst: cands[rng.Intn(len(cands))]})
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("workload: Random produced no packets (density %g too low?)", density)
	}
	set, err := paths.SelectRandom(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return finish(fmt.Sprintf("random(d=%.2f)", density), g, set)
}

// HotSpot routes `count` packets from distinct random sources to a
// small set of `spots` destination nodes at the top levels, driving
// congestion up while keeping D near L. This is the workhorse for
// sweeping C at fixed L (experiment E1).
func HotSpot(g *graph.Leveled, rng *rand.Rand, count, spots int) (*Problem, error) {
	if count < 1 || spots < 1 {
		return nil, fmt.Errorf("workload: HotSpot needs count,spots >= 1, got %d,%d", count, spots)
	}
	top := g.Level(g.Depth())
	if spots > len(top) {
		spots = len(top)
	}
	spotIDs := make([]graph.NodeID, spots)
	perm := rng.Perm(len(top))
	for i := 0; i < spots; i++ {
		spotIDs[i] = top[perm[i]]
	}
	// Collect candidate sources: nodes that can reach at least one spot.
	reach := make([][]bool, spots)
	for i, s := range spotIDs {
		reach[i] = g.Reachable(s)
	}
	var cands []graph.NodeID
	for id := graph.NodeID(0); int(id) < g.NumNodes(); id++ {
		if g.Node(id).Level == g.Depth() {
			continue
		}
		for i := range spotIDs {
			if reach[i][id] {
				cands = append(cands, id)
				break
			}
		}
	}
	if count > len(cands) {
		count = len(cands)
	}
	order := rng.Perm(len(cands))
	reqs := make([]paths.Request, 0, count)
	for _, ci := range order {
		if len(reqs) == count {
			break
		}
		src := cands[ci]
		// Pick a random reachable spot for this source.
		var ok []graph.NodeID
		for i, s := range spotIDs {
			if reach[i][src] {
				ok = append(ok, s)
			}
		}
		reqs = append(reqs, paths.Request{Src: src, Dst: ok[rng.Intn(len(ok))]})
	}
	set, err := paths.SelectRandom(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return finish(fmt.Sprintf("hotspot(n=%d,s=%d)", len(reqs), spots), g, set)
}

// FullThroughput sends one packet from every level-0 node to a uniform
// random top-level node (a permutation-flavored workload on networks
// like the butterfly where |level 0| == |level L|).
func FullThroughput(g *graph.Leveled, rng *rand.Rand) (*Problem, error) {
	bottom, top := g.Level(0), g.Level(g.Depth())
	perm := rng.Perm(len(top))
	reqs := make([]paths.Request, 0, len(bottom))
	for i, src := range bottom {
		dst := top[perm[i%len(top)]]
		reqs = append(reqs, paths.Request{Src: src, Dst: dst})
	}
	set, err := paths.SelectRandom(g, rng, reqs)
	if err != nil {
		return nil, err
	}
	return finish("fullthroughput", g, set)
}

// ButterflyTranspose routes, on a k-dimensional butterfly, one packet
// per row w at level 0 to row transpose(w) at level k, where transpose
// swaps the high and low halves of the bit word — a classic
// congestion-inducing permutation for bit-fixing paths.
func ButterflyTranspose(g *graph.Leveled, k int) (*Problem, error) {
	if k%2 != 0 {
		return nil, fmt.Errorf("workload: ButterflyTranspose needs even k, got %d", k)
	}
	rows := 1 << k
	half := k / 2
	ps := make([]graph.Path, 0, rows)
	for w := 0; w < rows; w++ {
		hi := w >> half
		lo := w & (1<<half - 1)
		dst := lo<<half | hi
		p, err := topo.ButterflyBitFixPath(g, k, w, dst)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish("bfly-transpose", g, set)
}

// ButterflyBitReversal routes row w to row reverse(w) with bit-fixing
// paths; the bit-reversal permutation is the canonical worst case for
// oblivious routing on the butterfly, with C = Θ(sqrt(rows)).
func ButterflyBitReversal(g *graph.Leveled, k int) (*Problem, error) {
	rows := 1 << k
	ps := make([]graph.Path, 0, rows)
	for w := 0; w < rows; w++ {
		dst := 0
		for b := 0; b < k; b++ {
			if w&(1<<b) != 0 {
				dst |= 1 << (k - 1 - b)
			}
		}
		p, err := topo.ButterflyBitFixPath(g, k, w, dst)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish("bfly-bitreversal", g, set)
}

// MeshHard builds the Section-5 application instance: an n x n mesh
// (CornerNW) with congestion and dilation Θ(n). Packets start at
// column 0 and end at column n-1, with each of the n rows sourcing one
// packet; all paths are routed through a single shared middle row,
// giving C = n on that row's edges and D <= 2n. This mirrors the
// C, D = Θ(n) path sets the paper cites from Leighton et al. [16].
func MeshHard(n int) (*Problem, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: MeshHard needs n >= 2, got %d", n)
	}
	g, err := topo.Mesh(n, n, topo.CornerNW)
	if err != nil {
		return nil, err
	}
	mid := n / 2
	ps := make([]graph.Path, 0, n)
	for r := 0; r < n; r++ {
		// Packet r: (r,0) right to (r,mid), down column mid to (n-1,mid),
		// right to (n-1,n-1). Every hop increases level(i,j)=i+j by one,
		// so the path is valid; the lower half of column mid carries all
		// n packets (C = Θ(n)) and the longest path has 2(n-1) edges.
		var p graph.Path
		cols := n
		for j := 0; j < mid; j++ {
			p = append(p, edgeOrPanic(g, topo.MeshNode(cols, r, j), topo.MeshNode(cols, r, j+1)))
		}
		for i := r; i < n-1; i++ {
			p = append(p, edgeOrPanic(g, topo.MeshNode(cols, i, mid), topo.MeshNode(cols, i+1, mid)))
		}
		for j := mid; j < n-1; j++ {
			p = append(p, edgeOrPanic(g, topo.MeshNode(cols, n-1, j), topo.MeshNode(cols, n-1, j+1)))
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish(fmt.Sprintf("mesh-hard(%d)", n), g, set)
}

func edgeOrPanic(g *graph.Leveled, u, w graph.NodeID) graph.EdgeID {
	e := g.EdgeBetween(u, w)
	if e == graph.NoEdge {
		panic(fmt.Sprintf("workload: missing mesh edge %d-%d", u, w))
	}
	return e
}

// SingleFile routes k packets down a linear array from staggered
// sources to the final node: C = D-ish worst case on the thinnest
// possible network. Useful for deterministic engine tests.
func SingleFile(g *graph.Leveled, k int) (*Problem, error) {
	if g.MaxLevelWidth() != 1 {
		return nil, fmt.Errorf("workload: SingleFile needs a linear array")
	}
	if k < 1 || k > g.Depth() {
		return nil, fmt.Errorf("workload: SingleFile needs 1 <= k <= %d, got %d", g.Depth(), k)
	}
	ps := make([]graph.Path, 0, k)
	for i := 0; i < k; i++ {
		var p graph.Path
		for l := i; l < g.Depth(); l++ {
			p = append(p, edgeOrPanic(g, g.Level(l)[0], g.Level(l + 1)[0]))
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish(fmt.Sprintf("singlefile(%d)", k), g, set)
}
