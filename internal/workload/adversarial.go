package workload

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/topo"
)

// Concentrator builds a workload with congestion at least c on a
// chosen bottleneck edge: c packets from distinct upstream sources
// whose paths all cross the middle-level edge with the richest
// upstream. This is the controlled-C instrument — C is guaranteed by
// construction, not measured after the fact.
func Concentrator(g *graph.Leveled, rng *rand.Rand, c int) (*Problem, error) {
	if c < 1 {
		return nil, fmt.Errorf("workload: Concentrator needs c >= 1, got %d", c)
	}
	mid := g.Depth() / 2
	// Choose the middle-level edge with the most forward-reachable
	// sources upstream of it.
	var best graph.EdgeID = graph.NoEdge
	bestSrcs := 0
	var bestList []graph.NodeID
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		ed := g.Edge(e)
		if g.Node(ed.From).Level != mid {
			continue
		}
		reach := g.Reachable(ed.From)
		var srcs []graph.NodeID
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if reach[v] && g.Node(v).Level < mid {
				srcs = append(srcs, v)
			}
		}
		if g.Node(ed.From).Level == 0 {
			srcs = append(srcs, ed.From)
		}
		if len(srcs) > bestSrcs {
			best, bestSrcs, bestList = e, len(srcs), srcs
		}
	}
	if best == graph.NoEdge || bestSrcs == 0 {
		return nil, fmt.Errorf("workload: no usable bottleneck edge at level %d", mid)
	}
	if c > bestSrcs {
		c = bestSrcs
	}
	ed := g.Edge(best)
	// Destinations: any node forward-reachable from the bottleneck's
	// head.
	fromHead := g.ForwardReachableFrom(ed.To)
	var dsts []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if fromHead[v] {
			dsts = append(dsts, v)
		}
	}
	perm := rng.Perm(len(bestList))
	ps := make([]graph.Path, 0, c)
	for i := 0; i < c; i++ {
		src := bestList[perm[i]]
		// Path: src -> ed.From (random forward), the bottleneck edge,
		// then ed.To -> random dst (random forward).
		var pre graph.Path
		if src != ed.From {
			p1, err := paths.RandomForwardPath(g, rng, src, ed.From)
			if err != nil {
				return nil, err
			}
			pre = p1
		}
		dst := dsts[rng.Intn(len(dsts))]
		var post graph.Path
		if dst != ed.To {
			p2, err := paths.RandomForwardPath(g, rng, ed.To, dst)
			if err != nil {
				return nil, err
			}
			post = p2
		}
		full := make(graph.Path, 0, len(pre)+1+len(post))
		full = append(full, pre...)
		full = append(full, best)
		full = append(full, post...)
		ps = append(ps, full)
	}
	set := paths.NewPathSet(g, ps)
	prob, err := finish(fmt.Sprintf("concentrator(c=%d)", c), g, set)
	if err != nil {
		return nil, err
	}
	if prob.C < c {
		return nil, fmt.Errorf("workload: concentrator achieved C=%d < requested %d", prob.C, c)
	}
	return prob, nil
}

// LongThin builds the worst D/C ratio instance: a single packet walking
// the full depth of the network plus c-1 short packets crossing its
// path's middle edge — D = L while C = c concentrates at one point.
func LongThin(g *graph.Leveled, rng *rand.Rand, c int) (*Problem, error) {
	if c < 1 {
		return nil, fmt.Errorf("workload: LongThin needs c >= 1, got %d", c)
	}
	// The long packet: from a level-0 node to a top-level node.
	var long graph.Path
	var err error
	for _, src := range g.Level(0) {
		reach := g.ForwardReachableFrom(src)
		for _, dst := range g.Level(g.Depth()) {
			if reach[dst] {
				long, err = paths.RandomForwardPath(g, rng, src, dst)
				if err == nil {
					break
				}
			}
		}
		if long != nil {
			break
		}
	}
	if long == nil {
		return nil, fmt.Errorf("workload: no full-depth path exists")
	}
	midEdge := long[len(long)/2]
	ed := g.Edge(midEdge)
	// Short packets: sources one level below the middle edge, crossing
	// it, absorbed right above.
	reach := g.Reachable(ed.From)
	var srcs []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if reach[v] && g.Node(v).Level == g.Node(ed.From).Level-1 && v != g.PathSource(long) {
			srcs = append(srcs, v)
		}
	}
	ps := []graph.Path{long}
	for i := 0; i < c-1 && i < len(srcs); i++ {
		p1, err := paths.RandomForwardPath(g, rng, srcs[i], ed.From)
		if err != nil {
			return nil, err
		}
		ps = append(ps, append(append(graph.Path{}, p1...), midEdge))
	}
	set := paths.NewPathSet(g, ps)
	return finish(fmt.Sprintf("longthin(c=%d)", c), g, set)
}

// BenesValiant routes a random permutation on the k-dimensional Beneš
// network with Valiant's trick: each packet goes through a uniformly
// random middle row, which on the rearrangeable Beneš network yields
// congestion O(1) w.h.p. — the low-C extreme for the paper's bound,
// where routing time is dominated by L alone.
func BenesValiant(g *graph.Leveled, rng *rand.Rand, k int) (*Problem, error) {
	rows := 1 << k
	if g.Depth() != 2*k || g.NumNodes() != (2*k+1)*rows {
		return nil, fmt.Errorf("workload: network is not Benes(%d)", k)
	}
	perm := rng.Perm(rows)
	ps := make([]graph.Path, 0, rows)
	for src, dst := range perm {
		p, err := topo.BenesLoopbackPath(g, k, src, rng.Intn(rows), dst)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish(fmt.Sprintf("benes-valiant(%d)", k), g, set)
}

// AllCorners builds the mesh instance routing one packet from each of
// the four quadrant centers to the opposite quadrant on an n x n
// CornerNW mesh — small, fully deterministic, handy for golden tests.
func AllCorners(n int) (*Problem, error) {
	if n < 4 {
		return nil, fmt.Errorf("workload: AllCorners needs n >= 4, got %d", n)
	}
	g, err := topo.Mesh(n, n, topo.CornerNW)
	if err != nil {
		return nil, err
	}
	q := n / 4
	type pair struct{ si, sj, di, dj int }
	reqs := []pair{
		{q, q, 3 * q, 3 * q},
		{q, 3 * q, 3 * q, 3*q + 1},
		{3 * q, q, 3*q + 1, 3 * q},
		{q, q + 1, 3 * q, 3*q - 1},
	}
	ps := make([]graph.Path, 0, len(reqs))
	for _, r := range reqs {
		p, err := topo.MeshDimOrderPath(g, n, r.si, r.sj, r.di, r.dj)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	set := paths.NewPathSet(g, ps)
	return finish(fmt.Sprintf("allcorners(%d)", n), g, set)
}
