// Package paths selects preselected forward paths on leveled networks
// and analyzes their congestion C and dilation D — the two parameters
// that drive every bound in the paper. Path selection happens before
// routing begins (paper footnote 2: "The packet paths are selected
// before the routing begins"); this package is that preprocessing step.
package paths

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
)

// PathSet is a collection of preselected paths, one per packet, indexed
// by packet number.
type PathSet struct {
	G     *graph.Leveled
	Paths []graph.Path
}

// NewPathSet wraps paths over g.
func NewPathSet(g *graph.Leveled, ps []graph.Path) *PathSet {
	return &PathSet{G: g, Paths: ps}
}

// Validate checks every path is a valid forward path.
func (s *PathSet) Validate() error {
	for i, p := range s.Paths {
		if len(p) == 0 {
			return fmt.Errorf("paths: path %d is empty", i)
		}
		if err := s.G.ValidatePath(p); err != nil {
			return fmt.Errorf("paths: path %d: %w", i, err)
		}
	}
	return nil
}

// Congestion returns C: the maximum number of paths crossing any single
// edge (paper Section 1.1).
func (s *PathSet) Congestion() int {
	load := make([]int, s.G.NumEdges())
	c := 0
	for _, p := range s.Paths {
		for _, e := range p {
			load[e]++
			if load[e] > c {
				c = load[e]
			}
		}
	}
	return c
}

// EdgeLoads returns the per-edge path counts.
func (s *PathSet) EdgeLoads() []int {
	load := make([]int, s.G.NumEdges())
	for _, p := range s.Paths {
		for _, e := range p {
			load[e]++
		}
	}
	return load
}

// Dilation returns D: the maximum path length.
func (s *PathSet) Dilation() int {
	d := 0
	for _, p := range s.Paths {
		if len(p) > d {
			d = len(p)
		}
	}
	return d
}

// LowerBound returns the trivial routing lower bound max(C, D); the
// paper states the bound as Ω(C + D), and C+D <= 2*max(C,D).
func (s *PathSet) LowerBound() int {
	c, d := s.Congestion(), s.Dilation()
	if c > d {
		return c
	}
	return d
}

// Sources returns the source node of every path.
func (s *PathSet) Sources() []graph.NodeID {
	out := make([]graph.NodeID, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = s.G.PathSource(p)
	}
	return out
}

// Destinations returns the destination node of every path.
func (s *PathSet) Destinations() []graph.NodeID {
	out := make([]graph.NodeID, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = s.G.PathDest(p)
	}
	return out
}

// CheckOnePacketPerSource verifies the paper's many-to-one problem
// restriction: each node is the source of at most one packet.
func (s *PathSet) CheckOnePacketPerSource() error {
	seen := make(map[graph.NodeID]int)
	for i, p := range s.Paths {
		src := s.G.PathSource(p)
		if j, dup := seen[src]; dup {
			return fmt.Errorf("paths: node %d is the source of packets %d and %d", src, j, i)
		}
		seen[src] = i
	}
	return nil
}

// RandomForwardPath samples a forward path from src to dst. Sampling is
// proportional to the number of forward paths through each next hop
// (computed by counting with saturation), which is exactly uniform over
// all forward src->dst paths whenever counts do not saturate. Returns
// an error if dst is not forward-reachable from src.
func RandomForwardPath(g *graph.Leveled, rng *rand.Rand, src, dst graph.NodeID) (graph.Path, error) {
	var s ForwardPathSampler
	ls, ld := g.Node(src).Level, g.Node(dst).Level
	var hint int
	if ld > ls {
		hint = ld - ls
	}
	return s.AppendPath(g, rng, src, dst, make(graph.Path, 0, hint))
}

// ForwardPathSampler draws random forward paths with the exact
// distribution (and RNG consumption) of RandomForwardPath, but reuses
// one path-count scratch buffer across draws so a warm sampler
// allocates nothing. The open-system engine keeps one per engine: path
// draws are on its injection hot path.
//
// Not safe for concurrent use; each goroutine needs its own sampler.
type ForwardPathSampler struct {
	cnt []int64
}

// AppendPath appends a sampled src→dst forward path to buf and returns
// the extended slice. The draw sequence is identical to
// RandomForwardPath: one rng.Int63n per hop, weighted by saturating
// forward-path counts.
func (s *ForwardPathSampler) AppendPath(g *graph.Leveled, rng *rand.Rand, src, dst graph.NodeID, buf graph.Path) (graph.Path, error) {
	if src == dst {
		return nil, fmt.Errorf("paths: src == dst == %d; zero-length routing requests are not packets", src)
	}
	ls, ld := g.Node(src).Level, g.Node(dst).Level
	if ld <= ls {
		return nil, fmt.Errorf("paths: dst level %d not above src level %d", ld, ls)
	}
	s.cnt = CountsTo(g, dst, s.cnt)
	return AppendPathCounted(g, rng, src, dst, s.cnt, buf)
}

// CountsTo fills cnt with the saturating forward-path counts to dst —
// CountForwardPaths(dst, 1<<40) — reusing the provided backing when
// large enough, and returns the (possibly grown) slice. The table
// depends only on dst, so callers drawing many paths to the same
// destination compute it once and sample via AppendPathCounted.
func CountsTo(g *graph.Leveled, dst graph.NodeID, cnt []int64) []int64 {
	if len(cnt) < g.NumNodes() {
		cnt = make([]int64, g.NumNodes())
	} else {
		cnt = cnt[:g.NumNodes()]
		for i := range cnt {
			cnt[i] = 0
		}
	}
	const satCap = 1 << 40
	cnt[dst] = 1
	for l := g.Node(dst).Level - 1; l >= 0; l-- {
		for _, id := range g.Level(l) {
			var c int64
			for _, e := range g.Node(id).Up {
				c += cnt[g.Edge(e).To]
				if c >= satCap {
					c = satCap
					break
				}
			}
			cnt[id] = c
		}
	}
	return cnt
}

// AppendPathCounted is AppendPath given a precomputed CountsTo(g, dst)
// table: validation, errors and RNG consumption (one rng.Int63n per
// hop) are identical, but no counting pass runs.
func AppendPathCounted(g *graph.Leveled, rng *rand.Rand, src, dst graph.NodeID, cnt []int64, buf graph.Path) (graph.Path, error) {
	if src == dst {
		return nil, fmt.Errorf("paths: src == dst == %d; zero-length routing requests are not packets", src)
	}
	ls, ld := g.Node(src).Level, g.Node(dst).Level
	if ld <= ls {
		return nil, fmt.Errorf("paths: dst level %d not above src level %d", ld, ls)
	}
	if cnt[src] == 0 {
		return nil, fmt.Errorf("paths: node %d cannot reach %d forward", src, dst)
	}
	cur := src
	for cur != dst {
		var total int64
		for _, e := range g.Node(cur).Up {
			total += cnt[g.Edge(e).To]
		}
		pick := rng.Int63n(total)
		for _, e := range g.Node(cur).Up {
			c := cnt[g.Edge(e).To]
			if pick < c {
				buf = append(buf, e)
				cur = g.Edge(e).To
				break
			}
			pick -= c
		}
	}
	return buf, nil
}

// GreedyMinCongestionPath builds a forward path from src to dst that at
// each hop picks the feasible next edge with the smallest current load
// (given in loads, which the caller accumulates across calls). Ties are
// broken uniformly at random. The caller must ensure dst is reachable.
func GreedyMinCongestionPath(g *graph.Leveled, rng *rand.Rand, loads []int, src, dst graph.NodeID) (graph.Path, error) {
	if len(loads) != g.NumEdges() {
		return nil, fmt.Errorf("paths: loads length %d != edges %d", len(loads), g.NumEdges())
	}
	reach := g.Reachable(dst)
	if !reach[src] {
		return nil, fmt.Errorf("paths: node %d cannot reach %d forward", src, dst)
	}
	ls, ld := g.Node(src).Level, g.Node(dst).Level
	if ld <= ls {
		return nil, fmt.Errorf("paths: dst level %d not above src level %d", ld, ls)
	}
	p := make(graph.Path, 0, ld-ls)
	cur := src
	for cur != dst {
		best := graph.NoEdge
		bestLoad := int(^uint(0) >> 1)
		ties := 0
		for _, e := range g.Node(cur).Up {
			if !reach[g.Edge(e).To] {
				continue
			}
			switch l := loads[e]; {
			case l < bestLoad:
				best, bestLoad, ties = e, l, 1
			case l == bestLoad:
				ties++
				if rng.Intn(ties) == 0 {
					best = e
				}
			}
		}
		if best == graph.NoEdge {
			return nil, fmt.Errorf("paths: stuck at node %d heading to %d", cur, dst)
		}
		loads[best]++
		p = append(p, best)
		cur = g.Edge(best).To
	}
	return p, nil
}

// SelectRandom builds a PathSet with one random forward path per
// (src, dst) request.
func SelectRandom(g *graph.Leveled, rng *rand.Rand, reqs []Request) (*PathSet, error) {
	ps := make([]graph.Path, len(reqs))
	for i, r := range reqs {
		p, err := RandomForwardPath(g, rng, r.Src, r.Dst)
		if err != nil {
			return nil, fmt.Errorf("paths: request %d: %w", i, err)
		}
		ps[i] = p
	}
	return NewPathSet(g, ps), nil
}

// SelectMinCongestion builds a PathSet greedily minimizing congestion,
// processing requests in a random order to avoid order bias.
func SelectMinCongestion(g *graph.Leveled, rng *rand.Rand, reqs []Request) (*PathSet, error) {
	ps := make([]graph.Path, len(reqs))
	loads := make([]int, g.NumEdges())
	order := rng.Perm(len(reqs))
	for _, i := range order {
		p, err := GreedyMinCongestionPath(g, rng, loads, reqs[i].Src, reqs[i].Dst)
		if err != nil {
			return nil, fmt.Errorf("paths: request %d: %w", i, err)
		}
		ps[i] = p
	}
	return NewPathSet(g, ps), nil
}

// SelectValiant builds a PathSet with Valiant's random-intermediate
// trick: each packet routes src -> R -> dst where R is drawn uniformly
// from the nodes at the middle level between src and dst that are
// forward-reachable from src and forward-reach dst. Randomizing the
// middle spreads structured (adversarial) workloads, trading a little
// dilation for much lower worst-case congestion.
func SelectValiant(g *graph.Leveled, rng *rand.Rand, reqs []Request) (*PathSet, error) {
	ps := make([]graph.Path, len(reqs))
	for i, r := range reqs {
		ls, ld := g.Node(r.Src).Level, g.Node(r.Dst).Level
		if ld <= ls {
			return nil, fmt.Errorf("paths: request %d: dst level %d not above src level %d", i, ld, ls)
		}
		midLevel := (ls + ld) / 2
		fromSrc := g.ForwardReachableFrom(r.Src)
		toDst := g.Reachable(r.Dst)
		var mids []graph.NodeID
		for _, v := range g.Level(midLevel) {
			if fromSrc[v] && toDst[v] {
				mids = append(mids, v)
			}
		}
		if len(mids) == 0 {
			return nil, fmt.Errorf("paths: request %d: no usable intermediate at level %d", i, midLevel)
		}
		mid := mids[rng.Intn(len(mids))]
		var p graph.Path
		if mid != r.Src {
			p1, err := RandomForwardPath(g, rng, r.Src, mid)
			if err != nil {
				return nil, fmt.Errorf("paths: request %d: %w", i, err)
			}
			p = append(p, p1...)
		}
		if mid != r.Dst {
			p2, err := RandomForwardPath(g, rng, mid, r.Dst)
			if err != nil {
				return nil, fmt.Errorf("paths: request %d: %w", i, err)
			}
			p = append(p, p2...)
		}
		ps[i] = p
	}
	return NewPathSet(g, ps), nil
}

// Request is a (source, destination) routing request.
type Request struct {
	Src, Dst graph.NodeID
}
