package paths

import (
	"math/rand"
	"testing"

	"hotpotato/internal/topo"
)

func BenchmarkRandomForwardPath(b *testing.B) {
	g, err := topo.Butterfly(8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	src := topo.ButterflyNode(g, 8, 0, 0)
	dst := topo.ButterflyNode(g, 8, 255, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomForwardPath(g, rng, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectMinCongestion(b *testing.B) {
	g, err := topo.Butterfly(6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{
			Src: topo.ButterflyNode(g, 6, i, 0),
			Dst: topo.ButterflyNode(g, 6, (i*13)%64, 6),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectMinCongestion(g, rng, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCongestion(b *testing.B) {
	g, err := topo.Butterfly(7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	reqs := make([]Request, 128)
	for i := range reqs {
		reqs[i] = Request{
			Src: topo.ButterflyNode(g, 7, i, 0),
			Dst: topo.ButterflyNode(g, 7, (i*29)%128, 7),
		}
	}
	set, err := SelectRandom(g, rng, reqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Congestion()
	}
}
