package paths

import (
	"math/rand"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/topo"
)

func mustTopo(t *testing.T) func(*graph.Leveled, error) *graph.Leveled {
	t.Helper()
	return func(g *graph.Leveled, err error) *graph.Leveled {
		t.Helper()
		if err != nil {
			t.Fatalf("topo: %v", err)
		}
		return g
	}
}

func TestPathSetMetrics(t *testing.T) {
	g := mustTopo(t)(topo.Linear(5)) // 0-1-2-3-4 chain, 4 edges
	full := graph.Path{0, 1, 2, 3}
	half := graph.Path{0, 1}
	s := NewPathSet(g, []graph.Path{full, half})
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c := s.Congestion(); c != 2 {
		t.Errorf("Congestion = %d, want 2", c)
	}
	if d := s.Dilation(); d != 4 {
		t.Errorf("Dilation = %d, want 4", d)
	}
	if lb := s.LowerBound(); lb != 4 {
		t.Errorf("LowerBound = %d, want 4", lb)
	}
	loads := s.EdgeLoads()
	want := []int{2, 2, 1, 1}
	for i, w := range want {
		if loads[i] != w {
			t.Errorf("load[%d] = %d, want %d", i, loads[i], w)
		}
	}
	srcs, dsts := s.Sources(), s.Destinations()
	if srcs[0] != 0 || srcs[1] != 0 {
		t.Errorf("Sources = %v", srcs)
	}
	if dsts[0] != 4 || dsts[1] != 2 {
		t.Errorf("Destinations = %v", dsts)
	}
}

func TestPathSetValidateRejects(t *testing.T) {
	g := mustTopo(t)(topo.Linear(4))
	if err := NewPathSet(g, []graph.Path{{}}).Validate(); err == nil {
		t.Error("empty path accepted")
	}
	if err := NewPathSet(g, []graph.Path{{2, 0}}).Validate(); err == nil {
		t.Error("non-chaining path accepted")
	}
}

func TestCheckOnePacketPerSource(t *testing.T) {
	g := mustTopo(t)(topo.Linear(5))
	ok := NewPathSet(g, []graph.Path{{0, 1}, {2, 3}})
	if err := ok.CheckOnePacketPerSource(); err != nil {
		t.Errorf("distinct sources rejected: %v", err)
	}
	dup := NewPathSet(g, []graph.Path{{0, 1}, {0, 1, 2}})
	if err := dup.CheckOnePacketPerSource(); err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestRandomForwardPath(t *testing.T) {
	g := mustTopo(t)(topo.Butterfly(4))
	rng := rand.New(rand.NewSource(1))
	src := topo.ButterflyNode(g, 4, 3, 0)
	dst := topo.ButterflyNode(g, 4, 12, 4)
	for trial := 0; trial < 50; trial++ {
		p, err := RandomForwardPath(g, rng, src, dst)
		if err != nil {
			t.Fatalf("RandomForwardPath: %v", err)
		}
		if len(p) != 4 {
			t.Fatalf("path length = %d, want 4", len(p))
		}
		if err := g.ValidatePath(p); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		if g.PathSource(p) != src || g.PathDest(p) != dst {
			t.Fatalf("wrong endpoints")
		}
	}
}

func TestRandomForwardPathUniformOnDiamond(t *testing.T) {
	// Two forward paths exist on the ladder's diamond structure between
	// fixed endpoints; sampling should hit both.
	g := mustTopo(t)(topo.Ladder(2))
	rng := rand.New(rand.NewSource(7))
	src := g.Level(0)[0]
	dst := g.Level(2)[0]
	seen := map[graph.EdgeID]int{}
	for trial := 0; trial < 200; trial++ {
		p, err := RandomForwardPath(g, rng, src, dst)
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		seen[p[0]]++
	}
	if len(seen) != 2 {
		t.Fatalf("expected 2 distinct first hops, got %d (%v)", len(seen), seen)
	}
	for e, n := range seen {
		if n < 50 {
			t.Errorf("first hop %d sampled only %d/200 times; want near-uniform", e, n)
		}
	}
}

func TestRandomForwardPathErrors(t *testing.T) {
	g := mustTopo(t)(topo.Hypercube(3))
	rng := rand.New(rand.NewSource(2))
	if _, err := RandomForwardPath(g, rng, 1, 1); err == nil {
		t.Error("src==dst accepted")
	}
	// 0b001 cannot reach 0b110 forward (not a superset).
	if _, err := RandomForwardPath(g, rng, topo.HypercubeNode(0b001), topo.HypercubeNode(0b110)); err == nil {
		t.Error("unreachable dst accepted")
	}
	// dst below src.
	if _, err := RandomForwardPath(g, rng, topo.HypercubeNode(0b111), topo.HypercubeNode(0b001)); err == nil {
		t.Error("downhill dst accepted")
	}
}

func TestGreedyMinCongestionSpreadsLoad(t *testing.T) {
	// On a complete leveled network, 8 identical src->dst requests
	// should spread across parallel middle nodes; congestion must be
	// well below 8.
	g := mustTopo(t)(topo.Complete(2, 8))
	rng := rand.New(rand.NewSource(3))
	src := g.Level(0)[0]
	dst := g.Level(2)[0]
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{src, dst}
	}
	s, err := SelectMinCongestion(g, rng, reqs)
	if err != nil {
		t.Fatalf("SelectMinCongestion: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c := s.Congestion(); c != 8 {
		// All paths share the first node's up edges? No: src has 8 up
		// edges, so each middle hop can be distinct: interior congestion 1.
		// But all 8 paths end at dst, each middle node has 1 edge to dst,
		// so final-edge congestion can be 1 too. Expect C == 1.. 8 shared
		// source only. Since src has 8 distinct up edges, C should be 1.
		if c != 1 {
			t.Errorf("Congestion = %d, want 1", c)
		}
	}
	if s.Congestion() > 2 {
		t.Errorf("greedy congestion = %d; expected <= 2 on complete network", s.Congestion())
	}
}

func TestGreedyMinCongestionErrors(t *testing.T) {
	g := mustTopo(t)(topo.Linear(4))
	rng := rand.New(rand.NewSource(4))
	if _, err := GreedyMinCongestionPath(g, rng, make([]int, 1), 0, 3); err == nil {
		t.Error("bad loads length accepted")
	}
	loads := make([]int, g.NumEdges())
	if _, err := GreedyMinCongestionPath(g, rng, loads, 3, 0); err == nil {
		t.Error("downhill accepted")
	}
	if p, err := GreedyMinCongestionPath(g, rng, loads, 0, 3); err != nil || len(p) != 3 {
		t.Errorf("linear path: %v len=%d", err, len(p))
	}
}

func TestSelectRandom(t *testing.T) {
	g := mustTopo(t)(topo.Mesh(4, 4, topo.CornerNW))
	rng := rand.New(rand.NewSource(5))
	reqs := []Request{
		{topo.MeshNode(4, 0, 0), topo.MeshNode(4, 3, 3)},
		{topo.MeshNode(4, 0, 1), topo.MeshNode(4, 2, 3)},
	}
	s, err := SelectRandom(g, rng, reqs)
	if err != nil {
		t.Fatalf("SelectRandom: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Paths[0]) != 6 || len(s.Paths[1]) != 4 {
		t.Errorf("path lengths = %d,%d; want 6,4", len(s.Paths[0]), len(s.Paths[1]))
	}
	bad := []Request{{topo.MeshNode(4, 3, 3), topo.MeshNode(4, 0, 0)}}
	if _, err := SelectRandom(g, rng, bad); err == nil {
		t.Error("downhill request accepted")
	}
}

func TestSelectValiantSpreadsTranspose(t *testing.T) {
	// The butterfly is a banyan network (unique paths), so Valiant needs
	// a network with mid-level diversity: on the Benes network every
	// middle row is a feasible intermediate. Compare the transpose
	// permutation routed (a) deterministically straight through the
	// first half (mid = source row) and (b) with SelectValiant. At k=8
	// the deterministic congestion is 2^(k/2-1) = 8 while Valiant's is
	// balls-in-bins ~4.
	k := 8
	g := mustTopo(t)(topo.Benes(k))
	rng := rand.New(rand.NewSource(8))
	rows := 1 << k
	half := k / 2
	var reqs []Request
	var det []graph.Path
	for w := 0; w < rows; w++ {
		dst := (w&(1<<half-1))<<half | w>>half
		reqs = append(reqs, Request{
			Src: topo.BenesNode(k, w, 0),
			Dst: topo.BenesNode(k, dst, 2*k),
		})
		p, err := topo.BenesLoopbackPath(g, k, w, w, dst)
		if err != nil {
			t.Fatal(err)
		}
		det = append(det, p)
	}
	cDet := NewPathSet(g, det).Congestion()

	val, err := SelectValiant(g, rng, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(); err != nil {
		t.Fatal(err)
	}
	cVal := val.Congestion()
	if cVal >= cDet {
		t.Errorf("Valiant congestion %d not below deterministic %d", cVal, cDet)
	}
	// Dilation unchanged: all forward paths on the Benes span 2k.
	if val.Dilation() != 2*k {
		t.Errorf("Valiant dilation = %d, want %d", val.Dilation(), 2*k)
	}
}

func TestSelectValiantErrors(t *testing.T) {
	g := mustTopo(t)(topo.Linear(4))
	rng := rand.New(rand.NewSource(9))
	if _, err := SelectValiant(g, rng, []Request{{Src: 3, Dst: 0}}); err == nil {
		t.Error("downhill request accepted")
	}
	// Degenerate: src adjacent to dst still works (mid = one of them).
	set, err := SelectValiant(g, rng, []Request{{Src: 0, Dst: 1}})
	if err != nil || len(set.Paths[0]) != 1 {
		t.Errorf("adjacent request: %v %v", err, set)
	}
}
