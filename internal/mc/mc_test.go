package mc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func mustRun(t *testing.T, p *workload.Problem, params core.Params, opt Options) *Ensemble {
	t.Helper()
	e, err := Run(p, params, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func testProblem(t testing.TB) *workload.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g, err := topo.Random(rng, 20, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func quickParams(p *workload.Problem) core.Params {
	return core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
}

func TestEnsembleAllSucceed(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 12, Check: true})
	if len(e.Trials) != 12 {
		t.Fatalf("trials = %d", len(e.Trials))
	}
	if got := e.SuccessRate(); got != 1.0 {
		t.Errorf("success rate = %g, want 1.0", got)
	}
	if e.TotalUnsafe() != 0 {
		t.Errorf("unsafe deflections = %d", e.TotalUnsafe())
	}
	sum := e.StepsSummary()
	if sum.N != 12 || sum.Min <= 0 {
		t.Errorf("steps summary = %+v", sum)
	}
	if e.StepsQuantile(0.5) <= 0 || e.StepsQuantile(0.99) < e.StepsQuantile(0.5) {
		t.Errorf("quantiles inconsistent: p50=%g p99=%g", e.StepsQuantile(0.5), e.StepsQuantile(0.99))
	}
	if !strings.Contains(e.String(), "success=1.000") {
		t.Errorf("String = %q", e.String())
	}
}

func TestEnsembleTrialsInSeedOrder(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 8, BaseSeed: 100})
	for i, tr := range e.Trials {
		if tr.Seed != int64(100+i) {
			t.Errorf("trial %d has seed %d", i, tr.Seed)
		}
	}
}

func TestEnsembleDeterministicAcrossWorkerCounts(t *testing.T) {
	p := testProblem(t)
	params := quickParams(p)
	a := mustRun(t, p, params, Options{Trials: 6, Workers: 1})
	b := mustRun(t, p, params, Options{Trials: 6, Workers: 4})
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Errorf("trial %d differs across worker counts: %+v vs %+v", i, a.Trials[i], b.Trials[i])
		}
	}
}

func TestRunOptionValidation(t *testing.T) {
	p := testProblem(t)
	params := quickParams(p)
	cases := []struct {
		name    string
		opt     Options
		wantErr bool
	}{
		{"defaults", Options{Trials: 1}, false},
		{"workers-clamped-to-trials", Options{Trials: 2, Workers: 64}, false},
		{"zero-workers-means-gomaxprocs", Options{Trials: 1, Workers: 0}, false},
		{"negative-workers", Options{Trials: 1, Workers: -1}, true},
		{"very-negative-workers", Options{Trials: 1, Workers: -100}, true},
		{"seed-overflow", Options{Trials: 2, BaseSeed: math.MaxInt64}, true},
		{"seed-overflow-boundary", Options{Trials: 3, BaseSeed: math.MaxInt64 - 1}, true},
		{"seed-at-limit", Options{Trials: 2, BaseSeed: math.MaxInt64 - 1}, false},
		{"negative-base-seed-ok", Options{Trials: 2, BaseSeed: -5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := Run(p, params, c.opt)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Run(%+v) succeeded, want error", c.opt)
				}
				return
			}
			if err != nil {
				t.Fatalf("Run(%+v): %v", c.opt, err)
			}
			if len(e.Trials) != max(c.opt.Trials, 1) {
				t.Errorf("trials = %d, want %d", len(e.Trials), c.opt.Trials)
			}
			for i, tr := range e.Trials {
				if tr.Seed != c.opt.BaseSeed+int64(i) {
					t.Errorf("trial %d seed = %d, want %d", i, tr.Seed, c.opt.BaseSeed+int64(i))
				}
			}
		})
	}
}

// Engine reuse across trials (one Runner per worker) must be invisible
// in the results: identical trials to rebuilding the engine per seed.
func TestEnsembleReuseMatchesFreshEngines(t *testing.T) {
	p := testProblem(t)
	params := quickParams(p)
	reused := mustRun(t, p, params, Options{Trials: 6, Check: true})
	fresh := mustRun(t, p, params, Options{Trials: 6, Check: true, FreshEngines: true})
	for i := range reused.Trials {
		if reused.Trials[i] != fresh.Trials[i] {
			t.Errorf("trial %d differs with engine reuse: %+v vs %+v",
				i, reused.Trials[i], fresh.Trials[i])
		}
	}
}

func TestEnsembleBudgetFailure(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 4, MaxSteps: 5})
	if e.SuccessRate() != 0 {
		t.Errorf("success rate = %g with 5-step budget", e.SuccessRate())
	}
	if e.StepsQuantile(0.5) != -1 {
		t.Errorf("quantile of empty successes = %g", e.StepsQuantile(0.5))
	}
	if e.StepsSummary().N != 0 {
		t.Errorf("summary over failures = %+v", e.StepsSummary())
	}
}

func TestEnsembleDefaults(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 1})
	if len(e.Trials) != 1 {
		t.Errorf("trials = %d", len(e.Trials))
	}
	bound := e.PaperSuccessBound()
	if bound <= 0.99 || bound >= 1 {
		t.Errorf("paper bound = %g", bound)
	}
}

func TestExcitedSuccessRate(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 8})
	episodes := 0
	for _, tr := range e.Trials {
		if tr.ExcitedSuccesses < 0 || tr.ExcitedFailures < 0 {
			t.Fatalf("negative excitation counters: %+v", tr)
		}
		episodes += tr.ExcitedSuccesses + tr.ExcitedFailures
	}
	r := e.ExcitedSuccessRate()
	if episodes == 0 {
		if r != -1 {
			t.Errorf("rate with no episodes = %g, want -1", r)
		}
		return
	}
	if r < 0 || r > 1 {
		t.Errorf("excited success rate = %g, want within [0,1]", r)
	}
}

func TestViolationRate(t *testing.T) {
	p := testProblem(t)
	// Tight parameters provoke at least occasional violations; default
	// ones give zero. Either way the rate is within [0,1].
	e := mustRun(t, p, quickParams(p), Options{Trials: 6, Check: true})
	r := e.ViolationRate()
	if r < 0 || r > 1 {
		t.Errorf("violation rate = %g", r)
	}
	// Without checking, violations are not counted.
	e2 := mustRun(t, p, quickParams(p), Options{Trials: 2})
	if e2.ViolationRate() != 0 {
		t.Errorf("unchecked violation rate = %g", e2.ViolationRate())
	}
}

func TestEnsembleRecordWindow(t *testing.T) {
	p := testProblem(t)
	// Without RecordWindow the field stays zero.
	off := mustRun(t, p, quickParams(p), Options{Trials: 4})
	if off.MaxWindowWidth() != 0 {
		t.Errorf("MaxWindowWidth = %d without RecordWindow", off.MaxWindowWidth())
	}
	on := mustRun(t, p, quickParams(p), Options{Trials: 4, RecordWindow: true})
	w := on.MaxWindowWidth()
	depth := p.L()
	if w <= 0 || w > depth+1 {
		t.Fatalf("MaxWindowWidth = %d outside (0, %d]", w, depth+1)
	}
	// The schedule's narrow-band guarantee is what the window probe
	// evidences: on this depth-20 network the active band must exclude
	// levels, i.e. stay strictly below full depth.
	if w > depth {
		t.Errorf("MaxWindowWidth = %d: no level was ever skippable (depth %d)", w, depth)
	}
	for _, tr := range on.Trials {
		if tr.MaxWindowWidth <= 0 {
			t.Errorf("seed %d: MaxWindowWidth = %d, want > 0", tr.Seed, tr.MaxWindowWidth)
		}
	}
	// Workers must not change the per-trial record (determinism).
	par := mustRun(t, p, quickParams(p), Options{Trials: 4, RecordWindow: true, Workers: 4})
	for i := range on.Trials {
		if on.Trials[i].MaxWindowWidth != par.Trials[i].MaxWindowWidth {
			t.Errorf("seed %d: MaxWindowWidth %d (workers=auto) vs %d (workers=4)",
				on.Trials[i].Seed, on.Trials[i].MaxWindowWidth, par.Trials[i].MaxWindowWidth)
		}
	}
}
