package mc

import (
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/faults"
	"hotpotato/internal/sim"
)

func greedyFactory() func() sim.Router {
	return func() sim.Router { return baselines.NewGreedy() }
}

// TestRouterModeRuns: the Router option runs trials on a plain engine
// with the given router; healthy greedy on a small instance delivers
// everything within the budget.
func TestRouterModeRuns(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, core.Params{}, Options{
		Trials: 6, Router: greedyFactory(), MaxSteps: 100000,
	})
	if len(e.Trials) != 6 {
		t.Fatalf("trials = %d", len(e.Trials))
	}
	for i, tr := range e.Trials {
		if !tr.Done {
			t.Errorf("trial %d not done in budget", i)
		}
		if tr.Absorbed != p.N() {
			t.Errorf("trial %d absorbed %d of %d packets", i, tr.Absorbed, p.N())
		}
		if tr.Steps <= 0 {
			t.Errorf("trial %d steps = %d", i, tr.Steps)
		}
	}
}

// TestRouterModeDeterministicAcrossWorkerCounts mirrors the frame-path
// guarantee: worker scheduling must not leak into trial results.
func TestRouterModeDeterministicAcrossWorkerCounts(t *testing.T) {
	p := testProblem(t)
	opt := Options{Trials: 6, Router: greedyFactory(), MaxSteps: 100000, BaseSeed: 11}
	a := mustRun(t, p, core.Params{}, opt)
	opt.Workers = 4
	b := mustRun(t, p, core.Params{}, opt)
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Errorf("trial %d differs across worker counts: %+v vs %+v", i, a.Trials[i], b.Trials[i])
		}
	}
}

// TestRouterModeEngineReuse: per-worker engine reuse (Reset between
// seeds) must match fresh single-trial runs.
func TestRouterModeEngineReuse(t *testing.T) {
	p := testProblem(t)
	reused := mustRun(t, p, core.Params{}, Options{
		Trials: 5, Router: greedyFactory(), MaxSteps: 100000, BaseSeed: 3, Workers: 1,
	})
	for i := range reused.Trials {
		fresh := mustRun(t, p, core.Params{}, Options{
			Trials: 1, Router: greedyFactory(), MaxSteps: 100000, BaseSeed: 3 + int64(i),
		})
		if reused.Trials[i] != fresh.Trials[0] {
			t.Errorf("seed %d: reused %+v, fresh %+v", 3+i, reused.Trials[i], fresh.Trials[0])
		}
	}
}

// TestRouterModeFaults: a severe fault model must show up in the
// packet-level accounting (Absorbed below N or fault stalls observed).
func TestRouterModeFaults(t *testing.T) {
	p := testProblem(t)
	fc, err := faults.Parse("flap:period=20,down=10,rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	e := mustRun(t, p, core.Params{}, Options{
		Trials: 4, Router: greedyFactory(), MaxSteps: 2000, Faults: fc,
	})
	touched := 0
	for _, tr := range e.Trials {
		if tr.FaultBlocked > 0 || tr.FaultStalls > 0 {
			touched++
		}
		if tr.Absorbed > p.N() {
			t.Errorf("absorbed %d exceeds %d packets", tr.Absorbed, p.N())
		}
	}
	if touched == 0 {
		t.Error("aggressive fault model left no trace in any trial")
	}
}

// TestRouterModeValidation: router mode needs an explicit budget and
// is incompatible with the frame-only options.
func TestRouterModeValidation(t *testing.T) {
	p := testProblem(t)
	cases := map[string]Options{
		"missing max steps": {Trials: 1, Router: greedyFactory()},
		"check":             {Trials: 1, Router: greedyFactory(), MaxSteps: 100, Check: true},
		"record window":     {Trials: 1, Router: greedyFactory(), MaxSteps: 100, RecordWindow: true},
	}
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(p, core.Params{}, opt); err == nil {
				t.Fatalf("Run(%+v) succeeded, want error", opt)
			}
		})
	}
}

// TestFramePathAbsorbed: the frame path fills the new Absorbed field
// too — a complete trial absorbs every packet.
func TestFramePathAbsorbed(t *testing.T) {
	p := testProblem(t)
	e := mustRun(t, p, quickParams(p), Options{Trials: 3})
	for i, tr := range e.Trials {
		if tr.Done && tr.Absorbed != p.N() {
			t.Errorf("trial %d done but absorbed %d of %d", i, tr.Absorbed, p.N())
		}
	}
}
