// Package mc runs Monte-Carlo ensembles of routing experiments in
// parallel across CPU cores: many seeds of the same problem, aggregated
// into completion-probability and latency-distribution estimates. The
// paper's guarantee is probabilistic (success w.p. >= 1 - 1/LN);
// ensembles are how a simulation speaks to such claims.
package mc

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"hotpotato/internal/core"
	"hotpotato/internal/faults"
	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

// Trial is the outcome of one seeded run.
type Trial struct {
	Seed       int64
	Steps      int
	Done       bool
	Deflects   int
	Unsafe     int
	Violations int // Ic + Id + If invariant violations (when checked)
	// Absorbed is the number of packets delivered within budget — the
	// packet-level complement of Done (Done ⇔ Absorbed == N). Campaign
	// drop rates under faults are computed from it, so a run that
	// delivers 95% of its packets before exhausting its budget is not
	// accounted like one that delivered none.
	Absorbed int
	// ExcitedSuccesses / ExcitedFailures split the run's excitation
	// episodes by outcome (reached target vs deflected or timed out at a
	// round/phase boundary). Lemma 4.3 lower-bounds the per-episode
	// success chance by 1/2e under the paper's q.
	ExcitedSuccesses int
	ExcitedFailures  int
	// FaultBlocked / FaultStalls carry the run's degradation counters
	// when the ensemble ran under a fault campaign (zero otherwise).
	FaultBlocked int
	FaultStalls  int
	// MaxWindowWidth is the widest measured active level band of the
	// run (Options.RecordWindow; zero otherwise). Under invariant Ic it
	// is bounded by the schedule's ActiveBand width, so an ensemble-wide
	// maximum far below depth+1 is the evidence that active-frame level
	// skipping had levels to skip.
	MaxWindowWidth int
}

// Ensemble aggregates many trials of the frame router on one problem.
type Ensemble struct {
	Problem *workload.Problem
	Params  core.Params
	Trials  []Trial
}

// Options configure an ensemble run.
type Options struct {
	// Trials is the number of seeds (>= 1; default 32).
	Trials int
	// BaseSeed offsets the seed sequence (trial i uses BaseSeed + i).
	// BaseSeed + Trials - 1 must not overflow int64.
	BaseSeed int64
	// MaxSteps caps each run (0 = 4x schedule bound).
	MaxSteps int
	// Check attaches the invariant checker to every run (slower).
	Check bool
	// Workers bounds parallelism (0 = GOMAXPROCS; negative is
	// rejected). Workers beyond Trials are clamped to Trials.
	Workers int
	// FreshEngines rebuilds the engine for every trial instead of
	// resetting one reusable engine per worker — the pre-reuse
	// behavior, kept for benchmarking the reuse gain (see
	// bench.RunEngineBench's ensemble row).
	FreshEngines bool
	// Observe, when non-nil, supplies per-trial observability probes:
	// it is called once per trial with that trial's seed, and the
	// returned probes receive the run's annotated series
	// (core.RunOptions.Probes semantics). Trials run concurrently, so
	// Observe must be safe for concurrent calls and the probes of
	// different trials must not share state.
	Observe func(seed int64) []obs.Probe
	// RecordWindow attaches a per-trial probe recording the widest
	// measured active level band into Trial.MaxWindowWidth. Off by
	// default: it routes every trial through the observability
	// collector, which costs a few percent of step throughput.
	RecordWindow bool
	// Faults, when non-nil, runs every trial under this fault campaign,
	// bound per trial as Faults.Model(problem.G, seed) — each seed sees
	// an independent (but reproducible) realization of the same
	// scenario. The campaign's Model must be safe for concurrent calls,
	// which every campaign in internal/faults is (pure values).
	Faults faults.Campaign
	// Router, when non-nil, runs each trial on the plain hot-potato
	// engine with a router from this factory instead of the frame
	// algorithm — the campaign layer's baseline axis. Each worker keeps
	// one engine (built from one factory call, rewound per seed via
	// Engine.Reset, which re-Inits the router), so the factory must
	// return routers whose entire per-run state lives in Init. MaxSteps
	// must be set explicitly: baselines have no schedule to derive a
	// budget from. Check, Observe and RecordWindow require the frame
	// router's schedule and are rejected in this mode.
	Router func() sim.Router
}

// Run executes the ensemble, fanning trials out over a worker pool.
// Each worker keeps one reusable engine (core.Runner) and rewinds it
// per seed, so trial cost excludes engine construction. Trials are
// returned in seed order regardless of completion order.
func Run(p *workload.Problem, params core.Params, opt Options) (*Ensemble, error) {
	if opt.Trials < 1 {
		opt.Trials = 32
	}
	if opt.Workers < 0 {
		return nil, fmt.Errorf("mc: negative Workers %d", opt.Workers)
	}
	if opt.BaseSeed > math.MaxInt64-int64(opt.Trials-1) {
		return nil, fmt.Errorf("mc: BaseSeed %d + %d trials overflows int64", opt.BaseSeed, opt.Trials)
	}
	if opt.Router != nil {
		if opt.MaxSteps <= 0 {
			return nil, fmt.Errorf("mc: Router mode needs an explicit MaxSteps budget")
		}
		if opt.Check || opt.Observe != nil || opt.RecordWindow {
			return nil, fmt.Errorf("mc: Check/Observe/RecordWindow need the frame schedule; unsupported with Router")
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Trials {
		workers = opt.Trials
	}

	trials := make([]Trial, opt.Trials)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if opt.Router != nil {
				eng := sim.NewEngine(p, opt.Router(), 1)
				defer eng.Close()
				for i := range jobs {
					trials[i] = runRouterTrial(p, eng, opt, opt.BaseSeed+int64(i))
				}
				return
			}
			var runner *core.Runner
			if !opt.FreshEngines {
				runner = core.NewRunner(p, params, 1, 0)
				defer runner.Close()
			}
			for i := range jobs {
				seed := opt.BaseSeed + int64(i)
				ro := core.RunOptions{
					Seed:     seed,
					MaxSteps: opt.MaxSteps,
					Check:    opt.Check,
				}
				if opt.Observe != nil {
					ro.Probes = opt.Observe(seed)
				}
				var wp *windowProbe
				if opt.RecordWindow {
					wp = &windowProbe{}
					ro.Probes = append(ro.Probes, wp)
				}
				if opt.Faults != nil {
					ro.Faults = opt.Faults.Model(p.G, seed)
				}
				var res *core.Result
				if runner != nil {
					res = runner.Run(ro)
				} else {
					res = core.Run(p, params, ro)
				}
				t := Trial{
					Seed:             seed,
					Steps:            res.Steps,
					Done:             res.Done,
					Absorbed:         res.Engine.Absorbed,
					Deflects:         res.Engine.TotalDeflections(),
					Unsafe:           res.Engine.UnsafeDeflections(),
					ExcitedSuccesses: res.Router.ExcitedSuccesses,
					ExcitedFailures:  res.Router.ExcitedFailures,
					FaultBlocked:     res.Engine.FaultBlocked,
					FaultStalls:      res.Engine.FaultStalls,
				}
				if opt.Check {
					t.Violations = res.Invariants.IcFrameEscapes +
						res.Invariants.IdForeignMeetings +
						res.Invariants.IfTailOccupied
				}
				if wp != nil {
					t.MaxWindowWidth = wp.maxWidth
				}
				trials[i] = t
			}
		}()
	}
	for i := 0; i < opt.Trials; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &Ensemble{Problem: p, Params: params, Trials: trials}, nil
}

// runRouterTrial runs one seeded baseline trial on the worker's reused
// engine. Reset re-seeds the RNG and re-Inits the router, so the trial
// is identical to one on a freshly built engine.
func runRouterTrial(p *workload.Problem, eng *sim.Engine, opt Options, seed int64) Trial {
	eng.Reset(seed)
	if opt.Faults != nil {
		eng.Faults = opt.Faults.Model(p.G, seed)
	} else {
		eng.Faults = nil
	}
	steps, done := eng.Run(opt.MaxSteps)
	return Trial{
		Seed:         seed,
		Steps:        steps,
		Done:         done,
		Absorbed:     eng.M.Absorbed,
		Deflects:     eng.M.TotalDeflections(),
		Unsafe:       eng.M.UnsafeDeflections(),
		FaultBlocked: eng.M.FaultBlocked,
		FaultStalls:  eng.M.FaultStalls,
	}
}

// windowProbe records the widest measured active level band of one
// run. Single-trial state, not shared across goroutines.
type windowProbe struct{ maxWidth int }

func (w *windowProbe) OnStep(s *obs.StepStats) {
	if wd := s.WindowHi - s.WindowLo + 1; wd > w.maxWidth {
		w.maxWidth = wd
	}
}
func (*windowProbe) OnRound(*obs.StepStats) {}
func (*windowProbe) OnPhase(*obs.StepStats) {}

// MaxWindowWidth returns the widest active level band measured across
// all trials, or 0 if the ensemble ran without Options.RecordWindow.
func (e *Ensemble) MaxWindowWidth() int {
	m := 0
	for _, t := range e.Trials {
		if t.MaxWindowWidth > m {
			m = t.MaxWindowWidth
		}
	}
	return m
}

// SuccessRate returns the fraction of trials that delivered every
// packet within budget.
func (e *Ensemble) SuccessRate() float64 {
	if len(e.Trials) == 0 {
		return 0
	}
	ok := 0
	for _, t := range e.Trials {
		if t.Done {
			ok++
		}
	}
	return float64(ok) / float64(len(e.Trials))
}

// PaperSuccessBound returns the paper's guarantee 1 - 1/LN for the
// ensemble's problem (Theorem 4.26; the guarantee is for proof-grade
// parameters — practical runs are compared against it in E11).
func (e *Ensemble) PaperSuccessBound() float64 {
	ln := float64(e.Problem.L()) * float64(e.Problem.N())
	if ln <= 1 {
		return 0
	}
	return 1 - 1/ln
}

// StepsSummary summarizes completion steps over successful trials.
func (e *Ensemble) StepsSummary() stats.Summary {
	var xs []float64
	for _, t := range e.Trials {
		if t.Done {
			xs = append(xs, float64(t.Steps))
		}
	}
	return stats.Summarize(xs)
}

// ViolationRate returns the fraction of checked trials with at least
// one Ic/Id/If violation.
func (e *Ensemble) ViolationRate() float64 {
	if len(e.Trials) == 0 {
		return 0
	}
	v := 0
	for _, t := range e.Trials {
		if t.Violations > 0 {
			v++
		}
	}
	return float64(v) / float64(len(e.Trials))
}

// TotalUnsafe sums unsafe deflections across all trials (Lemma 2.1
// predicts zero).
func (e *Ensemble) TotalUnsafe() int {
	s := 0
	for _, t := range e.Trials {
		s += t.Unsafe
	}
	return s
}

// ExcitedSuccessRate returns the fraction of excitation episodes
// across all trials that ended in success, or -1 if no episodes
// occurred. Lemma 4.3 predicts at least 1/2e ≈ 0.184 under the
// paper's q; a phase-boundary accounting bug that drops failures
// inflates this estimate, which is why the counters are carried
// per-trial.
func (e *Ensemble) ExcitedSuccessRate() float64 {
	succ, total := 0, 0
	for _, t := range e.Trials {
		succ += t.ExcitedSuccesses
		total += t.ExcitedSuccesses + t.ExcitedFailures
	}
	if total == 0 {
		return -1
	}
	return float64(succ) / float64(total)
}

// StepsQuantile returns the q-quantile of completion steps among
// successful trials, or -1 if none succeeded.
func (e *Ensemble) StepsQuantile(q float64) float64 {
	var xs []float64
	for _, t := range e.Trials {
		if t.Done {
			xs = append(xs, float64(t.Steps))
		}
	}
	if len(xs) == 0 {
		return -1
	}
	sort.Float64s(xs)
	return stats.Quantile(xs, q)
}

// String summarizes the ensemble.
func (e *Ensemble) String() string {
	return fmt.Sprintf("ensemble(%s, %d trials): success=%.3f (paper bound %.4f) steps p50=%.0f p99=%.0f unsafe=%d",
		e.Problem.Name, len(e.Trials), e.SuccessRate(), e.PaperSuccessBound(),
		e.StepsQuantile(0.5), e.StepsQuantile(0.99), e.TotalUnsafe())
}
