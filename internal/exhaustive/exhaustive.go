// Package exhaustive model-checks greedy hot-potato dynamics on tiny
// instances: instead of sampling one seeded execution, it branches over
// every nondeterministic choice — every same-priority conflict winner
// and every deflection-slot assignment — and verifies that *all*
// maximal executions deliver every packet within a step budget. The
// seeded engine's behavior is one path through this tree, so a verified
// instance certifies the deflection rules themselves, not a lucky
// resolution (complementing Lemma 2.1's pen-and-paper argument with
// machine-checked small cases).
package exhaustive

import (
	"fmt"
	"strings"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Result summarizes a model-checking run.
type Result struct {
	// States is the number of distinct states proven safe.
	States int
	// Branches is the total number of successor transitions explored.
	Branches int
	// MaxSteps is the deepest execution explored.
	MaxSteps int
	// Delivered reports whether every execution delivered all packets
	// within the budget (false => Counterexample describes a failure).
	Delivered bool
	// Counterexample holds a human-readable trace when Delivered is
	// false.
	Counterexample string
}

// pkt is the model's per-packet state: position plus the current path,
// encoded as a retrace stack over a suffix of the preselected path
// (deflections prepend edges that are later retraced, so the current
// path list is always stack + preselected[suffix:]).
type pkt struct {
	cur    graph.NodeID
	suffix int // index into the preselected path
	stack  []graph.EdgeID
	done   bool
}

type state struct {
	pkts []pkt
}

// key serializes a state for memoization.
func (s *state) key() string {
	var b strings.Builder
	for i := range s.pkts {
		p := &s.pkts[i]
		if p.done {
			b.WriteString("D;")
			continue
		}
		fmt.Fprintf(&b, "%d,%d,%v;", p.cur, p.suffix, p.stack)
	}
	return b.String()
}

// request is one packet's desired traversal at a step.
type request struct {
	id   int
	e    graph.EdgeID
	dir  graph.Direction
	slot int32
}

// checker carries the exploration context.
type checker struct {
	g       *graph.Leveled
	paths   []graph.Path
	dsts    []graph.NodeID
	budget  int
	proven  map[string]int // state key -> budget at which it was proven safe
	res     *Result
	maxOuts int
	deflect map[int]int32 // loser -> chosen slot during enumeration
}

// Verify explores every execution of greedy hot-potato dynamics on the
// problem, starting from all packets injected simultaneously at their
// sources, and reports whether every branch delivers within maxSteps.
// Instance sizes must be tiny (≤ 4 packets recommended); the state
// space is exponential.
func Verify(p *workload.Problem, maxSteps int) (*Result, error) {
	if p.N() > 5 {
		return nil, fmt.Errorf("exhaustive: %d packets is too many for model checking (max 5)", p.N())
	}
	c := &checker{
		g:       p.G,
		paths:   p.Set.Paths,
		dsts:    p.Set.Destinations(),
		budget:  maxSteps,
		proven:  make(map[string]int),
		res:     &Result{Delivered: true},
		deflect: make(map[int]int32),
	}
	init := &state{pkts: make([]pkt, p.N())}
	for i := range init.pkts {
		init.pkts[i] = pkt{cur: p.G.PathSource(p.Set.Paths[i])}
	}
	trace := c.explore(init, maxSteps, "")
	if trace != "" {
		c.res.Delivered = false
		c.res.Counterexample = trace
	}
	return c.res, nil
}

// head returns the current head edge of a packet (the retrace stack
// first, then the preselected suffix) and whether the packet has a
// remaining path.
func (c *checker) head(id int, p *pkt) (graph.EdgeID, bool) {
	if len(p.stack) > 0 {
		return p.stack[len(p.stack)-1], true
	}
	if p.suffix < len(c.paths[id]) {
		return c.paths[id][p.suffix], true
	}
	return graph.NoEdge, false
}

// explore returns "" if every execution from s delivers within budget,
// or a counterexample trace otherwise.
func (c *checker) explore(s *state, budget int, depth string) string {
	allDone := true
	for i := range s.pkts {
		if !s.pkts[i].done {
			allDone = false
			break
		}
	}
	if allDone {
		if d := len(strings.Split(depth, ">")) - 1; d > c.res.MaxSteps {
			c.res.MaxSteps = d
		}
		return ""
	}
	if budget == 0 {
		return depth + " [budget exhausted: " + s.key() + "]"
	}
	k := s.key()
	if proved, ok := c.proven[k]; ok && budget >= proved {
		return ""
	}

	// Requests: every live packet wants its head edge away from cur.
	var reqs []request
	for i := range s.pkts {
		p := &s.pkts[i]
		if p.done {
			continue
		}
		e, ok := c.head(i, p)
		if !ok {
			return depth + fmt.Sprintf(" [packet %d stranded with empty path at %d]", i, p.cur)
		}
		dir := c.g.DirectionFrom(e, p.cur)
		reqs = append(reqs, request{i, e, dir, int32(e)<<1 | int32(dir)})
	}

	// Group by slot and enumerate winner combinations.
	bySlot := map[int32][]int{} // slot -> indices into reqs
	var slots []int32
	for ri, r := range reqs {
		if _, ok := bySlot[r.slot]; !ok {
			slots = append(slots, r.slot)
		}
		bySlot[r.slot] = append(bySlot[r.slot], ri)
	}

	// winnersChoice[j] = which contender of slots[j] wins.
	choice := make([]int, len(slots))
	fail := c.enumerateWinners(s, budget, depth, reqs, slots, bySlot, choice, 0)
	if fail == "" {
		c.proven[k] = budget
	}
	return fail
}

// enumerateWinners recursively fixes a winner per contested slot, then
// hands off to deflection enumeration.
func (c *checker) enumerateWinners(s *state, budget int, depth string,
	reqs []request, slots []int32, bySlot map[int32][]int, choice []int, j int) string {
	if j == len(slots) {
		winner := make(map[int]bool)
		used := make(map[int32]bool)
		for jj, slot := range slots {
			ri := bySlot[slot][choice[jj]]
			winner[reqs[ri].id] = true
			used[slot] = true
		}
		var losers []int
		for _, r := range reqs {
			if !winner[r.id] {
				losers = append(losers, r.id)
			}
		}
		return c.enumerateDeflections(s, budget, depth, reqs, winner, used, losers, 0)
	}
	var fail string
	for pick := range bySlot[slots[j]] {
		choice[j] = pick
		if f := c.enumerateWinners(s, budget, depth, reqs, slots, bySlot, choice, j+1); f != "" {
			fail = f
			break
		}
	}
	return fail
}

// enumerateDeflections assigns each loser, in order, every free slot at
// its node (backward slots first; forward only if no backward is free —
// mirroring the engine's tiers while branching within each tier).
func (c *checker) enumerateDeflections(s *state, budget int, depth string,
	reqs []request, winner map[int]bool, used map[int32]bool, losers []int, li int) string {
	if li == len(losers) {
		return c.commit(s, budget, depth, reqs, winner, used, losers)
	}
	id := losers[li]
	p := &s.pkts[id]
	node := c.g.Node(p.cur)
	var cands []int32
	for _, ed := range node.Down {
		sl := int32(ed)<<1 | int32(graph.Backward)
		if !used[sl] {
			cands = append(cands, sl)
		}
	}
	if len(cands) == 0 {
		for _, ed := range node.Up {
			sl := int32(ed)<<1 | int32(graph.Forward)
			if !used[sl] {
				cands = append(cands, sl)
			}
		}
	}
	if len(cands) == 0 {
		return depth + fmt.Sprintf(" [capacity violated for packet %d at node %d]", id, p.cur)
	}
	if len(cands) > c.maxOuts {
		c.maxOuts = len(cands)
	}
	var fail string
	for _, sl := range cands {
		used[sl] = true
		c.deflect[id] = sl
		if f := c.enumerateDeflections(s, budget, depth, reqs, winner, used, losers, li+1); f != "" {
			fail = f
		}
		delete(c.deflect, id)
		used[sl] = false
		if fail != "" {
			break
		}
	}
	return fail
}

// commit applies one fully-resolved step and recurses.
func (c *checker) commit(s *state, budget int, depth string,
	reqs []request, winner map[int]bool, used map[int32]bool, losers []int) string {
	next := &state{pkts: make([]pkt, len(s.pkts))}
	for i := range s.pkts {
		next.pkts[i] = s.pkts[i]
		next.pkts[i].stack = append([]graph.EdgeID(nil), s.pkts[i].stack...)
	}
	apply := func(id int, e graph.EdgeID, d graph.Direction) {
		p := &next.pkts[id]
		dest := c.g.EndpointAt(e, d)
		he, _ := c.head(id, p)
		if he == e && ((len(p.stack) > 0) || p.suffix < len(c.paths[id])) {
			// Traversing the head: pop stack or advance suffix.
			if len(p.stack) > 0 {
				p.stack = p.stack[:len(p.stack)-1]
			} else {
				p.suffix++
			}
		} else {
			p.stack = append(p.stack, e)
		}
		p.cur = dest
		if p.cur == c.dsts[id] {
			p.done = true
			p.stack = nil
		}
	}
	for _, r := range reqs {
		if winner[r.id] {
			apply(r.id, r.e, r.dir)
		}
	}
	for _, id := range losers {
		sl := c.deflect[id]
		apply(id, graph.EdgeID(sl>>1), graph.Direction(sl&1))
	}
	c.res.Branches++
	f := c.explore(next, budget-1, depth+">")
	if f == "" {
		c.res.States++
	}
	return f
}
