package exhaustive

import (
	"fmt"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// mergeProblem: two packets from distinct sources merging at a middle
// node and sharing the final edge (the minimal conflict instance).
func mergeProblem(t *testing.T) *workload.Problem {
	t.Helper()
	b := graph.NewBuilder("merge")
	a := b.AddNode(0, "a")
	bb := b.AddNode(0, "b")
	m := b.AddNode(1, "m")
	x := b.AddNode(2, "x")
	eam := b.AddEdge(a, m)
	ebm := b.AddEdge(bb, m)
	emx := b.AddEdge(m, x)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{{eam, emx}, {ebm, emx}})
	return &workload.Problem{Name: "merge", G: g, Set: set, C: 2, D: 2}
}

func TestVerifyMergeAllBranchesDeliver(t *testing.T) {
	p := mergeProblem(t)
	res, err := Verify(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("counterexample found:\n%s", res.Counterexample)
	}
	if res.Branches < 2 {
		t.Errorf("only %d branches explored; the conflict should branch", res.Branches)
	}
	t.Logf("merge: %d states, %d branches, deepest %d steps", res.States, res.Branches, res.MaxSteps)
}

func TestVerifyFunnelThreePackets(t *testing.T) {
	// Three packets into one sink through two middle nodes: heavy
	// branching, all executions must still deliver.
	b := graph.NewBuilder("funnel")
	var l0, l1 []graph.NodeID
	for i := 0; i < 3; i++ {
		l0 = append(l0, b.AddNode(0, fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < 2; i++ {
		l1 = append(l1, b.AddNode(1, fmt.Sprintf("m%d", i)))
	}
	sink := b.AddNode(2, "t")
	for _, u := range l0 {
		for _, m := range l1 {
			b.AddEdge(u, m)
		}
	}
	for _, m := range l1 {
		b.AddEdge(m, sink)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]graph.Path, 3)
	for k := 0; k < 3; k++ {
		mid := l1[k%2]
		ps[k] = graph.Path{g.EdgeBetween(l0[k], mid), g.EdgeBetween(mid, sink)}
	}
	set := paths.NewPathSet(g, ps)
	p := &workload.Problem{Name: "funnel3", G: g, Set: set, C: set.Congestion(), D: 2}

	res, err := Verify(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("counterexample found:\n%s", res.Counterexample)
	}
	t.Logf("funnel3: %d states, %d branches, deepest %d steps", res.States, res.Branches, res.MaxSteps)
}

func TestVerifyLadderPair(t *testing.T) {
	g, err := topo.Ladder(3)
	if err != nil {
		t.Fatal(err)
	}
	// Two packets with fully overlapping column-0 paths.
	var p0, p1 graph.Path
	for l := 0; l < 3; l++ {
		p0 = append(p0, g.EdgeBetween(g.Level(l)[0], g.Level(l + 1)[0]))
	}
	p1 = append(graph.Path{g.EdgeBetween(g.Level(0)[1], g.Level(1)[0])}, p0[1:]...)
	set := paths.NewPathSet(g, []graph.Path{p0, p1})
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &workload.Problem{Name: "ladderpair", G: g, Set: set, C: 2, D: 3}
	res, err := Verify(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("counterexample:\n%s", res.Counterexample)
	}
}

func TestVerifyBudgetTooTightProducesCounterexample(t *testing.T) {
	p := mergeProblem(t)
	// The loser needs 4 steps; a budget of 3 must yield a trace.
	res, err := Verify(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("expected a budget-exhausted counterexample")
	}
	if res.Counterexample == "" {
		t.Fatal("empty counterexample")
	}
}

func TestVerifyRejectsLargeInstances(t *testing.T) {
	g, err := topo.Linear(8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(p, 10); err == nil {
		t.Error("6-packet instance accepted")
	}
}

func TestVerifySinglePacketTrivial(t *testing.T) {
	g, err := topo.Linear(5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.MaxSteps != 4 {
		t.Errorf("single packet: %+v", res)
	}
}
