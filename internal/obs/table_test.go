package obs

import (
	"strings"
	"testing"
)

func TestTableHeaderOnceAndFormatting(t *testing.T) {
	var b strings.Builder
	tab := NewTable(&b, "key", "n", "rate")
	if err := tab.Row("a", 3, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := tab.Row("b", 4, 1.0); err != nil {
		t.Fatal(err)
	}
	want := "key,n,rate\na,3,0.25\nb,4,1\n"
	if b.String() != want {
		t.Fatalf("table = %q, want %q", b.String(), want)
	}
	if tab.Rows() != 2 {
		t.Fatalf("Rows() = %d", tab.Rows())
	}
}

// TestTableQuoting: values containing CSV metacharacters (fault specs
// hold commas) must be RFC 4180 quoted so the table never shears.
func TestTableQuoting(t *testing.T) {
	var b strings.Builder
	tab := NewTable(&b, "fault", "x")
	if err := tab.Row("flap:period=40,down=4", 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Row(`say "hi"`, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if lines[1] != `"flap:period=40,down=4",1` {
		t.Fatalf("comma value not quoted: %q", lines[1])
	}
	if lines[2] != `"say ""hi""",2` {
		t.Fatalf("quote value not escaped: %q", lines[2])
	}
}

func TestTableColumnCountMismatch(t *testing.T) {
	var b strings.Builder
	tab := NewTable(&b, "a", "b")
	if err := tab.Row(1); err == nil {
		t.Fatal("short row accepted")
	}
	if b.Len() != 0 {
		t.Fatalf("failed row wrote output: %q", b.String())
	}
	if err := tab.Row(1, 2, 3); err == nil {
		t.Fatal("long row accepted")
	}
}
