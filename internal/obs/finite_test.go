package obs

import (
	"encoding/json"
	"math"
	"testing"
)

func TestFiniteOr(t *testing.T) {
	cases := []struct{ x, fallback, want float64 }{
		{1.5, 0, 1.5},
		{0, 7, 0},
		{math.NaN(), 0, 0},
		{math.Inf(1), -1, -1},
		{math.Inf(-1), 2, 2},
		{math.MaxFloat64, 0, math.MaxFloat64},
	}
	for _, c := range cases {
		if got := FiniteOr(c.x, c.fallback); got != c.want {
			t.Errorf("FiniteOr(%g, %g) = %g, want %g", c.x, c.fallback, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio(3,4) = %g", got)
	}
	// The two degenerate divisions that used to poison exports.
	if got := Ratio(5, 0); got != 0 {
		t.Errorf("Ratio(5,0) = %g, want 0", got)
	}
	if got := Ratio(0, 0); got != 0 {
		t.Errorf("Ratio(0,0) = %g, want 0", got)
	}
	// Whatever comes out must survive a JSON encoder (the expvar
	// contract).
	for _, v := range []float64{Ratio(5, 0), Ratio(0, 0), FiniteOr(math.NaN(), 0)} {
		if _, err := json.Marshal(v); err != nil {
			t.Errorf("exported value %v not JSON-encodable: %v", v, err)
		}
	}
}
