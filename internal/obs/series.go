package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hotpotato/internal/sim"
)

// TimeSeries is a Probe that records the annotated series in memory
// for export: per-step rows (sampled every Every steps), plus every
// round and phase row. Zero value is ready to use.
type TimeSeries struct {
	// Every samples per-step rows every Every steps (<= 1 keeps all).
	// Round and phase rows are always kept.
	Every int

	Steps  []StepStats
	Rounds []StepStats
	Phases []StepStats
}

// OnStep implements Probe.
func (ts *TimeSeries) OnStep(s *StepStats) {
	if ts.Every > 1 && s.Step%ts.Every != 0 {
		return
	}
	ts.Steps = append(ts.Steps, s.Clone())
}

// OnRound implements Probe.
func (ts *TimeSeries) OnRound(s *StepStats) { ts.Rounds = append(ts.Rounds, s.Clone()) }

// OnPhase implements Probe.
func (ts *TimeSeries) OnPhase(s *StepStats) { ts.Phases = append(ts.Phases, s.Clone()) }

// csvHeader lists the fixed columns of WriteCSV, before the variable
// per-level occupancy and per-set target columns.
var csvHeader = []string{
	"step", "phase", "round", "active", "injected", "absorbed", "moves",
	"defl_arrival_reverse", "defl_safe_backward", "defl_unsafe_backward",
	"defl_forward", "excited", "fault_blocked", "fault_stalls",
	"edges_down", "availability",
	"injection_waits", "queue_delay", "blocked", "max_queue_len",
	"window_lo", "window_hi",
}

// WriteCSV emits one CSV table for a row set (use ts.Steps, ts.Rounds
// or ts.Phases): the fixed counter columns, then l0..lL occupancy
// columns, then tgt0..tgtS frame-target columns when present.
func WriteCSV(w io.Writer, rows []StepStats) error {
	var b strings.Builder
	b.WriteString(strings.Join(csvHeader, ","))
	if len(rows) > 0 {
		for l := range rows[0].Occupancy {
			fmt.Fprintf(&b, ",l%d", l)
		}
		for i := range rows[0].FrameTargets {
			fmt.Fprintf(&b, ",tgt%d", i)
		}
	}
	b.WriteByte('\n')
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%d",
			r.Step, r.Phase, r.Round, r.Active, r.Injected, r.Absorbed,
			r.Moves,
			r.Deflections[sim.DeflectArrivalReverse],
			r.Deflections[sim.DeflectSafeBackward],
			r.Deflections[sim.DeflectUnsafeBackward],
			r.Deflections[sim.DeflectForward],
			r.Excited, r.FaultBlocked, r.FaultStalls,
			r.EdgesDown, r.Availability, r.InjectionWaits,
			r.QueueDelay, r.Blocked, r.MaxQueueLen,
			r.WindowLo, r.WindowHi)
		for _, c := range r.Occupancy {
			fmt.Fprintf(&b, ",%d", c)
		}
		for _, tl := range r.FrameTargets {
			fmt.Fprintf(&b, ",%d", tl)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesDoc is WriteJSON's document shape.
type seriesDoc struct {
	Steps  []StepStats `json:"steps,omitempty"`
	Rounds []StepStats `json:"rounds,omitempty"`
	Phases []StepStats `json:"phases,omitempty"`
}

// WriteJSON emits the recorded series as one indented JSON document
// with steps/rounds/phases arrays (empty arrays omitted).
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(seriesDoc{Steps: ts.Steps, Rounds: ts.Rounds, Phases: ts.Phases})
}
