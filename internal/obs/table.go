package obs

import (
	"fmt"
	"io"
	"strings"
)

// Table is a streaming CSV exporter for row-per-event summaries (the
// campaign runner streams one row per completed cell through it). The
// header is emitted before the first row; each Row call writes and —
// when the destination supports it — syncs one line, so a live tail of
// the file tracks progress and an interrupted run leaves at most one
// torn line. Unlike WriteCSV it holds nothing in memory.
type Table struct {
	w    io.Writer
	cols []string
	rows int
}

// NewTable builds a streaming table with the given columns.
func NewTable(w io.Writer, cols ...string) *Table {
	return &Table{w: w, cols: cols}
}

// Rows returns the number of data rows written so far.
func (t *Table) Rows() int { return t.rows }

// Row appends one row, formatting each value with %v (floats via %g).
// The column count must match the header.
func (t *Table) Row(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("obs: table row has %d values for %d columns", len(vals), len(t.cols))
	}
	var b strings.Builder
	if t.rows == 0 {
		b.WriteString(strings.Join(t.cols, ","))
		b.WriteByte('\n')
	}
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(&b, "%g", x)
		case string:
			// Commas inside values (fault specs) would shear the table;
			// quote per RFC 4180.
			if strings.ContainsAny(x, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(x, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(x)
			}
		default:
			fmt.Fprintf(&b, "%v", x)
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(t.w, b.String()); err != nil {
		return err
	}
	t.rows++
	if s, ok := t.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}
