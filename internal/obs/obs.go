// Package obs is the simulator's observability layer: it turns the
// engines' raw per-step snapshots (sim.Probe / sim.SFProbe) into an
// annotated per-step / per-round / per-phase time series, records
// packet lifecycle events into a fixed-capacity ring, and exports both
// as CSV/JSON. Everything here consumes the hooks in
// internal/sim/probe.go; nothing is active unless explicitly attached,
// so runs without observability keep the engines' 0 allocs/step
// steady state.
//
// The data path is deterministic end to end: the engine builds each
// snapshot from order-independent sources (metric deltas merged at the
// step barrier, commutative per-shard sums, a sequential post-commit
// census), and the Collector only derives from that snapshot plus the
// pure schedule arithmetic — so workers=1 and workers=N produce
// byte-identical series (asserted in internal/core's tests).
package obs

import "hotpotato/internal/sim"

// StepStats is the annotated snapshot handed to probes: the engine's
// raw per-step snapshot plus the frontier-frame coordinates of the
// step. For the per-round and per-phase callbacks the counter fields
// hold window sums, the gauge fields (Active, Occupancy, MaxQueueLen)
// the end-of-window value (MaxQueueLen the window maximum), and Step
// the window's last step.
//
// Like the engine's snapshot, the value is reused across calls; probes
// must copy what they keep (Clone does a deep copy).
type StepStats struct {
	sim.StepSnapshot

	// Phase and Round locate the step in the frontier-frame timetable;
	// both are -1 when the Collector has no schedule (baseline routers,
	// the store-and-forward engine).
	Phase int `json:"phase"`
	Round int `json:"round"`
	// FrameTargets[i] is frontier-set i's target level at this step
	// (possibly outside [0, L] while frame i is partially outside the
	// network). Empty without a schedule.
	FrameTargets []int `json:"frame_targets,omitempty"`
}

// Clone returns a deep copy (fresh Occupancy and FrameTargets
// backings) safe to keep across callbacks.
func (s *StepStats) Clone() StepStats {
	c := *s
	c.Occupancy = append([]int(nil), s.Occupancy...)
	c.FrameTargets = append([]int(nil), s.FrameTargets...)
	return c
}

// Schedule is the timetable the Collector uses to annotate steps and
// detect round/phase boundaries. core.Schedule satisfies it; the
// interface keeps obs importable from core without a cycle.
type Schedule interface {
	PhaseOf(t int) int
	RoundOf(t int) int
	IsRoundEnd(t int) bool
	IsPhaseEnd(t int) bool
	TargetLevel(set, phase, round int) int
	Sets() int
}

// Probe receives the annotated time series. All callbacks run
// sequentially on the stepping goroutine; the StepStats value is
// collector-owned and valid only for the duration of the call.
type Probe interface {
	// OnStep fires after every committed step.
	OnStep(s *StepStats)
	// OnRound fires at each round boundary with the round's
	// accumulated stats (never fires without a schedule, except from
	// Flush).
	OnRound(s *StepStats)
	// OnPhase fires at each phase boundary with the phase's
	// accumulated stats.
	OnPhase(s *StepStats)
}

// window accumulates StepStats over a round or phase.
type window struct {
	StepStats
	n int // steps accumulated; 0 = empty
}

func (w *window) add(s *StepStats) {
	if w.n == 0 {
		occ, ft := w.Occupancy, w.FrameTargets
		w.StepStats = *s
		w.Occupancy = append(occ[:0], s.Occupancy...)
		w.FrameTargets = append(ft[:0], s.FrameTargets...)
		w.n = 1
		return
	}
	w.n++
	w.Step = s.Step
	w.Phase = s.Phase
	w.Round = s.Round
	w.Injected += s.Injected
	w.Absorbed += s.Absorbed
	w.Moves += s.Moves
	for k := range w.Deflections {
		w.Deflections[k] += s.Deflections[k]
	}
	w.Excited += s.Excited
	w.FaultBlocked += s.FaultBlocked
	w.FaultStalls += s.FaultStalls
	w.InjectionWaits += s.InjectionWaits
	// Availability averages over the window; EdgesDown keeps the peak
	// simultaneous outage (both are gauges, but an end-of-window sample
	// would hide an outage that opened and healed mid-window).
	w.Availability += (s.Availability - w.Availability) / float64(w.n)
	if s.EdgesDown > w.EdgesDown {
		w.EdgesDown = s.EdgesDown
	}
	w.QueueDelay += s.QueueDelay
	w.Blocked += s.Blocked
	if s.MaxQueueLen > w.MaxQueueLen {
		w.MaxQueueLen = s.MaxQueueLen
	}
	// The active level band widens to the union of the step bands, so a
	// round/phase row reports every level that held a packet during it
	// (an end-of-window sample would hide the frontier's sweep). Empty
	// step bands (lo > hi, nothing in flight) contribute nothing.
	if s.WindowHi >= s.WindowLo {
		if w.WindowHi < w.WindowLo {
			w.WindowLo, w.WindowHi = s.WindowLo, s.WindowHi
		} else {
			if s.WindowLo < w.WindowLo {
				w.WindowLo = s.WindowLo
			}
			if s.WindowHi > w.WindowHi {
				w.WindowHi = s.WindowHi
			}
		}
	}
	// Gauges: keep the end-of-window value.
	w.Active = s.Active
	w.Occupancy = append(w.Occupancy[:0], s.Occupancy...)
	w.FrameTargets = append(w.FrameTargets[:0], s.FrameTargets...)
}

// Collector adapts the engines' raw snapshot stream into the annotated
// Probe vocabulary. It implements both sim.Probe and sim.SFProbe, so
// one collector serves either engine; attach it with Attach/AttachSF
// (or sim's AttachProbe directly). A nil schedule is allowed — steps
// then carry Phase = Round = -1 and only OnStep fires (plus one
// trailing OnRound/OnPhase from Flush covering the whole run).
type Collector struct {
	sched  Schedule
	probes []Probe

	step  StepStats
	round window
	phase window
}

// NewCollector builds a collector feeding the given probes in order.
// sched may be nil (no phase annotation, no boundary callbacks).
func NewCollector(sched Schedule, probes ...Probe) *Collector {
	c := &Collector{sched: sched, probes: probes}
	c.step.Phase, c.step.Round = -1, -1
	return c
}

// AddProbe appends another probe to the fan-out list.
func (c *Collector) AddProbe(p Probe) { c.probes = append(c.probes, p) }

// Attach registers the collector on a hot-potato engine. Probes
// compose at the engine (sim.Engine.AttachProbe), so attaching a
// second collector chains rather than replaces.
func (c *Collector) Attach(e *sim.Engine) { e.AttachProbe(c) }

// AttachSF registers the collector on a store-and-forward engine.
func (c *Collector) AttachSF(e *sim.SFEngine) { e.AttachProbe(c) }

// OnStep implements sim.Probe.
func (c *Collector) OnStep(_ *sim.Engine, s *sim.StepSnapshot) { c.ingest(s) }

// OnSFStep implements sim.SFProbe.
func (c *Collector) OnSFStep(_ *sim.SFEngine, s *sim.StepSnapshot) { c.ingest(s) }

func (c *Collector) ingest(s *sim.StepSnapshot) {
	t := s.Step
	st := &c.step
	occ := st.Occupancy
	st.StepSnapshot = *s
	st.Occupancy = append(occ[:0], s.Occupancy...)
	if c.sched != nil {
		st.Phase = c.sched.PhaseOf(t)
		st.Round = c.sched.RoundOf(t)
		sets := c.sched.Sets()
		if cap(st.FrameTargets) < sets {
			st.FrameTargets = make([]int, sets)
		}
		st.FrameTargets = st.FrameTargets[:sets]
		for i := 0; i < sets; i++ {
			st.FrameTargets[i] = c.sched.TargetLevel(i, st.Phase, st.Round)
		}
	}
	for _, p := range c.probes {
		p.OnStep(st)
	}
	c.round.add(st)
	c.phase.add(st)
	if c.sched != nil {
		if c.sched.IsRoundEnd(t) || c.sched.IsPhaseEnd(t) {
			c.emitRound()
		}
		if c.sched.IsPhaseEnd(t) {
			c.emitPhase()
		}
	}
}

func (c *Collector) emitRound() {
	if c.round.n == 0 {
		return
	}
	for _, p := range c.probes {
		p.OnRound(&c.round.StepStats)
	}
	c.round.n = 0
}

func (c *Collector) emitPhase() {
	if c.phase.n == 0 {
		return
	}
	for _, p := range c.probes {
		p.OnPhase(&c.phase.StepStats)
	}
	c.phase.n = 0
}

// Flush emits the trailing partial round and phase (runs usually end
// mid-phase: the last packet is absorbed, not the timetable). Call
// once after the run; a flush with nothing pending is a no-op.
func (c *Collector) Flush() {
	c.emitRound()
	c.emitPhase()
}
