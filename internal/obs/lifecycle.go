package obs

import (
	"fmt"
	"io"
	"strings"

	"hotpotato/internal/sim"
)

// Event is one recorded packet lifecycle event. Arg depends on Kind:
// source node for inject, sim.DeflectKind for deflect, restore reason
// for restore, destination node for absorb, unused otherwise.
type Event struct {
	Step   int           `json:"step"`
	Packet sim.PacketID  `json:"packet"`
	Kind   sim.EventKind `json:"kind"`
	Arg    int32         `json:"arg"`
}

// String renders the event compactly ("t=12 p=3 deflect arg=1").
func (e Event) String() string {
	return fmt.Sprintf("t=%d p=%d %s arg=%d", e.Step, e.Packet, e.Kind, e.Arg)
}

// Lifecycle is a fixed-capacity packet-lifecycle ring buffer
// implementing sim.EventSink: once full, the oldest events are
// overwritten (Dropped counts them). The buffer is allocated once at
// construction; recording never allocates, so a lifecycle ring on a
// hot run only costs the store itself.
//
// By default every packet is recorded; Select restricts recording to a
// packet-ID set (lifecycle tracing of a few suspect packets over a
// long soak without drowning in the rest).
type Lifecycle struct {
	buf     []Event
	head    int // index of the oldest event
	n       int // live events in buf
	dropped int
	filter  map[sim.PacketID]struct{}
}

// NewLifecycle builds a ring holding up to capacity events (min 1).
func NewLifecycle(capacity int) *Lifecycle {
	if capacity < 1 {
		capacity = 1
	}
	return &Lifecycle{buf: make([]Event, capacity)}
}

// Select restricts recording to the given packet IDs (replacing any
// earlier selection). With no IDs the filter is cleared and every
// packet is recorded again.
func (l *Lifecycle) Select(pids ...sim.PacketID) {
	if len(pids) == 0 {
		l.filter = nil
		return
	}
	l.filter = make(map[sim.PacketID]struct{}, len(pids))
	for _, pid := range pids {
		l.filter[pid] = struct{}{}
	}
}

// Attach registers the ring on a hot-potato engine (sinks compose at
// the engine and are cleared by Reset).
func (l *Lifecycle) Attach(e *sim.Engine) { e.AttachEventSink(l) }

// AttachSF registers the ring on a store-and-forward engine.
func (l *Lifecycle) AttachSF(e *sim.SFEngine) { e.AttachEventSink(l) }

// RecordEvent implements sim.EventSink.
func (l *Lifecycle) RecordEvent(t int, pid sim.PacketID, kind sim.EventKind, arg int32) {
	if l.filter != nil {
		if _, ok := l.filter[pid]; !ok {
			return
		}
	}
	ev := Event{Step: t, Packet: pid, Kind: kind, Arg: arg}
	if l.n < len(l.buf) {
		l.buf[(l.head+l.n)%len(l.buf)] = ev
		l.n++
		return
	}
	l.buf[l.head] = ev
	l.head = (l.head + 1) % len(l.buf)
	l.dropped++
}

// Len returns the number of events currently held.
func (l *Lifecycle) Len() int { return l.n }

// Dropped returns how many events were overwritten after the ring
// filled.
func (l *Lifecycle) Dropped() int { return l.dropped }

// Events returns the held events oldest-first (a fresh slice).
func (l *Lifecycle) Events() []Event {
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// WriteCSV emits the held events oldest-first as
// step,packet,kind,arg rows (kind by name).
func (l *Lifecycle) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("step,packet,kind,arg\n")
	for _, ev := range l.Events() {
		fmt.Fprintf(&b, "%d,%d,%s,%d\n", ev.Step, ev.Packet, ev.Kind, ev.Arg)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
