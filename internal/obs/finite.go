package obs

import "math"

// FiniteOr returns x unless it is NaN or ±Inf, in which case it returns
// fallback. This is the last-line export guard for every metric that
// leaves the process as JSON or expvar: encoding/json rejects NaN/Inf
// outright (the whole /debug/vars page breaks, not just one field), so
// exporters route computed ratios and means through this instead of
// trusting every upstream division. Upstream code should still guard
// its own divisions — FiniteOr is defense in depth, not the fix.
func FiniteOr(x, fallback float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fallback
	}
	return x
}

// Ratio is FiniteOr specialised to the common num/den counter ratio:
// it returns 0 when den is 0 instead of dividing.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return FiniteOr(num/den, 0)
}
