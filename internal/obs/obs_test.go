package obs_test

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/obs"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func testProblem(t *testing.T) *workload.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	g, err := topo.Random(rng, 14, 2, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func frameSetup(t *testing.T, p *workload.Problem) (*core.Frame, core.Schedule) {
	t.Helper()
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	r := core.NewFrame(params)
	return r, r.Schedule()
}

// TestCollectorAnnotatesSteps: every committed step produces one
// annotated row whose phase/round/frame-target columns match the
// schedule arithmetic, and whose counter columns sum to the engine's
// cumulative metrics.
func TestCollectorAnnotatesSteps(t *testing.T) {
	p := testProblem(t)
	router, sched := frameSetup(t, p)
	e := sim.NewEngine(p, router, 4)
	defer e.Close()
	ts := &obs.TimeSeries{}
	coll := obs.NewCollector(sched, ts)
	coll.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	coll.Flush()

	if len(ts.Steps) != steps {
		t.Fatalf("step rows = %d, steps = %d", len(ts.Steps), steps)
	}
	var injected, absorbed, moves, defl int
	for i := range ts.Steps {
		r := &ts.Steps[i]
		if r.Step != i {
			t.Fatalf("row %d carries step %d", i, r.Step)
		}
		if r.Phase != sched.PhaseOf(r.Step) || r.Round != sched.RoundOf(r.Step) {
			t.Fatalf("step %d annotated (phase=%d, round=%d), schedule says (%d, %d)",
				r.Step, r.Phase, r.Round, sched.PhaseOf(r.Step), sched.RoundOf(r.Step))
		}
		if len(r.FrameTargets) != sched.Sets() {
			t.Fatalf("step %d: %d frame targets, %d sets", r.Step, len(r.FrameTargets), sched.Sets())
		}
		for set, tl := range r.FrameTargets {
			if want := sched.TargetLevel(set, r.Phase, r.Round); tl != want {
				t.Fatalf("step %d set %d: target %d, schedule says %d", r.Step, set, tl, want)
			}
		}
		occ := 0
		for _, c := range r.Occupancy {
			occ += c
		}
		if occ != r.Active {
			t.Fatalf("step %d: occupancy sums to %d, active = %d", r.Step, occ, r.Active)
		}
		injected += r.Injected
		absorbed += r.Absorbed
		moves += r.Moves
		for _, d := range r.Deflections {
			defl += d
		}
	}
	totalDefl := 0
	for _, d := range e.M.Deflections {
		totalDefl += d
	}
	if injected != e.M.Injected || absorbed != e.M.Absorbed || moves != e.M.Moves || defl != totalDefl {
		t.Errorf("per-step deltas do not sum to cumulative metrics: injected %d/%d absorbed %d/%d moves %d/%d deflections %d/%d",
			injected, e.M.Injected, absorbed, e.M.Absorbed, moves, e.M.Moves, defl, totalDefl)
	}
}

// TestCollectorWindows: round and phase rows are window sums — the
// same totals as the step rows, grouped by the schedule's boundaries,
// with the trailing partial window emitted by Flush.
func TestCollectorWindows(t *testing.T) {
	p := testProblem(t)
	router, sched := frameSetup(t, p)
	e := sim.NewEngine(p, router, 4)
	defer e.Close()
	ts := &obs.TimeSeries{}
	coll := obs.NewCollector(sched, ts)
	coll.Attach(e)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	coll.Flush()

	if len(ts.Rounds) == 0 || len(ts.Phases) == 0 {
		t.Fatalf("no window rows (rounds=%d phases=%d)", len(ts.Rounds), len(ts.Phases))
	}
	sum := func(rows []obs.StepStats) (injected, absorbed, excited int) {
		for i := range rows {
			injected += rows[i].Injected
			absorbed += rows[i].Absorbed
			excited += rows[i].Excited
		}
		return
	}
	si, sa, se := sum(ts.Steps)
	ri, ra, re := sum(ts.Rounds)
	pi, pa, pe := sum(ts.Phases)
	if si != ri || sa != ra || se != re {
		t.Errorf("round windows lose mass: steps (%d,%d,%d) vs rounds (%d,%d,%d)", si, sa, se, ri, ra, re)
	}
	if si != pi || sa != pa || se != pe {
		t.Errorf("phase windows lose mass: steps (%d,%d,%d) vs phases (%d,%d,%d)", si, sa, se, pi, pa, pe)
	}
	// Window rows are labeled by their last step, in increasing order,
	// with strictly increasing phase labels across phase rows.
	last := -1
	for i := range ts.Phases {
		r := &ts.Phases[i]
		if r.Step <= last {
			t.Fatalf("phase row %d not ordered: step %d after %d", i, r.Step, last)
		}
		last = r.Step
		if i > 0 && r.Phase <= ts.Phases[i-1].Phase {
			t.Fatalf("phase labels not increasing: %d then %d", ts.Phases[i-1].Phase, r.Phase)
		}
	}
}

// TestCollectorNilSchedule: baseline routers have no timetable; steps
// carry -1 coordinates and the only window rows are the run totals
// emitted by Flush.
func TestCollectorNilSchedule(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 4)
	defer e.Close()
	ts := &obs.TimeSeries{}
	coll := obs.NewCollector(nil, ts)
	coll.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	if len(ts.Rounds) != 0 || len(ts.Phases) != 0 {
		t.Fatalf("window rows without a schedule before Flush: rounds=%d phases=%d", len(ts.Rounds), len(ts.Phases))
	}
	coll.Flush()
	if len(ts.Rounds) != 1 || len(ts.Phases) != 1 {
		t.Fatalf("Flush should emit exactly one trailing round and phase, got %d and %d", len(ts.Rounds), len(ts.Phases))
	}
	if got := ts.Phases[0]; got.Phase != -1 || got.Round != -1 || len(got.FrameTargets) != 0 {
		t.Errorf("schedule-less phase row carries coordinates: %+v", got)
	}
	if ts.Phases[0].Injected != e.M.Injected || ts.Phases[0].Absorbed != e.M.Absorbed {
		t.Errorf("run-total window: %+v, engine %+v", ts.Phases[0], e.M)
	}
	if len(ts.Steps) != steps {
		t.Errorf("step rows = %d, steps = %d", len(ts.Steps), steps)
	}
	// Flushing again is a no-op.
	coll.Flush()
	if len(ts.Rounds) != 1 || len(ts.Phases) != 1 {
		t.Error("second Flush re-emitted windows")
	}
}

// TestCollectorSF: the same collector serves the store-and-forward
// engine; queue-delay deltas sum to the cumulative metric.
func TestCollectorSF(t *testing.T) {
	p := testProblem(t)
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 4)
	ts := &obs.TimeSeries{}
	coll := obs.NewCollector(nil, ts)
	coll.AttachSF(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("SF run did not complete")
	}
	coll.Flush()
	if len(ts.Steps) != steps {
		t.Fatalf("step rows = %d, steps = %d", len(ts.Steps), steps)
	}
	qd := 0
	for i := range ts.Steps {
		qd += ts.Steps[i].QueueDelay
	}
	if qd != e.M.QueueDelay {
		t.Errorf("queue-delay deltas sum to %d, cumulative %d", qd, e.M.QueueDelay)
	}
	if ts.Steps[len(ts.Steps)-1].Active != 0 {
		t.Error("final SF snapshot still active")
	}
}

// TestTimeSeriesEvery: per-step sampling honors Every; round and phase
// rows are unaffected.
func TestTimeSeriesEvery(t *testing.T) {
	p := testProblem(t)
	router, sched := frameSetup(t, p)
	e := sim.NewEngine(p, router, 4)
	defer e.Close()
	all := &obs.TimeSeries{}
	sampled := &obs.TimeSeries{Every: 10}
	coll := obs.NewCollector(sched, all, sampled)
	coll.Attach(e)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	coll.Flush()
	want := (steps + 9) / 10
	if len(sampled.Steps) != want {
		t.Errorf("sampled rows = %d, want %d of %d steps", len(sampled.Steps), want, steps)
	}
	if len(sampled.Rounds) != len(all.Rounds) || len(sampled.Phases) != len(all.Phases) {
		t.Errorf("sampling dropped window rows: %d/%d rounds, %d/%d phases",
			len(sampled.Rounds), len(all.Rounds), len(sampled.Phases), len(all.Phases))
	}
}

// TestLifecycleStories: with a big enough ring, every packet's event
// stream starts with inject and ends with absorb, and the inject/absorb
// counts match the engine's metrics.
func TestLifecycleStories(t *testing.T) {
	p := testProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 4)
	defer e.Close()
	ring := obs.NewLifecycle(1 << 16)
	ring.Attach(e)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; capacity too small for the test", ring.Dropped())
	}
	first := map[sim.PacketID]sim.EventKind{}
	last := map[sim.PacketID]sim.EventKind{}
	injects, absorbs := 0, 0
	prevStep := 0
	for _, ev := range ring.Events() {
		if ev.Step < prevStep {
			t.Fatalf("events not ordered by step: %v", ev)
		}
		prevStep = ev.Step
		if _, ok := first[ev.Packet]; !ok {
			first[ev.Packet] = ev.Kind
		}
		last[ev.Packet] = ev.Kind
		switch ev.Kind {
		case sim.EventInject:
			injects++
		case sim.EventAbsorb:
			absorbs++
		}
	}
	if injects != e.M.Injected || absorbs != e.M.Absorbed {
		t.Errorf("event counts inject=%d absorb=%d, metrics %d/%d", injects, absorbs, e.M.Injected, e.M.Absorbed)
	}
	for pid, k := range first {
		if k != sim.EventInject {
			t.Errorf("packet %d's first event is %s, want inject", pid, k)
		}
		if last[pid] != sim.EventAbsorb {
			t.Errorf("packet %d's last event is %s, want absorb", pid, last[pid])
		}
	}
}

// TestLifecycleRingWrap: a full ring overwrites oldest-first and
// counts the overwrites.
func TestLifecycleRingWrap(t *testing.T) {
	ring := obs.NewLifecycle(4)
	for i := 0; i < 10; i++ {
		ring.RecordEvent(i, sim.PacketID(i), sim.EventInject, 0)
	}
	if ring.Len() != 4 {
		t.Fatalf("len = %d, want 4", ring.Len())
	}
	if ring.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", ring.Dropped())
	}
	evs := ring.Events()
	for i, ev := range evs {
		if ev.Step != 6+i {
			t.Fatalf("event %d has step %d, want %d (oldest-first after wrap)", i, ev.Step, 6+i)
		}
	}
	// Capacity is clamped to at least 1.
	if tiny := obs.NewLifecycle(0); tiny == nil {
		t.Fatal("nil ring")
	}
}

// TestLifecycleSelect: a packet-ID filter keeps only the chosen
// packets; clearing it records everything again.
func TestLifecycleSelect(t *testing.T) {
	ring := obs.NewLifecycle(64)
	ring.Select(3, 5)
	for pid := sim.PacketID(0); pid < 8; pid++ {
		ring.RecordEvent(0, pid, sim.EventInject, 0)
	}
	for _, ev := range ring.Events() {
		if ev.Packet != 3 && ev.Packet != 5 {
			t.Fatalf("filter leaked packet %d", ev.Packet)
		}
	}
	if ring.Len() != 2 {
		t.Fatalf("len = %d, want 2", ring.Len())
	}
	ring.Select()
	ring.RecordEvent(1, 7, sim.EventAbsorb, 0)
	if ring.Len() != 3 {
		t.Error("cleared filter still rejects")
	}
}

// TestExportShapes: CSV row/column geometry and the JSON document
// shape, round-tripped.
func TestExportShapes(t *testing.T) {
	p := testProblem(t)
	router, sched := frameSetup(t, p)
	e := sim.NewEngine(p, router, 4)
	defer e.Close()
	ts := &obs.TimeSeries{}
	ring := obs.NewLifecycle(1 << 14)
	coll := obs.NewCollector(sched, ts)
	coll.Attach(e)
	ring.Attach(e)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	coll.Flush()

	var b strings.Builder
	if err := obs.WriteCSV(&b, ts.Phases); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(ts.Phases)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(ts.Phases)+1)
	}
	cols := len(strings.Split(lines[0], ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != cols {
			t.Fatalf("csv line %d has %d columns, header has %d", i, got, cols)
		}
	}
	if !strings.HasPrefix(lines[0], "step,phase,round,active,") || !strings.Contains(lines[0], ",tgt0") {
		t.Errorf("csv header = %q", lines[0])
	}

	var jb strings.Builder
	if err := ts.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Steps  []obs.StepStats `json:"steps"`
		Rounds []obs.StepStats `json:"rounds"`
		Phases []obs.StepStats `json:"phases"`
	}
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if len(doc.Steps) != len(ts.Steps) || len(doc.Phases) != len(ts.Phases) {
		t.Errorf("json doc has %d/%d rows, want %d/%d", len(doc.Steps), len(doc.Phases), len(ts.Steps), len(ts.Phases))
	}
	if doc.Steps[0].Step != ts.Steps[0].Step || doc.Phases[0].Phase != ts.Phases[0].Phase {
		t.Error("json round-trip mangled rows")
	}

	var eb strings.Builder
	if err := ring.WriteCSV(&eb); err != nil {
		t.Fatal(err)
	}
	elines := strings.Split(strings.TrimSpace(eb.String()), "\n")
	if elines[0] != "step,packet,kind,arg" {
		t.Errorf("event csv header = %q", elines[0])
	}
	if len(elines) != ring.Len()+1 {
		t.Errorf("event csv lines = %d, want %d", len(elines), ring.Len()+1)
	}
	if !strings.Contains(eb.String(), ",inject,") || !strings.Contains(eb.String(), ",absorb,") {
		t.Error("event csv lacks named kinds")
	}
}

// TestStepStatsClone: Clone detaches the backings, so a kept row is
// immune to the collector's reuse.
func TestStepStatsClone(t *testing.T) {
	s := obs.StepStats{Phase: 2, FrameTargets: []int{1, 2}}
	s.Occupancy = []int{3, 4}
	c := s.Clone()
	s.Occupancy[0] = 99
	s.FrameTargets[0] = 99
	if c.Occupancy[0] != 3 || c.FrameTargets[0] != 1 {
		t.Errorf("clone shares backings: %+v", c)
	}
}
