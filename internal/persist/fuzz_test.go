package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// FuzzReadProblem feeds arbitrary bytes to the problem decoder; it must
// never panic, and whenever it accepts an input the resulting problem
// must satisfy every validated property (so a malicious file cannot
// smuggle an invalid instance past the loader).
func FuzzReadProblem(f *testing.F) {
	// Seed with a genuine serialized problem and some near-misses.
	rng := rand.New(rand.NewSource(1))
	g, err := topo.Random(rng, 8, 2, 4, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"name":"p","network":{"version":1,"name":"g","levels":[0,1],"edges":[[0,1]]},"paths":[[0]]}`)
	f.Add(`{"version":1}`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		p, err := ReadProblem(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted problems must be internally consistent.
		if err := p.G.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
		if err := p.Set.Validate(); err != nil {
			t.Fatalf("accepted invalid paths: %v", err)
		}
		if err := p.Set.CheckOnePacketPerSource(); err != nil {
			t.Fatalf("accepted source collision: %v", err)
		}
		if p.C != p.Set.Congestion() || p.D != p.Set.Dilation() {
			t.Fatalf("cached C/D inconsistent")
		}
		// And must round-trip.
		var out bytes.Buffer
		if err := WriteProblem(&out, p); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := ReadProblem(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}

// FuzzReadCampaignCheckpoint mirrors FuzzReadProblem for campaign
// checkpoints: arbitrary bytes must never panic the reader, and any
// accepted checkpoint must contain only valid, uniquely keyed cells
// that survive an append round-trip.
func FuzzReadCampaignCheckpoint(f *testing.F) {
	// Seed with a genuine checkpoint and some near-misses.
	var buf bytes.Buffer
	h := CampaignHeader{Version: CampaignFormatVersion, Kind: CampaignKind, Name: "seed", SpecHash: "0123456789abcdef"}
	w, err := NewCampaignWriter(&buf, h, true)
	if err != nil {
		f.Fatal(err)
	}
	cell := CampaignCell{
		Key: "butterfly:4/hotspot:12x2/flap/frame", Topo: "butterfly:4", Load: "hotspot:12x2",
		Fault: "flap", Router: "frame", Nodes: 80, Edges: 256, Packets: 12, C: 3, D: 4, L: 4,
		Trials: 6, Succeeded: 5, Absorbed: 60, Expected: 72, DropRate: 1 - 60.0/72.0,
		StepsMean: 100, StepsP50: 90, StepsP90: 120, StepsP99: 130,
		P50Lo: 85, P50Hi: 95, P99Lo: 120, P99Hi: 140, DeflectsPerPacket: 1.5,
	}
	if err := w.Append(&cell); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"kind":"campaign-checkpoint","name":"t","spec_hash":"ab"}` + "\n")
	f.Add(`{"version":1,"kind":"campaign-checkpoint","name":"t","spec_hash":"ab"}` + "\n" + `{"key":"k"}` + "\n")
	f.Add(`{"version":2,"kind":"campaign-checkpoint","name":"t","spec_hash":"ab"}` + "\n")
	f.Add(`{"version":1,"kind":"problem"}` + "\n")
	f.Add("")
	f.Add("\n\n")

	f.Fuzz(func(t *testing.T, data string) {
		h, cells, err := ReadCampaignCheckpoint(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted invalid header: %v", err)
		}
		seen := make(map[string]bool, len(cells))
		for i := range cells {
			if err := cells[i].Validate(); err != nil {
				t.Fatalf("accepted invalid cell %d: %v", i, err)
			}
			if seen[cells[i].Key] {
				t.Fatalf("accepted duplicate cell key %q", cells[i].Key)
			}
			seen[cells[i].Key] = true
		}
		// Accepted checkpoints must round-trip through the writer.
		var out bytes.Buffer
		w, err := NewCampaignWriter(&out, h, true)
		if err != nil {
			t.Fatalf("re-serialize header: %v", err)
		}
		for i := range cells {
			if err := w.Append(&cells[i]); err != nil {
				t.Fatalf("re-serialize cell %d: %v", i, err)
			}
		}
		h2, cells2, err := ReadCampaignCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if h2 != h || len(cells2) != len(cells) {
			t.Fatalf("round-trip changed content")
		}
	})
}

// FuzzReadNetwork mirrors FuzzReadProblem for bare networks.
func FuzzReadNetwork(f *testing.F) {
	g, err := topo.Butterfly(3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"name":"x","levels":[0],"edges":[]}`)
	f.Add(`{"version":1,"name":"x","levels":[0,1],"edges":[[1,0]]}`)
	f.Add(`null`)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadNetwork(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
	})
}
