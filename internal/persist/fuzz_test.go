package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// FuzzReadProblem feeds arbitrary bytes to the problem decoder; it must
// never panic, and whenever it accepts an input the resulting problem
// must satisfy every validated property (so a malicious file cannot
// smuggle an invalid instance past the loader).
func FuzzReadProblem(f *testing.F) {
	// Seed with a genuine serialized problem and some near-misses.
	rng := rand.New(rand.NewSource(1))
	g, err := topo.Random(rng, 8, 2, 4, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"name":"p","network":{"version":1,"name":"g","levels":[0,1],"edges":[[0,1]]},"paths":[[0]]}`)
	f.Add(`{"version":1}`)
	f.Add(`[]`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		p, err := ReadProblem(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted problems must be internally consistent.
		if err := p.G.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
		if err := p.Set.Validate(); err != nil {
			t.Fatalf("accepted invalid paths: %v", err)
		}
		if err := p.Set.CheckOnePacketPerSource(); err != nil {
			t.Fatalf("accepted source collision: %v", err)
		}
		if p.C != p.Set.Congestion() || p.D != p.Set.Dilation() {
			t.Fatalf("cached C/D inconsistent")
		}
		// And must round-trip.
		var out bytes.Buffer
		if err := WriteProblem(&out, p); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := ReadProblem(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}

// FuzzReadNetwork mirrors FuzzReadProblem for bare networks.
func FuzzReadNetwork(f *testing.F) {
	g, err := topo.Butterfly(3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"name":"x","levels":[0],"edges":[]}`)
	f.Add(`{"version":1,"name":"x","levels":[0,1],"edges":[[1,0]]}`)
	f.Add(`null`)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadNetwork(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid network: %v", err)
		}
	})
}
