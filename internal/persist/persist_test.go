package persist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/graph"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func TestNetworkRoundTrip(t *testing.T) {
	gens := []func() (*graph.Leveled, error){
		func() (*graph.Leveled, error) { return topo.Butterfly(4) },
		func() (*graph.Leveled, error) { return topo.Mesh(4, 5, topo.CornerSE) },
		func() (*graph.Leveled, error) { return topo.Hypercube(4) },
		func() (*graph.Leveled, error) {
			return topo.Random(rand.New(rand.NewSource(1)), 12, 2, 5, 0.4)
		},
	}
	for _, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", g.Name(), err)
		}
		if g2.Name() != g.Name() || g2.NumNodes() != g.NumNodes() ||
			g2.NumEdges() != g.NumEdges() || g2.Depth() != g.Depth() {
			t.Fatalf("%s: round-trip mismatch: %v vs %v", g.Name(), g2.ComputeStats(), g.ComputeStats())
		}
		// Edge IDs and endpoints must round-trip exactly (paths index
		// into them).
		for i := 0; i < g.NumEdges(); i++ {
			e1, e2 := g.Edge(graph.EdgeID(i)), g2.Edge(graph.EdgeID(i))
			if e1.From != e2.From || e1.To != e2.To {
				t.Fatalf("%s: edge %d differs: %v vs %v", g.Name(), i, e1, e2)
			}
		}
		// Labels survive.
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(graph.NodeID(i)).Label != g2.Node(graph.NodeID(i)).Label {
				t.Fatalf("%s: label of node %d differs", g.Name(), i)
			}
		}
	}
}

func TestProblemRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := topo.Random(rng, 16, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	p2, err := ReadProblem(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if p2.Name != p.Name || p2.N() != p.N() || p2.C != p.C || p2.D != p.D || p2.L() != p.L() {
		t.Fatalf("round-trip mismatch: %s vs %s", p2, p)
	}
	for i := range p.Set.Paths {
		if len(p.Set.Paths[i]) != len(p2.Set.Paths[i]) {
			t.Fatalf("path %d length differs", i)
		}
		for j := range p.Set.Paths[i] {
			if p.Set.Paths[i][j] != p2.Set.Paths[i][j] {
				t.Fatalf("path %d edge %d differs", i, j)
			}
		}
	}
}

func TestReadNetworkRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":99,"name":"x","levels":[0],"edges":[]}`,
		`{"version":1,"name":"x","levels":[0,1],"edges":[[0,5]]}`,
		`{"version":1,"name":"x","levels":[0,2],"edges":[]}`,                // empty level 1
		`{"version":1,"name":"x","levels":[0,1],"edges":[[1,0]]}`,           // reversed orientation
		`{"version":1,"name":"x","levels":[0,1],"labels":["a"],"edges":[]}`, // label count
	}
	for i, c := range cases {
		if _, err := ReadNetwork(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestReadProblemRejectsGarbage(t *testing.T) {
	cases := []string{
		`broken`,
		`{"version":99}`,
		// Path uses unknown edge.
		`{"version":1,"name":"p","network":{"version":1,"name":"g","levels":[0,1],"edges":[[0,1]]},"paths":[[7]]}`,
		// Two packets from the same source.
		`{"version":1,"name":"p","network":{"version":1,"name":"g","levels":[0,1,1],"edges":[[0,1],[0,2]]},"paths":[[0],[1]]}`,
		// Empty path.
		`{"version":1,"name":"p","network":{"version":1,"name":"g","levels":[0,1],"edges":[[0,1]]},"paths":[[]]}`,
	}
	for i, c := range cases {
		if _, err := ReadProblem(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProblemJSONIsStable(t *testing.T) {
	// Serializing twice produces identical bytes (map-free schema).
	rng := rand.New(rand.NewSource(3))
	g, err := topo.Random(rng, 8, 2, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteProblem(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteProblem(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization not deterministic")
	}
}
