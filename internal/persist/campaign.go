// Campaign checkpoint format: a JSON-lines file whose first line is a
// CampaignHeader and whose remaining lines are one completed
// CampaignCell each. Appending a line is the checkpoint's only write
// operation, so an interrupted campaign leaves at most one torn line —
// which ReadCampaignCheckpoint discards (a missing trailing newline
// marks the tear) while rejecting any *complete* line that fails
// validation. Cell summaries are pure functions of (spec, cell), so a
// resumed campaign re-runs only the missing cells and reproduces the
// uninterrupted document byte for byte.
package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// CampaignFormatVersion identifies the campaign checkpoint schema.
const CampaignFormatVersion = 1

// CampaignKind is the header's kind tag, guarding against feeding some
// other JSONL stream to the checkpoint reader.
const CampaignKind = "campaign-checkpoint"

// CampaignHeader is the first line of a checkpoint file.
type CampaignHeader struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	// SpecHash fingerprints the campaign spec the cells belong to; a
	// checkpoint is only resumable into the identical spec.
	SpecHash string `json:"spec_hash"`
}

// Validate checks header invariants.
func (h *CampaignHeader) Validate() error {
	if h.Version != CampaignFormatVersion {
		return fmt.Errorf("persist: unsupported campaign format version %d (want %d)", h.Version, CampaignFormatVersion)
	}
	if h.Kind != CampaignKind {
		return fmt.Errorf("persist: campaign header kind %q (want %q)", h.Kind, CampaignKind)
	}
	if h.SpecHash == "" {
		return fmt.Errorf("persist: campaign header missing spec_hash")
	}
	return nil
}

// CampaignCell is one completed experiment-grid cell: the cell's
// coordinates, its problem facts, and the distribution summary the
// statistical gates compare. It deliberately carries no wall-clock
// fields — every field is a deterministic function of (spec, cell), the
// property the byte-identical-resume guarantee rests on.
type CampaignCell struct {
	// Key is the cell's stable identity "topo/load/fault/router"; seeds
	// derive from it, so summaries survive grid reordering.
	Key    string `json:"key"`
	Topo   string `json:"topo"`
	Load   string `json:"load"`
	Fault  string `json:"fault,omitempty"`
	Router string `json:"router"`

	// Problem facts of the generated instance.
	Nodes   int `json:"nodes"`
	Edges   int `json:"edges"`
	Packets int `json:"packets"`
	C       int `json:"c"`
	D       int `json:"d"`
	L       int `json:"l"`

	// Trials ran; Succeeded delivered every packet within budget.
	Trials    int `json:"trials"`
	Succeeded int `json:"succeeded"`
	// Absorbed / Expected count delivered packets over all trials
	// (Expected = Trials·Packets); DropRate = 1 - Absorbed/Expected is
	// the faulted-campaign degradation figure the gate watches.
	Absorbed int     `json:"absorbed"`
	Expected int     `json:"expected"`
	DropRate float64 `json:"drop_rate"`

	// Delivery-time distribution over successful trials (-1 when none
	// succeeded), with percentile-bootstrap 95% intervals on the median
	// and the tail.
	StepsMean float64 `json:"steps_mean"`
	StepsP50  float64 `json:"steps_p50"`
	StepsP90  float64 `json:"steps_p90"`
	StepsP99  float64 `json:"steps_p99"`
	P50Lo     float64 `json:"p50_lo"`
	P50Hi     float64 `json:"p50_hi"`
	P99Lo     float64 `json:"p99_lo"`
	P99Hi     float64 `json:"p99_hi"`

	DeflectsPerPacket float64 `json:"deflects_per_packet"`
	FaultBlocked      int     `json:"fault_blocked"`
	FaultStalls       int     `json:"fault_stalls"`
}

// Validate rejects malformed cells — the garbage filter between a
// checkpoint file on disk and the campaign resuming from it.
func (c *CampaignCell) Validate() error {
	if c.Key == "" {
		return fmt.Errorf("persist: campaign cell with empty key")
	}
	if c.Nodes < 0 || c.Edges < 0 || c.Packets <= 0 || c.C < 0 || c.D < 0 || c.L < 0 {
		return fmt.Errorf("persist: campaign cell %s: negative or empty problem facts", c.Key)
	}
	if c.Trials <= 0 || c.Succeeded < 0 || c.Succeeded > c.Trials {
		return fmt.Errorf("persist: campaign cell %s: succeeded %d of %d trials", c.Key, c.Succeeded, c.Trials)
	}
	if c.Expected != c.Trials*c.Packets || c.Absorbed < 0 || c.Absorbed > c.Expected {
		return fmt.Errorf("persist: campaign cell %s: absorbed %d of expected %d (trials %d × packets %d)",
			c.Key, c.Absorbed, c.Expected, c.Trials, c.Packets)
	}
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("persist: campaign cell %s: drop rate %g outside [0,1]", c.Key, c.DropRate)
	}
	if c.Succeeded == 0 {
		if c.StepsP50 != -1 || c.StepsP90 != -1 || c.StepsP99 != -1 {
			return fmt.Errorf("persist: campaign cell %s: no successes but quantiles set", c.Key)
		}
		return nil
	}
	if c.StepsP50 <= 0 || c.StepsP50 > c.StepsP90 || c.StepsP90 > c.StepsP99 {
		return fmt.Errorf("persist: campaign cell %s: unordered quantiles p50=%g p90=%g p99=%g",
			c.Key, c.StepsP50, c.StepsP90, c.StepsP99)
	}
	if c.P50Lo > c.P50Hi || c.P99Lo > c.P99Hi {
		return fmt.Errorf("persist: campaign cell %s: inverted bootstrap interval", c.Key)
	}
	return nil
}

// CampaignWriter appends completed cells to a checkpoint stream. It is
// not safe for concurrent use; the campaign runner serializes appends.
type CampaignWriter struct {
	w io.Writer
}

// NewCampaignWriter writes the header line and returns a writer for
// cell lines. Pass startedEmpty=false to continue an existing
// checkpoint (the header is already on disk and is not rewritten).
func NewCampaignWriter(w io.Writer, h CampaignHeader, startedEmpty bool) (*CampaignWriter, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	cw := &CampaignWriter{w: w}
	if !startedEmpty {
		return cw, nil
	}
	return cw, cw.appendJSON(h)
}

// Append writes one completed cell as a single line.
func (cw *CampaignWriter) Append(c *CampaignCell) error {
	if err := c.Validate(); err != nil {
		return err
	}
	return cw.appendJSON(c)
}

func (cw *CampaignWriter) appendJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = cw.w.Write(append(data, '\n'))
	return err
}

// ReadCampaignCheckpoint parses and validates a checkpoint stream. A
// trailing line without a newline terminator is treated as the torn
// write of an interrupted campaign and silently dropped; every
// newline-terminated line must parse and validate. Duplicate cell keys
// are rejected (two writers on one file corrupt the resume contract).
func ReadCampaignCheckpoint(r io.Reader) (CampaignHeader, []CampaignCell, error) {
	var h CampaignHeader
	br := bufio.NewReader(r)
	lineNo := 0
	seen := make(map[string]bool)
	var cells []CampaignCell
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF && len(bytes.TrimSpace(line)) > 0 {
			// Torn trailing line: the interrupted append never completed,
			// so the cell it described was not checkpointed.
			break
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return h, nil, fmt.Errorf("persist: campaign checkpoint line %d: %w", lineNo+1, err)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lineNo++
		if lineNo == 1 {
			if err := strictUnmarshal(line, &h); err != nil {
				return h, nil, fmt.Errorf("persist: campaign checkpoint header: %w", err)
			}
			if err := h.Validate(); err != nil {
				return h, nil, err
			}
			continue
		}
		var c CampaignCell
		if err := strictUnmarshal(line, &c); err != nil {
			return h, nil, fmt.Errorf("persist: campaign checkpoint line %d: %w", lineNo, err)
		}
		if err := c.Validate(); err != nil {
			return h, nil, fmt.Errorf("persist: campaign checkpoint line %d: %w", lineNo, err)
		}
		if seen[c.Key] {
			return h, nil, fmt.Errorf("persist: campaign checkpoint line %d: duplicate cell %q", lineNo, c.Key)
		}
		seen[c.Key] = true
		cells = append(cells, c)
	}
	if lineNo == 0 {
		return h, nil, fmt.Errorf("persist: campaign checkpoint is empty (no header)")
	}
	return h, cells, nil
}

// strictUnmarshal decodes exactly one JSON value from line, rejecting
// trailing data (two values jammed on one line are corruption, not a
// cell).
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
