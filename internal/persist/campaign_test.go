package persist

import (
	"bytes"
	"strings"
	"testing"
)

// sampleCell returns a valid cell for checkpoint tests.
func sampleCell(key string) CampaignCell {
	return CampaignCell{
		Key: key, Topo: "butterfly:4", Load: "hotspot:12x2", Router: "frame",
		Nodes: 80, Edges: 256, Packets: 12, C: 3, D: 4, L: 4,
		Trials: 6, Succeeded: 6,
		Absorbed: 72, Expected: 72, DropRate: 0,
		StepsMean: 100, StepsP50: 90, StepsP90: 120, StepsP99: 130,
		P50Lo: 85, P50Hi: 95, P99Lo: 120, P99Hi: 140,
		DeflectsPerPacket: 1.5,
	}
}

func sampleHeader() CampaignHeader {
	return CampaignHeader{
		Version: CampaignFormatVersion, Kind: CampaignKind,
		Name: "test", SpecHash: "0123456789abcdef",
	}
}

func TestCampaignCheckpointRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewCampaignWriter(&buf, sampleHeader(), true)
	if err != nil {
		t.Fatal(err)
	}
	cells := []CampaignCell{sampleCell("a"), sampleCell("b"), sampleCell("c")}
	for i := range cells {
		if err := w.Append(&cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	h, got, err := ReadCampaignCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h != sampleHeader() {
		t.Fatalf("header round-trip: got %+v", h)
	}
	if len(got) != len(cells) {
		t.Fatalf("got %d cells, want %d", len(got), len(cells))
	}
	for i := range cells {
		if got[i] != cells[i] {
			t.Fatalf("cell %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], cells[i])
		}
	}
}

// TestCampaignCheckpointTornTail verifies the interrupted-append
// contract: a trailing line without its newline is dropped silently
// (that cell was never durably checkpointed), while complete lines
// before it survive.
func TestCampaignCheckpointTornTail(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewCampaignWriter(&buf, sampleHeader(), true)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sampleCell("a"), sampleCell("b")
	if err := w.Append(&a); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&b); err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-write.
	torn := buf.Bytes()[:buf.Len()-17]
	h, cells, err := ReadCampaignCheckpoint(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if h.SpecHash != sampleHeader().SpecHash {
		t.Fatalf("header lost: %+v", h)
	}
	if len(cells) != 1 || cells[0].Key != "a" {
		t.Fatalf("want only cell a to survive, got %d cells", len(cells))
	}
}

// TestCampaignCheckpointGarbage feeds malformed checkpoints; each must
// be rejected with an error, never accepted or panicked on.
func TestCampaignCheckpointGarbage(t *testing.T) {
	header := `{"version":1,"kind":"campaign-checkpoint","name":"t","spec_hash":"ab"}`
	valid := `{"key":"k","topo":"butterfly:4","load":"hotspot:12x2","router":"frame","nodes":80,"edges":256,"packets":12,"c":3,"d":4,"l":4,"trials":6,"succeeded":6,"absorbed":72,"expected":72,"drop_rate":0,"steps_mean":100,"steps_p50":90,"steps_p90":120,"steps_p99":130,"p50_lo":85,"p50_hi":95,"p99_lo":120,"p99_hi":140,"deflects_per_packet":1.5,"fault_blocked":0,"fault_stalls":0}`
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"not json", "hello\nworld\n"},
		{"wrong kind", `{"version":1,"kind":"problem","name":"t","spec_hash":"ab"}` + "\n"},
		{"wrong version", `{"version":99,"kind":"campaign-checkpoint","name":"t","spec_hash":"ab"}` + "\n"},
		{"missing spec hash", `{"version":1,"kind":"campaign-checkpoint","name":"t"}` + "\n"},
		{"cell before header rejected as header", valid + "\n"},
		{"empty cell key", header + "\n" + strings.Replace(valid, `"key":"k"`, `"key":""`, 1) + "\n"},
		{"negative trials", header + "\n" + strings.Replace(valid, `"trials":6`, `"trials":-1`, 1) + "\n"},
		{"succeeded above trials", header + "\n" + strings.Replace(valid, `"succeeded":6`, `"succeeded":7`, 1) + "\n"},
		{"absorbed above expected", header + "\n" + strings.Replace(valid, `"absorbed":72`, `"absorbed":73`, 1) + "\n"},
		{"expected mismatch", header + "\n" + strings.Replace(valid, `"expected":72`, `"expected":60`, 1) + "\n"},
		{"drop rate above one", header + "\n" + strings.Replace(valid, `"drop_rate":0`, `"drop_rate":1.5`, 1) + "\n"},
		{"unordered quantiles", header + "\n" + strings.Replace(valid, `"steps_p90":120`, `"steps_p90":80`, 1) + "\n"},
		{"inverted bootstrap interval", header + "\n" + strings.Replace(valid, `"p50_lo":85`, `"p50_lo":96`, 1) + "\n"},
		{"no successes but quantiles", header + "\n" + strings.Replace(valid, `"succeeded":6`, `"succeeded":0`, 1) + "\n"},
		{"duplicate key", header + "\n" + valid + "\n" + valid + "\n"},
		{"two values one line", header + "\n" + valid + valid + "\n"},
		{"garbage cell line", header + "\n" + `{"key":` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadCampaignCheckpoint(strings.NewReader(tc.data)); err == nil {
				t.Fatalf("garbage checkpoint accepted")
			}
		})
	}
}

func TestCampaignWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewCampaignWriter(&buf, CampaignHeader{Version: 2, Kind: CampaignKind, SpecHash: "x"}, true); err == nil {
		t.Fatal("bad header version accepted")
	}
	w, err := NewCampaignWriter(&buf, sampleHeader(), true)
	if err != nil {
		t.Fatal(err)
	}
	bad := sampleCell("k")
	bad.Succeeded = bad.Trials + 1
	if err := w.Append(&bad); err == nil {
		t.Fatal("invalid cell accepted by writer")
	}
}

// TestCampaignCheckpointContinuation verifies the resume path: a second
// writer opened with startedEmpty=false appends without duplicating the
// header, and the combined stream reads back whole.
func TestCampaignCheckpointContinuation(t *testing.T) {
	var buf bytes.Buffer
	w1, err := NewCampaignWriter(&buf, sampleHeader(), true)
	if err != nil {
		t.Fatal(err)
	}
	a := sampleCell("a")
	if err := w1.Append(&a); err != nil {
		t.Fatal(err)
	}
	w2, err := NewCampaignWriter(&buf, sampleHeader(), false)
	if err != nil {
		t.Fatal(err)
	}
	b := sampleCell("b")
	if err := w2.Append(&b); err != nil {
		t.Fatal(err)
	}
	_, cells, err := ReadCampaignCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Key != "a" || cells[1].Key != "b" {
		t.Fatalf("continuation read %d cells", len(cells))
	}
}
