// Engine and service snapshot formats: the versioned, validated wire
// form of an open-system (internal/dynamic) engine frozen between two
// steps, and the service-level wrapper that adds the topology, fault
// spec and per-tenant quota state. Like the campaign checkpoint format,
// every reader fully re-validates what it decodes — a snapshot is only
// as trustworthy as the process that wrote it, and a restored engine
// must either resume byte-identically or refuse to start.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hotpotato/internal/graph"
)

// EngineStateVersion identifies the engine snapshot schema. Version 2
// replaced the unbounded per-delivery latency list (`latencies`) with a
// bounded reservoir plus exact count/sum (`lat_count`, `lat_sum`,
// `lat_samples`, `lat_rng`) — a v1 snapshot grew without bound in
// long-running serve mode and is refused by v2 readers.
const EngineStateVersion = 2

// EngineStateKind tags an engine state object.
const EngineStateKind = "engine-state"

// ServiceSnapshotVersion identifies the service snapshot schema.
const ServiceSnapshotVersion = 1

// ServiceSnapshotKind tags a service snapshot document.
const ServiceSnapshotKind = "service-snapshot"

// NetworkState is the exported name of the network wire form, so the
// service snapshot can embed the same representation WriteNetwork uses.
type NetworkState = networkJSON

// SnapshotNetwork converts a leveled network to its wire form.
func SnapshotNetwork(g *graph.Leveled) NetworkState { return networkToJSON(g) }

// RestoreNetwork rebuilds and re-validates a network from its wire form.
func RestoreNetwork(ns NetworkState) (*graph.Leveled, error) { return networkFromJSON(ns) }

// PacketState is one in-flight packet of a frozen engine.
type PacketState struct {
	ID     int    `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Cur is the node the packet sits at; Path the remaining edge
	// sequence toward Dst (head first — may include backtracking edges
	// prepended by deflections).
	Cur  int32   `json:"cur"`
	Dst  int32   `json:"dst"`
	Path []int32 `json:"path"`
	// ArrivalEdge/ArrivalDir describe the hop that brought the packet to
	// Cur (-1 when it has not moved since injection).
	ArrivalEdge int32 `json:"arrival_edge"`
	ArrivalDir  int8  `json:"arrival_dir"`
	Inject      int   `json:"inject"`
}

// RetryState is one blocked arrival waiting in the backoff queue.
type RetryState struct {
	Tenant   string  `json:"tenant,omitempty"`
	Src      int32   `json:"src"`
	Dst      int32   `json:"dst"`
	Path     []int32 `json:"path"`
	Attempts int     `json:"attempts"`
	Next     int     `json:"next"`
}

// PendingState is one submitted-but-not-yet-injected packet request.
// Random entries draw their source, destination and path from the
// engine RNG at injection time; src/dst entries draw only the path;
// explicit-path entries consume no randomness.
type PendingState struct {
	Tenant string  `json:"tenant,omitempty"`
	Random bool    `json:"random,omitempty"`
	Src    int32   `json:"src"`
	Dst    int32   `json:"dst"`
	Path   []int32 `json:"path,omitempty"`
}

// PrevForward (in EngineState) lists the edges a packet traversed
// forward on the previous step — the backward-safe deflection
// predicate. Only the edge set matters (the engine tests non-nil, never
// identity), and delivered packets leave no other trace, so the wire
// form is a plain edge list.

// WindowState is one closed observation window (mirrors
// dynamic.WindowStats).
type WindowState struct {
	Start        int     `json:"start"`
	Delivered    int     `json:"delivered"`
	MeanLatency  float64 `json:"mean_latency"`
	MeanInFlight float64 `json:"mean_inflight"`
	FaultBlocked int     `json:"fault_blocked"`
	FaultStalls  int     `json:"fault_stalls"`
	Dropped      int     `json:"dropped"`
	Availability float64 `json:"availability"`
}

// TenantTotals is the engine-side per-tenant ledger: Submitted counts
// packets enqueued for the tenant, Admitted those injected, Retried the
// re-admission attempts, Dropped the abandoned ones, Delivered the
// absorbed ones.
type TenantTotals struct {
	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Retried   int `json:"retried"`
	Dropped   int `json:"dropped"`
	Delivered int `json:"delivered"`
}

// RetryPolicyState mirrors dynamic.RetryPolicy.
type RetryPolicyState struct {
	MaxAttempts int `json:"max_attempts"`
	BaseDelay   int `json:"base_delay"`
	MaxDelay    int `json:"max_delay"`
}

// EngineState freezes an open-system engine between two steps: its
// scalar configuration, RNG state, cumulative counters, window
// accumulators, and every queued or in-flight packet. Restoring it into
// the same network with the same fault model resumes the run
// byte-identically.
type EngineState struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`

	// Scalar configuration (function-valued config — fault model,
	// window callback — must be re-bound by the restorer).
	Lambda      float64          `json:"lambda"`
	Steps       int              `json:"steps"`
	Warmup      int              `json:"warmup"`
	Seed        int64            `json:"seed"`
	MaxInFlight int              `json:"max_inflight"`
	Window      int              `json:"window"`
	Retry       RetryPolicyState `json:"retry"`

	Step   int    `json:"step"`
	RNG    uint64 `json:"rng"`
	NextID int    `json:"next_id"`

	Offered      int  `json:"offered"`
	Admitted     int  `json:"admitted"`
	Delivered    int  `json:"delivered"`
	Retried      int  `json:"retried"`
	Dropped      int  `json:"dropped"`
	FaultBlocked int  `json:"fault_blocked"`
	FaultStalls  int  `json:"fault_stalls"`
	Deflections  int  `json:"deflections"`
	PeakInFlight int  `json:"peak_inflight"`
	Saturated    bool `json:"saturated"`

	InFlightSum     float64 `json:"inflight_sum"`
	InFlightSamples int     `json:"inflight_samples"`
	// LatCount/LatSum are the exact post-warmup delivery count and
	// latency sum; LatSamples is the bounded Algorithm-R reservoir the
	// quantile summary is computed from, and LatRNG the state of its
	// dedicated SplitMix64 stream (kept apart from the trajectory RNG so
	// sampling never perturbs routing).
	LatCount   int           `json:"lat_count"`
	LatSum     float64       `json:"lat_sum"`
	LatSamples []float64     `json:"lat_samples,omitempty"`
	LatRNG     uint64        `json:"lat_rng"`
	Windows    []WindowState `json:"windows,omitempty"`

	// Open-window accumulators (the partial window the snapshot
	// interrupted; the restored engine closes it on schedule).
	WDelivered   int     `json:"w_delivered"`
	WSpan        int     `json:"w_span"`
	WStart       int     `json:"w_start"`
	WLatSum      float64 `json:"w_lat_sum"`
	WFlySum      float64 `json:"w_fly_sum"`
	WAvailSum    float64 `json:"w_avail_sum"`
	WPrevBlocked int     `json:"w_prev_blocked"`
	WPrevStalls  int     `json:"w_prev_stalls"`
	WPrevDropped int     `json:"w_prev_dropped"`

	// Digest is the running FNV-1a trace digest over deliveries.
	Digest uint64 `json:"digest"`

	Packets     []PacketState           `json:"packets,omitempty"`
	RetryQ      []RetryState            `json:"retry_q,omitempty"`
	Pending     []PendingState          `json:"pending,omitempty"`
	PrevForward []int32                 `json:"prev_forward,omitempty"`
	Tenants     map[string]TenantTotals `json:"tenants,omitempty"`
}

// Validate checks the graph-independent invariants of an engine state.
// Graph-dependent checks (node/edge ranges, path contiguity) happen in
// dynamic.Restore, which has the network in hand.
func (s *EngineState) Validate() error {
	if s.Version != EngineStateVersion {
		return fmt.Errorf("persist: unsupported engine state version %d (want %d)", s.Version, EngineStateVersion)
	}
	if s.Kind != EngineStateKind {
		return fmt.Errorf("persist: engine state kind %q (want %q)", s.Kind, EngineStateKind)
	}
	if s.Lambda < 0 || s.Lambda > 1 {
		return fmt.Errorf("persist: engine state lambda %g outside [0,1]", s.Lambda)
	}
	if s.Steps < 0 || s.Warmup < 0 || s.Window < 0 || s.MaxInFlight < 0 {
		return fmt.Errorf("persist: engine state with negative horizon/warmup/window/cap")
	}
	if s.Step < 0 || s.NextID < 0 {
		return fmt.Errorf("persist: engine state step %d / next_id %d negative", s.Step, s.NextID)
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"offered", s.Offered}, {"admitted", s.Admitted}, {"delivered", s.Delivered},
		{"retried", s.Retried}, {"dropped", s.Dropped},
		{"fault_blocked", s.FaultBlocked}, {"fault_stalls", s.FaultStalls},
		{"deflections", s.Deflections}, {"peak_inflight", s.PeakInFlight},
		{"inflight_samples", s.InFlightSamples}, {"lat_count", s.LatCount},
		{"w_delivered", s.WDelivered}, {"w_span", s.WSpan}, {"w_start", s.WStart},
	} {
		if c.v < 0 {
			return fmt.Errorf("persist: engine state counter %s = %d negative", c.name, c.v)
		}
	}
	if s.Admitted > s.Offered {
		return fmt.Errorf("persist: engine state admitted %d > offered %d", s.Admitted, s.Offered)
	}
	if s.Delivered > s.Admitted {
		return fmt.Errorf("persist: engine state delivered %d > admitted %d", s.Delivered, s.Admitted)
	}
	if len(s.Packets) != s.Admitted-s.Delivered {
		return fmt.Errorf("persist: engine state holds %d packets but admitted-delivered = %d",
			len(s.Packets), s.Admitted-s.Delivered)
	}
	for _, x := range s.LatSamples {
		if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return fmt.Errorf("persist: engine state latency sample %g not positive finite", x)
		}
	}
	if s.LatCount < len(s.LatSamples) {
		return fmt.Errorf("persist: engine state lat_count %d < %d retained samples", s.LatCount, len(s.LatSamples))
	}
	if math.IsNaN(s.LatSum) || math.IsInf(s.LatSum, 0) || s.LatSum < 0 {
		return fmt.Errorf("persist: engine state lat_sum %g not finite and non-negative", s.LatSum)
	}
	for i, w := range s.Windows {
		if w.Delivered < 0 || !finite(w.MeanLatency) || !finite(w.MeanInFlight) || !finite(w.Availability) {
			return fmt.Errorf("persist: engine state window %d non-finite or negative", i)
		}
	}
	if !finite(s.InFlightSum) || !finite(s.WLatSum) || !finite(s.WFlySum) || !finite(s.WAvailSum) {
		return fmt.Errorf("persist: engine state accumulator not finite")
	}
	seen := make(map[int]bool, len(s.Packets))
	for _, p := range s.Packets {
		if p.ID < 0 || p.ID >= s.NextID {
			return fmt.Errorf("persist: engine state packet id %d outside [0,%d)", p.ID, s.NextID)
		}
		if seen[p.ID] {
			return fmt.Errorf("persist: engine state duplicate packet id %d", p.ID)
		}
		seen[p.ID] = true
		if len(p.Path) == 0 {
			return fmt.Errorf("persist: engine state packet %d with empty path (undelivered packets keep a route)", p.ID)
		}
		if p.ArrivalDir != 0 && p.ArrivalDir != 1 {
			return fmt.Errorf("persist: engine state packet %d arrival dir %d", p.ID, p.ArrivalDir)
		}
	}
	fwd := make(map[int32]bool, len(s.PrevForward))
	for i, ed := range s.PrevForward {
		if ed < 0 {
			return fmt.Errorf("persist: engine state prev_forward %d has negative edge %d", i, ed)
		}
		if fwd[ed] {
			return fmt.Errorf("persist: engine state prev_forward lists edge %d twice", ed)
		}
		fwd[ed] = true
	}
	for i, r := range s.RetryQ {
		if r.Attempts < 1 {
			return fmt.Errorf("persist: engine state retry entry %d with attempts %d < 1", i, r.Attempts)
		}
		if len(r.Path) == 0 {
			return fmt.Errorf("persist: engine state retry entry %d with empty path", i)
		}
	}
	for i, p := range s.Pending {
		if p.Random && (p.Src != -1 || len(p.Path) > 0) {
			return fmt.Errorf("persist: engine state pending entry %d random with explicit src/path", i)
		}
	}
	for name, tt := range s.Tenants {
		if tt.Submitted < 0 || tt.Admitted < 0 || tt.Retried < 0 || tt.Dropped < 0 || tt.Delivered < 0 {
			return fmt.Errorf("persist: engine state tenant %q with negative totals", name)
		}
		if tt.Admitted > tt.Submitted {
			return fmt.Errorf("persist: engine state tenant %q admitted %d > submitted %d", name, tt.Admitted, tt.Submitted)
		}
		if tt.Delivered > tt.Admitted {
			return fmt.Errorf("persist: engine state tenant %q delivered %d > admitted %d", name, tt.Delivered, tt.Admitted)
		}
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// TenantQuotaState is the service-side per-tenant admission state: the
// token-bucket configuration, its remaining tokens at snapshot time,
// and the quota-level ledger (Offered counts submissions, QuotaDropped
// those the bucket rejected before they reached the engine).
type TenantQuotaState struct {
	Name         string  `json:"name"`
	Rate         float64 `json:"rate"`
	Burst        float64 `json:"burst"`
	Tokens       float64 `json:"tokens"`
	Offered      int     `json:"offered"`
	QuotaDropped int     `json:"quota_dropped"`
}

// TopologyState is one served topology: its network, the fault spec to
// re-bind on restore (parsed via internal/faults), the frozen engine,
// and the tenant quota table (sorted by name for stable serialization).
type TopologyState struct {
	Name      string             `json:"name"`
	Network   NetworkState       `json:"network"`
	FaultSpec string             `json:"fault_spec,omitempty"`
	FaultSeed int64              `json:"fault_seed,omitempty"`
	AutoStep  bool               `json:"auto_step,omitempty"`
	Engine    EngineState        `json:"engine"`
	Tenants   []TenantQuotaState `json:"tenants,omitempty"`
}

// ServiceSnapshot is the whole service frozen at one instant: every
// topology with its engine and tenant state.
type ServiceSnapshot struct {
	Version    int             `json:"version"`
	Kind       string          `json:"kind"`
	Topologies []TopologyState `json:"topologies"`
}

// Validate checks the snapshot's invariants, including each embedded
// engine state.
func (s *ServiceSnapshot) Validate() error {
	if s.Version != ServiceSnapshotVersion {
		return fmt.Errorf("persist: unsupported service snapshot version %d (want %d)", s.Version, ServiceSnapshotVersion)
	}
	if s.Kind != ServiceSnapshotKind {
		return fmt.Errorf("persist: service snapshot kind %q (want %q)", s.Kind, ServiceSnapshotKind)
	}
	seen := make(map[string]bool, len(s.Topologies))
	for i := range s.Topologies {
		tp := &s.Topologies[i]
		if tp.Name == "" {
			return fmt.Errorf("persist: service snapshot topology %d without a name", i)
		}
		if seen[tp.Name] {
			return fmt.Errorf("persist: service snapshot duplicate topology %q", tp.Name)
		}
		seen[tp.Name] = true
		if err := tp.Engine.Validate(); err != nil {
			return fmt.Errorf("topology %q: %w", tp.Name, err)
		}
		tseen := make(map[string]bool, len(tp.Tenants))
		for j, tn := range tp.Tenants {
			if tn.Name == "" {
				return fmt.Errorf("persist: topology %q tenant %d without a name", tp.Name, j)
			}
			if tseen[tn.Name] {
				return fmt.Errorf("persist: topology %q duplicate tenant %q", tp.Name, tn.Name)
			}
			tseen[tn.Name] = true
			if tn.Rate < 0 || tn.Burst < 0 || !finite(tn.Tokens) || tn.Offered < 0 || tn.QuotaDropped < 0 {
				return fmt.Errorf("persist: topology %q tenant %q with invalid quota state", tp.Name, tn.Name)
			}
		}
	}
	return nil
}

// WriteServiceSnapshot serializes a validated snapshot (indented, with
// trailing newline, like the committed-artifact convention).
func WriteServiceSnapshot(w io.Writer, s *ServiceSnapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadServiceSnapshot deserializes and fully re-validates a snapshot.
func ReadServiceSnapshot(r io.Reader) (*ServiceSnapshot, error) {
	var s ServiceSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("persist: decode service snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
