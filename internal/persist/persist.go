// Package persist serializes networks, problems and run results to a
// stable JSON format, so a problem instance generated on one machine
// (or found by a fuzzer) can be replayed bit-for-bit elsewhere —
// including the preselected paths, whose congestion and dilation define
// the experiment.
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/workload"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// networkJSON is the wire form of a leveled network.
type networkJSON struct {
	Version int        `json:"version"`
	Name    string     `json:"name"`
	Levels  []int      `json:"levels"` // node i sits at Levels[i]
	Labels  []string   `json:"labels,omitempty"`
	Edges   [][2]int32 `json:"edges"` // canonical (from, to), from at lower level
}

// problemJSON is the wire form of a routing problem.
type problemJSON struct {
	Version int         `json:"version"`
	Name    string      `json:"name"`
	Network networkJSON `json:"network"`
	Paths   [][]int32   `json:"paths"` // edge IDs per packet
}

// WriteNetwork serializes a network.
func WriteNetwork(w io.Writer, g *graph.Leveled) error {
	enc := json.NewEncoder(w)
	return enc.Encode(networkToJSON(g))
}

func networkToJSON(g *graph.Leveled) networkJSON {
	nj := networkJSON{
		Version: FormatVersion,
		Name:    g.Name(),
		Levels:  make([]int, g.NumNodes()),
		Labels:  make([]string, g.NumNodes()),
		Edges:   make([][2]int32, g.NumEdges()),
	}
	hasLabels := false
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(graph.NodeID(i))
		nj.Levels[i] = n.Level
		nj.Labels[i] = n.Label
		if n.Label != "" {
			hasLabels = true
		}
	}
	if !hasLabels {
		nj.Labels = nil
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		nj.Edges[i] = [2]int32{int32(e.From), int32(e.To)}
	}
	return nj
}

// ReadNetwork deserializes a network and re-validates it.
func ReadNetwork(r io.Reader) (*graph.Leveled, error) {
	var nj networkJSON
	if err := json.NewDecoder(r).Decode(&nj); err != nil {
		return nil, fmt.Errorf("persist: decode network: %w", err)
	}
	return networkFromJSON(nj)
}

func networkFromJSON(nj networkJSON) (*graph.Leveled, error) {
	if nj.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d (want %d)", nj.Version, FormatVersion)
	}
	if nj.Labels != nil && len(nj.Labels) != len(nj.Levels) {
		return nil, fmt.Errorf("persist: %d labels for %d nodes", len(nj.Labels), len(nj.Levels))
	}
	b := graph.NewBuilder(nj.Name)
	for i, lvl := range nj.Levels {
		label := ""
		if nj.Labels != nil {
			label = nj.Labels[i]
		}
		b.AddNode(lvl, label)
	}
	for i, e := range nj.Edges {
		if int(e[0]) >= len(nj.Levels) || int(e[1]) >= len(nj.Levels) || e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("persist: edge %d references unknown node", i)
		}
		// Builder IDs are assigned in AddEdge call order, matching the
		// serialized edge IDs used by problem paths; verify canonical
		// orientation so edge IDs round-trip exactly.
		if nj.Levels[e[1]] != nj.Levels[e[0]]+1 {
			return nil, fmt.Errorf("persist: edge %d not in canonical low-to-high form", i)
		}
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return b.Build()
}

// WriteProblem serializes a problem with its network and paths.
func WriteProblem(w io.Writer, p *workload.Problem) error {
	pj := problemJSON{
		Version: FormatVersion,
		Name:    p.Name,
		Network: networkToJSON(p.G),
		Paths:   make([][]int32, len(p.Set.Paths)),
	}
	for i, path := range p.Set.Paths {
		pj.Paths[i] = make([]int32, len(path))
		for j, e := range path {
			pj.Paths[i][j] = int32(e)
		}
	}
	return json.NewEncoder(w).Encode(pj)
}

// ReadProblem deserializes and fully re-validates a problem (network
// leveledness, path validity, one packet per source) and recomputes its
// cached congestion and dilation.
func ReadProblem(r io.Reader) (*workload.Problem, error) {
	var pj problemJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("persist: decode problem: %w", err)
	}
	if pj.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d (want %d)", pj.Version, FormatVersion)
	}
	g, err := networkFromJSON(pj.Network)
	if err != nil {
		return nil, err
	}
	ps := make([]graph.Path, len(pj.Paths))
	for i, path := range pj.Paths {
		ps[i] = make(graph.Path, len(path))
		for j, e := range path {
			ps[i][j] = graph.EdgeID(e)
		}
	}
	set := paths.NewPathSet(g, ps)
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := set.CheckOnePacketPerSource(); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &workload.Problem{
		Name: pj.Name,
		G:    g,
		Set:  set,
		C:    set.Congestion(),
		D:    set.Dilation(),
	}, nil
}
