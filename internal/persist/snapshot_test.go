package persist

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// validEngineState is a minimal self-consistent frozen engine: one
// in-flight packet, one closed window, a retry entry, a pending batch
// entry and a tenant ledger — every list populated so mutation tests
// have something to corrupt.
func validEngineState() EngineState {
	return EngineState{
		Version: EngineStateVersion,
		Kind:    EngineStateKind,
		Lambda:  0.3, Steps: 100, Warmup: 10, Seed: 7, MaxInFlight: 64, Window: 25,
		Retry: RetryPolicyState{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 8},
		Step:  40, RNG: 0xdeadbeef, NextID: 12,
		Offered: 12, Admitted: 10, Delivered: 9, Retried: 2, Dropped: 1,
		FaultBlocked: 3, FaultStalls: 1, Deflections: 5, PeakInFlight: 4,
		InFlightSum: 30, InFlightSamples: 30,
		LatCount: 3, LatSum: 14, LatSamples: []float64{3, 4, 7}, LatRNG: 0x9a,
		Windows: []WindowState{{Start: 0, Delivered: 5, MeanLatency: 4.2, MeanInFlight: 1.5, Availability: 1}},
		WStart:  25, WSpan: 15, WDelivered: 4, WLatSum: 16, WFlySum: 20, WAvailSum: 15,
		Digest:      0x1234,
		Packets:     []PacketState{{ID: 11, Tenant: "gold", Cur: 2, Dst: 5, Path: []int32{3, 4}, ArrivalEdge: 1, ArrivalDir: 0, Inject: 38}},
		RetryQ:      []RetryState{{Tenant: "gold", Src: 0, Dst: 5, Path: []int32{0, 3}, Attempts: 2, Next: 42}},
		Pending:     []PendingState{{Tenant: "free", Random: true, Src: -1, Dst: -1}},
		PrevForward: []int32{2, 7},
		Tenants: map[string]TenantTotals{
			"gold": {Submitted: 6, Admitted: 5, Retried: 2, Dropped: 1, Delivered: 4},
		},
	}
}

func TestEngineStateValidate(t *testing.T) {
	good := validEngineState()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}

	cases := map[string]func(*EngineState){
		"version":          func(s *EngineState) { s.Version = 0 },
		"kind":             func(s *EngineState) { s.Kind = "campaign-checkpoint" },
		"lambda high":      func(s *EngineState) { s.Lambda = 1.5 },
		"lambda negative":  func(s *EngineState) { s.Lambda = -0.1 },
		"negative step":    func(s *EngineState) { s.Step = -1 },
		"negative counter": func(s *EngineState) { s.FaultStalls = -1 },
		"admitted > offered": func(s *EngineState) {
			s.Admitted = s.Offered + 1
			s.Packets = append(s.Packets, PacketState{ID: 1, Cur: 0, Dst: 5, Path: []int32{0}}, PacketState{ID: 2, Cur: 0, Dst: 5, Path: []int32{0}})
		},
		"delivered > admitted": func(s *EngineState) {
			s.Delivered = s.Admitted + 1
		},
		"packet count":        func(s *EngineState) { s.Packets = nil },
		"nan latency":         func(s *EngineState) { s.LatSamples[0] = math.NaN() },
		"negative latency":    func(s *EngineState) { s.LatSamples[0] = -2 },
		"lat count < samples": func(s *EngineState) { s.LatCount = 1 },
		"nan lat sum":         func(s *EngineState) { s.LatSum = math.NaN() },
		"inf window":          func(s *EngineState) { s.Windows[0].MeanLatency = math.Inf(1) },
		"nan accumulator":     func(s *EngineState) { s.WLatSum = math.NaN() },
		"packet id >= nextid": func(s *EngineState) { s.Packets[0].ID = s.NextID },
		"packet empty path":   func(s *EngineState) { s.Packets[0].Path = nil },
		"packet bad dir":      func(s *EngineState) { s.Packets[0].ArrivalDir = 2 },
		"prev_forward dup":    func(s *EngineState) { s.PrevForward = []int32{2, 2} },
		"prev_forward neg":    func(s *EngineState) { s.PrevForward = []int32{-1} },
		"retry attempts":      func(s *EngineState) { s.RetryQ[0].Attempts = 0 },
		"retry empty path":    func(s *EngineState) { s.RetryQ[0].Path = nil },
		"pending random+src":  func(s *EngineState) { s.Pending[0].Src = 3 },
		"tenant negative":     func(s *EngineState) { s.Tenants["gold"] = TenantTotals{Dropped: -1} },
		"tenant admitted > submitted": func(s *EngineState) {
			s.Tenants["gold"] = TenantTotals{Submitted: 1, Admitted: 2, Delivered: 1}
		},
	}
	for name, corrupt := range cases {
		st := validEngineState()
		corrupt(&st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: corrupted engine state accepted", name)
		}
	}
}

func TestServiceSnapshotRoundTrip(t *testing.T) {
	snap := &ServiceSnapshot{
		Version: ServiceSnapshotVersion,
		Kind:    ServiceSnapshotKind,
		Topologies: []TopologyState{{
			Name:      "bfly",
			FaultSpec: "flap:period=40,down=6,rate=0.3",
			FaultSeed: 11,
			Engine:    validEngineState(),
			Tenants: []TenantQuotaState{
				{Name: "free", Rate: 1, Burst: 4, Tokens: 2.5, Offered: 9, QuotaDropped: 3},
				{Name: "gold", Rate: 10, Burst: 50, Tokens: 49, Offered: 6},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteServiceSnapshot(&buf, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("snapshot file does not end in newline")
	}
	got, err := ReadServiceSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(got.Topologies) != 1 || got.Topologies[0].Name != "bfly" {
		t.Fatalf("round trip lost topology: %+v", got)
	}
	tp := got.Topologies[0]
	if tp.Engine.Digest != 0x1234 || tp.Engine.RNG != 0xdeadbeef {
		t.Errorf("engine scalars mutated in round trip: %+v", tp.Engine)
	}
	if len(tp.Tenants) != 2 || tp.Tenants[0].Tokens != 2.5 {
		t.Errorf("tenant quota state mutated: %+v", tp.Tenants)
	}

	// Write refuses an invalid snapshot outright.
	bad := *snap
	bad.Topologies = append([]TopologyState{}, snap.Topologies...)
	bad.Topologies = append(bad.Topologies, snap.Topologies[0]) // duplicate name
	if err := WriteServiceSnapshot(&buf, &bad); err == nil {
		t.Error("duplicate topology name written without error")
	}
}

func TestServiceSnapshotValidate(t *testing.T) {
	mk := func() ServiceSnapshot {
		return ServiceSnapshot{
			Version: ServiceSnapshotVersion,
			Kind:    ServiceSnapshotKind,
			Topologies: []TopologyState{{
				Name:   "t0",
				Engine: validEngineState(),
				Tenants: []TenantQuotaState{
					{Name: "a", Rate: 1, Burst: 2, Tokens: 1},
				},
			}},
		}
	}
	if s := mk(); s.Validate() != nil {
		t.Fatalf("valid snapshot rejected: %v", s.Validate())
	}
	cases := map[string]func(*ServiceSnapshot){
		"version":          func(s *ServiceSnapshot) { s.Version = 9 },
		"kind":             func(s *ServiceSnapshot) { s.Kind = "engine-state" },
		"unnamed topology": func(s *ServiceSnapshot) { s.Topologies[0].Name = "" },
		"bad engine":       func(s *ServiceSnapshot) { s.Topologies[0].Engine.Kind = "nope" },
		"unnamed tenant":   func(s *ServiceSnapshot) { s.Topologies[0].Tenants[0].Name = "" },
		"dup tenant": func(s *ServiceSnapshot) {
			s.Topologies[0].Tenants = append(s.Topologies[0].Tenants, s.Topologies[0].Tenants[0])
		},
		"negative rate": func(s *ServiceSnapshot) { s.Topologies[0].Tenants[0].Rate = -1 },
		"nan tokens":    func(s *ServiceSnapshot) { s.Topologies[0].Tenants[0].Tokens = math.NaN() },
		"neg offered":   func(s *ServiceSnapshot) { s.Topologies[0].Tenants[0].Offered = -1 },
	}
	for name, corrupt := range cases {
		s := mk()
		corrupt(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corrupted service snapshot accepted", name)
		}
	}

	// Garbage bytes are rejected at decode, truncated JSON too.
	if _, err := ReadServiceSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadServiceSnapshot(strings.NewReader(`{"version":1,"kind":"service-snapshot","topologies":[{"name":""}]}`)); err == nil {
		t.Error("invalid decoded snapshot accepted")
	}
}
