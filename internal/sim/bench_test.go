package sim_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// staggered wraps greedy but admits packet i only from step i/rate, so
// at most ~rate*latency packets are in flight at once — the large-N /
// sparse-activity regime the engine's active-set bookkeeping targets.
type staggered struct {
	baselines.Greedy
	rate int
}

func (s *staggered) WantInject(t int, p *sim.Packet) bool {
	return t >= int(p.ID)/s.rate
}

// sparseProblem is a 4096-packet full-throughput butterfly(12): 53248
// nodes, 98304 edges. With staggered injection only a few percent of
// packets are ever simultaneously active, so a per-step rescan of all
// packets/nodes/edges dwarfs the useful work.
func sparseProblem(tb testing.TB) *workload.Problem {
	tb.Helper()
	g, err := topo.Butterfly(12)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := workload.FullThroughput(g, rand.New(rand.NewSource(71)))
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func denseProblem(tb testing.TB) *workload.Problem {
	tb.Helper()
	g, err := topo.Butterfly(8)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := workload.FullThroughput(g, rand.New(rand.NewSource(72)))
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// benchSteps times individual engine steps (ns/op = ns/step), rebuilding
// the engine outside the timer whenever a run completes.
func benchSteps(b *testing.B, p *workload.Problem, mk func() sim.Router) {
	b.ReportAllocs()
	e := sim.NewEngine(p, mk(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			e = sim.NewEngine(p, mk(), 1)
			b.StartTimer()
		}
		e.Step()
	}
}

// BenchmarkStepSparse is the acceptance workload of the engine
// overhaul: N=4096 with <=5% in flight at any step.
func BenchmarkStepSparse(b *testing.B) {
	p := sparseProblem(b)
	benchSteps(b, p, func() sim.Router { return &staggered{rate: 16} })
}

// BenchmarkStepDense keeps every packet active for most of the run, the
// regime where the seed engine's full rescan was near-optimal; the
// active-set engine must not regress it.
func BenchmarkStepDense(b *testing.B) {
	p := denseProblem(b)
	benchSteps(b, p, func() sim.Router { return baselines.NewGreedy() })
}

// TestStepSteadyStateAllocsSparse pins the engine hot path at zero
// allocations per step in steady state: injections draw PathList
// backing arrays from the absorbed-packet pool, occupancy lists and
// slot scratch are reused, and nothing in Phases 1-5 grows.
func TestStepSteadyStateAllocsSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("large engine")
	}
	p := sparseProblem(t)
	e := sim.NewEngine(p, &staggered{rate: 8}, 1)
	// Warm up past the first wave so pools and per-node buffers are
	// grown; injections and absorptions are both still happening.
	for i := 0; i < 300; i++ {
		e.Step()
	}
	if e.Done() {
		t.Fatal("warmup completed the run; steady state not reached")
	}
	avg := testing.AllocsPerRun(200, func() { e.Step() })
	if avg != 0 {
		t.Errorf("allocs/step in steady state = %v, want 0", avg)
	}
}

// TestStepSteadyStateAllocsDense does the same with every packet in
// flight (no injections left, pure Phase 2-5 traffic).
func TestStepSteadyStateAllocsDense(t *testing.T) {
	p := denseProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 1)
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if e.Done() {
		t.Fatal("warmup completed the run; steady state not reached")
	}
	avg := testing.AllocsPerRun(50, func() { e.Step() })
	if avg != 0 {
		t.Errorf("allocs/step in steady state = %v, want 0", avg)
	}
}

// TestSparseActivityStaysSparse pins the benchmark's premise: the
// sparse workload never has more than 5% of its packets in flight.
func TestSparseActivityStaysSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("large engine")
	}
	p := sparseProblem(t)
	e := sim.NewEngine(p, &staggered{rate: 16}, 1)
	if _, done := e.Run(1 << 20); !done {
		t.Fatal("sparse run did not complete")
	}
	if limit := p.N() / 20; e.M.MaxInFlight > limit {
		t.Errorf("MaxInFlight = %d, want <= %d (5%% of N=%d)", e.M.MaxInFlight, limit, p.N())
	}
}
