package sim

// Sharded parallel stepping (see docs/ALGORITHM.md, "Sharded parallel
// stepping").
//
// The step's contention phases are node-local: every packet contending
// for a slot (edge, direction) stands at the one node that slot leaves,
// the deflection search only probes slots leaving the same node, and
// prevFwdBits is read-only during the phase. Partitioning the occupied
// nodes therefore partitions every mutable array the phase touches —
// claimed-slot scratch lives in the shard resolving the owning node,
// per-packet request/move state is keyed by the packet's (unique) node
// — so shards share nothing and need no locks.
//
// Shards are carved from the *occupied-node list*, not the node array:
// shard i is the i-th equal-size contiguous block of the list
// (partitionOccupied), a zero-copy subslice. Because the occupied list
// is exactly the materialized active window — the only nodes holding
// packets, all inside Engine.Window()'s level band — the partition
// follows the frame schedule's frontier wherever it travels: no shard
// ever owns a cold level, blocks are balanced to within one node
// regardless of how narrow the band is (the old contiguous node-range
// partition put whole butterfly levels on one shard when the window was
// narrow), and the per-step scatter pass that redistributed the list
// into per-shard buffers is gone entirely.
//
// Arbitration randomness is counter-based (rng.go), making the
// committed winners independent of enumeration order; the remaining
// source of order, the router's OnDeflect callbacks, is removed by
// recording deflections per shard and replaying them at the merge.
// Blocks concatenate to the occupied list in order and each shard
// visits its block in order, so the replay is a plain concatenation of
// the per-shard records — byte-identical to the sequential callback
// order by construction, asserted by TestParallelStepMatchesSequential
// and TestWindowShardingMatchesSequential.
//
// Barrier fusion: a shard worker clears the occupancy counts of its
// own nodes at the tail of its block, immediately after resolving them
// (the lines are still hot), so the commit phase starts from
// already-cleared counts without a separate sequential count sweep.
// The occupancy bitset stays with the dispatcher (clearOccBits): it
// packs 64 nodes per word, so shards would race on shared-word
// read-modify-writes — see clearShardOccupancy. The
// whole step then costs at most two pool dispatches — the optional
// injection filter and the fused request/arbitrate/deflect/clear region
// — and below minParallelOccupied live nodes it dispatches none at all:
// at a small active window the barriers dominate the work, so the
// engine falls back to the (trace-identical) in-place path.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hotpotato/internal/graph"
)

// deflectRec is a deflection (or fault stall, slot == stallSlot)
// decided inside a shard, to be replayed at the merge.
type deflectRec struct {
	pid  PacketID
	slot int32
	kind DeflectKind
}

// shardState is the per-shard mutable scratch for one step. The
// trailing pad keeps adjacent shards' hot append cursors off a shared
// cache line.
type shardState struct {
	// occ is this shard's block of the occupied-node list — a subslice
	// assigned by partitionOccupied, never appended to. Blocks
	// concatenate to the full list in order, which the merge relies on.
	occ []graph.NodeID
	// usedBuf is resolveNode's per-node claimed-slot list (winners plus
	// deflections); degree-bounded.
	usedBuf []int32
	// loserBuf is deflectLosers' per-node scratch.
	loserBuf []PacketID
	// deflects accumulates deferred deflection records, replayed in
	// shard order at the merge.
	deflects     []deflectRec
	faultBlocked int
	// excited counts requests at or above ExcitedPriority collected in
	// this shard; summed commutatively at the merge for the probe
	// snapshot (only maintained while a probe is attached).
	excited int
	_       [64]byte
}

func (sh *shardState) reset() {
	sh.occ = nil
	sh.deflects = sh.deflects[:0]
	sh.faultBlocked = 0
	sh.excited = 0
}

// partitionOccupied carves the occupied-node list into up to nshards
// equal-size contiguous blocks (zero-copy subslices) and returns the
// number of non-empty blocks — the pool region's item count. Block
// sizes differ by at most one node for every list length and shard
// count (asserted by TestShardPartitionBalance), and concatenating the
// blocks in shard order reproduces the list exactly.
func (e *Engine) partitionOccupied() int {
	n := len(e.occupied)
	if n == 0 {
		return 0
	}
	k := e.nshards
	if k > n {
		k = n
	}
	// Blocks of size q or q+1: the first r shards take q+1 nodes.
	q, r := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + q
		if i < r {
			hi++
		}
		e.shards[i].occ = e.occupied[lo:hi:hi]
		lo = hi
	}
	return k
}

// Pool work-region modes.
const (
	// modeShardStep runs requests + arbitration + deflection + the
	// fused occupancy clear for one shard (routers certified via
	// ConcurrentRouter only).
	modeShardStep = iota + 1
	// modeShardResolve runs arbitration + deflection + the fused clear
	// for one shard (requests were swept sequentially for an
	// uncertified router).
	modeShardResolve
	// modeInjectFilter evaluates WantInject over one chunk of the
	// pending list into wantBuf.
	modeInjectFilter
)

// parallelInjectMin is the pending-list length below which the
// injection filter is not worth fanning out.
const parallelInjectMin = 256

// minParallelOccupied is the occupied-node count below which the
// contention phases run in place on the stepping goroutine even with a
// pool attached: two barrier crossings cost more than resolving a few
// dozen nodes, and at a narrow active window (phase edges, drain tails)
// that overhead dominated the old always-dispatch step. The fallback is
// trace-identical by construction, so the cutover is purely a
// wall-clock knob.
const minParallelOccupied = 32

// poolSpin is how many cooperative-yield rounds a worker spins waiting
// for the next region before parking on the wake channel. Regions
// within one step arrive back to back, so a parked worker is the
// exception, not the rule.
const poolSpin = 256

// defaultShardsPerWorker oversubscribes shards relative to workers so
// that uneven per-node work (occupancy varies between one packet and a
// full degree) still load-balances through work stealing off the shared
// cursor.
const defaultShardsPerWorker = 8

// Bit layout of the pool's region and cursor words. The region word
// (seq) is generation<<poolModeBits | mode; the cursor word packs
// (generation low bits, item count, next item index) so that a claim is
// atomic WITH its generation and bounds — a straggler from a finished
// region fails the generation comparison instead of touching a later
// region's (or the idle engine's) state with stale mode or count.
const (
	poolModeBits = 3
	poolCntBits  = 16
	poolIdxBits  = 16
	poolIdxMask  = (1 << poolIdxBits) - 1
	poolCntMask  = (1 << poolCntBits) - 1
	poolGenMask  = (1 << 32) - 1
	// maxShards bounds the item count to the cursor's count field.
	maxShards = poolCntMask
)

// stepPool runs work regions for an engine on workers-1 persistent
// helper goroutines; the dispatching goroutine participates too, so a
// pool of w workers uses exactly w OS threads' worth of CPU and
// workers == 1 means no pool at all.
type stepPool struct {
	e       *Engine
	workers int

	// seq publishes the current region word; helpers detect work by
	// watching it. The store-release/load-acquire pair also orders the
	// engine's plain per-step fields (stepT, shards, wantBuf, ...)
	// written by the dispatcher before the region.
	seq atomic.Uint64

	// cursor is [generation:32][count:16][index:16]; claims CAS the
	// index up and are valid only for the matching generation.
	cursor atomic.Uint64

	remain atomic.Int32 // items not yet completed this region
	parked atomic.Int32 // helpers blocked on wake

	wake chan struct{} // buffered wake tokens for parked helpers
	done chan struct{} // closed to terminate helpers

	panicMu  sync.Mutex
	panicked any
	wg       sync.WaitGroup
}

func newStepPool(e *Engine, workers int) *stepPool {
	p := &stepPool{
		e:       e,
		workers: workers,
		wake:    make(chan struct{}, workers),
		done:    make(chan struct{}),
	}
	p.wg.Add(workers - 1)
	for i := 1; i < workers; i++ {
		go p.helperLoop()
	}
	return p
}

// runRegion executes n items of the given mode across the pool and the
// calling goroutine, returning when all items are complete. Panics from
// workers (e.g. an engine invariant violation inside a shard) are
// captured and re-raised here on the caller.
func (p *stepPool) runRegion(mode, n int) {
	if n <= 0 {
		return
	}
	gen := (p.seq.Load() >> poolModeBits) + 1
	word := gen<<poolModeBits | uint64(mode)
	p.remain.Store(int32(n))
	p.cursor.Store((gen&poolGenMask)<<(poolCntBits+poolIdxBits) | uint64(n)<<poolIdxBits)
	p.seq.Store(word)
	if np := p.parked.Load(); np > 0 {
		for ; np > 0; np-- {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
	p.drain(word)
	for p.remain.Load() > 0 {
		runtime.Gosched()
	}
	if p.panicked != nil {
		v := p.panicked
		p.panicked = nil
		panic(v)
	}
}

// drain claims and runs items of the region word until the region is
// exhausted or superseded. Mode, count and index all come from the
// observed word and cursor, never from unsynchronized fields, so a
// straggler arriving after the region ended claims nothing.
func (p *stepPool) drain(word uint64) {
	mode := int(word & (1<<poolModeBits - 1))
	key := ((word >> poolModeBits) & poolGenMask) << (poolCntBits + poolIdxBits)
	for {
		c := p.cursor.Load()
		if c>>(poolCntBits+poolIdxBits) != key>>(poolCntBits+poolIdxBits) {
			return // region superseded
		}
		n := int(c >> poolIdxBits & poolCntMask)
		i := int(c & poolIdxMask)
		if i >= n {
			return // region exhausted
		}
		if !p.cursor.CompareAndSwap(c, c+1) {
			continue
		}
		p.runItem(mode, i, n)
		p.remain.Add(-1)
	}
}

func (p *stepPool) runItem(mode, i, n int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicked == nil {
				p.panicked = r
			}
			p.panicMu.Unlock()
		}
	}()
	e := p.e
	t := e.stepT
	switch mode {
	case modeShardStep:
		sh := &e.shards[i]
		for _, v := range sh.occ {
			for _, pid := range e.At(v) {
				e.collectRequest(t, pid, sh)
			}
			e.resolveNode(t, v, sh)
		}
		e.clearShardOccupancy(sh)
	case modeShardResolve:
		sh := &e.shards[i]
		for _, v := range sh.occ {
			e.resolveNode(t, v, sh)
		}
		e.clearShardOccupancy(sh)
	case modeInjectFilter:
		chunk := (len(e.pending) + n - 1) / n
		lo := i * chunk
		hi := min(lo+chunk, len(e.pending))
		for idx := lo; idx < hi; idx++ {
			pid := e.pending[idx]
			e.wantBuf[idx] = e.router.WantInject(t, &e.Packets[pid])
		}
	}
}

// clearShardOccupancy is the fused tail of a shard's resolve region:
// the shard zeroes the occupancy counts of its own nodes right after
// resolving them, while the count lines are still hot, so the commit
// phase starts from cleared counts without a sequential O(occupied)
// sweep between the barrier and the commits. Safe because nodes belong
// to exactly one shard (counts are distinct uint16 locations — no
// shared-word read-modify-write) and nothing reads occupancy between a
// node's resolution and the commit — ConcurrentRouter forbids
// occupancy reads from concurrent Request/WantInject, and no router
// callback observes occupancy (the same contract the sequential
// clear-before-commit already relies on). The occupancy *bitset* is
// deliberately NOT cleared here: bitClear is a read-modify-write on a
// 64-node word, and nodes from different shards routinely share a word
// — concurrent clears would race and lose updates. The dispatcher
// clears the bits in one sequential word-range pass at the commit
// prologue (clearOccBits), which costs 1/64th of the count sweep.
func (e *Engine) clearShardOccupancy(sh *shardState) {
	for _, v := range sh.occ {
		e.atN[v] = 0
	}
}

// helperLoop is the body of one persistent helper goroutine: watch seq,
// drain items, spin briefly, park.
func (p *stepPool) helperLoop() {
	defer p.wg.Done()
	var last uint64
	for {
		seq := p.seq.Load()
		if seq != last {
			last = seq
			p.drain(seq)
			continue
		}
		spun := false
		for i := 0; i < poolSpin; i++ {
			runtime.Gosched()
			if p.seq.Load() != last {
				spun = true
				break
			}
		}
		if spun {
			continue
		}
		// Park. The parked increment before the final seq re-check
		// pairs with runRegion's seq bump before its parked read
		// (store-buffer pattern): either we see the new region here or
		// the dispatcher sees us parked and leaves a wake token.
		p.parked.Add(1)
		if p.seq.Load() != last {
			p.parked.Add(-1)
			continue
		}
		select {
		case <-p.wake:
			p.parked.Add(-1)
		case <-p.done:
			p.parked.Add(-1)
			return
		}
	}
}

// close terminates the helper goroutines and waits for them.
func (p *stepPool) close() {
	close(p.done)
	p.wg.Wait()
}

// SetParallelism configures the sharded parallel step path: workers is
// the number of goroutines participating in each step (1 disables the
// pool entirely and restores the plain sequential path), shards the
// number of occupied-list blocks the contention phases are split into
// (0 picks workers×8, oversubscribed for load balance). The committed
// trace is byte-identical for every (workers, shards) setting — the
// knobs trade only wall-clock — so callers may tune them freely without
// invalidating per-seed results. The configuration survives Reset;
// call Close (or SetParallelism(1, 0)) to release the worker
// goroutines.
//
// Full parallelism — requests included — requires the router to certify
// ConcurrentRouter; other routers keep a sequential request sweep and
// parallelize only the deflection phase.
func (e *Engine) SetParallelism(workers, shards int) {
	if workers < 1 {
		workers = 1
	}
	if shards < 1 {
		shards = workers * defaultShardsPerWorker
	}
	if shards > e.G.NumNodes() {
		shards = e.G.NumNodes()
	}
	if shards > maxShards {
		shards = maxShards
	}
	if shards < 1 {
		shards = 1
	}
	if workers > shards {
		workers = shards
	}
	e.setShards(workers, shards)
}

// Close releases the worker pool's goroutines. The engine remains
// usable (sequentially) afterwards; SetParallelism may be called again.
func (e *Engine) Close() {
	e.setShards(1, e.nshards)
}

// Parallelism reports the configuration in effect after clamping:
// the number of goroutines participating in each step and the number
// of occupied-list shards.
func (e *Engine) Parallelism() (workers, shards int) {
	workers = 1
	if e.pool != nil {
		workers = e.pool.workers
	}
	return workers, e.nshards
}

func (e *Engine) setShards(workers, shards int) {
	e.nshards = shards
	if len(e.shards) != shards {
		e.shards = make([]shardState, shards)
	}
	if e.pool != nil && (workers <= 1 || e.pool.workers != workers) {
		e.pool.close()
		e.pool = nil
	}
	if workers > 1 && e.pool == nil {
		e.pool = newStepPool(e, workers)
	}
}
